#include "sessmpi/obs/postmortem.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <utility>
#include <vector>

#include "sessmpi/base/stats.hpp"
#include "sessmpi/obs/trace.hpp"
#include "sessmpi/obs/trace_json.hpp"
#include "sessmpi/obs/tvar.hpp"

namespace sessmpi::obs {

namespace {

struct SectionEntry {
  int token = -1;
  std::string name;
  PostmortemSectionFn fn;
};

struct PmState {
  std::mutex mu;  ///< guards sections, next_token, dir
  std::vector<SectionEntry> sections;
  int next_token = 1;
  std::string dir;
  std::atomic<bool> dumped{false};
};

PmState& pm() {
  static PmState s;
  return s;
}

/// Manifest strings are identifiers we control, but a stray quote must not
/// corrupt the line-oriented JSON the tool scans.
std::string sanitized(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back((c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
                      ? '_'
                      : c);
  }
  return out;
}

void write_manifest(std::ostream& os, const std::string& reason,
                    std::size_t trace_files, std::uint64_t evicted,
                    const std::vector<SectionEntry>& sections) {
  os << "{\"postmortem\": {\"reason\": \"" << sanitized(reason)
     << "\", \"trace_files\": " << trace_files
     << ", \"evicted\": " << evicted << "},\n";
  os << "\"counters\": ";
  base::counters().print_json(os);
  os << ",\n";
  os << "\"gauges\": {";
  bool first = true;
  for (const PvarDesc& d : pvar_list()) {
    if (d.cls != PvarClass::gauge) continue;
    if (auto v = pvar_read_gauge(d.name)) {
      os << (first ? "" : ", ") << "\"" << d.name << "\": " << *v;
      first = false;
    }
  }
  os << "},\n";
  os << "\"histograms\": [\n";
  first = true;
  for (const PvarDesc& d : pvar_list()) {
    if (d.cls != PvarClass::histogram) continue;
    auto h = pvar_read_histogram(d.name);
    if (!h || h->count == 0) continue;
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << d.name << "\",\"count\":" << h->count
       << ",\"min\":" << h->min << ",\"max\":" << h->max
       << ",\"mean\":" << h->mean << ",\"p50\":" << h->p50
       << ",\"p90\":" << h->p90 << ",\"p99\":" << h->p99 << "}";
  }
  os << "\n],\n";
  os << "\"sections\": [\n";
  first = true;
  for (const SectionEntry& s : sections) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << sanitized(s.name) << "\",\"data\":";
    try {
      s.fn(os);
    } catch (...) {
      os << "{\"error\":\"section threw\"}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

}  // namespace

int register_postmortem_section(const std::string& name,
                                PostmortemSectionFn fn) {
  PmState& s = pm();
  std::lock_guard lk(s.mu);
  const int token = s.next_token++;
  s.sections.push_back({token, name, std::move(fn)});
  return token;
}

void unregister_postmortem_section(int token) {
  PmState& s = pm();
  std::lock_guard lk(s.mu);
  std::erase_if(s.sections,
                [token](const SectionEntry& e) { return e.token == token; });
}

std::string dump_postmortem(const std::string& dir,
                            const std::string& reason) {
  Tracer& tracer = Tracer::instance();
  const bool was_enabled = tracer.freeze();
  std::string manifest_path;
  try {
    const auto events = tracer.collect();
    const std::uint64_t evicted = tracer.evicted();
    std::filesystem::create_directories(dir);
    const auto paths = write_rank_traces(dir, "postmortem", events);
    // Snapshot the section list, then run the callbacks without the
    // registry lock: they take subsystem locks of their own.
    std::vector<SectionEntry> sections;
    {
      PmState& s = pm();
      std::lock_guard lk(s.mu);
      sections = s.sections;
    }
    const std::string path =
        (std::filesystem::path(dir) / "postmortem.json").string();
    std::ofstream os(path, std::ios::trunc);
    if (os) {
      write_manifest(os, reason, paths.size(), evicted, sections);
      if (os.good()) manifest_path = path;
    }
  } catch (...) {
    // A failing dump must never turn a recoverable failure into a crash.
  }
  tracer.thaw(was_enabled);
  return manifest_path;
}

void trigger_postmortem(const char* reason) {
  std::string dir = postmortem_dir();
  if (dir.empty()) return;
  if (pm().dumped.exchange(true)) {
    // The first failure is the one worth freezing the world for; the
    // cascade that follows (revoke storm, sweep of dead peers) is noise.
    base::counters().add("obs.postmortem.suppressed");
    return;
  }
  base::counters().add("obs.postmortem.dumps");
  dump_postmortem(dir, reason != nullptr ? reason : "unknown");
}

void set_postmortem_dir(const std::string& dir) {
  PmState& s = pm();
  std::lock_guard lk(s.mu);
  s.dir = dir;
}

std::string postmortem_dir() {
  PmState& s = pm();
  std::lock_guard lk(s.mu);
  return s.dir;
}

void reset_postmortem_for_testing() {
  pm().dumped.store(false, std::memory_order_relaxed);
}

}  // namespace sessmpi::obs
