#pragma once

// Chrome trace-event JSON export + merge (DESIGN.md §11). Each rank gets
// its own `<prefix>.rank<N>.trace.json` (pid = rank); events emitted by
// runtime threads with no rank attribution land in
// `<prefix>.runtime.trace.json` under a sentinel pid. tools/trace_merge
// (or merge_traces below) folds N per-rank files into one stream that
// chrome://tracing and ui.perfetto.dev load directly, aligning clocks via
// the per-file `clock_ns_offset` header. All ranks in the sim share one
// base::now_ns() steady clock, so per-rank offsets are zero here — the
// field exists so traces from genuinely separate processes merge the same
// way.
//
// File schema (one event per line, so the merger can stream):
//   {"otherData": {"rank": R, "clock_ns_offset": O, "evicted": K},
//   "displayTimeUnit": "ns",
//   "traceEvents": [
//   {"name":"pml.send","cat":"core","ph":"B","ts":12.345,"pid":0,"tid":1},
//   ...
//   ]}
// ts is microseconds (Chrome's unit) with nanosecond precision; async and
// flow events add "id":"0x..." and "scope" is implied by cat. Flow events
// (ph s/t/f) additionally carry "bp":"e" so Perfetto binds the causal
// arrow to the enclosing slice (the pml.send/pml.match span), not to the
// next slice on the track.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sessmpi/obs/trace.hpp"

namespace sessmpi::obs {

/// pid used for runtime-thread events with no rank attribution.
inline constexpr int kRuntimeTrackPid = 1'000'000;

/// Serialise one event as a Chrome trace-event JSON object (no trailing
/// newline). `pid_override < 0` keeps the event's own track.
void write_event_json(std::ostream& os, const Event& ev,
                      int pid_override = -1);

/// Write a complete single-track trace file body for `events` (already
/// filtered to one pid).
void write_trace_file(std::ostream& os, const std::vector<Event>& events,
                      int pid, std::int64_t clock_ns_offset,
                      std::uint64_t evicted);

/// Partition `events` by track and write one trace file per rank (plus a
/// runtime file when unattributed events exist) under `dir`, named
/// `<prefix>.rank<N>.trace.json`. Creates `dir` if needed. Returns the
/// written paths, rank order first, runtime last.
std::vector<std::string> write_rank_traces(const std::string& dir,
                                           const std::string& prefix,
                                           const std::vector<Event>& events);

/// One event parsed back from a trace file (names become owned strings).
struct ParsedEvent {
  std::string name;
  std::string cat;
  char ph = 'i';
  double ts_us = 0;
  int pid = 0;
  std::uint32_t tid = 0;
  std::uint64_t id = 0;
  std::uint64_t arg = 0;
  std::uint64_t arg2 = 0;
  bool has_id = false;
};

/// Parse a per-rank or merged trace file. Throws base::Error on malformed
/// input. `clock_ns_offset` from the header is applied to every ts.
std::vector<ParsedEvent> parse_trace_file(const std::string& path);

/// Merge per-rank trace files into one Perfetto-loadable stream: applies
/// each file's clock offset, rebases the earliest event to t=0, sorts by
/// timestamp, and prepends process_name metadata ("rank N" / "runtime")
/// so Perfetto labels the tracks. Missing, empty, or truncated inputs are
/// skipped with a warning on stderr (a killed rank must not abort the
/// merge of the survivors). Returns the merged event count.
std::size_t merge_traces(const std::vector<std::string>& files,
                         std::ostream& out);

}  // namespace sessmpi::obs
