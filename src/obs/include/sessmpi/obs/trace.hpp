#pragma once

// Span tracing (DESIGN.md §11). Each thread that emits events owns a
// single-writer lock-free ring buffer; when the ring wraps, the oldest
// events are evicted so a long run degrades to "most recent window" rather
// than unbounded memory. Emission when enabled is a thread-local pointer
// chase plus one relaxed clock read and one release store — tens of
// nanoseconds; when disabled it is a single relaxed atomic load, and with
// -DSESSMPI_OBS_TRACING=OFF the OBS_* macros compile to nothing at all.
//
// Events carry a `track`: the merged-trace process id, which the sim sets
// to the MPI rank for rank threads (sim/cluster.cpp). Runtime threads
// (fabric pump, PMIx server) default to track -1 but may attribute events
// to a rank explicitly (e.g. a retransmit is charged to the sending rank's
// track so it lands on that rank's timeline).
//
// Collection contract: `Tracer::collect()` / `clear()` read the rings
// without synchronising against writers. Call them only when writers are
// quiescent — after `sim::Cluster::run()` returns (rank threads joined)
// and the cluster is destroyed or its fabric quiesced (pump thread idle).
// The unit tests and benches all follow this discipline, which is what
// keeps the suite TSan-clean.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sessmpi::obs {

/// Chrome trace-event phases we emit. Duration events (begin/end) nest by
/// stack order per (pid, tid); async events (async_*) correlate by
/// (category, id) across threads and nest by b/e stack order per id —
/// that is how a pump-thread retransmit nests under the owning send.
enum class Phase : std::uint8_t {
  begin,          ///< "B"
  end,            ///< "E"
  instant,        ///< "i"
  async_begin,    ///< "b"
  async_instant,  ///< "n"
  async_end,      ///< "e"
  flow_start,     ///< "s" — causal edge out of the enclosing slice
  flow_step,      ///< "t" — intermediate hop (e.g. a revoke re-flood)
  flow_end,       ///< "f" — causal edge into the enclosing slice
};

/// One trace event. Names and categories must be string literals (or
/// otherwise immortal): the ring stores the pointers, not copies.
struct Event {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::int64_t ts_ns = 0;   ///< base::now_ns() at emission
  std::uint64_t id = 0;     ///< async correlation id (async_* phases only)
  std::uint64_t arg = 0;    ///< one numeric payload (bytes, seq, ...)
  std::uint64_t arg2 = 0;   ///< second payload ("v2"; 0 = omitted)
  std::int32_t track = -1;  ///< merged-trace pid: rank, or -1 = runtime
  std::uint32_t tid = 0;    ///< writer thread ordinal (allocation order)
  Phase phase = Phase::instant;
};

/// Single-writer ring. The owning thread emits; any thread may drain once
/// the owner is quiescent. `head_` counts total events ever emitted, so
/// eviction is implicit: slot = head % capacity, evicted = head - size.
class TraceBuffer {
 public:
  TraceBuffer(std::size_t capacity, std::uint32_t tid);

  /// Owner thread only.
  void emit(const Event& ev) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    ring_[static_cast<std::size_t>(h % ring_.size())] = ev;
    head_.store(h + 1, std::memory_order_release);
  }

  /// Surviving events, oldest first. Writer must be quiescent.
  [[nodiscard]] std::vector<Event> drain() const;

  [[nodiscard]] std::uint64_t emitted() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t evicted() const noexcept;
  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  /// Writer must be quiescent.
  void reset() noexcept { head_.store(0, std::memory_order_release); }

  /// Dekker handshake with Tracer::freeze(): the owner marks the ring busy
  /// (seq_cst) before re-checking `enabled`, so a freezer that disabled the
  /// tracer (seq_cst) and then observes busy == false knows no write is in
  /// flight and none can start. The release/acquire pair on clearing busy
  /// gives the freezer happens-before over the final ring write.
  void begin_write() noexcept { busy_.store(true, std::memory_order_seq_cst); }
  void end_write() noexcept { busy_.store(false, std::memory_order_release); }
  [[nodiscard]] bool busy() const noexcept {
    return busy_.load(std::memory_order_acquire);
  }

 private:
  std::vector<Event> ring_;
  std::uint32_t tid_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<bool> busy_{false};
};

/// Process-wide tracer: owns every thread's ring (created lazily on first
/// emission, so a run that never enables tracing allocates nothing).
class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Default merged-trace track for events emitted by the calling thread.
  /// The sim sets this to the rank for the duration of rank_main.
  static void set_thread_track(std::int32_t track) noexcept;
  [[nodiscard]] static std::int32_t thread_track() noexcept;

  /// Simulated per-rank clock skew: every event attributed to `track` gets
  /// `ns` added to its timestamp at emission, modeling unsynchronized node
  /// clocks. write_rank_traces records the negation as the per-file
  /// `clock_ns_offset`, which is what tools/trace_merge applies to realign
  /// the merged timeline — so a skewed run round-trips to an aligned merge.
  /// Set by sim::Cluster from Options::clock_skew_ns; tracks outside
  /// [0, kMaxSkewTracks) never skew.
  static constexpr std::int32_t kMaxSkewTracks = 1024;
  static void set_track_skew_ns(std::int32_t track, std::int64_t ns) noexcept;
  [[nodiscard]] static std::int64_t track_skew_ns(std::int32_t track) noexcept;
  /// Zero every track's skew (a new cluster starts with aligned clocks).
  static void reset_track_skews() noexcept;

  /// Ring capacity (events) for rings created *after* the call.
  void set_ring_capacity(std::size_t events);
  [[nodiscard]] std::size_t ring_capacity() const noexcept;

  // --- emission (all no-ops when disabled) ---
  void begin(const char* name, const char* cat, std::uint64_t arg = 0);
  void end(const char* name, const char* cat);
  void instant(const char* name, const char* cat, std::uint64_t arg = 0);
  /// Instant attributed to an explicit track (for runtime threads).
  void instant_on(std::int32_t track, const char* name, const char* cat,
                  std::uint64_t arg = 0, std::uint64_t arg2 = 0);
  void async_begin(std::int32_t track, const char* name, const char* cat,
                   std::uint64_t id, std::uint64_t arg = 0,
                   std::uint64_t arg2 = 0);
  void async_instant(std::int32_t track, const char* name, const char* cat,
                     std::uint64_t id, std::uint64_t arg = 0);
  void async_end(std::int32_t track, const char* name, const char* cat,
                 std::uint64_t id);
  /// Chrome flow events: a flow with one id draws causal arrows between the
  /// slices enclosing its s/t/f points, across pids — how a send on rank 0
  /// links to its match on rank 3 in the merged view. `id` is the span id
  /// carried on the wire as the message's trace context.
  void flow_start(const char* name, const char* cat, std::uint64_t id,
                  std::uint64_t arg = 0);
  void flow_step(const char* name, const char* cat, std::uint64_t id);
  void flow_end(const char* name, const char* cat, std::uint64_t id);

  /// Process-unique 64-bit span id (never 0; 0 means "no trace context").
  [[nodiscard]] static std::uint64_t next_span_id() noexcept;

  /// Thread-local flow context override: while non-zero, message-level
  /// trace contexts allocated by the send path reuse this id instead of a
  /// fresh one, so every message a rank sends inside one collective joins
  /// that collective's single distributed trace. 0 = no override.
  static void set_flow_context(std::uint64_t ctx) noexcept;
  [[nodiscard]] static std::uint64_t flow_context() noexcept;

  /// All surviving events across all rings, sorted by timestamp.
  /// Writers must be quiescent (see file comment).
  [[nodiscard]] std::vector<Event> collect() const;

  /// Drop all events (rings stay registered). Writers must be quiescent.
  void clear();

  /// Flight-recorder stop-the-world: disable tracing and wait until every
  /// ring's in-flight emission has drained, after which collect() is safe
  /// even though writer threads are still running (they observe disabled
  /// before touching their rings — see TraceBuffer::begin_write). Returns
  /// whether tracing was enabled, for a later thaw(). Unlike collect()'s
  /// usual quiescence contract, freeze() may be called mid-run — that is
  /// the whole point of a postmortem dump.
  bool freeze();
  /// Resume after a freeze()+collect(): re-enables iff `re_enable`.
  void thaw(bool re_enable) noexcept;

  /// Total events evicted by ring wraparound since the last clear().
  [[nodiscard]] std::uint64_t evicted() const;

 private:
  Tracer() = default;
  TraceBuffer& local_buffer();
  void emit(const char* name, const char* cat, Phase ph, std::int32_t track,
            std::uint64_t id, std::uint64_t arg, std::uint64_t arg2 = 0);

  mutable std::mutex mu_;  ///< guards buffers_ (registration + collection)
  std::vector<std::shared_ptr<TraceBuffer>> buffers_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_{1u << 14};
  std::uint32_t next_tid_ = 0;
};

/// RAII duration span. Captures enabled-ness at construction so a toggle
/// mid-span cannot emit an unmatched end.
class Span {
 public:
  Span(const char* name, const char* cat, std::uint64_t arg = 0) noexcept {
    Tracer& t = Tracer::instance();
    if (t.enabled()) {
      name_ = name;
      cat_ = cat;
      t.begin(name, cat, arg);
    }
  }
  ~Span() {
    if (name_ != nullptr) Tracer::instance().end(name_, cat_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
};

/// RAII thread-local flow-context override (see Tracer::set_flow_context).
/// Saves and restores, so nested scopes compose.
class ScopedFlowContext {
 public:
  explicit ScopedFlowContext(std::uint64_t ctx) noexcept
      : saved_(Tracer::flow_context()) {
    Tracer::set_flow_context(ctx);
  }
  ~ScopedFlowContext() { Tracer::set_flow_context(saved_); }
  ScopedFlowContext(const ScopedFlowContext&) = delete;
  ScopedFlowContext& operator=(const ScopedFlowContext&) = delete;

 private:
  std::uint64_t saved_;
};

}  // namespace sessmpi::obs

// --- probe macros -----------------------------------------------------------
// SESSMPI_OBS_DISABLED (set by -DSESSMPI_OBS_TRACING=OFF) compiles every
// probe out of the binary; macro arguments are then not evaluated, so keep
// them side-effect free.

#if defined(SESSMPI_OBS_DISABLED)

#define OBS_SPAN(name, cat) ((void)0)
#define OBS_SPAN_ARG(name, cat, arg) ((void)0)
#define OBS_INSTANT(name, cat) ((void)0)
#define OBS_INSTANT_ARG(name, cat, arg) ((void)0)
#define OBS_INSTANT_ON(track, name, cat, arg) ((void)0)
#define OBS_INSTANT_ON2(track, name, cat, arg, arg2) ((void)0)
#define OBS_ASYNC_BEGIN(track, name, cat, id, arg) ((void)0)
#define OBS_ASYNC_BEGIN2(track, name, cat, id, arg, arg2) ((void)0)
#define OBS_ASYNC_INSTANT(track, name, cat, id, arg) ((void)0)
#define OBS_ASYNC_END(track, name, cat, id) ((void)0)
#define OBS_FLOW_START(name, cat, id, arg) ((void)0)
#define OBS_FLOW_STEP(name, cat, id) ((void)0)
#define OBS_FLOW_END(name, cat, id) ((void)0)

#else

#define SESSMPI_OBS_CONCAT_(a, b) a##b
#define SESSMPI_OBS_CONCAT(a, b) SESSMPI_OBS_CONCAT_(a, b)

#define OBS_SPAN(name, cat) \
  ::sessmpi::obs::Span SESSMPI_OBS_CONCAT(obs_span_, __LINE__)(name, cat)
#define OBS_SPAN_ARG(name, cat, arg) \
  ::sessmpi::obs::Span SESSMPI_OBS_CONCAT(obs_span_, __LINE__)(name, cat, arg)
#define OBS_INSTANT(name, cat) \
  ::sessmpi::obs::Tracer::instance().instant(name, cat)
#define OBS_INSTANT_ARG(name, cat, arg) \
  ::sessmpi::obs::Tracer::instance().instant(name, cat, arg)
#define OBS_INSTANT_ON(track, name, cat, arg) \
  ::sessmpi::obs::Tracer::instance().instant_on(track, name, cat, arg)
#define OBS_INSTANT_ON2(track, name, cat, arg, arg2) \
  ::sessmpi::obs::Tracer::instance().instant_on(track, name, cat, arg, arg2)
#define OBS_ASYNC_BEGIN(track, name, cat, id, arg) \
  ::sessmpi::obs::Tracer::instance().async_begin(track, name, cat, id, arg)
#define OBS_ASYNC_BEGIN2(track, name, cat, id, arg, arg2)                 \
  ::sessmpi::obs::Tracer::instance().async_begin(track, name, cat, id, arg, \
                                                 arg2)
#define OBS_ASYNC_INSTANT(track, name, cat, id, arg) \
  ::sessmpi::obs::Tracer::instance().async_instant(track, name, cat, id, arg)
#define OBS_ASYNC_END(track, name, cat, id) \
  ::sessmpi::obs::Tracer::instance().async_end(track, name, cat, id)
#define OBS_FLOW_START(name, cat, id, arg) \
  ::sessmpi::obs::Tracer::instance().flow_start(name, cat, id, arg)
#define OBS_FLOW_STEP(name, cat, id) \
  ::sessmpi::obs::Tracer::instance().flow_step(name, cat, id)
#define OBS_FLOW_END(name, cat, id) \
  ::sessmpi::obs::Tracer::instance().flow_end(name, cat, id)

#endif  // SESSMPI_OBS_DISABLED
