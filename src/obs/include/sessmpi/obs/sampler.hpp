#pragma once

// Metrics time-series (DESIGN.md §16). A background thread snapshots every
// pvar (counters, gauges, histogram count/p99) into a bounded in-memory
// ring at a cvar-controlled period, exported as JSONL — one sample object
// per line — so a scaling run leaves a metric *timeline*, not just an
// end-of-run snapshot. Off by default: with `obs.metrics.period_ms` at 0
// no thread exists and nothing is allocated.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sessmpi::obs {

/// One sampled pvar value at one instant.
struct MetricPoint {
  std::string name;
  double value = 0;
};

/// One sampler tick: wall timestamp plus every pvar's value.
struct MetricSample {
  std::int64_t ts_ns = 0;
  std::vector<MetricPoint> points;
};

class MetricsSampler {
 public:
  static MetricsSampler& instance();

  /// Sampling period; 0 stops the thread (and joins it). Exposed as the
  /// `obs.metrics.period_ms` cvar. Thread-safe.
  void set_period_ms(int ms);
  [[nodiscard]] int period_ms() const noexcept {
    return period_ms_.load(std::memory_order_relaxed);
  }

  /// Take one sample immediately (also what the thread does each tick).
  void sample_now();

  /// Oldest-first copy of the retained samples.
  [[nodiscard]] std::vector<MetricSample> samples() const;

  /// Drop all retained samples.
  void clear();

  /// Write the retained samples as JSONL:
  ///   {"ts_ns": 12345, "pvars": {"fabric.bytes_sent": 4096, ...}}
  /// Returns the number of lines written; 0 also when the file cannot be
  /// opened.
  std::size_t write_jsonl(const std::string& path) const;

  /// Samples retained before the oldest is evicted.
  static constexpr std::size_t kMaxSamples = 4096;

 private:
  MetricsSampler() = default;
  ~MetricsSampler();
  void run();

  std::mutex ctl_mu_;  ///< guards thread start/stop transitions
  std::mutex cv_mu_;   ///< paired with cv_ for the tick wait
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;  ///< under ctl_mu_
  std::atomic<int> period_ms_{0};
  std::atomic<bool> stop_{false};

  mutable std::mutex ring_mu_;  ///< guards ring_
  std::deque<MetricSample> ring_;
};

}  // namespace sessmpi::obs
