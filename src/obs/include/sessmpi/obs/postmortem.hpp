#pragma once

// Failure flight recorder (DESIGN.md §16). When something goes wrong mid-run
// (proc_failed, revoke, coordinator death during agreement, RTO escalation,
// unrecoverable restore), the postmortem path freezes every thread's trace
// ring, snapshots all pvars, and asks each registered subsystem section for
// its in-flight state, writing the lot as a bundle:
//
//   <dir>/postmortem.json              manifest: reason, pvar snapshot,
//                                      subsystem sections (one JSON per line)
//   <dir>/postmortem.rank<N>.trace.json   last-N events of each rank's ring
//   <dir>/postmortem.runtime.trace.json   unattributed runtime-thread events
//
// `tools/postmortem` pretty-prints a bundle; tools/trace_merge loads the
// per-rank files like any other trace set.
//
// Triggering is disabled by default: `trigger_postmortem` is a no-op until
// the `obs.postmortem.dir` cvar names a directory. Only the FIRST trigger
// per process dumps (later ones count obs.postmortem.suppressed) — the
// first failure is the interesting one, and the cascade that follows a
// revoke must not re-freeze the world N times.

#include <functional>
#include <iosfwd>
#include <string>

namespace sessmpi::obs {

/// Writes one single-line JSON value describing a subsystem's in-flight
/// state (request tables, flow windows, ...). Called with the world frozen
/// only in the sense that tracing is off — other threads still run, so the
/// callback must take its own locks, and should prefer try_lock + a
/// `{"skipped":"busy"}` placeholder over blocking on a lock a crashed peer
/// might hold.
using PostmortemSectionFn = std::function<void(std::ostream&)>;

/// Register a named section; returns a token for unregistration. Sections
/// appear in the manifest in registration order. Thread-safe.
int register_postmortem_section(const std::string& name,
                                PostmortemSectionFn fn);
void unregister_postmortem_section(int token);

/// RAII section registration (movable, not copyable). Default-constructed
/// is empty; assignment from a registered one transfers ownership.
class PostmortemSection {
 public:
  PostmortemSection() = default;
  PostmortemSection(const std::string& name, PostmortemSectionFn fn)
      : token_(register_postmortem_section(name, std::move(fn))) {}
  ~PostmortemSection() { reset(); }
  PostmortemSection(PostmortemSection&& other) noexcept
      : token_(other.token_) {
    other.token_ = -1;
  }
  PostmortemSection& operator=(PostmortemSection&& other) noexcept {
    if (this != &other) {
      reset();
      token_ = other.token_;
      other.token_ = -1;
    }
    return *this;
  }
  PostmortemSection(const PostmortemSection&) = delete;
  PostmortemSection& operator=(const PostmortemSection&) = delete;

 private:
  void reset() {
    if (token_ >= 0) {
      unregister_postmortem_section(token_);
      token_ = -1;
    }
  }
  int token_ = -1;
};

/// Write a bundle under `dir` (created if needed): freeze the tracer, dump
/// per-rank trace files plus the manifest, then restore the tracer to its
/// pre-freeze state. Never throws; returns the manifest path, or "" if the
/// bundle could not be written. Safe to call from any thread, including
/// with subsystem locks held (section callbacks use try_lock).
std::string dump_postmortem(const std::string& dir, const std::string& reason);

/// Failure-path hook: dump a bundle into the configured directory. No-op
/// unless `obs.postmortem.dir` is set; only the first trigger per process
/// dumps (later triggers count obs.postmortem.suppressed). Never throws.
void trigger_postmortem(const char* reason);

/// Bundle directory for trigger_postmortem ("" = disabled). Exposed as the
/// `obs.postmortem.dir` cvar.
void set_postmortem_dir(const std::string& dir);
std::string postmortem_dir();

/// Re-arm the one-shot trigger (tests run many failure scenarios per
/// process).
void reset_postmortem_for_testing();

}  // namespace sessmpi::obs
