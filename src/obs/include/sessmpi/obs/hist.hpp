#pragma once

// HDR-style latency histograms (DESIGN.md §11). Fixed layout: values below
// 16 are exact; above that, each power-of-two range is split into 16 linear
// sub-buckets, so any recorded value is bucketed with relative error
// <= 1/16 (6.25%). record() is three relaxed atomic RMWs — safe from any
// thread, cheap enough for the blocking pt2pt path.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sessmpi::obs {

class Histogram {
 public:
  static constexpr int kSubBits = 4;  ///< 16 linear sub-buckets per octave
  static constexpr std::size_t kNumBuckets = 64u << kSubBits;

  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Value at quantile q in [0, 1]: the upper edge of the bucket holding
  /// the ceil(q * count)-th sample (0 when empty). Exact for values < 16;
  /// within 1/16 relative error above.
  [[nodiscard]] double percentile(double q) const noexcept;

  void reset() noexcept;

  /// Bucket index for a value (exposed for the unit tests).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept;
  /// Largest value mapping to bucket `b`.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t b) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Process-wide named histogram, created on first use; the reference stays
/// valid for the process lifetime (cache it in hot paths). Creating the
/// first histogram registers a base::Counters reset hook, so
/// base::counters().reset() also zeroes every histogram — one call resets
/// all performance variables (counters and histograms alike).
Histogram& histogram(const std::string& name);

/// Registered (name, histogram) pairs, sorted by name.
std::vector<std::pair<std::string, Histogram*>> histograms();

/// Zero every registered histogram (also fired by counters().reset()).
void reset_histograms();

}  // namespace sessmpi::obs
