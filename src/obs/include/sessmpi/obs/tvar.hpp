#pragma once

// MPI_T-style tool variables (DESIGN.md §11). Performance variables
// (pvars) are read-only runtime statistics: every base::Counters counter
// plus every obs::Histogram, unified under one enumerate/read/reset
// namespace. Control variables (cvars) are named string-typed knobs with
// registered getter/setter pairs; the obs built-ins control the tracer.
// The C API mirror (SESSMPI_T_* in sessmpi/capi.hpp) goes through these.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace sessmpi::obs {

enum class PvarClass {
  counter,    ///< monotonically increasing event count (base::Counters)
  histogram,  ///< value distribution (obs::Histogram)
  gauge,      ///< instantaneous computed value (registered callback)
};

struct PvarDesc {
  std::string name;
  PvarClass cls = PvarClass::counter;
};

/// Distribution summary for histogram pvars.
struct HistSummary {
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// Every pvar, sorted by name (counters and histograms interleaved).
/// Indices into this snapshot are what the C API get_info takes; they are
/// only stable until the next variable is created.
std::vector<PvarDesc> pvar_list();

/// Counter value, or nullopt if no such counter exists.
std::optional<std::uint64_t> pvar_read_counter(const std::string& name);

/// Histogram summary, or nullopt if no such histogram exists.
std::optional<HistSummary> pvar_read_histogram(const std::string& name);

/// Gauge pvars expose an instantaneous value computed on read (e.g.
/// `fabric.pool_hit_rate` in percent). The callback must be thread-safe
/// and is kept for the process lifetime; re-registering a name replaces it.
using GaugeFn = std::function<std::uint64_t()>;
void register_pvar_gauge(const std::string& name, GaugeFn fn);

/// Gauge value, or nullopt if no such gauge exists.
std::optional<std::uint64_t> pvar_read_gauge(const std::string& name);

/// Reset one pvar (counter to 0 / histogram emptied). False if unknown.
bool pvar_reset(const std::string& name);

/// Reset everything: counters().reset(), which also resets histograms via
/// the registered hook.
void pvar_reset_all();

struct CvarDesc {
  std::string name;
  std::string description;
};

using CvarGetter = std::function<std::string()>;
using CvarSetter = std::function<bool(const std::string&)>;

/// Register a control variable. Re-registering a name replaces it.
void register_cvar(const std::string& name, const std::string& description,
                   CvarGetter getter, CvarSetter setter);

/// Every cvar, sorted by name. Includes the obs built-ins:
///   obs.trace.enabled     "0"/"1", toggles the tracer at runtime
///   obs.trace.ring_events per-thread ring capacity for future threads
std::vector<CvarDesc> cvar_list();

std::optional<std::string> cvar_read(const std::string& name);

/// False if the cvar is unknown or the setter rejected the value.
bool cvar_write(const std::string& name, const std::string& value);

}  // namespace sessmpi::obs
