#include "sessmpi/obs/hist.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <mutex>

#include "sessmpi/base/stats.hpp"

namespace sessmpi::obs {

namespace {

void atomic_min(std::atomic<std::uint64_t>& target, std::uint64_t v) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& target, std::uint64_t v) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t Histogram::bucket_of(std::uint64_t value) noexcept {
  constexpr std::uint64_t kSub = 1u << kSubBits;  // 16
  if (value < kSub) return static_cast<std::size_t>(value);
  // exponent of the leading bit: 2^e <= value < 2^(e+1), e >= kSubBits
  const int e = 63 - std::countl_zero(value);
  const auto sub =
      static_cast<std::size_t>((value >> (e - kSubBits)) & (kSub - 1));
  return (static_cast<std::size_t>(e - kSubBits + 1) << kSubBits) + sub;
}

std::uint64_t Histogram::bucket_upper(std::size_t b) noexcept {
  constexpr std::uint64_t kSub = 1u << kSubBits;
  if (b < kSub) return b;
  const std::size_t block = b >> kSubBits;  // >= 1
  const std::uint64_t sub = b & (kSub - 1);
  const int e = static_cast<int>(block) + kSubBits - 1;
  const std::uint64_t base = std::uint64_t{1} << e;
  const std::uint64_t width = std::uint64_t{1} << (e - kSubBits);
  return base + (sub + 1) * width - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  counts_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

std::uint64_t Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double Histogram::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    seen += counts_[b].load(std::memory_order_relaxed);
    if (seen >= target) return static_cast<double>(bucket_upper(b));
  }
  return static_cast<double>(max());
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

namespace {

// std::map: node-based, so Histogram addresses stay stable across inserts
// (hot paths cache the reference).
struct HistRegistry {
  std::mutex mu;
  std::map<std::string, Histogram> hists;
};

HistRegistry& registry() {
  static HistRegistry r;
  return r;
}

std::once_flag g_reset_hook_once;

}  // namespace

Histogram& histogram(const std::string& name) {
  std::call_once(g_reset_hook_once,
                 [] { base::counters().add_reset_hook(&reset_histograms); });
  auto& reg = registry();
  std::lock_guard lk(reg.mu);
  return reg.hists[name];
}

std::vector<std::pair<std::string, Histogram*>> histograms() {
  auto& reg = registry();
  std::lock_guard lk(reg.mu);
  std::vector<std::pair<std::string, Histogram*>> out;
  out.reserve(reg.hists.size());
  for (auto& [name, h] : reg.hists) out.emplace_back(name, &h);
  return out;
}

void reset_histograms() {
  auto& reg = registry();
  std::lock_guard lk(reg.mu);
  for (auto& [name, h] : reg.hists) h.reset();
}

}  // namespace sessmpi::obs
