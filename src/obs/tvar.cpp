#include "sessmpi/obs/tvar.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "sessmpi/base/stats.hpp"
#include "sessmpi/obs/hist.hpp"
#include "sessmpi/obs/postmortem.hpp"
#include "sessmpi/obs/sampler.hpp"
#include "sessmpi/obs/trace.hpp"

namespace sessmpi::obs {

namespace {

struct Cvar {
  std::string description;
  CvarGetter getter;
  CvarSetter setter;
};

struct CvarRegistry {
  std::mutex mu;
  std::map<std::string, Cvar> cvars;
};

CvarRegistry& cvar_registry() {
  static CvarRegistry r;
  return r;
}

struct GaugeRegistry {
  std::mutex mu;
  std::map<std::string, GaugeFn> gauges;
};

GaugeRegistry& gauge_registry() {
  static GaugeRegistry r;
  return r;
}

std::once_flag g_builtins_once;

void ensure_builtin_cvars() {
  std::call_once(g_builtins_once, [] {
    register_cvar(
        "obs.trace.enabled", "span tracing on (1) / off (0)",
        [] { return Tracer::instance().enabled() ? std::string("1")
                                                 : std::string("0"); },
        [](const std::string& v) {
          if (v != "0" && v != "1") return false;
          Tracer::instance().set_enabled(v == "1");
          return true;
        });
    register_cvar(
        "obs.trace.ring_events",
        "per-thread trace ring capacity (applies to new threads)",
        [] { return std::to_string(Tracer::instance().ring_capacity()); },
        [](const std::string& v) {
          std::size_t n = 0;
          for (char c : v) {
            if (c < '0' || c > '9') return false;
            n = n * 10 + static_cast<std::size_t>(c - '0');
          }
          if (n < 2 || n > (1u << 24)) return false;
          Tracer::instance().set_ring_capacity(n);
          return true;
        });
    register_cvar(
        "obs.postmortem.dir",
        "flight-recorder bundle directory; empty disables triggers",
        [] { return postmortem_dir(); },
        [](const std::string& v) {
          set_postmortem_dir(v);
          return true;
        });
    register_cvar(
        "obs.metrics.period_ms",
        "background pvar sampling period in ms; 0 stops the sampler",
        [] { return std::to_string(MetricsSampler::instance().period_ms()); },
        [](const std::string& v) {
          if (v.empty()) return false;
          int n = 0;
          for (char c : v) {
            if (c < '0' || c > '9') return false;
            n = n * 10 + (c - '0');
            if (n > 60'000) return false;
          }
          MetricsSampler::instance().set_period_ms(n);
          return true;
        });
  });
}

}  // namespace

std::vector<PvarDesc> pvar_list() {
  std::vector<PvarDesc> out;
  for (const auto& [name, value] : base::counters().snapshot()) {
    out.push_back({name, PvarClass::counter});
  }
  for (const auto& [name, h] : histograms()) {
    out.push_back({name, PvarClass::histogram});
  }
  {
    auto& reg = gauge_registry();
    std::lock_guard lk(reg.mu);
    for (const auto& [name, fn] : reg.gauges) {
      out.push_back({name, PvarClass::gauge});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PvarDesc& a, const PvarDesc& b) {
              return a.name < b.name;
            });
  return out;
}

std::optional<std::uint64_t> pvar_read_counter(const std::string& name) {
  for (const auto& [n, value] : base::counters().snapshot()) {
    if (n == name) return value;
  }
  return std::nullopt;
}

std::optional<HistSummary> pvar_read_histogram(const std::string& name) {
  for (const auto& [n, h] : histograms()) {
    if (n != name) continue;
    HistSummary s;
    s.count = h->count();
    s.min = h->min();
    s.max = h->max();
    s.mean = h->mean();
    s.p50 = h->percentile(0.50);
    s.p90 = h->percentile(0.90);
    s.p99 = h->percentile(0.99);
    return s;
  }
  return std::nullopt;
}

void register_pvar_gauge(const std::string& name, GaugeFn fn) {
  auto& reg = gauge_registry();
  std::lock_guard lk(reg.mu);
  reg.gauges[name] = std::move(fn);
}

std::optional<std::uint64_t> pvar_read_gauge(const std::string& name) {
  GaugeFn fn;
  {
    auto& reg = gauge_registry();
    std::lock_guard lk(reg.mu);
    auto it = reg.gauges.find(name);
    if (it == reg.gauges.end()) return std::nullopt;
    fn = it->second;
  }
  return fn();
}

bool pvar_reset(const std::string& name) {
  for (const auto& [n, h] : histograms()) {
    if (n == name) {
      h->reset();
      return true;
    }
  }
  if (pvar_read_counter(name).has_value()) {
    base::counters().reset_one(name);
    return true;
  }
  // Gauges are instantaneous computed values; resetting is a no-op but the
  // name is still known.
  return pvar_read_gauge(name).has_value();
}

void pvar_reset_all() { base::counters().reset(); }

void register_cvar(const std::string& name, const std::string& description,
                   CvarGetter getter, CvarSetter setter) {
  auto& reg = cvar_registry();
  std::lock_guard lk(reg.mu);
  reg.cvars[name] = Cvar{description, std::move(getter), std::move(setter)};
}

std::vector<CvarDesc> cvar_list() {
  ensure_builtin_cvars();
  auto& reg = cvar_registry();
  std::lock_guard lk(reg.mu);
  std::vector<CvarDesc> out;
  out.reserve(reg.cvars.size());
  for (const auto& [name, cv] : reg.cvars) {
    out.push_back({name, cv.description});
  }
  return out;
}

std::optional<std::string> cvar_read(const std::string& name) {
  ensure_builtin_cvars();
  auto& reg = cvar_registry();
  CvarGetter getter;
  {
    std::lock_guard lk(reg.mu);
    auto it = reg.cvars.find(name);
    if (it == reg.cvars.end()) return std::nullopt;
    getter = it->second.getter;
  }
  return getter();
}

bool cvar_write(const std::string& name, const std::string& value) {
  ensure_builtin_cvars();
  auto& reg = cvar_registry();
  CvarSetter setter;
  {
    std::lock_guard lk(reg.mu);
    auto it = reg.cvars.find(name);
    if (it == reg.cvars.end()) return false;
    setter = it->second.setter;
  }
  return setter(value);
}

}  // namespace sessmpi::obs
