#include "sessmpi/obs/sampler.hpp"

#include <chrono>
#include <fstream>
#include <utility>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/obs/tvar.hpp"

namespace sessmpi::obs {

MetricsSampler& MetricsSampler::instance() {
  static MetricsSampler s;
  return s;
}

MetricsSampler::~MetricsSampler() { set_period_ms(0); }

void MetricsSampler::set_period_ms(int ms) {
  std::thread to_join;
  {
    std::lock_guard lk(ctl_mu_);
    period_ms_.store(ms, std::memory_order_relaxed);
    if (ms > 0 && !running_) {
      stop_.store(false, std::memory_order_relaxed);
      thread_ = std::thread([this] { run(); });
      running_ = true;
    } else if (ms == 0 && running_) {
      stop_.store(true, std::memory_order_relaxed);
      to_join = std::move(thread_);
      running_ = false;
    }
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

void MetricsSampler::run() {
  while (true) {
    {
      std::unique_lock lk(cv_mu_);
      const int ms = std::max(1, period_ms());
      cv_.wait_for(lk, std::chrono::milliseconds(ms), [this] {
        return stop_.load(std::memory_order_relaxed);
      });
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    sample_now();
  }
}

void MetricsSampler::sample_now() {
  MetricSample sample;
  sample.ts_ns = base::now_ns();
  for (const PvarDesc& d : pvar_list()) {
    switch (d.cls) {
      case PvarClass::counter:
        if (auto v = pvar_read_counter(d.name)) {
          sample.points.push_back({d.name, static_cast<double>(*v)});
        }
        break;
      case PvarClass::gauge:
        if (auto v = pvar_read_gauge(d.name)) {
          sample.points.push_back({d.name, static_cast<double>(*v)});
        }
        break;
      case PvarClass::histogram:
        if (auto h = pvar_read_histogram(d.name)) {
          sample.points.push_back(
              {d.name + ".count", static_cast<double>(h->count)});
          sample.points.push_back({d.name + ".p99", h->p99});
        }
        break;
    }
  }
  std::lock_guard lk(ring_mu_);
  ring_.push_back(std::move(sample));
  while (ring_.size() > kMaxSamples) ring_.pop_front();
}

std::vector<MetricSample> MetricsSampler::samples() const {
  std::lock_guard lk(ring_mu_);
  return {ring_.begin(), ring_.end()};
}

void MetricsSampler::clear() {
  std::lock_guard lk(ring_mu_);
  ring_.clear();
}

std::size_t MetricsSampler::write_jsonl(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return 0;
  std::size_t lines = 0;
  for (const MetricSample& s : samples()) {
    os << "{\"ts_ns\": " << s.ts_ns << ", \"pvars\": {";
    bool first = true;
    for (const MetricPoint& p : s.points) {
      os << (first ? "" : ", ") << "\"" << p.name << "\": " << p.value;
      first = false;
    }
    os << "}}\n";
    ++lines;
  }
  return lines;
}

}  // namespace sessmpi::obs
