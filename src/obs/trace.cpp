#include "sessmpi/obs/trace.hpp"

#include <algorithm>
#include <thread>

#include "sessmpi/base/clock.hpp"

namespace sessmpi::obs {

namespace {

thread_local std::int32_t tls_track = -1;
thread_local std::uint64_t tls_flow_ctx = 0;

// Span-id allocator: process-wide so ids are unique across ranks in the
// in-process sim (a receiver must never confuse two senders' contexts).
std::atomic<std::uint64_t> g_next_span_id{1};

// Per-thread ring handle. shared_ptr keeps the ring alive in the Tracer's
// registry after the owning thread exits (sim rank threads are short-lived;
// their events are collected after the run).
thread_local std::shared_ptr<TraceBuffer> tls_buffer;

// Injected per-track clock skew (relaxed: a torn read is impossible for
// aligned 64-bit atomics, and skew changes only happen between runs).
std::atomic<std::int64_t> g_track_skew_ns[Tracer::kMaxSkewTracks]{};

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity, std::uint32_t tid)
    : ring_(std::max<std::size_t>(capacity, 2)), tid_(tid) {}

std::vector<Event> TraceBuffer::drain() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(h, ring_.size());
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = h - n; i < h; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i % ring_.size())]);
  }
  return out;
}

std::uint64_t TraceBuffer::evicted() const noexcept {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  return h > ring_.size() ? h - ring_.size() : 0;
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::set_thread_track(std::int32_t track) noexcept {
  tls_track = track;
}

std::int32_t Tracer::thread_track() noexcept { return tls_track; }

std::uint64_t Tracer::next_span_id() noexcept {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::set_flow_context(std::uint64_t ctx) noexcept {
  tls_flow_ctx = ctx;
}

std::uint64_t Tracer::flow_context() noexcept { return tls_flow_ctx; }

void Tracer::set_track_skew_ns(std::int32_t track, std::int64_t ns) noexcept {
  if (track >= 0 && track < kMaxSkewTracks) {
    g_track_skew_ns[track].store(ns, std::memory_order_relaxed);
  }
}

std::int64_t Tracer::track_skew_ns(std::int32_t track) noexcept {
  return track >= 0 && track < kMaxSkewTracks
             ? g_track_skew_ns[track].load(std::memory_order_relaxed)
             : 0;
}

void Tracer::reset_track_skews() noexcept {
  for (auto& skew : g_track_skew_ns) {
    skew.store(0, std::memory_order_relaxed);
  }
}

void Tracer::set_ring_capacity(std::size_t events) {
  capacity_.store(std::max<std::size_t>(events, 2),
                  std::memory_order_relaxed);
}

std::size_t Tracer::ring_capacity() const noexcept {
  return capacity_.load(std::memory_order_relaxed);
}

TraceBuffer& Tracer::local_buffer() {
  if (!tls_buffer) {
    std::lock_guard lk(mu_);
    tls_buffer = std::make_shared<TraceBuffer>(
        capacity_.load(std::memory_order_relaxed), next_tid_++);
    buffers_.push_back(tls_buffer);
  }
  return *tls_buffer;
}

void Tracer::emit(const char* name, const char* cat, Phase ph,
                  std::int32_t track, std::uint64_t id, std::uint64_t arg,
                  std::uint64_t arg2) {
  TraceBuffer& buf = local_buffer();
  // Dekker handshake with freeze(): publish busy (seq_cst), then re-check
  // enabled (seq_cst). Either the freezer sees busy and waits for us, or we
  // see disabled and back out — never a write racing the freeze-side read.
  buf.begin_write();
  if (!enabled_.load(std::memory_order_seq_cst)) {
    buf.end_write();
    return;
  }
  Event ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = base::now_ns() + track_skew_ns(track);
  ev.id = id;
  ev.arg = arg;
  ev.arg2 = arg2;
  ev.track = track;
  ev.phase = ph;
  ev.tid = buf.tid();
  buf.emit(ev);
  buf.end_write();
}

void Tracer::begin(const char* name, const char* cat, std::uint64_t arg) {
  if (!enabled()) return;
  emit(name, cat, Phase::begin, tls_track, 0, arg);
}

void Tracer::end(const char* name, const char* cat) {
  if (!enabled()) return;
  emit(name, cat, Phase::end, tls_track, 0, 0);
}

void Tracer::instant(const char* name, const char* cat, std::uint64_t arg) {
  if (!enabled()) return;
  emit(name, cat, Phase::instant, tls_track, 0, arg);
}

void Tracer::instant_on(std::int32_t track, const char* name, const char* cat,
                        std::uint64_t arg, std::uint64_t arg2) {
  if (!enabled()) return;
  emit(name, cat, Phase::instant, track, 0, arg, arg2);
}

void Tracer::async_begin(std::int32_t track, const char* name, const char* cat,
                         std::uint64_t id, std::uint64_t arg,
                         std::uint64_t arg2) {
  if (!enabled()) return;
  emit(name, cat, Phase::async_begin, track, id, arg, arg2);
}

void Tracer::async_instant(std::int32_t track, const char* name,
                           const char* cat, std::uint64_t id,
                           std::uint64_t arg) {
  if (!enabled()) return;
  emit(name, cat, Phase::async_instant, track, id, arg);
}

void Tracer::async_end(std::int32_t track, const char* name, const char* cat,
                       std::uint64_t id) {
  if (!enabled()) return;
  emit(name, cat, Phase::async_end, track, id, 0);
}

void Tracer::flow_start(const char* name, const char* cat, std::uint64_t id,
                        std::uint64_t arg) {
  if (!enabled()) return;
  emit(name, cat, Phase::flow_start, tls_track, id, arg);
}

void Tracer::flow_step(const char* name, const char* cat, std::uint64_t id) {
  if (!enabled()) return;
  emit(name, cat, Phase::flow_step, tls_track, id, 0);
}

void Tracer::flow_end(const char* name, const char* cat, std::uint64_t id) {
  if (!enabled()) return;
  emit(name, cat, Phase::flow_end, tls_track, id, 0);
}

std::vector<Event> Tracer::collect() const {
  std::vector<Event> out;
  {
    std::lock_guard lk(mu_);
    for (const auto& buf : buffers_) {
      auto events = buf->drain();
      out.insert(out.end(), events.begin(), events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

void Tracer::clear() {
  std::lock_guard lk(mu_);
  for (const auto& buf : buffers_) buf->reset();
}

std::uint64_t Tracer::evicted() const {
  std::lock_guard lk(mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->evicted();
  return total;
}

bool Tracer::freeze() {
  const bool was = enabled_.load(std::memory_order_relaxed);
  enabled_.store(false, std::memory_order_seq_cst);
  std::lock_guard lk(mu_);
  // Holding mu_ also blocks new ring registration; a thread parked in
  // local_buffer() will see disabled once it gets in, and back out.
  for (const auto& buf : buffers_) {
    while (buf->busy()) {
      std::this_thread::yield();
    }
  }
  return was;
}

void Tracer::thaw(bool re_enable) noexcept {
  if (re_enable) {
    enabled_.store(true, std::memory_order_release);
  }
}

}  // namespace sessmpi::obs
