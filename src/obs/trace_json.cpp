#include "sessmpi/obs/trace_json.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>

#include "sessmpi/base/error.hpp"

namespace sessmpi::obs {

namespace {

char phase_char(Phase ph) {
  switch (ph) {
    case Phase::begin:
      return 'B';
    case Phase::end:
      return 'E';
    case Phase::instant:
      return 'i';
    case Phase::async_begin:
      return 'b';
    case Phase::async_instant:
      return 'n';
    case Phase::async_end:
      return 'e';
    case Phase::flow_start:
      return 's';
    case Phase::flow_step:
      return 't';
    case Phase::flow_end:
      return 'f';
  }
  return 'i';
}

bool is_async(char ph) { return ph == 'b' || ph == 'n' || ph == 'e'; }

bool is_flow(char ph) { return ph == 's' || ph == 't' || ph == 'f'; }

/// Chrome wants microseconds; keep nanosecond precision as 3 decimals.
std::string format_ts_us(std::int64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ts_ns / 1000),
                static_cast<long long>(ts_ns % 1000));
  return buf;
}

}  // namespace

void write_event_json(std::ostream& os, const Event& ev, int pid_override) {
  const int pid = pid_override >= 0
                      ? pid_override
                      : (ev.track >= 0 ? ev.track : kRuntimeTrackPid);
  const char ph = phase_char(ev.phase);
  os << "{\"name\":\"" << (ev.name != nullptr ? ev.name : "?")
     << "\",\"cat\":\"" << (ev.cat != nullptr ? ev.cat : "?")
     << "\",\"ph\":\"" << ph << "\",\"ts\":" << format_ts_us(ev.ts_ns)
     << ",\"pid\":" << pid << ",\"tid\":" << ev.tid;
  if (is_async(ph) || is_flow(ph)) {
    char idbuf[24];
    std::snprintf(idbuf, sizeof idbuf, "0x%llx",
                  static_cast<unsigned long long>(ev.id));
    os << ",\"id\":\"" << idbuf << "\"";
  }
  if (ev.arg != 0 || ev.arg2 != 0) {
    os << ",\"args\":{\"v\":" << ev.arg;
    if (ev.arg2 != 0) os << ",\"v2\":" << ev.arg2;
    os << "}";
  }
  if (ev.phase == Phase::instant) {
    os << ",\"s\":\"t\"";  // thread-scoped instant (draws as a tick)
  }
  if (is_flow(ph)) {
    os << ",\"bp\":\"e\"";  // bind to enclosing slice, not the next one
  }
  os << "}";
}

void write_trace_file(std::ostream& os, const std::vector<Event>& events,
                      int pid, std::int64_t clock_ns_offset,
                      std::uint64_t evicted) {
  const int rank = pid == kRuntimeTrackPid ? -1 : pid;
  os << "{\"otherData\": {\"rank\": " << rank
     << ", \"clock_ns_offset\": " << clock_ns_offset
     << ", \"evicted\": " << evicted << "},\n";
  os << "\"displayTimeUnit\": \"ns\",\n";
  os << "\"traceEvents\": [\n";
  bool first = true;
  for (const Event& ev : events) {
    if (!first) os << ",\n";
    first = false;
    write_event_json(os, ev, pid);
  }
  os << "\n]}\n";
}

std::vector<std::string> write_rank_traces(const std::string& dir,
                                           const std::string& prefix,
                                           const std::vector<Event>& events) {
  std::filesystem::create_directories(dir);
  std::map<int, std::vector<Event>> by_pid;
  for (const Event& ev : events) {
    by_pid[ev.track >= 0 ? ev.track : kRuntimeTrackPid].push_back(ev);
  }
  std::vector<std::string> paths;
  for (const auto& [pid, evs] : by_pid) {
    const std::string label =
        pid == kRuntimeTrackPid ? "runtime" : "rank" + std::to_string(pid);
    const std::string path =
        (std::filesystem::path(dir) / (prefix + "." + label + ".trace.json"))
            .string();
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
      throw base::Error(base::ErrClass::other,
                        "cannot open trace file " + path);
    }
    // Events on a skewed track carry the skew in their timestamps; the
    // negation recorded here is what realigns them at merge time.
    const std::int64_t offset =
        pid == kRuntimeTrackPid ? 0 : -Tracer::track_skew_ns(pid);
    write_trace_file(os, evs, pid, offset, /*evicted=*/0);
    paths.push_back(path);
  }
  return paths;
}

namespace {

// Minimal scanner for the one-event-per-line schema this module writes
// (same spirit as tools/report_merge's COUNTERS_JSON scanner): find a
// quoted key, then read the value after the colon.
std::optional<std::string> find_string_value(const std::string& line,
                                             const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos += needle.size();
  while (pos < line.size() && (line[pos] == ' ')) ++pos;
  if (pos >= line.size() || line[pos] != '"') return std::nullopt;
  ++pos;
  auto end = line.find('"', pos);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(pos, end - pos);
}

std::optional<double> find_number_value(const std::string& line,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos += needle.size();
  while (pos < line.size() && line[pos] == ' ') ++pos;
  auto end = pos;
  while (end < line.size() &&
         (std::isdigit(static_cast<unsigned char>(line[end])) != 0 ||
          line[end] == '-' || line[end] == '.' || line[end] == '+' ||
          line[end] == 'e' || line[end] == 'E')) {
    ++end;
  }
  if (end == pos) return std::nullopt;
  return std::stod(line.substr(pos, end - pos));
}

}  // namespace

std::vector<ParsedEvent> parse_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw base::Error(base::ErrClass::rte_not_found,
                      "cannot open trace file " + path);
  }
  std::vector<ParsedEvent> out;
  std::int64_t clock_ns_offset = 0;
  std::string line;
  bool saw_events_array = false;
  while (std::getline(is, line)) {
    if (auto off = find_number_value(line, "clock_ns_offset")) {
      clock_ns_offset = static_cast<std::int64_t>(*off);
    }
    if (line.find("\"traceEvents\"") != std::string::npos) {
      saw_events_array = true;
    }
    auto name = find_string_value(line, "name");
    auto ph = find_string_value(line, "ph");
    auto ts = find_number_value(line, "ts");
    if (!name || !ph || !ts || ph->empty()) continue;
    ParsedEvent ev;
    ev.name = *name;
    ev.cat = find_string_value(line, "cat").value_or("");
    ev.ph = (*ph)[0];
    ev.ts_us = *ts + static_cast<double>(clock_ns_offset) / 1000.0;
    ev.pid = static_cast<int>(find_number_value(line, "pid").value_or(0));
    ev.tid =
        static_cast<std::uint32_t>(find_number_value(line, "tid").value_or(0));
    if (auto id = find_string_value(line, "id")) {
      ev.has_id = true;
      ev.id = std::stoull(*id, nullptr, 0);
    }
    ev.arg = static_cast<std::uint64_t>(find_number_value(line, "v").value_or(0));
    ev.arg2 =
        static_cast<std::uint64_t>(find_number_value(line, "v2").value_or(0));
    out.push_back(std::move(ev));
  }
  if (!saw_events_array) {
    throw base::Error(base::ErrClass::other,
                      "not a trace file (no traceEvents): " + path);
  }
  return out;
}

std::size_t merge_traces(const std::vector<std::string>& files,
                         std::ostream& out) {
  std::vector<ParsedEvent> all;
  for (const auto& file : files) {
    // A killed-rank chaos run routinely leaves missing, empty, or truncated
    // per-rank files; losing one rank's view must not lose the merge.
    try {
      auto events = parse_trace_file(file);
      all.insert(all.end(), events.begin(), events.end());
    } catch (const base::Error& e) {
      std::cerr << "trace_merge: skipping " << file << ": " << e.what()
                << "\n";
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const ParsedEvent& a, const ParsedEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  const double t0 = all.empty() ? 0.0 : all.front().ts_us;

  out << "{\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";
  bool first = true;
  // Track labels so Perfetto shows "rank N" instead of bare pids.
  std::set<int> pids;
  for (const ParsedEvent& ev : all) pids.insert(ev.pid);
  for (int pid : pids) {
    const std::string label =
        pid == kRuntimeTrackPid ? "runtime" : "rank " + std::to_string(pid);
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"" << label << "\"}}";
    out << ",\n{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"sort_index\":" << pid << "}}";
  }
  for (const ParsedEvent& ev : all) {
    if (!first) out << ",\n";
    first = false;
    char ts[40];
    std::snprintf(ts, sizeof ts, "%.3f", ev.ts_us - t0);
    out << "{\"name\":\"" << ev.name << "\",\"cat\":\"" << ev.cat
        << "\",\"ph\":\"" << ev.ph << "\",\"ts\":" << ts
        << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
    if (ev.has_id) {
      char idbuf[24];
      std::snprintf(idbuf, sizeof idbuf, "0x%llx",
                    static_cast<unsigned long long>(ev.id));
      out << ",\"id\":\"" << idbuf << "\"";
    }
    if (ev.arg != 0 || ev.arg2 != 0) {
      out << ",\"args\":{\"v\":" << ev.arg;
      if (ev.arg2 != 0) out << ",\"v2\":" << ev.arg2;
      out << "}";
    }
    if (ev.ph == 'i') out << ",\"s\":\"t\"";
    if (is_flow(ev.ph)) out << ",\"bp\":\"e\"";
    out << "}";
  }
  out << "\n]}\n";
  return all.size();
}

}  // namespace sessmpi::obs
