#pragma once

// On-node single-copy data movement for the collective engine (DESIGN.md
// §13). Ranks are threads inside one OS process (sim substitution for the
// XPMEM/shm segments an XHC-style component maps on real hardware), so a
// writer can expose its *own* buffer and every on-node reader consumes it
// directly — no per-edge deep copy, no bounce buffer.
//
// Release protocol per slot:
//   publish:  wait readers_left == 0 (previous ordinal drained), write
//             src/bytes plainly, store the reader count, then release-store
//             the ordinal into seq.
//   consume:  acquire-spin until seq >= wanted ordinal (which orders the
//             plain src/bytes reads), read through src, then release-
//             decrement readers_left.
//   The writer's next publish (or an explicit drain before returning a
//   user buffer or freeing scratch) acquire-waits readers_left == 0, which
//   orders every reader's copies before buffer reuse.
//
// Ordinals are (coll_seq + 1) * kOpStride + step: strictly increasing
// across collectives on one communicator, so a late reader can never
// confuse the previous operation's publication with its own.
//
// Poisoning is sticky: every cause (peer death, revoke, cluster abort, an
// exception escaping a user reduction op) is terminal for the communicator
// in the ULFM model, so once a region is poisoned all later waits on it
// fail fast instead of spinning on state a bailed writer will never set.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sessmpi/base/error.hpp"

namespace sessmpi::sim {
class Cluster;
}  // namespace sessmpi::sim

namespace sessmpi::coll {

struct alignas(64) Slot {
  std::atomic<std::uint64_t> seq{0};       ///< last published ordinal
  std::atomic<std::uint32_t> readers_left{0};
  const std::byte* src = nullptr;          ///< writer's buffer, read in place
  std::size_t bytes = 0;                   ///< payload (or slice stride)
};

/// One shared region per (node, communicator): a slot pair per on-node
/// member. Channel 0 carries member data publications, channel 1 the
/// fan-out/release publications, so a fan-in and the following fan-out
/// never contend for one slot.
class NodeShared {
 public:
  static constexpr int kChannels = 2;
  static constexpr std::uint64_t kOpStride = 256;

  explicit NodeShared(int nmembers) : slots_(static_cast<std::size_t>(nmembers) * kChannels) {}

  [[nodiscard]] Slot& slot(int member, int channel) {
    return slots_[static_cast<std::size_t>(member) * kChannels +
                  static_cast<std::size_t>(channel)];
  }

  /// First poisoner wins; later causes keep the original class.
  void poison(ErrClass cls) noexcept {
    int expected = 0;
    poison_.compare_exchange_strong(expected, static_cast<int>(cls),
                                    std::memory_order_release,
                                    std::memory_order_relaxed);
  }
  [[nodiscard]] ErrClass poisoned() const noexcept {
    return static_cast<ErrClass>(poison_.load(std::memory_order_acquire));
  }

 private:
  std::vector<Slot> slots_;
  std::atomic<int> poison_{0};  ///< 0 (= ErrClass::success) while healthy
};

/// Registry key: one region per node per communicator. Sessions-derived
/// communicators key by exCID (globally agreed, unique per live comm);
/// World-model/consensus communicators key by local CID, which is
/// symmetric across members by construction, and whose slot cannot be
/// recycled until every member freed the previous communicator — at which
/// point the old region's last strong reference is gone and the weak entry
/// has expired, so aliasing is impossible.
struct RegionKey {
  int node = 0;
  std::uint64_t excid_hi = 0;
  std::uint64_t excid_lo = 0;
  std::uint32_t cid = 0;

  friend bool operator<(const RegionKey& a, const RegionKey& b) noexcept {
    if (a.node != b.node) return a.node < b.node;
    if (a.excid_hi != b.excid_hi) return a.excid_hi < b.excid_hi;
    if (a.excid_lo != b.excid_lo) return a.excid_lo < b.excid_lo;
    return a.cid < b.cid;
  }
};

/// Attach to (creating on demand) the shared region for `key`. The
/// registry lives in the cluster's opaque coll_arena slot and holds only
/// weak references: regions die with the last attached plan, like real shm
/// segments unmapped by their final process.
std::shared_ptr<NodeShared> attach_region(sim::Cluster& cluster,
                                          const RegionKey& key, int nmembers);

}  // namespace sessmpi::coll
