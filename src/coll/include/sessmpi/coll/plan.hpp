#pragma once

// Per-communicator topology plan for the hierarchical collective engine.
// Built lazily from the sim cluster's node/socket layout on the first
// collective, cached on the CommState, and dropped on revoke — a
// post-shrink communicator is a fresh CommState, so membership changes
// always rebuild the plan.

#include <memory>
#include <vector>

#include "sessmpi/base/topology.hpp"
#include "sessmpi/coll/shm.hpp"

namespace sessmpi::detail {
struct CommState;
struct ProcState;
}  // namespace sessmpi::detail

namespace sessmpi::coll {

struct Plan {
  int nranks = 0;
  int myrank = -1;

  /// Comm ranks grouped by hosting node, node index ascending by physical
  /// node id; members ascending by comm rank. Identical on every member.
  std::vector<std::vector<int>> node_members;
  std::vector<int> leaders;                 ///< lowest comm rank per node
  std::vector<std::uint8_t> node_contiguous;  ///< comm ranks form one run
  std::vector<int> node_of;  ///< comm rank -> plan node index
  std::vector<int> slot_of;  ///< comm rank -> position within its node

  int my_node = 0;
  int my_slot = 0;
  int on_node = 1;  ///< members of my node (including me)
  bool i_am_leader = true;
  bool multi_member = false;  ///< any node hosts > 1 member

  /// My node's members grouped by socket (socket index ascending, comm
  /// rank ascending within a socket); the intra-node fold order.
  std::vector<std::vector<int>> my_sockets;

  /// Tree depth the hierarchy gives this rank's traffic: cross-node level,
  /// node level, plus a socket level when the node spans sockets.
  int depth = 1;

  /// Global ranks of my node's members (liveness polling while spinning).
  std::vector<base::Rank> my_node_globals;

  /// On-node shared region; null when this rank is alone on its node.
  std::shared_ptr<NodeShared> region;
};

/// The communicator's cached plan, built under ps.mu on first use.
std::shared_ptr<const Plan> plan_for(detail::ProcState& ps,
                                     const std::shared_ptr<detail::CommState>& s);

}  // namespace sessmpi::coll
