#include "sessmpi/coll/shm.hpp"

#include <map>
#include <memory>
#include <mutex>

#include "sessmpi/sim/cluster.hpp"

namespace sessmpi::coll {

namespace {

struct RegionRegistry {
  std::map<RegionKey, std::weak_ptr<NodeShared>> regions;
};

}  // namespace

std::shared_ptr<NodeShared> attach_region(sim::Cluster& cluster,
                                          const RegionKey& key, int nmembers) {
  std::lock_guard lock(cluster.coll_arena_mu);
  if (!cluster.coll_arena) {
    cluster.coll_arena = std::make_shared<RegionRegistry>();
  }
  auto& reg = *std::static_pointer_cast<RegionRegistry>(cluster.coll_arena);
  // Sweep entries whose region died with its last communicator, so a
  // long-lived cluster churning communicators stays bounded.
  for (auto it = reg.regions.begin(); it != reg.regions.end();) {
    it = it->second.expired() ? reg.regions.erase(it) : std::next(it);
  }
  std::weak_ptr<NodeShared>& wk = reg.regions[key];
  if (auto live = wk.lock()) {
    return live;
  }
  auto fresh = std::make_shared<NodeShared>(nmembers);
  wk = fresh;
  return fresh;
}

}  // namespace sessmpi::coll
