// Topology-aware hierarchical collective engine (DESIGN.md §13).
//
// Every blocking collective on Communicator dispatches here. A cached
// per-communicator Plan (plan.hpp) splits the communicator into nodes;
// inside a node the ranks-are-threads simulation lets a writer expose its
// own buffer through a NodeShared slot and every on-node reader consume it
// in place (shm.hpp release protocol) — a faithful stand-in for the
// XPMEM-mapped single-copy path of an XHC-style component. Only node
// leaders touch the fabric, so cross-node traffic drops from O(ranks) to
// O(nodes) messages and the on-node payload is moved zero times.
//
// Selection: the "coll.algorithm" cvar forces flat/hier globally; "auto"
// (default) goes hierarchical whenever some node hosts more than one
// member. Within the hierarchical allreduce the leader exchange picks
// recursive doubling for small payloads and a pipelined ring
// (reduce-scatter + allgather) for large ones.
//
// Failure handling: blocking pt2pt throws on peer death/revocation; shm
// waits poll liveness and the region poison. Any abort poisons the
// region (sticky, first cause wins) so on-node peers spinning on a slot
// fail fast with the same error class instead of hanging — every cause is
// terminal for the communicator in the ULFM model, which is what makes
// the sticky form safe.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "detail/state.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/base/yield.hpp"
#include "sessmpi/coll/plan.hpp"
#include "sessmpi/coll/shm.hpp"
#include "sessmpi/comm.hpp"
#include "sessmpi/obs/hist.hpp"
#include "sessmpi/obs/trace.hpp"
#include "sessmpi/obs/tvar.hpp"

namespace sessmpi {

using coll::NodeShared;
using coll::Plan;
using coll::Slot;
using detail::CommState;
using detail::ProcState;
using detail::RequestPtr;

namespace {

// --- selection --------------------------------------------------------------

enum class Algo : int { automatic = 0, flat = 1, hier = 2 };
std::atomic<int> g_algo{static_cast<int>(Algo::automatic)};

void ensure_tvars() {
  static const bool once = [] {
    obs::register_cvar(
        "coll.algorithm",
        "collective algorithm selection: auto | flat | hier (global; flip "
        "only while no collective is in flight)",
        [] {
          switch (static_cast<Algo>(g_algo.load(std::memory_order_relaxed))) {
            case Algo::flat:
              return std::string("flat");
            case Algo::hier:
              return std::string("hier");
            default:
              return std::string("auto");
          }
        },
        [](const std::string& v) {
          if (v == "auto") {
            g_algo.store(static_cast<int>(Algo::automatic),
                         std::memory_order_relaxed);
          } else if (v == "flat") {
            g_algo.store(static_cast<int>(Algo::flat),
                         std::memory_order_relaxed);
          } else if (v == "hier") {
            g_algo.store(static_cast<int>(Algo::hier),
                         std::memory_order_relaxed);
          } else {
            return false;
          }
          return true;
        });
    obs::register_pvar_gauge("coll.zero_copy_pct", [] {
      const std::uint64_t shm = base::counters().value("coll.shm_bytes");
      const std::uint64_t wire = base::counters().value("coll.wire_bytes");
      const std::uint64_t total = shm + wire;
      return total == 0 ? std::uint64_t{0} : shm * 100 / total;
    });
    return true;
  }();
  (void)once;
}

// Register eagerly as well, so tools (and tests) can flip "coll.algorithm"
// before the first collective runs. The obs registry is a function-local
// static, so this is safe under any static-init order.
const bool g_tvars_eager = (ensure_tvars(), true);

const std::shared_ptr<CommState>& coll_state(
    const std::shared_ptr<CommState>& s) {
  if (!s || s->freed) {
    throw Error(ErrClass::comm, "collective on invalid communicator");
  }
  ensure_tvars();
  return s;
}

std::uint32_t next_seq(const std::shared_ptr<CommState>& s) {
  std::lock_guard lock(s->ps->mu);
  return s->coll_seq++;
}

/// Binomial-tree parent/children of `vrank` (virtual rank, root at 0).
void tree(int vrank, int size, int* parent, std::vector<int>* children) {
  *parent = -1;
  int mask = 1;
  while (mask < size) {
    if ((vrank & mask) != 0) {
      *parent = vrank & ~mask;
      return;
    }
    const int child = vrank | mask;
    if (child < size) {
      children->push_back(child);
    }
    mask <<= 1;
  }
}

/// Leader of `node`, except the root leads its own node so rooted
/// operations never relay through an extra hop.
int head_of(const Plan& p, int node, int root) {
  return p.node_of[static_cast<std::size_t>(root)] == node
             ? root
             : p.leaders[static_cast<std::size_t>(node)];
}

bool hier_selected(const Plan& p) {
  if (p.nranks < 2 || !p.multi_member) {
    return false;
  }
  switch (static_cast<Algo>(g_algo.load(std::memory_order_relaxed))) {
    case Algo::flat:
      return false;
    case Algo::hier:
      return true;
    default:
      return true;  // auto: multi-member nodes exist, hierarchy pays off
  }
}

void pick(const char* op, const char* variant) {
  base::counters().add(std::string("coll.algo.") + op + "." + variant);
}

/// memcpy that tolerates the null-pointer/zero-length corner uniformly
/// (zero-count collectives reach every path with empty buffers).
void safe_copy(void* dst, const void* src, std::size_t n) {
  if (n > 0) {
    std::memcpy(dst, src, n);
  }
}

/// Stage the contribution: MPI_IN_PLACE means "my input is in recvbuf",
/// which must be copied aside because recvbuf doubles as the output (and,
/// hierarchically, because peers read the contribution while recvbuf is
/// being overwritten with the result).
const void* resolve_contrib(const void* sendbuf, void* recvbuf,
                            std::size_t bytes, std::vector<std::byte>* stage) {
  if (sendbuf != in_place) {
    return sendbuf;
  }
  stage->resize(bytes);
  safe_copy(stage->data(), recvbuf, bytes);
  return stage->data();
}

/// Fabric-send accounting; a payload copied over the fabric between two
/// ranks of the *same* node is exactly the copy the zero-copy path is
/// meant to eliminate, so it also bumps coll.payload_copies.
void note_wire(ProcState& ps, const CommState& s, int dst, std::size_t bytes) {
  static const auto c_sends = base::counter("coll.wire_sends");
  static const auto c_bytes = base::counter("coll.wire_bytes");
  static const auto c_copies = base::counter("coll.payload_copies");
  c_sends.add();
  c_bytes.add(bytes);
  if (ps.proc.cluster().topology().same_node(ps.proc.rank(),
                                             s.global_of(dst))) {
    c_copies.add();
  }
}

// --- shm protocol drivers ---------------------------------------------------

struct Ctx {
  ProcState& ps;
  const std::shared_ptr<CommState>& s;
  const Plan& p;
  std::uint64_t base;  ///< (coll_seq + 1) * kOpStride: this op's ordinal base
  std::uint32_t seq;
};

Ctx make_ctx(ProcState& ps, const std::shared_ptr<CommState>& s, const Plan& p,
             std::uint32_t seq) {
  return Ctx{ps, s, p,
             (static_cast<std::uint64_t>(seq) + 1) * NodeShared::kOpStride,
             seq};
}

[[noreturn]] void poison_throw(const Ctx& c, ErrClass cls, const char* what) {
  if (c.p.region) {
    c.p.region->poison(cls);
    static const auto c_poisons = base::counter("coll.poisons");
    c_poisons.add();
  }
  throw Error(cls, what);
}

/// Everything that can unblock a spinning shm wait: cluster abort, a peer
/// poisoning the region, an on-node peer dying (the writer we wait on may
/// never publish), or a revocation flood.
void liveness_check(const Ctx& c) {
  sim::Cluster& cluster = c.ps.proc.cluster();
  if (cluster.aborted()) {
    throw Error(ErrClass::proc_aborted, "cluster aborting during collective");
  }
  if (c.p.region) {
    const ErrClass cls = c.p.region->poisoned();
    if (cls != ErrClass::success) {
      throw Error(cls, "collective aborted by on-node peer");
    }
  }
  for (base::Rank g : c.p.my_node_globals) {
    if (cluster.fabric().is_failed(g)) {
      poison_throw(c, ErrClass::rte_proc_failed,
                   "on-node peer failed during collective");
    }
  }
  bool revoked = false;
  {
    std::lock_guard lock(c.ps.mu);
    revoked = c.s->revoked;
  }
  if (revoked) {
    poison_throw(c, ErrClass::comm_revoked,
                 "communicator revoked during collective");
  }
}

template <class Pred>
void spin(const Ctx& c, Pred&& ready) {
  for (std::uint64_t i = 0;; ++i) {
    if (ready()) {
      return;
    }
    if ((i & 63u) == 63u) {
      liveness_check(c);
    }
    if ((i & 1023u) == 1023u) {
      c.ps.progress_pass(false);  // keep floods/notices flowing while parked
    }
    base::try_yield();  // scheduler-aware: fibers hand the worker back
  }
}

/// Publish my slot on `channel`: expose `src` to `readers` peers under
/// ordinal `ord`. Waits for the previous publication to drain first, which
/// is also what makes reusing the buffer behind an older ordinal safe.
void publish(const Ctx& c, int channel, const void* src, std::size_t bytes,
             std::uint32_t readers, std::uint64_t ord) {
  if (readers == 0) {
    return;
  }
  Slot& sl = c.p.region->slot(c.p.my_slot, channel);
  spin(c, [&] { return sl.readers_left.load(std::memory_order_acquire) == 0; });
  sl.src = static_cast<const std::byte*>(src);
  sl.bytes = bytes;
  sl.readers_left.store(readers, std::memory_order_relaxed);
  sl.seq.store(c.base + ord, std::memory_order_release);
  static const auto c_pub = base::counter("coll.shm_publishes");
  c_pub.add();
}

/// Wait for comm rank `commrank` (on my node) to publish ordinal `ord`.
Slot& await_slot(const Ctx& c, int commrank, int channel, std::uint64_t ord) {
  Slot& sl =
      c.p.region->slot(c.p.slot_of[static_cast<std::size_t>(commrank)], channel);
  spin(c, [&] {
    return sl.seq.load(std::memory_order_acquire) >= c.base + ord;
  });
  static const auto c_reads = base::counter("coll.shm_reads");
  static const auto c_bytes = base::counter("coll.shm_bytes");
  c_reads.add();
  c_bytes.add(sl.bytes);
  return sl;
}

void done_read(Slot& sl) { sl.readers_left.fetch_sub(1, std::memory_order_release); }

/// Wait until every reader of my latest publication on `channel` finished —
/// required before returning a user buffer or freeing scratch it exposed.
void drain_my(const Ctx& c, int channel) {
  if (!c.p.region) {
    return;
  }
  Slot& sl = c.p.region->slot(c.p.my_slot, channel);
  spin(c, [&] { return sl.readers_left.load(std::memory_order_acquire) == 0; });
}

/// Run a hierarchical body; any escaping failure poisons the region so
/// on-node peers blocked on our slots abort with the same class instead of
/// spinning forever. An exception out of a user reduction op counts too.
template <class Fn>
void with_region_poison(const Ctx& c, Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    if (c.p.region) {
      c.p.region->poison(e.error_class());
      base::counters().add("coll.poisons");
    }
    throw;
  } catch (...) {
    if (c.p.region) {
      c.p.region->poison(ErrClass::intern);
      base::counters().add("coll.poisons");
    }
    throw;
  }
}

/// Map a completed nonblocking sub-request's failure into a poison+throw.
void check_req(const Ctx& c, const RequestPtr& req, const char* what) {
  if (req->status.error != ErrClass::success) {
    poison_throw(c, req->status.error, what);
  }
}

// --- hierarchical algorithms ------------------------------------------------

/// Cross-node barrier among the node leaders: binomial fan-in/fan-out over
/// node indices. Mirrors the nonblocking barrier's failure protocol: a
/// 1-byte payload on an expected-empty edge is the poison marker, and an
/// abort floods markers down the remaining edges (never back the edge the
/// poison arrived on).
void head_barrier(const Ctx& c, int tag) {
  const int nh = static_cast<int>(c.p.leaders.size());
  int parent = -1;
  std::vector<int> children;
  tree(c.p.my_node, nh, &parent, &children);
  std::byte token{};
  int bad_edge = -1;  // node index whose edge delivered a poison marker
  try {
    for (int child : children) {
      bad_edge = child;
      Status st = c.ps.blocking_recv(c.s, &token, 1, Datatype::byte(),
                                     c.p.leaders[static_cast<std::size_t>(child)],
                                     tag);
      if (st.count_bytes > 0) {
        poison_throw(c, ErrClass::rte_proc_failed, "barrier peer aborted");
      }
      bad_edge = -1;
    }
    if (parent >= 0) {
      const int pr = c.p.leaders[static_cast<std::size_t>(parent)];
      c.ps.blocking_send(c.s, nullptr, 0, Datatype::byte(), pr, tag, false);
      note_wire(c.ps, *c.s, pr, 0);
      bad_edge = parent;
      Status st = c.ps.blocking_recv(c.s, &token, 1, Datatype::byte(), pr, tag);
      if (st.count_bytes > 0) {
        poison_throw(c, ErrClass::rte_proc_failed, "barrier peer aborted");
      }
      bad_edge = -1;
    }
    for (int child : children) {
      const int cr = c.p.leaders[static_cast<std::size_t>(child)];
      c.ps.blocking_send(c.s, nullptr, 0, Datatype::byte(), cr, tag, false);
      note_wire(c.ps, *c.s, cr, 0);
    }
  } catch (const Error& e) {
    if (e.error_class() != ErrClass::comm_revoked) {
      // A revocation already floods itself; everything else must be walked
      // down the tree so no surviving leader keeps waiting on us.
      static const std::byte kPoison{1};
      fabric::Fabric& fab = c.ps.proc.cluster().fabric();
      auto flood = [&](int node) {
        if (node == bad_edge) {
          return;  // that leader already aborted and freed its receives
        }
        const int r = c.p.leaders[static_cast<std::size_t>(node)];
        if (!fab.is_failed(c.s->global_of(r))) {
          c.ps.isend_impl(c.s, &kPoison, 1, Datatype::byte(), r, tag, false);
        }
      };
      if (parent >= 0) {
        flood(parent);
      }
      for (int child : children) {
        flood(child);
      }
    }
    throw;
  }
}

/// Hierarchical pipelined broadcast: binomial tree over node heads (large
/// payloads split into segments so a node can forward segment k while
/// receiving k+1), then a single on-node publication per segment that every
/// member copies straight out of the head's buffer.
void hier_bcast(const Ctx& c, void* buf, std::size_t bytes, int root) {
  const Plan& p = c.p;
  const int nh = static_cast<int>(p.leaders.size());
  const int rootnode = p.node_of[static_cast<std::size_t>(root)];
  auto* out = static_cast<std::byte*>(buf);

  int nseg = 1;
  if (bytes >= (128u << 10)) {
    nseg = static_cast<int>(
        std::min<std::size_t>(8, bytes / (64u << 10)));
  }
  const std::size_t segsz = (bytes + static_cast<std::size_t>(nseg) - 1) /
                            static_cast<std::size_t>(nseg);

  const int my_head = head_of(p, p.my_node, root);
  if (c.s->myrank == my_head) {
    const int vnode = (p.my_node - rootnode + nh) % nh;
    int parent = -1;
    std::vector<int> children;
    tree(vnode, nh, &parent, &children);
    const auto head_rank = [&](int v) {
      return head_of(p, (v + rootnode) % nh, root);
    };
    for (int si = 0; si < nseg; ++si) {
      const std::size_t off = static_cast<std::size_t>(si) * segsz;
      const std::size_t sb = std::min(segsz, bytes - off);
      const int tag = detail::internal_tag(c.seq, si);
      if (parent >= 0) {
        c.ps.blocking_recv(c.s, out + off, static_cast<int>(sb),
                           Datatype::byte(), head_rank(parent), tag);
      }
      for (int child : children) {
        const int cr = head_rank(child);
        c.ps.blocking_send(c.s, out + off, static_cast<int>(sb),
                           Datatype::byte(), cr, tag, false);
        note_wire(c.ps, *c.s, cr, sb);
      }
      publish(c, 0, out + off, sb, static_cast<std::uint32_t>(p.on_node - 1),
              static_cast<std::uint64_t>(si));
    }
    drain_my(c, 0);
  } else {
    for (int si = 0; si < nseg; ++si) {
      const std::size_t off = static_cast<std::size_t>(si) * segsz;
      const std::size_t sb = std::min(segsz, bytes - off);
      Slot& sl = await_slot(c, my_head, 0, static_cast<std::uint64_t>(si));
      safe_copy(out + off, sl.src, std::min(sb, sl.bytes));
      done_read(sl);
    }
  }
}

/// Commutative hierarchical reduce: on-node members publish their
/// contribution once; the head folds them in socket-grouped order, then a
/// binomial tree over heads folds the node partials toward the root.
void hier_reduce_commutative(const Ctx& c, const void* contrib, void* recvbuf,
                             int count, const Datatype& dt, const Op& op,
                             int root, std::size_t bytes) {
  const Plan& p = c.p;
  const int nh = static_cast<int>(p.leaders.size());
  const int rootnode = p.node_of[static_cast<std::size_t>(root)];
  const int my_head = head_of(p, p.my_node, root);
  const int tag = detail::internal_tag(c.seq, 0);

  if (c.s->myrank != my_head) {
    publish(c, 0, contrib, bytes, 1, 0);
    drain_my(c, 0);
    return;
  }

  std::vector<std::byte> acc(bytes);
  safe_copy(acc.data(), contrib, bytes);
  for (const auto& sock : p.my_sockets) {
    for (int m : sock) {
      if (m == c.s->myrank) {
        continue;
      }
      Slot& sl = await_slot(c, m, 0, 0);
      op.apply(sl.src, acc.data(), count, dt);
      done_read(sl);
    }
  }

  const int vnode = (p.my_node - rootnode + nh) % nh;
  int parent = -1;
  std::vector<int> children;
  tree(vnode, nh, &parent, &children);
  const auto head_rank = [&](int v) {
    return head_of(p, (v + rootnode) % nh, root);
  };
  std::vector<std::byte> tmp(children.empty() ? 0 : bytes);
  for (int child : children) {
    c.ps.blocking_recv(c.s, tmp.data(), count, dt, head_rank(child), tag);
    op.apply(tmp.data(), acc.data(), count, dt);
  }
  if (parent >= 0) {
    const int pr = head_rank(parent);
    c.ps.blocking_send(c.s, acc.data(), count, dt, pr, tag, false);
    note_wire(c.ps, *c.s, pr, bytes);
  } else {
    safe_copy(recvbuf, acc.data(), bytes);
  }
}

/// Non-commutative reduce: the fold must stay a strict linear rank-ordered
/// chain (no regrouping), so the hierarchy only removes the on-node copies:
/// members of the root's node publish their contribution zero-copy, remote
/// ranks send flat. Result is bit-identical to the flat path.
void hier_reduce_ordered(const Ctx& c, const void* contrib, void* recvbuf,
                         int count, const Datatype& dt, const Op& op, int root,
                         std::size_t bytes) {
  const Plan& p = c.p;
  const int n = p.nranks;
  const int tag = detail::internal_tag(c.seq, 0);

  if (c.s->myrank == root) {
    std::vector<std::byte> tmp(bytes);
    bool first = true;
    for (int r = 0; r < n; ++r) {
      const void* cr = nullptr;
      Slot* sl = nullptr;
      if (r == root) {
        cr = contrib;
      } else if (p.node_of[static_cast<std::size_t>(r)] == p.my_node) {
        sl = &await_slot(c, r, 0, 0);
        cr = sl->src;
      } else {
        c.ps.blocking_recv(c.s, tmp.data(), count, dt, r, tag);
        cr = tmp.data();
      }
      if (first) {
        safe_copy(recvbuf, cr, bytes);
        first = false;
      } else {
        op.apply(cr, recvbuf, count, dt);
      }
      if (sl != nullptr) {
        done_read(*sl);
      }
    }
  } else if (p.node_of[static_cast<std::size_t>(root)] == p.my_node) {
    publish(c, 0, contrib, bytes, 1, 0);
    drain_my(c, 0);
  } else {
    c.ps.blocking_send(c.s, contrib, count, dt, root, tag, false);
    note_wire(c.ps, *c.s, root, bytes);
  }
}

/// Recursive-doubling exchange of `acc` among the node leaders (classic
/// pre/post folding of the non-power-of-two remainder). Rounds use
/// distinct tags; round count is 2 + log2(#nodes), well under the 32-round
/// tag budget per collective.
void rd_exchange(const Ctx& c, std::byte* acc, int count, const Datatype& dt,
                 const Op& op, std::size_t bytes) {
  const Plan& p = c.p;
  const int nh = static_cast<int>(p.leaders.size());
  const int h = p.my_node;
  const auto tagr = [&](int r) { return detail::internal_tag(c.seq, r); };

  int pof2 = 1;
  int log2p = 0;
  while (pof2 * 2 <= nh) {
    pof2 *= 2;
    ++log2p;
  }
  const int rem = nh - pof2;
  std::vector<std::byte> tmp(bytes);

  if (h >= pof2) {
    // Fold my contribution into a partner, then receive the finished value.
    const int partner = p.leaders[static_cast<std::size_t>(h - pof2)];
    c.ps.blocking_send(c.s, acc, count, dt, partner, tagr(0), false);
    note_wire(c.ps, *c.s, partner, bytes);
    c.ps.blocking_recv(c.s, acc, count, dt, partner, tagr(1 + log2p));
    return;
  }
  if (h < rem) {
    c.ps.blocking_recv(c.s, tmp.data(), count, dt,
                       p.leaders[static_cast<std::size_t>(h + pof2)], tagr(0));
    op.apply(tmp.data(), acc, count, dt);
  }
  int round = 1;
  for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
    const int partner = p.leaders[static_cast<std::size_t>(h ^ mask)];
    auto rreq = c.ps.irecv_impl(c.s, tmp.data(), count, dt, partner, tagr(round));
    auto sreq = c.ps.isend_impl(c.s, acc, count, dt, partner, tagr(round), false);
    note_wire(c.ps, *c.s, partner, bytes);
    c.ps.progress_until([&] { return rreq->done() && sreq->done(); });
    check_req(c, rreq, "allreduce leader exchange failed");
    check_req(c, sreq, "allreduce leader exchange failed");
    op.apply(tmp.data(), acc, count, dt);
  }
  if (h < rem) {
    const int partner = p.leaders[static_cast<std::size_t>(h + pof2)];
    c.ps.blocking_send(c.s, acc, count, dt, partner, tagr(round), false);
    note_wire(c.ps, *c.s, partner, bytes);
  }
}

/// Ring exchange among leaders: element-chunked reduce-scatter followed by
/// allgather — bandwidth-optimal for large payloads. One tag covers every
/// step: each directed leader pair carries its messages in a fixed order
/// and the fabric delivers per-flow in order, so sequentially posted
/// receives pair up deterministically.
void ring_exchange(const Ctx& c, std::byte* acc, int count, const Datatype& dt,
                   const Op& op) {
  const Plan& p = c.p;
  const int nh = static_cast<int>(p.leaders.size());
  const int h = p.my_node;
  const std::size_t ext = dt.extent();
  const int ecz = (count + nh - 1) / nh;  // chunk size in *elements*
  const auto lo = [&](int k) { return std::min(count, k * ecz); };
  const auto elems = [&](int k) { return std::min(count, (k + 1) * ecz) - lo(k); };
  const auto off = [&](int k) { return static_cast<std::size_t>(lo(k)) * ext; };
  const int right = p.leaders[static_cast<std::size_t>((h + 1) % nh)];
  const int left = p.leaders[static_cast<std::size_t>((h - 1 + nh) % nh)];
  const int tag = detail::internal_tag(c.seq, 1);
  std::vector<std::byte> rtmp(static_cast<std::size_t>(ecz) * ext);

  for (int t = 0; t < nh - 1; ++t) {  // reduce-scatter
    const int sk = (h - t + nh) % nh;
    const int rk = (h - t - 1 + nh) % nh;
    RequestPtr rreq, sreq;
    if (elems(rk) > 0) {
      rreq = c.ps.irecv_impl(c.s, rtmp.data(), elems(rk), dt, left, tag);
    }
    if (elems(sk) > 0) {
      sreq = c.ps.isend_impl(c.s, acc + off(sk), elems(sk), dt, right, tag,
                             false);
      note_wire(c.ps, *c.s, right, static_cast<std::size_t>(elems(sk)) * ext);
    }
    c.ps.progress_until([&] {
      return (!rreq || rreq->done()) && (!sreq || sreq->done());
    });
    if (rreq) {
      check_req(c, rreq, "allreduce ring exchange failed");
      op.apply(rtmp.data(), acc + off(rk), elems(rk), dt);
    }
    if (sreq) {
      check_req(c, sreq, "allreduce ring exchange failed");
    }
  }
  for (int t = 0; t < nh - 1; ++t) {  // allgather
    const int sk = (h + 1 - t + nh) % nh;
    const int rk = (h - t + nh) % nh;
    RequestPtr rreq, sreq;
    if (elems(rk) > 0) {
      rreq = c.ps.irecv_impl(c.s, acc + off(rk), elems(rk), dt, left, tag);
    }
    if (elems(sk) > 0) {
      sreq = c.ps.isend_impl(c.s, acc + off(sk), elems(sk), dt, right, tag,
                             false);
      note_wire(c.ps, *c.s, right, static_cast<std::size_t>(elems(sk)) * ext);
    }
    c.ps.progress_until([&] {
      return (!rreq || rreq->done()) && (!sreq || sreq->done());
    });
    if (rreq) {
      check_req(c, rreq, "allreduce ring exchange failed");
    }
    if (sreq) {
      check_req(c, sreq, "allreduce ring exchange failed");
    }
  }
}

/// Hierarchical commutative allreduce: single on-node fan-in publication
/// per member, leader exchange (ring or recursive doubling), single
/// release publication of the finished result that members copy straight
/// from the head's recvbuf.
void hier_allreduce(const Ctx& c, const void* contrib, void* recvbuf,
                    int count, const Datatype& dt, const Op& op,
                    std::size_t bytes) {
  const Plan& p = c.p;
  const int nh = static_cast<int>(p.leaders.size());

  if (!p.i_am_leader) {
    publish(c, 0, contrib, bytes, 1, 0);
    Slot& sl = await_slot(c, p.leaders[static_cast<std::size_t>(p.my_node)], 1,
                          1);
    safe_copy(recvbuf, sl.src, std::min(bytes, sl.bytes));
    done_read(sl);
    return;
  }

  std::vector<std::byte> acc(bytes);
  safe_copy(acc.data(), contrib, bytes);
  for (const auto& sock : p.my_sockets) {
    for (int m : sock) {
      if (m == c.s->myrank) {
        continue;
      }
      Slot& sl = await_slot(c, m, 0, 0);
      op.apply(sl.src, acc.data(), count, dt);
      done_read(sl);
    }
  }
  if (nh > 1) {
    if (bytes >= (128u << 10) && nh >= 4 && count >= nh) {
      ring_exchange(c, acc.data(), count, dt, op);
    } else {
      rd_exchange(c, acc.data(), count, dt, op, bytes);
    }
  }
  safe_copy(recvbuf, acc.data(), bytes);
  if (p.on_node > 1) {
    publish(c, 1, recvbuf, bytes, static_cast<std::uint32_t>(p.on_node - 1), 1);
    drain_my(c, 1);
  }
}

void hier_barrier(const Ctx& c) {
  const Plan& p = c.p;
  const int nh = static_cast<int>(p.leaders.size());
  if (!p.i_am_leader) {
    publish(c, 0, nullptr, 0, 1, 0);
    Slot& sl = await_slot(c, p.leaders[static_cast<std::size_t>(p.my_node)], 1,
                          1);
    done_read(sl);
    return;
  }
  for (const auto& sock : p.my_sockets) {
    for (int m : sock) {
      if (m == c.s->myrank) {
        continue;
      }
      Slot& sl = await_slot(c, m, 0, 0);
      done_read(sl);
    }
  }
  if (nh > 1) {
    head_barrier(c, detail::internal_tag(c.seq, 0));
  }
  if (p.on_node > 1) {
    publish(c, 1, nullptr, 0, static_cast<std::uint32_t>(p.on_node - 1), 1);
    drain_my(c, 1);
  }
}

/// Hierarchical gather: on-node members publish once (root's node members
/// are read directly by the root — zero copies); each remote head packs its
/// node into one message, so the root receives O(nodes) messages instead of
/// O(ranks).
void hier_gather(const Ctx& c, const void* contrib, std::size_t sbytes,
                 void* recvbuf, std::size_t rslot, int recvcount,
                 const Datatype& rdt, int root, bool root_in_place) {
  const Plan& p = c.p;
  const int nh = static_cast<int>(p.leaders.size());
  const int my_head = head_of(p, p.my_node, root);
  const int tag = detail::internal_tag(c.seq, 0);

  if (c.s->myrank == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    std::vector<std::byte> scratch;
    for (int ni = 0; ni < nh; ++ni) {
      if (ni == p.my_node) {
        continue;
      }
      const auto& mem = p.node_members[static_cast<std::size_t>(ni)];
      scratch.resize(mem.size() * rslot);
      const Status st = c.ps.blocking_recv(
          c.s, scratch.data(), static_cast<int>(mem.size() * rslot),
          Datatype::byte(), head_of(p, ni, root), tag);
      const std::size_t stride = st.count_bytes / mem.size();
      for (std::size_t i = 0; i < mem.size(); ++i) {
        safe_copy(out + static_cast<std::size_t>(mem[i]) * rslot,
                  scratch.data() + i * stride, std::min(stride, rslot));
      }
    }
    for (int m : p.node_members[static_cast<std::size_t>(p.my_node)]) {
      if (m == root) {
        continue;
      }
      Slot& sl = await_slot(c, m, 0, 0);
      safe_copy(out + static_cast<std::size_t>(m) * rslot, sl.src,
                std::min(sl.bytes, rslot));
      done_read(sl);
    }
    if (!root_in_place) {
      safe_copy(out + static_cast<std::size_t>(root) * rslot, contrib,
                std::min(sbytes, rslot));
    }
    (void)recvcount;
    (void)rdt;
  } else if (c.s->myrank == my_head) {
    // Pack my node (own contribution plus each member's publication) into
    // one wire message to the root.
    const auto& mine = p.node_members[static_cast<std::size_t>(p.my_node)];
    std::vector<std::byte> packed(mine.size() * sbytes);
    std::vector<Slot*> held;
    held.reserve(mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (mine[i] == c.s->myrank) {
        safe_copy(packed.data() + i * sbytes, contrib, sbytes);
      } else {
        Slot& sl = await_slot(c, mine[i], 0, 0);
        safe_copy(packed.data() + i * sbytes, sl.src,
                  std::min(sl.bytes, sbytes));
        held.push_back(&sl);
      }
    }
    for (Slot* sl : held) {
      done_read(*sl);
    }
    c.ps.blocking_send(c.s, packed.data(),
                       static_cast<int>(packed.size()), Datatype::byte(), root,
                       tag, false);
    note_wire(c.ps, *c.s, root, packed.size());
  } else {
    publish(c, 0, contrib, sbytes, 1, 0);
    drain_my(c, 0);
  }
}

/// Hierarchical scatter: the root publishes its whole send buffer once and
/// every on-node member slices its block out directly; remote nodes get one
/// packed message each, re-published by their head.
void hier_scatter(const Ctx& c, const void* sendbuf, std::size_t sslot,
                  void* recvbuf, std::size_t rbytes, int root,
                  bool root_in_place) {
  const Plan& p = c.p;
  const int nh = static_cast<int>(p.leaders.size());
  const int my_head = head_of(p, p.my_node, root);
  const int tag = detail::internal_tag(c.seq, 0);

  if (c.s->myrank == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    publish(c, 0, in, sslot, static_cast<std::uint32_t>(p.on_node - 1), 0);
    std::vector<std::byte> packed;
    for (int ni = 0; ni < nh; ++ni) {
      if (ni == p.my_node) {
        continue;
      }
      const auto& mem = p.node_members[static_cast<std::size_t>(ni)];
      const int dst = head_of(p, ni, root);
      if (p.node_contiguous[static_cast<std::size_t>(ni)] != 0) {
        c.ps.blocking_send(
            c.s, in + static_cast<std::size_t>(mem.front()) * sslot,
            static_cast<int>(mem.size() * sslot), Datatype::byte(), dst, tag,
            false);
      } else {
        packed.resize(mem.size() * sslot);
        for (std::size_t i = 0; i < mem.size(); ++i) {
          safe_copy(packed.data() + i * sslot,
                    in + static_cast<std::size_t>(mem[i]) * sslot, sslot);
        }
        c.ps.blocking_send(c.s, packed.data(),
                           static_cast<int>(packed.size()), Datatype::byte(),
                           dst, tag, false);
      }
      note_wire(c.ps, *c.s, dst, mem.size() * sslot);
    }
    if (!root_in_place) {
      safe_copy(recvbuf, in + static_cast<std::size_t>(root) * sslot,
                std::min(sslot, rbytes));
    }
    drain_my(c, 0);
  } else if (c.s->myrank == my_head) {
    const auto& mine = p.node_members[static_cast<std::size_t>(p.my_node)];
    std::vector<std::byte> scratch(mine.size() * std::max(rbytes, sslot));
    const Status st =
        c.ps.blocking_recv(c.s, scratch.data(),
                           static_cast<int>(scratch.size()), Datatype::byte(),
                           root, tag);
    const std::size_t stride = st.count_bytes / mine.size();
    // Members index the packed block by their slot position; bytes carries
    // the stride.
    publish(c, 1, scratch.data(), stride,
            static_cast<std::uint32_t>(p.on_node - 1), 1);
    safe_copy(recvbuf,
              scratch.data() + static_cast<std::size_t>(p.my_slot) * stride,
              std::min(stride, rbytes));
    drain_my(c, 1);
  } else if (p.node_of[static_cast<std::size_t>(root)] == p.my_node) {
    Slot& sl = await_slot(c, root, 0, 0);
    safe_copy(recvbuf,
              sl.src + static_cast<std::size_t>(c.s->myrank) * sl.bytes,
              std::min(sl.bytes, rbytes));
    done_read(sl);
  } else {
    Slot& sl = await_slot(c, my_head, 1, 1);
    safe_copy(recvbuf,
              sl.src + static_cast<std::size_t>(p.my_slot) * sl.bytes,
              std::min(sl.bytes, rbytes));
    done_read(sl);
  }
}

/// Hierarchical "ladder" alltoall. Intra-node blocks move zero-copy: every
/// member publishes its whole send buffer once and peers slice their block
/// out directly. Cross-node, only heads exchange: one packed message per
/// node pair per step (dest-major member blocks), re-published on arrival
/// so members unpack straight from the head's receive buffer.
void hier_alltoall(const Ctx& c, const void* sendbuf, std::size_t sslot,
                   void* recvbuf, std::size_t rslot) {
  const Plan& p = c.p;
  const int nh = static_cast<int>(p.leaders.size());
  const int me = c.s->myrank;
  const int head = p.leaders[static_cast<std::size_t>(p.my_node)];
  const bool i_am_head = p.i_am_leader;
  const auto& mine = p.node_members[static_cast<std::size_t>(p.my_node)];
  const std::size_t nmine = mine.size();
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  const int tag = detail::internal_tag(c.seq, 1);

  // Readers of my send-buffer publication: every other on-node member
  // slices its block, and (cross-node) the head additionally holds the
  // slot across all its pack steps.
  const std::uint32_t readers =
      static_cast<std::uint32_t>(p.on_node - 1) +
      ((nh > 1 && !i_am_head) ? 1u : 0u);
  publish(c, 0, in, sslot, readers, 0);

  safe_copy(out + static_cast<std::size_t>(me) * rslot,
            in + static_cast<std::size_t>(me) * sslot,
            std::min(sslot, rslot));

  // Intra-node: slice my block out of each peer's publication. The head
  // additionally captures each publication's src for the pack phase.
  std::vector<const std::byte*> peer_src(nmine, nullptr);
  std::vector<std::size_t> peer_stride(nmine, 0);
  std::vector<Slot*> peer_slot(nmine, nullptr);
  for (std::size_t i = 0; i < nmine; ++i) {
    const int q = mine[i];
    if (q == me) {
      peer_src[i] = in;
      peer_stride[i] = sslot;
      continue;
    }
    Slot& sl = await_slot(c, q, 0, 0);
    safe_copy(out + static_cast<std::size_t>(q) * rslot,
              sl.src + static_cast<std::size_t>(me) * sl.bytes,
              std::min(sl.bytes, rslot));
    peer_src[i] = sl.src;
    peer_stride[i] = sl.bytes;
    peer_slot[i] = &sl;
    done_read(sl);
  }

  if (nh > 1) {
    if (i_am_head) {
      std::vector<std::byte> sscratch;
      // Ping-pong receive buffers: publish(k) waits for publish(k-1) to
      // drain, which transitively protects same-parity buffer reuse.
      std::vector<std::byte> rbuf[2];
      for (int k = 1; k < nh; ++k) {
        const int dstn = (p.my_node + k) % nh;
        const int srcn = (p.my_node - k + nh) % nh;
        const auto& dmem = p.node_members[static_cast<std::size_t>(dstn)];
        const auto& smem = p.node_members[static_cast<std::size_t>(srcn)];
        sscratch.resize(dmem.size() * nmine * sslot);
        for (std::size_t di = 0; di < dmem.size(); ++di) {
          for (std::size_t mi = 0; mi < nmine; ++mi) {
            safe_copy(
                sscratch.data() + (di * nmine + mi) * sslot,
                peer_src[mi] +
                    static_cast<std::size_t>(dmem[di]) * peer_stride[mi],
                std::min(peer_stride[mi], sslot));
          }
        }
        std::vector<std::byte>& rb = rbuf[k & 1];
        rb.resize(nmine * smem.size() * std::max(sslot, rslot));
        auto rreq = c.ps.irecv_impl(
            c.s, rb.data(), static_cast<int>(rb.size()), Datatype::byte(),
            p.leaders[static_cast<std::size_t>(srcn)], tag);
        auto sreq = c.ps.isend_impl(
            c.s, sscratch.data(), static_cast<int>(sscratch.size()),
            Datatype::byte(), p.leaders[static_cast<std::size_t>(dstn)], tag,
            false);
        note_wire(c.ps, *c.s, p.leaders[static_cast<std::size_t>(dstn)],
                  sscratch.size());
        c.ps.progress_until([&] { return rreq->done() && sreq->done(); });
        check_req(c, rreq, "alltoall leader exchange failed");
        check_req(c, sreq, "alltoall leader exchange failed");
        const std::size_t stride =
            smem.empty() || nmine == 0
                ? 0
                : rreq->status.count_bytes / (nmine * smem.size());
        publish(c, 1, rb.data(), stride,
                static_cast<std::uint32_t>(p.on_node - 1),
                static_cast<std::uint64_t>(k));
        // Unpack my own row (slot position my_slot, source-major within it).
        for (std::size_t si = 0; si < smem.size(); ++si) {
          safe_copy(out + static_cast<std::size_t>(smem[si]) * rslot,
                    rb.data() +
                        (static_cast<std::size_t>(p.my_slot) * smem.size() +
                         si) *
                            stride,
                    std::min(stride, rslot));
        }
      }
      drain_my(c, 1);
      for (std::size_t i = 0; i < nmine; ++i) {  // release the pack holds
        if (peer_slot[i] != nullptr) {
          done_read(*peer_slot[i]);
        }
      }
    } else {
      for (int k = 1; k < nh; ++k) {
        const int srcn = (p.my_node - k + nh) % nh;
        const auto& smem = p.node_members[static_cast<std::size_t>(srcn)];
        Slot& sl = await_slot(c, head, 1, static_cast<std::uint64_t>(k));
        for (std::size_t si = 0; si < smem.size(); ++si) {
          safe_copy(out + static_cast<std::size_t>(smem[si]) * rslot,
                    sl.src +
                        (static_cast<std::size_t>(p.my_slot) * smem.size() +
                         si) *
                            sl.bytes,
                    std::min(sl.bytes, rslot));
        }
        done_read(sl);
      }
    }
  }
  drain_my(c, 0);  // my send buffer goes back to the user
}

// --- flat transplants (the seed algorithms, with wire accounting) ----------

void flat_bcast(const Ctx& c, void* buf, int count, const Datatype& dt,
                int root) {
  const int n = c.p.nranks;
  const int tag = detail::internal_tag(c.seq, 0);
  const int vrank = (c.s->myrank - root + n) % n;
  int parent = -1;
  std::vector<int> children;
  tree(vrank, n, &parent, &children);
  const auto real = [&](int v) { return (v + root) % n; };
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.extent();

  if (parent >= 0) {
    c.ps.blocking_recv(c.s, buf, count, dt, real(parent), tag);
  }
  for (int child : children) {
    c.ps.blocking_send(c.s, buf, count, dt, real(child), tag, false);
    note_wire(c.ps, *c.s, real(child), bytes);
  }
}

void flat_reduce(const Ctx& c, const void* contrib, void* recvbuf, int count,
                 const Datatype& dt, const Op& op, int root,
                 std::size_t bytes) {
  const int n = c.p.nranks;
  const int tag = detail::internal_tag(c.seq, 0);

  if (!op.commutative()) {
    if (c.s->myrank == root) {
      std::vector<std::byte> tmp(bytes);
      bool first = true;
      for (int r = 0; r < n; ++r) {
        const void* cr = nullptr;
        if (r == root) {
          cr = contrib;
        } else {
          c.ps.blocking_recv(c.s, tmp.data(), count, dt, r, tag);
          cr = tmp.data();
        }
        if (first) {
          safe_copy(recvbuf, cr, bytes);
          first = false;
        } else {
          op.apply(cr, recvbuf, count, dt);
        }
      }
    } else {
      c.ps.blocking_send(c.s, contrib, count, dt, root, tag, false);
      note_wire(c.ps, *c.s, root, bytes);
    }
    return;
  }

  std::vector<std::byte> acc(bytes);
  safe_copy(acc.data(), contrib, bytes);
  const int vrank = (c.s->myrank - root + n) % n;
  int parent = -1;
  std::vector<int> children;
  tree(vrank, n, &parent, &children);
  const auto real = [&](int v) { return (v + root) % n; };

  std::vector<std::byte> incoming(bytes);
  for (int child : children) {
    c.ps.blocking_recv(c.s, incoming.data(), count, dt, real(child), tag);
    op.apply(incoming.data(), acc.data(), count, dt);
  }
  if (parent >= 0) {
    c.ps.blocking_send(c.s, acc.data(), count, dt, real(parent), tag, false);
    note_wire(c.ps, *c.s, real(parent), bytes);
  } else {
    safe_copy(recvbuf, acc.data(), bytes);
  }
}

void flat_gather(const Ctx& c, const void* sendbuf, int sendcount,
                 const Datatype& sdt, void* recvbuf, int recvcount,
                 const Datatype& rdt, int root, bool root_in_place) {
  const int n = c.p.nranks;
  const int tag = detail::internal_tag(c.seq, 0);
  if (c.s->myrank == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    const std::size_t slot = static_cast<std::size_t>(recvcount) * rdt.extent();
    for (int r = 0; r < n; ++r) {
      if (r == root) {
        if (!root_in_place) {
          safe_copy(out + static_cast<std::size_t>(r) * slot, sendbuf,
                    std::min(static_cast<std::size_t>(sendcount) * sdt.extent(),
                             slot));
        }
      } else {
        c.ps.blocking_recv(c.s, out + static_cast<std::size_t>(r) * slot,
                           recvcount, rdt, r, tag);
      }
    }
  } else {
    c.ps.blocking_send(c.s, sendbuf, sendcount, sdt, root, tag, false);
    note_wire(c.ps, *c.s, root,
              static_cast<std::size_t>(sendcount) * sdt.extent());
  }
}

void flat_scatter(const Ctx& c, const void* sendbuf, int sendcount,
                  const Datatype& sdt, void* recvbuf, int recvcount,
                  const Datatype& rdt, int root, bool root_in_place) {
  const int n = c.p.nranks;
  const int tag = detail::internal_tag(c.seq, 0);
  if (c.s->myrank == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    const std::size_t slot = static_cast<std::size_t>(sendcount) * sdt.extent();
    for (int r = 0; r < n; ++r) {
      if (r == root) {
        if (!root_in_place) {
          safe_copy(recvbuf, in + static_cast<std::size_t>(r) * slot,
                    std::min(slot, static_cast<std::size_t>(recvcount) *
                                       rdt.extent()));
        }
      } else {
        c.ps.blocking_send(c.s, in + static_cast<std::size_t>(r) * slot,
                           sendcount, sdt, r, tag, false);
        note_wire(c.ps, *c.s, r, slot);
      }
    }
  } else {
    c.ps.blocking_recv(c.s, recvbuf, recvcount, rdt, root, tag);
  }
}

void flat_alltoall(const Ctx& c, const void* sendbuf, int sendcount,
                   const Datatype& sdt, void* recvbuf, int recvcount,
                   const Datatype& rdt) {
  const int n = c.p.nranks;
  const int tag = detail::internal_tag(c.seq, 0);
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  const std::size_t sslot = static_cast<std::size_t>(sendcount) * sdt.extent();
  const std::size_t rslot = static_cast<std::size_t>(recvcount) * rdt.extent();

  safe_copy(out + static_cast<std::size_t>(c.s->myrank) * rslot,
            in + static_cast<std::size_t>(c.s->myrank) * sslot,
            std::min(sslot, rslot));
  for (int i = 1; i < n; ++i) {
    const int to = (c.s->myrank + i) % n;
    const int from = (c.s->myrank - i + n) % n;
    auto rreq = c.ps.irecv_impl(c.s,
                                out + static_cast<std::size_t>(from) * rslot,
                                recvcount, rdt, from, tag);
    auto sreq = c.ps.isend_impl(c.s, in + static_cast<std::size_t>(to) * sslot,
                                sendcount, sdt, to, tag, false);
    note_wire(c.ps, *c.s, to, sslot);
    c.ps.progress_until([&] { return rreq->done() && sreq->done(); });
    check_req(c, rreq, "alltoall exchange failed");
    check_req(c, sreq, "alltoall exchange failed");
  }
}

}  // namespace

namespace {

/// Pins one span id for the duration of a collective entry point: every
/// constituent message this rank sends (tree hops, token exchanges, leader
/// fan-out) carries the op's id as its wire trace context, so the merged
/// trace renders the whole collective as a single distributed flow rooted
/// at this rank's coll.* slice (DESIGN.md §16). Delegating ops (allreduce's
/// flat path, allgather) nest — each sub-op opens its own flow, and
/// ScopedFlowContext restores the outer id on exit.
struct CollFlow {
  std::uint64_t id;
  obs::ScopedFlowContext scope;
  CollFlow(const char* name, std::uint64_t arg)
      : id(obs::Tracer::instance().enabled() ? obs::Tracer::next_span_id()
                                             : 0),
        scope(id) {
    if (id != 0) {
      OBS_FLOW_START(name, "coll", id, arg);
    }
  }
};

}  // namespace

// --- Communicator entry points ---------------------------------------------

void Communicator::barrier() const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  OBS_SPAN("coll.barrier", "coll");
  const CollFlow flow("coll.barrier", 0);
  auto plan = coll::plan_for(ps, s);
  if (!hier_selected(*plan)) {
    pick("barrier", "flat");
    Status st = ibarrier().wait();
    if (st.error != ErrClass::success) {
      s->errh.raise(st.error, "barrier aborted");
    }
    return;
  }
  pick("barrier", "hier");
  const Ctx c = make_ctx(ps, s, *plan, next_seq(s));
  try {
    with_region_poison(c, [&] { hier_barrier(c); });
  } catch (const Error& e) {
    s->errh.raise(e.error_class(), "barrier aborted");
  }
}

Request Communicator::ibarrier() const {
  const auto& s = coll_state(state_);
  return Request{detail::make_ibarrier(*s->ps, s)};
}

void Communicator::bcast(void* buf, int count, const Datatype& dt,
                         int root) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  if (root < 0 || root >= n) {
    s->errh.raise(ErrClass::root, "bcast root out of range");
  }
  if (n == 1) {
    return;
  }
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.extent();
  OBS_SPAN_ARG("coll.bcast", "coll", bytes);
  const CollFlow flow("coll.bcast", bytes);
  auto plan = coll::plan_for(ps, s);
  const Ctx c = make_ctx(ps, s, *plan, next_seq(s));
  if (hier_selected(*plan)) {
    pick("bcast", "hier");
    with_region_poison(c, [&] { hier_bcast(c, buf, bytes, root); });
  } else {
    pick("bcast", "flat");
    flat_bcast(c, buf, count, dt, root);
  }
}

void Communicator::reduce(const void* sendbuf, void* recvbuf, int count,
                          const Datatype& dt, const Op& op, int root) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  if (root < 0 || root >= n) {
    s->errh.raise(ErrClass::root, "reduce root out of range");
  }
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.extent();
  OBS_SPAN_ARG("coll.reduce", "coll", bytes);
  const CollFlow flow("coll.reduce", bytes);
  std::vector<std::byte> stage;
  const void* contrib = resolve_contrib(sendbuf, recvbuf, bytes, &stage);
  auto plan = coll::plan_for(ps, s);
  const Ctx c = make_ctx(ps, s, *plan, next_seq(s));
  if (hier_selected(*plan)) {
    pick("reduce", op.commutative() ? "hier" : "hier_ordered");
    with_region_poison(c, [&] {
      if (op.commutative()) {
        hier_reduce_commutative(c, contrib, recvbuf, count, dt, op, root,
                                bytes);
      } else {
        hier_reduce_ordered(c, contrib, recvbuf, count, dt, op, root, bytes);
      }
    });
  } else {
    pick("reduce", "flat");
    flat_reduce(c, contrib, recvbuf, count, dt, op, root, bytes);
  }
}

void Communicator::allreduce(const void* sendbuf, void* recvbuf, int count,
                             const Datatype& dt, const Op& op) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.extent();
  OBS_SPAN_ARG("coll.allreduce", "coll", bytes);
  const CollFlow flow("coll.allreduce", bytes);
  auto plan = coll::plan_for(ps, s);
  // Both legs of the branch are chosen from data identical on every member
  // (op, count, plan, the process-global algorithm knob), so no rank can
  // diverge into the other algorithm.
  if (!op.commutative() || !hier_selected(*plan)) {
    pick("allreduce", op.commutative() ? "flat" : "ordered_chain");
    reduce(sendbuf, recvbuf, count, dt, op, 0);
    bcast(recvbuf, count, dt, 0);
    return;
  }
  pick("allreduce", "hier");
  std::vector<std::byte> stage;
  const void* contrib = resolve_contrib(sendbuf, recvbuf, bytes, &stage);
  const Ctx c = make_ctx(ps, s, *plan, next_seq(s));
  with_region_poison(
      c, [&] { hier_allreduce(c, contrib, recvbuf, count, dt, op, bytes); });
}

void Communicator::gather(const void* sendbuf, int sendcount,
                          const Datatype& sdt, void* recvbuf, int recvcount,
                          const Datatype& rdt, int root) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  if (root < 0 || root >= s->size()) {
    s->errh.raise(ErrClass::root, "gather root out of range");
  }
  const bool root_in_place = sendbuf == in_place && s->myrank == root;
  if (sendbuf == in_place && s->myrank != root) {
    s->errh.raise(ErrClass::buffer, "MPI_IN_PLACE gather on non-root");
  }
  const std::size_t sbytes =
      root_in_place
          ? static_cast<std::size_t>(recvcount) * rdt.extent()
          : static_cast<std::size_t>(sendcount) * sdt.extent();
  const std::size_t rslot = static_cast<std::size_t>(recvcount) * rdt.extent();
  OBS_SPAN_ARG("coll.gather", "coll", sbytes);
  const CollFlow flow("coll.gather", sbytes);
  auto plan = coll::plan_for(ps, s);
  const Ctx c = make_ctx(ps, s, *plan, next_seq(s));
  if (hier_selected(*plan)) {
    pick("gather", "hier");
    with_region_poison(c, [&] {
      hier_gather(c, root_in_place ? nullptr : sendbuf, sbytes, recvbuf, rslot,
                  recvcount, rdt, root, root_in_place);
    });
  } else {
    pick("gather", "flat");
    flat_gather(c, root_in_place ? nullptr : sendbuf, sendcount, sdt, recvbuf,
                recvcount, rdt, root, root_in_place);
  }
}

void Communicator::scatter(const void* sendbuf, int sendcount,
                           const Datatype& sdt, void* recvbuf, int recvcount,
                           const Datatype& rdt, int root) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  if (root < 0 || root >= s->size()) {
    s->errh.raise(ErrClass::root, "scatter root out of range");
  }
  const bool root_in_place = recvbuf == in_place && s->myrank == root;
  if (recvbuf == in_place && s->myrank != root) {
    s->errh.raise(ErrClass::buffer, "MPI_IN_PLACE scatter on non-root");
  }
  const std::size_t sslot = static_cast<std::size_t>(sendcount) * sdt.extent();
  const std::size_t rbytes =
      root_in_place ? sslot
                    : static_cast<std::size_t>(recvcount) * rdt.extent();
  OBS_SPAN_ARG("coll.scatter", "coll", sslot);
  const CollFlow flow("coll.scatter", sslot);
  auto plan = coll::plan_for(ps, s);
  const Ctx c = make_ctx(ps, s, *plan, next_seq(s));
  if (hier_selected(*plan)) {
    pick("scatter", "hier");
    with_region_poison(c, [&] {
      hier_scatter(c, sendbuf, sslot, root_in_place ? nullptr : recvbuf,
                   rbytes, root, root_in_place);
    });
  } else {
    pick("scatter", "flat");
    flat_scatter(c, sendbuf, sendcount, sdt,
                 root_in_place ? nullptr : recvbuf, recvcount, rdt, root,
                 root_in_place);
  }
}

void Communicator::allgather(const void* sendbuf, int sendcount,
                             const Datatype& sdt, void* recvbuf, int recvcount,
                             const Datatype& rdt) const {
  const auto& s = coll_state(state_);
  // MPI_IN_PLACE allgather: every rank's contribution already sits at its
  // block of recvbuf; route it through gather's root-in-place handling by
  // pointing each non-root contribution at the block.
  if (sendbuf == in_place) {
    const auto* mine = static_cast<const std::byte*>(recvbuf) +
                       static_cast<std::size_t>(s->myrank) *
                           static_cast<std::size_t>(recvcount) * rdt.extent();
    gather(s->myrank == 0 ? in_place : static_cast<const void*>(mine),
           recvcount, rdt, recvbuf, recvcount, rdt, 0);
  } else {
    gather(sendbuf, sendcount, sdt, recvbuf, recvcount, rdt, 0);
  }
  bcast(recvbuf, recvcount * s->size(), rdt, 0);
}

void Communicator::alltoall(const void* sendbuf, int sendcount,
                            const Datatype& sdt, void* recvbuf, int recvcount,
                            const Datatype& rdt) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const std::size_t sslot = static_cast<std::size_t>(sendcount) * sdt.extent();
  const std::size_t rslot = static_cast<std::size_t>(recvcount) * rdt.extent();
  OBS_SPAN_ARG("coll.alltoall", "coll", sslot);
  const CollFlow flow("coll.alltoall", sslot);
  auto plan = coll::plan_for(ps, s);
  const Ctx c = make_ctx(ps, s, *plan, next_seq(s));
  if (hier_selected(*plan)) {
    pick("alltoall", "hier");
    with_region_poison(
        c, [&] { hier_alltoall(c, sendbuf, sslot, recvbuf, rslot); });
  } else {
    pick("alltoall", "flat");
    flat_alltoall(c, sendbuf, sendcount, sdt, recvbuf, recvcount, rdt);
  }
}

void Communicator::exscan(const void* sendbuf, void* recvbuf, int count,
                          const Datatype& dt, const Op& op) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.extent();
  OBS_SPAN_ARG("coll.exscan", "coll", bytes);
  const CollFlow flow("coll.exscan", bytes);
  // IN_PLACE must be staged before the prefix overwrites recvbuf.
  std::vector<std::byte> stage;
  const void* contrib = resolve_contrib(sendbuf, recvbuf, bytes, &stage);
  const int tag = detail::internal_tag(next_seq(s), 0);

  std::vector<std::byte> prefix(bytes);
  if (s->myrank > 0) {
    ps.blocking_recv(s, prefix.data(), count, dt, s->myrank - 1, tag);
    safe_copy(recvbuf, prefix.data(), bytes);
  }
  if (s->myrank + 1 < n) {
    if (s->myrank == 0) {
      ps.blocking_send(s, contrib, count, dt, 1, tag, false);
    } else {
      op.apply(contrib, prefix.data(), count, dt);  // forward = prefix op local
      ps.blocking_send(s, prefix.data(), count, dt, s->myrank + 1, tag, false);
    }
    note_wire(ps, *s, s->myrank + 1, bytes);
  }
}

void Communicator::reduce_scatter_block(const void* sendbuf, void* recvbuf,
                                        int recvcount, const Datatype& dt,
                                        const Op& op) const {
  const auto& s = coll_state(state_);
  const int n = s->size();
  const std::size_t block = static_cast<std::size_t>(recvcount) * dt.extent();
  std::vector<std::byte> full(block * static_cast<std::size_t>(n));
  // MPI_IN_PLACE: the full input vector sits in recvbuf (which must then be
  // size()*recvcount elements); block 0..recvcount is overwritten on return.
  const void* contrib = sendbuf == in_place ? recvbuf : sendbuf;
  reduce(contrib, full.data(), recvcount * n, dt, op, 0);
  scatter(full.data(), recvcount, dt, recvbuf, recvcount, dt, 0);
}

void Communicator::gatherv(const void* sendbuf, int sendcount,
                           const Datatype& sdt, void* recvbuf,
                           const std::vector<int>& recvcounts,
                           const std::vector<int>& displs, const Datatype& rdt,
                           int root) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  if (s->myrank == root &&
      (recvcounts.size() != static_cast<std::size_t>(n) ||
       displs.size() != static_cast<std::size_t>(n))) {
    s->errh.raise(ErrClass::arg, "gatherv counts/displs size mismatch");
  }
  OBS_SPAN("coll.gatherv", "coll");
  const CollFlow flow("coll.gatherv", 0);
  const int tag = detail::internal_tag(next_seq(s), 0);
  if (s->myrank == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    for (int r = 0; r < n; ++r) {
      std::byte* dst = out + static_cast<std::size_t>(
                                 displs[static_cast<std::size_t>(r)]) *
                                 rdt.extent();
      if (r == root) {
        if (sendbuf != in_place) {
          safe_copy(dst, sendbuf,
                    static_cast<std::size_t>(sendcount) * sdt.extent());
        }
      } else {
        ps.blocking_recv(s, dst, recvcounts[static_cast<std::size_t>(r)], rdt,
                         r, tag);
      }
    }
  } else {
    if (sendbuf == in_place) {
      s->errh.raise(ErrClass::buffer, "MPI_IN_PLACE gatherv on non-root");
    }
    ps.blocking_send(s, sendbuf, sendcount, sdt, root, tag, false);
    note_wire(ps, *s, root,
              static_cast<std::size_t>(sendcount) * sdt.extent());
  }
}

void Communicator::allgatherv(const void* sendbuf, int sendcount,
                              const Datatype& sdt, void* recvbuf,
                              const std::vector<int>& recvcounts,
                              const std::vector<int>& displs,
                              const Datatype& rdt) const {
  const auto& s = coll_state(state_);
  gatherv(sendbuf, sendcount, sdt, recvbuf, recvcounts, displs, rdt, 0);
  std::size_t total_elems = 0;
  for (std::size_t r = 0; r < recvcounts.size(); ++r) {
    total_elems = std::max(
        total_elems, static_cast<std::size_t>(displs[r]) +
                         static_cast<std::size_t>(recvcounts[r]));
  }
  bcast(recvbuf, static_cast<int>(total_elems), rdt, 0);
  (void)s;
}

void Communicator::scan(const void* sendbuf, void* recvbuf, int count,
                        const Datatype& dt, const Op& op) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.extent();
  OBS_SPAN_ARG("coll.scan", "coll", bytes);
  const CollFlow flow("coll.scan", bytes);
  const int tag = detail::internal_tag(next_seq(s), 0);

  if (sendbuf != in_place) {
    safe_copy(recvbuf, sendbuf, bytes);
  }
  if (s->myrank > 0) {
    std::vector<std::byte> prefix(bytes);
    ps.blocking_recv(s, prefix.data(), count, dt, s->myrank - 1, tag);
    // recvbuf = prefix op local  (prefix of earlier ranks folds from left)
    std::vector<std::byte> local(bytes);
    safe_copy(local.data(), recvbuf, bytes);
    safe_copy(recvbuf, prefix.data(), bytes);
    op.apply(local.data(), recvbuf, count, dt);
  }
  if (s->myrank + 1 < n) {
    ps.blocking_send(s, recvbuf, count, dt, s->myrank + 1, tag, false);
    note_wire(ps, *s, s->myrank + 1, bytes);
  }
}

}  // namespace sessmpi
