// Topology plan construction (DESIGN.md §13). One plan per communicator
// per member, cached on the CommState and invalidated on revoke; the
// on-node shared region is attached through the cluster-wide registry so
// all members of a node resolve the same object without a handshake.

#include "sessmpi/coll/plan.hpp"

#include <map>

#include "detail/state.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/obs/hist.hpp"

namespace sessmpi::coll {

std::shared_ptr<const Plan> plan_for(
    detail::ProcState& ps, const std::shared_ptr<detail::CommState>& s) {
  std::lock_guard lock(ps.mu);
  if (s->coll_plan) {
    return std::static_pointer_cast<const Plan>(s->coll_plan);
  }

  const base::Topology& topo = ps.proc.cluster().topology();
  auto plan = std::make_shared<Plan>();
  const int n = s->size();
  plan->nranks = n;
  plan->myrank = s->myrank;
  plan->node_of.resize(static_cast<std::size_t>(n));
  plan->slot_of.resize(static_cast<std::size_t>(n));

  std::map<int, std::vector<int>> by_node;  // physical node id -> comm ranks
  for (int r = 0; r < n; ++r) {
    by_node[topo.node_of(s->global_of(r))].push_back(r);
  }
  int phys_node_of_me = topo.node_of(ps.proc.rank());
  for (auto& [phys, members] : by_node) {
    const int idx = static_cast<int>(plan->node_members.size());
    for (std::size_t pos = 0; pos < members.size(); ++pos) {
      plan->node_of[static_cast<std::size_t>(members[pos])] = idx;
      plan->slot_of[static_cast<std::size_t>(members[pos])] =
          static_cast<int>(pos);
    }
    plan->leaders.push_back(members.front());
    plan->node_contiguous.push_back(
        members.back() - members.front() + 1 == static_cast<int>(members.size())
            ? 1
            : 0);
    plan->multi_member = plan->multi_member || members.size() > 1;
    if (phys == phys_node_of_me) {
      plan->my_node = idx;
    }
    plan->node_members.push_back(std::move(members));
  }

  const std::vector<int>& mine =
      plan->node_members[static_cast<std::size_t>(plan->my_node)];
  plan->on_node = static_cast<int>(mine.size());
  plan->my_slot = plan->slot_of[static_cast<std::size_t>(s->myrank)];
  plan->i_am_leader =
      plan->leaders[static_cast<std::size_t>(plan->my_node)] == s->myrank;

  // Socket grouping of my node's members: the intra-node fold order.
  std::map<int, std::vector<int>> by_socket;
  for (int m : mine) {
    by_socket[topo.socket_of(s->global_of(m))].push_back(m);
    plan->my_node_globals.push_back(s->global_of(m));
  }
  for (auto& [sock, members] : by_socket) {
    plan->my_sockets.push_back(std::move(members));
  }

  plan->depth = (plan->node_members.size() > 1 ? 1 : 0) +
                (plan->multi_member ? 1 : 0) +
                (plan->my_sockets.size() > 1 ? 1 : 0);
  if (plan->depth == 0) {
    plan->depth = 1;
  }

  if (plan->on_node > 1) {
    RegionKey key;
    key.node = phys_node_of_me;
    if (s->uses_excid) {
      key.excid_hi = s->excid_space.id().hi;
      key.excid_lo = s->excid_space.id().lo;
    } else {
      key.cid = s->cid;
    }
    plan->region = attach_region(ps.proc.cluster(), key, plan->on_node);
  }

  static const auto c_builds = base::counter("coll.plan_builds");
  c_builds.add();
  static obs::Histogram& depth_hist = obs::histogram("coll.tree_depth");
  depth_hist.record(static_cast<std::uint64_t>(plan->depth));

  s->coll_plan = plan;
  return plan;
}

}  // namespace sessmpi::coll
