// Schedule-driven nonblocking collectives (MPI_Ibcast / MPI_Iallreduce).
//
// Each operation builds a plan-shaped tree over pt2pt edges and installs an
// NbcOp::advance closure that the progress engine drives to completion —
// the nonblocking counterpart of the hierarchical blocking engine. NBC
// schedules use only fabric edges (no shm publications): a nonblocking
// operation may complete from any thread's progress pass, so it cannot
// owner-spin on a shared slot the way the blocking path does; the
// hierarchy still cuts cross-node traffic to one message per node pair.
//
// Failure protocol: payload-carrying tree edges treat an *empty* message as
// the poison marker (the inverse of Ibarrier, whose edges are expected-
// empty and poisoned by a 1-byte payload). A rank that observes a failure
// floods empty markers down its remaining edges and completes the request
// with the error class, so no survivor waits on an aborted subtree.

#include <cstring>
#include <memory>
#include <vector>

#include "detail/state.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/coll/plan.hpp"
#include "sessmpi/comm.hpp"

namespace sessmpi {

using detail::CommState;
using detail::NbcOp;
using detail::ProcState;
using detail::RequestPtr;

namespace {

const std::shared_ptr<CommState>& nbc_state(
    const std::shared_ptr<CommState>& s) {
  if (!s || s->freed) {
    throw Error(ErrClass::comm, "collective on invalid communicator");
  }
  return s;
}

void tree(int vrank, int size, int* parent, std::vector<int>* children) {
  *parent = -1;
  int mask = 1;
  while (mask < size) {
    if ((vrank & mask) != 0) {
      *parent = vrank & ~mask;
      return;
    }
    const int child = vrank | mask;
    if (child < size) {
      children->push_back(child);
    }
    mask <<= 1;
  }
}

/// Plan-shaped tree for a rooted operation: members hang off their node
/// head, heads form a binomial tree over node indices (virtual-rotated so
/// the root's node is the tree root; the root itself leads its node).
struct PlanTree {
  int parent = -1;            ///< comm rank, -1 at the root
  std::vector<int> children;  ///< comm ranks
};

PlanTree plan_tree(const coll::Plan& p, int myrank, int root) {
  PlanTree t;
  const int nh = static_cast<int>(p.leaders.size());
  const int rootnode = p.node_of[static_cast<std::size_t>(root)];
  const auto head_of = [&](int node) {
    return node == rootnode ? root
                            : p.leaders[static_cast<std::size_t>(node)];
  };
  const int my_head = head_of(p.my_node);
  if (myrank != my_head) {
    t.parent = my_head;
    return t;
  }
  const int vnode = (p.my_node - rootnode + nh) % nh;
  int vparent = -1;
  std::vector<int> vchildren;
  tree(vnode, nh, &vparent, &vchildren);
  if (vparent >= 0) {
    t.parent = head_of((vparent + rootnode) % nh);
  }
  for (int vc : vchildren) {
    t.children.push_back(head_of((vc + rootnode) % nh));
  }
  for (int m : p.node_members[static_cast<std::size_t>(p.my_node)]) {
    if (m != myrank) {
      t.children.push_back(m);
    }
  }
  return t;
}

/// True once `r` completed with a failure: an error status, or an empty
/// payload on an edge that must carry data (the NBC poison marker).
bool failed_edge(const RequestPtr& r, bool expects_payload) {
  return r && r->done() &&
         (r->status.error != ErrClass::success ||
          (expects_payload && r->status.count_bytes == 0));
}

ErrClass edge_error(const RequestPtr& r) {
  return r->status.error != ErrClass::success ? r->status.error
                                              : ErrClass::rte_proc_failed;
}

/// Flood empty poison markers down still-healthy edges (never to failed
/// ranks, never back the edge that delivered the poison).
void flood_markers(ProcState& ps, const std::shared_ptr<CommState>& comm,
                   const std::vector<int>& dsts, int skip, int tag) {
  fabric::Fabric& fab = ps.proc.cluster().fabric();
  for (int d : dsts) {
    if (d != skip && !fab.is_failed(comm->global_of(d))) {
      ps.isend_impl(comm, nullptr, 0, Datatype::byte(), d, tag, false);
    }
  }
}

bool all_done(const std::vector<RequestPtr>& reqs) {
  for (const auto& r : reqs) {
    if (r && !r->done()) {
      return false;
    }
  }
  return true;
}

// --- ibcast -----------------------------------------------------------------

struct BcastSched {
  std::shared_ptr<CommState> comm;
  void* buf = nullptr;
  int count = 0;
  Datatype dt = Datatype::byte();
  int tag = 0;
  PlanTree t;
  RequestPtr precv;              // payload from parent (posted at creation)
  std::vector<RequestPtr> sends;
  bool sent = false;
  bool aborted = false;
};

bool advance_bcast(ProcState& ps, detail::RequestImpl& req,
                   const std::shared_ptr<BcastSched>& sc) {
  if (req.done()) {
    return true;
  }
  if (!sc->aborted && failed_edge(sc->precv, sc->count > 0)) {
    sc->aborted = true;
    flood_markers(ps, sc->comm, sc->t.children, -1, sc->tag);
    Status st;
    st.error = edge_error(sc->precv);
    req.finish(st);
    return true;
  }
  if (!sc->sent && (sc->t.parent < 0 || (sc->precv && sc->precv->done()))) {
    sc->sent = true;
    for (int child : sc->t.children) {
      sc->sends.push_back(ps.isend_impl(sc->comm, sc->buf, sc->count, sc->dt,
                                        child, sc->tag, false));
    }
  }
  if (sc->sent && all_done(sc->sends)) {
    for (const auto& r : sc->sends) {
      if (r->status.error != ErrClass::success) {
        Status st;
        st.error = r->status.error;
        req.finish(st);
        return true;
      }
    }
    req.finish(Status{});
    return true;
  }
  return false;
}

// --- iallreduce -------------------------------------------------------------

/// Non-commutative: strict rank-ordered chain 0 -> n-1 (bit-identical fold
/// order to the blocking path), then a binomial broadcast rooted at the
/// last rank, which holds the finished value.
struct ChainSched {
  std::shared_ptr<CommState> comm;
  void* recvbuf = nullptr;
  int count = 0;
  Datatype dt = Datatype::byte();
  Op op = Op::sum();
  std::vector<std::byte> contrib;
  int tag0 = 0, tag1 = 0;
  RequestPtr crecv;  // prefix from myrank-1
  RequestPtr csend;  // forwarded prefix to myrank+1
  bool applied = false;
  int bparent = -1;
  std::vector<int> bchildren;
  RequestPtr brecv;  // final value from bcast parent
  std::vector<RequestPtr> bsends;
  bool bsent = false;
  bool aborted = false;
};

bool advance_chain(ProcState& ps, detail::RequestImpl& req,
                   const std::shared_ptr<ChainSched>& sc) {
  if (req.done()) {
    return true;
  }
  const int n = sc->comm->size();
  const int me = sc->comm->myrank;
  if (!sc->aborted &&
      (failed_edge(sc->crecv, sc->count > 0) ||
       failed_edge(sc->brecv, sc->count > 0))) {
    sc->aborted = true;
    const ErrClass cls = failed_edge(sc->crecv, sc->count > 0)
                             ? edge_error(sc->crecv)
                             : edge_error(sc->brecv);
    if (!sc->csend && me + 1 < n) {
      ps.isend_impl(sc->comm, nullptr, 0, Datatype::byte(), me + 1, sc->tag0,
                    false);
    }
    flood_markers(ps, sc->comm, sc->bchildren, -1, sc->tag1);
    Status st;
    st.error = cls;
    req.finish(st);
    return true;
  }
  if (!sc->applied && (me == 0 || (sc->crecv && sc->crecv->done()))) {
    sc->applied = true;
    const std::size_t bytes =
        static_cast<std::size_t>(sc->count) * sc->dt.extent();
    if (me == 0) {
      if (bytes > 0) {
        std::memcpy(sc->recvbuf, sc->contrib.data(), bytes);
      }
    } else {
      // recvbuf holds fold(0..me-1); fold my contribution in rank order.
      sc->op.apply(sc->contrib.data(), sc->recvbuf, sc->count, sc->dt);
    }
    if (me + 1 < n) {
      sc->csend = ps.isend_impl(sc->comm, sc->recvbuf, sc->count, sc->dt,
                                me + 1, sc->tag0, false);
    }
  }
  if (sc->applied && !sc->bsent && (me == n - 1 || sc->brecv->done())) {
    sc->bsent = true;
    for (int child : sc->bchildren) {
      sc->bsends.push_back(ps.isend_impl(sc->comm, sc->recvbuf, sc->count,
                                         sc->dt, child, sc->tag1, false));
    }
  }
  if (sc->bsent && all_done(sc->bsends) &&
      (!sc->csend || sc->csend->done())) {
    Status st;
    if (sc->csend && sc->csend->status.error != ErrClass::success) {
      st.error = sc->csend->status.error;
    }
    for (const auto& r : sc->bsends) {
      if (r->status.error != ErrClass::success) {
        st.error = r->status.error;
      }
    }
    req.finish(st);
    return true;
  }
  return false;
}

/// Commutative: plan-shaped fan-in to leaders[0] (each edge carries a
/// partial into a per-child scratch buffer, folded on arrival), then the
/// finished value flows back down the same tree.
struct FaninSched {
  std::shared_ptr<CommState> comm;
  void* recvbuf = nullptr;
  int count = 0;
  Datatype dt = Datatype::byte();
  Op op = Op::sum();
  std::vector<std::byte> acc;  // running partial (starts as my contribution)
  int tag0 = 0, tag1 = 0;
  PlanTree t;
  std::vector<RequestPtr> crecvs;
  std::vector<std::vector<std::byte>> cbufs;
  std::vector<bool> folded;
  RequestPtr psend;  // partial up to parent
  RequestPtr presv;  // finished value down from parent
  std::vector<RequestPtr> fsends;
  bool sent_up = false;
  bool forwarded = false;
  bool aborted = false;
};

bool advance_fanin(ProcState& ps, detail::RequestImpl& req,
                   const std::shared_ptr<FaninSched>& sc) {
  if (req.done()) {
    return true;
  }
  if (!sc->aborted) {
    ErrClass cls = ErrClass::success;
    int bad = -1;
    for (std::size_t i = 0; i < sc->crecvs.size(); ++i) {
      if (failed_edge(sc->crecvs[i], sc->count > 0)) {
        cls = edge_error(sc->crecvs[i]);
        bad = sc->t.children[i];
      }
    }
    if (failed_edge(sc->presv, sc->count > 0)) {
      cls = edge_error(sc->presv);
      bad = sc->t.parent;
    }
    if (cls != ErrClass::success) {
      sc->aborted = true;
      if (!sc->sent_up && sc->t.parent >= 0 && sc->t.parent != bad) {
        fabric::Fabric& fab = ps.proc.cluster().fabric();
        if (!fab.is_failed(sc->comm->global_of(sc->t.parent))) {
          ps.isend_impl(sc->comm, nullptr, 0, Datatype::byte(), sc->t.parent,
                        sc->tag0, false);
        }
      }
      flood_markers(ps, sc->comm, sc->t.children, bad, sc->tag1);
      Status st;
      st.error = cls;
      req.finish(st);
      return true;
    }
  }
  bool all_folded = true;
  for (std::size_t i = 0; i < sc->crecvs.size(); ++i) {
    if (!sc->crecvs[i]->done()) {
      all_folded = false;
      continue;
    }
    if (!sc->folded[i]) {
      sc->folded[i] = true;
      sc->op.apply(sc->cbufs[i].data(), sc->acc.data(), sc->count, sc->dt);
    }
  }
  const std::size_t bytes =
      static_cast<std::size_t>(sc->count) * sc->dt.extent();
  if (all_folded && !sc->sent_up) {
    sc->sent_up = true;
    if (sc->t.parent >= 0) {
      sc->psend = ps.isend_impl(sc->comm, sc->acc.data(), sc->count, sc->dt,
                                sc->t.parent, sc->tag0, false);
    } else {
      if (bytes > 0) {
        std::memcpy(sc->recvbuf, sc->acc.data(), bytes);
      }
    }
  }
  if (sc->sent_up && !sc->forwarded &&
      (sc->t.parent < 0 || sc->presv->done())) {
    sc->forwarded = true;
    for (int child : sc->t.children) {
      sc->fsends.push_back(ps.isend_impl(sc->comm, sc->recvbuf, sc->count,
                                         sc->dt, child, sc->tag1, false));
    }
  }
  if (sc->forwarded && all_done(sc->fsends) &&
      (!sc->psend || sc->psend->done())) {
    Status st;
    if (sc->psend && sc->psend->status.error != ErrClass::success) {
      st.error = sc->psend->status.error;
    }
    for (const auto& r : sc->fsends) {
      if (r->status.error != ErrClass::success) {
        st.error = r->status.error;
      }
    }
    req.finish(st);
    return true;
  }
  return false;
}

/// Create the NBC request shell, register the schedule, and kick the
/// progress engine once (a leaf may fire its first sends immediately).
RequestPtr launch(ProcState& ps, const std::shared_ptr<CommState>& comm,
                  std::unique_ptr<NbcOp> nbc) {
  RequestPtr req = ps.make_request();
  req->ps = &ps;
  req->comm = comm.get();
  req->kind = detail::RequestImpl::Kind::nbc;
  req->nbc = std::move(nbc);
  {
    std::lock_guard lock(ps.mu);
    ps.nbc_live.push_back(req);
    ps.advance_nbc_locked();
  }
  return req;
}

}  // namespace

Request Communicator::ibcast(void* buf, int count, const Datatype& dt,
                             int root) const {
  const auto& s = nbc_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  if (root < 0 || root >= n) {
    s->errh.raise(ErrClass::root, "ibcast root out of range");
  }
  base::counters().add("coll.algo.ibcast.sched");
  if (n == 1) {
    RequestPtr req = ps.make_request();
    req->ps = &ps;
    req->comm = s.get();
    req->finish(Status{});
    return Request{req};
  }
  auto plan = coll::plan_for(ps, s);
  int tag;
  {
    std::lock_guard lock(ps.mu);
    tag = detail::internal_tag(s->coll_seq++, 0);
  }

  auto sc = std::make_shared<BcastSched>();
  sc->comm = s;
  sc->buf = buf;
  sc->count = count;
  sc->dt = dt;
  sc->tag = tag;
  sc->t = plan_tree(*plan, s->myrank, root);
  if (sc->t.parent >= 0) {
    sc->precv = ps.irecv_impl(s, buf, count, dt, sc->t.parent, tag);
  }

  auto nbc = std::make_unique<NbcOp>();
  nbc->comm = s;
  nbc->tag = tag;
  nbc->parent_recv = sc->precv;
  nbc->advance = [sc](ProcState& p, detail::RequestImpl& r) {
    return advance_bcast(p, r, sc);
  };
  return Request{launch(ps, s, std::move(nbc))};
}

Request Communicator::iallreduce(const void* sendbuf, void* recvbuf, int count,
                                 const Datatype& dt, const Op& op) const {
  const auto& s = nbc_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.extent();

  // Stage the contribution up front: recvbuf is working storage for both
  // schedules, and MPI_IN_PLACE contributions live there to begin with.
  std::vector<std::byte> contrib(bytes);
  if (bytes > 0) {
    std::memcpy(contrib.data(), sendbuf == in_place ? recvbuf : sendbuf,
                bytes);
  }
  if (n == 1) {
    if (bytes > 0) {
      std::memcpy(recvbuf, contrib.data(), bytes);
    }
    RequestPtr req = ps.make_request();
    req->ps = &ps;
    req->comm = s.get();
    req->finish(Status{});
    return Request{req};
  }

  int tag0, tag1;
  {
    std::lock_guard lock(ps.mu);
    const std::uint32_t seq = s->coll_seq++;
    tag0 = detail::internal_tag(seq, 0);
    tag1 = detail::internal_tag(seq, 1);
  }

  if (!op.commutative()) {
    base::counters().add("coll.algo.iallreduce.ordered_chain");
    auto sc = std::make_shared<ChainSched>();
    sc->comm = s;
    sc->recvbuf = recvbuf;
    sc->count = count;
    sc->dt = dt;
    sc->op = op;
    sc->contrib = std::move(contrib);
    sc->tag0 = tag0;
    sc->tag1 = tag1;
    const int me = s->myrank;
    if (me > 0) {
      sc->crecv = ps.irecv_impl(s, recvbuf, count, dt, me - 1, tag0);
    }
    // Broadcast tree rooted at rank n-1 (virtual rotation by n-1).
    const int vrank = (me - (n - 1) + n) % n;
    int vparent = -1;
    std::vector<int> vchildren;
    tree(vrank, n, &vparent, &vchildren);
    if (vparent >= 0) {
      sc->bparent = (vparent + n - 1) % n;
      sc->brecv = ps.irecv_impl(s, recvbuf, count, dt, sc->bparent, tag1);
    }
    for (int vc : vchildren) {
      sc->bchildren.push_back((vc + n - 1) % n);
    }
    auto nbc = std::make_unique<NbcOp>();
    nbc->comm = s;
    nbc->tag = tag0;
    nbc->parent_recv = sc->brecv;
    if (sc->crecv) {
      nbc->child_recvs.push_back(sc->crecv);
    }
    nbc->advance = [sc](ProcState& p, detail::RequestImpl& r) {
      return advance_chain(p, r, sc);
    };
    return Request{launch(ps, s, std::move(nbc))};
  }

  base::counters().add("coll.algo.iallreduce.sched");
  auto plan = coll::plan_for(ps, s);
  auto sc = std::make_shared<FaninSched>();
  sc->comm = s;
  sc->recvbuf = recvbuf;
  sc->count = count;
  sc->dt = dt;
  sc->op = op;
  sc->acc = std::move(contrib);
  sc->tag0 = tag0;
  sc->tag1 = tag1;
  sc->t = plan_tree(*plan, s->myrank, plan->leaders.empty()
                                          ? 0
                                          : plan->leaders.front());
  sc->cbufs.resize(sc->t.children.size());
  sc->folded.assign(sc->t.children.size(), false);
  for (std::size_t i = 0; i < sc->t.children.size(); ++i) {
    sc->cbufs[i].resize(bytes);
    sc->crecvs.push_back(ps.irecv_impl(s, sc->cbufs[i].data(), count, dt,
                                       sc->t.children[i], tag0));
  }
  if (sc->t.parent >= 0) {
    sc->presv = ps.irecv_impl(s, recvbuf, count, dt, sc->t.parent, tag1);
  }
  auto nbc = std::make_unique<NbcOp>();
  nbc->comm = s;
  nbc->tag = tag0;
  nbc->parent_recv = sc->presv;
  nbc->child_recvs = sc->crecvs;
  nbc->advance = [sc](ProcState& p, detail::RequestImpl& r) {
    return advance_fanin(p, r, sc);
  };
  return Request{launch(ps, s, std::move(nbc))};
}

}  // namespace sessmpi
