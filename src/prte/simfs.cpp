#include "sessmpi/prte/simfs.hpp"

#include <algorithm>
#include <cstring>

namespace sessmpi::prte {

bool SimFs::create(const std::string& path) {
  std::lock_guard lock(mu_);
  return files_.try_emplace(path).second;
}

bool SimFs::exists(const std::string& path) const {
  std::lock_guard lock(mu_);
  return files_.contains(path);
}

bool SimFs::remove(const std::string& path) {
  std::lock_guard lock(mu_);
  return files_.erase(path) > 0;
}

void SimFs::set_size(const std::string& path, std::size_t size) {
  std::lock_guard lock(mu_);
  files_[path].resize(size);
}

std::optional<std::size_t> SimFs::size(const std::string& path) const {
  std::lock_guard lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return std::nullopt;
  }
  return it->second.size();
}

void SimFs::write(const std::string& path, std::size_t offset,
                  const void* data, std::size_t n) {
  std::lock_guard lock(mu_);
  auto& bytes = files_[path];
  if (bytes.size() < offset + n) {
    bytes.resize(offset + n);
  }
  std::memcpy(bytes.data() + offset, data, n);
}

bool SimFs::try_write(const std::string& path, std::size_t offset,
                      const void* data, std::size_t n) {
  FaultFn fn;
  {
    std::lock_guard lock(fault_mu_);
    fn = fault_fn_;
  }
  if (fn && fn(path, offset, n)) {
    return false;
  }
  write(path, offset, data, n);
  return true;
}

void SimFs::set_fault_fn(FaultFn fn) {
  std::lock_guard lock(fault_mu_);
  fault_fn_ = std::move(fn);
}

std::size_t SimFs::read(const std::string& path, std::size_t offset,
                        void* data, std::size_t n) const {
  std::lock_guard lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end() || offset >= it->second.size()) {
    return 0;
  }
  const std::size_t avail = it->second.size() - offset;
  const std::size_t take = std::min(avail, n);
  std::memcpy(data, it->second.data() + offset, take);
  return take;
}

std::size_t SimFs::file_count() const {
  std::lock_guard lock(mu_);
  return files_.size();
}

}  // namespace sessmpi::prte
