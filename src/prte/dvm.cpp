#include "sessmpi/prte/dvm.hpp"

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/error.hpp"
#include "sessmpi/base/yield.hpp"
#include "sessmpi/obs/trace.hpp"

namespace sessmpi::prte {

Dvm::Dvm(JobSpec spec) : spec_(std::move(spec)), pmix_(spec_.topo, spec_.cost) {
  if (spec_.topo.num_nodes < 1 || spec_.topo.procs_per_node < 1) {
    throw base::Error(base::ErrClass::rte_bad_param, "empty allocation");
  }
  node_loads_.reserve(static_cast<std::size_t>(spec_.topo.num_nodes));
  for (int n = 0; n < spec_.topo.num_nodes; ++n) {
    node_loads_.push_back(std::make_unique<NodeLoad>());
  }
  // The runtime always provides mpi://world; mpi://self and mpi://shared are
  // resolved per-asker by the PMIx client.
  std::vector<pmix::ProcId> world(static_cast<std::size_t>(spec_.topo.size()));
  for (int i = 0; i < spec_.topo.size(); ++i) {
    world[static_cast<std::size_t>(i)] = i;
  }
  pmix_.psets().define(pmix::kPsetWorld, std::move(world));
  for (auto& [name, members] : spec_.extra_psets) {
    pmix_.psets().define(name, members);
  }
}

bool Dvm::load_components(int node) {
  if (node < 0 || node >= spec_.topo.num_nodes) {
    throw base::Error(base::ErrClass::rte_bad_param, "invalid node");
  }
  NodeLoad& nl = *node_loads_[static_cast<std::size_t>(node)];
  // Lock-free once-per-node state machine (0 = unloaded, 1 = loading,
  // 2 = loaded): the old mutex was held across the multi-millisecond NFS
  // delay, which would freeze a cooperative scheduler worker while its
  // node-mates' fibers queue behind it. Now only the first process pays
  // the delay; node-mates yield-wait on the flag.
  int expected = 0;
  if (nl.state.compare_exchange_strong(expected, 1,
                                       std::memory_order_acq_rel)) {
    // First process on the node pulls the component stack over NFS; the cost
    // grows with allocation size because every node hits the filer at once.
    OBS_SPAN_ARG("prte.nfs_load", "prte", static_cast<std::uint64_t>(node));
    base::precise_delay(spec_.cost.nfs_load_cost(spec_.topo.num_nodes));
    nl.state.store(2, std::memory_order_release);
    return true;
  }
  while (nl.state.load(std::memory_order_acquire) != 2) {
    base::try_yield();
  }
  return false;
}

bool Dvm::components_loaded(int node) const {
  if (node < 0 || node >= spec_.topo.num_nodes) {
    return false;
  }
  return node_loads_[static_cast<std::size_t>(node)]->state.load(
             std::memory_order_acquire) == 2;
}

void Dvm::attach_process(pmix::ProcId proc) {
  if (!spec_.topo.valid_rank(proc)) {
    throw base::Error(base::ErrClass::rte_bad_param, "invalid proc");
  }
  OBS_SPAN_ARG("prte.proc_attach", "prte", static_cast<std::uint64_t>(proc));
  base::precise_delay(spec_.cost.proc_attach_ns);
}

void Dvm::define_pset(const std::string& name,
                      std::vector<pmix::ProcId> members) {
  pmix_.psets().define(name, std::move(members));
}

void Dvm::notify_node_failed(int node) {
  if (node < 0 || node >= spec_.topo.num_nodes) {
    throw base::Error(base::ErrClass::rte_bad_param, "invalid node");
  }
  for (pmix::ProcId p = 0; p < spec_.topo.size(); ++p) {
    if (spec_.topo.node_of(p) == node) {
      pmix_.notify_proc_failed(p);
    }
  }
}

}  // namespace sessmpi::prte
