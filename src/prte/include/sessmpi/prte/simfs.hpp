#pragma once

// Simulated parallel filesystem backing MPI_File operations: one byte store
// per path, shared across the allocation (the moral equivalent of the NFS /
// Lustre mount the runtime nodes share). Thread-safe; costs are charged by
// the MPI layer, not here.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace sessmpi::prte {

class SimFs {
 public:
  /// Fault-injection hook for `try_write`: return true to fail that write
  /// (transient I/O error — nothing is written). Installed by the sim's
  /// chaos layer or directly by tests; must be thread-safe.
  using FaultFn = std::function<bool(const std::string& path,
                                     std::size_t offset, std::size_t n)>;
  /// Create the file if absent; returns false if it already existed.
  bool create(const std::string& path);
  [[nodiscard]] bool exists(const std::string& path) const;
  /// Remove a file; returns false if absent.
  bool remove(const std::string& path);
  /// Truncate/extend to `size` (zero-filled). Creates if absent.
  void set_size(const std::string& path, std::size_t size);
  [[nodiscard]] std::optional<std::size_t> size(const std::string& path) const;

  /// Write `n` bytes at `offset`, extending the file as needed.
  void write(const std::string& path, std::size_t offset, const void* data,
             std::size_t n);

  /// Fault-injectable write: consults the installed fault hook first and
  /// returns false (writing nothing) when it fires. Retryable — callers
  /// own the retry/backoff policy (src/ckpt's drain pipeline).
  bool try_write(const std::string& path, std::size_t offset, const void* data,
                 std::size_t n);

  /// Install (or clear, with nullptr) the write fault hook.
  void set_fault_fn(FaultFn fn);

  /// Modeled write bandwidth as a per-byte delay: writers that simulate
  /// I/O time (the checkpoint drainer) sleep delay * bytes per write.
  /// Stored here because it is a property of the filesystem, not of any
  /// one writer; 0 (default) = infinitely fast.
  void set_write_delay_ns_per_byte(std::int64_t ns) noexcept {
    write_delay_ns_per_byte_.store(ns, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t write_delay_ns_per_byte() const noexcept {
    return write_delay_ns_per_byte_.load(std::memory_order_relaxed);
  }
  /// Read up to `n` bytes at `offset`; returns bytes actually read
  /// (0 at/after EOF). Throws nothing; unknown paths read 0 bytes.
  std::size_t read(const std::string& path, std::size_t offset, void* data,
                   std::size_t n) const;

  [[nodiscard]] std::size_t file_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::byte>> files_;
  mutable std::mutex fault_mu_;  ///< guards fault_fn_ (swap vs call)
  FaultFn fault_fn_;
  std::atomic<std::int64_t> write_delay_ns_per_byte_{0};
};

}  // namespace sessmpi::prte
