#pragma once

// Simulated parallel filesystem backing MPI_File operations: one byte store
// per path, shared across the allocation (the moral equivalent of the NFS /
// Lustre mount the runtime nodes share). Thread-safe; costs are charged by
// the MPI layer, not here.

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace sessmpi::prte {

class SimFs {
 public:
  /// Create the file if absent; returns false if it already existed.
  bool create(const std::string& path);
  [[nodiscard]] bool exists(const std::string& path) const;
  /// Remove a file; returns false if absent.
  bool remove(const std::string& path);
  /// Truncate/extend to `size` (zero-filled). Creates if absent.
  void set_size(const std::string& path, std::size_t size);
  [[nodiscard]] std::optional<std::size_t> size(const std::string& path) const;

  /// Write `n` bytes at `offset`, extending the file as needed.
  void write(const std::string& path, std::size_t offset, const void* data,
             std::size_t n);
  /// Read up to `n` bytes at `offset`; returns bytes actually read
  /// (0 at/after EOF). Throws nothing; unknown paths read 0 bytes.
  std::size_t read(const std::string& path, std::size_t offset, void* data,
                   std::size_t n) const;

  [[nodiscard]] std::size_t file_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::byte>> files_;
};

}  // namespace sessmpi::prte
