#pragma once

// PRRTE-like distributed virtual machine: owns the allocation-wide PMIx
// runtime, defines the default and site-specific process sets, and models
// the runtime-side costs of bringing MPI processes up — in particular the
// slow NFS-mounted component (MCA) load the paper identifies as the main
// contributor to absolute MPI_Init cost. Components are loaded once per node
// per process lifetime: the first process to need them pays the NFS cost
// while its node-mates block on the same load.

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sessmpi/base/cost_model.hpp"
#include "sessmpi/base/topology.hpp"
#include "sessmpi/pmix/runtime.hpp"
#include "sessmpi/prte/simfs.hpp"

namespace sessmpi::prte {

struct JobSpec {
  base::Topology topo;
  base::CostModel cost = base::CostModel::calibrated();
  /// Site-specific psets (name -> members), in addition to mpi://world.
  std::vector<std::pair<std::string, std::vector<pmix::ProcId>>> extra_psets;
};

class Dvm {
 public:
  explicit Dvm(JobSpec spec);

  Dvm(const Dvm&) = delete;
  Dvm& operator=(const Dvm&) = delete;

  [[nodiscard]] pmix::PmixRuntime& pmix() noexcept { return pmix_; }
  [[nodiscard]] const base::Topology& topology() const noexcept {
    return spec_.topo;
  }
  [[nodiscard]] const base::CostModel& cost() const noexcept {
    return spec_.cost;
  }

  /// Load MPI component libraries on `node` (NFS model). Idempotent per
  /// node; concurrent callers on the same node block until the load
  /// completes. Returns true if this call performed the load.
  bool load_components(int node);
  [[nodiscard]] bool components_loaded(int node) const;

  /// Runtime attach performed by every process at launch (prun/prte).
  void attach_process(pmix::ProcId proc);

  /// Define an additional pset at runtime (resource-manager action).
  void define_pset(const std::string& name, std::vector<pmix::ProcId> members);

  /// Resource-manager view of a node crash: every process hosted on `node`
  /// is reported failed to the PMIx runtime (the daemon network notices a
  /// dead node, not individual procs).
  void notify_node_failed(int node);

  /// Shared simulated filesystem (backs MPI_File).
  [[nodiscard]] SimFs& fs() noexcept { return fs_; }

 private:
  SimFs fs_;
  JobSpec spec_;
  pmix::PmixRuntime pmix_;
  struct NodeLoad {
    /// 0 = unloaded, 1 = a process is loading, 2 = loaded.
    std::atomic<int> state{0};
  };
  std::vector<std::unique_ptr<NodeLoad>> node_loads_;
};

}  // namespace sessmpi::prte
