#pragma once

// Wire-level packet formats.
//
// The fast path mirrors Open MPI's ob1 PML: a compact 14-byte match header
// (receiver-local 16-bit CID, tag, source, sequence number) rides in front of
// the user payload. Sessions-derived communicators additionally prepend an
// 18-byte extended header carrying the 128-bit exCID plus the sender's local
// CID until the receiver's CID ACK arrives (paper §III-B4). The fabric's
// reliable-delivery sublayer (DESIGN.md §9) prepends a 12-byte flow header —
// 48-bit per-(src,dst) sequence number plus a 48-bit piggybacked cumulative
// ACK for the reverse flow — to every packet, and adds a `flow_ack` control
// packet (cumulative + selective ACKs) for flows with no reverse traffic.
// Header *sizes* are modeled explicitly — the cost model charges per header
// byte — while the in-memory representation is an ordinary struct.

#include <cstdint>
#include <vector>

#include "sessmpi/base/topology.hpp"
#include "sessmpi/fabric/payload.hpp"

namespace sessmpi::fabric {

using base::Rank;

enum class PacketKind : std::uint8_t {
  eager,      ///< eager send, fast-path match header only
  eager_ext,  ///< eager send with extended (exCID) header prepended
  cid_ack,    ///< control: receiver tells sender its local CID for a comm
  rndv_rts,   ///< rendezvous ready-to-send (match header, size advertised)
  rndv_rts_ext,  ///< rendezvous RTS with extended header
  rndv_cts,   ///< rendezvous clear-to-send (token)
  rndv_data,  ///< rendezvous bulk data (token)
  sync_ack,   ///< synchronous-send acknowledgement (token)
  comm_revoke,  ///< control: communicator revoked (ULFM); exCID + local CID
  flow_ack,   ///< fabric-internal: cumulative + selective delivery ACK
};

/// 14-byte ob1-style match header (modeled size; see kMatchHeaderBytes).
struct MatchHeader {
  std::uint16_t cid = 0;   ///< local CID in the *receiver's* comm array once
                           ///< the handshake completed; sender's before.
  std::int32_t tag = 0;
  std::int32_t src = 0;    ///< source rank within the communicator
  std::uint32_t seq = 0;   ///< per (comm,peer) sequence number
  /// Causal trace context (DESIGN.md §16): the sender-side span id this
  /// message flows out of, carried as an optional 8-byte ext-header field.
  /// 0 = absent, and absent costs zero wire bytes (header_bytes below), so
  /// a run with tracing disabled is byte-identical on the wire.
  std::uint64_t trace_ctx = 0;
};
inline constexpr std::size_t kMatchHeaderBytes = 14;
/// Modeled bytes for a non-zero MatchHeader::trace_ctx.
inline constexpr std::size_t kTraceCtxBytes = 8;

/// Extended header for sessions-derived communicators (exCID + sender CID).
struct ExtHeader {
  std::uint64_t excid_hi = 0;  ///< PGCID half of the exCID
  std::uint64_t excid_lo = 0;  ///< subfield half of the exCID
  std::uint16_t sender_cid = 0;
};
inline constexpr std::size_t kExtHeaderBytes = 18;

/// Reliable-delivery flow header (12 modeled bytes). On the modeled wire
/// this packs a 46-bit per-(src,dst,rail) sequence number, a 46-bit
/// piggybacked cumulative ACK for the reverse flow, a 2-bit rail id, and
/// the two ECN bits (CE set by a congested modeled link, ECE echoed by the
/// receiver in flow_acks) — the congestion-control additions ride in the
/// four bits the 48+48 layout left spare, so kFlowHeaderBytes stays 12 and
/// `fabric.cc=fixed` runs are byte-identical to the pre-cc wire (DESIGN.md
/// §17). seq == 0 marks an unsequenced packet (flow_ack control traffic,
/// which must not itself be acknowledged).
struct FlowHeader {
  std::uint64_t seq = 0;  ///< flow sequence number; 0 = unsequenced
  std::uint64_t ack = 0;  ///< cumulative ACK for the reverse (dst->src) flow
  std::uint8_t rail = 0;  ///< rail id within the (src,dst) pair (2 wire bits)
  bool ce = false;        ///< congestion experienced: set by a loaded link
  bool ece = false;       ///< ECN echo: receiver -> sender, in flow_acks
};
inline constexpr std::size_t kFlowHeaderBytes = 12;
/// Modeled bytes per selective-ACK entry in a flow_ack packet.
inline constexpr std::size_t kSackEntryBytes = 6;

/// Striping header carried by rndv_data segments when a bulk message is
/// split across rails (DESIGN.md §17): message id (8) + segment index (2) +
/// segment count (2) + total logical bytes (4). count == 0 marks an
/// unstriped packet and costs zero wire bytes. Segment byte ranges are
/// derived deterministically from (index, count, total_bytes), so offsets
/// and lengths never travel on the wire.
struct StripeHeader {
  std::uint64_t msg_id = 0;   ///< sender-unique id of the logical message
  std::uint16_t index = 0;    ///< this segment's position [0, count)
  std::uint16_t count = 0;    ///< total segments; 0 = not striped
  std::uint32_t total_bytes = 0;  ///< logical message payload size
};
inline constexpr std::size_t kStripeHeaderBytes = 16;

struct Packet {
  PacketKind kind = PacketKind::eager;
  Rank src_rank = -1;  ///< global source rank
  Rank dst_rank = -1;  ///< global destination rank
  MatchHeader match;
  ExtHeader ext;                    ///< valid for *_ext and cid_ack kinds
  FlowHeader flow;                  ///< stamped by the fabric's send path
  StripeHeader stripe;              ///< rndv_data only; count == 0 = unstriped
  std::uint64_t token = 0;          ///< rendezvous / sync-send pairing token
  std::uint64_t advertised_size = 0;  ///< rndv_rts: payload size to come
  std::vector<std::uint64_t> sack;  ///< flow_ack: out-of-order seqs held at rx
  Payload payload;                  ///< refcounted; copying a Packet shares it
  std::int64_t arrival_ns = 0;      ///< sim metadata, not modeled wire bytes:
                                    ///< wall-clock deadline when the packet
                                    ///< "arrives" (sender charge end + one-way
                                    ///< latency); receiver dispatch waits on it

  [[nodiscard]] bool has_ext_header() const noexcept {
    return kind == PacketKind::eager_ext || kind == PacketKind::rndv_rts_ext;
  }

  /// Unsequenced control packets bypass the reliability window (they are
  /// idempotent by construction and must not generate ACKs of ACKs).
  [[nodiscard]] bool is_sequenced() const noexcept {
    return kind != PacketKind::flow_ack;
  }

  /// True when this rndv_data packet is one segment of a striped message.
  [[nodiscard]] bool is_striped() const noexcept { return stripe.count > 0; }

  /// Modeled wire header size in bytes (charged by the cost model). Every
  /// kind pays the flow header: sequenced packets carry seq + piggybacked
  /// ACK; flow_ack carries cum ACK + entry count + its selective entries.
  /// A non-zero trace context adds kTraceCtxBytes on the kinds that can
  /// carry one (message-bearing kinds + the revoke flood); with tracing
  /// off, trace_ctx stays 0 and the modeled wire is unchanged.
  [[nodiscard]] std::size_t header_bytes() const noexcept {
    const std::size_t tc = match.trace_ctx != 0 ? kTraceCtxBytes : 0;
    switch (kind) {
      case PacketKind::eager:
        return kFlowHeaderBytes + kMatchHeaderBytes + tc;
      case PacketKind::eager_ext:
        return kFlowHeaderBytes + kMatchHeaderBytes + kExtHeaderBytes + tc;
      case PacketKind::rndv_rts:
        return kFlowHeaderBytes + kMatchHeaderBytes + 8 + tc;  // + adv. size
      case PacketKind::rndv_rts_ext:
        return kFlowHeaderBytes + kMatchHeaderBytes + kExtHeaderBytes + 8 + tc;
      case PacketKind::cid_ack:
        return kFlowHeaderBytes + kExtHeaderBytes + 2;  // exCID + receiver CID
      case PacketKind::rndv_cts:
      case PacketKind::sync_ack:
        return kFlowHeaderBytes + 8;  // token
      case PacketKind::rndv_data:
        return kFlowHeaderBytes + 8 + kMatchHeaderBytes + tc +
               (stripe.count > 0 ? kStripeHeaderBytes : 0);
      case PacketKind::comm_revoke:
        // exCID + sender CID
        return kFlowHeaderBytes + kExtHeaderBytes + 2 + tc;
      case PacketKind::flow_ack:
        return kFlowHeaderBytes + 2 + kSackEntryBytes * sack.size();
    }
    return kFlowHeaderBytes + kMatchHeaderBytes;
  }
};

}  // namespace sessmpi::fabric
