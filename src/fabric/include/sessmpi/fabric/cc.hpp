#pragma once

// Per-flow congestion control for the reliable-delivery sublayer
// (DESIGN.md §17). Every (src,dst,rail) flow owns a CcState; the engine is
// selected by the `fabric.cc` cvar:
//
//   fixed  — PR 2's behavior, bit-for-bit: no window limit, no fast
//            retransmit, no ECN reaction. Loss recovery is RTO-only. The
//            default, so existing runs reproduce exactly.
//   aimd   — TCP-NewReno-shaped: slow start from IW, ssthresh halving +
//            fast retransmit on triple-dup ACK (SACK holes are plugged
//            immediately), additive increase of ~1 packet per ACKed cwnd
//            in avoidance, multiplicative decrease on an ECN echo.
//   cubic  — same loss/ECN machinery, but avoidance growth follows the
//            CUBIC curve W(t) = C*(t-K)^3 + W_max anchored at the window
//            where the last loss happened (fast convergence back to W_max,
//            then probing beyond it).
//
// CcState is pure state-machine logic — no locks, no clocks, no wire — so
// the unit tests drive transitions directly with synthetic acks and
// timestamps. The Fabric serializes calls under the owning flow's mutex.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace sessmpi::fabric {

enum class CcEngine : std::uint8_t { fixed, aimd, cubic };

/// Maximum rails per (src,dst) pair: the rail id travels in 2 spare bits of
/// the modeled 12-byte flow header (DESIGN.md §17 wire format).
inline constexpr int kMaxRails = 4;

struct CcConfig {
  CcEngine engine = CcEngine::fixed;
  /// Slow-start initial window (packets), RFC 6928-style IW10.
  std::uint32_t initial_window = 10;
  /// Floor the window never decreases below (keeps a stalled flow probing).
  std::uint32_t min_cwnd = 2;
  /// Cap on cwnd growth (packets). Bounds sender-side window memory.
  std::uint32_t max_cwnd = 4096;
  /// Consecutive duplicate ACKs that trigger fast retransmit.
  int dupack_threshold = 3;
  /// Rails (per-pair endpoints) available for striping; 1 = striping off.
  int rails = 1;
  /// Messages at or above this payload size are striped across `rails`
  /// (only bulk rndv_data — matched by token, so cross-rail reorder never
  /// reaches the MPI matching order).
  std::size_t stripe_threshold = 256 * 1024;
};

enum class CcPhase : std::uint8_t { slow_start, avoidance, recovery };

inline const char* cc_phase_name(CcPhase p) noexcept {
  switch (p) {
    case CcPhase::slow_start:
      return "slow_start";
    case CcPhase::avoidance:
      return "avoidance";
    case CcPhase::recovery:
      return "recovery";
  }
  return "?";
}

inline const char* cc_engine_name(CcEngine e) noexcept {
  switch (e) {
    case CcEngine::fixed:
      return "fixed";
    case CcEngine::aimd:
      return "aimd";
    case CcEngine::cubic:
      return "cubic";
  }
  return "?";
}

inline std::optional<CcEngine> cc_engine_from_name(const std::string& v) {
  if (v == "fixed") {
    return CcEngine::fixed;
  }
  if (v == "aimd") {
    return CcEngine::aimd;
  }
  if (v == "cubic") {
    return CcEngine::cubic;
  }
  return std::nullopt;
}

/// Congestion window state machine for one flow. All transitions take the
/// caller's monotonic `now_ns`; CUBIC's growth curve is the only consumer.
class CcState {
 public:
  CcState() = default;
  explicit CcState(const CcConfig& cfg)
      : cfg_(cfg),
        cwnd_(cfg.initial_window),
        ssthresh_(cfg.max_cwnd) {}

  /// `fixed` disables every limit and reaction (PR 2 bit-compatibility).
  [[nodiscard]] bool unlimited() const noexcept {
    return cfg_.engine == CcEngine::fixed;
  }

  [[nodiscard]] std::uint64_t cwnd_packets() const noexcept {
    return std::max<std::uint64_t>(cfg_.min_cwnd,
                                   static_cast<std::uint64_t>(cwnd_));
  }
  [[nodiscard]] double cwnd() const noexcept { return cwnd_; }
  [[nodiscard]] std::uint64_t ssthresh() const noexcept { return ssthresh_; }
  [[nodiscard]] CcPhase phase() const noexcept { return phase_; }
  [[nodiscard]] CcEngine engine() const noexcept { return cfg_.engine; }
  [[nodiscard]] double w_max() const noexcept { return w_max_; }

  /// May the sender window another packet with `inflight` already unacked?
  [[nodiscard]] bool can_send(std::size_t inflight) const noexcept {
    return unlimited() || inflight < cwnd_packets();
  }

  /// `newly_acked` window entries retired (cumulative advance + SACK
  /// erasures); `cum` is the new cumulative ack. Growth happens here;
  /// recovery exits here once the loss episode's data is fully acked.
  void on_acked(std::uint64_t newly_acked, std::uint64_t cum,
                std::int64_t now_ns) {
    if (unlimited() || newly_acked == 0) {
      return;
    }
    if (phase_ == CcPhase::recovery) {
      if (cum < recover_seq_) {
        return;  // partial ack: still recovering, no growth
      }
      phase_ = CcPhase::avoidance;
      cwnd_ = static_cast<double>(ssthresh_);
      dup_acks_ = 0;
    }
    if (phase_ == CcPhase::slow_start) {
      cwnd_ += static_cast<double>(newly_acked);
      if (cwnd_ >= static_cast<double>(ssthresh_)) {
        cwnd_ = static_cast<double>(ssthresh_);
        phase_ = CcPhase::avoidance;
        epoch_start_ns_ = now_ns;
        if (w_max_ <= 0) {
          w_max_ = cwnd_;
        }
      }
      clamp();
      return;
    }
    if (cfg_.engine == CcEngine::aimd) {
      // Additive increase: +1 packet per ACKed window's worth of data.
      cwnd_ += static_cast<double>(newly_acked) / std::max(cwnd_, 1.0);
    } else {
      cubic_update(now_ns);
    }
    clamp();
  }

  /// A duplicate ack (explicit flow_ack whose cumulative ack did not move
  /// while data is in flight). Returns true when the caller should fast-
  /// retransmit the unSACKed holes: on the dupack_threshold'th duplicate
  /// (entering fast recovery), and on every further duplicate while in
  /// recovery (SACK keeps exposing new holes).
  [[nodiscard]] bool on_dup_ack(std::uint64_t highest_sent,
                                std::int64_t now_ns) {
    if (unlimited()) {
      return false;
    }
    if (phase_ == CcPhase::recovery) {
      return true;
    }
    if (++dup_acks_ < cfg_.dupack_threshold) {
      return false;
    }
    enter_recovery(highest_sent, now_ns);
    return true;
  }

  /// A retransmission timeout fired on this flow: the network gave no
  /// feedback for a full RTO, so collapse to min_cwnd and slow-start back.
  /// Guarded per loss episode — a burst of same-window expiries in one pump
  /// pass must not stack collapses.
  void on_rto(std::uint64_t highest_sent, std::int64_t now_ns) {
    if (unlimited()) {
      return;
    }
    if (highest_sent <= recover_seq_ && phase_ == CcPhase::slow_start) {
      return;  // same episode, already collapsed
    }
    w_max_ = std::max(cwnd_, static_cast<double>(cfg_.min_cwnd));
    ssthresh_ = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(cwnd_ / 2.0), cfg_.min_cwnd);
    cwnd_ = static_cast<double>(cfg_.min_cwnd);
    phase_ = CcPhase::slow_start;
    recover_seq_ = highest_sent;
    dup_acks_ = 0;
    epoch_start_ns_ = now_ns;
  }

  /// Receiver echoed a CE mark (congestion experienced on a modeled link):
  /// multiplicative decrease without waiting for loss. At most once per
  /// in-flight window — echoes for data sent before the last decrease are
  /// ignored, mirroring TCP's CWR round.
  void on_ecn_echo(std::uint64_t cum, std::uint64_t highest_sent,
                   std::int64_t now_ns) {
    if (unlimited() || phase_ == CcPhase::recovery) {
      return;
    }
    if (cum < ecn_guard_seq_) {
      return;  // this echo is for data sent before the last decrease
    }
    multiplicative_decrease(now_ns);
    ecn_guard_seq_ = highest_sent;
  }

  /// First seq of the current loss episode's tail (recovery exits when the
  /// cumulative ack reaches it).
  [[nodiscard]] std::uint64_t recover_seq() const noexcept {
    return recover_seq_;
  }
  [[nodiscard]] int dup_acks() const noexcept { return dup_acks_; }

  /// The CUBIC window at `t` seconds past the last decrease, anchored at
  /// `w_max`: W(t) = C*(t-K)^3 + W_max with K = cbrt(W_max*(1-beta)/C).
  /// Exposed for the unit tests' W_max math checks.
  [[nodiscard]] static double cubic_window(double t_s, double w_max) noexcept {
    const double k = std::cbrt(w_max * (1.0 - kCubicBeta) / kCubicC);
    const double d = t_s - k;
    return kCubicC * d * d * d + w_max;
  }

  static constexpr double kCubicC = 0.4;
  static constexpr double kCubicBeta = 0.7;
  static constexpr double kAimdBeta = 0.5;

 private:
  [[nodiscard]] double beta() const noexcept {
    return cfg_.engine == CcEngine::cubic ? kCubicBeta : kAimdBeta;
  }

  void enter_recovery(std::uint64_t highest_sent, std::int64_t now_ns) {
    multiplicative_decrease(now_ns);
    phase_ = CcPhase::recovery;
    recover_seq_ = highest_sent;
    dup_acks_ = 0;
  }

  void multiplicative_decrease(std::int64_t now_ns) {
    w_max_ = std::max(cwnd_, static_cast<double>(cfg_.min_cwnd));
    cwnd_ = std::max(cwnd_ * beta(), static_cast<double>(cfg_.min_cwnd));
    ssthresh_ = std::max<std::uint64_t>(static_cast<std::uint64_t>(cwnd_),
                                        cfg_.min_cwnd);
    epoch_start_ns_ = now_ns;
    phase_ = phase_ == CcPhase::slow_start ? CcPhase::avoidance : phase_;
  }

  void cubic_update(std::int64_t now_ns) {
    if (epoch_start_ns_ == 0) {
      epoch_start_ns_ = now_ns;
      w_max_ = std::max(w_max_, cwnd_);
    }
    const double t_s =
        static_cast<double>(now_ns - epoch_start_ns_) / 1e9;
    const double target = cubic_window(t_s, w_max_);
    // Never shrink on an ack: below W_max the curve is rising toward the
    // anchor; a target under the current window only means we got here
    // early (e.g. slow start overshoot), not that we should give back.
    cwnd_ = std::max(cwnd_, target);
  }

  void clamp() noexcept {
    cwnd_ = std::clamp(cwnd_, static_cast<double>(cfg_.min_cwnd),
                       static_cast<double>(cfg_.max_cwnd));
  }

  CcConfig cfg_;
  double cwnd_ = 10.0;
  std::uint64_t ssthresh_ = 4096;
  CcPhase phase_ = CcPhase::slow_start;
  int dup_acks_ = 0;
  std::uint64_t recover_seq_ = 0;   ///< loss episode tail (NewReno "recover")
  std::uint64_t ecn_guard_seq_ = 0;  ///< one ECN decrease per window guard
  double w_max_ = 0;                ///< CUBIC anchor: window at last decrease
  std::int64_t epoch_start_ns_ = 0;  ///< CUBIC epoch (last decrease time)
};

/// Idempotent registration of the fabric cvars (fabric.cc, fabric.rails,
/// fabric.stripe_threshold, fabric.ecn_threshold_ns) in the MPI_T
/// namespace. Called by the Fabric constructor and by benches that set the
/// knobs before constructing a cluster.
void register_fabric_cvars();

/// Current process-global congestion/striping defaults from the cvars.
/// A Fabric snapshots this at construction unless its ReliabilityConfig
/// carries an explicit override.
[[nodiscard]] CcConfig cc_config_from_cvars();

/// Modeled link-queue depth (ns of backlog) above which the sim sets the
/// CE bit; 0 disables marking. From the fabric.ecn_threshold_ns cvar.
[[nodiscard]] std::int64_t ecn_threshold_ns_from_cvars();

}  // namespace sessmpi::fabric
