#pragma once

// The simulated interconnect. One Endpoint (blocking inbox) per rank; the
// Fabric routes packets between endpoints, charging wire time from the cost
// model on the sending side: shared-memory cost for intra-node traffic,
// Aries-like network cost for inter-node traffic. Failure injection marks a
// rank unreachable, after which sends to it are dropped (the runtime layers
// surface this through PMIx failure events and operation timeouts).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sessmpi/base/cost_model.hpp"
#include "sessmpi/base/error.hpp"
#include "sessmpi/base/inbox.hpp"
#include "sessmpi/base/topology.hpp"
#include "sessmpi/fabric/packet.hpp"

namespace sessmpi::fabric {

class Endpoint {
 public:
  base::Inbox<Packet>& inbox() noexcept { return inbox_; }

  /// Count of packets delivered to this endpoint (diagnostics / tests).
  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  friend class Fabric;
  base::Inbox<Packet> inbox_;
  std::atomic<std::uint64_t> delivered_{0};
};

class Fabric {
 public:
  Fabric(base::Topology topo, base::CostModel cost);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Route a packet to its destination endpoint, injecting the modeled wire
  /// time on the calling (sender) thread. Throws Error(rte_bad_param) for an
  /// invalid destination. Sends to failed ranks are counted and dropped.
  void send(Packet&& packet);

  [[nodiscard]] Endpoint& endpoint(Rank r);
  [[nodiscard]] const base::Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const base::CostModel& cost_model() const noexcept {
    return cost_;
  }

  /// Failure injection: mark `r` unreachable.
  void mark_failed(Rank r);
  [[nodiscard]] bool is_failed(Rank r) const;

  /// Chaos hook: packets for which the filter returns true are silently
  /// dropped (lossy-link injection). Install before traffic starts — the
  /// send path reads it without synchronization.
  void set_drop_filter(std::function<bool(const Packet&)> filter) {
    drop_filter_ = std::move(filter);
    has_drop_filter_.store(drop_filter_ != nullptr,
                           std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t dropped_to_failed() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Packets discarded by the chaos drop filter.
  [[nodiscard]] std::uint64_t chaos_dropped() const noexcept {
    return chaos_dropped_.load(std::memory_order_relaxed);
  }
  /// Total bytes (headers + payload) pushed through the fabric.
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

 private:
  base::Topology topo_;
  base::CostModel cost_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::atomic<bool>> failed_;
  std::function<bool(const Packet&)> drop_filter_;
  std::atomic<bool> has_drop_filter_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> chaos_dropped_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

}  // namespace sessmpi::fabric
