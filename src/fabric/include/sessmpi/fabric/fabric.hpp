#pragma once

// The simulated interconnect. One Endpoint (blocking inbox) per rank; the
// Fabric routes packets between endpoints, charging wire time from the cost
// model on the sending side: shared-memory cost for intra-node traffic,
// Aries-like network cost for inter-node traffic. Failure injection marks a
// rank unreachable, after which sends to it are dropped (the runtime layers
// surface this through PMIx failure events and operation timeouts).
//
// Reliable delivery (DESIGN.md §9): the fabric guarantees exactly-once,
// in-order delivery per (src,dst) flow even when the chaos drop filter eats
// packets. Every sequenced packet is stamped with a flow sequence number and
// retained in a sender-side unacked window; a fabric-owned pump thread
// retransmits entries whose RTO expired (exponential backoff), flushes
// batched cumulative/selective ACKs, and — after `max_retries` consecutive
// losses — escalates the peer to a mark_failed-style unreachable verdict.
// Receivers suppress retransmit-induced duplicates and hold out-of-order
// arrivals in a reorder buffer, so the pt2pt matching engine above never
// sees a duplicate or an overtaking message.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <optional>

#include "sessmpi/base/backoff.hpp"
#include "sessmpi/base/cost_model.hpp"
#include "sessmpi/base/error.hpp"
#include "sessmpi/base/inbox.hpp"
#include "sessmpi/base/topology.hpp"
#include "sessmpi/fabric/cc.hpp"
#include "sessmpi/fabric/packet.hpp"

namespace sessmpi::fabric {

class Endpoint {
 public:
  base::Inbox<Packet>& inbox() noexcept { return inbox_; }

  /// Count of packets delivered to this endpoint (diagnostics / tests).
  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  friend class Fabric;
  base::Inbox<Packet> inbox_;
  std::atomic<std::uint64_t> delivered_{0};
};

/// Reliability policy knobs. Defaults are sized for the calibrated cost
/// model (wire latencies of 0.2–0.6 ms): the RTO comfortably exceeds one
/// wire time plus the ACK-flush tick, so lossless runs never retransmit.
struct ReliabilityConfig {
  /// Pump period: batched-ACK flush + retransmit scan granularity.
  std::int64_t tick_ns = 1'000'000;  // 1 ms
  /// RTO for the first retransmit = rto_base_ns + the packet's modeled wire
  /// time; subsequent retries back off exponentially up to rto_cap_ns.
  std::int64_t rto_base_ns = 20'000'000;   // 20 ms
  std::int64_t rto_cap_ns = 320'000'000;   // 320 ms
  /// Consecutive unacknowledged (re)transmissions before the destination is
  /// declared unreachable (mark_failed + unreachable callback).
  int max_retries = 10;
  /// Cap on selective-ACK entries carried by one flow_ack packet.
  std::size_t max_sack_entries = 16;
  /// Congestion control + striping policy (DESIGN.md §17). nullopt means
  /// "snapshot the fabric.cc / fabric.rails / fabric.stripe_threshold cvars
  /// at construction" — tests and benches that want a specific engine set
  /// this directly.
  std::optional<CcConfig> cc;
};

/// A chaos filter slot that is safe to install, swap, or clear while
/// traffic is in flight. Readers copy the shared_ptr so an in-progress
/// filter call survives a concurrent swap. Guarded by a mutex rather than
/// std::atomic<std::shared_ptr>: libstdc++'s lock-bit _Sp_atomic trips
/// ThreadSanitizer (the CI TSan job runs these suites), and the two
/// pointer ops in the critical section are invisible next to the modeled
/// wire time.
class FilterSlot {
 public:
  using Filter = std::function<bool(const Packet&)>;

  void set(Filter f) {
    auto next =
        f ? std::make_shared<const Filter>(std::move(f)) : nullptr;
    std::lock_guard lock(mu_);
    ptr_ = std::move(next);
  }
  [[nodiscard]] std::shared_ptr<const Filter> get() const {
    std::lock_guard lock(mu_);
    return ptr_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Filter> ptr_;
};

class Fabric {
 public:
  using PacketFilter = FilterSlot::Filter;

  Fabric(base::Topology topo, base::CostModel cost,
         ReliabilityConfig rel = {});
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Route a packet to its destination endpoint, injecting the modeled wire
  /// time on the calling (sender) thread. Throws Error(rte_bad_param) for an
  /// invalid destination. Sends to failed ranks are counted and dropped;
  /// chaos-dropped packets stay in the sender's unacked window and are
  /// retransmitted by the pump until acknowledged or retries are exhausted.
  void send(Packet&& packet);

  [[nodiscard]] Endpoint& endpoint(Rank r);
  [[nodiscard]] const base::Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const base::CostModel& cost_model() const noexcept {
    return cost_;
  }
  [[nodiscard]] const ReliabilityConfig& reliability() const noexcept {
    return rel_;
  }

  /// Failure injection: mark `r` unreachable.
  void mark_failed(Rank r);
  [[nodiscard]] bool is_failed(Rank r) const;

  /// Called (off the sender threads, from the pump) when retry exhaustion
  /// escalates a destination to unreachable — after mark_failed(r), so the
  /// callback observes the fabric's ground truth. The cluster wires this to
  /// the PMIx failure-event announcement.
  void set_unreachable_callback(std::function<void(Rank)> cb);

  /// Chaos hook: packets for which the filter returns true are dropped on
  /// the wire (lossy-link injection); the reliability layer retransmits
  /// them. Safe to install, swap, or clear while traffic is in flight
  /// (FilterSlot), so a chaos schedule can toggle lossiness mid-phase.
  void set_drop_filter(PacketFilter filter);

  /// Chaos hook: sequenced packets for which the filter returns true are
  /// held back and delivered by the pump one tick later, arriving behind
  /// packets sent after them (reordering injection). The receiver-side
  /// reorder buffer restores flow order before the inbox sees them. Same
  /// mid-run swap guarantees as set_drop_filter.
  void set_reorder_filter(PacketFilter filter);

  /// ECN hook: the sim installs a link-load model here; sequenced packets
  /// for which it returns true get the CE bit set (congestion experienced)
  /// and the receiver echoes ECE in its flow_acks, triggering a sender-side
  /// multiplicative decrease without waiting for loss (DESIGN.md §17).
  /// Same mid-run swap guarantees as the chaos filters.
  void set_ce_marker(PacketFilter marker);

  /// The congestion/striping policy this fabric resolved at construction.
  [[nodiscard]] const CcConfig& cc_config() const noexcept { return cc_; }

  /// Block until every unacked window, reorder buffer, held (reordered)
  /// packet, and pending ACK has drained, or `timeout` elapses. Returns
  /// true when fully quiesced. Tests and benches use this to wait out the
  /// retransmit tail of a lossy phase.
  bool quiesce(std::chrono::nanoseconds timeout);

  [[nodiscard]] std::uint64_t dropped_to_failed() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Packets discarded by the chaos drop filter (first sends + retransmits).
  [[nodiscard]] std::uint64_t chaos_dropped() const noexcept {
    return chaos_dropped_.load(std::memory_order_relaxed);
  }
  /// Bytes (headers + payload) that reached a destination endpoint. Lost
  /// packets count under bytes_dropped() instead, so loss never inflates
  /// the delivered-traffic totals the benchmarks report.
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  /// Bytes of packets lost on the wire (chaos-dropped or sent to a failed
  /// rank).
  [[nodiscard]] std::uint64_t bytes_dropped() const noexcept {
    return bytes_dropped_.load(std::memory_order_relaxed);
  }
  /// Timeout-driven retransmissions performed by the pump.
  [[nodiscard]] std::uint64_t retransmits() const noexcept {
    return retransmits_.load(std::memory_order_relaxed);
  }
  /// Duplicate arrivals suppressed at receivers (retransmit-induced).
  [[nodiscard]] std::uint64_t dup_suppressed() const noexcept {
    return dup_suppressed_.load(std::memory_order_relaxed);
  }
  /// Retry-exhaustion escalations to an unreachable verdict.
  [[nodiscard]] std::uint64_t rto_escalations() const noexcept {
    return rto_escalations_.load(std::memory_order_relaxed);
  }
  /// Dup-ack/SACK-triggered retransmissions (loss repaired without an RTO).
  [[nodiscard]] std::uint64_t fast_retransmits() const noexcept {
    return fast_retransmits_.load(std::memory_order_relaxed);
  }
  /// Tail-loss probes: highest-unacked retransmissions fired after an ack
  /// silence, repairing tail losses dup-acks cannot see (adaptive only).
  [[nodiscard]] std::uint64_t tlp_probes() const noexcept {
    return tlp_probes_.load(std::memory_order_relaxed);
  }
  /// Packets the sim marked CE (congestion experienced on a modeled link).
  [[nodiscard]] std::uint64_t ecn_marks() const noexcept {
    return ecn_marks_.load(std::memory_order_relaxed);
  }
  /// Payload bytes of striped segments first-transmitted on `rail`
  /// (retransmits excluded), for the rail-imbalance gauge.
  [[nodiscard]] std::uint64_t rail_striped_bytes(int rail) const noexcept {
    return rail < 0 || rail >= kMaxRails
               ? 0
               : rail_striped_bytes_[static_cast<std::size_t>(rail)].load(
                     std::memory_order_relaxed);
  }
  /// Sequenced packets currently awaiting acknowledgment (all flows).
  [[nodiscard]] std::uint64_t unacked() const;

  /// Flight-recorder section body (obs::register_postmortem_section):
  /// one-line JSON of every live fabric's flows that still hold unacked or
  /// reordered packets — the state that explains an unreachable verdict.
  static void dump_flow_windows(std::ostream& os);

 private:
  /// Directed per-(src,dst,rail) flow state. tx_* is the sender-side
  /// unacked window (touched by src's threads and the pump); rx_* is the
  /// receiver-side dedup/reorder state (touched by delivering threads and
  /// the pump). One mutex guards both; it is never held across a wire
  /// delay, another flow's mutex, or an inbox wait (it IS held across the
  /// reassembly table's mutex — that lock order, flow then reassembly, is
  /// the only nesting).
  struct Flow {
    Flow(Rank s, Rank d, std::uint8_t r, const CcConfig& cfg)
        : src(s), dst(d), rail(r), cc(cfg) {}
    const Rank src;
    const Rank dst;
    const std::uint8_t rail;  ///< rail id; non-zero only for striped traffic
    mutable std::mutex mu;
    // --- tx (packets src -> dst) ---
    std::uint64_t next_seq = 1;
    CcState cc;  ///< congestion window state machine (DESIGN.md §17)
    std::uint64_t last_cum_seen = 0;  ///< last explicit-ack cum (dup detect)
    struct Unacked {
      Packet pkt;
      base::Deadline deadline;
      std::int64_t rto_ns = 0;  ///< current (backed-off) RTO
      int retries = 0;
      /// Marked by a triple-dup/SACK verdict; the next pump pass
      /// retransmits immediately (no RTO wait, no backoff, no retry charge).
      bool fast_retx = false;
      /// Already fast-retransmitted once; further repair is RTO-only.
      bool fast_retxed = false;
      /// Completed pump passes when (re)armed. An entry only expires after
      /// BOTH the wall RTO and two further completed passes: ACKs are
      /// flushed by the pump itself, so when the pump is starved (e.g. an
      /// oversubscribed host where rank threads spin out wire delays),
      /// retransmitting early is pure waste — the original was delivered
      /// and its ACK simply hasn't been pumped yet.
      std::uint64_t armed_pass = 0;
    };
    std::map<std::uint64_t, Unacked> window;
    /// Wall clock of the last forward progress on the tx side — a newly
    /// windowed packet or an ack that retired one. The tail-loss probe
    /// timer (adaptive engines only) measures silence from here.
    std::int64_t last_progress_ns = 0;
    /// One tail-loss probe per silence episode; re-armed by ack progress.
    bool tlp_fired = false;
    // --- rx (same direction, state kept at dst) ---
    std::uint64_t cum_delivered = 0;  ///< highest contiguously delivered seq
    std::map<std::uint64_t, Packet> reorder;  ///< out-of-order arrivals
    bool ack_pending = false;  ///< new data since the last ACK we emitted
    bool ece_rx_pending = false;  ///< CE seen since the last ACK we emitted
  };

  /// One partially reassembled striped message at the receiver, keyed by
  /// (src,dst,msg_id). Segment byte ranges are derived from the stripe
  /// header, so segments can complete in any cross-rail order.
  struct PartialMessage {
    Payload buf;
    std::uint16_t segments_seen = 0;
  };

  /// Get-or-create the (src,dst,rail) flow. Flows materialize on first
  /// touch: preallocating topo.size()^2 of them costs tens of GB at 16k
  /// ranks, while real traffic touches O(active peer pairs). Created flows
  /// are never destroyed before the Fabric, so the returned reference (and
  /// the pointers in active_) stay valid for the fabric's lifetime.
  Flow& flow(Rank src, Rank dst, std::uint8_t rail = 0);
  /// Lookup without materializing (piggyback-ACK reads of the reverse
  /// flow: if it never existed, there is nothing to acknowledge).
  Flow* flow_if_exists(Rank src, Rank dst, std::uint8_t rail = 0) noexcept;
  /// Stable snapshot of every materialized flow (pump/quiesce iteration).
  std::vector<Flow*> active_flows() const;

  /// Put `pkt` on the wire: charge the cost model on the calling thread,
  /// apply failure/chaos/reorder filters, and deliver on survival. Returns
  /// true when the packet reached the destination's receive path.
  bool transmit(Packet&& pkt, bool charge_wire);
  /// Receiver-side processing on the destination's behalf: consume ACK
  /// state, dedup/reorder sequenced packets, push deliverables to the
  /// inbox.
  void deliver(Packet&& pkt);
  void push_to_inbox(Packet&& pkt);
  /// In-order release of one sequenced packet at the receiver: striped
  /// segments feed the reassembly table, everything else goes straight to
  /// the inbox. Called with the owning flow's mutex held.
  void release_in_order(Packet&& pkt);
  /// Merge a striped segment; pushes the logical message to the inbox once
  /// all its segments arrived.
  void reassemble(Packet&& seg);
  /// Apply a cumulative + selective ACK to the (src,dst,rail) sender
  /// window. `ece` echoes a CE mark; `is_explicit` distinguishes flow_acks
  /// (which drive dup-ack counting) from piggybacked data acks (which must
  /// not — data arrival order says nothing about ack duplication).
  void apply_ack(Rank src, Rank dst, std::uint8_t rail, std::uint64_t cum,
                 const std::vector<std::uint64_t>& sack, bool ece,
                 bool is_explicit);
  /// Block (cooperatively) until flow `f` has congestion window room, then
  /// assign the next seq and window the packet. Returns false when the
  /// destination died while waiting (the packet is charged and dropped).
  bool window_packet(Flow& f, Packet& packet, std::int64_t rto_ns);
  /// Split an at-or-above-threshold rndv_data across the configured rails.
  void send_striped(Packet&& packet);
  /// Start the RTO clock on window entry `seq` after its transmit returned
  /// (no-op when the entry was acknowledged mid-wire).
  void arm_entry(Rank src, Rank dst, std::uint8_t rail, std::uint64_t seq,
                 std::int64_t rto_ns);
  /// Emit one flow_ack for `f` if it has unacknowledged deliveries. ACK
  /// wire time is not charged: ACKs model piggybacked / NIC-offloaded
  /// reverse traffic (DESIGN.md §9).
  void flush_ack(Flow& f);
  void pump_main();
  /// One pump pass over every flow; returns true if any state remains.
  bool pump_pass();
  void escalate_unreachable(Rank dst);

  base::Topology topo_;
  base::CostModel cost_;
  ReliabilityConfig rel_;
  CcConfig cc_;  ///< resolved at construction (rel_.cc or the cvars)
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  /// Lazy flow table, sharded by (src,dst) hash to keep first-touch
  /// creation off a single global lock. Values are heap-owned so Flow*
  /// stays stable across rehashes.
  static constexpr std::size_t kFlowShards = 64;
  struct FlowShard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::unique_ptr<Flow>> flows;
  };
  std::array<FlowShard, kFlowShards> flow_shards_;
  /// Append-only registry of every materialized flow; the pump iterates
  /// this instead of all topo.size()^2 (src,dst) pairs.
  mutable std::mutex active_mu_;
  std::vector<Flow*> active_;
  std::vector<std::atomic<bool>> failed_;
  FilterSlot drop_filter_;
  FilterSlot reorder_filter_;
  FilterSlot ce_marker_;
  /// Receiver-side reassembly of striped messages, keyed
  /// (src,dst,msg_id). Locked after a flow mutex, never before one.
  std::mutex reass_mu_;
  std::map<std::array<std::uint64_t, 3>, PartialMessage> reassembly_;
  std::atomic<std::uint64_t> next_msg_id_{0};
  std::mutex unreachable_mu_;
  std::function<void(Rank)> unreachable_cb_;

  std::mutex held_mu_;
  std::vector<Packet> held_;  ///< reorder-injected packets awaiting a tick

  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> chaos_dropped_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_dropped_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> dup_suppressed_{0};
  std::atomic<std::uint64_t> rto_escalations_{0};
  std::atomic<std::uint64_t> fast_retransmits_{0};
  std::atomic<std::uint64_t> tlp_probes_{0};
  std::atomic<std::uint64_t> ecn_marks_{0};
  std::array<std::atomic<std::uint64_t>, kMaxRails> rail_striped_bytes_{};
  std::atomic<std::uint64_t> pump_passes_{0};  ///< completed pump passes

  std::atomic<bool> stop_{false};
  std::thread pump_;
};

}  // namespace sessmpi::fabric
