#pragma once

// Refcounted message payload backed by base::BufferPool slabs.
//
// A payload is written once by the sender (pack into data()) and is
// logically immutable from the moment the packet enters the fabric. Copying
// a Payload bumps an intrusive refcount instead of duplicating bytes, so
// the retransmission window, the chaos filters, and local delivery all
// alias the sender's buffer. The `fabric.payload_copies` counter counts
// *deep* byte duplications only — the eager path must keep it at zero
// (acceptance-gated in `bench_mbw_mr --smoke`).
//
// Thread-safety matches std::shared_ptr: the control block (refcount) is
// atomic, the bytes are not synchronized. The send path writes the bytes
// before handing the packet to the fabric, and the fabric's per-flow locks
// order that write before any cross-thread read.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sessmpi::fabric {

class Payload {
 public:
  Payload() noexcept = default;
  explicit Payload(std::size_t n) { resize(n); }

  Payload(const Payload& other) noexcept
      : hdr_(other.hdr_), size_(other.size_), off_(other.off_) {
    if (hdr_ != nullptr) {
      hdr_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Payload(Payload&& other) noexcept
      : hdr_(other.hdr_), size_(other.size_), off_(other.off_) {
    other.hdr_ = nullptr;
    other.size_ = 0;
    other.off_ = 0;
  }

  Payload& operator=(const Payload& other) noexcept {
    if (this != &other) {
      Payload tmp(other);
      swap(tmp);
    }
    return *this;
  }

  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      release();
      hdr_ = other.hdr_;
      size_ = other.size_;
      off_ = other.off_;
      other.hdr_ = nullptr;
      other.size_ = 0;
      other.off_ = 0;
    }
    return *this;
  }

  ~Payload() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] const std::byte* data() const noexcept { return bytes(); }
  [[nodiscard]] std::byte* data() noexcept { return bytes(); }

  /// Grow/shrink to `n` bytes, preserving the current contents' prefix.
  /// Reallocating a shared or too-small block deep-copies the old bytes
  /// (counted in fabric.payload_copies); the steady-state path — sizing a
  /// fresh payload once before packing — never copies.
  void resize(std::size_t n);

  /// A view of `[off, off+len)` sharing this payload's slab (refcount bump,
  /// zero byte copies). Striped rndv_data segments are slices of the staged
  /// message, so splitting across rails never touches fabric.payload_copies.
  /// The slice pins the whole slab until released, which is exactly the
  /// retransmission window's lifetime anyway.
  [[nodiscard]] Payload slice(std::size_t off, std::size_t len) const noexcept {
    Payload out(*this);
    if (off > size_) {
      off = size_;
    }
    if (len > size_ - off) {
      len = size_ - off;
    }
    out.off_ = off_ + off;
    out.size_ = len;
    return out;
  }

  /// Drop this reference (frees the slab when it is the last one).
  void clear() noexcept {
    release();
    hdr_ = nullptr;
    size_ = 0;
    off_ = 0;
  }

  /// Number of Payload objects sharing the block (0 for empty).
  [[nodiscard]] std::uint32_t use_count() const noexcept {
    return hdr_ == nullptr ? 0 : hdr_->refs.load(std::memory_order_relaxed);
  }

  void swap(Payload& other) noexcept {
    std::swap(hdr_, other.hdr_);
    std::swap(size_, other.size_);
    std::swap(off_, other.off_);
  }

 private:
  /// Lives at the front of the pooled slab; data bytes follow immediately.
  struct Header {
    std::atomic<std::uint32_t> refs;
    std::size_t capacity;  ///< data bytes available after the header
  };

  [[nodiscard]] std::byte* bytes() const noexcept {
    return hdr_ == nullptr
               ? nullptr
               : reinterpret_cast<std::byte*>(hdr_) + sizeof(Header) + off_;
  }

  void release() noexcept;

  Header* hdr_ = nullptr;
  std::size_t size_ = 0;
  std::size_t off_ = 0;  ///< slice offset into the slab's data bytes
};

}  // namespace sessmpi::fabric
