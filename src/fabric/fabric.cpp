#include "sessmpi/fabric/fabric.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>

#include <ostream>

#include "sessmpi/base/buffer_pool.hpp"
#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/base/yield.hpp"
#include "sessmpi/obs/hist.hpp"
#include "sessmpi/obs/postmortem.hpp"
#include "sessmpi/obs/trace.hpp"
#include "sessmpi/obs/tvar.hpp"

namespace sessmpi::fabric {

namespace {

/// Async-event correlation id for one sequenced packet: the trace's
/// "fabric.inflight" span opens at windowing and closes when the ACK
/// erases the entry; retransmits reuse the id so they nest under the
/// owning send on the sender's timeline (DESIGN.md §11).
[[maybe_unused]] std::uint64_t flow_trace_id(Rank src, Rank dst,
                                             std::uint8_t rail,
                                             std::uint64_t seq) {
  return (static_cast<std::uint64_t>(src) << 48) |
         (static_cast<std::uint64_t>(dst) << 32) |
         (static_cast<std::uint64_t>(rail) << 30) | (seq & 0x3FFFFFFFu);
}

/// Live fabrics, for the process-wide `fabric.flow.inflight` gauge and the
/// flight-recorder flow-window section (several simulated clusters can
/// coexist in one test binary). Fabrics deregister first thing in their
/// destructor, so a reader holding reg.mu never sees a dying instance.
struct FabricRegistry {
  std::mutex mu;
  std::vector<Fabric*> live;
};

FabricRegistry& fabric_registry() {
  static FabricRegistry r;
  return r;
}

}  // namespace

void Fabric::dump_flow_windows(std::ostream& os) {
  // Postmortem section: every flow that still has unacked or reordered
  // packets — exactly the state that explains why a rank was declared
  // unreachable. Runs with reg.mu held (blocks fabric teardown) and takes
  // each flow's mutex briefly; callers of escalate_unreachable hold no
  // flow locks, so the failure-path trigger cannot self-deadlock here.
  FabricRegistry& reg = fabric_registry();
  std::lock_guard lock(reg.mu);
  std::uint64_t total_unacked = 0;
  std::size_t total_flows = 0;
  os << "{\"flows\":[";
  bool first = true;
  for (Fabric* fab : reg.live) {
    for (const Flow* f : fab->active_flows()) {
      std::lock_guard flock(f->mu);
      ++total_flows;
      total_unacked += f->window.size();
      if (f->window.empty() && f->reorder.empty()) {
        continue;
      }
      os << (first ? "" : ",") << "{\"src\":" << f->src
         << ",\"dst\":" << f->dst
         << ",\"rail\":" << static_cast<int>(f->rail)
         << ",\"next_seq\":" << f->next_seq
         << ",\"window\":" << f->window.size()
         << ",\"cum_delivered\":" << f->cum_delivered
         << ",\"reorder\":" << f->reorder.size();
      if (!f->cc.unlimited()) {
        // Congestion state is what explains a stalled flow: a collapsed
        // cwnd in recovery reads very differently from a full window
        // waiting on a dead peer.
        os << ",\"cc\":\"" << cc_engine_name(f->cc.engine())
           << "\",\"cwnd\":" << f->cc.cwnd_packets()
           << ",\"ssthresh\":" << f->cc.ssthresh() << ",\"state\":\""
           << cc_phase_name(f->cc.phase()) << "\"";
      }
      os << "}";
      first = false;
    }
  }
  os << "],\"total_flows\":" << total_flows
     << ",\"total_unacked\":" << total_unacked << "}";
}

Fabric::Fabric(base::Topology topo, base::CostModel cost, ReliabilityConfig rel)
    : topo_(topo),
      cost_(cost),
      rel_(rel),
      cc_(rel.cc ? *rel.cc : cc_config_from_cvars()),
      failed_(static_cast<std::size_t>(topo.size())) {
  cc_.rails = std::clamp(cc_.rails, 1, kMaxRails);
  const auto n = static_cast<std::size_t>(topo_.size());
  endpoints_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    endpoints_.push_back(std::make_unique<Endpoint>());
    failed_[i].store(false, std::memory_order_relaxed);
  }
  {
    FabricRegistry& reg = fabric_registry();
    std::lock_guard lock(reg.mu);
    reg.live.push_back(this);
  }
  // Expose the payload slab pool's effectiveness as an MPI_T-style gauge
  // (percent of acquires served from a freelist). Process-wide, registered
  // once no matter how many simulated clusters exist; same for the
  // in-flight window gauge and the flight-recorder flow-window section,
  // which sum over every live fabric via the registry.
  static std::once_flag pool_gauge_once;
  std::call_once(pool_gauge_once, [] {
    obs::register_pvar_gauge("fabric.pool_hit_rate", [] {
      return static_cast<std::uint64_t>(
          base::BufferPool::global().stats().hit_rate() * 100.0 + 0.5);
    });
    obs::register_pvar_gauge("fabric.flow.inflight", [] {
      FabricRegistry& reg = fabric_registry();
      std::lock_guard lock(reg.mu);
      std::uint64_t total = 0;
      for (const Fabric* fab : reg.live) {
        total += fab->unacked();
      }
      return total;
    });
    obs::register_postmortem_section("fabric.flows", Fabric::dump_flow_windows);
    // Mean congestion window (packets) over every adaptive flow; 0 when
    // all flows run the fixed engine.
    obs::register_pvar_gauge("fabric.cwnd", [] {
      FabricRegistry& reg = fabric_registry();
      std::lock_guard lock(reg.mu);
      std::uint64_t sum = 0;
      std::uint64_t count = 0;
      for (Fabric* fab : reg.live) {
        for (const Flow* f : fab->active_flows()) {
          std::lock_guard flock(f->mu);
          if (!f->cc.unlimited()) {
            sum += f->cc.cwnd_packets();
            ++count;
          }
        }
      }
      return count == 0 ? 0 : sum / count;
    });
    // Striped-byte spread across rails: (max-min)/max in percent. 0 means
    // balanced (or striping idle); a high value flags a rail whose losses
    // starved it.
    obs::register_pvar_gauge("fabric.rail_imbalance_pct", [] {
      FabricRegistry& reg = fabric_registry();
      std::lock_guard lock(reg.mu);
      std::array<std::uint64_t, kMaxRails> bytes{};
      for (const Fabric* fab : reg.live) {
        for (int r = 0; r < kMaxRails; ++r) {
          bytes[static_cast<std::size_t>(r)] += fab->rail_striped_bytes(r);
        }
      }
      int top = -1;
      for (int r = 0; r < kMaxRails; ++r) {
        if (bytes[static_cast<std::size_t>(r)] > 0) {
          top = r;
        }
      }
      if (top < 1) {
        return std::uint64_t{0};
      }
      std::uint64_t hi = 0;
      std::uint64_t lo = ~std::uint64_t{0};
      for (int r = 0; r <= top; ++r) {
        hi = std::max(hi, bytes[static_cast<std::size_t>(r)]);
        lo = std::min(lo, bytes[static_cast<std::size_t>(r)]);
      }
      return (hi - lo) * 100 / hi;
    });
  });
  pump_ = std::thread([this] { pump_main(); });
}

Fabric::~Fabric() {
  {
    // Deregister before any teardown so the gauge/section never walk a
    // half-destroyed instance.
    FabricRegistry& reg = fabric_registry();
    std::lock_guard lock(reg.mu);
    std::erase(reg.live, this);
  }
  stop_.store(true, std::memory_order_release);
  if (pump_.joinable()) {
    pump_.join();
  }
}

namespace {
inline std::uint64_t flow_key(Rank src, Rank dst, std::uint8_t rail) noexcept {
  // 30 bits per rank (sim tops out far below 2^30) + the rail in the top
  // bits, so every (src,dst,rail) triple owns a distinct flow.
  return (static_cast<std::uint64_t>(rail) << 60) |
         ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) &
           0x3FFFFFFFu)
          << 30) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) &
          0x3FFFFFFFu);
}
}  // namespace

Fabric::Flow& Fabric::flow(Rank src, Rank dst, std::uint8_t rail) {
  const std::uint64_t key = flow_key(src, dst, rail);
  FlowShard& shard = flow_shards_[key % kFlowShards];
  {
    std::lock_guard lock(shard.mu);
    auto it = shard.flows.find(key);
    if (it != shard.flows.end()) {
      return *it->second;
    }
  }
  auto fresh = std::make_unique<Flow>(src, dst, rail, cc_);
  Flow* raw = fresh.get();
  {
    std::lock_guard lock(shard.mu);
    auto [it, inserted] = shard.flows.emplace(key, std::move(fresh));
    if (!inserted) {
      return *it->second;  // lost the creation race
    }
  }
  std::lock_guard lock(active_mu_);
  active_.push_back(raw);
  return *raw;
}

Fabric::Flow* Fabric::flow_if_exists(Rank src, Rank dst,
                                     std::uint8_t rail) noexcept {
  const std::uint64_t key = flow_key(src, dst, rail);
  FlowShard& shard = flow_shards_[key % kFlowShards];
  std::lock_guard lock(shard.mu);
  auto it = shard.flows.find(key);
  return it == shard.flows.end() ? nullptr : it->second.get();
}

std::vector<Fabric::Flow*> Fabric::active_flows() const {
  std::lock_guard lock(active_mu_);
  return active_;
}

Endpoint& Fabric::endpoint(Rank r) {
  if (!topo_.valid_rank(r)) {
    throw base::Error(base::ErrClass::rte_bad_param,
                      "invalid rank for endpoint lookup");
  }
  return *endpoints_[static_cast<std::size_t>(r)];
}

void Fabric::set_unreachable_callback(std::function<void(Rank)> cb) {
  std::lock_guard lock(unreachable_mu_);
  unreachable_cb_ = std::move(cb);
}

void Fabric::set_drop_filter(PacketFilter filter) {
  drop_filter_.set(std::move(filter));
}

void Fabric::set_reorder_filter(PacketFilter filter) {
  reorder_filter_.set(std::move(filter));
}

void Fabric::set_ce_marker(PacketFilter marker) {
  ce_marker_.set(std::move(marker));
}

// ---------------------------------------------------------------------------
// Send path (sender thread)
// ---------------------------------------------------------------------------

void Fabric::send(Packet&& packet) {
  if (!topo_.valid_rank(packet.dst_rank) || !topo_.valid_rank(packet.src_rank)) {
    throw base::Error(base::ErrClass::rte_bad_param, "invalid packet route");
  }
  if (is_failed(packet.dst_rank)) {
    // A known-dead destination is not a loss event for the reliability
    // layer: the packet is charged (occupancy only — nothing arrives, so
    // no flight latency is modeled), counted, and forgotten (no window).
    const std::size_t sz = packet.header_bytes() + packet.payload.size();
    base::precise_delay(cost_.wire_occupancy(
        topo_.same_node(packet.src_rank, packet.dst_rank),
        packet.payload.size(), packet.header_bytes()));
    dropped_.fetch_add(1, std::memory_order_relaxed);
    bytes_dropped_.fetch_add(sz, std::memory_order_relaxed);
    return;
  }
  if (!packet.is_sequenced()) {
    transmit(std::move(packet), /*charge_wire=*/true);
    return;
  }
  if (cc_.rails > 1 && packet.kind == PacketKind::rndv_data &&
      !packet.is_striped() &&
      packet.payload.size() >= cc_.stripe_threshold) {
    // Bulk rendezvous data is the only striped kind: it is matched by
    // token, not arrival order, so per-rail flows cannot reorder it past
    // the MPI non-overtaking guarantee the eager/RTS path depends on.
    send_striped(std::move(packet));
    return;
  }

  const Rank src = packet.src_rank;
  const Rank dst = packet.dst_rank;
  OBS_SPAN_ARG("fabric.send", "fabric", packet.payload.size());
  // Piggyback the cumulative ACK for the reverse flow (data we received
  // from dst). Deliberately does NOT clear the reverse flow's ack_pending:
  // this packet may spend a long wall time on the wire (or be chaos-
  // dropped), and ACK state that exists only in flight is exactly what
  // causes spurious retransmits. The pump's explicit flow_ack is the
  // ground truth; the piggyback just retires windows earlier for free.
  // Piggybacks always describe the rail-0 reverse flow — control and eager
  // traffic ride rail 0; striped rails are acked by explicit flow_acks.
  if (Flow* rev = flow_if_exists(dst, src)) {
    std::lock_guard lock(rev->mu);
    packet.flow.ack = rev->cum_delivered;
  }
  const std::int64_t rto_ns =
      rel_.rto_base_ns + cost_.wire_cost(topo_.same_node(src, dst),
                                         packet.payload.size(),
                                         packet.header_bytes());
  Flow& f = flow(src, dst);
  if (!window_packet(f, packet, rto_ns)) {
    return;  // destination died while we waited for window room
  }
  const std::uint64_t seq = packet.flow.seq;
  OBS_ASYNC_BEGIN(src, "fabric.inflight", "fabric",
                  flow_trace_id(src, dst, 0, seq), seq);
  transmit(std::move(packet), /*charge_wire=*/true);
  arm_entry(src, dst, 0, seq, rto_ns);
}

bool Fabric::window_packet(Flow& f, Packet& packet, std::int64_t rto_ns) {
  for (;;) {
    {
      std::lock_guard lock(f.mu);
      // Teardown overrides the window: with the pump stopping there may be
      // nobody left to flush the ACKs that would open it.
      if (f.cc.can_send(f.window.size()) ||
          stop_.load(std::memory_order_relaxed)) {
        packet.flow.seq = f.next_seq++;
        packet.flow.rail = f.rail;
        Flow::Unacked& entry = f.window[packet.flow.seq];
        entry.pkt = packet;  // retained for retransmission; the refcounted
                             // Payload makes this a header-only copy
        entry.rto_ns = rto_ns;
        entry.retries = 0;
        // Parked until the caller's transmit returns: the RTO clock must
        // start when the packet actually left the wire, not when it was
        // windowed — on an oversubscribed host the sending thread can be
        // descheduled mid-spin for longer than the whole RTO.
        entry.deadline.arm_never();
        // New data in flight opens a fresh silence episode for the
        // tail-loss probe timer.
        f.last_progress_ns = base::now_ns();
        f.tlp_fired = false;
        return true;
      }
    }
    if (is_failed(f.dst)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      bytes_dropped_.fetch_add(packet.header_bytes() + packet.payload.size(),
                               std::memory_order_relaxed);
      return false;
    }
    if (base::cooperative()) {
      base::try_yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
}

void Fabric::send_striped(Packet&& packet) {
  const Rank src = packet.src_rank;
  const Rank dst = packet.dst_rank;
  const std::size_t total = packet.payload.size();
  const auto nseg = static_cast<std::size_t>(cc_.rails);
  OBS_SPAN_ARG("fabric.send_striped", "fabric", total);
  std::uint64_t rev_cum = 0;
  if (Flow* rev = flow_if_exists(dst, src)) {
    std::lock_guard lock(rev->mu);
    rev_cum = rev->cum_delivered;
  }
  const bool same_node = topo_.same_node(src, dst);
  const std::uint64_t msg_id =
      next_msg_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::size_t base_len = total / nseg;
  const std::size_t rem = total % nseg;
  struct Seg {
    Packet pkt;
    std::int64_t rto_ns;
  };
  std::vector<Seg> segs;
  segs.reserve(nseg);
  std::int64_t max_occupancy = 0;
  std::size_t off = 0;
  for (std::size_t r = 0; r < nseg; ++r) {
    const std::size_t len = base_len + (r < rem ? 1 : 0);
    Packet seg;
    seg.kind = packet.kind;
    seg.src_rank = src;
    seg.dst_rank = dst;
    seg.match = packet.match;
    seg.ext = packet.ext;
    seg.token = packet.token;
    seg.advertised_size = packet.advertised_size;
    seg.stripe.msg_id = msg_id;
    seg.stripe.index = static_cast<std::uint16_t>(r);
    seg.stripe.count = static_cast<std::uint16_t>(nseg);
    seg.stripe.total_bytes = static_cast<std::uint32_t>(total);
    seg.payload = packet.payload.slice(off, len);  // zero-copy slab share
    seg.flow.ack = rev_cum;
    off += len;
    const std::size_t hdr = seg.header_bytes();
    max_occupancy =
        std::max(max_occupancy, cost_.wire_occupancy(same_node, len, hdr));
    const std::int64_t rto =
        rel_.rto_base_ns + cost_.wire_cost(same_node, len, hdr);
    Flow& f = flow(src, dst, static_cast<std::uint8_t>(r));
    if (!window_packet(f, seg, rto)) {
      return;  // dst died mid-stripe; the pump GCs the windowed segments
    }
    rail_striped_bytes_[r].fetch_add(len, std::memory_order_relaxed);
    OBS_ASYNC_BEGIN(src, "fabric.inflight", "fabric",
                    flow_trace_id(src, dst, seg.flow.rail, seg.flow.seq),
                    seg.flow.seq);
    segs.push_back({std::move(seg), rto});
  }
  // Rails are parallel paths: the sending thread pays the occupancy of its
  // busiest rail once, not the sum — that is the whole point of striping.
  // Arrival deadlines are pre-stamped so transmit() (charge_wire=false)
  // leaves the parallel-wire model intact per segment.
  base::precise_delay(max_occupancy);
  const std::int64_t arrival = base::now_ns() + cost_.wire_latency(same_node);
  for (Seg& s : segs) {
    const std::uint8_t rail = s.pkt.flow.rail;
    const std::uint64_t seq = s.pkt.flow.seq;
    s.pkt.arrival_ns = arrival;
    transmit(std::move(s.pkt), /*charge_wire=*/false);
    arm_entry(src, dst, rail, seq, s.rto_ns);
  }
}

/// Start (or restart) the RTO clock on a window entry after its transmit
/// completed. The entry may already be gone — acknowledged while the wire
/// time was being charged — in which case there is nothing to time.
void Fabric::arm_entry(Rank src, Rank dst, std::uint8_t rail,
                       std::uint64_t seq, std::int64_t rto_ns) {
  Flow& f = flow(src, dst, rail);
  std::lock_guard lock(f.mu);
  auto it = f.window.find(seq);
  if (it == f.window.end()) {
    return;
  }
  it->second.rto_ns = rto_ns;
  it->second.deadline.arm(base::now_ns(), rto_ns);
  it->second.armed_pass = pump_passes_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Wire + receive path
// ---------------------------------------------------------------------------

bool Fabric::transmit(Packet&& pkt, bool charge_wire) {
  const std::size_t header = pkt.header_bytes();
  const std::size_t payload = pkt.payload.size();
  const std::size_t sz = header + payload;
  if (charge_wire) {
    // Pipelined LogGP wire model: the sending thread pays only its
    // occupancy (gap + serialization); the one-way latency elapses "in
    // flight" — the packet is stamped with its arrival deadline and the
    // receiver's dispatch loop waits it out. Back-to-back sends therefore
    // overlap their latencies (message rate ~ 1/gap), matching how real
    // windowed osu_mbw_mr rates exceed 1/latency.
    const bool same_node = topo_.same_node(pkt.src_rank, pkt.dst_rank);
    base::precise_delay(cost_.wire_occupancy(same_node, payload, header));
    pkt.arrival_ns = base::now_ns() + cost_.wire_latency(same_node);
  }
  if (is_failed(pkt.dst_rank)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    bytes_dropped_.fetch_add(sz, std::memory_order_relaxed);
    return false;
  }
  if (pkt.is_sequenced()) {
    // ECN: the sim's link-load model charges this packet against its
    // modeled link and answers whether the backlog crossed the marking
    // threshold. Runs before the drop filter — a packet lost in flight
    // still occupied the link. flow_acks are exempt (unsequenced, and an
    // echo of an echo would be meaningless).
    if (auto marker = ce_marker_.get(); marker && (*marker)(pkt)) {
      pkt.flow.ce = true;
      ecn_marks_.fetch_add(1, std::memory_order_relaxed);
      static const auto ce_counter = base::counter("fabric.ecn_marks");
      ce_counter.add();
      OBS_INSTANT_ON(pkt.src_rank, "fabric.ecn.mark", "fabric", pkt.flow.seq);
    }
  }
  if (auto filter = drop_filter_.get(); filter && (*filter)(pkt)) {
    chaos_dropped_.fetch_add(1, std::memory_order_relaxed);
    bytes_dropped_.fetch_add(sz, std::memory_order_relaxed);
    static const auto chaos_drops_counter =
        base::counter("fabric.chaos.dropped");
    chaos_drops_counter.add();
    OBS_INSTANT_ON(pkt.src_rank, "fabric.chaos_drop", "fabric", pkt.flow.seq);
    return false;
  }
  bytes_sent_.fetch_add(sz, std::memory_order_relaxed);
  if (pkt.is_sequenced()) {
    if (auto filter = reorder_filter_.get(); filter && (*filter)(pkt)) {
      // Reordering injection: hold the packet back one pump tick so later
      // traffic overtakes it on the wire.
      static const auto reorders_counter = base::counter("fabric.reordered");
      reorders_counter.add();
      std::lock_guard lock(held_mu_);
      held_.push_back(std::move(pkt));
      return true;
    }
  }
  deliver(std::move(pkt));
  return true;
}

void Fabric::apply_ack(Rank src, Rank dst, std::uint8_t rail,
                       std::uint64_t cum,
                       const std::vector<std::uint64_t>& sack, bool ece,
                       bool is_explicit) {
  Flow& f = flow(src, dst, rail);
  std::lock_guard lock(f.mu);
  std::uint64_t newly_acked = 0;
  auto stop = f.window.upper_bound(cum);
  for (auto it = f.window.begin(); it != stop; ++it) {
    OBS_ASYNC_END(src, "fabric.inflight", "fabric",
                  flow_trace_id(src, dst, rail, it->first));
    ++newly_acked;
  }
  f.window.erase(f.window.begin(), stop);
  for (std::uint64_t s : sack) {
    if (f.window.erase(s) != 0) {
      OBS_ASYNC_END(src, "fabric.inflight", "fabric",
                    flow_trace_id(src, dst, rail, s));
      ++newly_acked;
    }
  }
  if (f.cc.unlimited()) {
    return;  // fixed engine: the ack bookkeeping above is all there is
  }
  const std::int64_t now = base::now_ns();
  const std::uint64_t highest_sent = f.next_seq - 1;
  if (newly_acked > 0) {
    f.cc.on_acked(newly_acked, cum, now);
    f.last_progress_ns = now;
    f.tlp_fired = false;
  }
  if (ece && is_explicit) {
    const std::uint64_t before = f.cc.cwnd_packets();
    f.cc.on_ecn_echo(cum, highest_sent, now);
    if (f.cc.cwnd_packets() < before) {
      static const auto ecn_dec_counter =
          base::counter("fabric.ecn_decreases");
      ecn_dec_counter.add();
      OBS_INSTANT_ON(src, "fabric.ecn.decrease", "fabric",
                     f.cc.cwnd_packets());
    }
  }
  if (!is_explicit) {
    // Piggybacked data acks retire windows but never count as duplicates:
    // data arrival order says nothing about receiver-side holes.
    f.last_cum_seen = std::max(f.last_cum_seen, cum);
    return;
  }
  bool mark_holes = false;
  if (cum == f.last_cum_seen && !sack.empty() && !f.window.empty() &&
      highest_sent > cum) {
    // Duplicate ack: the cumulative edge is stuck while the receiver holds
    // out-of-order data — evidence of a hole, i.e. loss. The third one
    // triggers fast retransmit + fast recovery (CcState decides).
    mark_holes = f.cc.on_dup_ack(highest_sent, now);
  } else if (f.cc.phase() == CcPhase::recovery && newly_acked > 0 &&
             cum < f.cc.recover_seq()) {
    // NewReno partial ack: the edge moved but not past the loss episode —
    // the next hole starts right after it; plug it without three more dups.
    mark_holes = true;
  }
  f.last_cum_seen = std::max(f.last_cum_seen, cum);
  if (!mark_holes) {
    return;
  }
  // Fast-retransmit the SACK holes: unacked entries below the highest
  // SACKed seq that the receiver did not report holding. Each hole is
  // fast-retransmitted at most once; if the repair is lost too, the RTO
  // path takes over.
  const std::uint64_t upper =
      sack.empty() ? cum + 1 : *std::max_element(sack.begin(), sack.end());
  for (auto& [seq, entry] : f.window) {
    if (seq > upper) {
      break;
    }
    if (entry.fast_retx || entry.fast_retxed) {
      continue;
    }
    if (std::find(sack.begin(), sack.end(), seq) != sack.end()) {
      continue;
    }
    entry.fast_retx = true;
  }
}

void Fabric::push_to_inbox(Packet&& pkt) {
  Endpoint& ep = *endpoints_[static_cast<std::size_t>(pkt.dst_rank)];
  ep.delivered_.fetch_add(1, std::memory_order_relaxed);
  ep.inbox_.push(std::move(pkt));
}

void Fabric::deliver(Packet&& pkt) {
  // Any packet X->Y carrying an ACK acknowledges the reverse flow (Y->X):
  // explicit flow_acks name their rail and may echo ECN; piggybacked
  // cumulative ACKs on data packets always describe the rail-0 reverse
  // flow and never drive dup-ack counting.
  if (pkt.kind == PacketKind::flow_ack) {
    apply_ack(pkt.dst_rank, pkt.src_rank, pkt.flow.rail, pkt.flow.ack,
              pkt.sack, pkt.flow.ece, /*is_explicit=*/true);
    return;  // fabric-internal: never reaches the inbox
  }
  if (pkt.flow.ack > 0) {
    apply_ack(pkt.dst_rank, pkt.src_rank, /*rail=*/0, pkt.flow.ack, {},
              /*ece=*/false, /*is_explicit=*/false);
  }

  Flow& f = flow(pkt.src_rank, pkt.dst_rank, pkt.flow.rail);
  {
    std::lock_guard lock(f.mu);
    // Remember a CE mark until the next flow_ack echoes it (ECE) back to
    // the sender. Duplicates carry the bit too — congestion is congestion.
    f.ece_rx_pending = f.ece_rx_pending || pkt.flow.ce;
    const std::uint64_t seq = pkt.flow.seq;
    if (seq <= f.cum_delivered || f.reorder.count(seq) != 0) {
      // Retransmit-induced duplicate: suppress, but re-arm the ACK so the
      // sender's window entry retires.
      dup_suppressed_.fetch_add(1, std::memory_order_relaxed);
      static const auto dups_counter = base::counter("fabric.dup_suppressed");
      dups_counter.add();
      f.ack_pending = true;
    } else if (seq == f.cum_delivered + 1) {
      release_in_order(std::move(pkt));
      f.cum_delivered = seq;
      // Release any contiguous run the gap was holding back.
      auto it = f.reorder.begin();
      while (it != f.reorder.end() && it->first == f.cum_delivered + 1) {
        release_in_order(std::move(it->second));
        f.cum_delivered = it->first;
        it = f.reorder.erase(it);
      }
      f.ack_pending = true;
    } else {
      f.reorder.emplace(seq, std::move(pkt));
      f.ack_pending = true;
    }
  }
  // Adaptive engines are ack-clocked: the sender cannot grow or refill its
  // cwnd until acknowledgments arrive, so batching acks to the pump tick
  // would quantize the whole flow to tick granularity. Echo an ack per
  // segment (TCP-style), which also makes dup-acks — the fast-retransmit
  // trigger — immediate instead of up-to-a-tick late. The fixed engine
  // keeps the original batched pump ack: it is not ack-clocked, and the
  // default wire behavior stays bit-identical.
  if (cc_.engine != CcEngine::fixed) {
    flush_ack(f);
  }
}

void Fabric::release_in_order(Packet&& pkt) {
  if (pkt.is_striped()) {
    reassemble(std::move(pkt));
    return;
  }
  push_to_inbox(std::move(pkt));
}

void Fabric::reassemble(Packet&& seg) {
  // Per-rail flows guarantee in-order, exactly-once segment release; this
  // merge only has to scatter each segment's bytes to its deterministic
  // offset and count arrivals. Lock order: the caller holds the releasing
  // flow's mutex; reass_mu_ nests inside it and is never taken first.
  const std::size_t count = seg.stripe.count;
  const std::size_t total = seg.stripe.total_bytes;
  const std::size_t idx = seg.stripe.index;
  const std::size_t base_len = total / count;
  const std::size_t rem = total % count;
  const std::size_t off = idx * base_len + std::min(idx, rem);
  const std::size_t len =
      std::min(seg.payload.size(), base_len + (idx < rem ? 1 : 0));
  const std::array<std::uint64_t, 3> key{
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(seg.src_rank)),
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(seg.dst_rank)),
      seg.stripe.msg_id};
  Packet done;
  {
    std::lock_guard lock(reass_mu_);
    PartialMessage& pm = reassembly_[key];
    if (pm.buf.size() != total) {
      pm.buf.resize(total);  // fresh buffer: not a counted payload copy
    }
    if (len > 0) {
      std::memcpy(pm.buf.data() + off, seg.payload.data(), len);
    }
    if (++pm.segments_seen < count) {
      return;
    }
    done = std::move(seg);
    done.payload = std::move(pm.buf);
    done.stripe = StripeHeader{};
    reassembly_.erase(key);
  }
  OBS_INSTANT_ON(done.dst_rank, "fabric.stripe.assembled", "fabric",
                 static_cast<std::uint64_t>(total));
  push_to_inbox(std::move(done));
}

// ---------------------------------------------------------------------------
// Pump: batched ACKs, timeout-driven retransmission, escalation
// ---------------------------------------------------------------------------

void Fabric::flush_ack(Flow& f) {
  const Rank src = f.src;
  const Rank dst = f.dst;
  Packet ack;
  {
    std::lock_guard lock(f.mu);
    if (!f.ack_pending) {
      return;
    }
    f.ack_pending = false;
    ack.kind = PacketKind::flow_ack;
    ack.src_rank = dst;  // the ACK travels receiver -> sender
    ack.dst_rank = src;
    ack.flow.ack = f.cum_delivered;
    ack.flow.rail = f.rail;  // names the flow being acknowledged
    ack.flow.ece = f.ece_rx_pending;  // echo CE marks seen since last ack
    f.ece_rx_pending = false;
    for (const auto& [seq, held] : f.reorder) {
      if (ack.sack.size() >= rel_.max_sack_entries) {
        break;
      }
      ack.sack.push_back(seq);
    }
  }
  static const auto acks_counter = base::counter("fabric.acks");
  acks_counter.add();
  // v = cumulative ack; v2 = SACK summary, count<<48 | lowest held seq
  // (48 bits of seq is plenty for a sim run; 0 = no out-of-order ranges).
  [[maybe_unused]] const std::uint64_t sack_ranges =
      ack.sack.empty() ? 0
                       : (static_cast<std::uint64_t>(ack.sack.size()) << 48) |
                             (ack.sack.front() & 0xFFFFFFFFFFFFull);
  OBS_INSTANT_ON2(dst, "fabric.ack.flush", "fabric", ack.flow.ack,
                  sack_ranges);
  // ACK wire time is not charged: ACKs model piggybacked / NIC-offloaded
  // reverse traffic, keeping the pump from serializing behind wire delays.
  transmit(std::move(ack), /*charge_wire=*/false);
}

void Fabric::escalate_unreachable(Rank dst) {
  if (is_failed(dst)) {
    return;
  }
  mark_failed(dst);
  rto_escalations_.fetch_add(1, std::memory_order_relaxed);
  static const auto escalations_counter =
      base::counter("fabric.rto_escalations");
  escalations_counter.add();
  OBS_INSTANT_ON(dst, "fabric.rto_escalate", "fabric",
                 static_cast<std::uint64_t>(dst));
  // Flight recorder: an unreachable verdict is a root-cause moment — dump
  // before the unreachable callback cascades into revokes and sweeps.
  obs::trigger_postmortem("rto_escalation");
  std::function<void(Rank)> cb;
  {
    std::lock_guard lock(unreachable_mu_);
    cb = unreachable_cb_;
  }
  if (cb) {
    cb(dst);
  }
}

bool Fabric::pump_pass() {
  const std::int64_t now = base::now_ns();
  const std::uint64_t pass = pump_passes_.load(std::memory_order_relaxed);
  bool busy = false;
  struct RetransmitItem {
    Packet pkt;
    std::uint64_t seq;
    std::int64_t rto_ns;
    bool fast;  ///< dup-ack/SACK-triggered, not an RTO expiry
    bool tlp = false;  ///< tail-loss probe (keeps the original RTO running)
  };
  std::vector<RetransmitItem> to_retransmit;
  std::vector<Rank> to_escalate;

  // Reorder-injected packets held for one tick go out first: they are
  // already past the loss filters and only awaited their delay.
  std::vector<Packet> held;
  {
    std::lock_guard lock(held_mu_);
    held.swap(held_);
  }
  for (Packet& p : held) {
    deliver(std::move(p));
  }

  // Only flows that have ever carried traffic exist: the scan is O(active
  // peer pairs) per tick, not O(topo.size()^2).
  const std::vector<Flow*> flows = active_flows();
  for (Flow* fp : flows) {
    Flow& f = *fp;
    bool escalate = false;
    {
      std::lock_guard lock(f.mu);
      if (is_failed(f.dst) || is_failed(f.src)) {
        // A dead endpoint ends the flow: a crashed process neither
        // retransmits nor fills receive-window gaps.
        f.window.clear();
        f.reorder.clear();
        f.ack_pending = false;
        continue;
      }
      bool rto_fired = false;
      for (auto& [seq, entry] : f.window) {
        if (entry.fast_retx) {
          // Dup-ack verdict from apply_ack: retransmit now — no RTO wait,
          // no backoff doubling, no retry charge (fast retransmit is
          // repair, not evidence the peer is gone).
          entry.fast_retx = false;
          entry.fast_retxed = true;
          entry.deadline.arm_never();
          to_retransmit.push_back({entry.pkt, seq, entry.rto_ns, true});
          continue;
        }
        // Expiry needs the wall RTO AND two completed passes since the
        // entry was (re)armed: every pass flushes every flow's ACKs, so
        // anything delivered before the previous pass has been acked and
        // erased by now — what's left is genuinely lost, not merely
        // waiting on a starved pump.
        if (!entry.deadline.expired(now) || pass < entry.armed_pass + 2) {
          continue;
        }
        if (entry.retries >= rel_.max_retries) {
          escalate = true;
          break;
        }
        ++entry.retries;
        entry.rto_ns = std::min(entry.rto_ns * 2, rel_.rto_cap_ns);
        // Parked while the copy below waits its turn on the wire; the
        // retransmit loop re-arms it once its transmit returns.
        entry.deadline.arm_never();
        to_retransmit.push_back({entry.pkt, seq, entry.rto_ns, false});
        rto_fired = true;
      }
      if (rto_fired && !f.cc.unlimited()) {
        // One window collapse per pass, however many entries expired —
        // they are all the same loss episode (CcState guards besides).
        f.cc.on_rto(f.next_seq - 1, now);
      }
      if (!f.cc.unlimited() && !f.window.empty() && !f.tlp_fired &&
          !rto_fired) {
        // Tail-loss probe (RACK-TLP style): a tail loss — the last packet
        // of a burst, or the repair of an already-fast-retransmitted hole
        // — generates no dup-acks, so SACK recovery cannot see it and the
        // flow would idle out the full RTO. After a short ack silence,
        // retransmit the highest unacked seq once: if the tail was lost
        // this repairs it directly, and otherwise the duplicate provokes
        // an immediate SACK ack that restarts dup-ack recovery. The
        // probe leaves RTO deadlines, retry budgets, and cwnd untouched —
        // it is a probe, not a loss verdict.
        const std::int64_t tlp_ns = std::max<std::int64_t>(
            2 * rel_.tick_ns, rel_.rto_base_ns / 8);
        if (now - f.last_progress_ns >= tlp_ns) {
          f.tlp_fired = true;
          auto& last = *std::prev(f.window.end());
          to_retransmit.push_back(
              {last.second.pkt, last.first, last.second.rto_ns,
               /*fast=*/false, /*tlp=*/true});
        }
      }
      busy = busy || !f.window.empty() || !f.reorder.empty() ||
             f.ack_pending;
    }
    if (escalate) {
      to_escalate.push_back(f.dst);
    }
  }

  for (Rank d : to_escalate) {
    escalate_unreachable(d);
  }
  for (RetransmitItem& item : to_retransmit) {
    if (is_failed(item.pkt.dst_rank)) {
      continue;
    }
    // Every retransmission — RTO- or dup-ack-triggered, and per striped
    // segment, not per logical message — charges fabric.retransmits, so
    // counter-based CI gates stay truthful under striping.
    retransmits_.fetch_add(1, std::memory_order_relaxed);
    static const auto retx_counter = base::counter("fabric.retransmits");
    retx_counter.add();
    if (item.tlp) {
      tlp_probes_.fetch_add(1, std::memory_order_relaxed);
      static const auto tlp_counter = base::counter("fabric.tlp_probes");
      tlp_counter.add();
      OBS_INSTANT_ON(item.pkt.src_rank, "fabric.tlp_probe", "fabric",
                     item.seq);
    } else if (item.fast) {
      fast_retransmits_.fetch_add(1, std::memory_order_relaxed);
      static const auto fast_counter =
          base::counter("fabric.fast_retransmits");
      fast_counter.add();
      OBS_INSTANT_ON(item.pkt.src_rank, "fabric.fast_retx", "fabric",
                     item.seq);
    } else {
      static obs::Histogram& rto_hist =
          obs::histogram("fabric.rto_backoff_ns");
      rto_hist.record(static_cast<std::uint64_t>(item.rto_ns));
    }
    const Rank s = item.pkt.src_rank;
    const Rank d = item.pkt.dst_rank;
    const std::uint8_t rail = item.pkt.flow.rail;
    // Retransmits occupy the wire like any send; charging them here (on the
    // pump thread) makes benchmarks see the latency cost of loss. The trace
    // charges them to the sending rank's track, nested (same async id)
    // under the owning fabric.inflight span.
    [[maybe_unused]] const std::uint64_t trace_id =
        flow_trace_id(s, d, rail, item.seq);
    [[maybe_unused]] const std::uint64_t retx_bytes =
        item.pkt.payload.size() + item.pkt.header_bytes();
    OBS_ASYNC_BEGIN2(s, "fabric.retransmit", "fabric", trace_id, item.seq,
                     retx_bytes);
    transmit(std::move(item.pkt), /*charge_wire=*/true);
    OBS_ASYNC_END(s, "fabric.retransmit", "fabric", trace_id);
    if (!item.tlp) {
      // A probe is speculative: the original RTO keeps running so a lost
      // probe costs nothing extra. Real retransmits restart the clock.
      arm_entry(s, d, rail, item.seq, item.rto_ns);
    }
  }

  for (Flow* fp : flows) {
    flush_ack(*fp);
  }
  pump_passes_.fetch_add(1, std::memory_order_relaxed);
  return busy || !held.empty();
}

void Fabric::pump_main() {
  while (!stop_.load(std::memory_order_acquire)) {
    pump_pass();
    std::this_thread::sleep_for(std::chrono::nanoseconds(rel_.tick_ns));
  }
}

bool Fabric::quiesce(std::chrono::nanoseconds timeout) {
  const std::int64_t deadline = base::now_ns() + timeout.count();
  for (;;) {
    bool busy;
    {
      std::lock_guard lock(held_mu_);
      busy = !held_.empty();
    }
    if (!busy) {
      const std::vector<Flow*> flows = active_flows();
      busy = std::any_of(flows.begin(), flows.end(), [](const Flow* f) {
        std::lock_guard lock(f->mu);
        return !f->window.empty() || !f->reorder.empty() || f->ack_pending;
      });
    }
    if (!busy) {
      return true;
    }
    if (base::now_ns() >= deadline) {
      return false;
    }
    if (base::cooperative()) {
      base::try_yield();
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(rel_.tick_ns));
    }
  }
}

std::uint64_t Fabric::unacked() const {
  std::uint64_t total = 0;
  for (const Flow* f : active_flows()) {
    std::lock_guard lock(f->mu);
    total += f->window.size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Failure flags
// ---------------------------------------------------------------------------

void Fabric::mark_failed(Rank r) {
  if (topo_.valid_rank(r)) {
    failed_[static_cast<std::size_t>(r)].store(true, std::memory_order_release);
  }
}

bool Fabric::is_failed(Rank r) const {
  return topo_.valid_rank(r) &&
         failed_[static_cast<std::size_t>(r)].load(std::memory_order_acquire);
}

}  // namespace sessmpi::fabric
