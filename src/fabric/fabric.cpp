#include "sessmpi/fabric/fabric.hpp"

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/stats.hpp"

namespace sessmpi::fabric {

Fabric::Fabric(base::Topology topo, base::CostModel cost)
    : topo_(topo), cost_(cost), failed_(static_cast<std::size_t>(topo.size())) {
  endpoints_.reserve(static_cast<std::size_t>(topo_.size()));
  for (int i = 0; i < topo_.size(); ++i) {
    endpoints_.push_back(std::make_unique<Endpoint>());
    failed_[static_cast<std::size_t>(i)].store(false, std::memory_order_relaxed);
  }
}

Endpoint& Fabric::endpoint(Rank r) {
  if (!topo_.valid_rank(r)) {
    throw base::Error(base::ErrClass::rte_bad_param,
                      "invalid rank for endpoint lookup");
  }
  return *endpoints_[static_cast<std::size_t>(r)];
}

void Fabric::send(Packet&& packet) {
  if (!topo_.valid_rank(packet.dst_rank) || !topo_.valid_rank(packet.src_rank)) {
    throw base::Error(base::ErrClass::rte_bad_param, "invalid packet route");
  }
  const bool same_node = topo_.same_node(packet.src_rank, packet.dst_rank);
  const std::size_t header = packet.header_bytes();
  const std::size_t payload = packet.payload.size();
  bytes_sent_.fetch_add(header + payload, std::memory_order_relaxed);
  base::precise_delay(cost_.wire_cost(same_node, payload, header));
  if (is_failed(packet.dst_rank)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (has_drop_filter_.load(std::memory_order_acquire) &&
      drop_filter_(packet)) {
    chaos_dropped_.fetch_add(1, std::memory_order_relaxed);
    base::counters().add("fabric.chaos.dropped");
    return;
  }
  Endpoint& ep = *endpoints_[static_cast<std::size_t>(packet.dst_rank)];
  ep.delivered_.fetch_add(1, std::memory_order_relaxed);
  ep.inbox_.push(std::move(packet));
}

void Fabric::mark_failed(Rank r) {
  if (topo_.valid_rank(r)) {
    failed_[static_cast<std::size_t>(r)].store(true, std::memory_order_release);
  }
}

bool Fabric::is_failed(Rank r) const {
  return topo_.valid_rank(r) &&
         failed_[static_cast<std::size_t>(r)].load(std::memory_order_acquire);
}

}  // namespace sessmpi::fabric
