#include "sessmpi/fabric/fabric.hpp"

#include <algorithm>
#include <mutex>

#include <ostream>

#include "sessmpi/base/buffer_pool.hpp"
#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/base/yield.hpp"
#include "sessmpi/obs/hist.hpp"
#include "sessmpi/obs/postmortem.hpp"
#include "sessmpi/obs/trace.hpp"
#include "sessmpi/obs/tvar.hpp"

namespace sessmpi::fabric {

namespace {

/// Async-event correlation id for one sequenced packet: the trace's
/// "fabric.inflight" span opens at windowing and closes when the ACK
/// erases the entry; retransmits reuse the id so they nest under the
/// owning send on the sender's timeline (DESIGN.md §11).
[[maybe_unused]] std::uint64_t flow_trace_id(Rank src, Rank dst,
                                             std::uint64_t seq) {
  return (static_cast<std::uint64_t>(src) << 48) |
         (static_cast<std::uint64_t>(dst) << 32) | (seq & 0xFFFFFFFFu);
}

/// Live fabrics, for the process-wide `fabric.flow.inflight` gauge and the
/// flight-recorder flow-window section (several simulated clusters can
/// coexist in one test binary). Fabrics deregister first thing in their
/// destructor, so a reader holding reg.mu never sees a dying instance.
struct FabricRegistry {
  std::mutex mu;
  std::vector<Fabric*> live;
};

FabricRegistry& fabric_registry() {
  static FabricRegistry r;
  return r;
}

}  // namespace

void Fabric::dump_flow_windows(std::ostream& os) {
  // Postmortem section: every flow that still has unacked or reordered
  // packets — exactly the state that explains why a rank was declared
  // unreachable. Runs with reg.mu held (blocks fabric teardown) and takes
  // each flow's mutex briefly; callers of escalate_unreachable hold no
  // flow locks, so the failure-path trigger cannot self-deadlock here.
  FabricRegistry& reg = fabric_registry();
  std::lock_guard lock(reg.mu);
  std::uint64_t total_unacked = 0;
  std::size_t total_flows = 0;
  os << "{\"flows\":[";
  bool first = true;
  for (Fabric* fab : reg.live) {
    for (const Flow* f : fab->active_flows()) {
      std::lock_guard flock(f->mu);
      ++total_flows;
      total_unacked += f->window.size();
      if (f->window.empty() && f->reorder.empty()) {
        continue;
      }
      os << (first ? "" : ",") << "{\"src\":" << f->src
         << ",\"dst\":" << f->dst << ",\"next_seq\":" << f->next_seq
         << ",\"window\":" << f->window.size()
         << ",\"cum_delivered\":" << f->cum_delivered
         << ",\"reorder\":" << f->reorder.size() << "}";
      first = false;
    }
  }
  os << "],\"total_flows\":" << total_flows
     << ",\"total_unacked\":" << total_unacked << "}";
}

Fabric::Fabric(base::Topology topo, base::CostModel cost, ReliabilityConfig rel)
    : topo_(topo),
      cost_(cost),
      rel_(rel),
      failed_(static_cast<std::size_t>(topo.size())) {
  const auto n = static_cast<std::size_t>(topo_.size());
  endpoints_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    endpoints_.push_back(std::make_unique<Endpoint>());
    failed_[i].store(false, std::memory_order_relaxed);
  }
  {
    FabricRegistry& reg = fabric_registry();
    std::lock_guard lock(reg.mu);
    reg.live.push_back(this);
  }
  // Expose the payload slab pool's effectiveness as an MPI_T-style gauge
  // (percent of acquires served from a freelist). Process-wide, registered
  // once no matter how many simulated clusters exist; same for the
  // in-flight window gauge and the flight-recorder flow-window section,
  // which sum over every live fabric via the registry.
  static std::once_flag pool_gauge_once;
  std::call_once(pool_gauge_once, [] {
    obs::register_pvar_gauge("fabric.pool_hit_rate", [] {
      return static_cast<std::uint64_t>(
          base::BufferPool::global().stats().hit_rate() * 100.0 + 0.5);
    });
    obs::register_pvar_gauge("fabric.flow.inflight", [] {
      FabricRegistry& reg = fabric_registry();
      std::lock_guard lock(reg.mu);
      std::uint64_t total = 0;
      for (const Fabric* fab : reg.live) {
        total += fab->unacked();
      }
      return total;
    });
    obs::register_postmortem_section("fabric.flows", Fabric::dump_flow_windows);
  });
  pump_ = std::thread([this] { pump_main(); });
}

Fabric::~Fabric() {
  {
    // Deregister before any teardown so the gauge/section never walk a
    // half-destroyed instance.
    FabricRegistry& reg = fabric_registry();
    std::lock_guard lock(reg.mu);
    std::erase(reg.live, this);
  }
  stop_.store(true, std::memory_order_release);
  if (pump_.joinable()) {
    pump_.join();
  }
}

namespace {
inline std::uint64_t flow_key(Rank src, Rank dst) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}
}  // namespace

Fabric::Flow& Fabric::flow(Rank src, Rank dst) {
  const std::uint64_t key = flow_key(src, dst);
  FlowShard& shard = flow_shards_[key % kFlowShards];
  {
    std::lock_guard lock(shard.mu);
    auto it = shard.flows.find(key);
    if (it != shard.flows.end()) {
      return *it->second;
    }
  }
  auto fresh = std::make_unique<Flow>(src, dst);
  Flow* raw = fresh.get();
  {
    std::lock_guard lock(shard.mu);
    auto [it, inserted] = shard.flows.emplace(key, std::move(fresh));
    if (!inserted) {
      return *it->second;  // lost the creation race
    }
  }
  std::lock_guard lock(active_mu_);
  active_.push_back(raw);
  return *raw;
}

Fabric::Flow* Fabric::flow_if_exists(Rank src, Rank dst) noexcept {
  const std::uint64_t key = flow_key(src, dst);
  FlowShard& shard = flow_shards_[key % kFlowShards];
  std::lock_guard lock(shard.mu);
  auto it = shard.flows.find(key);
  return it == shard.flows.end() ? nullptr : it->second.get();
}

std::vector<Fabric::Flow*> Fabric::active_flows() const {
  std::lock_guard lock(active_mu_);
  return active_;
}

Endpoint& Fabric::endpoint(Rank r) {
  if (!topo_.valid_rank(r)) {
    throw base::Error(base::ErrClass::rte_bad_param,
                      "invalid rank for endpoint lookup");
  }
  return *endpoints_[static_cast<std::size_t>(r)];
}

void Fabric::set_unreachable_callback(std::function<void(Rank)> cb) {
  std::lock_guard lock(unreachable_mu_);
  unreachable_cb_ = std::move(cb);
}

void Fabric::set_drop_filter(PacketFilter filter) {
  drop_filter_.set(std::move(filter));
}

void Fabric::set_reorder_filter(PacketFilter filter) {
  reorder_filter_.set(std::move(filter));
}

// ---------------------------------------------------------------------------
// Send path (sender thread)
// ---------------------------------------------------------------------------

void Fabric::send(Packet&& packet) {
  if (!topo_.valid_rank(packet.dst_rank) || !topo_.valid_rank(packet.src_rank)) {
    throw base::Error(base::ErrClass::rte_bad_param, "invalid packet route");
  }
  if (is_failed(packet.dst_rank)) {
    // A known-dead destination is not a loss event for the reliability
    // layer: the packet is charged (occupancy only — nothing arrives, so
    // no flight latency is modeled), counted, and forgotten (no window).
    const std::size_t sz = packet.header_bytes() + packet.payload.size();
    base::precise_delay(cost_.wire_occupancy(
        topo_.same_node(packet.src_rank, packet.dst_rank),
        packet.payload.size(), packet.header_bytes()));
    dropped_.fetch_add(1, std::memory_order_relaxed);
    bytes_dropped_.fetch_add(sz, std::memory_order_relaxed);
    return;
  }
  if (!packet.is_sequenced()) {
    transmit(std::move(packet), /*charge_wire=*/true);
    return;
  }

  const Rank src = packet.src_rank;
  const Rank dst = packet.dst_rank;
  OBS_SPAN_ARG("fabric.send", "fabric", packet.payload.size());
  // Piggyback the cumulative ACK for the reverse flow (data we received
  // from dst). Deliberately does NOT clear the reverse flow's ack_pending:
  // this packet may spend a long wall time on the wire (or be chaos-
  // dropped), and ACK state that exists only in flight is exactly what
  // causes spurious retransmits. The pump's explicit flow_ack is the
  // ground truth; the piggyback just retires windows earlier for free.
  if (Flow* rev = flow_if_exists(dst, src)) {
    std::lock_guard lock(rev->mu);
    packet.flow.ack = rev->cum_delivered;
  }
  std::uint64_t seq = 0;
  std::int64_t rto_ns = 0;
  {
    Flow& f = flow(src, dst);
    std::lock_guard lock(f.mu);
    packet.flow.seq = seq = f.next_seq++;
    Flow::Unacked& entry = f.window[seq];
    entry.pkt = packet;  // retained for retransmission; the refcounted
                         // Payload makes this a header-only copy (no bytes)
    entry.rto_ns = rto_ns =
        rel_.rto_base_ns + cost_.wire_cost(topo_.same_node(src, dst),
                                           packet.payload.size(),
                                           packet.header_bytes());
    entry.retries = 0;
    // Parked until the transmit below returns: the RTO clock must start
    // when the packet actually left the wire, not when it was windowed —
    // on an oversubscribed host the sending thread can be descheduled
    // mid-spin for longer than the whole RTO.
    entry.deadline.arm_never();
  }
  OBS_ASYNC_BEGIN(src, "fabric.inflight", "fabric", flow_trace_id(src, dst, seq),
                  seq);
  transmit(std::move(packet), /*charge_wire=*/true);
  arm_entry(src, dst, seq, rto_ns);
}

/// Start (or restart) the RTO clock on a window entry after its transmit
/// completed. The entry may already be gone — acknowledged while the wire
/// time was being charged — in which case there is nothing to time.
void Fabric::arm_entry(Rank src, Rank dst, std::uint64_t seq,
                       std::int64_t rto_ns) {
  Flow& f = flow(src, dst);
  std::lock_guard lock(f.mu);
  auto it = f.window.find(seq);
  if (it == f.window.end()) {
    return;
  }
  it->second.rto_ns = rto_ns;
  it->second.deadline.arm(base::now_ns(), rto_ns);
  it->second.armed_pass = pump_passes_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Wire + receive path
// ---------------------------------------------------------------------------

bool Fabric::transmit(Packet&& pkt, bool charge_wire) {
  const std::size_t header = pkt.header_bytes();
  const std::size_t payload = pkt.payload.size();
  const std::size_t sz = header + payload;
  if (charge_wire) {
    // Pipelined LogGP wire model: the sending thread pays only its
    // occupancy (gap + serialization); the one-way latency elapses "in
    // flight" — the packet is stamped with its arrival deadline and the
    // receiver's dispatch loop waits it out. Back-to-back sends therefore
    // overlap their latencies (message rate ~ 1/gap), matching how real
    // windowed osu_mbw_mr rates exceed 1/latency.
    const bool same_node = topo_.same_node(pkt.src_rank, pkt.dst_rank);
    base::precise_delay(cost_.wire_occupancy(same_node, payload, header));
    pkt.arrival_ns = base::now_ns() + cost_.wire_latency(same_node);
  }
  if (is_failed(pkt.dst_rank)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    bytes_dropped_.fetch_add(sz, std::memory_order_relaxed);
    return false;
  }
  if (auto filter = drop_filter_.get(); filter && (*filter)(pkt)) {
    chaos_dropped_.fetch_add(1, std::memory_order_relaxed);
    bytes_dropped_.fetch_add(sz, std::memory_order_relaxed);
    static const auto chaos_drops_counter =
        base::counter("fabric.chaos.dropped");
    chaos_drops_counter.add();
    OBS_INSTANT_ON(pkt.src_rank, "fabric.chaos_drop", "fabric", pkt.flow.seq);
    return false;
  }
  bytes_sent_.fetch_add(sz, std::memory_order_relaxed);
  if (pkt.is_sequenced()) {
    if (auto filter = reorder_filter_.get(); filter && (*filter)(pkt)) {
      // Reordering injection: hold the packet back one pump tick so later
      // traffic overtakes it on the wire.
      static const auto reorders_counter = base::counter("fabric.reordered");
      reorders_counter.add();
      std::lock_guard lock(held_mu_);
      held_.push_back(std::move(pkt));
      return true;
    }
  }
  deliver(std::move(pkt));
  return true;
}

void Fabric::apply_ack(Rank src, Rank dst, std::uint64_t cum,
                       const std::vector<std::uint64_t>& sack) {
  Flow& f = flow(src, dst);
  std::lock_guard lock(f.mu);
  auto stop = f.window.upper_bound(cum);
  for (auto it = f.window.begin(); it != stop; ++it) {
    OBS_ASYNC_END(src, "fabric.inflight", "fabric",
                  flow_trace_id(src, dst, it->first));
  }
  f.window.erase(f.window.begin(), stop);
  for (std::uint64_t s : sack) {
    if (f.window.erase(s) != 0) {
      OBS_ASYNC_END(src, "fabric.inflight", "fabric",
                    flow_trace_id(src, dst, s));
    }
  }
}

void Fabric::push_to_inbox(Packet&& pkt) {
  Endpoint& ep = *endpoints_[static_cast<std::size_t>(pkt.dst_rank)];
  ep.delivered_.fetch_add(1, std::memory_order_relaxed);
  ep.inbox_.push(std::move(pkt));
}

void Fabric::deliver(Packet&& pkt) {
  // Any packet X->Y carrying an ACK acknowledges the reverse flow (Y->X):
  // piggybacked cumulative ACKs on data packets and explicit flow_acks
  // share this path.
  if (pkt.flow.ack > 0 || !pkt.sack.empty()) {
    apply_ack(pkt.dst_rank, pkt.src_rank, pkt.flow.ack, pkt.sack);
  }
  if (pkt.kind == PacketKind::flow_ack) {
    return;  // fabric-internal: never reaches the inbox
  }

  Flow& f = flow(pkt.src_rank, pkt.dst_rank);
  std::lock_guard lock(f.mu);
  const std::uint64_t seq = pkt.flow.seq;
  if (seq <= f.cum_delivered || f.reorder.count(seq) != 0) {
    // Retransmit-induced duplicate: suppress, but re-arm the ACK so the
    // sender's window entry retires.
    dup_suppressed_.fetch_add(1, std::memory_order_relaxed);
    static const auto dups_counter = base::counter("fabric.dup_suppressed");
    dups_counter.add();
    f.ack_pending = true;
    return;
  }
  if (seq == f.cum_delivered + 1) {
    push_to_inbox(std::move(pkt));
    f.cum_delivered = seq;
    // Release any contiguous run the gap was holding back.
    auto it = f.reorder.begin();
    while (it != f.reorder.end() && it->first == f.cum_delivered + 1) {
      push_to_inbox(std::move(it->second));
      f.cum_delivered = it->first;
      it = f.reorder.erase(it);
    }
  } else {
    f.reorder.emplace(seq, std::move(pkt));
  }
  f.ack_pending = true;
}

// ---------------------------------------------------------------------------
// Pump: batched ACKs, timeout-driven retransmission, escalation
// ---------------------------------------------------------------------------

void Fabric::flush_ack(Flow& f) {
  const Rank src = f.src;
  const Rank dst = f.dst;
  Packet ack;
  {
    std::lock_guard lock(f.mu);
    if (!f.ack_pending) {
      return;
    }
    f.ack_pending = false;
    ack.kind = PacketKind::flow_ack;
    ack.src_rank = dst;  // the ACK travels receiver -> sender
    ack.dst_rank = src;
    ack.flow.ack = f.cum_delivered;
    for (const auto& [seq, held] : f.reorder) {
      if (ack.sack.size() >= rel_.max_sack_entries) {
        break;
      }
      ack.sack.push_back(seq);
    }
  }
  static const auto acks_counter = base::counter("fabric.acks");
  acks_counter.add();
  // v = cumulative ack; v2 = SACK summary, count<<48 | lowest held seq
  // (48 bits of seq is plenty for a sim run; 0 = no out-of-order ranges).
  [[maybe_unused]] const std::uint64_t sack_ranges =
      ack.sack.empty() ? 0
                       : (static_cast<std::uint64_t>(ack.sack.size()) << 48) |
                             (ack.sack.front() & 0xFFFFFFFFFFFFull);
  OBS_INSTANT_ON2(dst, "fabric.ack.flush", "fabric", ack.flow.ack,
                  sack_ranges);
  // ACK wire time is not charged: ACKs model piggybacked / NIC-offloaded
  // reverse traffic, keeping the pump from serializing behind wire delays.
  transmit(std::move(ack), /*charge_wire=*/false);
}

void Fabric::escalate_unreachable(Rank dst) {
  if (is_failed(dst)) {
    return;
  }
  mark_failed(dst);
  rto_escalations_.fetch_add(1, std::memory_order_relaxed);
  static const auto escalations_counter =
      base::counter("fabric.rto_escalations");
  escalations_counter.add();
  OBS_INSTANT_ON(dst, "fabric.rto_escalate", "fabric",
                 static_cast<std::uint64_t>(dst));
  // Flight recorder: an unreachable verdict is a root-cause moment — dump
  // before the unreachable callback cascades into revokes and sweeps.
  obs::trigger_postmortem("rto_escalation");
  std::function<void(Rank)> cb;
  {
    std::lock_guard lock(unreachable_mu_);
    cb = unreachable_cb_;
  }
  if (cb) {
    cb(dst);
  }
}

bool Fabric::pump_pass() {
  const std::int64_t now = base::now_ns();
  const std::uint64_t pass = pump_passes_.load(std::memory_order_relaxed);
  bool busy = false;
  struct RetransmitItem {
    Packet pkt;
    std::uint64_t seq;
    std::int64_t rto_ns;
  };
  std::vector<RetransmitItem> to_retransmit;
  std::vector<Rank> to_escalate;

  // Reorder-injected packets held for one tick go out first: they are
  // already past the loss filters and only awaited their delay.
  std::vector<Packet> held;
  {
    std::lock_guard lock(held_mu_);
    held.swap(held_);
  }
  for (Packet& p : held) {
    deliver(std::move(p));
  }

  // Only flows that have ever carried traffic exist: the scan is O(active
  // peer pairs) per tick, not O(topo.size()^2).
  const std::vector<Flow*> flows = active_flows();
  for (Flow* fp : flows) {
    Flow& f = *fp;
    bool escalate = false;
    {
      std::lock_guard lock(f.mu);
      if (is_failed(f.dst) || is_failed(f.src)) {
        // A dead endpoint ends the flow: a crashed process neither
        // retransmits nor fills receive-window gaps.
        f.window.clear();
        f.reorder.clear();
        f.ack_pending = false;
        continue;
      }
      for (auto& [seq, entry] : f.window) {
        // Expiry needs the wall RTO AND two completed passes since the
        // entry was (re)armed: every pass flushes every flow's ACKs, so
        // anything delivered before the previous pass has been acked and
        // erased by now — what's left is genuinely lost, not merely
        // waiting on a starved pump.
        if (!entry.deadline.expired(now) || pass < entry.armed_pass + 2) {
          continue;
        }
        if (entry.retries >= rel_.max_retries) {
          escalate = true;
          break;
        }
        ++entry.retries;
        entry.rto_ns = std::min(entry.rto_ns * 2, rel_.rto_cap_ns);
        // Parked while the copy below waits its turn on the wire; the
        // retransmit loop re-arms it once its transmit returns.
        entry.deadline.arm_never();
        to_retransmit.push_back({entry.pkt, seq, entry.rto_ns});
      }
      busy = busy || !f.window.empty() || !f.reorder.empty() ||
             f.ack_pending;
    }
    if (escalate) {
      to_escalate.push_back(f.dst);
    }
  }

  for (Rank d : to_escalate) {
    escalate_unreachable(d);
  }
  for (RetransmitItem& item : to_retransmit) {
    if (is_failed(item.pkt.dst_rank)) {
      continue;
    }
    retransmits_.fetch_add(1, std::memory_order_relaxed);
    static const auto retx_counter = base::counter("fabric.retransmits");
    retx_counter.add();
    static obs::Histogram& rto_hist = obs::histogram("fabric.rto_backoff_ns");
    rto_hist.record(static_cast<std::uint64_t>(item.rto_ns));
    const Rank s = item.pkt.src_rank;
    const Rank d = item.pkt.dst_rank;
    // Retransmits occupy the wire like any send; charging them here (on the
    // pump thread) makes benchmarks see the latency cost of loss. The trace
    // charges them to the sending rank's track, nested (same async id)
    // under the owning fabric.inflight span.
    [[maybe_unused]] const std::uint64_t trace_id =
        flow_trace_id(s, d, item.seq);
    [[maybe_unused]] const std::uint64_t retx_bytes =
        item.pkt.payload.size() + item.pkt.header_bytes();
    OBS_ASYNC_BEGIN2(s, "fabric.retransmit", "fabric", trace_id, item.seq,
                     retx_bytes);
    transmit(std::move(item.pkt), /*charge_wire=*/true);
    OBS_ASYNC_END(s, "fabric.retransmit", "fabric", trace_id);
    arm_entry(s, d, item.seq, item.rto_ns);
  }

  for (Flow* fp : flows) {
    flush_ack(*fp);
  }
  pump_passes_.fetch_add(1, std::memory_order_relaxed);
  return busy || !held.empty();
}

void Fabric::pump_main() {
  while (!stop_.load(std::memory_order_acquire)) {
    pump_pass();
    std::this_thread::sleep_for(std::chrono::nanoseconds(rel_.tick_ns));
  }
}

bool Fabric::quiesce(std::chrono::nanoseconds timeout) {
  const std::int64_t deadline = base::now_ns() + timeout.count();
  for (;;) {
    bool busy;
    {
      std::lock_guard lock(held_mu_);
      busy = !held_.empty();
    }
    if (!busy) {
      const std::vector<Flow*> flows = active_flows();
      busy = std::any_of(flows.begin(), flows.end(), [](const Flow* f) {
        std::lock_guard lock(f->mu);
        return !f->window.empty() || !f->reorder.empty() || f->ack_pending;
      });
    }
    if (!busy) {
      return true;
    }
    if (base::now_ns() >= deadline) {
      return false;
    }
    if (base::cooperative()) {
      base::try_yield();
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(rel_.tick_ns));
    }
  }
}

std::uint64_t Fabric::unacked() const {
  std::uint64_t total = 0;
  for (const Flow* f : active_flows()) {
    std::lock_guard lock(f->mu);
    total += f->window.size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Failure flags
// ---------------------------------------------------------------------------

void Fabric::mark_failed(Rank r) {
  if (topo_.valid_rank(r)) {
    failed_[static_cast<std::size_t>(r)].store(true, std::memory_order_release);
  }
}

bool Fabric::is_failed(Rank r) const {
  return topo_.valid_rank(r) &&
         failed_[static_cast<std::size_t>(r)].load(std::memory_order_acquire);
}

}  // namespace sessmpi::fabric
