#include "sessmpi/fabric/cc.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include "sessmpi/obs/tvar.hpp"

namespace sessmpi::fabric {

namespace {

// Process-global congestion/striping knobs behind the MPI_T cvars. A
// Fabric snapshots them at construction (cc_config_from_cvars), so setting
// them mid-run affects the next cluster, not in-flight flows — same
// contract as sim.scheduler.
std::atomic<int>& engine_flag() {
  static std::atomic<int> v{static_cast<int>(CcEngine::fixed)};
  return v;
}
std::atomic<int>& rails_flag() {
  static std::atomic<int> v{1};
  return v;
}
std::atomic<std::uint64_t>& stripe_threshold_flag() {
  static std::atomic<std::uint64_t> v{CcConfig{}.stripe_threshold};
  return v;
}
std::atomic<std::int64_t>& ecn_threshold_flag() {
  // Default: mark CE once a modeled link's backlog exceeds 2 ms — a few
  // bulk segments deep at the calibrated inter-node bandwidth, far above
  // anything a healthy flow queues.
  static std::atomic<std::int64_t> v{2'000'000};
  return v;
}

bool parse_u64(const std::string& v, std::uint64_t& out) {
  if (v.empty()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  out = n;
  return true;
}

}  // namespace

void register_fabric_cvars() {
  static std::once_flag once;
  std::call_once(once, [] {
    obs::register_cvar(
        "fabric.cc",
        "per-flow congestion control engine: \"fixed\" (unlimited window, "
        "RTO-only recovery, default), \"aimd\" (slow start + NewReno fast "
        "retransmit/recovery + additive increase), or \"cubic\" "
        "(W_max-anchored cubic growth)",
        [] {
          return std::string(cc_engine_name(
              static_cast<CcEngine>(engine_flag().load(std::memory_order_acquire))));
        },
        [](const std::string& v) {
          const auto e = cc_engine_from_name(v);
          if (!e) {
            return false;
          }
          engine_flag().store(static_cast<int>(*e), std::memory_order_release);
          return true;
        });
    obs::register_cvar(
        "fabric.rails",
        "per-pair rails (parallel endpoints) for striping bulk messages; "
        "1 (default) disables striping, max 4",
        [] { return std::to_string(rails_flag().load(std::memory_order_acquire)); },
        [](const std::string& v) {
          std::uint64_t n = 0;
          if (!parse_u64(v, n) || n < 1 || n > kMaxRails) {
            return false;
          }
          rails_flag().store(static_cast<int>(n), std::memory_order_release);
          return true;
        });
    obs::register_cvar(
        "fabric.stripe_threshold",
        "payload bytes at or above which rndv_data is striped across "
        "fabric.rails (default 262144)",
        [] {
          return std::to_string(
              stripe_threshold_flag().load(std::memory_order_acquire));
        },
        [](const std::string& v) {
          std::uint64_t n = 0;
          if (!parse_u64(v, n) || n == 0) {
            return false;
          }
          stripe_threshold_flag().store(n, std::memory_order_release);
          return true;
        });
    obs::register_cvar(
        "fabric.ecn_threshold_ns",
        "modeled link backlog (ns) above which the sim sets the CE bit; "
        "0 disables ECN marking (default 2000000)",
        [] {
          return std::to_string(
              ecn_threshold_flag().load(std::memory_order_acquire));
        },
        [](const std::string& v) {
          std::uint64_t n = 0;
          if (!parse_u64(v, n)) {
            return false;
          }
          ecn_threshold_flag().store(static_cast<std::int64_t>(n),
                                     std::memory_order_release);
          return true;
        });
  });
}

CcConfig cc_config_from_cvars() {
  register_fabric_cvars();
  CcConfig cfg;
  cfg.engine =
      static_cast<CcEngine>(engine_flag().load(std::memory_order_acquire));
  cfg.rails = rails_flag().load(std::memory_order_acquire);
  cfg.stripe_threshold = static_cast<std::size_t>(
      stripe_threshold_flag().load(std::memory_order_acquire));
  return cfg;
}

std::int64_t ecn_threshold_ns_from_cvars() {
  register_fabric_cvars();
  return ecn_threshold_flag().load(std::memory_order_acquire);
}

}  // namespace sessmpi::fabric
