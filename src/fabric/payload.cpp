#include "sessmpi/fabric/payload.hpp"

#include <algorithm>
#include <cstring>
#include <new>

#include "sessmpi/base/buffer_pool.hpp"
#include "sessmpi/base/stats.hpp"

namespace sessmpi::fabric {

void Payload::resize(std::size_t n) {
  if (hdr_ != nullptr && n <= hdr_->capacity - off_ &&
      hdr_->refs.load(std::memory_order_relaxed) == 1) {
    size_ = n;
    return;
  }
  if (n == 0) {
    clear();
    return;
  }
  std::size_t block_capacity = 0;
  void* block =
      base::BufferPool::global().acquire(sizeof(Header) + n, &block_capacity);
  auto* hdr = new (block) Header{.refs{1}, .capacity = block_capacity - sizeof(Header)};
  auto* dst = reinterpret_cast<std::byte*>(hdr) + sizeof(Header);
  if (size_ > 0) {
    // Growing a live buffer (or un-sharing one): the old bytes move. This
    // is the deep copy the pool exists to avoid — keep it off the hot path.
    static const auto copies = base::counter("fabric.payload_copies");
    copies.add();
    std::memcpy(dst, bytes(), std::min(size_, n));
  }
  release();
  hdr_ = hdr;
  size_ = n;
  off_ = 0;
}

void Payload::release() noexcept {
  if (hdr_ == nullptr) {
    return;
  }
  if (hdr_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::size_t block_capacity = sizeof(Header) + hdr_->capacity;
    hdr_->~Header();
    base::BufferPool::global().release(hdr_, block_capacity);
  }
}

}  // namespace sessmpi::fabric
