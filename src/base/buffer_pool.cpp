#include "sessmpi/base/buffer_pool.hpp"

#include <new>

namespace sessmpi::base {

BufferPool::~BufferPool() { trim(); }

BufferPool& BufferPool::global() {
  static BufferPool pool;
  return pool;
}

std::size_t BufferPool::class_for(std::size_t bytes) noexcept {
  std::size_t cls = 0;
  std::size_t cap = kMinBlock;
  while (cls < kClasses && cap < bytes) {
    cap <<= 1;
    ++cls;
  }
  return cls;
}

void* BufferPool::acquire(std::size_t bytes, std::size_t* capacity) {
  const std::size_t cls = class_for(bytes);
  if (cls >= kClasses) {
    // Oversized: exact allocation, never cached.
    *capacity = bytes;
    misses_.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(bytes);
  }
  *capacity = class_bytes(cls);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_[cls].empty()) {
      void* block = free_[cls].back();
      free_[cls].pop_back();
      cached_bytes_ -= class_bytes(cls);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return block;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(class_bytes(cls));
}

void BufferPool::release(void* block, std::size_t capacity) noexcept {
  releases_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t cls = class_for(capacity);
  if (cls < kClasses && class_bytes(cls) == capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_[cls].size() < kMaxCachedPerClass) {
      free_[cls].push_back(block);
      cached_bytes_ += capacity;
      return;
    }
  }
  ::operator delete(block);
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.releases = releases_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.cached_bytes = cached_bytes_;
  return s;
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& list : free_) {
    for (void* block : list) {
      ::operator delete(block);
    }
    list.clear();
  }
  cached_bytes_ = 0;
}

}  // namespace sessmpi::base
