#include "sessmpi/base/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string_view>

namespace sessmpi::base {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("SESSMPI_LOG");
  if (env == nullptr) {
    return LogLevel::off;
  }
  const std::string_view v{env};
  if (v == "error") return LogLevel::error;
  if (v == "warn") return LogLevel::warn;
  if (v == "info") return LogLevel::info;
  if (v == "debug") return LogLevel::debug;
  return LogLevel::off;
}

std::atomic<int> g_level{static_cast<int>(level_from_env())};
std::mutex g_io_mu;

constexpr std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::error: return "[sessmpi:error] ";
    case LogLevel::warn: return "[sessmpi:warn ] ";
    case LogLevel::info: return "[sessmpi:info ] ";
    case LogLevel::debug: return "[sessmpi:debug] ";
    case LogLevel::off: break;
  }
  return "[sessmpi] ";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard lock(g_io_mu);
  std::cerr << level_tag(level) << msg << '\n';
}

}  // namespace sessmpi::base
