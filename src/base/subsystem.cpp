#include "sessmpi/base/subsystem.hpp"

#include <utility>

namespace sessmpi::base {

void SubsystemRegistry::define(const std::string& name, InitFn init,
                               CleanupFn cleanup,
                               std::vector<std::string> deps) {
  std::lock_guard lock(mu_);
  if (subsystems_.contains(name)) {
    throw Error(ErrClass::rte_exists, "subsystem already defined: " + name);
  }
  for (const auto& dep : deps) {
    if (!subsystems_.contains(dep)) {
      throw Error(ErrClass::rte_not_found,
                  "subsystem dependency not defined: " + dep);
    }
  }
  subsystems_.emplace(
      name, Subsystem{std::move(init), std::move(cleanup), std::move(deps)});
}

SubsystemRegistry::Subsystem& SubsystemRegistry::find(const std::string& name) {
  auto it = subsystems_.find(name);
  if (it == subsystems_.end()) {
    throw Error(ErrClass::rte_not_found, "unknown subsystem: " + name);
  }
  return it->second;
}

const SubsystemRegistry::Subsystem& SubsystemRegistry::find(
    const std::string& name) const {
  auto it = subsystems_.find(name);
  if (it == subsystems_.end()) {
    throw Error(ErrClass::rte_not_found, "unknown subsystem: " + name);
  }
  return it->second;
}

void SubsystemRegistry::acquire(const std::string& name) {
  std::lock_guard lock(mu_);
  acquire_locked(name);
}

void SubsystemRegistry::acquire_locked(const std::string& name) {
  Subsystem& sub = find(name);
  for (const auto& dep : sub.deps) {
    acquire_locked(dep);
  }
  if (!sub.initialized) {
    if (sub.init) {
      sub.init();
    }
    sub.initialized = true;
    // Defer teardown: register the cleanup with the framework; it runs only
    // when the last reference anywhere is dropped.
    CleanupFn cleanup = sub.cleanup;
    std::string captured = name;
    cleanups_.register_cleanup(captured, [this, captured] {
      Subsystem& s = subsystems_.at(captured);
      if (s.cleanup) {
        s.cleanup();
      }
      s.initialized = false;
    });
  }
  ++sub.refs;
  ++total_refs_;
}

bool SubsystemRegistry::release(const std::string& name) {
  std::lock_guard lock(mu_);
  release_locked(name);
  if (total_refs_ == 0) {
    cleanups_.run_all();
    ++completed_cycles_;
    return true;
  }
  return false;
}

void SubsystemRegistry::release_locked(const std::string& name) {
  Subsystem& sub = find(name);
  if (sub.refs <= 0) {
    throw Error(ErrClass::intern, "over-release of subsystem: " + name);
  }
  --sub.refs;
  --total_refs_;
  for (const auto& dep : sub.deps) {
    release_locked(dep);
  }
}

bool SubsystemRegistry::is_initialized(const std::string& name) const {
  std::lock_guard lock(mu_);
  return find(name).initialized;
}

int SubsystemRegistry::ref_count(const std::string& name) const {
  std::lock_guard lock(mu_);
  return find(name).refs;
}

int SubsystemRegistry::total_refs() const {
  std::lock_guard lock(mu_);
  return total_refs_;
}

int SubsystemRegistry::completed_cycles() const {
  std::lock_guard lock(mu_);
  return completed_cycles_;
}

}  // namespace sessmpi::base
