#include "sessmpi/base/stats.hpp"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <ostream>
#include <sstream>

#include "sessmpi/base/error.hpp"

namespace sessmpi::base {

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
  };
  s.median = at(0.5);
  s.p99 = at(0.99);
  return s;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

/// Per-thread shard bindings. A thread lazily claims one shard per Counters
/// instance; the destructor parks the shards back on their registries'
/// freelists when the thread exits. The registry outlives worker threads
/// (the process-wide one is a function-local static, destroyed after the
/// main thread's thread_locals run).
namespace detail {

struct TlsShards {
  struct Entry {
    Counters* owner;
    Counters::Shard* shard;
  };
  std::vector<Entry> entries;
  ~TlsShards() {
    for (const Entry& e : entries) {
      e.owner->retire_shard(e.shard);
    }
  }
};

thread_local TlsShards tls_shards;

}  // namespace detail

using detail::tls_shards;

void Counters::retire_shard(Shard* shard) {
  std::lock_guard lock(mu_);
  free_shards_.push_back(shard);
}

Counters::Shard* Counters::local_shard() {
  for (const auto& e : tls_shards.entries) {
    if (e.owner == this) {
      return e.shard;
    }
  }
  Shard* shard = nullptr;
  {
    std::lock_guard lock(mu_);
    if (!free_shards_.empty()) {
      shard = free_shards_.back();
      free_shards_.pop_back();
    } else {
      shards_.push_back(std::make_unique<Shard>());
      shard = shards_.back().get();
    }
  }
  tls_shards.entries.push_back({this, shard});
  return shard;
}

std::size_t Counters::index_of(const std::string& name) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = index_.try_emplace(name, names_.size());
  if (inserted) {
    if (names_.size() >= kMaxCounters) {
      index_.erase(it);
      throw Error(ErrClass::intern, "counter registry full: " + name);
    }
    names_.push_back(&it->first);
  }
  return it->second;
}

std::uint64_t Counters::fold_locked(std::size_t idx) const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->cells[idx].load(std::memory_order_relaxed);
  }
  return sum;
}

Counters::Handle Counters::handle(const std::string& name) {
  return Handle(this, index_of(name));
}

void Counters::Handle::add(std::uint64_t delta) const {
  owner_->local_shard()->cells[idx_].fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counters::Handle::value() const {
  std::lock_guard lock(owner_->mu_);
  return owner_->fold_locked(idx_);
}

void Counters::add(const std::string& name, std::uint64_t delta) {
  handle(name).add(delta);
}

std::uint64_t Counters::value(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? 0 : fold_locked(it->second);
}

std::vector<std::pair<std::string, std::uint64_t>> Counters::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(names_.size());
  for (const auto& [name, idx] : index_) {
    out.emplace_back(name, fold_locked(idx));
  }
  return out;
}

void Counters::print_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const auto& [name, value] : snapshot()) {
    if (!first) {
      os << ", ";
    }
    first = false;
    // Counter names are code-controlled identifiers (no quotes/escapes).
    os << '"' << name << "\": " << value;
  }
  os << '}';
}

void Counters::reset() {
  {
    std::lock_guard lock(mu_);
    for (const auto& shard : shards_) {
      for (std::size_t idx = 0; idx < names_.size(); ++idx) {
        shard->cells[idx].store(0, std::memory_order_relaxed);
      }
    }
  }
  // Hooks run unlocked so they may call back into the registry.
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard lock(hooks_mu_);
    hooks = reset_hooks_;
  }
  for (const auto& hook : hooks) {
    hook();
  }
}

void Counters::reset_one(const std::string& name) {
  std::lock_guard lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) {
    return;
  }
  for (const auto& shard : shards_) {
    shard->cells[it->second].store(0, std::memory_order_relaxed);
  }
}

void Counters::add_reset_hook(std::function<void()> hook) {
  std::lock_guard lock(hooks_mu_);
  reset_hooks_.push_back(std::move(hook));
}

Counters& counters() {
  static Counters c;
  return c;
}

}  // namespace sessmpi::base
