#include "sessmpi/base/stats.hpp"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <ostream>
#include <sstream>

namespace sessmpi::base {

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
  };
  s.median = at(0.5);
  s.p99 = at(0.99);
  return s;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::atomic<std::uint64_t>* Counters::get(const std::string& name) {
  std::lock_guard lock(mu_);
  return &counters_[name];
}

void Counters::add(const std::string& name, std::uint64_t delta) {
  get(name)->fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counters::value(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end()
             ? 0
             : it->second.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> Counters::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, v] : counters_) {
    out.emplace_back(name, v.load(std::memory_order_relaxed));
  }
  return out;
}

void Counters::print_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const auto& [name, value] : snapshot()) {
    if (!first) {
      os << ", ";
    }
    first = false;
    // Counter names are code-controlled identifiers (no quotes/escapes).
    os << '"' << name << "\": " << value;
  }
  os << '}';
}

void Counters::reset() {
  {
    std::lock_guard lock(mu_);
    for (auto& [name, v] : counters_) {
      v.store(0, std::memory_order_relaxed);
    }
  }
  // Hooks run unlocked so they may call back into the registry.
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard lock(hooks_mu_);
    hooks = reset_hooks_;
  }
  for (const auto& hook : hooks) {
    hook();
  }
}

void Counters::add_reset_hook(std::function<void()> hook) {
  std::lock_guard lock(hooks_mu_);
  reset_hooks_.push_back(std::move(hook));
}

Counters& counters() {
  static Counters c;
  return c;
}

}  // namespace sessmpi::base
