#include "sessmpi/base/clock.hpp"

#include <thread>

#include "sessmpi/base/yield.hpp"

namespace sessmpi::base {

void precise_delay(std::int64_t delay_ns) noexcept {
  if (delay_ns <= 0) {
    return;
  }
  const auto deadline = Clock::now() + Nanos(delay_ns);
  if (cooperative()) {
    // Fiber mode: sleeping would park the scheduler worker (and every fiber
    // queued on it) for the whole modeled delay — yield instead so other
    // ranks' delays overlap on the same core.
    while (Clock::now() < deadline) {
      try_yield();
    }
    return;
  }
  if (delay_ns > kSpinThresholdNs) {
    // Sleep for all but the final spin window. sleep_for may overshoot by a
    // scheduler quantum; that is acceptable for the millisecond-scale costs
    // modeled with this path (startup, server exchanges).
    std::this_thread::sleep_for(Nanos(delay_ns - kSpinThresholdNs));
  }
  while (Clock::now() < deadline) {
    // spin
  }
}

}  // namespace sessmpi::base
