#include "sessmpi/base/clock.hpp"

#include <thread>

namespace sessmpi::base {

void precise_delay(std::int64_t delay_ns) noexcept {
  if (delay_ns <= 0) {
    return;
  }
  const auto deadline = Clock::now() + Nanos(delay_ns);
  if (delay_ns > kSpinThresholdNs) {
    // Sleep for all but the final spin window. sleep_for may overshoot by a
    // scheduler quantum; that is acceptable for the millisecond-scale costs
    // modeled with this path (startup, server exchanges).
    std::this_thread::sleep_for(Nanos(delay_ns - kSpinThresholdNs));
  }
  while (Clock::now() < deadline) {
    // spin
  }
}

}  // namespace sessmpi::base
