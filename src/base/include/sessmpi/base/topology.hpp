#pragma once

// Cluster topology: a fixed number of nodes each hosting a fixed number of
// ranks. Ranks are numbered globally, node-major, matching how prun lays out
// processes with a constant procs-per-node mapping.

#include <cstdint>

namespace sessmpi::base {

/// Global rank of a simulated MPI process within the allocation.
using Rank = int;

struct Topology {
  int num_nodes = 1;
  int procs_per_node = 1;
  /// Sockets per node; local ranks are split evenly across sockets in
  /// local-rank-major order (ranks on the same socket are contiguous).
  /// Only the collective engine's intra-node fan-in shape depends on it.
  int sockets_per_node = 1;

  [[nodiscard]] int size() const noexcept { return num_nodes * procs_per_node; }
  [[nodiscard]] int node_of(Rank r) const noexcept { return r / procs_per_node; }
  [[nodiscard]] int local_rank_of(Rank r) const noexcept {
    return r % procs_per_node;
  }
  /// Socket index (within the node) hosting rank r.
  [[nodiscard]] int socket_of(Rank r) const noexcept {
    const int sockets = sockets_per_node > 0 ? sockets_per_node : 1;
    const int per_socket = (procs_per_node + sockets - 1) / sockets;
    return local_rank_of(r) / per_socket;
  }
  [[nodiscard]] bool same_node(Rank a, Rank b) const noexcept {
    return node_of(a) == node_of(b);
  }
  [[nodiscard]] bool same_socket(Rank a, Rank b) const noexcept {
    return same_node(a, b) && socket_of(a) == socket_of(b);
  }
  [[nodiscard]] bool valid_rank(Rank r) const noexcept {
    return r >= 0 && r < size();
  }
};

}  // namespace sessmpi::base
