#pragma once

// GF(2^8) arithmetic for the checkpoint layer's Reed-Solomon codec
// (src/ckpt/codec_rs.cpp). The field is GF(2)[x]/(x^8+x^4+x^3+x^2+1)
// (polynomial 0x11d, the AES-unrelated "Rijndael's cousin" every RAID-6
// implementation uses), represented as log/antilog tables over the
// generator 0x02. Header-only and constexpr-built: the tables are
// computed at compile time, so there is no init-order footgun and the
// codec can be unit-tested as pure arithmetic.
//
// Also provides the Cauchy parity-matrix element used to build systematic
// MDS codes: with x_i = k + i and y_j = j, every square submatrix of
// C[i][j] = 1/(x_i ^ y_j) is itself Cauchy and hence invertible, which is
// exactly the property that makes "any m lost chunks per stripe"
// recoverable (k + m <= 256).

#include <array>
#include <cstddef>
#include <cstdint>

namespace sessmpi::base::gf256 {

namespace detail {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};  ///< doubled so mul skips a mod 255
};

constexpr Tables build_tables() {
  Tables t{};
  std::uint32_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.exp[static_cast<std::size_t>(i + 255)] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) {
      x ^= 0x11d;
    }
  }
  t.exp[510] = t.exp[255];
  t.exp[511] = t.exp[256];
  t.log[0] = 0;  // log(0) is undefined; mul/div guard the zero cases
  return t;
}

inline constexpr Tables kTables = build_tables();

}  // namespace detail

[[nodiscard]] constexpr std::uint8_t mul(std::uint8_t a,
                                         std::uint8_t b) noexcept {
  if (a == 0 || b == 0) {
    return 0;
  }
  return detail::kTables
      .exp[static_cast<std::size_t>(detail::kTables.log[a]) +
           detail::kTables.log[b]];
}

/// Multiplicative inverse; inv(0) is undefined and returns 0 (callers in
/// the codec never invert zero: Cauchy denominators are nonzero by
/// construction and Gaussian elimination pivots are checked first).
[[nodiscard]] constexpr std::uint8_t inv(std::uint8_t a) noexcept {
  if (a == 0) {
    return 0;
  }
  return detail::kTables.exp[255 - detail::kTables.log[a]];
}

[[nodiscard]] constexpr std::uint8_t div(std::uint8_t a,
                                         std::uint8_t b) noexcept {
  return mul(a, inv(b));
}

/// Parity-matrix element for the systematic Cauchy code: row i (parity
/// index, 0..m-1), column j (data index, 0..k-1), with the standard
/// disjoint evaluation points x_i = k + i, y_j = j. Requires k + m <= 256.
[[nodiscard]] constexpr std::uint8_t cauchy(int k, int i, int j) noexcept {
  return inv(static_cast<std::uint8_t>((k + i) ^ j));
}

/// dst[0..len) ^= coef * src[0..len) — the inner loop of both encode and
/// decode. coef == 1 degenerates to pure XOR (the RAID-5 case).
inline void mul_add(std::byte* dst, const std::byte* src, std::size_t len,
                    std::uint8_t coef) noexcept {
  if (coef == 0) {
    return;
  }
  if (coef == 1) {
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] ^= src[i];
    }
    return;
  }
  const std::uint8_t logc = detail::kTables.log[coef];
  for (std::size_t i = 0; i < len; ++i) {
    const auto s = static_cast<std::uint8_t>(src[i]);
    if (s != 0) {
      dst[i] ^= static_cast<std::byte>(
          detail::kTables.exp[static_cast<std::size_t>(logc) +
                              detail::kTables.log[s]]);
    }
  }
}

}  // namespace sessmpi::base::gf256
