#pragma once

// Cleanup-callback framework, modeled after the OPAL finalize-cleanup
// framework the prototype leans on (paper §III-B5): instead of a carefully
// ordered series of teardown calls in MPI_Finalize, every subsystem registers
// a cleanup callback when it is first initialized; when the last session (or
// the World model) finalizes, the callbacks run in reverse registration
// order and the framework resets so a new init cycle can begin.

#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace sessmpi::base {

class CleanupRegistry {
 public:
  using Callback = std::function<void()>;

  /// Register a named cleanup callback. Thread-safe.
  void register_cleanup(std::string name, Callback cb);

  /// Run all callbacks in reverse registration order, then clear the
  /// registry. Returns the number of callbacks executed.
  std::size_t run_all();

  [[nodiscard]] std::size_t size() const;

  /// Names in registration order (for tests / diagnostics).
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Callback>> callbacks_;
};

}  // namespace sessmpi::base
