#pragma once

// Refcounted lazy subsystem registry, modeled after the restructured
// initialization the prototype introduced in Open MPI (paper §III-B5):
//
//  * subsystems are defined once (name, init fn, cleanup fn, dependencies);
//  * acquiring a subsystem initializes it on first use (dependencies first)
//    and bumps a reference count;
//  * releasing decrements the count; actual teardown is deferred;
//  * when every subsystem's count reaches zero, the registered cleanup
//    callbacks run in reverse init order and the registry is ready for a new
//    init cycle (sessions can be initialized and finalized repeatedly).
//
// All operations are thread-safe: MPI_Session_init must be callable from
// multiple threads concurrently.

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sessmpi/base/cleanup.hpp"
#include "sessmpi/base/error.hpp"

namespace sessmpi::base {

class SubsystemRegistry {
 public:
  using InitFn = std::function<void()>;
  using CleanupFn = std::function<void()>;

  /// Define a subsystem. Throws Error(rte_exists) on duplicate definition and
  /// Error(rte_not_found) if a dependency has not been defined.
  void define(const std::string& name, InitFn init, CleanupFn cleanup,
              std::vector<std::string> deps = {});

  /// Acquire a subsystem: initialize it (and, recursively, its dependencies)
  /// if this is the first acquisition since the last full teardown, otherwise
  /// just bump its reference count. Dependencies are also ref-counted so they
  /// cannot be torn down while a dependent is live.
  void acquire(const std::string& name);

  /// Release one reference on a subsystem (and its dependency references).
  /// When the total live reference count across all subsystems reaches zero,
  /// all cleanup callbacks run (reverse init order) and init state resets.
  /// Returns true if full teardown was performed.
  bool release(const std::string& name);

  [[nodiscard]] bool is_initialized(const std::string& name) const;
  [[nodiscard]] int ref_count(const std::string& name) const;
  [[nodiscard]] int total_refs() const;
  /// Number of completed full init->teardown cycles (tests use this to show
  /// repeated initialization works).
  [[nodiscard]] int completed_cycles() const;

 private:
  struct Subsystem {
    InitFn init;
    CleanupFn cleanup;
    std::vector<std::string> deps;
    int refs = 0;
    bool initialized = false;
  };

  // Must be called with mu_ held.
  void acquire_locked(const std::string& name);
  void release_locked(const std::string& name);
  Subsystem& find(const std::string& name);
  const Subsystem& find(const std::string& name) const;

  mutable std::recursive_mutex mu_;
  std::unordered_map<std::string, Subsystem> subsystems_;
  CleanupRegistry cleanups_;
  int total_refs_ = 0;
  int completed_cycles_ = 0;
};

}  // namespace sessmpi::base
