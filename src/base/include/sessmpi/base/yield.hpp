#pragma once

// Cooperative-scheduling hook (DESIGN.md §15). When rank bodies run as
// fibers on a task-pool scheduler (sim.scheduler=fibers) instead of one OS
// thread each, every blocking point in the stack — modeled delays, inbox
// waits, PMIx collective waits, shm spins — must hand the worker thread
// back to the scheduler instead of sleeping it, or a handful of parked
// fibers would stall thousands of runnable ones.
//
// The hook is thread-local: a scheduler worker installs it before resuming
// a fiber and clears it when the fiber suspends, so code running on plain
// OS threads (thread mode, the fabric pump, the ckpt drain worker) is
// entirely unaffected. Blocking sites ask `cooperative()` and replace
// their sleep/condition-wait with a `try_yield()` polling loop.

namespace sessmpi::base {

/// Called by `try_yield()` while a cooperative scheduler is driving the
/// current thread. Must suspend the current fiber and return when it is
/// next resumed.
using YieldFn = void (*)(void*);

/// Install/clear the cooperative yield hook for the current thread.
void set_yield_hook(YieldFn fn, void* ctx) noexcept;
void clear_yield_hook() noexcept;

/// True while a cooperative scheduler drives the current thread.
[[nodiscard]] bool cooperative() noexcept;

/// Yield: to the cooperative scheduler when one is installed, otherwise to
/// the OS (`std::this_thread::yield`). Safe to call from any thread.
void try_yield() noexcept;

}  // namespace sessmpi::base
