#pragma once

// Timing utilities: a monotonic wall clock, a stopwatch, and a calibrated
// delay injector used to model wire time and runtime costs in the simulated
// cluster. Delays below a threshold are spun (accurate to ~100ns); longer
// delays sleep to avoid burning the (small) host machine.

#include <chrono>
#include <cstdint>

namespace sessmpi::base {

using Clock = std::chrono::steady_clock;
using Nanos = std::chrono::nanoseconds;

/// Monotonic timestamp in nanoseconds.
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<Nanos>(Clock::now().time_since_epoch())
      .count();
}

/// Busy-wait/sleep hybrid delay. Used by the cost model to inject simulated
/// hardware costs (wire time, NFS load, PMIx server exchange) into real time.
/// Delays <= spin_threshold_ns are spun for accuracy; longer delays sleep
/// most of the interval then spin the remainder.
void precise_delay(std::int64_t delay_ns) noexcept;

/// Spin threshold used by precise_delay (exposed for tests). Wire-scale
/// costs (<= ~700us) spin for accuracy — sleep_for overshoots by scheduler
/// quanta, which would swamp the per-message ratios the benchmarks compare;
/// millisecond-scale runtime costs sleep to spare the host's cores.
inline constexpr std::int64_t kSpinThresholdNs = 700'000;  // 700 us

/// Simple stopwatch around Clock.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}
  void reset() noexcept { start_ = Clock::now(); }
  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    return std::chrono::duration_cast<Nanos>(Clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_us() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1.0e3;
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1.0e6;
  }

 private:
  Clock::time_point start_;
};

}  // namespace sessmpi::base
