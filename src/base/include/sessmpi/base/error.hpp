#pragma once

// Error classes for sessmpi, modeled after the MPI error classes that the
// Sessions proposal touches, plus runtime-level (PMIx/PRRTE) error classes.

#include <stdexcept>
#include <string>
#include <string_view>

namespace sessmpi::base {

/// Error classes. Values are stable; tests rely on them.
enum class ErrClass : int {
  success = 0,
  // MPI-level classes
  buffer = 1,
  count = 2,
  type = 3,
  tag = 4,
  comm = 5,
  rank = 6,
  request = 7,
  root = 8,
  group = 9,
  op = 10,
  topology = 11,
  dims = 12,
  arg = 13,
  unknown = 14,
  truncate = 15,
  other = 16,
  intern = 17,
  in_status = 18,
  pending = 19,
  info_key = 20,
  info_value = 21,
  info_nokey = 22,
  info = 23,
  session = 24,
  proc_aborted = 25,
  comm_revoked = 26,
  // Runtime (PMIx/PRRTE) classes
  rte_not_found = 40,
  rte_timeout = 41,
  rte_proc_failed = 42,
  rte_bad_param = 43,
  rte_exists = 44,
  rte_unreachable = 45,
  rte_not_supported = 46,
};

/// Human-readable name for an error class (never throws).
std::string_view err_class_name(ErrClass c) noexcept;

/// Exception thrown by sessmpi APIs when an error handler does not abort.
class Error : public std::runtime_error {
 public:
  Error(ErrClass cls, const std::string& what_arg)
      : std::runtime_error(std::string(err_class_name(cls)) + ": " + what_arg),
        cls_(cls) {}

  [[nodiscard]] ErrClass error_class() const noexcept { return cls_; }

 private:
  ErrClass cls_;
};

/// Status-style return for internal plumbing that must not throw across
/// subsystem boundaries (e.g., progress callbacks).
struct RtStatus {
  ErrClass cls = ErrClass::success;
  [[nodiscard]] bool ok() const noexcept { return cls == ErrClass::success; }
  static RtStatus success() noexcept { return {}; }
  static RtStatus fail(ErrClass c) noexcept { return {c}; }
};

}  // namespace sessmpi::base

namespace sessmpi {
// Convenience aliases: the MPI core layer uses these unqualified.
using base::ErrClass;
using base::Error;
using base::RtStatus;
using base::err_class_name;
}  // namespace sessmpi
