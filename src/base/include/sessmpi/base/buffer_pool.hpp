#pragma once

// Slab allocator for message payload buffers.
//
// Payload allocation used to be a `std::vector<std::byte>` per packet — one
// heap malloc/free per message on the eager path, plus full deep copies into
// the retransmission window. The pool hands out power-of-two size-class
// blocks from per-class freelists so steady-state messaging recycles the
// same few slabs; `fabric::Payload` layers an intrusive refcount on top so
// the retransmission window, chaos filters, and local delivery share one
// block instead of copying.
//
// Blocks above the largest size class (1 MiB) fall through to the system
// allocator and are never cached — rendezvous payloads that big are rare
// and not worth pinning.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace sessmpi::base {

class BufferPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;        ///< acquires served from a freelist
    std::uint64_t misses = 0;      ///< acquires that hit the system allocator
    std::uint64_t releases = 0;    ///< blocks returned (cached or freed)
    std::size_t cached_bytes = 0;  ///< bytes currently parked in freelists
    [[nodiscard]] double hit_rate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  BufferPool() = default;
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Process-wide pool shared by all simulated ranks (they are threads).
  static BufferPool& global();

  /// Returns a block of at least `bytes` bytes; `*capacity` receives the
  /// actual block size (the size class), which must be passed to release().
  void* acquire(std::size_t bytes, std::size_t* capacity);

  /// Returns a block obtained from acquire(). Blocks whose capacity is a
  /// size class are cached (up to a per-class cap); others are freed.
  void release(void* block, std::size_t capacity) noexcept;

  [[nodiscard]] Stats stats() const;

  /// Frees every cached block (tests / leak-checker hygiene).
  void trim();

  static constexpr std::size_t kMinBlock = 64;
  static constexpr std::size_t kClasses = 15;  ///< 64 B .. 1 MiB
  static constexpr std::size_t kMaxBlock = kMinBlock << (kClasses - 1);
  static constexpr std::size_t kMaxCachedPerClass = 256;

 private:
  /// Smallest class whose block size holds `bytes`, or kClasses if too big.
  static std::size_t class_for(std::size_t bytes) noexcept;
  static std::size_t class_bytes(std::size_t cls) noexcept { return kMinBlock << cls; }

  mutable std::mutex mu_;
  std::vector<void*> free_[kClasses];
  std::size_t cached_bytes_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> releases_{0};
};

}  // namespace sessmpi::base
