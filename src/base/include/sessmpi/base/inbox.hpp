#pragma once

// A blocking multi-producer single-consumer inbox used as the receive queue
// of every simulated process endpoint. Producers are other rank threads (and
// runtime threads); the consumer is the owning rank's progress engine.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/yield.hpp"

namespace sessmpi::base {

template <typename T>
class Inbox {
 public:
  /// Enqueue an item and wake the consumer if it is blocked.
  void push(T item) {
    {
      std::lock_guard lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Non-blocking pop; returns nullopt when empty.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocking pop with timeout. Returns nullopt on timeout. Under a
  /// cooperative scheduler the wait polls with yields instead of parking
  /// the worker thread on the condition variable.
  template <typename Rep, typename Period>
  std::optional<T> pop_wait(std::chrono::duration<Rep, Period> timeout) {
    if (cooperative()) {
      const std::int64_t deadline =
          now_ns() +
          std::chrono::duration_cast<std::chrono::nanoseconds>(timeout).count();
      for (;;) {
        if (auto item = try_pop()) {
          return item;
        }
        if (now_ns() >= deadline) {
          return std::nullopt;
        }
        try_yield();
      }
    }
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return !items_.empty(); })) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
};

}  // namespace sessmpi::base
