#pragma once

// Result<T>: a status-or-value return used at runtime-layer boundaries
// (PMIx/PRRTE) where exceptions must not propagate across subsystems.

#include <utility>

#include "sessmpi/base/error.hpp"

namespace sessmpi::base {

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(ErrClass err) : err_(err) {}            // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return err_ == ErrClass::success; }
  [[nodiscard]] ErrClass error() const noexcept { return err_; }

  /// Access the value; throws Error if the result holds an error.
  [[nodiscard]] T& value() {
    if (!ok()) {
      throw Error(err_, "Result::value() on error result");
    }
    return value_;
  }
  [[nodiscard]] const T& value() const {
    if (!ok()) {
      throw Error(err_, "Result::value() on error result");
    }
    return value_;
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  T value_{};
  ErrClass err_ = ErrClass::success;
};

}  // namespace sessmpi::base
