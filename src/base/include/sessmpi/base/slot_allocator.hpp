#pragma once

// Lowest-free-slot allocator backing the per-process communicator array.
// Open MPI represents a communicator's CID as a 16-bit index into a local
// array (paper §III-B2); the consensus algorithm repeatedly proposes the
// lowest locally-free index, so the allocator must support both "lowest
// free" queries and claiming a specific index chosen by consensus.

#include <cstdint>
#include <optional>
#include <vector>

namespace sessmpi::base {

class SlotAllocator {
 public:
  /// `capacity` is the total CID space (Open MPI: 2^16).
  explicit SlotAllocator(std::uint32_t capacity = 1u << 16)
      : used_(capacity, false) {}

  /// Lowest free index at or above `from`, or nullopt when exhausted.
  [[nodiscard]] std::optional<std::uint32_t> lowest_free(
      std::uint32_t from = 0) const {
    for (std::uint32_t i = from; i < used_.size(); ++i) {
      if (!used_[i]) {
        return i;
      }
    }
    return std::nullopt;
  }

  /// Claim a specific index. Returns false if already in use or out of range.
  bool claim(std::uint32_t index) {
    if (index >= used_.size() || used_[index]) {
      return false;
    }
    used_[index] = true;
    ++in_use_;
    return true;
  }

  /// Release an index. Returns false if it was not in use.
  bool release(std::uint32_t index) {
    if (index >= used_.size() || !used_[index]) {
      return false;
    }
    used_[index] = false;
    --in_use_;
    return true;
  }

  [[nodiscard]] bool is_used(std::uint32_t index) const {
    return index < used_.size() && used_[index];
  }

  [[nodiscard]] std::uint32_t in_use() const { return in_use_; }
  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(used_.size());
  }

 private:
  std::vector<bool> used_;
  std::uint32_t in_use_ = 0;
};

}  // namespace sessmpi::base
