#pragma once

// Small statistics helpers shared by the benchmark harnesses: percentile,
// mean, min/max over timing samples, and a fixed-width table printer that
// renders the paper-style result tables.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sessmpi::base {

namespace detail {
struct TlsShards;
}  // namespace detail

struct Summary {
  double min = 0, max = 0, mean = 0, median = 0, p99 = 0;
  std::size_t count = 0;
};

/// Compute summary statistics; `samples` is copied and sorted internally.
Summary summarize(std::vector<double> samples);

/// Paper-style fixed-width table. Columns sized to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Render with column separators and a rule under the header.
  void print(std::ostream& os) const;

  static std::string fmt(double value, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Process-wide named event counters, sharded per thread. Layers bump
/// counters on their hot paths (pml matching, fabric sends, FT revokes,
/// chaos kills, ...); tests and the benchmark harnesses read them back by
/// name.
///
/// Each name resolves (under a lock, once) to a small index; each thread
/// owns a shard of relaxed atomic cells indexed by it, so a bump is one
/// relaxed fetch_add on a thread-private cache line — no lock, no sharing.
/// Reads fold every shard's cell for the index. Shards of exited threads
/// are parked on a freelist (values retained, so no counts are lost) and
/// recycled by new threads, bounding memory at max *concurrent* threads.
///
/// Hot paths should resolve a Handle once (static local) and bump through
/// it; the string-keyed add() stays for cold paths.
class Counters {
 public:
  static constexpr std::size_t kMaxCounters = 1024;

  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> cells{};
  };

  /// Pre-resolved counter index; add() through a handle is lock-free.
  class Handle {
   public:
    Handle() = default;
    void add(std::uint64_t delta = 1) const;
    [[nodiscard]] std::uint64_t value() const;

   private:
    friend class Counters;
    Handle(Counters* owner, std::size_t idx) : owner_(owner), idx_(idx) {}
    Counters* owner_ = nullptr;
    std::size_t idx_ = 0;
  };

  Counters() = default;
  Counters(const Counters&) = delete;
  Counters& operator=(const Counters&) = delete;

  /// Resolve `name` to a reusable handle (created on first use).
  Handle handle(const std::string& name);

  /// One-shot bump for cold paths (resolves the name every call).
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Current value (0 if the counter was never touched).
  std::uint64_t value(const std::string& name) const;

  /// Snapshot of every counter, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

  /// One-line JSON object of every counter: {"name": value, ...}. The
  /// benchmark harnesses print this inside a tagged line that
  /// tools/report_merge collects into an EXPERIMENTS.md-ready table.
  void print_json(std::ostream& os) const;

  /// Reset all counters to zero (tests isolate themselves with this),
  /// then run every registered reset hook — so other per-run statistics
  /// (obs histograms, future pvars) stay in lockstep with one call.
  void reset();

  /// Zero a single counter across all shards (MPI_T pvar reset).
  void reset_one(const std::string& name);

  /// Register a callback fired at the end of every reset(). Hooks run
  /// outside the counter lock and live for the process lifetime.
  void add_reset_hook(std::function<void()> hook);

 private:
  friend class Handle;
  friend struct detail::TlsShards;

  std::size_t index_of(const std::string& name);           // creates
  std::uint64_t fold_locked(std::size_t idx) const;        // mu_ held
  Shard* local_shard();                                    // this thread's shard
  void retire_shard(Shard* shard);                         // thread exit

  mutable std::mutex mu_;
  std::map<std::string, std::size_t> index_;               // name -> idx
  std::vector<const std::string*> names_;                  // idx -> name
  std::vector<std::unique_ptr<Shard>> shards_;             // every shard ever made
  std::vector<Shard*> free_shards_;                        // parked by exited threads
  std::mutex hooks_mu_;
  std::vector<std::function<void()>> reset_hooks_;
};

/// The process-wide counter registry.
Counters& counters();

/// Shorthand: resolve a handle in the process-wide registry. Typical hot
/// path: `static const auto c = base::counter("pml.match_bin_hits"); c.add();`
inline Counters::Handle counter(const std::string& name) {
  return counters().handle(name);
}

}  // namespace sessmpi::base
