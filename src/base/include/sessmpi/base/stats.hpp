#pragma once

// Small statistics helpers shared by the benchmark harnesses: percentile,
// mean, min/max over timing samples, and a fixed-width table printer that
// renders the paper-style result tables.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sessmpi::base {

struct Summary {
  double min = 0, max = 0, mean = 0, median = 0, p99 = 0;
  std::size_t count = 0;
};

/// Compute summary statistics; `samples` is copied and sorted internally.
Summary summarize(std::vector<double> samples);

/// Paper-style fixed-width table. Columns sized to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Render with column separators and a rule under the header.
  void print(std::ostream& os) const;

  static std::string fmt(double value, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sessmpi::base
