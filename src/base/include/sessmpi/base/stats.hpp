#pragma once

// Small statistics helpers shared by the benchmark harnesses: percentile,
// mean, min/max over timing samples, and a fixed-width table printer that
// renders the paper-style result tables.

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sessmpi::base {

struct Summary {
  double min = 0, max = 0, mean = 0, median = 0, p99 = 0;
  std::size_t count = 0;
};

/// Compute summary statistics; `samples` is copied and sorted internally.
Summary summarize(std::vector<double> samples);

/// Paper-style fixed-width table. Columns sized to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Render with column separators and a rule under the header.
  void print(std::ostream& os) const;

  static std::string fmt(double value, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Process-wide named event counters. Layers bump counters on their hot
/// paths (fabric drops, FT revokes, chaos kills, ...); tests and the
/// benchmark harnesses read them back by name. Creation takes a lock once
/// per name; bumping an obtained counter is a relaxed atomic increment.
class Counters {
 public:
  /// Stable pointer to the counter named `name` (created on first use).
  std::atomic<std::uint64_t>* get(const std::string& name);

  /// One-shot bump for cold paths.
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Current value (0 if the counter was never touched).
  std::uint64_t value(const std::string& name) const;

  /// Snapshot of every counter, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

  /// One-line JSON object of every counter: {"name": value, ...}. The
  /// benchmark harnesses print this inside a tagged line that
  /// tools/report_merge collects into an EXPERIMENTS.md-ready table.
  void print_json(std::ostream& os) const;

  /// Reset all counters to zero (tests isolate themselves with this),
  /// then run every registered reset hook — so other per-run statistics
  /// (obs histograms, future pvars) stay in lockstep with one call.
  void reset();

  /// Register a callback fired at the end of every reset(). Hooks run
  /// outside the counter lock and live for the process lifetime.
  void add_reset_hook(std::function<void()> hook);

 private:
  mutable std::mutex mu_;
  // std::map: node-based, so pointers into values stay valid on insert.
  std::map<std::string, std::atomic<std::uint64_t>> counters_;
  std::mutex hooks_mu_;
  std::vector<std::function<void()>> reset_hooks_;
};

/// The process-wide counter registry.
Counters& counters();

}  // namespace sessmpi::base
