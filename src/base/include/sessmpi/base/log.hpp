#pragma once

// Minimal leveled logger. Off by default; enabled via set_level or the
// SESSMPI_LOG environment variable (error|warn|info|debug). Thread-safe:
// each message is written with a single ostream insertion under a lock.

#include <sstream>
#include <string>

namespace sessmpi::base {

enum class LogLevel : int { off = 0, error = 1, warn = 2, info = 3, debug = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit a message at `level` (no-op if below the current level).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() >= LogLevel::error)
    log_message(LogLevel::error, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() >= LogLevel::warn)
    log_message(LogLevel::warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() >= LogLevel::info)
    log_message(LogLevel::info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() >= LogLevel::debug)
    log_message(LogLevel::debug, detail::concat(std::forward<Args>(args)...));
}

}  // namespace sessmpi::base
