#pragma once

// Retry/backoff helpers shared by layers that re-arm timers on loss: the
// fabric's retransmission pump (RTO doubling per retry) and any future
// runtime retry loop. Pure arithmetic — no clocks, no sleeping — so the
// policy is unit-testable and the caller decides how "now" advances.

#include <cstdint>

namespace sessmpi::base {

/// Exponential backoff: delay(k) = min(base * factor^k, cap), k = 0,1,2...
/// Integer factor keeps the math exact and overflow-checked.
struct ExponentialBackoff {
  std::int64_t base_ns = 1'000'000;       ///< first-retry delay
  std::int64_t cap_ns = 1'000'000'000;    ///< upper bound on any delay
  std::int64_t factor = 2;                ///< growth per retry

  [[nodiscard]] std::int64_t delay_ns(int retry) const noexcept {
    std::int64_t d = base_ns;
    for (int i = 0; i < retry; ++i) {
      if (d > cap_ns / factor) {
        return cap_ns;
      }
      d *= factor;
    }
    return d < cap_ns ? d : cap_ns;
  }
};

/// A monotonically re-armable deadline in now_ns() time. `expired` and
/// `arm` are trivial; the struct exists so deadline math reads as intent.
struct Deadline {
  std::int64_t at_ns = 0;

  void arm(std::int64_t now, std::int64_t delay) noexcept {
    at_ns = now + delay;
  }
  /// Park the deadline in the far future: the owner intends to re-arm it
  /// once an in-progress operation (e.g. an on-the-wire transmit) finishes.
  void arm_never() noexcept { at_ns = INT64_MAX; }
  [[nodiscard]] bool expired(std::int64_t now) const noexcept {
    return now >= at_ns;
  }
};

}  // namespace sessmpi::base
