#pragma once

// Calibrated cost model for the simulated cluster.
//
// The paper's testbeds (Table I) are Cray XC40/XC30 machines with the Aries
// interconnect; the software stack was loaded from a slow NFS mount, which
// the authors call out as the reason for high absolute MPI_Init costs. We
// reproduce the *shape* of every measurement, not absolute numbers: the
// paper's second-scale startup costs are scaled down (to tens of ms) and its
// sub-microsecond per-message costs are scaled up (to hundreds of us), so
// that every modeled cost dominates the host scheduler's noise while the
// full benchmark suite still completes in seconds. Protocol effects (extra
// header bytes, extra round trips, server serialization) keep their ratios.
//
// Every injected delay in the runtime flows through this struct, so the
// calibration is auditable in one place and the `zero()` preset turns the
// simulator into a pure functional model for unit tests.

#include <algorithm>
#include <cstdint>

namespace sessmpi::base {

struct CostModel {
  // --- wire costs. The real hardware's sub-microsecond costs are scaled up
  // (~500x) so that modeled time dominates the host scheduler's wake-up
  // noise (tens of us on a loaded machine); every ratio the paper reports
  // is preserved. The model is LogGP-shaped and pipelined: the *sender*
  // pays only the per-message gap (occupancy: g + bytes/bandwidth + header
  // cost) and the one-way latency L elapses in flight — the receiver holds
  // each packet until its arrival deadline. Back-to-back windowed sends
  // therefore overlap their latencies (message rate ~ 1/gap), while a
  // ping-pong still pays L per direction — which is how real osu_mbw_mr
  // rates exceed 1/latency on Aries. ---------------------------------------
  std::int64_t shm_latency_ns = 200'000;   ///< intra-node one-way latency (L)
  std::int64_t shm_gap_ns = 20'000;        ///< intra-node per-message gap (g)
  double shm_bw_bytes_per_ns = 0.7;        ///< shared-memory copy bandwidth
  std::int64_t net_latency_ns = 600'000;   ///< inter-node one-way latency (L)
  std::int64_t net_gap_ns = 60'000;        ///< inter-node per-message gap (g)
  double net_bw_bytes_per_ns = 0.25;       ///< Aries-like link bandwidth
  std::int64_t per_header_byte_ns = 100;   ///< marginal cost per header byte

  // --- software per-message costs -----------------------------------------
  std::int64_t match_fast_path_ns = 4'000;   ///< 16-bit CID array index + O(1)
                                             ///< per-source match-bin lookup
  std::int64_t match_ext_lookup_ns = 60'000; ///< exCID hash lookup + bookkeeping
  std::int64_t ext_send_overhead_ns = 50'000; ///< building/attaching the
                                              ///< extended header on sends

  // --- startup costs (paper: seconds; here scaled to ~10s of ms so the
  // modeled costs dominate host-scheduler noise at high thread counts) ----
  std::int64_t nfs_load_base_ns = 15'000'000;    ///< first-proc-on-node library load
  std::int64_t nfs_load_per_node_ns = 2'500'000; ///< NFS contention per extra node
  std::int64_t proc_attach_ns = 300'000;         ///< per-proc runtime attach
  std::int64_t pmix_client_init_ns = 2'000'000;  ///< PMIx_Init RPC to local server
  std::int64_t world_objects_init_ns = 3'000'000; ///< build COMM_WORLD/SELF state
  std::int64_t session_resource_init_ns = 12'000'000; ///< first-session subsystem init
  std::int64_t session_handle_ns = 250'000;      ///< per-session handle setup

  // --- PMIx server-side costs ---------------------------------------------
  std::int64_t srv_rpc_ns = 400'000;            ///< client<->local-server RPC
  std::int64_t modex_per_peer_ns = 150'000;     ///< unpack/store one peer's
                                                ///< endpoint blob (eager modex
                                                ///< pays this n times at init;
                                                ///< lazy pays per first contact)
  std::int64_t fence_base_ns = 8'000'000;       ///< server all-to-all, base
  std::int64_t fence_per_node_ns = 4'000'000;   ///< per log2(servers) step
  std::int64_t group_construct_base_ns = 16'000'000; ///< PGCID group construct, base
  std::int64_t group_construct_per_node_ns = 8'000'000; ///< per log2(servers) step
  std::int64_t group_destruct_base_ns = 4'000'000;

  // --- derived helpers -----------------------------------------------------
  /// Sender-side occupancy per message: gap + serialization (bytes/bw) +
  /// header handling. This is the only wire cost charged synchronously on
  /// the sending thread; back-to-back sends pipeline their latencies.
  [[nodiscard]] std::int64_t wire_occupancy(bool same_node, std::size_t payload_bytes,
                                            std::size_t header_bytes) const noexcept {
    const double bw = same_node ? shm_bw_bytes_per_ns : net_bw_bytes_per_ns;
    const std::int64_t gap = same_node ? shm_gap_ns : net_gap_ns;
    return gap + static_cast<std::int64_t>(static_cast<double>(payload_bytes) / bw) +
           per_header_byte_ns * static_cast<std::int64_t>(header_bytes);
  }

  /// One-way flight latency: elapses between the sender finishing its
  /// occupancy charge and the receiver being allowed to dispatch the packet
  /// (the fabric stamps `Packet::arrival_ns` with it).
  [[nodiscard]] std::int64_t wire_latency(bool same_node) const noexcept {
    return same_node ? shm_latency_ns : net_latency_ns;
  }

  /// Full unpipelined per-message wire cost (occupancy + latency). Used for
  /// RTO sizing and anywhere a whole round's worth of wire time is modeled.
  [[nodiscard]] std::int64_t wire_cost(bool same_node, std::size_t payload_bytes,
                                       std::size_t header_bytes) const noexcept {
    return wire_latency(same_node) +
           wire_occupancy(same_node, payload_bytes, header_bytes);
  }

  /// Wall-clock cost of the slow NFS library load, per node, as a function of
  /// total node count (all nodes hammer the NFS server concurrently).
  [[nodiscard]] std::int64_t nfs_load_cost(int num_nodes) const noexcept {
    return nfs_load_base_ns +
           nfs_load_per_node_ns * static_cast<std::int64_t>(std::max(0, num_nodes - 1));
  }

  /// Cost of the inter-server portion of a PMIx fence over `num_nodes` servers
  /// (three-stage hierarchical: the all-to-all runs in ~log2(n) rounds).
  [[nodiscard]] std::int64_t fence_exchange_cost(int num_nodes) const noexcept {
    return num_nodes <= 1 ? fence_base_ns / 4
                          : fence_base_ns + fence_per_node_ns * log2_ceil(num_nodes);
  }

  /// Cost of the inter-server portion of a PMIx group construct. More
  /// expensive than a fence: membership lists are exchanged and a PGCID is
  /// allocated by the leader and broadcast.
  [[nodiscard]] std::int64_t group_exchange_cost(int num_nodes) const noexcept {
    return num_nodes <= 1
               ? group_construct_base_ns / 4
               : group_construct_base_ns +
                     group_construct_per_node_ns * log2_ceil(num_nodes);
  }

  static std::int64_t log2_ceil(int v) noexcept {
    std::int64_t r = 0;
    int x = 1;
    while (x < v) {
      x *= 2;
      ++r;
    }
    return r;
  }

  /// All-zero model: no injected delays. Unit tests use this preset so the
  /// simulator behaves as a pure functional model.
  static CostModel zero() noexcept {
    CostModel m;
    m.shm_latency_ns = m.net_latency_ns = m.per_header_byte_ns = 0;
    m.shm_gap_ns = m.net_gap_ns = 0;
    m.shm_bw_bytes_per_ns = m.net_bw_bytes_per_ns = 1e18;
    m.match_fast_path_ns = m.match_ext_lookup_ns = 0;
    m.ext_send_overhead_ns = 0;
    m.nfs_load_base_ns = m.nfs_load_per_node_ns = 0;
    m.proc_attach_ns = m.pmix_client_init_ns = 0;
    m.world_objects_init_ns = m.session_resource_init_ns = 0;
    m.session_handle_ns = 0;
    m.srv_rpc_ns = 0;
    m.modex_per_peer_ns = 0;
    m.fence_base_ns = m.fence_per_node_ns = 0;
    m.group_construct_base_ns = m.group_construct_per_node_ns = 0;
    m.group_destruct_base_ns = 0;
    return m;
  }

  /// Default calibrated model (Cray-Aries-like shapes, ms-scale startup).
  static CostModel calibrated() noexcept { return {}; }
};

}  // namespace sessmpi::base
