#include "sessmpi/base/cleanup.hpp"

#include <utility>

namespace sessmpi::base {

void CleanupRegistry::register_cleanup(std::string name, Callback cb) {
  std::lock_guard lock(mu_);
  callbacks_.emplace_back(std::move(name), std::move(cb));
}

std::size_t CleanupRegistry::run_all() {
  std::vector<std::pair<std::string, Callback>> to_run;
  {
    std::lock_guard lock(mu_);
    to_run.swap(callbacks_);
  }
  for (auto it = to_run.rbegin(); it != to_run.rend(); ++it) {
    if (it->second) {
      it->second();
    }
  }
  return to_run.size();
}

std::size_t CleanupRegistry::size() const {
  std::lock_guard lock(mu_);
  return callbacks_.size();
}

std::vector<std::string> CleanupRegistry::names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(callbacks_.size());
  for (const auto& [name, cb] : callbacks_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace sessmpi::base
