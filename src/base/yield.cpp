#include "sessmpi/base/yield.hpp"

#include <thread>

namespace sessmpi::base {

namespace {
thread_local YieldFn tls_yield_fn = nullptr;
thread_local void* tls_yield_ctx = nullptr;
}  // namespace

void set_yield_hook(YieldFn fn, void* ctx) noexcept {
  tls_yield_fn = fn;
  tls_yield_ctx = ctx;
}

void clear_yield_hook() noexcept {
  tls_yield_fn = nullptr;
  tls_yield_ctx = nullptr;
}

bool cooperative() noexcept { return tls_yield_fn != nullptr; }

void try_yield() noexcept {
  if (tls_yield_fn != nullptr) {
    tls_yield_fn(tls_yield_ctx);
  } else {
    std::this_thread::yield();
  }
}

}  // namespace sessmpi::base
