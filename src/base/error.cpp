#include "sessmpi/base/error.hpp"

namespace sessmpi::base {

std::string_view err_class_name(ErrClass c) noexcept {
  switch (c) {
    case ErrClass::success: return "SESSMPI_SUCCESS";
    case ErrClass::buffer: return "SESSMPI_ERR_BUFFER";
    case ErrClass::count: return "SESSMPI_ERR_COUNT";
    case ErrClass::type: return "SESSMPI_ERR_TYPE";
    case ErrClass::tag: return "SESSMPI_ERR_TAG";
    case ErrClass::comm: return "SESSMPI_ERR_COMM";
    case ErrClass::rank: return "SESSMPI_ERR_RANK";
    case ErrClass::request: return "SESSMPI_ERR_REQUEST";
    case ErrClass::root: return "SESSMPI_ERR_ROOT";
    case ErrClass::group: return "SESSMPI_ERR_GROUP";
    case ErrClass::op: return "SESSMPI_ERR_OP";
    case ErrClass::topology: return "SESSMPI_ERR_TOPOLOGY";
    case ErrClass::dims: return "SESSMPI_ERR_DIMS";
    case ErrClass::arg: return "SESSMPI_ERR_ARG";
    case ErrClass::unknown: return "SESSMPI_ERR_UNKNOWN";
    case ErrClass::truncate: return "SESSMPI_ERR_TRUNCATE";
    case ErrClass::other: return "SESSMPI_ERR_OTHER";
    case ErrClass::intern: return "SESSMPI_ERR_INTERN";
    case ErrClass::in_status: return "SESSMPI_ERR_IN_STATUS";
    case ErrClass::pending: return "SESSMPI_ERR_PENDING";
    case ErrClass::info_key: return "SESSMPI_ERR_INFO_KEY";
    case ErrClass::info_value: return "SESSMPI_ERR_INFO_VALUE";
    case ErrClass::info_nokey: return "SESSMPI_ERR_INFO_NOKEY";
    case ErrClass::info: return "SESSMPI_ERR_INFO";
    case ErrClass::session: return "SESSMPI_ERR_SESSION";
    case ErrClass::proc_aborted: return "SESSMPI_ERR_PROC_ABORTED";
    case ErrClass::comm_revoked: return "SESSMPI_ERR_COMM_REVOKED";
    case ErrClass::rte_not_found: return "SESSMPI_RTE_ERR_NOT_FOUND";
    case ErrClass::rte_timeout: return "SESSMPI_RTE_ERR_TIMEOUT";
    case ErrClass::rte_proc_failed: return "SESSMPI_RTE_ERR_PROC_FAILED";
    case ErrClass::rte_bad_param: return "SESSMPI_RTE_ERR_BAD_PARAM";
    case ErrClass::rte_exists: return "SESSMPI_RTE_ERR_EXISTS";
    case ErrClass::rte_unreachable: return "SESSMPI_RTE_ERR_UNREACHABLE";
    case ErrClass::rte_not_supported: return "SESSMPI_RTE_ERR_NOT_SUPPORTED";
  }
  return "SESSMPI_ERR_INVALID_CLASS";
}

}  // namespace sessmpi::base
