#pragma once

// ULFM-style fault tolerance on top of the failure-containment layer.
//
// The core PML guarantees containment (§II-C: an operation pinned on a dead
// peer completes with rte_proc_failed instead of hanging). This subsystem
// adds *recovery*, following the User-Level Failure Mitigation proposal the
// way "Fault Awareness in the MPI 4.0 Session Model" frames it for
// Sessions: the application acknowledges failures, revokes the broken
// communicator, agrees on the surviving group, shrinks, and continues — or
// re-queries its session psets and rebuilds communicators the Sessions way.
//
// The entry points live on Communicator (comm.hpp):
//
//   get_failed() / ack_failed()  failure acknowledgment, backed by the
//                                fabric's ground truth plus PMIx
//                                proc_failed events
//   revoke() / is_revoked()      reliable revocation flood; pending and
//                                future operations complete with
//                                ErrClass::comm_revoked
//   agree(x)                     fault-tolerant agreement (bitwise AND),
//                                uniform across survivors, usable on a
//                                revoked communicator
//   shrink()                     agreement on the survivor set, then the
//                                regular exCID construction path over it
//
// Recovery traffic runs in the reserved FT tag space (tags <= kFtTagBase in
// detail/state.hpp) which revocation does not poison.
//
// Counters (base::counters()): ft.comms_revoked, ft.agrees,
// ft.agree_coordinator_deaths, ft.shrinks, ft.shrink_retries.

#include <cstdint>
#include <functional>

#include "sessmpi/comm.hpp"

namespace sessmpi::ft {

/// Library presence probe (the FT methods on Communicator are defined by
/// libsessmpi_ft; linking it is required to use them).
constexpr bool kAvailable = true;

/// Instrumentation points inside Communicator::agree, in protocol order.
/// Property tests inject a failure at each step and assert that every
/// survivor still decides the same value (uniformity under any single
/// failure timing — the ULFM agreement contract).
enum class AgreeStep : int {
  enter = 0,             ///< sequence number taken, before any traffic
  follower_pre_push,     ///< follower: about to push its contribution
  follower_post_push,    ///< follower: pushed, about to watch the coordinator
  coordinator_gathered,  ///< coordinator: all live contributions collected
  pre_flood,             ///< decided locally, before flooding the result
  mid_flood,             ///< after the first flood send, more pending
  post_flood,            ///< flood complete, about to return
  kNumSteps,
};

namespace testing {

/// Called at each AgreeStep with the caller's comm rank. Process-wide
/// (covers every rank thread); installed/cleared by tests. The hook may
/// throw to abort the agreement on that rank — e.g. after marking the rank
/// failed, to model a crash at exactly that protocol step.
using AgreeHook = std::function<void(AgreeStep, int)>;

/// Install (or, with nullptr, clear) the global agree hook. Not for
/// concurrent use with in-flight agreements from a *previous* hook.
void set_agree_hook(AgreeHook hook);

}  // namespace testing

}  // namespace sessmpi::ft
