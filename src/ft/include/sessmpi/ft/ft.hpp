#pragma once

// ULFM-style fault tolerance on top of the failure-containment layer.
//
// The core PML guarantees containment (§II-C: an operation pinned on a dead
// peer completes with rte_proc_failed instead of hanging). This subsystem
// adds *recovery*, following the User-Level Failure Mitigation proposal the
// way "Fault Awareness in the MPI 4.0 Session Model" frames it for
// Sessions: the application acknowledges failures, revokes the broken
// communicator, agrees on the surviving group, shrinks, and continues — or
// re-queries its session psets and rebuilds communicators the Sessions way.
//
// The entry points live on Communicator (comm.hpp):
//
//   get_failed() / ack_failed()  failure acknowledgment, backed by the
//                                fabric's ground truth plus PMIx
//                                proc_failed events
//   revoke() / is_revoked()      reliable revocation flood; pending and
//                                future operations complete with
//                                ErrClass::comm_revoked
//   agree(x)                     fault-tolerant agreement (bitwise AND),
//                                uniform across survivors, usable on a
//                                revoked communicator
//   shrink()                     agreement on the survivor set, then the
//                                regular exCID construction path over it
//
// Recovery traffic runs in the reserved FT tag space (tags <= kFtTagBase in
// detail/state.hpp) which revocation does not poison.
//
// Counters (base::counters()): ft.comms_revoked, ft.agrees,
// ft.agree_coordinator_deaths, ft.shrinks, ft.shrink_retries.

#include <cstdint>

#include "sessmpi/comm.hpp"

namespace sessmpi::ft {

/// Library presence probe (the FT methods on Communicator are defined by
/// libsessmpi_ft; linking it is required to use them).
constexpr bool kAvailable = true;

}  // namespace sessmpi::ft
