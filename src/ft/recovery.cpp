// Failure acknowledgment, revocation, and shrink (ULFM-style recovery).
//
// Shrink builds on two uniformity guarantees of the lower layers:
//  - agree() (agree.cpp) delivers the same survivor mask to every survivor;
//  - the PMIx collective engine aborts a PGCID acquisition with
//    rte_proc_failed for *all* live participants when any participant dies
//    (late arrivals observe the same abort), so every survivor retries the
//    construction together instead of diverging.

#include "sessmpi/ft/ft.hpp"

#include "detail/state.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/obs/trace.hpp"
#include "sessmpi/pmix/client.hpp"

namespace sessmpi {

namespace {

const std::shared_ptr<detail::CommState>& ft_state(const Communicator& comm) {
  const auto& s = detail_unwrap(comm);
  if (!s || s->freed) {
    throw Error(ErrClass::comm, "null or freed communicator");
  }
  return s;
}

}  // namespace

std::vector<int> Communicator::get_failed() const {
  const auto& s = ft_state(*this);
  detail::ProcState& ps = *s->ps;
  // Deliver queued runtime events (proc_failed handlers run on our thread).
  ps.pmix().poll_events();
  fabric::Fabric& fab = ps.proc.cluster().fabric();
  std::vector<int> out;
  std::lock_guard lock(ps.mu);
  for (int r = 0; r < s->size(); ++r) {
    const base::Rank global = s->global_of(r);
    if (fab.is_failed(global) || ps.failure_notices.contains(global)) {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<int> Communicator::ack_failed() const {
  const auto& s = ft_state(*this);
  detail::ProcState& ps = *s->ps;
  std::vector<int> failed = get_failed();
  std::vector<int> newly;
  std::lock_guard lock(ps.mu);
  for (int r : failed) {
    if (s->acked.insert(r).second) {
      newly.push_back(r);
    }
  }
  return newly;
}

void Communicator::revoke() const {
  const auto& s = ft_state(*this);
  detail::ProcState& ps = *s->ps;
  OBS_INSTANT("ft.revoke", "ft");
  std::lock_guard lock(ps.mu);
  ps.revoke_comm_locked(s, /*flood=*/true);
}

bool Communicator::is_revoked() const {
  const auto& s = ft_state(*this);
  std::lock_guard lock(s->ps->mu);
  return s->revoked;
}

Communicator Communicator::shrink() const {
  const auto& s = ft_state(*this);
  detail::ProcState& ps = *s->ps;
  fabric::Fabric& fab = ps.proc.cluster().fabric();
  base::counters().add("ft.shrinks");
  OBS_SPAN("ft.shrink", "ft");
  const int n = s->size();

  // Fold everything we already know into the acknowledged set; from here on
  // new deaths surface as agreement exclusions or construction aborts.
  (void)ack_failed();

  for (int attempt = 0;; ++attempt) {
    // 1. Agree on the survivor set, 64 members per agreement word: a bit
    // survives the AND only if *no* survivor knows that member dead.
    std::uint32_t seq0;
    {
      std::lock_guard lock(ps.mu);
      seq0 = s->ft_seq;  // lockstep across survivors; names the attempt
    }
    std::vector<std::uint64_t> mask(static_cast<std::size_t>((n + 63) / 64));
    for (int r = 0; r < n; ++r) {
      if (!fab.is_failed(s->global_of(r))) {
        mask[static_cast<std::size_t>(r / 64)] |= 1ull << (r % 64);
      }
    }
    for (auto& word : mask) {
      word = agree(word);
    }

    std::vector<base::Rank> globals;
    globals.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      if ((mask[static_cast<std::size_t>(r / 64)] >> (r % 64)) & 1u) {
        globals.push_back(s->global_of(r));
      }
    }

    // 2. Regular exCID construction over the survivors. A death inside the
    // PGCID collective aborts uniformly (rte_proc_failed for everyone), so
    // all survivors loop back and re-agree together.
    auto pgcid = ps.pmix().acquire_pgcid(
        globals, "shrink:" + s->excid_space.id().str() + ":" +
                     std::to_string(seq0) + ":" + std::to_string(attempt));
    if (!pgcid.ok()) {
      base::counters().add("ft.shrink_retries");
      continue;
    }
    {
      std::lock_guard lock(ps.mu);
      ++ps.pgcids;
    }
    auto child = ps.register_comm(Group::of(std::move(globals)),
                                  ExCidSpace::fresh(pgcid.value()),
                                  /*uses_excid=*/true, std::nullopt);
    child->errh = s->errh;
    child->comm_name = s->comm_name + "(shrink)";
    return detail_wrap(std::move(child));
  }
}

}  // namespace sessmpi
