// Fault-tolerant agreement (MPIX_Comm_agree flavour).
//
// Coordinator protocol with result flooding, uniform across survivors:
//
//  - The coordinator is the lowest-ranked live member. Fabric failure flags
//    are monotonic and globally consistent, so local views of "lowest live"
//    only ever move forward and all survivors converge on the same rank.
//  - Followers push their contribution to the coordinator and watch it with
//    a specific-source receive — the failure sweep completes that watch
//    with rte_proc_failed if the coordinator dies, triggering a re-push to
//    the next coordinator.
//  - The coordinator gathers one contribution per live member (dead
//    members' receives complete via the sweep and are excluded), ANDs them,
//    and floods the result to every live member.
//  - Every rank that decides floods the result before returning, and a
//    member that already decided never re-contributes: a new coordinator
//    blocked on a decided member's contribution is instead unblocked by
//    that member's flood and *adopts* the flooded value. This keeps the
//    decision uniform across coordinator deaths.
//
// All traffic runs on FT tags (<= kFtTagBase), so agreement also works on a
// revoked communicator — ULFM's carve-out for recovery operations.

#include <algorithm>
#include <mutex>

#include "detail/state.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/ft/ft.hpp"
#include "sessmpi/obs/postmortem.hpp"
#include "sessmpi/obs/trace.hpp"

namespace sessmpi {

namespace {

std::mutex g_agree_hook_mu;
ft::testing::AgreeHook g_agree_hook;

/// Fire the instrumentation hook for `step` (no-op unless a test installed
/// one). Must be called with ps.mu NOT held: the hook may throw or issue
/// failure injection that takes cluster-level locks.
[[maybe_unused]] const char* step_name(ft::AgreeStep step) {
  switch (step) {
    case ft::AgreeStep::enter:
      return "ft.agree.enter";
    case ft::AgreeStep::follower_pre_push:
      return "ft.agree.follower_pre_push";
    case ft::AgreeStep::follower_post_push:
      return "ft.agree.follower_post_push";
    case ft::AgreeStep::coordinator_gathered:
      return "ft.agree.coordinator_gathered";
    case ft::AgreeStep::pre_flood:
      return "ft.agree.pre_flood";
    case ft::AgreeStep::mid_flood:
      return "ft.agree.mid_flood";
    case ft::AgreeStep::post_flood:
      return "ft.agree.post_flood";
    case ft::AgreeStep::kNumSteps:
      break;
  }
  return "ft.agree.step";
}

void hook(ft::AgreeStep step, int me) {
  // The AgreeStep hook doubles as the trace probe: each protocol step is
  // an instant on the caller's track, so a merged trace shows where every
  // survivor was when a failure hit.
  OBS_INSTANT_ARG(step_name(step), "ft", static_cast<std::uint64_t>(me));
  ft::testing::AgreeHook h;
  {
    std::lock_guard lock(g_agree_hook_mu);
    h = g_agree_hook;
  }
  if (h) {
    h(step, me);
  }
}

/// Remove any of `reqs` still sitting in the posted queue (their receive
/// buffers live on our stack frame; a late match after return would write
/// through a dangling pointer).
void scrub_posted(detail::ProcState& ps,
                  const std::shared_ptr<detail::CommState>& s,
                  const std::vector<detail::RequestPtr>& reqs) {
  std::lock_guard lock(ps.mu);
  s->posted.erase_if([&](const detail::RequestPtr& p) {
    return std::find(reqs.begin(), reqs.end(), p) != reqs.end();
  });
}

}  // namespace

std::uint64_t Communicator::agree(std::uint64_t contribution) const {
  const auto& s = detail_unwrap(*this);
  if (!s || s->freed) {
    throw Error(ErrClass::comm, "null or freed communicator");
  }
  detail::ProcState& ps = *s->ps;
  fabric::Fabric& fab = ps.proc.cluster().fabric();
  base::counters().add("ft.agrees");
  OBS_SPAN_ARG("ft.agree", "ft", contribution);
  // One flow per participant: every vote push and result flood this rank
  // sends carries the same span id, so the merged trace draws arrows from
  // this agree slice into the coordinator's match and every flood target.
  std::uint64_t agree_flow = 0;
  if (obs::Tracer::instance().enabled()) {
    agree_flow = obs::Tracer::next_span_id();
    OBS_FLOW_START("ft.agree", "ft", agree_flow, contribution);
  }
  obs::ScopedFlowContext agree_flow_scope(agree_flow);

  const int n = s->size();
  const int me = s->myrank;

  std::uint32_t seq;
  {
    std::lock_guard lock(ps.mu);
    seq = s->ft_seq++;
    // Scrub leftovers of completed FT collectives (late result floods):
    // older seq numbers map to strictly greater (less negative) tags.
    const int newest_current = detail::ft_tag(seq, 0);
    s->unexpected.erase_if([&](const fabric::Packet& p) {
      return detail::is_ft_tag(p.match.tag) && p.match.tag > newest_current;
    });
  }
  const int tag_contrib = detail::ft_tag(seq, 1);
  const int tag_result = detail::ft_tag(seq, 2);

  hook(ft::AgreeStep::enter, me);

  const auto lowest_live = [&] {
    for (int r = 0; r < n; ++r) {
      if (!fab.is_failed(s->global_of(r))) {
        return r;
      }
    }
    return me;
  };

  std::vector<detail::RequestPtr> cleanup;

  // Persistent watcher: any decider may flood the result at any time.
  std::uint64_t flooded = 0;
  detail::RequestPtr result_any = ps.irecv_impl(
      s, &flooded, 1, datatype_of<std::uint64_t>(), any_source, tag_result);
  cleanup.push_back(result_any);

  std::uint64_t decided = contribution;
  try {
  for (;;) {
    if (result_any->done()) {
      decided = flooded;
      break;
    }
    const int coord = lowest_live();
    if (coord == me) {
      // Gather one contribution per live member. A member that dies midway
      // completes its receive through the failure sweep (excluded); a
      // member that already decided floods instead of contributing, which
      // fires result_any and we adopt its value.
      std::vector<detail::RequestPtr> recvs(static_cast<std::size_t>(n));
      std::vector<std::uint64_t> contribs(static_cast<std::size_t>(n), 0);
      for (int r = 0; r < n; ++r) {
        if (r == me || fab.is_failed(s->global_of(r))) {
          continue;
        }
        recvs[static_cast<std::size_t>(r)] =
            ps.irecv_impl(s, &contribs[static_cast<std::size_t>(r)], 1,
                          datatype_of<std::uint64_t>(), r, tag_contrib);
        cleanup.push_back(recvs[static_cast<std::size_t>(r)]);
      }
      ps.progress_until([&] {
        if (result_any->done()) {
          return true;
        }
        for (const auto& r : recvs) {
          if (r && !r->done()) {
            return false;
          }
        }
        return true;
      });
      if (result_any->done()) {
        decided = flooded;
      } else {
        for (int r = 0; r < n; ++r) {
          const auto& req = recvs[static_cast<std::size_t>(r)];
          if (req && req->status.error == ErrClass::success) {
            decided &= contribs[static_cast<std::size_t>(r)];
          }
        }
      }
      hook(ft::AgreeStep::coordinator_gathered, me);
      break;
    }

    // Follower: push the contribution (eager — completes locally even if
    // the coordinator is already gone) and watch the coordinator.
    hook(ft::AgreeStep::follower_pre_push, me);
    ps.isend_impl(s, &contribution, 1, datatype_of<std::uint64_t>(), coord,
                  tag_contrib, /*sync=*/false);
    hook(ft::AgreeStep::follower_post_push, me);
    std::uint64_t watched = 0;
    detail::RequestPtr watch = ps.irecv_impl(s, &watched, 1,
                                             datatype_of<std::uint64_t>(),
                                             coord, tag_result);
    cleanup.push_back(watch);
    ps.progress_until([&] { return result_any->done() || watch->done(); });
    if (result_any->done()) {
      decided = flooded;
      break;
    }
    if (watch->status.error == ErrClass::success) {
      // The flood from the coordinator matched the specific-source watch
      // (possible when result_any already fired for an earlier packet...
      // it has not here, but a direct match is equivalent).
      decided = watched;
      break;
    }
    // Coordinator died; converge on the next lowest live rank. This is the
    // closest thing the protocol has to an "agreement timeout" (there is no
    // timer — the failure sweep completes the watch), so it doubles as a
    // flight-recorder trigger.
    base::counters().add("ft.agree_coordinator_deaths");
    obs::trigger_postmortem("agree_coordinator_death");
  }
  } catch (...) {
    // A throw mid-protocol (self marked failed, cluster abort, or a test
    // hook modeling a crash) must not leave posted receives pointing at
    // this dying stack frame.
    scrub_posted(ps, s, cleanup);
    throw;
  }

  scrub_posted(ps, s, cleanup);

  // Flood the decision to every live member before returning, so survivors
  // that have not decided yet can adopt it even if we (or the coordinator)
  // die right after returning.
  hook(ft::AgreeStep::pre_flood, me);
  bool flood_first = true;
  for (int r = 0; r < n; ++r) {
    if (r == me || fab.is_failed(s->global_of(r))) {
      continue;
    }
    ps.isend_impl(s, &decided, 1, datatype_of<std::uint64_t>(), r, tag_result,
                  /*sync=*/false);
    if (flood_first) {
      flood_first = false;
      hook(ft::AgreeStep::mid_flood, me);
    }
  }
  hook(ft::AgreeStep::post_flood, me);
  return decided;
}

namespace ft::testing {

void set_agree_hook(AgreeHook new_hook) {
  std::lock_guard lock(g_agree_hook_mu);
  g_agree_hook = std::move(new_hook);
}

}  // namespace ft::testing

}  // namespace sessmpi
