#pragma once

// Redundancy-set erasure codecs for src/ckpt (SCR-style redundancy sets).
//
// Ranks of the saving communicator are partitioned into consecutive sets
// of g = k + m members. Within a set, each member's serialized snapshot
// blob is padded to k equal chunks, and the set's chunks are arranged into
// g rotated stripes of k data chunks + m parity chunks — one chunk per
// member per stripe (the RAID-5 rotation, generalized):
//
//   stripe s: data chunk j   lives on member (s + j) mod g      (j < k)
//             parity chunk i lives on member (s + k + i) mod g  (i < m)
//
// Member r therefore contributes its own chunk j to stripe (r - j) mod g
// and stores m parity chunks of ~blob/k bytes each — redundancy cost m/k
// of a full partner copy. Losing any <= m members loses at most m chunks
// per stripe, which an MDS code recovers from the survivors; the XOR codec
// is the m = 1 (RAID-5) instance, the Reed-Solomon codec the general one
// (systematic Cauchy code over GF(2^8), see base/gf256.hpp).
//
// Tail sets smaller than k + m degrade gracefully: a set of g' members
// uses m' = min(m, g' - 1) parities over k' = g' - m' data chunks (a
// 2-member RS set is plain duplication; a 1-member set has no redundancy).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sessmpi::ckpt {

/// Redundancy scheme for the in-memory (level-2) checkpoint copies.
enum class Scheme {
  partner,       ///< full copy on (r + offset) mod n — SCR PARTNER
  xor_parity,    ///< rotated XOR sets (RAID-5): m = 1 per set
  reed_solomon,  ///< rotated Reed-Solomon sets: any <= m failures per set
};

/// One redundancy set: `size` consecutive comm ranks starting at `first`,
/// striped as `data` + `parity` chunks (data + parity == size).
struct SetLayout {
  int first = 0;
  int size = 0;
  int data = 0;
  int parity = 0;

  [[nodiscard]] int member_of(int comm_rank) const noexcept {
    return comm_rank - first;
  }
  /// Member index holding data chunk j of stripe s.
  [[nodiscard]] int data_member(int s, int j) const noexcept {
    return (s + j) % size;
  }
  /// Member index holding parity chunk i of stripe s.
  [[nodiscard]] int parity_member(int s, int i) const noexcept {
    return (s + data + i) % size;
  }
  /// Stripe that member `idx`'s own chunk j belongs to.
  [[nodiscard]] int stripe_of_chunk(int idx, int j) const noexcept {
    return (idx - j + size) % size;
  }
  /// Parity index member `idx` holds in stripe s, or -1 if it holds a data
  /// chunk there (every member holds exactly one chunk of every stripe).
  [[nodiscard]] int parity_index(int s, int idx) const noexcept {
    const int pos = (idx - s + size) % size;
    return pos >= data ? pos - data : -1;
  }
};

/// The set containing `comm_rank` when `n` ranks are grouped into sets of
/// (k data + m parity). The tail set shrinks as documented above.
[[nodiscard]] SetLayout set_layout(int n, int comm_rank, int k, int m);

/// Stripe-level erasure codec: k data chunks, m parity chunks, all of one
/// length. Stateless and thread-safe.
class SetCodec {
 public:
  SetCodec(int k, int m) : k_(k), m_(m) {}
  virtual ~SetCodec() = default;

  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] int m() const noexcept { return m_; }

  /// Parity chunk `pi` of one stripe from its k data chunks.
  virtual void encode(int pi, const std::byte* const* data, std::size_t len,
                      std::byte* out) const = 0;

  /// Reconstruct the missing data chunks of one stripe in place.
  /// `data[j]` are the k data chunk buffers; `data_ok[j]` marks which ones
  /// survived (missing ones are overwritten with the reconstruction).
  /// `parity[i]` is the i-th parity chunk or nullptr if lost. Returns
  /// false when more data chunks are missing than parity chunks survive
  /// (beyond the code's tolerance) — nothing is written in that case.
  virtual bool reconstruct(std::byte* const* data, const bool* data_ok,
                           const std::byte* const* parity,
                           std::size_t len) const = 0;

 private:
  int k_;
  int m_;
};

/// Codec for `scheme` (xor_parity forces m = 1; partner has no codec and
/// returns nullptr). Throws Error(arg) on invalid (k, m): k < 1, m < 0,
/// or k + m > 254 (the Cauchy evaluation-point budget in GF(2^8)).
std::unique_ptr<SetCodec> make_codec(Scheme scheme, int k, int m);

}  // namespace sessmpi::ckpt
