#pragma once

// Checkpoint-interval planner (Young/Daly). The planner turns two measured
// quantities — mean time between failures as observed by the workload
// (e.g. under the sim's chaos schedule) and the EWMA cost of a coordinated
// save — into the optimal checkpoint interval:
//
//   Young:  tau = sqrt(2 * delta * M)
//   Daly:   tau = sqrt(2 * delta * M) * (1 + (1/3) * sqrt(delta / (2M))
//                                          + (1/9) * (delta / (2M))) - delta
//           (delta < 2M; degenerates to tau = M beyond that)
//
// with delta = save cost and M = MTBF, both in nanoseconds.
//
// One process-wide planner instance (`planner()`) aggregates failures from
// every rank of the simulated cluster — MTBF is a system property, not a
// per-rank one. It is wired into the MPI_T namespace:
//
//   gauges  ckpt.planner.mtbf_ns, ckpt.planner.interval_ns,
//           ckpt.planner.save_cost_ns
//   counter ckpt.planner.failures
//   cvars   ckpt.interval.mode      "fixed" | "planned"
//           ckpt.interval.fixed_ns  fixed-mode interval (also the planned-
//                                   mode fallback until enough failures)
//           ckpt.planner.model      "young" | "daly"
//
// so a soak test can A/B fixed vs planned cadence by flipping cvars.

#include <cstdint>

namespace sessmpi::ckpt {

class IntervalPlanner {
 public:
  /// Record an observed failure (rank death detected by the workload or
  /// the chaos schedule) at absolute time `now_ns`. Thread-safe.
  void note_failure(std::int64_t now_ns);

  /// Record the measured cost of one coordinated save (EWMA, alpha 1/4).
  void note_save_cost(std::int64_t cost_ns);

  /// Mean time between observed failures; 0 until two failures were seen.
  [[nodiscard]] std::int64_t mtbf_ns() const;

  [[nodiscard]] std::int64_t save_cost_ns() const;

  /// Young/Daly interval from the current estimates (model per the
  /// `ckpt.planner.model` cvar); 0 while MTBF or save cost is unknown.
  [[nodiscard]] std::int64_t planned_interval_ns() const;

  /// The interval the `ckpt.interval.*` cvars currently ask for: the fixed
  /// interval in "fixed" mode, the planned one (with fixed fallback) in
  /// "planned" mode. 0 = no time-based cadence configured.
  [[nodiscard]] std::int64_t effective_interval_ns() const;

  [[nodiscard]] std::uint64_t failures() const;

  /// Forget all measurements (tests isolate themselves with this).
  void reset();

  /// Pure planner math, exposed for unit tests.
  static std::int64_t young(std::int64_t save_cost_ns, std::int64_t mtbf_ns);
  static std::int64_t daly(std::int64_t save_cost_ns, std::int64_t mtbf_ns);
};

/// The process-wide planner (created on first use, registered with the
/// obs pvar/cvar namespace, immortal).
IntervalPlanner& planner();

}  // namespace sessmpi::ckpt
