#pragma once

// SCR-style multilevel checkpoint/restart on top of the fault-tolerance
// layer (src/ft) and the Sessions pset machinery.
//
// Applications register named datasets (a pointer + byte count per rank);
// `save(comm)` then takes a *coordinated* in-memory checkpoint:
//
//   1. snapshot every registered dataset into a staging epoch,
//   2. (optionally) exchange the serialized snapshot with a partner rank —
//      rank r sends to (r+offset) mod n and holds a redundant copy for
//      (r-offset) mod n, SCR's PARTNER scheme,
//   3. commit the epoch through an agree()-backed vote: each rank
//      contributes ~0 on success or ~1 on any local failure; bit 0 of the
//      AND decides commit/abort *uniformly* across survivors,
//   4. publish the committed epoch through PMIx (`ckpt.<name>.epoch`) and
//      (optionally) spill the snapshot to the shared SimFs — SCR's
//      filesystem level, the copy of last resort.
//
// A revocation of the communicator mid-save invalidates the in-flight
// epoch (via Communicator::on_revoke) and the save completes with
// Error(comm_revoked) on every rank, previous epochs intact.
//
// After failures the application shrinks and calls `restore(new_comm)`:
// survivors agree (allreduce-min) on the newest epoch everyone committed,
// reload their own datasets bitwise, and *adopt* the shards of dead
// members — from the partner copy when the partner survived (counter
// ckpt.partner_rebuilds), else from the filesystem spill (counter
// ckpt.fs_rebuilds). A shard with no surviving copy fails the restore
// uniformly on every rank.
//
// Counters (base::counters()): ckpt.saves, ckpt.aborted_saves,
// ckpt.save_bytes, ckpt.restores, ckpt.restore_bytes,
// ckpt.partner_rebuilds, ckpt.fs_rebuilds, ckpt.spills.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sessmpi/base/topology.hpp"
#include "sessmpi/comm.hpp"

namespace sessmpi::ckpt {

struct Config {
  /// Keep a redundant copy of each rank's snapshot on a partner rank.
  bool partner_copy = true;
  /// Partner distance: rank r's copy lives on (r + partner_offset) mod n.
  /// Use >= procs-per-node to survive whole-node failures.
  int partner_offset = 1;
  /// Also write each rank's snapshot to the shared SimFs (slowest, most
  /// durable level — survives the partner dying with the owner).
  bool spill_to_fs = false;
  /// SimFs path prefix for spilled snapshots.
  std::string fs_prefix = "/ckpt/";
  /// Committed epochs retained in memory (older ones are pruned).
  std::size_t keep_epochs = 2;
};

/// A dataset shard recovered on behalf of a dead member.
struct Shard {
  base::Rank owner = -1;   ///< global rank that saved the shard
  std::string dataset;     ///< registered dataset name
  std::vector<std::byte> bytes;
};

struct RestoreResult {
  std::uint64_t epoch = 0;      ///< epoch everyone restored from
  std::vector<Shard> adopted;   ///< shards this rank now holds for the dead
  int from_fs = 0;              ///< adopted shards that came from the spill
};

/// Per-rank checkpoint manager. One instance per rank, persisting across
/// communicator shrinks (the epochs live here, not on the communicator).
/// Not thread-safe: drive it from the owning rank thread.
class Checkpointer {
 public:
  /// `name` namespaces the PMIx keys and SimFs paths of this checkpoint
  /// set; every participating rank must use the same name and config.
  explicit Checkpointer(std::string name, Config cfg = {});

  /// Register (or re-point) a named dataset: `bytes` bytes at `data`,
  /// snapshotted on save and overwritten on restore. The pointer must stay
  /// valid across save/restore calls.
  void register_dataset(const std::string& dataset, void* data,
                        std::size_t bytes);

  /// Coordinated checkpoint over `comm` (collective). Returns the committed
  /// epoch number. Throws Error(comm_revoked) if the communicator is (or
  /// becomes) revoked mid-save, Error(rte_proc_failed) if a member failure
  /// aborts the vote; previous epochs are untouched either way.
  std::uint64_t save(const Communicator& comm);

  /// Collective restore over the (post-shrink) communicator: reload own
  /// datasets from the newest commonly-committed epoch and adopt dead
  /// members' shards. Throws Error(arg) when no epoch was ever committed
  /// and Error(rte_not_found) when a shard is unrecoverable — uniformly on
  /// every rank.
  RestoreResult restore(const Communicator& comm);

  /// Newest epoch this rank committed (0 = none yet).
  [[nodiscard]] std::uint64_t last_committed() const noexcept {
    return last_committed_;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  struct Dataset {
    void* data = nullptr;
    std::size_t bytes = 0;
  };
  /// One committed (or staging) checkpoint generation.
  struct Epoch {
    /// My datasets, snapshotted. Keyed by dataset name.
    std::map<std::string, std::vector<std::byte>> own;
    /// Partner copies held for other ranks, keyed by owner global rank:
    /// serialized snapshot blobs (decoded on demand at restore).
    std::map<base::Rank, std::vector<std::byte>> partner;
    /// Global ranks of the communicator at save time, by comm rank.
    std::vector<base::Rank> members;
  };

  [[nodiscard]] std::string fs_path(std::uint64_t epoch,
                                    base::Rank owner) const;

  std::string name_;
  Config cfg_;
  std::map<std::string, Dataset> datasets_;  // registration order irrelevant
  std::map<std::uint64_t, Epoch> epochs_;
  std::uint64_t last_committed_ = 0;
};

/// Serialize `{name -> bytes}` into one blob (length-prefixed entries).
std::vector<std::byte> encode_snapshot(
    const std::map<std::string, std::vector<std::byte>>& datasets);
/// Inverse of encode_snapshot. Throws Error(truncate) on a malformed blob.
std::map<std::string, std::vector<std::byte>> decode_snapshot(
    const std::vector<std::byte>& blob);

}  // namespace sessmpi::ckpt
