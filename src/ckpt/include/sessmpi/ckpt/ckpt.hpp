#pragma once

// SCR-style multilevel checkpoint/restart on top of the fault-tolerance
// layer (src/ft) and the Sessions pset machinery.
//
// Applications register named datasets (a pointer + byte count per rank);
// `save(comm)` then takes a *coordinated* in-memory checkpoint:
//
//   1. snapshot every registered dataset into a staging epoch,
//   2. add redundancy, per Config::scheme:
//        partner       — exchange the serialized snapshot with a partner
//                        rank: r sends to (r+offset) mod n and holds a
//                        redundant copy for (r-offset) mod n (SCR PARTNER);
//        xor_parity /  — SCR redundancy sets: ranks are grouped into sets
//        reed_solomon    of (set_data + set_parity) members, each member's
//                        blob is split into k chunks and the set computes
//                        rotated parity stripes (codec.hpp), so any <= m
//                        simultaneous deaths per set restore bitwise from
//                        parity at m/k of partner-copy's redundancy bytes,
//   3. fence the *previous* epoch's async filesystem drain, then commit
//      this epoch through an agree()-backed vote: each rank contributes ~0
//      on success or ~1 on any local failure; bit 0 of the AND decides
//      commit/abort *uniformly* across survivors — so a committed epoch N
//      implies epoch N-1 is FS-durable (or known-failed) everywhere,
//   4. publish the committed epoch through PMIx (`ckpt.<name>.epoch`) and
//      (optionally) spill the snapshot to the shared SimFs — SCR's
//      filesystem level, the copy of last resort. With async_spill the
//      spill is *enqueued* on a background drainer that overlaps compute:
//      chunked fault-injectable writes with exponential-backoff retries, a
//      trailing ".ok" durability marker written only after the final byte,
//      and a sticky first-failure cause. A rank that dies mid-drain leaves
//      no ".ok", so restore falls back to the previous durable epoch.
//
// A revocation of the communicator mid-save invalidates the in-flight
// epoch (via Communicator::on_revoke) and the save completes with
// Error(comm_revoked) on every rank, previous epochs intact.
//
// After failures the application shrinks and calls `restore(new_comm)`:
// survivors propose the newest epoch everyone committed (allreduce-min),
// then walk candidates downward until one passes a uniform allreduce-max
// recoverability vote. Survivors reload their own datasets bitwise and
// *adopt* the shards of dead members — decoded from set parity when the
// set lost <= m members (counter ckpt.parity_rebuilds), from the partner
// copy under the partner scheme (ckpt.partner_rebuilds), else from a
// durable (".ok"-marked) filesystem spill (ckpt.fs_rebuilds). A shard
// with no surviving copy in any candidate epoch fails the restore
// uniformly on every rank.
//
// Counters (base::counters()): ckpt.saves, ckpt.aborted_saves,
// ckpt.save_bytes, ckpt.redundancy_bytes, ckpt.restores,
// ckpt.restore_bytes, ckpt.partner_rebuilds, ckpt.parity_rebuilds,
// ckpt.fs_rebuilds, ckpt.spills, ckpt.spill_retries, ckpt.drain_failures.
// Histograms (obs::histogram): ckpt.encode_ns, ckpt.drain_ns.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sessmpi/base/topology.hpp"
#include "sessmpi/ckpt/codec.hpp"
#include "sessmpi/comm.hpp"

namespace sessmpi::prte {
class SimFs;
}

namespace sessmpi::ckpt {

struct Config {
  /// Redundancy scheme for the in-memory level (codec.hpp). partner uses
  /// partner_copy/partner_offset below; the erasure schemes use
  /// set_data/set_parity.
  Scheme scheme = Scheme::partner;
  /// Keep a redundant copy of each rank's snapshot on a partner rank
  /// (partner scheme only).
  bool partner_copy = true;
  /// Partner distance: rank r's copy lives on (r + partner_offset) mod n.
  /// Use >= procs-per-node to survive whole-node failures. An offset that
  /// is == 0 mod n would silently self-partner (no redundancy at all), so
  /// save() rejects it with Error(arg); use set_partner_offset() after a
  /// shrink changes n.
  int partner_offset = 1;
  /// Erasure-set shape: k data + m parity members per set. Any <= m
  /// simultaneous failures within one set restore from parity. Constraint
  /// beyond the codec's: k + m <= 31 (chunk-exchange tag budget).
  int set_data = 4;
  int set_parity = 2;
  /// Also write each rank's snapshot to the shared SimFs (slowest, most
  /// durable level — survives every in-memory copy dying at once).
  bool spill_to_fs = false;
  /// Spill through the background drain pipeline (overlaps compute; the
  /// next save's commit vote fences it). When false the spill is a
  /// synchronous durable write inside save(), as a lab control.
  bool async_spill = true;
  /// SimFs path prefix for spilled snapshots.
  std::string fs_prefix = "/ckpt/";
  /// Committed epochs retained in memory (older ones are pruned).
  std::size_t keep_epochs = 2;
  /// Drain pipeline write granularity (per try_write call).
  std::size_t spill_chunk_bytes = 64 * 1024;
  /// Transient-fault retries per chunk before the drain fails sticky.
  int spill_max_retries = 16;
};

/// A dataset shard recovered on behalf of a dead member.
struct Shard {
  base::Rank owner = -1;   ///< global rank that saved the shard
  std::string dataset;     ///< registered dataset name
  std::vector<std::byte> bytes;
};

struct RestoreResult {
  std::uint64_t epoch = 0;      ///< epoch everyone restored from
  std::vector<Shard> adopted;   ///< shards this rank now holds for the dead
  int from_fs = 0;              ///< adopted shards that came from the spill
  int from_parity = 0;          ///< adopted shards decoded from set parity
};

/// Per-rank checkpoint manager. One instance per rank, persisting across
/// communicator shrinks (the epochs live here, not on the communicator).
/// Not thread-safe: drive it from the owning rank thread (the background
/// drainer synchronizes internally).
class Checkpointer {
 public:
  /// `name` namespaces the PMIx keys and SimFs paths of this checkpoint
  /// set; every participating rank must use the same name and config.
  /// Throws Error(arg) on an invalid erasure-set shape.
  explicit Checkpointer(std::string name, Config cfg = {});

  /// Cancels any in-flight drain (a cooperatively dying rank leaves its
  /// current spill without a ".ok" marker — not durable) and joins the
  /// drainer thread.
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Register (or re-point) a named dataset: `bytes` bytes at `data`,
  /// snapshotted on save and overwritten on restore. The pointer must stay
  /// valid across save/restore calls.
  void register_dataset(const std::string& dataset, void* data,
                        std::size_t bytes);

  /// Coordinated checkpoint over `comm` (collective). Returns the committed
  /// epoch number. Throws Error(comm_revoked) if the communicator is (or
  /// becomes) revoked mid-save, Error(rte_proc_failed) if a member failure
  /// aborts the vote, Error(arg) if partner_offset self-partners on this
  /// communicator size; previous epochs are untouched either way.
  std::uint64_t save(const Communicator& comm);

  /// Collective restore over the (post-shrink) communicator: reload own
  /// datasets from the newest commonly-recoverable epoch and adopt dead
  /// members' shards. Throws Error(arg) when no epoch was ever committed
  /// and Error(rte_not_found) when no candidate epoch is recoverable —
  /// uniformly on every rank.
  RestoreResult restore(const Communicator& comm);

  /// Adjust the partner distance after a shrink changes the communicator
  /// size (epochs already saved keep the offset they were saved with).
  void set_partner_offset(int offset) noexcept { cfg_.partner_offset = offset; }

  /// Time-based cadence helper: true when the `ckpt.interval.*` cvars say
  /// a save is due at `now_ns` (always true when no interval is
  /// configured). Arms the next deadline when it fires.
  [[nodiscard]] bool should_save(std::int64_t now_ns);

  /// Block until every enqueued async spill reaches a terminal state
  /// (durable / failed). Returns true when all pending drains became
  /// durable. save() calls this before the commit vote; call it directly
  /// before a planned death to make the latest epoch FS-durable.
  bool drain_fence();

  /// Sticky first cause of the first failed drain ("" = none yet).
  [[nodiscard]] std::string drain_error() const;

  /// Cumulative ns the drainer spent writing / save() spent blocked in the
  /// pre-vote fence — the bench's overlap metric is 1 - fence/busy.
  [[nodiscard]] std::uint64_t drain_busy_ns() const;
  [[nodiscard]] std::uint64_t drain_fence_wait_ns() const;

  /// Newest epoch this rank committed (0 = none yet).
  [[nodiscard]] std::uint64_t last_committed() const noexcept {
    return last_committed_;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  struct Dataset {
    void* data = nullptr;
    std::size_t bytes = 0;
  };
  /// This rank's slice of the save-time erasure-set state: enough to
  /// recompute every transfer/decode deterministically at restore.
  struct SetState {
    SetLayout layout;
    std::uint64_t chunk_len = 0;
    /// Serialized-blob size per set member (member index order).
    std::vector<std::uint64_t> blob_sizes;
    /// Parity chunks this rank holds, keyed by stripe.
    std::map<int, std::vector<std::byte>> parity;
  };
  /// One committed (or staging) checkpoint generation.
  struct Epoch {
    /// My datasets, snapshotted. Keyed by dataset name.
    std::map<std::string, std::vector<std::byte>> own;
    /// Partner copies held for other ranks, keyed by owner global rank:
    /// serialized snapshot blobs (decoded on demand at restore).
    std::map<base::Rank, std::vector<std::byte>> partner;
    /// Global ranks of the communicator at save time, by comm rank.
    std::vector<base::Rank> members;
    /// Redundancy parameters *as saved* — restore follows these, not the
    /// current config, so a reconfiguration between epochs stays safe.
    Scheme scheme = Scheme::partner;
    int partner_off = 0;
    /// Configured set shape at save time (every rank can recompute any
    /// set's layout from these; `set` below only covers this rank's set).
    int set_k = 0;
    int set_m = 0;
    SetState set;
  };
  /// One queued/in-flight async spill.
  struct DrainJob {
    std::uint64_t epoch = 0;
    std::string path;
    std::vector<std::byte> blob;
    enum class State { staged, draining, durable, failed, cancelled };
    State state = State::staged;
    std::int32_t track = -1;  ///< rank track for span attribution
  };

  [[nodiscard]] std::string fs_path(std::uint64_t epoch,
                                    base::Rank owner) const;
  void spill_sync(prte::SimFs& fs, std::uint64_t epoch,
                  const std::vector<std::byte>& blob, base::Rank my_global);
  void spill_async(prte::SimFs& fs, std::uint64_t epoch,
                   std::vector<std::byte> blob, base::Rank my_global);
  void drain_loop();
  DrainJob::State drain_one(const DrainJob& job, std::string& cause);
  void remove_spill(prte::SimFs& fs, std::uint64_t epoch,
                    base::Rank my_global);

  std::string name_;
  Config cfg_;
  std::map<std::string, Dataset> datasets_;  // registration order irrelevant
  std::map<std::uint64_t, Epoch> epochs_;
  std::uint64_t last_committed_ = 0;
  std::int64_t next_due_ns_ = -1;  ///< should_save() deadline (-1 = unarmed)

  // --- async drain pipeline (drainer thread <-> rank thread) ---
  mutable std::mutex dmu_;
  std::condition_variable dcv_;
  std::deque<std::shared_ptr<DrainJob>> dqueue_;
  std::vector<std::shared_ptr<DrainJob>> dlive_;  ///< staged + draining
  bool drain_stop_ = false;
  std::string drain_first_cause_;
  std::uint64_t drain_busy_ns_ = 0;
  std::uint64_t drain_fence_wait_ns_ = 0;
  prte::SimFs* drain_fs_ = nullptr;  ///< captured at first async spill
  std::thread drainer_;
};

/// Serialize `{name -> bytes}` into one blob (length-prefixed entries).
std::vector<std::byte> encode_snapshot(
    const std::map<std::string, std::vector<std::byte>>& datasets);
/// Inverse of encode_snapshot. Throws Error(truncate) on a malformed blob.
/// Trailing bytes beyond the last entry (erasure-chunk padding) are
/// ignored.
std::map<std::string, std::vector<std::byte>> decode_snapshot(
    const std::vector<std::byte>& blob);

}  // namespace sessmpi::ckpt
