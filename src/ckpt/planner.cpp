// Young/Daly checkpoint-interval planner (see planner.hpp). All state
// lives behind one mutex in an immortal singleton; the obs gauges read
// through the same lock, so TSan sees a clean picture even while rank
// threads feed failures concurrently.

#include "sessmpi/ckpt/planner.hpp"

#include <cmath>
#include <mutex>
#include <string>

#include "sessmpi/base/error.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/obs/tvar.hpp"

namespace sessmpi::ckpt {

namespace {

struct PlannerState {
  std::mutex mu;
  std::uint64_t failures = 0;
  std::int64_t first_failure_ns = 0;
  std::int64_t last_failure_ns = 0;
  std::int64_t save_cost_ns = 0;  // EWMA, alpha = 1/4
  // Cvar-backed knobs.
  std::string mode = "fixed";
  std::string model = "young";
  std::int64_t fixed_ns = 0;
};

PlannerState& state() {
  static auto* s = new PlannerState();
  return *s;
}

void register_tvars(IntervalPlanner* p) {
  obs::register_pvar_gauge("ckpt.planner.mtbf_ns", [p] {
    return static_cast<std::uint64_t>(p->mtbf_ns());
  });
  obs::register_pvar_gauge("ckpt.planner.interval_ns", [p] {
    return static_cast<std::uint64_t>(p->effective_interval_ns());
  });
  obs::register_pvar_gauge("ckpt.planner.save_cost_ns", [p] {
    return static_cast<std::uint64_t>(p->save_cost_ns());
  });
  obs::register_cvar(
      "ckpt.interval.mode",
      "checkpoint cadence source: \"fixed\" (ckpt.interval.fixed_ns) or "
      "\"planned\" (Young/Daly from measured MTBF + save cost)",
      [] {
        std::lock_guard lk(state().mu);
        return state().mode;
      },
      [](const std::string& v) {
        if (v != "fixed" && v != "planned") {
          return false;
        }
        std::lock_guard lk(state().mu);
        state().mode = v;
        return true;
      });
  obs::register_cvar(
      "ckpt.interval.fixed_ns",
      "fixed checkpoint interval in ns (0 = no time-based cadence); also "
      "the planned-mode fallback until the planner has data",
      [] {
        std::lock_guard lk(state().mu);
        return std::to_string(state().fixed_ns);
      },
      [](const std::string& v) {
        try {
          const std::int64_t ns = std::stoll(v);
          if (ns < 0) {
            return false;
          }
          std::lock_guard lk(state().mu);
          state().fixed_ns = ns;
          return true;
        } catch (...) {
          return false;
        }
      });
  obs::register_cvar(
      "ckpt.planner.model",
      "interval model: \"young\" (sqrt(2*delta*M)) or \"daly\" "
      "(higher-order correction)",
      [] {
        std::lock_guard lk(state().mu);
        return state().model;
      },
      [](const std::string& v) {
        if (v != "young" && v != "daly") {
          return false;
        }
        std::lock_guard lk(state().mu);
        state().model = v;
        return true;
      });
}

}  // namespace

void IntervalPlanner::note_failure(std::int64_t now_ns) {
  {
    std::lock_guard lk(state().mu);
    PlannerState& s = state();
    if (s.failures == 0) {
      s.first_failure_ns = now_ns;
    }
    s.last_failure_ns = now_ns;
    s.failures += 1;
  }
  base::counters().add("ckpt.planner.failures");
}

void IntervalPlanner::note_save_cost(std::int64_t cost_ns) {
  if (cost_ns <= 0) {
    return;
  }
  std::lock_guard lk(state().mu);
  PlannerState& s = state();
  s.save_cost_ns =
      s.save_cost_ns == 0 ? cost_ns : (3 * s.save_cost_ns + cost_ns) / 4;
}

std::int64_t IntervalPlanner::mtbf_ns() const {
  std::lock_guard lk(state().mu);
  const PlannerState& s = state();
  if (s.failures < 2 || s.last_failure_ns <= s.first_failure_ns) {
    return 0;
  }
  return (s.last_failure_ns - s.first_failure_ns) /
         static_cast<std::int64_t>(s.failures - 1);
}

std::int64_t IntervalPlanner::save_cost_ns() const {
  std::lock_guard lk(state().mu);
  return state().save_cost_ns;
}

std::int64_t IntervalPlanner::young(std::int64_t save_cost_ns,
                                    std::int64_t mtbf_ns) {
  if (save_cost_ns <= 0 || mtbf_ns <= 0) {
    return 0;
  }
  return static_cast<std::int64_t>(std::sqrt(
      2.0 * static_cast<double>(save_cost_ns) * static_cast<double>(mtbf_ns)));
}

std::int64_t IntervalPlanner::daly(std::int64_t save_cost_ns,
                                   std::int64_t mtbf_ns) {
  if (save_cost_ns <= 0 || mtbf_ns <= 0) {
    return 0;
  }
  const double d = static_cast<double>(save_cost_ns);
  const double mtbf = static_cast<double>(mtbf_ns);
  if (d >= 2.0 * mtbf) {
    return mtbf_ns;  // checkpointing costs more than the work it protects
  }
  const double ratio = d / (2.0 * mtbf);
  const double tau = std::sqrt(2.0 * d * mtbf) *
                         (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
                     d;
  return tau > 0 ? static_cast<std::int64_t>(tau) : mtbf_ns;
}

std::int64_t IntervalPlanner::planned_interval_ns() const {
  std::string model;
  {
    std::lock_guard lk(state().mu);
    model = state().model;
  }
  const std::int64_t d = save_cost_ns();
  const std::int64_t m = mtbf_ns();
  return model == "daly" ? daly(d, m) : young(d, m);
}

std::int64_t IntervalPlanner::effective_interval_ns() const {
  std::string mode;
  std::int64_t fixed;
  {
    std::lock_guard lk(state().mu);
    mode = state().mode;
    fixed = state().fixed_ns;
  }
  if (mode == "planned") {
    const std::int64_t planned = planned_interval_ns();
    if (planned > 0) {
      return planned;
    }
  }
  return fixed;
}

std::uint64_t IntervalPlanner::failures() const {
  std::lock_guard lk(state().mu);
  return state().failures;
}

void IntervalPlanner::reset() {
  std::lock_guard lk(state().mu);
  PlannerState& s = state();
  s.failures = 0;
  s.first_failure_ns = 0;
  s.last_failure_ns = 0;
  s.save_cost_ns = 0;
}

IntervalPlanner& planner() {
  static IntervalPlanner* p = [] {
    auto* inst = new IntervalPlanner();
    register_tvars(inst);
    return inst;
  }();
  return *p;
}

}  // namespace sessmpi::ckpt
