// Reed-Solomon redundancy-set codec over GF(2^8): systematic Cauchy code
// (see base/gf256.hpp), parity i of a stripe is
//
//   p_i = sum_j cauchy(k, i, j) * d_j
//
// and reconstruction solves the e x e linear system the surviving parities
// impose on the e missing data chunks by Gaussian elimination over the
// field — any e <= m losses per stripe are recoverable because every
// square Cauchy submatrix is invertible.

#include <algorithm>
#include <vector>

#include "sessmpi/base/error.hpp"
#include "sessmpi/base/gf256.hpp"
#include "sessmpi/ckpt/codec.hpp"

namespace sessmpi::ckpt {

std::unique_ptr<SetCodec> make_xor_codec(int k);  // codec_xor.cpp

namespace {

namespace gf = base::gf256;

class RsCodec final : public SetCodec {
 public:
  RsCodec(int k, int m) : SetCodec(k, m) {}

  void encode(int pi, const std::byte* const* data, std::size_t len,
              std::byte* out) const override {
    std::fill(out, out + len, std::byte{0});
    for (int j = 0; j < k(); ++j) {
      gf::mul_add(out, data[j], len, gf::cauchy(k(), pi, j));
    }
  }

  bool reconstruct(std::byte* const* data, const bool* data_ok,
                   const std::byte* const* parity,
                   std::size_t len) const override {
    std::vector<int> missing;
    for (int j = 0; j < k(); ++j) {
      if (!data_ok[j]) {
        missing.push_back(j);
      }
    }
    if (missing.empty()) {
      return true;
    }
    std::vector<int> rows;  // surviving parity indices, first e of them
    for (int i = 0; i < m() && rows.size() < missing.size(); ++i) {
      if (parity[i] != nullptr) {
        rows.push_back(i);
      }
    }
    const std::size_t e = missing.size();
    if (rows.size() < e) {
      return false;
    }

    // rhs_r = p_{rows[r]} - sum_{j survives} C[rows[r]][j] * d_j; the
    // system A * x = rhs with A[r][c] = C[rows[r]][missing[c]] then yields
    // the missing chunks x.
    std::vector<std::vector<std::byte>> rhs(e, std::vector<std::byte>(len));
    std::vector<std::uint8_t> a(e * e);
    for (std::size_t r = 0; r < e; ++r) {
      std::copy(parity[rows[r]], parity[rows[r]] + len, rhs[r].data());
      for (int j = 0; j < k(); ++j) {
        if (data_ok[j]) {
          gf::mul_add(rhs[r].data(), data[j], len,
                      gf::cauchy(k(), rows[r], j));
        }
      }
      for (std::size_t c = 0; c < e; ++c) {
        a[r * e + c] = gf::cauchy(k(), rows[r], missing[c]);
      }
    }

    // Gaussian elimination to identity, mirroring every row op onto rhs.
    for (std::size_t col = 0; col < e; ++col) {
      std::size_t pivot = col;
      while (pivot < e && a[pivot * e + col] == 0) {
        ++pivot;
      }
      if (pivot == e) {
        return false;  // unreachable for a Cauchy system; belt-and-braces
      }
      if (pivot != col) {
        for (std::size_t c = 0; c < e; ++c) {
          std::swap(a[pivot * e + c], a[col * e + c]);
        }
        rhs[pivot].swap(rhs[col]);
      }
      const std::uint8_t pinv = gf::inv(a[col * e + col]);
      for (std::size_t c = 0; c < e; ++c) {
        a[col * e + c] = gf::mul(a[col * e + c], pinv);
      }
      for (std::size_t i = 0; i < len; ++i) {
        rhs[col][i] = static_cast<std::byte>(
            gf::mul(static_cast<std::uint8_t>(rhs[col][i]), pinv));
      }
      for (std::size_t r = 0; r < e; ++r) {
        if (r == col || a[r * e + col] == 0) {
          continue;
        }
        const std::uint8_t f = a[r * e + col];
        for (std::size_t c = 0; c < e; ++c) {
          a[r * e + c] ^= gf::mul(f, a[col * e + c]);
        }
        gf::mul_add(rhs[r].data(), rhs[col].data(), len, f);
      }
    }
    for (std::size_t c = 0; c < e; ++c) {
      std::copy(rhs[c].begin(), rhs[c].end(), data[missing[c]]);
    }
    return true;
  }
};

}  // namespace

std::unique_ptr<SetCodec> make_codec(Scheme scheme, int k, int m) {
  if (k < 1 || m < 0 || k + m > 254) {
    throw Error(ErrClass::arg,
                "ckpt: invalid redundancy set (need k >= 1, m >= 0, "
                "k + m <= 254)");
  }
  switch (scheme) {
    case Scheme::partner:
      return nullptr;
    case Scheme::xor_parity:
      return make_xor_codec(k);
    case Scheme::reed_solomon:
      return std::make_unique<RsCodec>(k, m);
  }
  throw Error(ErrClass::arg, "ckpt: unknown redundancy scheme");
}

}  // namespace sessmpi::ckpt
