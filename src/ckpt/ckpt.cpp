// Coordinated checkpoint/restart (see include/sessmpi/ckpt/ckpt.hpp).
//
// The partner exchange runs on dedicated checkpoint tags (detail::ckpt_tag,
// between the internal-collective and FT tag ranges). Those tags are
// deliberately *inside* the revoke poison set: a revocation mid-save
// completes the partner receives with comm_revoked, the rank votes abort,
// and the agree()-backed commit — which runs on FT tags and therefore works
// on the revoked communicator — aborts the epoch uniformly.

#include "sessmpi/ckpt/ckpt.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <utility>

#include "detail/state.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/obs/trace.hpp"
#include "sessmpi/ft/ft.hpp"
#include "sessmpi/op.hpp"

namespace sessmpi::ckpt {

namespace {

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t take_u64(const std::vector<std::byte>& in, std::size_t& pos) {
  if (pos + 8 > in.size()) {
    throw Error(ErrClass::truncate, "ckpt: snapshot blob truncated");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(in[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return v;
}

/// Drop any of `reqs` still sitting in the posted queue: their buffers live
/// in save()'s stack frame (same hazard agree.cpp scrubs against).
void scrub_posted(detail::ProcState& ps,
                  const std::shared_ptr<detail::CommState>& s,
                  const std::vector<detail::RequestPtr>& reqs) {
  std::lock_guard lock(ps.mu);
  s->posted.erase_if([&](const detail::RequestPtr& p) {
    return std::find(reqs.begin(), reqs.end(), p) != reqs.end();
  });
}

}  // namespace

std::vector<std::byte> encode_snapshot(
    const std::map<std::string, std::vector<std::byte>>& datasets) {
  std::vector<std::byte> out;
  put_u64(out, datasets.size());
  for (const auto& [name, bytes] : datasets) {
    put_u64(out, name.size());
    for (char c : name) {
      out.push_back(static_cast<std::byte>(c));
    }
    put_u64(out, bytes.size());
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  return out;
}

std::map<std::string, std::vector<std::byte>> decode_snapshot(
    const std::vector<std::byte>& blob) {
  std::map<std::string, std::vector<std::byte>> out;
  std::size_t pos = 0;
  const std::uint64_t count = take_u64(blob, pos);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = take_u64(blob, pos);
    if (pos + name_len > blob.size()) {
      throw Error(ErrClass::truncate, "ckpt: snapshot blob truncated");
    }
    std::string name(name_len, '\0');
    for (std::uint64_t j = 0; j < name_len; ++j) {
      name[j] = static_cast<char>(std::to_integer<std::uint8_t>(blob[pos + j]));
    }
    pos += name_len;
    const std::uint64_t data_len = take_u64(blob, pos);
    if (pos + data_len > blob.size()) {
      throw Error(ErrClass::truncate, "ckpt: snapshot blob truncated");
    }
    out.emplace(std::move(name),
                std::vector<std::byte>(blob.begin() + static_cast<long>(pos),
                                       blob.begin() +
                                           static_cast<long>(pos + data_len)));
    pos += data_len;
  }
  return out;
}

Checkpointer::Checkpointer(std::string name, Config cfg)
    : name_(std::move(name)), cfg_(std::move(cfg)) {
  if (cfg_.keep_epochs == 0) {
    cfg_.keep_epochs = 1;
  }
}

void Checkpointer::register_dataset(const std::string& dataset, void* data,
                                    std::size_t bytes) {
  if (data == nullptr && bytes != 0) {
    throw Error(ErrClass::buffer, "ckpt: null dataset pointer");
  }
  datasets_[dataset] = Dataset{data, bytes};
}

std::string Checkpointer::fs_path(std::uint64_t epoch, base::Rank owner) const {
  return cfg_.fs_prefix + name_ + "/e" + std::to_string(epoch) + "/r" +
         std::to_string(owner);
}

std::uint64_t Checkpointer::save(const Communicator& comm) {
  const auto& s = detail_unwrap(comm);
  if (!s || s->freed) {
    throw Error(ErrClass::comm, "null or freed communicator");
  }
  detail::ProcState& ps = *s->ps;
  const int n = s->size();
  const int me = s->myrank;
  const base::Rank my_global = s->global_of(me);
  OBS_SPAN("ckpt.save", "ckpt");

  // Stage 1: local snapshot. Nothing commits until the vote.
  Epoch staging;
  staging.members = comm.group().members();
  std::size_t own_bytes = 0;
  for (const auto& [dsname, ds] : datasets_) {
    const auto* p = static_cast<const std::byte*>(ds.data);
    staging.own.emplace(dsname, std::vector<std::byte>(p, p + ds.bytes));
    own_bytes += ds.bytes;
  }

  // A revocation observed at any point before the vote invalidates this
  // save; the flag outlives this frame (the observer may fire later, after
  // an abort already threw out of here).
  auto invalidated = std::make_shared<std::atomic<bool>>(false);
  const int obs_id =
      comm.on_revoke([invalidated] { invalidated->store(true); });
  struct ObserverGuard {
    const Communicator& comm;
    int id;
    ~ObserverGuard() {
      if (id != -1) {
        comm.remove_on_revoke(id);
      }
    }
  } obs_guard{comm, obs_id};

  bool ok = obs_id != -1;  // -1: already revoked when we attached

  std::uint32_t seq;
  {
    std::lock_guard lock(ps.mu);
    seq = s->ckpt_seq++;
  }

  // Stage 2: partner redundancy — send my serialized snapshot `offset`
  // ranks ahead, hold the snapshot of the rank `offset` behind.
  ::sessmpi::obs::Tracer::instance().begin("ckpt.partner_exchange", "ckpt");
  std::vector<std::byte> partner_blob;
  base::Rank partner_owner = -1;
  const int off = n > 0 ? ((cfg_.partner_offset % n) + n) % n : 0;
  if (ok && cfg_.partner_copy && off != 0) {
    const int to = (me + off) % n;
    const int from = (me - off + n) % n;
    const std::vector<std::byte> mine = encode_snapshot(staging.own);
    const std::uint64_t my_size = mine.size();
    std::uint64_t their_size = 0;

    std::vector<detail::RequestPtr> cleanup;
    try {
      detail::RequestPtr size_recv =
          ps.irecv_impl(s, &their_size, 1, datatype_of<std::uint64_t>(), from,
                        detail::ckpt_tag(seq, 0));
      cleanup.push_back(size_recv);
      ps.isend_impl(s, &my_size, 1, datatype_of<std::uint64_t>(), to,
                    detail::ckpt_tag(seq, 0), /*sync=*/false);
      ps.progress_until([&] { return size_recv->done(); });
      if (size_recv->status.error != ErrClass::success) {
        ok = false;
      } else {
        partner_blob.resize(their_size);
        detail::RequestPtr blob_recv = ps.irecv_impl(
            s, partner_blob.data(), static_cast<int>(their_size),
            datatype_of<std::byte>(), from, detail::ckpt_tag(seq, 1));
        cleanup.push_back(blob_recv);
        ps.isend_impl(s, mine.data(), static_cast<int>(mine.size()),
                      datatype_of<std::byte>(), to, detail::ckpt_tag(seq, 1),
                      /*sync=*/false);
        ps.progress_until([&] { return blob_recv->done(); });
        if (blob_recv->status.error != ErrClass::success) {
          ok = false;
        } else {
          partner_owner = staging.members[static_cast<std::size_t>(from)];
        }
      }
    } catch (...) {
      scrub_posted(ps, s, cleanup);
      throw;
    }
    scrub_posted(ps, s, cleanup);
  }

  if (invalidated->load()) {
    ok = false;
  }

  ::sessmpi::obs::Tracer::instance().end("ckpt.partner_exchange", "ckpt");
  // Stage 3: uniform commit/abort vote. agree() runs on FT tags, so the
  // vote reaches every survivor even on a revoked communicator; bit 0 of
  // the AND survives iff every rank voted commit.
  const std::uint64_t verdict = [&] {
    OBS_SPAN("ckpt.commit_vote", "ckpt");
    return comm.agree(ok ? ~0ull : ~1ull);
  }();
  if ((verdict & 1ull) == 0) {
    base::counters().add("ckpt.aborted_saves");
    if (invalidated->load() || comm.is_revoked()) {
      throw Error(ErrClass::comm_revoked,
                  "ckpt: save invalidated by communicator revocation");
    }
    throw Error(ErrClass::rte_proc_failed,
                "ckpt: save aborted (a member voted abort)");
  }

  // Stage 4: commit locally, publish the epoch through PMIx, spill.
  const std::uint64_t epoch = last_committed_ + 1;
  Epoch& committed = epochs_[epoch];
  committed = std::move(staging);
  if (partner_owner != -1) {
    committed.partner.emplace(partner_owner, std::move(partner_blob));
  }
  last_committed_ = epoch;
  while (epochs_.size() > cfg_.keep_epochs) {
    if (cfg_.spill_to_fs) {
      ps.proc.cluster().fs().remove(fs_path(epochs_.begin()->first, my_global));
    }
    epochs_.erase(epochs_.begin());
  }

  ps.pmix().put("ckpt." + name_ + ".epoch", epoch);
  ps.pmix().commit();

  if (cfg_.spill_to_fs) {
    OBS_SPAN("ckpt.spill", "ckpt");
    const std::vector<std::byte> blob = encode_snapshot(committed.own);
    const std::string path = fs_path(epoch, my_global);
    ps.proc.cluster().fs().set_size(path, 0);
    ps.proc.cluster().fs().write(path, 0, blob.data(), blob.size());
    base::counters().add("ckpt.spills");
  }

  base::counters().add("ckpt.saves");
  base::counters().add("ckpt.save_bytes", own_bytes);
  return epoch;
}

RestoreResult Checkpointer::restore(const Communicator& comm) {
  const auto& s = detail_unwrap(comm);
  if (!s || s->freed) {
    throw Error(ErrClass::comm, "null or freed communicator");
  }
  detail::ProcState& ps = *s->ps;
  base::counters().add("ckpt.restores");
  OBS_SPAN("ckpt.restore", "ckpt");

  // Agree on the newest epoch *everyone* committed. Commit votes are
  // uniform, so in practice all ranks agree already; min() also absorbs a
  // rank that aborted its very first save (last_committed_ == 0 aborts the
  // whole restore below, uniformly).
  const std::uint64_t mine = last_committed_;
  std::uint64_t epoch = 0;
  comm.allreduce(&mine, &epoch, 1, datatype_of<std::uint64_t>(), Op::min());
  if (epoch == 0) {
    throw Error(ErrClass::arg, "ckpt: restore with no committed epoch");
  }

  // Uniform availability check before touching any registered buffer.
  const auto it = epochs_.find(epoch);
  const std::uint64_t missing = it == epochs_.end() ? 1 : 0;
  std::uint64_t any_missing = 0;
  comm.allreduce(&missing, &any_missing, 1, datatype_of<std::uint64_t>(),
                 Op::max());
  if (any_missing != 0) {
    throw Error(ErrClass::rte_not_found,
                "ckpt: epoch " + std::to_string(epoch) +
                    " pruned on some member");
  }
  const Epoch& ed = it->second;

  RestoreResult res;
  res.epoch = epoch;
  std::uint64_t bad = 0;

  // My own datasets, bitwise.
  std::size_t copied = 0;
  for (const auto& [dsname, ds] : datasets_) {
    const auto own_it = ed.own.find(dsname);
    if (own_it == ed.own.end() || own_it->second.size() != ds.bytes) {
      bad = 1;
      continue;
    }
    if (ds.bytes != 0) {
      std::memcpy(ds.data, own_it->second.data(), ds.bytes);
    }
    copied += ds.bytes;
  }
  base::counters().add("ckpt.restore_bytes", copied);

  // Shards of members that did not make it into this communicator: the
  // save-time partner adopts them; if the partner died too, the spill (when
  // enabled) is the copy of last resort, assigned round-robin.
  const Group now = comm.group();
  const base::Rank my_global = s->global_of(s->myrank);
  const int n_saved = static_cast<int>(ed.members.size());
  const int off =
      n_saved > 0 ? ((cfg_.partner_offset % n_saved) + n_saved) % n_saved : 0;
  int orphan_idx = 0;
  for (int r = 0; r < n_saved; ++r) {
    const base::Rank owner = ed.members[static_cast<std::size_t>(r)];
    if (now.contains(owner)) {
      continue;
    }
    bool held_by_survivor = false;
    if (cfg_.partner_copy && off != 0) {
      const base::Rank holder =
          ed.members[static_cast<std::size_t>((r + off) % n_saved)];
      if (now.contains(holder)) {
        held_by_survivor = true;
        if (holder == my_global) {
          const auto pit = ed.partner.find(owner);
          if (pit == ed.partner.end()) {
            bad = 1;
          } else {
            for (auto& [dsname, bytes] : decode_snapshot(pit->second)) {
              res.adopted.push_back(Shard{owner, dsname, std::move(bytes)});
            }
            base::counters().add("ckpt.partner_rebuilds");
          }
        }
      }
    }
    if (!held_by_survivor) {
      if (!cfg_.spill_to_fs) {
        bad = 1;  // deterministic: every rank reaches the same conclusion
      } else if (comm.rank() == orphan_idx % comm.size()) {
        prte::SimFs& fs = ps.proc.cluster().fs();
        const std::string path = fs_path(epoch, owner);
        const auto sz = fs.size(path);
        if (!sz) {
          bad = 1;
        } else {
          std::vector<std::byte> blob(*sz);
          fs.read(path, 0, blob.data(), blob.size());
          for (auto& [dsname, bytes] : decode_snapshot(blob)) {
            res.adopted.push_back(Shard{owner, dsname, std::move(bytes)});
          }
          res.from_fs += 1;
          base::counters().add("ckpt.fs_rebuilds");
        }
      }
    }
    ++orphan_idx;
  }

  // Uniform verdict: one lost shard fails the restore on every rank.
  std::uint64_t worst = 0;
  comm.allreduce(&bad, &worst, 1, datatype_of<std::uint64_t>(), Op::max());
  if (worst != 0) {
    throw Error(ErrClass::rte_not_found,
                "ckpt: unrecoverable shard (owner and partner both failed, "
                "no filesystem copy)");
  }

  last_committed_ = epoch;
  epochs_.erase(epochs_.upper_bound(epoch), epochs_.end());
  return res;
}

}  // namespace sessmpi::ckpt
