// Coordinated checkpoint/restart (see include/sessmpi/ckpt/ckpt.hpp).
//
// The redundancy exchanges run on dedicated checkpoint tags (detail::
// ckpt_tag, between the internal-collective and FT tag ranges). Those tags
// are deliberately *inside* the revoke poison set: a revocation mid-save
// completes the pending receives with comm_revoked, the rank votes abort,
// and the agree()-backed commit — which runs on FT tags and therefore works
// on the revoked communicator — aborts the epoch uniformly.
//
// The erasure exchange is set-internal and symmetric (every member sends
// to and receives from the same peer set), which is what makes the error
// paths deadlock-free: a set member dying mid-save fails *every* member's
// receive from it, so the whole set skips the chunk phase together, and a
// death after the size phase fails the chunk receives directly.

#include "sessmpi/ckpt/ckpt.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <utility>

#include "detail/state.hpp"
#include "sessmpi/base/backoff.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/ckpt/planner.hpp"
#include "sessmpi/ft/ft.hpp"
#include "sessmpi/obs/hist.hpp"
#include "sessmpi/obs/postmortem.hpp"
#include "sessmpi/obs/trace.hpp"
#include "sessmpi/op.hpp"
#include "sessmpi/prte/simfs.hpp"

namespace sessmpi::ckpt {

namespace {

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t take_u64(const std::vector<std::byte>& in, std::size_t& pos) {
  if (pos + 8 > in.size()) {
    throw Error(ErrClass::truncate, "ckpt: snapshot blob truncated");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(in[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return v;
}

std::int64_t mono_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Drop any of `reqs` still sitting in the posted queue: their buffers live
/// in save()'s stack frame (same hazard agree.cpp scrubs against).
void scrub_posted(detail::ProcState& ps,
                  const std::shared_ptr<detail::CommState>& s,
                  const std::vector<detail::RequestPtr>& reqs) {
  std::lock_guard lock(ps.mu);
  s->posted.erase_if([&](const detail::RequestPtr& p) {
    return std::find(reqs.begin(), reqs.end(), p) != reqs.end();
  });
}

/// Async-span correlation id for one rank's drain of one epoch (epochs
/// collide across ranks, so fold the track in).
std::uint64_t drain_span_id(std::int32_t track, std::uint64_t epoch) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(track + 1))
          << 32) |
         (epoch & 0xffffffffull);
}

}  // namespace

std::vector<std::byte> encode_snapshot(
    const std::map<std::string, std::vector<std::byte>>& datasets) {
  std::vector<std::byte> out;
  put_u64(out, datasets.size());
  for (const auto& [name, bytes] : datasets) {
    put_u64(out, name.size());
    for (char c : name) {
      out.push_back(static_cast<std::byte>(c));
    }
    put_u64(out, bytes.size());
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  return out;
}

std::map<std::string, std::vector<std::byte>> decode_snapshot(
    const std::vector<std::byte>& blob) {
  std::map<std::string, std::vector<std::byte>> out;
  std::size_t pos = 0;
  const std::uint64_t count = take_u64(blob, pos);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = take_u64(blob, pos);
    if (pos + name_len > blob.size()) {
      throw Error(ErrClass::truncate, "ckpt: snapshot blob truncated");
    }
    std::string name(name_len, '\0');
    for (std::uint64_t j = 0; j < name_len; ++j) {
      name[j] = static_cast<char>(std::to_integer<std::uint8_t>(blob[pos + j]));
    }
    pos += name_len;
    const std::uint64_t data_len = take_u64(blob, pos);
    if (pos + data_len > blob.size()) {
      throw Error(ErrClass::truncate, "ckpt: snapshot blob truncated");
    }
    out.emplace(std::move(name),
                std::vector<std::byte>(blob.begin() + static_cast<long>(pos),
                                       blob.begin() +
                                           static_cast<long>(pos + data_len)));
    pos += data_len;
  }
  return out;
}

Checkpointer::Checkpointer(std::string name, Config cfg)
    : name_(std::move(name)), cfg_(std::move(cfg)) {
  if (cfg_.keep_epochs == 0) {
    cfg_.keep_epochs = 1;
  }
  if (cfg_.scheme != Scheme::partner) {
    if (cfg_.set_data < 1 || cfg_.set_parity < 0 ||
        cfg_.set_data + cfg_.set_parity > 31) {
      throw Error(ErrClass::arg,
                  "ckpt: erasure set needs 1 <= k, 0 <= m, k + m <= 31");
    }
    if (cfg_.scheme == Scheme::xor_parity && cfg_.set_parity != 1) {
      throw Error(ErrClass::arg, "ckpt: xor_parity requires set_parity == 1");
    }
  }
  if (cfg_.spill_chunk_bytes == 0) {
    cfg_.spill_chunk_bytes = 1;
  }
}

Checkpointer::~Checkpointer() {
  {
    std::lock_guard lk(dmu_);
    drain_stop_ = true;
  }
  dcv_.notify_all();
  if (drainer_.joinable()) {
    drainer_.join();
  }
}

void Checkpointer::register_dataset(const std::string& dataset, void* data,
                                    std::size_t bytes) {
  if (data == nullptr && bytes != 0) {
    throw Error(ErrClass::buffer, "ckpt: null dataset pointer");
  }
  datasets_[dataset] = Dataset{data, bytes};
}

std::string Checkpointer::fs_path(std::uint64_t epoch, base::Rank owner) const {
  return cfg_.fs_prefix + name_ + "/e" + std::to_string(epoch) + "/r" +
         std::to_string(owner);
}

bool Checkpointer::should_save(std::int64_t now_ns) {
  const std::int64_t interval = planner().effective_interval_ns();
  if (interval <= 0) {
    next_due_ns_ = -1;
    return true;
  }
  if (next_due_ns_ < 0 || now_ns >= next_due_ns_) {
    next_due_ns_ = now_ns + interval;
    return true;
  }
  return false;
}

std::uint64_t Checkpointer::save(const Communicator& comm) {
  const auto& s = detail_unwrap(comm);
  if (!s || s->freed) {
    throw Error(ErrClass::comm, "null or freed communicator");
  }
  detail::ProcState& ps = *s->ps;
  const int n = s->size();
  const int me = s->myrank;
  const base::Rank my_global = s->global_of(me);
  const std::int64_t t0 = mono_ns();
  OBS_SPAN("ckpt.save", "ckpt");
  // One distributed trace per save: partner exchange, redundancy-set and
  // commit-vote messages all inherit this id (agree() nests its own scope
  // for the vote itself, which composes — see ScopedFlowContext).
  std::uint64_t save_flow = 0;
  if (obs::Tracer::instance().enabled()) {
    save_flow = obs::Tracer::next_span_id();
    OBS_FLOW_START("ckpt.save", "ckpt", save_flow, 0);
  }
  obs::ScopedFlowContext save_flow_scope(save_flow);

  // A partner offset that is 0 mod n would self-partner — the "copy" lands
  // on the owner and dies with it. Refuse instead of silently saving with
  // no redundancy (a shrink can turn a good offset into a multiple of n).
  if (cfg_.scheme == Scheme::partner && cfg_.partner_copy && n > 1 &&
      ((cfg_.partner_offset % n) + n) % n == 0) {
    throw Error(ErrClass::arg,
                "ckpt: partner_offset " + std::to_string(cfg_.partner_offset) +
                    " self-partners on " + std::to_string(n) +
                    " ranks; call set_partner_offset() after a shrink");
  }

  // Stage 1: local snapshot. Nothing commits until the vote.
  Epoch staging;
  staging.members = comm.group().members();
  staging.scheme = cfg_.scheme;
  staging.set_k = cfg_.set_data;
  staging.set_m = cfg_.set_parity;
  std::size_t own_bytes = 0;
  for (const auto& [dsname, ds] : datasets_) {
    const auto* p = static_cast<const std::byte*>(ds.data);
    staging.own.emplace(dsname, std::vector<std::byte>(p, p + ds.bytes));
    own_bytes += ds.bytes;
  }

  // A revocation observed at any point before the vote invalidates this
  // save; the flag outlives this frame (the observer may fire later, after
  // an abort already threw out of here).
  auto invalidated = std::make_shared<std::atomic<bool>>(false);
  const int obs_id =
      comm.on_revoke([invalidated] { invalidated->store(true); });
  struct ObserverGuard {
    const Communicator& comm;
    int id;
    ~ObserverGuard() {
      if (id != -1) {
        comm.remove_on_revoke(id);
      }
    }
  } obs_guard{comm, obs_id};

  bool ok = obs_id != -1;  // -1: already revoked when we attached

  std::uint32_t seq;
  {
    std::lock_guard lock(ps.mu);
    seq = s->ckpt_seq++;
  }

  // Stage 2: redundancy. Either the partner exchange (full copy `offset`
  // ranks away) or the erasure-set chunk exchange + parity encode.
  const std::int64_t enc0 = mono_ns();
  ::sessmpi::obs::Tracer::instance().begin("ckpt.encode", "ckpt");
  std::vector<std::byte> partner_blob;
  base::Rank partner_owner = -1;
  std::size_t redundancy_bytes = 0;
  const int off = n > 0 ? ((cfg_.partner_offset % n) + n) % n : 0;
  staging.partner_off = off;
  if (cfg_.scheme == Scheme::partner && ok && cfg_.partner_copy && off != 0) {
    ::sessmpi::obs::Tracer::instance().begin("ckpt.partner_exchange", "ckpt");
    const int to = (me + off) % n;
    const int from = (me - off + n) % n;
    const std::vector<std::byte> mine = encode_snapshot(staging.own);
    const std::uint64_t my_size = mine.size();
    std::uint64_t their_size = 0;

    std::vector<detail::RequestPtr> cleanup;
    try {
      detail::RequestPtr size_recv =
          ps.irecv_impl(s, &their_size, 1, datatype_of<std::uint64_t>(), from,
                        detail::ckpt_tag(seq, 0));
      cleanup.push_back(size_recv);
      ps.isend_impl(s, &my_size, 1, datatype_of<std::uint64_t>(), to,
                    detail::ckpt_tag(seq, 0), /*sync=*/false);
      ps.progress_until([&] { return size_recv->done(); });
      if (size_recv->status.error != ErrClass::success) {
        ok = false;
      } else {
        partner_blob.resize(their_size);
        detail::RequestPtr blob_recv = ps.irecv_impl(
            s, partner_blob.data(), static_cast<int>(their_size),
            datatype_of<std::byte>(), from, detail::ckpt_tag(seq, 1));
        cleanup.push_back(blob_recv);
        ps.isend_impl(s, mine.data(), static_cast<int>(mine.size()),
                      datatype_of<std::byte>(), to, detail::ckpt_tag(seq, 1),
                      /*sync=*/false);
        ps.progress_until([&] { return blob_recv->done(); });
        if (blob_recv->status.error != ErrClass::success) {
          ok = false;
        } else {
          partner_owner = staging.members[static_cast<std::size_t>(from)];
          redundancy_bytes = partner_blob.size();
        }
      }
    } catch (...) {
      scrub_posted(ps, s, cleanup);
      ::sessmpi::obs::Tracer::instance().end("ckpt.partner_exchange", "ckpt");
      ::sessmpi::obs::Tracer::instance().end("ckpt.encode", "ckpt");
      throw;
    }
    scrub_posted(ps, s, cleanup);
    ::sessmpi::obs::Tracer::instance().end("ckpt.partner_exchange", "ckpt");
  } else if (cfg_.scheme != Scheme::partner && ok) {
    const SetLayout lay = set_layout(n, me, cfg_.set_data, cfg_.set_parity);
    staging.set.layout = lay;
    const int g = lay.size;
    const int kk = lay.data;
    const int mm = lay.parity;
    const int idx = lay.member_of(me);
    std::vector<std::byte> mine = encode_snapshot(staging.own);
    staging.set.blob_sizes.assign(static_cast<std::size_t>(g), 0);
    staging.set.blob_sizes[static_cast<std::size_t>(idx)] = mine.size();
    if (mm > 0) {
      const std::uint64_t my_size = mine.size();
      std::vector<detail::RequestPtr> cleanup;
      try {
        // Set-internal size allgather (sub-tag 0): every member learns
        // every blob size, so all compute the same chunk length.
        std::vector<detail::RequestPtr> size_recvs;
        for (int x = 0; x < g; ++x) {
          if (x == idx) {
            continue;
          }
          size_recvs.push_back(ps.irecv_impl(
              s, &staging.set.blob_sizes[static_cast<std::size_t>(x)], 1,
              datatype_of<std::uint64_t>(), lay.first + x,
              detail::ckpt_tag(seq, 0)));
          cleanup.push_back(size_recvs.back());
        }
        for (int x = 0; x < g; ++x) {
          if (x != idx) {
            ps.isend_impl(s, &my_size, 1, datatype_of<std::uint64_t>(),
                          lay.first + x, detail::ckpt_tag(seq, 0),
                          /*sync=*/false);
          }
        }
        ps.progress_until([&] {
          return std::all_of(size_recvs.begin(), size_recvs.end(),
                             [](const auto& r) { return r->done(); });
        });
        for (const auto& r : size_recvs) {
          if (r->status.error != ErrClass::success) {
            ok = false;
          }
        }
        if (ok) {
          const std::uint64_t lmax =
              *std::max_element(staging.set.blob_sizes.begin(),
                                staging.set.blob_sizes.end());
          const std::uint64_t clen =
              (lmax + static_cast<std::uint64_t>(kk) - 1) /
              static_cast<std::uint64_t>(kk);
          staging.set.chunk_len = clen;
          mine.resize(static_cast<std::size_t>(kk) * clen);  // zero-pad

          // Receive the data chunks of every stripe I hold parity for
          // (sub-tag 2 + stripe*g + chunk), send my own chunks to their
          // stripes' parity holders.
          struct ChunkRecv {
            int stripe = 0;
            int j = 0;
            std::vector<std::byte> buf;
            detail::RequestPtr req;
          };
          std::vector<std::unique_ptr<ChunkRecv>> incoming;
          for (int st = 0; st < g; ++st) {
            if (lay.parity_index(st, idx) < 0) {
              continue;
            }
            for (int j = 0; j < kk; ++j) {
              auto cr = std::make_unique<ChunkRecv>();
              cr->stripe = st;
              cr->j = j;
              cr->buf.resize(clen);
              cr->req = ps.irecv_impl(
                  s, cr->buf.data(), static_cast<int>(clen),
                  datatype_of<std::byte>(), lay.first + lay.data_member(st, j),
                  detail::ckpt_tag(seq, 2 + st * g + j));
              cleanup.push_back(cr->req);
              incoming.push_back(std::move(cr));
            }
          }
          for (int j = 0; j < kk; ++j) {
            const int st = lay.stripe_of_chunk(idx, j);
            for (int i = 0; i < mm; ++i) {
              ps.isend_impl(
                  s, mine.data() + static_cast<std::size_t>(j) * clen,
                  static_cast<int>(clen), datatype_of<std::byte>(),
                  lay.first + lay.parity_member(st, i),
                  detail::ckpt_tag(seq, 2 + st * g + j), /*sync=*/false);
            }
          }
          ps.progress_until([&] {
            return std::all_of(incoming.begin(), incoming.end(),
                               [](const auto& c) { return c->req->done(); });
          });
          for (const auto& c : incoming) {
            if (c->req->status.error != ErrClass::success) {
              ok = false;
            }
          }
          if (ok) {
            const auto codec = make_codec(cfg_.scheme, kk, mm);
            std::vector<const std::byte*> ptrs(static_cast<std::size_t>(kk));
            for (int st = 0; st < g; ++st) {
              const int pi = lay.parity_index(st, idx);
              if (pi < 0) {
                continue;
              }
              for (const auto& c : incoming) {
                if (c->stripe == st) {
                  ptrs[static_cast<std::size_t>(c->j)] = c->buf.data();
                }
              }
              std::vector<std::byte> out(clen);
              codec->encode(pi, ptrs.data(), clen, out.data());
              staging.set.parity.emplace(st, std::move(out));
              redundancy_bytes += clen;
            }
          }
        }
      } catch (...) {
        scrub_posted(ps, s, cleanup);
        ::sessmpi::obs::Tracer::instance().end("ckpt.encode", "ckpt");
        throw;
      }
      scrub_posted(ps, s, cleanup);
    }
  }
  ::sessmpi::obs::Tracer::instance().end("ckpt.encode", "ckpt");
  obs::histogram("ckpt.encode_ns")
      .record(static_cast<std::uint64_t>(mono_ns() - enc0));

  if (invalidated->load()) {
    ok = false;
  }

  // Fence the previous epoch's async drain *before* the vote: a committed
  // epoch N certifies that every rank's epoch N-1 spill reached a terminal
  // state (durable, or failed with a sticky cause — the in-memory levels
  // still protect a failed spill, so it does not abort this save).
  drain_fence();

  // Stage 3: uniform commit/abort vote. agree() runs on FT tags, so the
  // vote reaches every survivor even on a revoked communicator; bit 0 of
  // the AND survives iff every rank voted commit.
  const std::uint64_t verdict = [&] {
    OBS_SPAN("ckpt.commit_vote", "ckpt");
    return comm.agree(ok ? ~0ull : ~1ull);
  }();
  if ((verdict & 1ull) == 0) {
    base::counters().add("ckpt.aborted_saves");
    if (invalidated->load() || comm.is_revoked()) {
      throw Error(ErrClass::comm_revoked,
                  "ckpt: save invalidated by communicator revocation");
    }
    throw Error(ErrClass::rte_proc_failed,
                "ckpt: save aborted (a member voted abort)");
  }

  // Stage 4: commit locally, publish the epoch through PMIx, spill.
  const std::uint64_t epoch = last_committed_ + 1;
  Epoch& committed = epochs_[epoch];
  committed = std::move(staging);
  if (partner_owner != -1) {
    committed.partner.emplace(partner_owner, std::move(partner_blob));
  }
  last_committed_ = epoch;
  while (epochs_.size() > cfg_.keep_epochs) {
    if (cfg_.spill_to_fs) {
      remove_spill(ps.proc.cluster().fs(), epochs_.begin()->first, my_global);
    }
    epochs_.erase(epochs_.begin());
  }

  ps.pmix().put("ckpt." + name_ + ".epoch", epoch);
  ps.pmix().commit();

  if (cfg_.spill_to_fs) {
    std::vector<std::byte> blob = encode_snapshot(committed.own);
    prte::SimFs& fs = ps.proc.cluster().fs();
    if (cfg_.async_spill) {
      spill_async(fs, epoch, std::move(blob), my_global);
    } else {
      OBS_SPAN("ckpt.spill", "ckpt");
      spill_sync(fs, epoch, blob, my_global);
    }
    base::counters().add("ckpt.spills");
  }

  base::counters().add("ckpt.saves");
  base::counters().add("ckpt.save_bytes", own_bytes);
  base::counters().add("ckpt.redundancy_bytes", redundancy_bytes);
  planner().note_save_cost(mono_ns() - t0);
  return epoch;
}

// --- filesystem spill: sync fallback + async drain pipeline ---------------

void Checkpointer::spill_sync(prte::SimFs& fs, std::uint64_t epoch,
                              const std::vector<std::byte>& blob,
                              base::Rank my_global) {
  const std::string path = fs_path(epoch, my_global);
  fs.set_size(path, 0);
  fs.write(path, 0, blob.data(), blob.size());
  // Durability marker last, so readers never see a marked partial file.
  const char okb = 1;
  fs.set_size(path + ".ok", 0);
  fs.write(path + ".ok", 0, &okb, 1);
}

void Checkpointer::spill_async(prte::SimFs& fs, std::uint64_t epoch,
                               std::vector<std::byte> blob,
                               base::Rank my_global) {
  auto job = std::make_shared<DrainJob>();
  job->epoch = epoch;
  job->path = fs_path(epoch, my_global);
  job->blob = std::move(blob);
  job->track = obs::Tracer::thread_track();
  // Truncate the target now: a death mid-drain leaves a visibly partial
  // file (and no ".ok"), never a stale previous generation.
  fs.set_size(job->path, 0);
  fs.remove(job->path + ".ok");
  OBS_ASYNC_BEGIN2(job->track, "ckpt.drain", "ckpt",
                   drain_span_id(job->track, epoch), epoch, job->blob.size());
  {
    std::lock_guard lk(dmu_);
    drain_fs_ = &fs;
    dqueue_.push_back(job);
    dlive_.push_back(job);
    if (!drainer_.joinable()) {
      drainer_ = std::thread([this] { drain_loop(); });
    }
  }
  dcv_.notify_all();
}

Checkpointer::DrainJob::State Checkpointer::drain_one(const DrainJob& job,
                                                      std::string& cause) {
  prte::SimFs* fs;
  {
    std::lock_guard lk(dmu_);
    fs = drain_fs_;
  }
  // Short backoff curve: transient SimFs faults clear on the next draw, so
  // the pipeline recovers in microseconds instead of the fabric-scale
  // defaults.
  const base::ExponentialBackoff bo{.base_ns = 20'000,
                                    .cap_ns = 5'000'000,
                                    .factor = 2};
  const std::int64_t delay_per_byte = fs->write_delay_ns_per_byte();
  // 0 = written, 1 = cancelled by stop, 2 = retries exhausted.
  const auto write_retry = [&](const std::string& path, std::size_t woff,
                               const void* p, std::size_t wn) -> int {
    for (int retry = 0;; ++retry) {
      {
        std::lock_guard lk(dmu_);
        if (drain_stop_) {
          return 1;
        }
      }
      if (fs->try_write(path, woff, p, wn)) {
        if (delay_per_byte > 0) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(
              delay_per_byte * static_cast<std::int64_t>(wn)));
        }
        return 0;
      }
      base::counters().add("ckpt.spill_retries");
      if (retry >= cfg_.spill_max_retries) {
        return 2;
      }
      std::this_thread::sleep_for(std::chrono::nanoseconds(bo.delay_ns(retry)));
    }
  };

  for (std::size_t woff = 0; woff < job.blob.size();
       woff += cfg_.spill_chunk_bytes) {
    const std::size_t wn =
        std::min(cfg_.spill_chunk_bytes, job.blob.size() - woff);
    const int r = write_retry(job.path, woff, job.blob.data() + woff, wn);
    if (r == 1) {
      return DrainJob::State::cancelled;
    }
    if (r == 2) {
      cause = "ckpt: drain of " + job.path + " failed at offset " +
              std::to_string(woff) + " after " +
              std::to_string(cfg_.spill_max_retries) + " retries";
      base::counters().add("ckpt.drain_failures");
      return DrainJob::State::failed;
    }
  }
  const char okb = 1;
  const int r = write_retry(job.path + ".ok", 0, &okb, 1);
  if (r == 1) {
    return DrainJob::State::cancelled;
  }
  if (r == 2) {
    cause = "ckpt: drain of " + job.path +
            " failed writing the durability marker";
    base::counters().add("ckpt.drain_failures");
    return DrainJob::State::failed;
  }
  return DrainJob::State::durable;
}

void Checkpointer::drain_loop() {
  std::unique_lock lk(dmu_);
  for (;;) {
    dcv_.wait(lk, [&] { return drain_stop_ || !dqueue_.empty(); });
    if (dqueue_.empty()) {
      return;  // stop requested and nothing left to drain
    }
    auto job = dqueue_.front();
    dqueue_.pop_front();
    if (drain_stop_) {
      job->state = DrainJob::State::cancelled;
      dlive_.erase(std::find(dlive_.begin(), dlive_.end(), job));
      dcv_.notify_all();
      continue;
    }
    job->state = DrainJob::State::draining;
    lk.unlock();

    const std::int64_t j0 = mono_ns();
    std::string cause;
    const DrainJob::State fin = drain_one(*job, cause);
    const std::uint64_t dur = static_cast<std::uint64_t>(mono_ns() - j0);
    obs::histogram("ckpt.drain_ns").record(dur);
    OBS_ASYNC_END(job->track, "ckpt.drain", "ckpt",
                  drain_span_id(job->track, job->epoch));

    lk.lock();
    job->state = fin;
    if (fin == DrainJob::State::failed && drain_first_cause_.empty()) {
      drain_first_cause_ = cause;  // sticky first cause
    }
    drain_busy_ns_ += dur;
    dlive_.erase(std::find(dlive_.begin(), dlive_.end(), job));
    dcv_.notify_all();
  }
}

bool Checkpointer::drain_fence() {
  const std::int64_t t0 = mono_ns();
  std::unique_lock lk(dmu_);
  dcv_.wait(lk, [&] { return dlive_.empty(); });
  drain_fence_wait_ns_ += static_cast<std::uint64_t>(mono_ns() - t0);
  return drain_first_cause_.empty();
}

std::string Checkpointer::drain_error() const {
  std::lock_guard lk(dmu_);
  return drain_first_cause_;
}

std::uint64_t Checkpointer::drain_busy_ns() const {
  std::lock_guard lk(dmu_);
  return drain_busy_ns_;
}

std::uint64_t Checkpointer::drain_fence_wait_ns() const {
  std::lock_guard lk(dmu_);
  return drain_fence_wait_ns_;
}

void Checkpointer::remove_spill(prte::SimFs& fs, std::uint64_t epoch,
                                base::Rank my_global) {
  const std::string path = fs_path(epoch, my_global);
  fs.remove(path + ".ok");  // marker first: never a marked-but-missing blob
  fs.remove(path);
}

// --- restore ---------------------------------------------------------------

RestoreResult Checkpointer::restore(const Communicator& comm) {
  const auto& s = detail_unwrap(comm);
  if (!s || s->freed) {
    throw Error(ErrClass::comm, "null or freed communicator");
  }
  detail::ProcState& ps = *s->ps;
  base::counters().add("ckpt.restores");
  OBS_SPAN("ckpt.restore", "ckpt");

  std::uint32_t rseq;
  {
    std::lock_guard lock(ps.mu);
    rseq = s->ckpt_seq++;
  }

  // Propose the newest epoch *everyone* committed; min() also absorbs a
  // rank that aborted its very first save (last_committed_ == 0 aborts the
  // whole restore below, uniformly).
  const std::uint64_t mine = last_committed_;
  std::uint64_t top = 0;
  comm.allreduce(&mine, &top, 1, datatype_of<std::uint64_t>(), Op::min());
  if (top == 0) {
    throw Error(ErrClass::arg, "ckpt: restore with no committed epoch");
  }

  const Group now = comm.group();
  const base::Rank my_global = s->global_of(s->myrank);
  prte::SimFs& fs = ps.proc.cluster().fs();

  // Local recoverability of one candidate epoch. Deterministic across
  // ranks except for per-rank holdings (pruned epoch, missing partner
  // blob), which the allreduce verdict makes uniform. An async spill only
  // counts once its ".ok" durability marker exists — a rank that died
  // mid-drain left a partial file without one.
  const auto candidate_bad = [&](std::uint64_t ep) -> bool {
    const auto it = epochs_.find(ep);
    if (it == epochs_.end()) {
      return true;
    }
    const Epoch& ed = it->second;
    for (const auto& [dsname, ds] : datasets_) {
      const auto oit = ed.own.find(dsname);
      if (oit == ed.own.end() || oit->second.size() != ds.bytes) {
        return true;
      }
    }
    const int n_saved = static_cast<int>(ed.members.size());
    const auto durable = [&](base::Rank owner) {
      return cfg_.spill_to_fs && fs.exists(fs_path(ep, owner) + ".ok");
    };
    if (ed.scheme == Scheme::partner) {
      const int poff =
          n_saved > 0 ? ((ed.partner_off % n_saved) + n_saved) % n_saved : 0;
      for (int r = 0; r < n_saved; ++r) {
        const base::Rank owner = ed.members[static_cast<std::size_t>(r)];
        if (now.contains(owner)) {
          continue;
        }
        bool covered = false;
        if (poff != 0) {
          const base::Rank holder =
              ed.members[static_cast<std::size_t>((r + poff) % n_saved)];
          if (now.contains(holder)) {
            if (holder == my_global && !ed.partner.contains(owner)) {
              return true;  // I am the holder but lost the blob
            }
            covered = true;
          }
        }
        if (!covered && !durable(owner)) {
          return true;
        }
      }
    } else {
      for (int first = 0; first < n_saved;) {
        const SetLayout lay = set_layout(n_saved, first, ed.set_k, ed.set_m);
        int dead = 0;
        for (int x = 0; x < lay.size; ++x) {
          if (!now.contains(ed.members[static_cast<std::size_t>(first + x)])) {
            ++dead;
          }
        }
        if (dead > lay.parity) {
          // Beyond the set's tolerance: every dead member needs a durable
          // filesystem copy.
          for (int x = 0; x < lay.size; ++x) {
            const base::Rank owner =
                ed.members[static_cast<std::size_t>(first + x)];
            if (!now.contains(owner) && !durable(owner)) {
              return true;
            }
          }
        }
        first += lay.size;
      }
    }
    return false;
  };

  // Candidate walk, newest first, bounded by the (uniform) retention
  // window. One allreduce-max verdict per candidate keeps the choice — and
  // any failure — uniform even while a dead rank's drainer raced us.
  std::uint64_t chosen = 0;
  for (std::uint64_t ep = top; ep >= 1 && top - ep < cfg_.keep_epochs; --ep) {
    const std::uint64_t bad = candidate_bad(ep) ? 1 : 0;
    std::uint64_t worst = 0;
    comm.allreduce(&bad, &worst, 1, datatype_of<std::uint64_t>(), Op::max());
    if (worst == 0) {
      chosen = ep;
      break;
    }
    if (ep == 1) {
      break;
    }
  }
  if (chosen == 0) {
    throw Error(ErrClass::rte_not_found,
                "ckpt: no commonly recoverable epoch within the retention "
                "window");
  }

  const Epoch& ed = epochs_.at(chosen);
  RestoreResult res;
  res.epoch = chosen;
  std::uint64_t bad = 0;

  // My own datasets, bitwise.
  std::size_t copied = 0;
  for (const auto& [dsname, ds] : datasets_) {
    const auto own_it = ed.own.find(dsname);
    if (own_it == ed.own.end() || own_it->second.size() != ds.bytes) {
      bad = 1;
      continue;
    }
    if (ds.bytes != 0) {
      std::memcpy(ds.data, own_it->second.data(), ds.bytes);
    }
    copied += ds.bytes;
  }
  base::counters().add("ckpt.restore_bytes", copied);

  // Shards of members that did not make it into this communicator.
  // Redundancy-level order: save-time partner / set parity first, then the
  // durable filesystem spill for anything beyond the in-memory tolerance.
  const int n_saved = static_cast<int>(ed.members.size());
  std::vector<base::Rank> fs_orphans;

  if (ed.scheme == Scheme::partner) {
    const int poff =
        n_saved > 0 ? ((ed.partner_off % n_saved) + n_saved) % n_saved : 0;
    for (int r = 0; r < n_saved; ++r) {
      const base::Rank owner = ed.members[static_cast<std::size_t>(r)];
      if (now.contains(owner)) {
        continue;
      }
      bool held_by_survivor = false;
      if (poff != 0) {
        const base::Rank holder =
            ed.members[static_cast<std::size_t>((r + poff) % n_saved)];
        if (now.contains(holder)) {
          held_by_survivor = true;
          if (holder == my_global) {
            const auto pit = ed.partner.find(owner);
            if (pit == ed.partner.end()) {
              bad = 1;
            } else {
              for (auto& [dsname, bytes] : decode_snapshot(pit->second)) {
                res.adopted.push_back(Shard{owner, dsname, std::move(bytes)});
              }
              base::counters().add("ckpt.partner_rebuilds");
            }
          }
        }
      }
      if (!held_by_survivor) {
        if (!cfg_.spill_to_fs) {
          bad = 1;  // deterministic: every rank reaches the same conclusion
        } else {
          fs_orphans.push_back(owner);
        }
      }
    }
  } else {
    // Erasure sets. Every rank walks every saved set (the orphan
    // bookkeeping must be identical everywhere); the chunk transfers and
    // decodes are set-internal, so only my own set involves me.
    const int my_saved_rank = [&] {
      for (int r = 0; r < n_saved; ++r) {
        if (ed.members[static_cast<std::size_t>(r)] == my_global) {
          return r;
        }
      }
      return -1;  // unreachable: the new comm is a subset of the saved one
    }();
    for (int first = 0; first < n_saved;) {
      const SetLayout lay = set_layout(n_saved, first, ed.set_k, ed.set_m);
      const int g = lay.size;
      const int kk = lay.data;
      const int mm = lay.parity;
      std::vector<int> deadm;
      std::vector<int> survm;
      for (int x = 0; x < g; ++x) {
        (now.contains(ed.members[static_cast<std::size_t>(first + x)])
             ? survm
             : deadm)
            .push_back(x);
      }
      if (deadm.empty()) {
        first += g;
        continue;
      }
      if (static_cast<int>(deadm.size()) > mm) {
        if (!cfg_.spill_to_fs) {
          bad = 1;
        } else {
          for (int x : deadm) {
            fs_orphans.push_back(ed.members[static_cast<std::size_t>(first + x)]);
          }
        }
        first += g;
        continue;
      }

      // Parity-recoverable set. Deterministic plan, computed identically
      // on every rank: dead member d (in index order) is adopted by
      // survivor survm[d mod |survm|]; the adopter reconstructs every
      // stripe the dead member contributed a data chunk to, receiving the
      // surviving chunk of each such stripe from every other survivor.
      std::map<int, std::set<int>> stripes_of;  // adopter -> stripes
      std::map<int, std::vector<int>> adoptees;  // adopter -> dead members
      for (std::size_t d = 0; d < deadm.size(); ++d) {
        const int a = survm[d % survm.size()];
        adoptees[a].push_back(deadm[d]);
        for (int j = 0; j < kk; ++j) {
          stripes_of[a].insert(lay.stripe_of_chunk(deadm[d], j));
        }
      }

      if (my_saved_rank < first || my_saved_rank >= first + g) {
        first += g;
        continue;  // not my set — nothing further to do here
      }
      const int my_idx = my_saved_rank - first;
      const std::uint64_t clen = ed.set.chunk_len;
      std::vector<std::byte> myblob = encode_snapshot(ed.own);
      myblob.resize(static_cast<std::size_t>(kk) * clen);  // save-time pad
      // My chunk of stripe `st`: my own blob chunk when I am a data
      // contributor there, else the parity chunk I computed at save.
      const auto my_chunk_for = [&](int st) -> const std::byte* {
        const int pos = (my_idx - st + g) % g;
        if (pos < kk) {
          return myblob.data() + static_cast<std::size_t>(pos) * clen;
        }
        return ed.set.parity.at(st).data();
      };
      const auto new_rank_of = [&](int member_idx) {
        return now.rank_of(
            ed.members[static_cast<std::size_t>(first + member_idx)]);
      };

      struct XferRecv {
        int stripe = 0;
        int from_pos = 0;
        std::vector<std::byte> buf;
        detail::RequestPtr req;
      };
      std::vector<std::unique_ptr<XferRecv>> xin;
      std::vector<detail::RequestPtr> cleanup;
      try {
        const auto sit = stripes_of.find(my_idx);
        if (sit != stripes_of.end()) {
          for (int st : sit->second) {
            for (int x : survm) {
              if (x == my_idx) {
                continue;
              }
              auto xr = std::make_unique<XferRecv>();
              xr->stripe = st;
              xr->from_pos = (x - st + g) % g;
              xr->buf.resize(clen);
              xr->req = ps.irecv_impl(
                  s, xr->buf.data(), static_cast<int>(clen),
                  datatype_of<std::byte>(), new_rank_of(x),
                  detail::ckpt_tag(rseq, 2 + st * g + xr->from_pos));
              cleanup.push_back(xr->req);
              xin.push_back(std::move(xr));
            }
          }
        }
        for (const auto& [a, stset] : stripes_of) {
          if (a == my_idx) {
            continue;
          }
          for (int st : stset) {
            const int pos = (my_idx - st + g) % g;
            ps.isend_impl(s, my_chunk_for(st), static_cast<int>(clen),
                          datatype_of<std::byte>(), new_rank_of(a),
                          detail::ckpt_tag(rseq, 2 + st * g + pos),
                          /*sync=*/false);
          }
        }
        ps.progress_until([&] {
          return std::all_of(xin.begin(), xin.end(),
                             [](const auto& c) { return c->req->done(); });
        });
        for (const auto& c : xin) {
          if (c->req->status.error != ErrClass::success) {
            bad = 1;
          }
        }
      } catch (...) {
        scrub_posted(ps, s, cleanup);
        throw;
      }
      scrub_posted(ps, s, cleanup);

      if (bad == 0 && stripes_of.contains(my_idx)) {
        const auto codec = make_codec(ed.scheme, kk, mm);
        // stripe -> its kk data chunks (reconstructed in place)
        std::map<int, std::vector<std::vector<std::byte>>> stripe_data;
        for (int st : stripes_of.at(my_idx)) {
          std::vector<std::vector<std::byte>> data(
              static_cast<std::size_t>(kk), std::vector<std::byte>(clen));
          std::unique_ptr<bool[]> data_ok(new bool[static_cast<std::size_t>(kk)]);
          std::fill(data_ok.get(), data_ok.get() + kk, false);
          std::vector<const std::byte*> parity(static_cast<std::size_t>(mm),
                                               nullptr);
          const int mypos = (my_idx - st + g) % g;
          if (mypos < kk) {
            std::memcpy(data[static_cast<std::size_t>(mypos)].data(),
                        myblob.data() + static_cast<std::size_t>(mypos) * clen,
                        clen);
            data_ok[mypos] = true;
          } else {
            parity[static_cast<std::size_t>(mypos - kk)] =
                ed.set.parity.at(st).data();
          }
          for (const auto& xr : xin) {
            if (xr->stripe != st) {
              continue;
            }
            if (xr->from_pos < kk) {
              std::memcpy(data[static_cast<std::size_t>(xr->from_pos)].data(),
                          xr->buf.data(), clen);
              data_ok[xr->from_pos] = true;
            } else {
              parity[static_cast<std::size_t>(xr->from_pos - kk)] =
                  xr->buf.data();
            }
          }
          std::vector<std::byte*> dptr(static_cast<std::size_t>(kk));
          for (int j = 0; j < kk; ++j) {
            dptr[static_cast<std::size_t>(j)] =
                data[static_cast<std::size_t>(j)].data();
          }
          if (!codec->reconstruct(dptr.data(), data_ok.get(), parity.data(),
                                  clen)) {
            bad = 1;
          }
          stripe_data.emplace(st, std::move(data));
        }
        if (bad == 0) {
          for (int dm : adoptees.at(my_idx)) {
            std::vector<std::byte> blob(static_cast<std::size_t>(kk) * clen);
            for (int j = 0; j < kk; ++j) {
              const int st = lay.stripe_of_chunk(dm, j);
              std::memcpy(blob.data() + static_cast<std::size_t>(j) * clen,
                          stripe_data.at(st)[static_cast<std::size_t>(j)]
                              .data(),
                          clen);
            }
            blob.resize(ed.set.blob_sizes[static_cast<std::size_t>(dm)]);
            const base::Rank owner =
                ed.members[static_cast<std::size_t>(first + dm)];
            for (auto& [dsname, bytes] : decode_snapshot(blob)) {
              res.adopted.push_back(Shard{owner, dsname, std::move(bytes)});
            }
            res.from_parity += 1;
            base::counters().add("ckpt.parity_rebuilds");
          }
        }
      }
      first += g;
    }
  }

  // Copy of last resort: durable filesystem spills, adopted round-robin
  // across the surviving communicator.
  for (std::size_t i = 0; i < fs_orphans.size(); ++i) {
    if (comm.rank() != static_cast<int>(i % static_cast<std::size_t>(
                                                comm.size()))) {
      continue;
    }
    const std::string path = fs_path(chosen, fs_orphans[i]);
    const auto sz = fs.size(path);
    if (!sz || !fs.exists(path + ".ok")) {
      bad = 1;
      continue;
    }
    std::vector<std::byte> blob(*sz);
    fs.read(path, 0, blob.data(), blob.size());
    for (auto& [dsname, bytes] : decode_snapshot(blob)) {
      res.adopted.push_back(Shard{fs_orphans[i], dsname, std::move(bytes)});
    }
    res.from_fs += 1;
    base::counters().add("ckpt.fs_rebuilds");
  }

  // Uniform verdict: one lost shard fails the restore on every rank.
  std::uint64_t worst = 0;
  comm.allreduce(&bad, &worst, 1, datatype_of<std::uint64_t>(), Op::max());
  if (worst != 0) {
    // Flight recorder: an unrecoverable restore is the end of the line for
    // this job — capture the rings before unwinding destroys the evidence.
    obs::trigger_postmortem("ckpt_unrecoverable_restore");
    throw Error(ErrClass::rte_not_found,
                "ckpt: unrecoverable shard in epoch " + std::to_string(chosen) +
                    " (no surviving redundancy or durable spill)");
  }

  last_committed_ = chosen;
  epochs_.erase(epochs_.upper_bound(chosen), epochs_.end());
  return res;
}

}  // namespace sessmpi::ckpt
