// XOR (RAID-5, m = 1) redundancy-set codec + the set partition shared by
// both codecs (see include/sessmpi/ckpt/codec.hpp for the stripe layout).

#include <algorithm>

#include "sessmpi/base/error.hpp"
#include "sessmpi/base/gf256.hpp"
#include "sessmpi/ckpt/codec.hpp"

namespace sessmpi::ckpt {

SetLayout set_layout(int n, int comm_rank, int k, int m) {
  if (k < 1 || m < 0) {
    throw Error(ErrClass::arg, "ckpt: redundancy set needs k >= 1, m >= 0");
  }
  const int g = k + m;
  SetLayout s;
  s.first = (comm_rank / g) * g;
  s.size = std::min(g, n - s.first);
  // Tail set: keep as many parities as the membership supports.
  s.parity = std::min(m, s.size - 1);
  s.data = s.size - s.parity;
  return s;
}

namespace {

/// m = 1: parity is the XOR of the stripe's data chunks; one missing data
/// chunk is parity XOR the surviving data chunks.
class XorCodec final : public SetCodec {
 public:
  explicit XorCodec(int k) : SetCodec(k, 1) {}

  void encode(int /*pi*/, const std::byte* const* data, std::size_t len,
              std::byte* out) const override {
    std::fill(out, out + len, std::byte{0});
    for (int j = 0; j < k(); ++j) {
      base::gf256::mul_add(out, data[j], len, 1);
    }
  }

  bool reconstruct(std::byte* const* data, const bool* data_ok,
                   const std::byte* const* parity,
                   std::size_t len) const override {
    int missing = -1;
    for (int j = 0; j < k(); ++j) {
      if (!data_ok[j]) {
        if (missing != -1) {
          return false;  // two losses beat RAID-5
        }
        missing = j;
      }
    }
    if (missing == -1) {
      return true;
    }
    if (parity[0] == nullptr) {
      return false;
    }
    std::copy(parity[0], parity[0] + len, data[missing]);
    for (int j = 0; j < k(); ++j) {
      if (j != missing) {
        base::gf256::mul_add(data[missing], data[j], len, 1);
      }
    }
    return true;
  }
};

}  // namespace

std::unique_ptr<SetCodec> make_xor_codec(int k) {
  return std::make_unique<XorCodec>(k);
}

}  // namespace sessmpi::ckpt
