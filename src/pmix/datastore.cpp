#include "sessmpi/pmix/datastore.hpp"

#include "sessmpi/base/yield.hpp"

namespace sessmpi::pmix {

void Datastore::put(ProcId proc, const std::string& key, Value value) {
  std::lock_guard lock(mu_);
  staged_[proc][key] = std::move(value);
}

std::size_t Datastore::commit(ProcId proc) {
  std::size_t published = 0;
  {
    std::lock_guard lock(mu_);
    auto it = staged_.find(proc);
    if (it == staged_.end()) {
      return 0;
    }
    for (auto& [key, value] : it->second) {
      published_[proc][key] = std::move(value);
      ++published;
    }
    staged_.erase(it);
  }
  cv_.notify_all();
  return published;
}

std::optional<Value> Datastore::get_immediate(ProcId proc,
                                              const std::string& key) {
  std::lock_guard lock(mu_);
  auto pit = published_.find(proc);
  if (pit == published_.end()) {
    return std::nullopt;
  }
  auto kit = pit->second.find(key);
  if (kit == pit->second.end()) {
    return std::nullopt;
  }
  return kit->second;
}

std::optional<Value> Datastore::get(ProcId proc, const std::string& key,
                                    base::Nanos timeout) {
  const auto deadline = base::Clock::now() + timeout;
  if (base::cooperative()) {
    // Fiber mode: poll under a short lock and yield unlocked — a
    // condition-variable wait would park the scheduler worker.
    for (;;) {
      if (auto v = get_immediate(proc, key)) {
        return v;
      }
      if (base::Clock::now() >= deadline) {
        return std::nullopt;
      }
      base::try_yield();
    }
  }
  std::unique_lock lock(mu_);
  for (;;) {
    auto pit = published_.find(proc);
    if (pit != published_.end()) {
      auto kit = pit->second.find(key);
      if (kit != pit->second.end()) {
        return kit->second;
      }
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return std::nullopt;
    }
  }
}

void Datastore::purge(ProcId proc) {
  std::lock_guard lock(mu_);
  staged_.erase(proc);
  published_.erase(proc);
}

std::size_t Datastore::published_count() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [proc, keys] : published_) {
    n += keys.size();
  }
  return n;
}

}  // namespace sessmpi::pmix
