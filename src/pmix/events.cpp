#include "sessmpi/pmix/events.hpp"

#include <algorithm>

namespace sessmpi::pmix {

int EventBus::register_handler(ProcId self, Handler handler) {
  std::lock_guard lock(mu_);
  const int id = next_id_++;
  handlers_[self].emplace_back(id, std::move(handler));
  return id;
}

void EventBus::deregister_handler(ProcId self, int id) {
  std::lock_guard lock(mu_);
  auto it = handlers_.find(self);
  if (it == handlers_.end()) {
    return;
  }
  std::erase_if(it->second, [id](const auto& p) { return p.first == id; });
}

void EventBus::notify(const Event& event, const std::vector<ProcId>& targets) {
  std::lock_guard lock(mu_);
  for (ProcId t : targets) {
    queues_[t].push_back(event);
  }
}

std::vector<Event> EventBus::poll(ProcId self) {
  std::vector<Event> drained;
  std::vector<std::pair<int, Handler>> handlers;
  {
    std::lock_guard lock(mu_);
    auto qit = queues_.find(self);
    if (qit != queues_.end()) {
      drained.swap(qit->second);
    }
    auto hit = handlers_.find(self);
    if (hit != handlers_.end()) {
      handlers = hit->second;  // copy so handlers may (de)register themselves
    }
  }
  for (const Event& e : drained) {
    for (const auto& [id, handler] : handlers) {
      handler(e);
    }
  }
  return drained;
}

std::size_t EventBus::pending(ProcId self) const {
  std::lock_guard lock(mu_);
  auto it = queues_.find(self);
  return it == queues_.end() ? 0 : it->second.size();
}

}  // namespace sessmpi::pmix
