#include "sessmpi/pmix/client.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_set>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/base/yield.hpp"
#include "sessmpi/obs/hist.hpp"
#include "sessmpi/obs/trace.hpp"
#include "sessmpi/obs/tvar.hpp"

namespace sessmpi::pmix {

namespace {

std::atomic<int>& modex_flag() {
  static std::atomic<int> mode{1};  // 0 = eager, 1 = lazy (the default)
  return mode;
}

/// FNV-1a over the participant list: disambiguates concurrent collectives
/// that share a tag but involve different process subsets.
std::uint64_t signature(const std::vector<ProcId>& procs) {
  std::uint64_t h = 1469598103934665603ull;
  for (ProcId p : procs) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(p));
    h *= 1099511628211ull;
  }
  return h;
}

/// Number of distinct nodes spanned by `procs`. Single O(n) pass — the
/// find-per-proc variant was O(n * nodes), which dominated 16k-rank fences.
int nodes_spanned(const base::Topology& topo, const std::vector<ProcId>& procs) {
  std::unordered_set<int> nodes;
  nodes.reserve(64);
  for (ProcId p : procs) {
    nodes.insert(topo.node_of(p));
  }
  return static_cast<int>(nodes.size());
}

}  // namespace

void register_modex_cvar() {
  static std::once_flag once;
  std::call_once(once, [] {
    obs::register_cvar(
        "pmix.modex",
        "endpoint exchange: \"lazy\" (fetch-on-first-contact with per-rank "
        "cache, default) or \"eager\" (full n-peer prefetch at init)",
        [] {
          return modex_flag().load(std::memory_order_acquire) == 0
                     ? std::string("eager")
                     : std::string("lazy");
        },
        [](const std::string& v) {
          if (v == "eager") {
            modex_flag().store(0, std::memory_order_release);
            return true;
          }
          if (v == "lazy") {
            modex_flag().store(1, std::memory_order_release);
            return true;
          }
          return false;
        });
  });
}

ModexMode modex_mode() {
  register_modex_cvar();
  return modex_flag().load(std::memory_order_acquire) == 0 ? ModexMode::eager
                                                           : ModexMode::lazy;
}

PmixClient::PmixClient(PmixRuntime& runtime, ProcId self)
    : runtime_(runtime), self_(self) {
  runtime_.server_of(self_).rpc_delay();
  base::precise_delay(runtime_.cost().pmix_client_init_ns);
}

PmixClient::~PmixClient() {
  // PMIx_Finalize departs any groups this process still belongs to so that
  // survivors observe an orderly departure rather than a failure.
  for (const GroupRecord& rec : runtime_.groups().groups_of(self_)) {
    group_leave(rec.name);
  }
}

std::uint64_t PmixClient::next_seq(const std::string& op_key) {
  return ++seq_[op_key];
}

void PmixClient::put(const std::string& key, Value value) {
  runtime_.datastore().put(self_, key, std::move(value));
}

std::size_t PmixClient::commit() {
  OBS_SPAN("pmix.modex.commit", "pmix");
  runtime_.server_of(self_).rpc_delay();
  return runtime_.datastore().commit(self_);
}

base::Result<Value> PmixClient::get(ProcId proc, const std::string& key,
                                    base::Nanos timeout) {
  OBS_SPAN("pmix.modex.get", "pmix");
  runtime_.server_of(self_).rpc_delay();
  if (runtime_.topology().node_of(proc) != runtime_.topology().node_of(self_)) {
    // Direct-modex fetch from a remote server.
    base::precise_delay(runtime_.cost().net_latency_ns);
  }
  auto v = runtime_.datastore().get(proc, key, timeout);
  if (!v) {
    return base::ErrClass::rte_timeout;
  }
  return *v;
}

base::Result<Value> PmixClient::get_immediate(ProcId proc,
                                              const std::string& key) {
  runtime_.server_of(self_).rpc_delay();
  if (runtime_.topology().node_of(proc) != runtime_.topology().node_of(self_)) {
    base::precise_delay(runtime_.cost().net_latency_ns);
  }
  auto v = runtime_.datastore().get_immediate(proc, key);
  if (!v) {
    return base::ErrClass::rte_not_found;
  }
  return *v;
}

base::Result<Value> PmixClient::peer_info(ProcId proc, const std::string& key,
                                          base::Nanos timeout) {
  static const auto cache_hits = base::counter("pmix.modex_cache_hits");
  static const auto lazy_fetches = base::counter("pmix.modex_lazy_fetches");
  {
    std::lock_guard lock(modex_mu_);
    if (peer_negative_.contains(proc)) {
      cache_hits.add();
      return base::ErrClass::rte_proc_failed;
    }
    auto pit = peer_cache_.find(proc);
    if (pit != peer_cache_.end()) {
      auto kit = pit->second.find(key);
      if (kit != pit->second.end()) {
        cache_hits.add();
        return kit->second;
      }
    }
  }

  // Miss: one dmodex fetch. Delays are charged outside modex_mu_ so a
  // cooperative yield never parks the cache lock.
  OBS_SPAN("pmix.modex.lazy_fetch", "pmix");
  lazy_fetches.add();
  runtime_.server_of(self_).rpc_delay();
  if (runtime_.topology().node_of(proc) != runtime_.topology().node_of(self_)) {
    base::precise_delay(runtime_.cost().net_latency_ns);
  }
  base::precise_delay(runtime_.cost().modex_per_peer_ns);

  const std::int64_t deadline =
      base::now_ns() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(timeout).count();
  for (;;) {
    auto v = runtime_.datastore().get_immediate(proc, key);
    if (v) {
      std::lock_guard lock(modex_mu_);
      peer_cache_[proc][key] = *v;
      return *v;
    }
    // Checked after the lookup so a fetch racing the failure notice keeps
    // any value it found (sends to it are then simply dropped, as before
    // lazy modex); a dead peer whose blobs were never found — or were
    // already purged by the notice — resolves to proc_failed.
    if (runtime_.is_failed(proc)) {
      std::lock_guard lock(modex_mu_);
      peer_negative_.insert(proc);
      return base::ErrClass::rte_proc_failed;
    }
    if (base::now_ns() >= deadline) {
      return base::ErrClass::rte_timeout;
    }
    if (base::cooperative()) {
      base::try_yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

void PmixClient::prefetch_peer_info(const std::vector<ProcId>& procs,
                                    const std::string& key) {
  OBS_SPAN_ARG("pmix.modex.prefetch", "pmix", procs.size());
  // One RPC covers the bulk transfer; the per-peer unpack cost is what
  // makes eager modex O(n) per rank.
  runtime_.server_of(self_).rpc_delay();
  std::int64_t uncached = 0;
  for (ProcId p : procs) {
    {
      std::lock_guard lock(modex_mu_);
      auto pit = peer_cache_.find(p);
      if (pit != peer_cache_.end() && pit->second.contains(key)) {
        continue;
      }
    }
    auto v = runtime_.datastore().get_immediate(p, key);
    if (v) {
      std::lock_guard lock(modex_mu_);
      peer_cache_[p][key] = *v;
      ++uncached;
    }
  }
  base::precise_delay(runtime_.cost().modex_per_peer_ns * uncached);
}

base::Result<std::shared_ptr<const std::vector<ProcId>>>
PmixClient::pset_snapshot(const std::string& name) {
  runtime_.server_of(self_).rpc_delay();
  try {
    return runtime_.pset_snapshot(name);
  } catch (const base::Error&) {
    return base::ErrClass::rte_not_found;
  }
}

CollectiveEngine::Outcome PmixClient::hier_collective(
    const std::string& op_tag, const std::vector<ProcId>& participants,
    std::optional<base::Nanos> timeout,
    const std::function<std::uint64_t()>& on_complete,
    std::int64_t exchange_delay_ns) {
  const base::Topology& topo = runtime_.topology();
  const std::string key_base = op_tag + "/" + std::to_string(signature(participants)) +
                               "#" + std::to_string(next_seq(op_tag));

  // Stage 0: notify the local server (serialized per node: fully subscribed
  // nodes pay proportionally more, as in the paper's 28-ppn results).
  runtime_.server_of(self_).rpc_delay();

  const int my_node = topo.node_of(self_);
  std::vector<ProcId> locals;
  std::vector<ProcId> delegates;  // lowest participant per node, ascending
  for (ProcId p : participants) {
    if (topo.node_of(p) == my_node) {
      locals.push_back(p);
    }
  }
  {
    // One O(n) pass: lowest participant per node. The previous rescan-per-
    // new-node shape was O(n * nodes) — minutes of host time per collective
    // at 16k participants.
    std::unordered_map<int, ProcId> lowest_by_node;
    lowest_by_node.reserve(64);
    for (ProcId p : participants) {
      auto [it, inserted] = lowest_by_node.try_emplace(topo.node_of(p), p);
      if (!inserted && p < it->second) {
        it->second = p;
      }
    }
    delegates.reserve(lowest_by_node.size());
    for (const auto& [node, lowest] : lowest_by_node) {
      delegates.push_back(lowest);
    }
    std::sort(delegates.begin(), delegates.end());
  }
  const bool is_delegate =
      std::find(delegates.begin(), delegates.end(), self_) != delegates.end();

  CollectiveEngine& engine = runtime_.collectives();

  // Stage 1: node-local gather at the local server.
  auto out1 = [&] {
    OBS_SPAN("pmix.hier.local_gather", "pmix");
    return engine.arrive(key_base + ":L" + std::to_string(my_node), locals,
                         self_, timeout, nullptr, 0);
  }();
  if (!out1.status.ok()) {
    return out1;
  }

  // Stage 2: inter-server all-to-all among node delegates. The completing
  // delegate runs on_complete (e.g. PGCID assignment) and posts the result
  // (and any failure) on the value board for the release stage.
  // The per-node slot the delegate uses to hand the inter-server result to
  // its node's release stage. Strictly node-local: the delegate posts before
  // joining the release op, and the release op cannot complete without the
  // delegate, so the value is always present; it is consumed (erased)
  // exactly once, by the release op's completion.
  const std::string value_key = key_base + ":V" + std::to_string(my_node);
  if (is_delegate) {
    OBS_SPAN("pmix.hier.exchange", "pmix");
    auto out2 = engine.arrive(key_base + ":G", delegates, self_, timeout,
                              on_complete, exchange_delay_ns);
    runtime_.board().post(value_key, out2.value);
    if (!out2.status.ok()) {
      // Failure marker is never erased (rare, bounded) so non-delegates can
      // read it at any point after release without racing cleanup.
      runtime_.board().post(key_base + ":st",
                            static_cast<std::uint64_t>(out2.status.cls));
    }
  }

  // Stage 3: node-local release; the engine distributes the node's board
  // value to every local participant atomically with completion.
  ValueBoard& board = runtime_.board();
  OBS_SPAN("pmix.hier.release", "pmix");
  auto out3 = engine.arrive(
      key_base + ":R" + std::to_string(my_node), locals, self_, timeout,
      [&board, value_key] { return board.consume(value_key, 1); }, 0);
  if (!out3.status.ok()) {
    return out3;
  }
  const auto stage2_err =
      static_cast<base::ErrClass>(board.read(key_base + ":st"));
  if (stage2_err != base::ErrClass::success) {
    return {base::RtStatus::fail(stage2_err), 0};
  }
  return out3;
}

base::RtStatus PmixClient::fence(const std::vector<ProcId>& procs,
                                 bool collect_data,
                                 std::optional<base::Nanos> timeout) {
  if (std::find(procs.begin(), procs.end(), self_) == procs.end()) {
    return base::RtStatus::fail(base::ErrClass::rte_bad_param);
  }
  if (collect_data) {
    runtime_.datastore().commit(self_);
  }
  OBS_SPAN_ARG("pmix.fence", "pmix", procs.size());
  const std::int64_t t0 = base::now_ns();
  const int span = nodes_spanned(runtime_.topology(), procs);
  auto out = hier_collective("fence", procs, timeout, nullptr,
                             runtime_.cost().fence_exchange_cost(span));
  static obs::Histogram& hist = obs::histogram("pmix.fence_ns");
  hist.record(static_cast<std::uint64_t>(base::now_ns() - t0));
  poll_events();
  return out.status;
}

base::Result<GroupResult> PmixClient::group_construct(
    const std::string& name, const std::vector<ProcId>& members,
    const GroupDirectives& dirs) {
  if (members.empty() ||
      std::find(members.begin(), members.end(), self_) == members.end()) {
    return base::ErrClass::rte_bad_param;
  }
  if (dirs.error_on_early_termination) {
    for (ProcId m : members) {
      if (runtime_.is_failed(m)) {
        return base::ErrClass::rte_proc_failed;
      }
    }
  }
  if (runtime_.groups().lookup(name)) {
    return base::ErrClass::rte_exists;
  }
  OBS_SPAN_ARG("pmix.group_construct", "pmix", members.size());
  const ProcId leader = dirs.leader.value_or(
      *std::min_element(members.begin(), members.end()));
  const int span = nodes_spanned(runtime_.topology(), members);
  PmixRuntime& rt = runtime_;
  const bool want_pgcid = dirs.request_pgcid;
  const bool notify = dirs.notify_on_termination;
  auto out = hier_collective(
      "grp:" + name, members, dirs.timeout,
      [&rt, name, members, leader, want_pgcid, notify] {
        const std::uint64_t pgcid = want_pgcid ? rt.alloc_pgcid() : 0;
        GroupRecord rec;
        rec.name = name;
        rec.pgcid = pgcid;
        rec.leader = leader;
        rec.members = members;
        rec.notify_on_termination = notify;
        rt.groups().add(std::move(rec));
        return pgcid;
      },
      rt.cost().group_exchange_cost(span));
  if (!out.status.ok()) {
    return out.status.cls;
  }
  GroupResult res;
  res.pgcid = out.value;
  res.leader = leader;
  res.members = members;
  return res;
}

base::Result<std::uint64_t> PmixClient::acquire_pgcid(
    const std::vector<ProcId>& members, const std::string& context,
    std::optional<base::Nanos> timeout) {
  if (members.empty() ||
      std::find(members.begin(), members.end(), self_) == members.end()) {
    return base::ErrClass::rte_bad_param;
  }
  OBS_SPAN_ARG("pmix.pgcid_acquire", "pmix", members.size());
  const int span = nodes_spanned(runtime_.topology(), members);
  PmixRuntime& rt = runtime_;
  auto out = hier_collective(
      "pgcid:" + context, members, timeout, [&rt] { return rt.alloc_pgcid(); },
      rt.cost().group_exchange_cost(span));
  if (!out.status.ok()) {
    return out.status.cls;
  }
  return out.value;
}

base::RtStatus PmixClient::group_destruct(const std::string& name,
                                          const std::vector<ProcId>& members,
                                          std::optional<base::Nanos> timeout) {
  if (std::find(members.begin(), members.end(), self_) == members.end()) {
    return base::RtStatus::fail(base::ErrClass::rte_bad_param);
  }
  const int span = nodes_spanned(runtime_.topology(), members);
  PmixRuntime& rt = runtime_;
  auto out = hier_collective(
      "grpdel:" + name, members, timeout,
      [&rt, name] {
        rt.groups().remove(name);
        return std::uint64_t{0};
      },
      rt.cost().group_destruct_base_ns +
          rt.cost().fence_per_node_ns * base::CostModel::log2_ceil(span));
  return out.status;
}

base::RtStatus PmixClient::group_leave(const std::string& name) {
  runtime_.server_of(self_).rpc_delay();
  auto rec = runtime_.groups().lookup(name);
  if (!rec) {
    return base::RtStatus::fail(base::ErrClass::rte_not_found);
  }
  auto remaining = runtime_.groups().leave(name, self_);
  if (remaining && !remaining->empty()) {
    Event e;
    e.kind = EventKind::group_member_left;
    e.about = self_;
    e.group = name;
    e.pgcid = rec->pgcid;
    runtime_.events().notify(e, *remaining);
  }
  return base::RtStatus::success();
}

base::RtStatus PmixClient::group_invite(const std::string& name,
                                        const std::vector<ProcId>& members) {
  runtime_.server_of(self_).rpc_delay();
  if (members.empty() ||
      std::find(members.begin(), members.end(), self_) == members.end()) {
    return base::RtStatus::fail(base::ErrClass::rte_bad_param);
  }
  if (runtime_.groups().lookup(name)) {
    return base::RtStatus::fail(base::ErrClass::rte_exists);
  }
  auto st = runtime_.invites().open(name, self_, members);
  if (!st.ok()) {
    return st;
  }
  Event e;
  e.kind = EventKind::group_invited;
  e.about = self_;
  e.group = name;
  std::vector<ProcId> targets;
  for (ProcId m : members) {
    if (m != self_) {
      targets.push_back(m);
    }
  }
  runtime_.events().notify(e, targets);
  return base::RtStatus::success();
}

base::RtStatus PmixClient::group_join(const std::string& name) {
  runtime_.server_of(self_).rpc_delay();
  return runtime_.invites().respond(name, self_, /*join=*/true);
}

base::RtStatus PmixClient::group_decline(const std::string& name) {
  runtime_.server_of(self_).rpc_delay();
  return runtime_.invites().respond(name, self_, /*join=*/false);
}

base::Result<GroupResult> PmixClient::group_invite_finalize(
    const std::string& name, const GroupDirectives& dirs,
    std::optional<base::Nanos> timeout) {
  runtime_.server_of(self_).rpc_delay();
  auto fin = runtime_.invites().finalize(name, timeout);
  if (!fin.ok()) {
    return fin.error();
  }
  const InviteStatus& st = fin.value();
  if (st.joined.empty()) {
    return base::ErrClass::rte_not_found;
  }
  const std::uint64_t pgcid =
      dirs.request_pgcid ? runtime_.alloc_pgcid() : 0;
  GroupRecord rec;
  rec.name = name;
  rec.pgcid = pgcid;
  rec.leader = dirs.leader.value_or(st.initiator);
  rec.members = st.joined;
  rec.notify_on_termination = dirs.notify_on_termination;
  if (!runtime_.groups().add(std::move(rec))) {
    return base::ErrClass::rte_exists;
  }
  base::precise_delay(runtime_.cost().group_exchange_cost(
      nodes_spanned(runtime_.topology(), st.joined)));
  Event ready;
  ready.kind = EventKind::group_ready;
  ready.about = st.initiator;
  ready.group = name;
  ready.pgcid = pgcid;
  std::vector<ProcId> targets;
  for (ProcId m : st.joined) {
    if (m != self_) {
      targets.push_back(m);
    }
  }
  runtime_.events().notify(ready, targets);
  GroupResult out;
  out.pgcid = pgcid;
  out.leader = rec.leader;
  out.members = st.joined;
  return out;
}

std::size_t PmixClient::query_num_psets() {
  runtime_.server_of(self_).rpc_delay();
  return runtime_.psets().count();
}

std::vector<std::string> PmixClient::query_pset_names() {
  runtime_.server_of(self_).rpc_delay();
  return runtime_.psets().names();
}

base::Result<std::vector<ProcId>> PmixClient::query_pset_membership(
    const std::string& name) {
  runtime_.server_of(self_).rpc_delay();
  const base::Topology& topo = runtime_.topology();
  if (name == kPsetSelf) {
    return std::vector<ProcId>{self_};
  }
  if (name == kPsetShared) {
    std::vector<ProcId> out;
    const int node = topo.node_of(self_);
    for (ProcId p = 0; p < topo.size(); ++p) {
      if (topo.node_of(p) == node && !runtime_.is_failed(p)) {
        out.push_back(p);
      }
    }
    return out;
  }
  auto members = runtime_.psets().lookup(name);
  if (!members) {
    return base::ErrClass::rte_not_found;
  }
  // Fault awareness: a membership re-query reflects process failures, so an
  // application can rebuild its communicators the Sessions way — query the
  // pset again, derive a group, create_from_group — instead of (or after)
  // shrinking.
  std::vector<ProcId> out;
  out.reserve(members->size());
  for (ProcId p : *members) {
    if (!runtime_.is_failed(p)) {
      out.push_back(p);
    }
  }
  return out;
}

std::size_t PmixClient::query_num_groups() {
  runtime_.server_of(self_).rpc_delay();
  return runtime_.groups().count();
}

std::vector<std::string> PmixClient::query_group_names() {
  runtime_.server_of(self_).rpc_delay();
  return runtime_.groups().names();
}

int PmixClient::register_event_handler(EventBus::Handler handler) {
  return runtime_.events().register_handler(self_, std::move(handler));
}

void PmixClient::deregister_event_handler(int id) {
  runtime_.events().deregister_handler(self_, id);
}

std::vector<Event> PmixClient::poll_events() {
  return runtime_.events().poll(self_);
}

}  // namespace sessmpi::pmix
