#pragma once

// Process-set registry. Process sets are *names for lists of processes*
// (paper §III-B6) — distinct from PMIx groups, which are live objects with a
// PGCID. The runtime predefines mpi://world, mpi://self and mpi://shared;
// site-specific sets can be added by the resource manager (tests and
// examples use this to model site-defined psets).

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sessmpi/pmix/value.hpp"

namespace sessmpi::pmix {

inline constexpr const char* kPsetWorld = "mpi://world";
inline constexpr const char* kPsetSelf = "mpi://self";
inline constexpr const char* kPsetShared = "mpi://shared";

class PsetRegistry {
 public:
  /// Define or replace a named pset.
  void define(const std::string& name, std::vector<ProcId> members);

  /// Members of a pset, or nullopt if undefined. Per-process psets
  /// (mpi://self, mpi://shared) are resolved relative to `asker`.
  [[nodiscard]] std::optional<std::vector<ProcId>> lookup(
      const std::string& name) const;

  [[nodiscard]] std::size_t count() const;

  /// All pset names, sorted. When `member` is given, only psets containing
  /// that process are returned (how PMIX_QUERY_PSET_NAMES behaves per-proc).
  [[nodiscard]] std::vector<std::string> names(
      std::optional<ProcId> member = std::nullopt) const;

  [[nodiscard]] bool contains(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<ProcId>> psets_;
};

}  // namespace sessmpi::pmix
