#pragma once

// PMIx event notification subsystem: clients register handlers; the runtime
// (or other clients) raise events targeted at sets of processes. Events are
// queued per target and delivered when the target polls (clients poll during
// fences and explicitly), keeping delivery on the target's own thread.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sessmpi/pmix/value.hpp"

namespace sessmpi::pmix {

enum class EventKind : std::uint8_t {
  proc_failed,        ///< a process terminated without leaving its groups
  group_member_left,  ///< a member departed a PMIx group
  group_invalidated,  ///< a group was destructed / its id invalidated
  group_invited,      ///< asynchronous construction: you are invited
  group_ready,        ///< asynchronous construction completed
  user,               ///< application-raised event
};

struct Event {
  EventKind kind = EventKind::user;
  ProcId about = -1;       ///< the process the event concerns
  std::string group;       ///< group name, when group-related
  std::uint64_t pgcid = 0; ///< group id, when group-related
  std::string info;        ///< free-form payload
};

class EventBus {
 public:
  using Handler = std::function<void(const Event&)>;

  /// Register a handler for `self`; returns a registration id.
  int register_handler(ProcId self, Handler handler);
  void deregister_handler(ProcId self, int id);

  /// Queue `event` for every process in `targets`.
  void notify(const Event& event, const std::vector<ProcId>& targets);

  /// Drain `self`'s queue, invoking registered handlers on the caller's
  /// thread; returns the drained events.
  std::vector<Event> poll(ProcId self);

  [[nodiscard]] std::size_t pending(ProcId self) const;

 private:
  mutable std::mutex mu_;
  std::map<ProcId, std::vector<std::pair<int, Handler>>> handlers_;
  std::map<ProcId, std::vector<Event>> queues_;
  int next_id_ = 1;
};

}  // namespace sessmpi::pmix
