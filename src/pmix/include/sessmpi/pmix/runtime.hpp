#pragma once

// Allocation-wide shared PMIx state: the modex datastore, the collective
// rendezvous engine, pset/group registries, the event bus, the PGCID
// allocator and the per-node servers. One PmixRuntime exists per simulated
// allocation; PRRTE (src/prte) owns it.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sessmpi/base/cost_model.hpp"
#include "sessmpi/base/topology.hpp"
#include "sessmpi/pmix/collective.hpp"
#include "sessmpi/pmix/datastore.hpp"
#include "sessmpi/pmix/events.hpp"
#include "sessmpi/pmix/group.hpp"
#include "sessmpi/pmix/invite.hpp"
#include "sessmpi/pmix/pset.hpp"

namespace sessmpi::pmix {

class PmixServer;

/// Tiny shared blackboard used to hand a value computed by a node delegate
/// in the inter-server stage of a hierarchical collective to the node-local
/// release stage.
class ValueBoard {
 public:
  /// Idempotent: every node delegate posts the same value.
  void post(const std::string& key, std::uint64_t value) {
    std::lock_guard lock(mu_);
    values_[key].value = value;
  }
  [[nodiscard]] std::uint64_t read(const std::string& key) const {
    std::lock_guard lock(mu_);
    auto it = values_.find(key);
    return it == values_.end() ? 0 : it->second.value;
  }
  /// Read the value and count one consumer; the entry is erased when
  /// `expected` consumers have read it. This is how the per-node release
  /// stages of a hierarchical collective retire the entry without racing
  /// each other (each node consumes exactly once).
  [[nodiscard]] std::uint64_t consume(const std::string& key, int expected) {
    std::lock_guard lock(mu_);
    auto it = values_.find(key);
    if (it == values_.end()) {
      return 0;
    }
    const std::uint64_t v = it->second.value;
    if (++it->second.consumed >= expected) {
      values_.erase(it);
    }
    return v;
  }
  void erase(const std::string& key) {
    std::lock_guard lock(mu_);
    values_.erase(key);
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return values_.size();
  }

 private:
  struct Entry {
    std::uint64_t value = 0;
    int consumed = 0;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> values_;
};

class PmixRuntime {
 public:
  PmixRuntime(base::Topology topo, base::CostModel cost);
  ~PmixRuntime();

  PmixRuntime(const PmixRuntime&) = delete;
  PmixRuntime& operator=(const PmixRuntime&) = delete;

  [[nodiscard]] const base::Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const base::CostModel& cost() const noexcept { return cost_; }

  [[nodiscard]] Datastore& datastore() noexcept { return datastore_; }
  [[nodiscard]] CollectiveEngine& collectives() noexcept { return *collectives_; }
  [[nodiscard]] PsetRegistry& psets() noexcept { return psets_; }
  [[nodiscard]] GroupRegistry& groups() noexcept { return groups_; }
  [[nodiscard]] EventBus& events() noexcept { return events_; }
  [[nodiscard]] ValueBoard& board() noexcept { return board_; }
  [[nodiscard]] InviteBoard& invites() noexcept { return invites_; }

  [[nodiscard]] PmixServer& server(int node);
  [[nodiscard]] PmixServer& server_of(ProcId proc);

  /// Allocate a Process Group Context Identifier: unique within the
  /// allocation, guaranteed non-zero (paper §III-B3).
  std::uint64_t alloc_pgcid() noexcept {
    return next_pgcid_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Next PGCID that would be handed out (tests).
  [[nodiscard]] std::uint64_t peek_pgcid() const noexcept {
    return next_pgcid_.load(std::memory_order_relaxed);
  }

  /// Failure injection: mark a process dead, purge its modex data, and raise
  /// proc_failed events to co-members of any group that asked for
  /// termination notification.
  void notify_proc_failed(ProcId proc);
  [[nodiscard]] bool is_failed(ProcId proc) const;
  [[nodiscard]] std::vector<ProcId> failed_procs() const;

  /// Monotonic failure epoch: bumped once per accepted failure report.
  /// Caches keyed on (thing, epoch) — pset snapshots, memoized pset->group
  /// resolutions, collective failure-oracle gates — revalidate only when
  /// this moves, making steady-state liveness checks O(1).
  [[nodiscard]] std::uint64_t failure_epoch() const noexcept {
    return failure_epoch_.load(std::memory_order_acquire);
  }

  /// Shared, failure-filtered membership snapshot for a named pset. All
  /// askers at the same failure epoch receive the SAME vector (one
  /// allocation per (pset, epoch), not one per rank — the difference
  /// between O(n) and O(n^2) memory at 16k ranks). Throws rte_bad_param on
  /// an unknown pset. kPsetSelf/kPsetShared are per-asker and must be
  /// resolved by the client, not here.
  [[nodiscard]] std::shared_ptr<const std::vector<ProcId>> pset_snapshot(
      const std::string& name);

 private:
  base::Topology topo_;
  base::CostModel cost_;
  Datastore datastore_;
  std::unique_ptr<CollectiveEngine> collectives_;
  PsetRegistry psets_;
  GroupRegistry groups_;
  EventBus events_;
  ValueBoard board_;
  InviteBoard invites_;
  std::vector<std::unique_ptr<PmixServer>> servers_;
  std::atomic<std::uint64_t> next_pgcid_{1};
  mutable std::mutex failed_mu_;
  std::vector<ProcId> failed_;
  /// Dense O(1) lock-free mirror of failed_ (hot-path is_failed checks).
  std::unique_ptr<std::atomic<bool>[]> failed_flags_;
  std::atomic<std::uint64_t> failure_epoch_{0};
  struct PsetSnapshot {
    std::uint64_t epoch = 0;
    std::shared_ptr<const std::vector<ProcId>> members;
  };
  std::mutex snap_mu_;
  std::map<std::string, PsetSnapshot> pset_snaps_;
};

/// Per-node PMIx server. Local client RPCs serialize through the server,
/// which is what makes fully-subscribed nodes (28 procs per node in the
/// paper) pay more for runtime operations than sparsely populated ones.
class PmixServer {
 public:
  PmixServer(PmixRuntime& runtime, int node) : runtime_(runtime), node_(node) {}

  /// Model one client<->server RPC: serialized through the server thread.
  void rpc_delay();

  [[nodiscard]] int node() const noexcept { return node_; }
  [[nodiscard]] std::uint64_t rpcs_served() const noexcept {
    return rpcs_.load(std::memory_order_relaxed);
  }

 private:
  PmixRuntime& runtime_;
  int node_;
  /// Lock-free serialization: each RPC reserves [start, start+cost) on the
  /// server timeline via CAS and waits out its own slot. Equivalent wall
  /// time to a mutex held across the delay, but never blocks a cooperative
  /// scheduler worker on another rank's modeled delay.
  std::atomic<std::int64_t> next_free_ns_{0};
  std::atomic<std::uint64_t> rpcs_{0};
};

}  // namespace sessmpi::pmix
