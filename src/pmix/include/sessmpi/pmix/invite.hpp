#pragma once

// Asynchronous PMIx group construction — the *invite/join* model of paper
// §III-A: the initiator invites a set of processes; each invitee joins or
// declines (or never answers); the initiator can finalize with a timeout,
// dropping non-responders and decliners, so failed processes can be
// "replaced" by simply proceeding without them. Completion raises
// group_ready events and registers the group (with a PGCID) exactly like
// the collective constructor.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/result.hpp"
#include "sessmpi/pmix/value.hpp"

namespace sessmpi::pmix {

enum class InviteResponse : std::uint8_t { pending, joined, declined };

struct InviteStatus {
  std::string name;
  ProcId initiator = -1;
  std::vector<ProcId> invited;
  std::vector<ProcId> joined;
  std::vector<ProcId> declined;
  bool completed = false;
  std::uint64_t pgcid = 0;
};

/// Runtime-side state for in-flight asynchronous constructions.
class InviteBoard {
 public:
  /// Start an invitation. Fails (rte_exists) if `name` is already inviting.
  base::RtStatus open(const std::string& name, ProcId initiator,
                      const std::vector<ProcId>& invited);

  /// Record a response. Returns rte_not_found for unknown names and
  /// rte_bad_param if `who` was not invited or already answered.
  base::RtStatus respond(const std::string& name, ProcId who, bool join);

  /// True once every invitee has answered.
  [[nodiscard]] bool all_answered(const std::string& name) const;

  [[nodiscard]] std::optional<InviteStatus> status(
      const std::string& name) const;

  /// Block until every invitee answered or `timeout` expires; then close
  /// the invitation and return its final status (non-responders remain
  /// pending and are simply not part of the group). rte_not_found for
  /// unknown names.
  base::Result<InviteStatus> finalize(const std::string& name,
                                      std::optional<base::Nanos> timeout);

  /// Mark completion metadata (PGCID) before the initiator publishes it.
  void set_pgcid(const std::string& name, std::uint64_t pgcid);

  [[nodiscard]] std::size_t open_invitations() const;

 private:
  struct Entry {
    InviteStatus st;
    std::map<ProcId, InviteResponse> responses;
  };
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Entry> entries_;
};

}  // namespace sessmpi::pmix
