#pragma once

// PMIx-style typed values exchanged through the modex datastore and returned
// by queries.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "sessmpi/base/topology.hpp"

namespace sessmpi::pmix {

/// Identifier of a process within the allocation (global rank).
using ProcId = base::Rank;

using Value = std::variant<std::string, std::int64_t, std::uint64_t,
                           std::vector<ProcId>, std::vector<std::byte>>;

/// Well-known query keys (paper §III-A).
inline constexpr const char* kQueryNumPsets = "PMIX_QUERY_NUM_PSETS";
inline constexpr const char* kQueryPsetNames = "PMIX_QUERY_PSET_NAMES";
inline constexpr const char* kQueryPsetMembership = "PMIX_QUERY_PSET_MEMBERSHIP";
inline constexpr const char* kQueryNumGroups = "PMIX_QUERY_NUM_GROUPS";
inline constexpr const char* kQueryGroupNames = "PMIX_QUERY_GROUP_NAMES";

}  // namespace sessmpi::pmix
