#pragma once

// PMIx group bookkeeping: live groups with their PGCID and membership, plus
// the directive set accepted by the collective group constructor (paper
// §III-A): leader selection, timeout, PGCID request, termination events.

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/pmix/value.hpp"

namespace sessmpi::pmix {

/// Directives accepted by PMIx_Group_construct.
struct GroupDirectives {
  std::optional<ProcId> leader;            ///< default: lowest participant
  std::optional<base::Nanos> timeout;      ///< abort construct after this long
  bool request_pgcid = true;               ///< assign a Process Group Context Id
  bool notify_on_termination = false;      ///< raise events on member death
  bool error_on_early_termination = false; ///< treat pre-join death as error
};

struct GroupRecord {
  std::string name;
  std::uint64_t pgcid = 0;
  ProcId leader = -1;
  std::vector<ProcId> members;
  bool notify_on_termination = false;
};

class GroupRegistry {
 public:
  /// Register a constructed group. Returns false if the name is live.
  bool add(GroupRecord record);

  /// Remove a group (destruct). Returns the removed record, if any.
  std::optional<GroupRecord> remove(const std::string& name);

  [[nodiscard]] std::optional<GroupRecord> lookup(const std::string& name) const;
  [[nodiscard]] std::optional<GroupRecord> lookup_by_pgcid(
      std::uint64_t pgcid) const;

  /// A member departs; returns remaining members, or nullopt if no group.
  std::optional<std::vector<ProcId>> leave(const std::string& name,
                                           ProcId proc);

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Groups (names) that `proc` currently belongs to.
  [[nodiscard]] std::vector<GroupRecord> groups_of(ProcId proc) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, GroupRecord> groups_;
};

}  // namespace sessmpi::pmix
