#pragma once

// Rendezvous engine for PMIx collective operations (fence, group construct,
// group destruct). Each logical collective is identified by a key that the
// caller has already disambiguated with a per-participant sequence number
// (all participants of a collective perform the same sequence of operations
// on a key, so locally-maintained counters agree).
//
// Blocking with a timeout and abort-on-participant-failure are supported:
// both map the PMIx directives described in paper §III-A ("support a
// time-out feature to avoid deadlock due to a non-responsive participant").

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/error.hpp"
#include "sessmpi/pmix/value.hpp"

namespace sessmpi::pmix {

class CollectiveEngine {
 public:
  /// Oracle consulted while waiting: returns true if the given process has
  /// terminated without departing its collectives.
  using FailureOracle = std::function<bool(ProcId)>;

  /// Monotonic failure-epoch source. When provided, the per-participant
  /// failure scan while waiting only runs after the epoch moved — the
  /// steady-state liveness check is O(1) instead of O(participants).
  using EpochFn = std::function<std::uint64_t()>;

  explicit CollectiveEngine(FailureOracle is_failed, EpochFn failure_epoch = {});

  struct Outcome {
    base::RtStatus status;
    std::uint64_t value = 0;  ///< e.g. the PGCID computed on completion
  };

  /// Join collective `key` as `self` and block until every participant has
  /// arrived (success), the timeout expires (rte_timeout), or a participant
  /// is observed failed (rte_proc_failed). `on_complete` runs exactly once,
  /// on the last arriver, and its return value is distributed to everyone.
  /// `post_release_delay_ns` models the inter-server data exchange; it is
  /// injected on every participant's own thread after release so concurrent
  /// participants add it to wall time once.
  Outcome arrive(const std::string& key, const std::vector<ProcId>& participants,
                 ProcId self, std::optional<base::Nanos> timeout,
                 const std::function<std::uint64_t()>& on_complete,
                 std::int64_t post_release_delay_ns);

  /// Number of in-flight operations (diagnostics).
  [[nodiscard]] std::size_t active_ops() const;

 private:
  struct Op {
    std::vector<ProcId> participants;
    std::size_t arrived = 0;
    std::size_t departed = 0;
    bool completed = false;  ///< guarded by mu_
    /// Lock-free mirror of `completed` so cooperative waiters can poll
    /// without re-acquiring the engine mutex on every yield.
    std::atomic<bool> done{false};
    /// Failure epoch at the last participant scan (oracle gating).
    std::uint64_t checked_epoch = 0;
    base::RtStatus status = base::RtStatus::success();
    std::uint64_t value = 0;
    std::condition_variable cv;
  };

  /// Run the timeout/failure abort checks for `op` (mu_ held). Returns
  /// true if the op was aborted by this call.
  bool try_abort_locked(const std::string& key, const std::shared_ptr<Op>& op,
                        const std::optional<base::Clock::time_point>& deadline);

  FailureOracle is_failed_;
  EpochFn failure_epoch_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Op>> ops_;
  /// Keys of aborted operations and their error class; consulted by late
  /// arrivals so they observe the same failure instead of hanging.
  std::map<std::string, base::ErrClass> aborted_;
};

}  // namespace sessmpi::pmix
