#pragma once

// Per-process PMIx client. Provides the subset of the PMIx API the MPI
// Sessions prototype needed (paper §III-A): modex put/commit/get, fence,
// collective group construct/destruct (with directives: leader, timeout,
// PGCID request, termination events), asynchronous group departure, pset
// and group queries, and event-handler registration.
//
// Collectives run in the three-stage hierarchical fashion described in the
// paper: node-local gather at the local server, inter-server all-to-all
// (modeled by the cost model's exchange costs), node-local release.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sessmpi/base/result.hpp"
#include "sessmpi/pmix/runtime.hpp"

namespace sessmpi::pmix {

struct GroupResult {
  std::uint64_t pgcid = 0;
  ProcId leader = -1;
  std::vector<ProcId> members;
};

/// Modex strategy (`pmix.modex` cvar). eager = every rank prefetches every
/// peer's endpoint blob behind the init fence (O(n) per rank, O(n^2) across
/// the job — the classic full modex); lazy = endpoint blobs are fetched on
/// first contact only and cached (O(active peers); DESIGN.md §15).
enum class ModexMode { eager, lazy };

/// Current mode from the `pmix.modex` cvar ("eager" | "lazy"; default lazy).
[[nodiscard]] ModexMode modex_mode();

/// Idempotent registration of the `pmix.modex` cvar.
void register_modex_cvar();

class PmixClient {
 public:
  /// PMIx_Init: attaches to the node-local server (cost: one serialized RPC
  /// plus the modeled client-init time).
  PmixClient(PmixRuntime& runtime, ProcId self);

  /// PMIx_Finalize: departs any live groups asynchronously.
  ~PmixClient();

  PmixClient(const PmixClient&) = delete;
  PmixClient& operator=(const PmixClient&) = delete;

  [[nodiscard]] ProcId self() const noexcept { return self_; }
  [[nodiscard]] PmixRuntime& runtime() noexcept { return runtime_; }

  // --- modex -------------------------------------------------------------
  void put(const std::string& key, Value value);
  std::size_t commit();
  /// Blocking lookup of `key` published by `proc` (dmodex semantics).
  base::Result<Value> get(ProcId proc, const std::string& key,
                          base::Nanos timeout = std::chrono::seconds(5));
  /// Non-blocking lookup (PMIX_IMMEDIATE): returns not_found instead of
  /// waiting for the key to appear. Used by ckpt restore to probe a dead
  /// peer's committed-epoch metadata without a 5 s stall per dead rank.
  base::Result<Value> get_immediate(ProcId proc, const std::string& key);

  // --- lazy modex (DESIGN.md §15) -----------------------------------------
  /// Cached peer-info lookup: the per-rank modex cache answers repeats for
  /// free (counter pmix.modex_cache_hits); a miss performs one lazy fetch
  /// (counter pmix.modex_lazy_fetches, cost modex_per_peer_ns + RPC) and
  /// waits — yielding under the cooperative scheduler — for the peer to
  /// publish. A peer that died before ever publishing lands in the negative
  /// cache and every call returns rte_proc_failed immediately, so a first
  /// send to a dead rank escalates instead of hanging.
  base::Result<Value> peer_info(ProcId proc, const std::string& key,
                                base::Nanos timeout = std::chrono::seconds(2));
  /// Eager-modex bulk prefetch: populate the cache for every `proc` (callers
  /// guarantee all of them have already committed, e.g. behind the world
  /// fence). Charges modex_per_peer_ns per uncached peer.
  void prefetch_peer_info(const std::vector<ProcId>& procs,
                          const std::string& key);

  /// Shared pset-membership snapshot (one RPC): all ranks resolving the
  /// same pset in the same failure epoch share ONE members vector owned by
  /// the runtime — the O(n^2)-memory killer at 10k ranks. Fails with
  /// rte_not_found for unknown psets; mpi://self and mpi://shared are
  /// resolved client-side by query_pset_membership instead.
  base::Result<std::shared_ptr<const std::vector<ProcId>>> pset_snapshot(
      const std::string& name);

  // --- fence ---------------------------------------------------------------
  /// Collective barrier over `procs` (must contain self). Events queued for
  /// this process are delivered (handlers invoked) before returning.
  base::RtStatus fence(const std::vector<ProcId>& procs,
                       bool collect_data = false,
                       std::optional<base::Nanos> timeout = std::nullopt);

  // --- groups --------------------------------------------------------------
  base::Result<GroupResult> group_construct(const std::string& name,
                                            const std::vector<ProcId>& members,
                                            const GroupDirectives& dirs = {});
  /// Acquire a fresh PGCID collectively over `members` without registering
  /// a named group (models a construct/destruct pair used purely for CID
  /// generation; cost equals the group construct exchange). This is how the
  /// MPI layer's exCID generator obtains new 64-bit ids (paper §III-B3).
  /// `context` keeps concurrent acquisitions from overlapping member sets
  /// apart (the MPI layer passes the user-visible string tag).
  base::Result<std::uint64_t> acquire_pgcid(
      const std::vector<ProcId>& members, const std::string& context = "",
      std::optional<base::Nanos> timeout = std::nullopt);

  base::RtStatus group_destruct(const std::string& name,
                                const std::vector<ProcId>& members,
                                std::optional<base::Nanos> timeout = std::nullopt);
  /// Asynchronous departure: remaining members receive group_member_left.
  base::RtStatus group_leave(const std::string& name);

  // --- asynchronous (invite/join) construction (paper §III-A) -------------
  /// Initiator: open an invitation; invitees receive group_invited events.
  base::RtStatus group_invite(const std::string& name,
                              const std::vector<ProcId>& members);
  /// Invitee responses.
  base::RtStatus group_join(const std::string& name);
  base::RtStatus group_decline(const std::string& name);
  /// Initiator: wait (up to `timeout`) for responses, then close the
  /// invitation. Decliners and non-responders are dropped; the group forms
  /// from whoever joined, gets a PGCID, and joined members receive
  /// group_ready events.
  base::Result<GroupResult> group_invite_finalize(
      const std::string& name, const GroupDirectives& dirs = {},
      std::optional<base::Nanos> timeout = std::nullopt);

  // --- queries -------------------------------------------------------------
  [[nodiscard]] std::size_t query_num_psets();
  [[nodiscard]] std::vector<std::string> query_pset_names();
  base::Result<std::vector<ProcId>> query_pset_membership(
      const std::string& name);
  [[nodiscard]] std::size_t query_num_groups();
  [[nodiscard]] std::vector<std::string> query_group_names();

  // --- events ----------------------------------------------------------------
  int register_event_handler(EventBus::Handler handler);
  void deregister_event_handler(int id);
  std::vector<Event> poll_events();

 private:
  /// Three-stage hierarchical collective. `on_complete` runs exactly once
  /// across all participants (on the last delegate of the inter-server
  /// stage); its value is distributed to every participant.
  CollectiveEngine::Outcome hier_collective(
      const std::string& op_tag, const std::vector<ProcId>& participants,
      std::optional<base::Nanos> timeout,
      const std::function<std::uint64_t()>& on_complete,
      std::int64_t exchange_delay_ns);

  std::uint64_t next_seq(const std::string& op_key);

  PmixRuntime& runtime_;
  ProcId self_;
  std::map<std::string, std::uint64_t> seq_;

  // Lazy-modex caches. Guarded by modex_mu_ (per-rank; held only for map
  // access, never across a modeled delay or scheduler yield).
  std::mutex modex_mu_;
  std::unordered_map<ProcId, std::map<std::string, Value>> peer_cache_;
  std::unordered_set<ProcId> peer_negative_;  ///< died before first publish
};

}  // namespace sessmpi::pmix
