#pragma once

// The modex datastore: per-process staged key/value pairs become globally
// visible after commit (PMIx_Put / PMIx_Commit semantics). Lookups of data
// from a remote process block (direct-modex style) until the value is
// published or the timeout expires.

#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/pmix/value.hpp"

namespace sessmpi::pmix {

class Datastore {
 public:
  /// Stage a key/value pair for `proc`; not visible until commit(proc).
  void put(ProcId proc, const std::string& key, Value value);

  /// Publish all staged pairs for `proc`. Returns number published.
  std::size_t commit(ProcId proc);

  /// Blocking lookup with timeout (dmodex). Returns nullopt on timeout.
  std::optional<Value> get(ProcId proc, const std::string& key,
                           base::Nanos timeout);

  /// Non-blocking lookup.
  std::optional<Value> get_immediate(ProcId proc, const std::string& key);

  /// Drop all published and staged data for `proc` (process exit).
  void purge(ProcId proc);

  [[nodiscard]] std::size_t published_count() const;

 private:
  using KeyMap = std::map<std::string, Value>;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<ProcId, KeyMap> staged_;
  std::map<ProcId, KeyMap> published_;
};

}  // namespace sessmpi::pmix
