#include "sessmpi/pmix/invite.hpp"

#include <algorithm>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/yield.hpp"

namespace sessmpi::pmix {

base::RtStatus InviteBoard::open(const std::string& name, ProcId initiator,
                                 const std::vector<ProcId>& invited) {
  std::lock_guard lock(mu_);
  if (entries_.contains(name)) {
    return base::RtStatus::fail(base::ErrClass::rte_exists);
  }
  Entry e;
  e.st.name = name;
  e.st.initiator = initiator;
  e.st.invited = invited;
  for (ProcId p : invited) {
    e.responses[p] = InviteResponse::pending;
  }
  // The initiator implicitly joins its own group.
  if (e.responses.contains(initiator)) {
    e.responses[initiator] = InviteResponse::joined;
    e.st.joined.push_back(initiator);
  }
  entries_.emplace(name, std::move(e));
  return base::RtStatus::success();
}

base::RtStatus InviteBoard::respond(const std::string& name, ProcId who,
                                    bool join) {
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return base::RtStatus::fail(base::ErrClass::rte_not_found);
    }
    auto rit = it->second.responses.find(who);
    if (rit == it->second.responses.end() ||
        rit->second != InviteResponse::pending) {
      return base::RtStatus::fail(base::ErrClass::rte_bad_param);
    }
    rit->second = join ? InviteResponse::joined : InviteResponse::declined;
    (join ? it->second.st.joined : it->second.st.declined).push_back(who);
  }
  cv_.notify_all();
  return base::RtStatus::success();
}

bool InviteBoard::all_answered(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return false;
  }
  return std::all_of(it->second.responses.begin(), it->second.responses.end(),
                     [](const auto& kv) {
                       return kv.second != InviteResponse::pending;
                     });
}

std::optional<InviteStatus> InviteBoard::status(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second.st;
}

base::Result<InviteStatus> InviteBoard::finalize(
    const std::string& name, std::optional<base::Nanos> timeout) {
  std::unique_lock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return base::ErrClass::rte_not_found;
  }
  const auto answered = [&] {
    return std::all_of(
        it->second.responses.begin(), it->second.responses.end(),
        [](const auto& kv) { return kv.second != InviteResponse::pending; });
  };
  if (base::cooperative()) {
    // Fiber mode: yield-poll instead of parking the scheduler worker.
    const auto deadline =
        timeout ? std::optional{base::Clock::now() + *timeout} : std::nullopt;
    while (!answered()) {
      if (deadline && base::Clock::now() >= *deadline) {
        break;
      }
      lock.unlock();
      base::try_yield();
      lock.lock();
      it = entries_.find(name);
      if (it == entries_.end()) {
        return base::ErrClass::rte_not_found;
      }
    }
  } else if (timeout) {
    cv_.wait_for(lock, *timeout, answered);
  } else {
    cv_.wait(lock, answered);
  }
  // Close regardless: pending invitees are dropped (the paper's "replace
  // processes that ... fail to respond within a specified time").
  it->second.st.completed = true;
  InviteStatus out = it->second.st;
  entries_.erase(it);
  return out;
}

void InviteBoard::set_pgcid(const std::string& name, std::uint64_t pgcid) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    it->second.st.pgcid = pgcid;
  }
}

std::size_t InviteBoard::open_invitations() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

}  // namespace sessmpi::pmix
