#include "sessmpi/pmix/collective.hpp"

#include <algorithm>

#include "sessmpi/base/yield.hpp"

namespace sessmpi::pmix {

namespace {
/// Poll slice while waiting: bounds how stale the failure oracle can be.
/// Completion itself is notify-driven (or, under a cooperative scheduler,
/// observed through the lock-free `done` flag); this only schedules
/// failure checks, so it is kept long to avoid wake-up storms at high rank
/// counts.
constexpr base::Nanos kPollSlice{10'000'000};  // 10 ms
}  // namespace

CollectiveEngine::CollectiveEngine(FailureOracle is_failed, EpochFn failure_epoch)
    : is_failed_(std::move(is_failed)), failure_epoch_(std::move(failure_epoch)) {}

std::size_t CollectiveEngine::active_ops() const {
  std::lock_guard lock(mu_);
  return ops_.size();
}

bool CollectiveEngine::try_abort_locked(
    const std::string& key, const std::shared_ptr<Op>& op,
    const std::optional<base::Clock::time_point>& deadline) {
  if (op->completed) {
    return false;
  }
  const bool timed_out = deadline && base::Clock::now() >= *deadline;
  bool peer_failed = false;
  if (is_failed_) {
    // With an epoch source the O(participants) scan runs only when a new
    // failure was actually reported since the last scan of this op.
    bool scan = true;
    if (failure_epoch_) {
      const std::uint64_t epoch = failure_epoch_();
      scan = epoch != op->checked_epoch;
      op->checked_epoch = epoch;
    }
    if (scan) {
      peer_failed = std::any_of(op->participants.begin(),
                                op->participants.end(), is_failed_);
    }
  }
  if (!timed_out && !peer_failed) {
    return false;
  }
  op->completed = true;
  op->status = base::RtStatus::fail(peer_failed ? base::ErrClass::rte_proc_failed
                                                : base::ErrClass::rte_timeout);
  aborted_[key] = op->status.cls;
  op->done.store(true, std::memory_order_release);
  op->cv.notify_all();
  return true;
}

CollectiveEngine::Outcome CollectiveEngine::arrive(
    const std::string& key, const std::vector<ProcId>& participants,
    ProcId self, std::optional<base::Nanos> timeout,
    const std::function<std::uint64_t()>& on_complete,
    std::int64_t post_release_delay_ns) {
  std::unique_lock lock(mu_);

  if (auto it = aborted_.find(key); it != aborted_.end()) {
    return {base::RtStatus::fail(it->second), 0};
  }

  auto& slot = ops_[key];
  if (!slot) {
    slot = std::make_shared<Op>();
    slot->participants = participants;
    // A participant may have died before the op existed: the sentinel
    // differs from every real epoch, forcing one initial full scan.
    slot->checked_epoch = ~0ull;
  }
  std::shared_ptr<Op> op = slot;
  if (op->participants != participants) {
    return {base::RtStatus::fail(base::ErrClass::rte_bad_param), 0};
  }

  ++op->arrived;
  if (op->arrived == op->participants.size()) {
    op->completed = true;
    op->status = base::RtStatus::success();
    op->value = on_complete ? on_complete() : 0;
    op->done.store(true, std::memory_order_release);
    op->cv.notify_all();
  } else {
    const auto deadline =
        timeout ? std::optional{base::Clock::now() + *timeout} : std::nullopt;
    if (base::cooperative()) {
      // Fiber mode: never park the worker on the condition variable (that
      // would strand every other fiber queued on it). Poll the lock-free
      // completion flag, yielding between probes, and take the engine lock
      // only at slice boundaries to run the abort checks.
      while (!op->done.load(std::memory_order_acquire)) {
        auto slice_end = base::Clock::now() + kPollSlice;
        if (deadline && *deadline < slice_end) {
          slice_end = *deadline;
        }
        lock.unlock();
        while (!op->done.load(std::memory_order_acquire) &&
               base::Clock::now() < slice_end) {
          base::try_yield();
        }
        lock.lock();
        if (try_abort_locked(key, op, deadline)) {
          break;
        }
      }
    } else {
      while (!op->completed) {
        auto slice_end = base::Clock::now() + kPollSlice;
        if (deadline && *deadline < slice_end) {
          slice_end = *deadline;
        }
        op->cv.wait_until(lock, slice_end);
        if (op->completed) {
          break;
        }
        // Abort paths. Only one thread performs the abort (completed flag).
        if (try_abort_locked(key, op, deadline)) {
          break;
        }
      }
    }
  }

  const Outcome out{op->status, op->value};
  ++op->departed;
  const bool everyone_done = op->departed == op->participants.size();
  const bool failed_and_drained = !op->status.ok() && op->departed == op->arrived;
  if (everyone_done || failed_and_drained) {
    ops_.erase(key);
  }
  lock.unlock();

  if (out.status.ok()) {
    base::precise_delay(post_release_delay_ns);
  }
  return out;
}

}  // namespace sessmpi::pmix
