#include "sessmpi/pmix/pset.hpp"

#include <algorithm>

namespace sessmpi::pmix {

void PsetRegistry::define(const std::string& name,
                          std::vector<ProcId> members) {
  std::lock_guard lock(mu_);
  psets_[name] = std::move(members);
}

std::optional<std::vector<ProcId>> PsetRegistry::lookup(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = psets_.find(name);
  if (it == psets_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::size_t PsetRegistry::count() const {
  std::lock_guard lock(mu_);
  return psets_.size();
}

std::vector<std::string> PsetRegistry::names(
    std::optional<ProcId> member) const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, members] : psets_) {
    if (!member ||
        std::find(members.begin(), members.end(), *member) != members.end()) {
      out.push_back(name);
    }
  }
  return out;
}

bool PsetRegistry::contains(const std::string& name) const {
  std::lock_guard lock(mu_);
  return psets_.contains(name);
}

}  // namespace sessmpi::pmix
