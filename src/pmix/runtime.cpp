#include "sessmpi/pmix/runtime.hpp"

#include <algorithm>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/error.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/obs/postmortem.hpp"

namespace sessmpi::pmix {

PmixRuntime::PmixRuntime(base::Topology topo, base::CostModel cost)
    : topo_(topo), cost_(cost) {
  collectives_ = std::make_unique<CollectiveEngine>(
      [this](ProcId p) { return is_failed(p); },
      [this] { return failure_epoch(); });
  failed_flags_ =
      std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(topo_.size()));
  for (int i = 0; i < topo_.size(); ++i) {
    failed_flags_[static_cast<std::size_t>(i)].store(false,
                                                     std::memory_order_relaxed);
  }
  servers_.reserve(static_cast<std::size_t>(topo_.num_nodes));
  for (int n = 0; n < topo_.num_nodes; ++n) {
    servers_.push_back(std::make_unique<PmixServer>(*this, n));
  }
}

PmixRuntime::~PmixRuntime() = default;

PmixServer& PmixRuntime::server(int node) {
  if (node < 0 || node >= topo_.num_nodes) {
    throw base::Error(base::ErrClass::rte_bad_param, "invalid node id");
  }
  return *servers_[static_cast<std::size_t>(node)];
}

PmixServer& PmixRuntime::server_of(ProcId proc) {
  return server(topo_.node_of(proc));
}

void PmixRuntime::notify_proc_failed(ProcId proc) {
  {
    std::lock_guard lock(failed_mu_);
    if (std::find(failed_.begin(), failed_.end(), proc) != failed_.end()) {
      // Exactly-once: a death can be reported by several observers (the
      // dying rank itself, fail_node, the fabric's retry-exhaustion
      // escalation); only the first report raises events.
      base::counters().add("pmix.dup_failure_notices");
      return;
    }
    failed_.push_back(proc);
    if (topo_.valid_rank(proc)) {
      failed_flags_[static_cast<std::size_t>(proc)].store(
          true, std::memory_order_release);
    }
  }
  // Flight recorder: the first (deduplicated) failure report is the moment
  // the postmortem rings are still warm with the dying rank's last events.
  obs::trigger_postmortem("proc_failed");
  // Invalidate every (pset, epoch) snapshot and memoized pset->group
  // resolution: the next re-query rebuilds against the survivor set.
  failure_epoch_.fetch_add(1, std::memory_order_acq_rel);
  datastore_.purge(proc);
  // Raise proc_failed events to co-members of groups that requested
  // termination notification (paper §III-A).
  std::vector<bool> notified(static_cast<std::size_t>(topo_.size()), false);
  for (const GroupRecord& rec : groups_.groups_of(proc)) {
    if (!rec.notify_on_termination) {
      continue;
    }
    std::vector<ProcId> targets;
    for (ProcId m : rec.members) {
      if (m != proc && topo_.valid_rank(m)) {
        targets.push_back(m);
        notified[static_cast<std::size_t>(m)] = true;
      }
    }
    Event e;
    e.kind = EventKind::proc_failed;
    e.about = proc;
    e.group = rec.name;
    e.pgcid = rec.pgcid;
    events_.notify(e, targets);
  }
  // Allocation-wide announcement: the daemons see the death whether or not
  // the proc was in a watched group, and fault-aware layers
  // (Communicator::get_failed) depend on hearing about it. Processes
  // already notified through a group are skipped so they see one event per
  // failure.
  std::vector<ProcId> rest;
  for (ProcId p = 0; p < topo_.size(); ++p) {
    if (p == proc || notified[static_cast<std::size_t>(p)] || is_failed(p)) {
      continue;
    }
    rest.push_back(p);
  }
  Event e;
  e.kind = EventKind::proc_failed;
  e.about = proc;
  e.info = "allocation";
  events_.notify(e, rest);
}

bool PmixRuntime::is_failed(ProcId proc) const {
  return topo_.valid_rank(proc) &&
         failed_flags_[static_cast<std::size_t>(proc)].load(
             std::memory_order_acquire);
}

std::vector<ProcId> PmixRuntime::failed_procs() const {
  std::lock_guard lock(failed_mu_);
  return failed_;
}

std::shared_ptr<const std::vector<ProcId>> PmixRuntime::pset_snapshot(
    const std::string& name) {
  // Epoch is sampled before the registry lookup: if a failure lands while
  // we build, the stored snapshot carries the older epoch and the next
  // asker rebuilds — never a stale-forever entry.
  const std::uint64_t epoch = failure_epoch();
  {
    std::lock_guard lock(snap_mu_);
    auto it = pset_snaps_.find(name);
    if (it != pset_snaps_.end() && it->second.epoch == epoch) {
      return it->second.members;
    }
  }
  auto members = psets_.lookup(name);
  if (!members) {
    throw base::Error(base::ErrClass::rte_not_found, "unknown pset: " + name);
  }
  auto filtered = std::make_shared<std::vector<ProcId>>();
  filtered->reserve(members->size());
  for (ProcId p : *members) {
    if (!is_failed(p)) {
      filtered->push_back(p);
    }
  }
  std::shared_ptr<const std::vector<ProcId>> snap = std::move(filtered);
  std::lock_guard lock(snap_mu_);
  auto& slot = pset_snaps_[name];
  if (!slot.members || slot.epoch <= epoch) {
    slot.epoch = epoch;
    slot.members = snap;
  }
  return snap;
}

void PmixServer::rpc_delay() {
  rpcs_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t cost = runtime_.cost().srv_rpc_ns;
  if (cost <= 0) {
    return;
  }
  // Reserve this RPC's slot on the server timeline, then wait out our own
  // reservation. Serialization cost is identical to the old mutex (the
  // server is busy until `end`), but no thread ever sleeps holding a lock —
  // a requirement for cooperative (fiber) rank scheduling.
  const std::int64_t now = base::now_ns();
  std::int64_t prev = next_free_ns_.load(std::memory_order_relaxed);
  std::int64_t end = 0;
  do {
    end = std::max(now, prev) + cost;
  } while (!next_free_ns_.compare_exchange_weak(prev, end,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed));
  base::precise_delay(end - base::now_ns());
}

}  // namespace sessmpi::pmix
