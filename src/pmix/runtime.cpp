#include "sessmpi/pmix/runtime.hpp"

#include <algorithm>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/error.hpp"
#include "sessmpi/base/stats.hpp"

namespace sessmpi::pmix {

PmixRuntime::PmixRuntime(base::Topology topo, base::CostModel cost)
    : topo_(topo), cost_(cost) {
  collectives_ = std::make_unique<CollectiveEngine>(
      [this](ProcId p) { return is_failed(p); });
  servers_.reserve(static_cast<std::size_t>(topo_.num_nodes));
  for (int n = 0; n < topo_.num_nodes; ++n) {
    servers_.push_back(std::make_unique<PmixServer>(*this, n));
  }
}

PmixRuntime::~PmixRuntime() = default;

PmixServer& PmixRuntime::server(int node) {
  if (node < 0 || node >= topo_.num_nodes) {
    throw base::Error(base::ErrClass::rte_bad_param, "invalid node id");
  }
  return *servers_[static_cast<std::size_t>(node)];
}

PmixServer& PmixRuntime::server_of(ProcId proc) {
  return server(topo_.node_of(proc));
}

void PmixRuntime::notify_proc_failed(ProcId proc) {
  {
    std::lock_guard lock(failed_mu_);
    if (std::find(failed_.begin(), failed_.end(), proc) != failed_.end()) {
      // Exactly-once: a death can be reported by several observers (the
      // dying rank itself, fail_node, the fabric's retry-exhaustion
      // escalation); only the first report raises events.
      base::counters().add("pmix.dup_failure_notices");
      return;
    }
    failed_.push_back(proc);
  }
  datastore_.purge(proc);
  // Raise proc_failed events to co-members of groups that requested
  // termination notification (paper §III-A).
  std::vector<bool> notified(static_cast<std::size_t>(topo_.size()), false);
  for (const GroupRecord& rec : groups_.groups_of(proc)) {
    if (!rec.notify_on_termination) {
      continue;
    }
    std::vector<ProcId> targets;
    for (ProcId m : rec.members) {
      if (m != proc && topo_.valid_rank(m)) {
        targets.push_back(m);
        notified[static_cast<std::size_t>(m)] = true;
      }
    }
    Event e;
    e.kind = EventKind::proc_failed;
    e.about = proc;
    e.group = rec.name;
    e.pgcid = rec.pgcid;
    events_.notify(e, targets);
  }
  // Allocation-wide announcement: the daemons see the death whether or not
  // the proc was in a watched group, and fault-aware layers
  // (Communicator::get_failed) depend on hearing about it. Processes
  // already notified through a group are skipped so they see one event per
  // failure.
  std::vector<ProcId> rest;
  for (ProcId p = 0; p < topo_.size(); ++p) {
    if (p == proc || notified[static_cast<std::size_t>(p)] || is_failed(p)) {
      continue;
    }
    rest.push_back(p);
  }
  Event e;
  e.kind = EventKind::proc_failed;
  e.about = proc;
  e.info = "allocation";
  events_.notify(e, rest);
}

bool PmixRuntime::is_failed(ProcId proc) const {
  std::lock_guard lock(failed_mu_);
  return std::find(failed_.begin(), failed_.end(), proc) != failed_.end();
}

std::vector<ProcId> PmixRuntime::failed_procs() const {
  std::lock_guard lock(failed_mu_);
  return failed_;
}

void PmixServer::rpc_delay() {
  rpcs_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(rpc_mu_);
  base::precise_delay(runtime_.cost().srv_rpc_ns);
}

}  // namespace sessmpi::pmix
