#include "sessmpi/pmix/runtime.hpp"

#include <algorithm>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/error.hpp"

namespace sessmpi::pmix {

PmixRuntime::PmixRuntime(base::Topology topo, base::CostModel cost)
    : topo_(topo), cost_(cost) {
  collectives_ = std::make_unique<CollectiveEngine>(
      [this](ProcId p) { return is_failed(p); });
  servers_.reserve(static_cast<std::size_t>(topo_.num_nodes));
  for (int n = 0; n < topo_.num_nodes; ++n) {
    servers_.push_back(std::make_unique<PmixServer>(*this, n));
  }
}

PmixRuntime::~PmixRuntime() = default;

PmixServer& PmixRuntime::server(int node) {
  if (node < 0 || node >= topo_.num_nodes) {
    throw base::Error(base::ErrClass::rte_bad_param, "invalid node id");
  }
  return *servers_[static_cast<std::size_t>(node)];
}

PmixServer& PmixRuntime::server_of(ProcId proc) {
  return server(topo_.node_of(proc));
}

void PmixRuntime::notify_proc_failed(ProcId proc) {
  {
    std::lock_guard lock(failed_mu_);
    if (std::find(failed_.begin(), failed_.end(), proc) != failed_.end()) {
      return;
    }
    failed_.push_back(proc);
  }
  datastore_.purge(proc);
  // Raise proc_failed events to co-members of groups that requested
  // termination notification (paper §III-A).
  for (const GroupRecord& rec : groups_.groups_of(proc)) {
    if (!rec.notify_on_termination) {
      continue;
    }
    std::vector<ProcId> targets;
    for (ProcId m : rec.members) {
      if (m != proc) {
        targets.push_back(m);
      }
    }
    Event e;
    e.kind = EventKind::proc_failed;
    e.about = proc;
    e.group = rec.name;
    e.pgcid = rec.pgcid;
    events_.notify(e, targets);
  }
}

bool PmixRuntime::is_failed(ProcId proc) const {
  std::lock_guard lock(failed_mu_);
  return std::find(failed_.begin(), failed_.end(), proc) != failed_.end();
}

std::vector<ProcId> PmixRuntime::failed_procs() const {
  std::lock_guard lock(failed_mu_);
  return failed_;
}

void PmixServer::rpc_delay() {
  rpcs_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(rpc_mu_);
  base::precise_delay(runtime_.cost().srv_rpc_ns);
}

}  // namespace sessmpi::pmix
