#include "sessmpi/pmix/group.hpp"

#include <algorithm>

namespace sessmpi::pmix {

bool GroupRegistry::add(GroupRecord record) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = groups_.emplace(record.name, std::move(record));
  return inserted;
}

std::optional<GroupRecord> GroupRegistry::remove(const std::string& name) {
  std::lock_guard lock(mu_);
  auto it = groups_.find(name);
  if (it == groups_.end()) {
    return std::nullopt;
  }
  GroupRecord rec = std::move(it->second);
  groups_.erase(it);
  return rec;
}

std::optional<GroupRecord> GroupRegistry::lookup(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = groups_.find(name);
  if (it == groups_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<GroupRecord> GroupRegistry::lookup_by_pgcid(
    std::uint64_t pgcid) const {
  std::lock_guard lock(mu_);
  for (const auto& [name, rec] : groups_) {
    if (rec.pgcid == pgcid) {
      return rec;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<ProcId>> GroupRegistry::leave(const std::string& name,
                                                        ProcId proc) {
  std::lock_guard lock(mu_);
  auto it = groups_.find(name);
  if (it == groups_.end()) {
    return std::nullopt;
  }
  auto& members = it->second.members;
  std::erase(members, proc);
  return members;
}

std::size_t GroupRegistry::count() const {
  std::lock_guard lock(mu_);
  return groups_.size();
}

std::vector<std::string> GroupRegistry::names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(groups_.size());
  for (const auto& [name, rec] : groups_) {
    out.push_back(name);
  }
  return out;
}

std::vector<GroupRecord> GroupRegistry::groups_of(ProcId proc) const {
  std::lock_guard lock(mu_);
  std::vector<GroupRecord> out;
  for (const auto& [name, rec] : groups_) {
    if (std::find(rec.members.begin(), rec.members.end(), proc) !=
        rec.members.end()) {
      out.push_back(rec);
    }
  }
  return out;
}

}  // namespace sessmpi::pmix
