#include "sessmpi/quo/quo.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <thread>

#include "sessmpi/base/error.hpp"
#include "sessmpi/base/yield.hpp"
#include "sessmpi/pmix/pset.hpp"
#include "sessmpi/sim/cluster.hpp"

namespace sessmpi::quo {

namespace {

/// Sense-reversing barrier shared by node-local processes (they share an
/// address space in the simulator, which is exactly the shared-memory
/// segment QUO 1.3 maps). This is the "low-overhead mechanism" baseline.
class SenseBarrier {
 public:
  void wait(bool* local_sense, int participants) {
    *local_sense = !*local_sense;
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants) {
      count_.store(0, std::memory_order_relaxed);
      sense_.store(*local_sense, std::memory_order_release);
    } else {
      // On the paper's testbed every rank owns a core, so QUO spins; on an
      // oversubscribed simulation host pure spinning starves the working
      // leader, so back off briefly between checks. Detection latency stays
      // far below the sessions barrier's message rounds.
      while (sense_.load(std::memory_order_acquire) != *local_sense) {
        if (base::cooperative()) {
          base::try_yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    }
  }

 private:
  std::atomic<int> count_{0};
  std::atomic<bool> sense_{false};
};

std::mutex g_registry_mu;
std::map<std::uint64_t, std::shared_ptr<SenseBarrier>>& registry() {
  static std::map<std::uint64_t, std::shared_ptr<SenseBarrier>> m;
  return m;
}
std::atomic<std::uint64_t> g_next_id{1};

}  // namespace

struct QuoContext::Impl {
  BarrierKind kind = BarrierKind::baseline;
  std::int64_t quiesce_sleep_ns = 1000;
  Communicator node_comm;        ///< node-local processes (split of app comm)
  std::shared_ptr<SenseBarrier> shm_barrier;
  std::uint64_t shm_barrier_id = 0;
  bool local_sense = false;
  Session session;               ///< sessions flavour only
  Communicator sess_comm;        ///< comm from mpi://shared
  std::vector<BindPolicy> bind_stack;
  std::uint64_t barriers = 0;
};

QuoContext QuoContext::create(const Communicator& app_comm, Options opts) {
  auto impl = std::make_shared<Impl>();
  impl->kind = opts.barrier;
  impl->quiesce_sleep_ns = opts.quiesce_sleep_ns;
  impl->bind_stack.push_back(BindPolicy::process);

  // Node-local communicator: QUO always groups processes by node.
  const int node = sim::Cluster::current().node();
  impl->node_comm = app_comm.split(node, app_comm.rank());

  if (opts.barrier == BarrierKind::baseline) {
    // Leader maps the shared segment; peers attach by id.
    std::uint64_t id = 0;
    if (impl->node_comm.rank() == 0) {
      id = g_next_id.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lock(g_registry_mu);
      registry()[id] = std::make_shared<SenseBarrier>();
    }
    impl->node_comm.bcast(&id, 1, Datatype::uint64(), 0);
    {
      std::lock_guard lock(g_registry_mu);
      impl->shm_barrier = registry().at(id);
    }
    impl->shm_barrier_id = id;
    // Rendezvous before returning: free() unmaps the segment when the last
    // attached reference drops, so a rank that races ahead to free() must
    // not be able to do that while a peer is still between the bcast and
    // its attach (the peer holds no reference yet and would find the
    // segment gone).
    impl->node_comm.barrier();
  } else {
    // Sessions flavour: QUO_create initializes its own MPI session — the
    // host application is untouched (paper §IV-E, ~20 SLOC integration).
    impl->session = Session::init();
    Group shared = impl->session.group_from_pset(pmix::kPsetShared);
    std::uint64_t tag = 0;
    if (impl->node_comm.rank() == 0) {
      tag = g_next_id.fetch_add(1, std::memory_order_relaxed);
    }
    impl->node_comm.bcast(&tag, 1, Datatype::uint64(), 0);
    impl->sess_comm = Communicator::create_from_group(
        shared, "quo:" + std::to_string(tag));
  }
  return QuoContext{std::move(impl)};
}

namespace {
QuoContext::Impl& checked(const std::shared_ptr<QuoContext::Impl>& impl) {
  if (!impl) {
    throw base::Error(base::ErrClass::other, "null QUO context");
  }
  return *impl;
}
}  // namespace

int QuoContext::rank() const { return checked(impl_).node_comm.rank(); }
int QuoContext::nqids() const { return checked(impl_).node_comm.size(); }
bool QuoContext::is_node_leader() const { return rank() == 0; }

void QuoContext::barrier() {
  Impl& im = checked(impl_);
  if (im.kind == BarrierKind::baseline) {
    im.shm_barrier->wait(&im.local_sense, im.node_comm.size());
  } else {
    // Low-perturbation quiescence: alternate Ibarrier progress probes with
    // nanosleep so quiesced ranks yield the cores to the threaded phase.
    Request req = im.sess_comm.ibarrier();
    while (!req.test()) {
      if (base::cooperative()) {
        base::try_yield();
      } else {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(im.quiesce_sleep_ns));
      }
    }
  }
  ++im.barriers;
}

void QuoContext::bind_push(BindPolicy policy) {
  checked(impl_).bind_stack.push_back(policy);
}

void QuoContext::bind_pop() {
  Impl& im = checked(impl_);
  if (im.bind_stack.size() <= 1) {
    throw base::Error(base::ErrClass::other, "QUO bind stack underflow");
  }
  im.bind_stack.pop_back();
}

std::size_t QuoContext::bind_depth() const {
  return checked(impl_).bind_stack.size();
}

BindPolicy QuoContext::current_policy() const {
  return checked(impl_).bind_stack.back();
}

std::uint64_t QuoContext::barriers_done() const { return checked(impl_).barriers; }
BarrierKind QuoContext::kind() const { return checked(impl_).kind; }

void QuoContext::free() {
  Impl& im = checked(impl_);
  if (!im.node_comm.is_null()) {
    im.node_comm.free();
  }
  if (!im.sess_comm.is_null()) {
    im.sess_comm.free();
  }
  if (!im.session.is_null() && !im.session.finalized()) {
    im.session.finalize();
  }
  if (im.shm_barrier && im.shm_barrier_id != 0) {
    im.shm_barrier.reset();
    std::lock_guard lock(g_registry_mu);
    // Last detacher unmaps the segment (shared_ptr count drops to the
    // registry's own reference).
    auto it = registry().find(im.shm_barrier_id);
    if (it != registry().end() && it->second.use_count() == 1) {
      registry().erase(it);
    }
  }
  impl_.reset();
}

}  // namespace sessmpi::quo
