#pragma once

// QUO-like runtime (paper §IV-E): dynamic reconfiguration support for
// coupled MPI + threads applications. The piece the paper evaluates is
// process quiescence — QUO_barrier() — in two flavours:
//
//  * baseline: the low-overhead node-local mechanism of QUO 1.3, modeled as
//    a shared-memory sense-reversing barrier among the node's processes;
//  * sessions: the prototype's replacement, a sessions-aware MPI barrier
//    emulated by alternating MPI_Ibarrier()/nanosleep() until completion —
//    low-perturbation because quiesced processes sleep instead of spinning.
//
// A QuoContext also keeps the QUO affinity(bind)-stack bookkeeping so the
// 2MESH-style driver can push/pop thread layouts between phases.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sessmpi/comm.hpp"
#include "sessmpi/session.hpp"

namespace sessmpi::quo {

enum class BarrierKind {
  baseline,  ///< QUO 1.3 low-overhead shared-memory barrier
  sessions,  ///< MPI Sessions Ibarrier + nanosleep loop
};

/// Affinity policy for bind_push (QUO_BIND_PUSH_*).
enum class BindPolicy { process, socket, node };

class QuoContext {
 public:
  struct Options {
    BarrierKind barrier = BarrierKind::baseline;
    /// Sleep used between Ibarrier completion probes (sessions barrier).
    /// The paper's prototype used nanosleep; the default here is sized so
    /// quiesced ranks stay genuinely quiet on oversubscribed hosts.
    std::int64_t quiesce_sleep_ns = 100'000;
  };

  /// QUO_create: called by the threaded library (L1). The sessions flavour
  /// initializes its own MPI session internally — the application needs no
  /// modification (the paper integrated the prototype this way, ~20 SLOC).
  static QuoContext create(const Communicator& app_comm, Options opts);
  static QuoContext create(const Communicator& app_comm) {
    return create(app_comm, Options{});
  }

  QuoContext() = default;

  [[nodiscard]] int rank() const;             ///< rank among node-local procs
  [[nodiscard]] int nqids() const;            ///< node-local process count
  [[nodiscard]] bool is_node_leader() const;  ///< lowest rank on the node

  /// QUO_barrier: quiesce the node-local processes.
  void barrier();

  /// QUO_bind_push / QUO_bind_pop: affinity-stack bookkeeping.
  void bind_push(BindPolicy policy);
  void bind_pop();
  [[nodiscard]] std::size_t bind_depth() const;
  [[nodiscard]] BindPolicy current_policy() const;

  [[nodiscard]] std::uint64_t barriers_done() const;
  [[nodiscard]] BarrierKind kind() const;

  /// QUO_free: releases the context (and its internal session, if any).
  void free();

  [[nodiscard]] bool is_null() const noexcept { return impl_ == nullptr; }

  /// Internal representation (public declaration for the implementation
  /// file; not part of the stable API).
  struct Impl;

 private:
  explicit QuoContext(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

}  // namespace sessmpi::quo
