// Sessions Process Model implementation. Session::init is local (no other
// rank is involved), light-weight (a handle plus ref-counted subsystem
// acquisition), thread-safe, and repeatable — the properties the proposal
// requires and the paper evaluates.

#include <algorithm>

#include "detail/state.hpp"
#include "sessmpi/base/clock.hpp"
#include "sessmpi/obs/trace.hpp"
#include "sessmpi/session.hpp"

namespace sessmpi {

using detail::ProcState;
using detail::SessionState;

namespace {

ThreadLevel level_from_info(const Info& info) {
  const auto v = info.get("thread_level");
  if (!v) {
    return ThreadLevel::multiple;
  }
  if (*v == "single") return ThreadLevel::single;
  if (*v == "funneled") return ThreadLevel::funneled;
  if (*v == "serialized") return ThreadLevel::serialized;
  if (*v == "multiple") return ThreadLevel::multiple;
  throw Error(ErrClass::info_value, "bad thread_level: " + *v);
}

const std::shared_ptr<SessionState>& checked(
    const std::shared_ptr<SessionState>& s) {
  if (!s) {
    throw Error(ErrClass::session, "null session handle");
  }
  if (s->finalized) {
    throw Error(ErrClass::session, "operation on finalized session");
  }
  return s;
}

}  // namespace

Session Session::init(const Info& info, const Errhandler& errh) {
  ProcState& ps = ProcState::current();
  const ThreadLevel level = level_from_info(info);  // may throw pre-acquire

  OBS_SPAN("session.init", "core");
  ps.acquire_instance();
  base::precise_delay(ps.cost.session_handle_ns);

  auto state = std::make_shared<SessionState>();
  state->ps = &ps;
  state->level = level;
  state->info_obj = info.is_null() ? Info{} : info.dup();
  state->errh = errh;
  {
    std::lock_guard lock(ps.mu);
    state->id = ps.next_session_id++;
  }
  return Session{state};
}

void Session::finalize() {
  if (!state_) {
    throw Error(ErrClass::session, "finalize of null session");
  }
  if (state_->finalized) {
    state_->errh.raise(ErrClass::session, "session already finalized");
  }
  state_->finalized = true;
  state_->attrs.clear();
  state_->ps->release_instance();
}

bool Session::finalized() const {
  if (!state_) {
    throw Error(ErrClass::session, "null session handle");
  }
  return state_->finalized;
}

std::vector<std::string> Session::pset_names() const {
  const auto& s = checked(state_);
  auto names = s->ps->pmix().query_pset_names();
  // mpi://self and mpi://shared are implementation-defined and resolved
  // client-side; surface them alongside runtime-provided psets.
  for (const char* builtin : {pmix::kPsetSelf, pmix::kPsetShared}) {
    if (std::find(names.begin(), names.end(), builtin) == names.end()) {
      names.push_back(builtin);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

int Session::num_psets() const {
  return static_cast<int>(pset_names().size());
}

std::string Session::nth_pset(int n) const {
  auto names = pset_names();
  if (n < 0 || static_cast<std::size_t>(n) >= names.size()) {
    checked(state_)->errh.raise(ErrClass::arg, "pset index out of range");
  }
  return names[static_cast<std::size_t>(n)];
}

Info Session::pset_info(const std::string& name) const {
  const auto& s = checked(state_);
  auto members = s->ps->pmix().query_pset_membership(name);
  if (!members.ok()) {
    s->errh.raise(ErrClass::arg, "unknown process set: " + name);
  }
  Info info;
  info.set("pset_name", name);
  info.set("mpi_size", std::to_string(members.value().size()));
  return info;
}

Group Session::group_from_pset(const std::string& name) const {
  const auto& s = checked(state_);
  auto members = s->ps->pmix().query_pset_membership(name);
  if (!members.ok()) {
    s->errh.raise(ErrClass::arg, "unknown process set: " + name);
  }
  return Group::of(members.value());
}

ThreadLevel Session::thread_level() const { return checked(state_)->level; }
const Errhandler& Session::errhandler() const { return checked(state_)->errh; }
Info Session::info() const { return checked(state_)->info_obj.dup(); }
AttributeStore& Session::attributes() const { return checked(state_)->attrs; }
int Session::id() const { return checked(state_)->id; }

}  // namespace sessmpi
