// Sessions Process Model implementation. Session::init is local (no other
// rank is involved), light-weight (a handle plus ref-counted subsystem
// acquisition), thread-safe, and repeatable — the properties the proposal
// requires and the paper evaluates.

#include <algorithm>

#include "detail/state.hpp"
#include "sessmpi/base/clock.hpp"
#include "sessmpi/obs/trace.hpp"
#include "sessmpi/session.hpp"

namespace sessmpi {

using detail::ProcState;
using detail::SessionState;

namespace {

ThreadLevel level_from_info(const Info& info) {
  const auto v = info.get("thread_level");
  if (!v) {
    return ThreadLevel::multiple;
  }
  if (*v == "single") return ThreadLevel::single;
  if (*v == "funneled") return ThreadLevel::funneled;
  if (*v == "serialized") return ThreadLevel::serialized;
  if (*v == "multiple") return ThreadLevel::multiple;
  throw Error(ErrClass::info_value, "bad thread_level: " + *v);
}

const std::shared_ptr<SessionState>& checked(
    const std::shared_ptr<SessionState>& s) {
  if (!s) {
    throw Error(ErrClass::session, "null session handle");
  }
  if (s->finalized) {
    throw Error(ErrClass::session, "operation on finalized session");
  }
  return s;
}

}  // namespace

Session Session::init(const Info& info, const Errhandler& errh) {
  ProcState& ps = ProcState::current();
  const ThreadLevel level = level_from_info(info);  // may throw pre-acquire

  OBS_SPAN("session.init", "core");
  ps.acquire_instance();
  base::precise_delay(ps.cost.session_handle_ns);

  auto state = std::make_shared<SessionState>();
  state->ps = &ps;
  state->level = level;
  state->info_obj = info.is_null() ? Info{} : info.dup();
  state->errh = errh;
  {
    std::lock_guard lock(ps.mu);
    state->id = ps.next_session_id++;
  }
  return Session{state};
}

void Session::finalize() {
  if (!state_) {
    throw Error(ErrClass::session, "finalize of null session");
  }
  if (state_->finalized) {
    state_->errh.raise(ErrClass::session, "session already finalized");
  }
  state_->finalized = true;
  state_->attrs.clear();
  state_->ps->release_instance();
}

bool Session::finalized() const {
  if (!state_) {
    throw Error(ErrClass::session, "null session handle");
  }
  return state_->finalized;
}

std::vector<std::string> Session::pset_names() const {
  const auto& s = checked(state_);
  auto names = s->ps->pmix().query_pset_names();
  // mpi://self and mpi://shared are implementation-defined and resolved
  // client-side; surface them alongside runtime-provided psets.
  for (const char* builtin : {pmix::kPsetSelf, pmix::kPsetShared}) {
    if (std::find(names.begin(), names.end(), builtin) == names.end()) {
      names.push_back(builtin);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

int Session::num_psets() const {
  return static_cast<int>(pset_names().size());
}

std::string Session::nth_pset(int n) const {
  auto names = pset_names();
  if (n < 0 || static_cast<std::size_t>(n) >= names.size()) {
    checked(state_)->errh.raise(ErrClass::arg, "pset index out of range");
  }
  return names[static_cast<std::size_t>(n)];
}

Info Session::pset_info(const std::string& name) const {
  const auto& s = checked(state_);
  auto members = s->ps->pmix().query_pset_membership(name);
  if (!members.ok()) {
    s->errh.raise(ErrClass::arg, "unknown process set: " + name);
  }
  Info info;
  info.set("pset_name", name);
  info.set("mpi_size", std::to_string(members.value().size()));
  return info;
}

Group Session::group_from_pset(const std::string& name) const {
  const auto& s = checked(state_);
  detail::ProcState& ps = *s->ps;
  pmix::PmixClient& cli = ps.pmix();

  // Memoized per failure epoch (DESIGN.md §15): a repeat resolution of the
  // same pset is O(1) and skips the server RPC entirely; any accepted
  // failure bumps the runtime epoch, so the fault-aware contract — re-query
  // the pset after a failure, get the survivors — is preserved.
  const std::uint64_t epoch = cli.runtime().failure_epoch();
  {
    std::lock_guard lock(ps.mu);
    auto it = ps.pset_groups.find(name);
    if (it != ps.pset_groups.end() && it->second.first == epoch) {
      return it->second.second;
    }
  }

  std::optional<Group> group;
  if (name == pmix::kPsetSelf || name == pmix::kPsetShared) {
    // Client-side builtins: small, node-local membership; no shared
    // snapshot exists for them.
    auto members = cli.query_pset_membership(name);
    if (!members.ok()) {
      s->errh.raise(ErrClass::arg, "unknown process set: " + name);
    }
    group = Group::of(std::move(members.value()));
  } else {
    // Runtime psets: adopt the runtime's shared snapshot vector, so 16k
    // ranks resolving "world" hold one members vector between them.
    auto snap = cli.pset_snapshot(name);
    if (!snap.ok()) {
      s->errh.raise(ErrClass::arg, "unknown process set: " + name);
    }
    group = Group::of_shared(snap.value());
  }

  std::lock_guard lock(ps.mu);
  ps.pset_groups.insert_or_assign(name, std::make_pair(epoch, *group));
  return *group;
}

ThreadLevel Session::thread_level() const { return checked(state_)->level; }
const Errhandler& Session::errhandler() const { return checked(state_)->errh; }
Info Session::info() const { return checked(state_)->info_obj.dup(); }
AttributeStore& Session::attributes() const { return checked(state_)->attrs; }
int Session::id() const { return checked(state_)->id; }

}  // namespace sessmpi
