#include "sessmpi/request.hpp"

#include "detail/state.hpp"

namespace sessmpi {

Status Request::wait() {
  if (!impl_) {
    return Status{};
  }
  auto impl = impl_;
  impl->ps->progress_until([&] { return impl->done(); });
  impl_.reset();  // MPI_Wait sets the request to MPI_REQUEST_NULL
  return impl->status;
}

bool Request::test() {
  if (!impl_) {
    return true;
  }
  if (!impl_->done()) {
    impl_->ps->progress_pass(/*block=*/false);
  }
  if (impl_->done()) {
    impl_.reset();
    return true;
  }
  return false;
}

bool Request::completed() const noexcept {
  return impl_ == nullptr || impl_->done();
}

std::vector<Status> Request::wait_all(std::vector<Request>& reqs) {
  std::vector<Status> out;
  out.reserve(reqs.size());
  detail::ProcState* ps = nullptr;
  for (auto& r : reqs) {
    if (r.impl_) {
      ps = r.impl_->ps;
      break;
    }
  }
  if (ps != nullptr) {
    ps->progress_until([&] {
      for (const auto& r : reqs) {
        if (r.impl_ && !r.impl_->done()) {
          return false;
        }
      }
      return true;
    });
  }
  for (auto& r : reqs) {
    out.push_back(r.impl_ ? r.impl_->status : Status{});
    r.impl_.reset();
  }
  return out;
}

int Request::wait_any(std::vector<Request>& reqs, Status* status) {
  detail::ProcState* ps = nullptr;
  bool any_live = false;
  for (auto& r : reqs) {
    if (r.impl_) {
      ps = r.impl_->ps;
      any_live = true;
      break;
    }
  }
  if (!any_live) {
    return -1;
  }
  int done_ix = -1;
  ps->progress_until([&] {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].impl_ && reqs[i].impl_->done()) {
        done_ix = static_cast<int>(i);
        return true;
      }
    }
    return false;
  });
  if (status != nullptr) {
    *status = reqs[static_cast<std::size_t>(done_ix)].impl_->status;
  }
  reqs[static_cast<std::size_t>(done_ix)].impl_.reset();
  return done_ix;
}

bool Request::test_all(std::vector<Request>& reqs) {
  detail::ProcState* ps = nullptr;
  for (auto& r : reqs) {
    if (r.impl_ && !r.impl_->done()) {
      ps = r.impl_->ps;
      break;
    }
  }
  if (ps != nullptr) {
    ps->progress_pass(/*block=*/false);
  }
  for (const auto& r : reqs) {
    if (r.impl_ && !r.impl_->done()) {
      return false;
    }
  }
  for (auto& r : reqs) {
    r.impl_.reset();
  }
  return true;
}

}  // namespace sessmpi
