#include "sessmpi/capi.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "sessmpi/mpi.hpp"
#include "sessmpi/obs/hist.hpp"
#include "sessmpi/obs/tvar.hpp"
#include "sessmpi/sim/cluster.hpp"

namespace sessmpi::capi {

// Handle wrappers: each opaque handle owns one C++ object.
struct SessionHandle {
  Session s;
};
struct GroupHandle {
  Group g = Group::empty();
};
struct CommHandle {
  Communicator c;
};
struct InfoHandle {
  Info i;
};
struct ErrhandlerHandle {
  Errhandler e = Errhandler::errors_return();
};
struct RequestHandle {
  Request r;
};

namespace {

int code_of(const Error& e) { return static_cast<int>(e.error_class()); }

/// Run `fn`, translating exceptions into MPI error codes.
template <typename Fn>
int guarded(Fn&& fn) {
  try {
    fn();
    return MPI_SUCCESS;
  } catch (const Error& e) {
    return code_of(e);
  } catch (...) {
    return static_cast<int>(ErrClass::unknown);
  }
}

const Datatype& cxx_datatype(MPI_Datatype dt) {
  switch (dt) {
    case MPI_BYTE: return Datatype::byte();
    case MPI_CHAR: return Datatype::char8();
    case MPI_INT32_T: return Datatype::int32();
    case MPI_INT64_T: return Datatype::int64();
    case MPI_UINT64_T: return Datatype::uint64();
    case MPI_FLOAT: return Datatype::float32();
    case MPI_DOUBLE: return Datatype::float64();
  }
  throw Error(ErrClass::type, "unknown C datatype");
}

const Op& cxx_op(MPI_Op op) {
  switch (op) {
    case MPI_SUM: return Op::sum();
    case MPI_PROD: return Op::prod();
    case MPI_MAX: return Op::max();
    case MPI_MIN: return Op::min();
    case MPI_LAND: return Op::land();
    case MPI_LOR: return Op::lor();
    case MPI_BAND: return Op::band();
    case MPI_BOR: return Op::bor();
  }
  throw Error(ErrClass::op, "unknown C op");
}

void fill_status(MPI_Status* out, const Status& st) {
  if (out == MPI_STATUS_IGNORE) {
    return;
  }
  out->MPI_SOURCE = st.source;
  out->MPI_TAG = st.tag;
  out->MPI_ERROR = static_cast<int>(st.error);
  out->count_bytes = st.count_bytes;
}

}  // namespace

MPI_Errhandler mpi_errors_are_fatal() {
  static ErrhandlerHandle h{Errhandler::errors_are_fatal()};
  return &h;
}

MPI_Errhandler mpi_errors_return() {
  static ErrhandlerHandle h{Errhandler::errors_return()};
  return &h;
}

int mpi_error_class(int code, int* errclass) {
  if (errclass == nullptr) {
    return MPI_ERR_ARG;
  }
  *errclass = code;  // codes are error classes in this implementation
  return MPI_SUCCESS;
}

// --- info ---------------------------------------------------------------------

int MPI_Info_create(MPI_Info* info) {
  return guarded([&] {
    if (info == nullptr) {
      throw Error(ErrClass::arg, "null info out-pointer");
    }
    *info = new InfoHandle{};
  });
}

int MPI_Info_set(MPI_Info info, const char* key, const char* value) {
  return guarded([&] {
    if (info == nullptr || key == nullptr || value == nullptr) {
      throw Error(ErrClass::arg, "null argument to Info_set");
    }
    info->i.set(key, value);
  });
}

int MPI_Info_get(MPI_Info info, const char* key, int valuelen, char* value,
                 int* flag) {
  return guarded([&] {
    if (info == nullptr || key == nullptr || value == nullptr ||
        flag == nullptr) {
      throw Error(ErrClass::arg, "null argument to Info_get");
    }
    auto v = info->i.get(key);
    *flag = v.has_value() ? 1 : 0;
    if (v) {
      std::strncpy(value, v->c_str(), static_cast<std::size_t>(valuelen));
      if (valuelen > 0) {
        value[valuelen - 1] = '\0';
      }
    }
  });
}

int MPI_Info_get_nkeys(MPI_Info info, int* nkeys) {
  return guarded([&] {
    if (info == nullptr || nkeys == nullptr) {
      throw Error(ErrClass::arg, "null argument to Info_get_nkeys");
    }
    *nkeys = static_cast<int>(info->i.nkeys());
  });
}

int MPI_Info_free(MPI_Info* info) {
  return guarded([&] {
    if (info == nullptr || *info == nullptr) {
      throw Error(ErrClass::arg, "null info");
    }
    delete *info;
    *info = MPI_INFO_NULL;
  });
}

// --- sessions ------------------------------------------------------------------

int MPI_Session_init(MPI_Info info, MPI_Errhandler errhandler,
                     MPI_Session* session) {
  return guarded([&] {
    if (session == nullptr) {
      throw Error(ErrClass::arg, "null session out-pointer");
    }
    const Info& i = info != MPI_INFO_NULL ? info->i : Info::null();
    const Errhandler& e = errhandler != MPI_ERRHANDLER_NULL
                              ? errhandler->e
                              : Errhandler::errors_return();
    *session = new SessionHandle{Session::init(i, e)};
  });
}

int MPI_Session_finalize(MPI_Session* session) {
  return guarded([&] {
    if (session == nullptr || *session == nullptr) {
      throw Error(ErrClass::session, "null session");
    }
    (*session)->s.finalize();
    delete *session;
    *session = MPI_SESSION_NULL;
  });
}

int MPI_Session_get_num_psets(MPI_Session session, MPI_Info /*info*/,
                              int* npset_names) {
  return guarded([&] {
    if (session == nullptr || npset_names == nullptr) {
      throw Error(ErrClass::arg, "null argument");
    }
    *npset_names = session->s.num_psets();
  });
}

int MPI_Session_get_nth_pset(MPI_Session session, MPI_Info /*info*/, int n,
                             int* pset_len, char* pset_name) {
  return guarded([&] {
    if (session == nullptr || pset_len == nullptr) {
      throw Error(ErrClass::arg, "null argument");
    }
    const std::string name = session->s.nth_pset(n);
    if (pset_name == nullptr || *pset_len == 0) {
      // Length query mode, as in the proposal.
      *pset_len = static_cast<int>(name.size()) + 1;
      return;
    }
    std::strncpy(pset_name, name.c_str(), static_cast<std::size_t>(*pset_len));
    pset_name[*pset_len - 1] = '\0';
  });
}

int MPI_Session_get_pset_info(MPI_Session session, const char* pset_name,
                              MPI_Info* info) {
  return guarded([&] {
    if (session == nullptr || pset_name == nullptr || info == nullptr) {
      throw Error(ErrClass::arg, "null argument");
    }
    *info = new InfoHandle{session->s.pset_info(pset_name)};
  });
}

// --- groups ---------------------------------------------------------------------

int MPI_Group_from_session_pset(MPI_Session session, const char* pset_name,
                                MPI_Group* newgroup) {
  return guarded([&] {
    if (session == nullptr || pset_name == nullptr || newgroup == nullptr) {
      throw Error(ErrClass::arg, "null argument");
    }
    *newgroup = new GroupHandle{session->s.group_from_pset(pset_name)};
  });
}

int MPI_Group_size(MPI_Group group, int* size) {
  return guarded([&] {
    if (group == nullptr || size == nullptr) {
      throw Error(ErrClass::group, "null group");
    }
    *size = group->g.size();
  });
}

int MPI_Group_rank(MPI_Group group, int* rank) {
  return guarded([&] {
    if (group == nullptr || rank == nullptr) {
      throw Error(ErrClass::group, "null group");
    }
    *rank = group->g.rank_of(sim::Cluster::current().rank());
  });
}

int MPI_Group_free(MPI_Group* group) {
  return guarded([&] {
    if (group == nullptr || *group == nullptr) {
      throw Error(ErrClass::group, "null group");
    }
    delete *group;
    *group = MPI_GROUP_NULL;
  });
}

// --- communicators ---------------------------------------------------------------

int MPI_Comm_create_from_group(MPI_Group group, const char* stringtag,
                               MPI_Info info, MPI_Errhandler errhandler,
                               MPI_Comm* newcomm) {
  return guarded([&] {
    if (group == nullptr || stringtag == nullptr || newcomm == nullptr) {
      throw Error(ErrClass::arg, "null argument");
    }
    const Info& i = info != MPI_INFO_NULL ? info->i : Info::null();
    const Errhandler& e = errhandler != MPI_ERRHANDLER_NULL
                              ? errhandler->e
                              : Errhandler::errors_are_fatal();
    *newcomm = new CommHandle{
        Communicator::create_from_group(group->g, stringtag, i, e)};
  });
}

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
  return guarded([&] {
    if (comm == nullptr || rank == nullptr) {
      throw Error(ErrClass::comm, "null communicator");
    }
    *rank = comm->c.rank();
  });
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
  return guarded([&] {
    if (comm == nullptr || size == nullptr) {
      throw Error(ErrClass::comm, "null communicator");
    }
    *size = comm->c.size();
  });
}

int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm) {
  return guarded([&] {
    if (comm == nullptr || newcomm == nullptr) {
      throw Error(ErrClass::comm, "null communicator");
    }
    *newcomm = new CommHandle{comm->c.dup()};
  });
}

int MPI_Comm_free(MPI_Comm* comm) {
  return guarded([&] {
    if (comm == nullptr || *comm == nullptr) {
      throw Error(ErrClass::comm, "null communicator");
    }
    (*comm)->c.free();
    delete *comm;
    *comm = MPI_COMM_NULL;
  });
}

// --- messaging --------------------------------------------------------------------

int MPI_Send(const void* buf, int count, MPI_Datatype dt, int dest, int tag,
             MPI_Comm comm) {
  return guarded([&] {
    if (comm == nullptr) {
      throw Error(ErrClass::comm, "null communicator");
    }
    comm->c.send(buf, count, cxx_datatype(dt), dest, tag);
  });
}

int MPI_Recv(void* buf, int count, MPI_Datatype dt, int source, int tag,
             MPI_Comm comm, MPI_Status* status) {
  return guarded([&] {
    if (comm == nullptr) {
      throw Error(ErrClass::comm, "null communicator");
    }
    Status st = comm->c.recv(buf, count, cxx_datatype(dt), source, tag);
    fill_status(status, st);
  });
}

int MPI_Isend(const void* buf, int count, MPI_Datatype dt, int dest, int tag,
              MPI_Comm comm, MPI_Request* request) {
  return guarded([&] {
    if (comm == nullptr || request == nullptr) {
      throw Error(ErrClass::comm, "null argument");
    }
    *request =
        new RequestHandle{comm->c.isend(buf, count, cxx_datatype(dt), dest, tag)};
  });
}

int MPI_Irecv(void* buf, int count, MPI_Datatype dt, int source, int tag,
              MPI_Comm comm, MPI_Request* request) {
  return guarded([&] {
    if (comm == nullptr || request == nullptr) {
      throw Error(ErrClass::comm, "null argument");
    }
    *request = new RequestHandle{
        comm->c.irecv(buf, count, cxx_datatype(dt), source, tag)};
  });
}

int MPI_Wait(MPI_Request* request, MPI_Status* status) {
  return guarded([&] {
    if (request == nullptr || *request == nullptr) {
      return;  // MPI_REQUEST_NULL: immediate success
    }
    Status st = (*request)->r.wait();
    fill_status(status, st);
    delete *request;
    *request = MPI_REQUEST_NULL;
  });
}

int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status) {
  return guarded([&] {
    if (request == nullptr || flag == nullptr) {
      throw Error(ErrClass::request, "null argument");
    }
    if (*request == nullptr) {
      *flag = 1;
      return;
    }
    if ((*request)->r.test()) {
      *flag = 1;
      fill_status(status, Status{});
      delete *request;
      *request = MPI_REQUEST_NULL;
    } else {
      *flag = 0;
    }
  });
}

int MPI_Barrier(MPI_Comm comm) {
  return guarded([&] {
    if (comm == nullptr) {
      throw Error(ErrClass::comm, "null communicator");
    }
    comm->c.barrier();
  });
}

int MPI_Ibarrier(MPI_Comm comm, MPI_Request* request) {
  return guarded([&] {
    if (comm == nullptr || request == nullptr) {
      throw Error(ErrClass::comm, "null argument");
    }
    *request = new RequestHandle{comm->c.ibarrier()};
  });
}

int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count,
                  MPI_Datatype dt, MPI_Op op, MPI_Comm comm) {
  return guarded([&] {
    if (comm == nullptr) {
      throw Error(ErrClass::comm, "null communicator");
    }
    comm->c.allreduce(sendbuf, recvbuf, count, cxx_datatype(dt), cxx_op(op));
  });
}

int MPI_Bcast(void* buf, int count, MPI_Datatype dt, int root, MPI_Comm comm) {
  return guarded([&] {
    if (comm == nullptr) {
      throw Error(ErrClass::comm, "null communicator");
    }
    comm->c.bcast(buf, count, cxx_datatype(dt), root);
  });
}

// --- MPI_T-style introspection (obs pvars/cvars) ------------------------------

namespace {

void copy_name(const std::string& src, char* dst, int len) {
  if (dst == nullptr || len <= 0) {
    throw Error(ErrClass::arg, "null/empty name buffer");
  }
  const std::size_t n = std::min<std::size_t>(src.size(),
                                              static_cast<std::size_t>(len) - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

int SESSMPI_T_pvar_get_num(int* num) {
  return guarded([&] {
    if (num == nullptr) throw Error(ErrClass::arg, "null num");
    *num = static_cast<int>(obs::pvar_list().size());
  });
}

int SESSMPI_T_pvar_get_info(int index, char* name, int name_len,
                            int* var_class) {
  return guarded([&] {
    const auto vars = obs::pvar_list();
    if (index < 0 || static_cast<std::size_t>(index) >= vars.size()) {
      throw Error(ErrClass::arg, "pvar index out of range");
    }
    copy_name(vars[static_cast<std::size_t>(index)].name, name, name_len);
    if (var_class != nullptr) {
      switch (vars[static_cast<std::size_t>(index)].cls) {
        case obs::PvarClass::histogram:
          *var_class = SESSMPI_T_PVAR_CLASS_HISTOGRAM;
          break;
        case obs::PvarClass::gauge:
          *var_class = SESSMPI_T_PVAR_CLASS_GAUGE;
          break;
        case obs::PvarClass::counter:
          *var_class = SESSMPI_T_PVAR_CLASS_COUNTER;
          break;
      }
    }
  });
}

int SESSMPI_T_pvar_read(const char* name, unsigned long long* value) {
  return guarded([&] {
    if (name == nullptr || value == nullptr) {
      throw Error(ErrClass::arg, "null name/value");
    }
    if (auto c = obs::pvar_read_counter(name)) {
      *value = *c;
      return;
    }
    if (auto h = obs::pvar_read_histogram(name)) {
      *value = h->count;
      return;
    }
    if (auto g = obs::pvar_read_gauge(name)) {
      *value = *g;
      return;
    }
    throw Error(ErrClass::arg, "unknown pvar");
  });
}

int SESSMPI_T_pvar_read_percentile(const char* name, double q, double* value) {
  return guarded([&] {
    if (name == nullptr || value == nullptr) {
      throw Error(ErrClass::arg, "null name/value");
    }
    auto h = obs::pvar_read_histogram(name);
    if (!h) throw Error(ErrClass::arg, "not a histogram pvar");
    if (q <= 0.50001 && q >= 0.49999) {
      *value = h->p50;
    } else if (q <= 0.90001 && q >= 0.89999) {
      *value = h->p90;
    } else if (q <= 0.99001 && q >= 0.98999) {
      *value = h->p99;
    } else {
      // Arbitrary quantiles re-walk the histogram.
      for (const auto& [n, hist] : obs::histograms()) {
        if (n == name) {
          *value = hist->percentile(q);
          return;
        }
      }
      throw Error(ErrClass::arg, "unknown pvar");
    }
  });
}

int SESSMPI_T_pvar_reset(const char* name) {
  return guarded([&] {
    if (name == nullptr || !obs::pvar_reset(name)) {
      throw Error(ErrClass::arg, "unknown pvar");
    }
  });
}

int SESSMPI_T_pvar_reset_all(void) {
  return guarded([] { obs::pvar_reset_all(); });
}

int SESSMPI_T_cvar_get_num(int* num) {
  return guarded([&] {
    if (num == nullptr) throw Error(ErrClass::arg, "null num");
    *num = static_cast<int>(obs::cvar_list().size());
  });
}

int SESSMPI_T_cvar_get_info(int index, char* name, int name_len) {
  return guarded([&] {
    const auto vars = obs::cvar_list();
    if (index < 0 || static_cast<std::size_t>(index) >= vars.size()) {
      throw Error(ErrClass::arg, "cvar index out of range");
    }
    copy_name(vars[static_cast<std::size_t>(index)].name, name, name_len);
  });
}

int SESSMPI_T_cvar_read(const char* name, char* value, int value_len) {
  return guarded([&] {
    if (name == nullptr) throw Error(ErrClass::arg, "null name");
    auto v = obs::cvar_read(name);
    if (!v) throw Error(ErrClass::arg, "unknown cvar");
    copy_name(*v, value, value_len);
  });
}

int SESSMPI_T_cvar_write(const char* name, const char* value) {
  return guarded([&] {
    if (name == nullptr || value == nullptr) {
      throw Error(ErrClass::arg, "null name/value");
    }
    if (!obs::cvar_write(name, value)) {
      throw Error(ErrClass::arg, "unknown cvar or rejected value");
    }
  });
}

}  // namespace sessmpi::capi
