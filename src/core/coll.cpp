// Blocking collectives over the PML point-to-point primitives. Algorithms
// match the small-scale choices in the paper's stack: binomial trees for
// barrier/bcast/reduce, linear gather/scatter, pairwise alltoall. All
// internal traffic runs in the private negative tag space, derived from the
// per-communicator collective sequence number so every member computes the
// same tags without coordination.

#include <algorithm>
#include <cstring>
#include <vector>

#include "detail/state.hpp"
#include "sessmpi/comm.hpp"

namespace sessmpi {

using detail::CommState;
using detail::ProcState;

namespace {

const std::shared_ptr<CommState>& coll_state(
    const std::shared_ptr<CommState>& s) {
  if (!s || s->freed) {
    throw Error(ErrClass::comm, "collective on invalid communicator");
  }
  return s;
}

std::uint32_t next_seq(const std::shared_ptr<CommState>& s) {
  std::lock_guard lock(s->ps->mu);
  return s->coll_seq++;
}

/// Binomial-tree parent/children of `vrank` (virtual rank, root at 0).
void tree(int vrank, int size, int* parent, std::vector<int>* children) {
  *parent = -1;
  int mask = 1;
  while (mask < size) {
    if ((vrank & mask) != 0) {
      *parent = vrank & ~mask;
      return;
    }
    const int child = vrank | mask;
    if (child < size) {
      children->push_back(child);
    }
    mask <<= 1;
  }
}

}  // namespace

void Communicator::barrier() const {
  // Binomial fan-in/fan-out (the blocking form of Ibarrier). Note for the
  // Fig. 5 reproduction: only tree edges exchange messages, so a barrier
  // does NOT establish the exCID handshake between arbitrary rank pairs.
  Status st = ibarrier().wait();
  if (st.error != ErrClass::success) {
    coll_state(state_)->errh.raise(st.error, "barrier aborted");
  }
}

Request Communicator::ibarrier() const {
  const auto& s = coll_state(state_);
  return Request{detail::make_ibarrier(*s->ps, s)};
}

void Communicator::bcast(void* buf, int count, const Datatype& dt,
                         int root) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  if (root < 0 || root >= n) {
    s->errh.raise(ErrClass::root, "bcast root out of range");
  }
  if (n == 1) {
    return;
  }
  const int tag = detail::internal_tag(next_seq(s), 0);
  const int vrank = (s->myrank - root + n) % n;
  int parent = -1;
  std::vector<int> children;
  tree(vrank, n, &parent, &children);
  const auto real = [&](int v) { return (v + root) % n; };

  if (parent >= 0) {
    ps.blocking_recv(s, buf, count, dt, real(parent), tag);
  }
  for (int child : children) {
    ps.blocking_send(s, buf, count, dt, real(child), tag, false);
  }
}

void Communicator::reduce(const void* sendbuf, void* recvbuf, int count,
                          const Datatype& dt, const Op& op, int root) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  if (root < 0 || root >= n) {
    s->errh.raise(ErrClass::root, "reduce root out of range");
  }
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.extent();
  const int tag = detail::internal_tag(next_seq(s), 0);

  // Accumulator starts as a copy of the local contribution.
  std::vector<std::byte> acc(bytes);
  std::memcpy(acc.data(), sendbuf, bytes);

  if (!op.commutative()) {
    // Linear, rank-ordered fold at the root preserves non-commutative
    // semantics: result = ((v0 op v1) op v2) ... in strict rank order.
    if (s->myrank == root) {
      std::vector<std::byte> tmp(bytes);
      bool first = true;
      for (int r = 0; r < n; ++r) {
        const void* contrib;
        if (r == root) {
          contrib = sendbuf;
        } else {
          ps.blocking_recv(s, tmp.data(), count, dt, r, tag);
          contrib = tmp.data();
        }
        if (first) {
          std::memcpy(recvbuf, contrib, bytes);
          first = false;
        } else {
          op.apply(contrib, recvbuf, count, dt);
        }
      }
    } else {
      ps.blocking_send(s, sendbuf, count, dt, root, tag, false);
    }
    return;
  }

  const int vrank = (s->myrank - root + n) % n;
  int parent = -1;
  std::vector<int> children;
  tree(vrank, n, &parent, &children);
  const auto real = [&](int v) { return (v + root) % n; };

  std::vector<std::byte> incoming(bytes);
  for (int child : children) {
    ps.blocking_recv(s, incoming.data(), count, dt, real(child), tag);
    op.apply(incoming.data(), acc.data(), count, dt);
  }
  if (parent >= 0) {
    ps.blocking_send(s, acc.data(), count, dt, real(parent), tag, false);
  } else {
    std::memcpy(recvbuf, acc.data(), bytes);
  }
}

void Communicator::allreduce(const void* sendbuf, void* recvbuf, int count,
                             const Datatype& dt, const Op& op) const {
  reduce(sendbuf, recvbuf, count, dt, op, 0);
  bcast(recvbuf, count, dt, 0);
}

void Communicator::gather(const void* sendbuf, int sendcount,
                          const Datatype& sdt, void* recvbuf, int recvcount,
                          const Datatype& rdt, int root) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  const int tag = detail::internal_tag(next_seq(s), 0);
  if (s->myrank == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    const std::size_t slot = static_cast<std::size_t>(recvcount) * rdt.extent();
    for (int r = 0; r < n; ++r) {
      if (r == root) {
        const std::size_t bytes =
            static_cast<std::size_t>(sendcount) * sdt.extent();
        std::memcpy(out + static_cast<std::size_t>(r) * slot, sendbuf, bytes);
      } else {
        ps.blocking_recv(s, out + static_cast<std::size_t>(r) * slot, recvcount,
                         rdt, r, tag);
      }
    }
  } else {
    ps.blocking_send(s, sendbuf, sendcount, sdt, root, tag, false);
  }
}

void Communicator::scatter(const void* sendbuf, int sendcount,
                           const Datatype& sdt, void* recvbuf, int recvcount,
                           const Datatype& rdt, int root) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  const int tag = detail::internal_tag(next_seq(s), 0);
  if (s->myrank == root) {
    const auto* in = static_cast<const std::byte*>(sendbuf);
    const std::size_t slot = static_cast<std::size_t>(sendcount) * sdt.extent();
    for (int r = 0; r < n; ++r) {
      if (r == root) {
        std::memcpy(recvbuf, in + static_cast<std::size_t>(r) * slot,
                    static_cast<std::size_t>(recvcount) * rdt.extent());
      } else {
        ps.blocking_send(s, in + static_cast<std::size_t>(r) * slot, sendcount,
                         sdt, r, tag, false);
      }
    }
  } else {
    ps.blocking_recv(s, recvbuf, recvcount, rdt, root, tag);
  }
}

void Communicator::allgather(const void* sendbuf, int sendcount,
                             const Datatype& sdt, void* recvbuf, int recvcount,
                             const Datatype& rdt) const {
  const auto& s = coll_state(state_);
  gather(sendbuf, sendcount, sdt, recvbuf, recvcount, rdt, 0);
  bcast(recvbuf, recvcount * s->size(), rdt, 0);
}

void Communicator::alltoall(const void* sendbuf, int sendcount,
                            const Datatype& sdt, void* recvbuf, int recvcount,
                            const Datatype& rdt) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  const int tag = detail::internal_tag(next_seq(s), 0);
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  const std::size_t sslot = static_cast<std::size_t>(sendcount) * sdt.extent();
  const std::size_t rslot = static_cast<std::size_t>(recvcount) * rdt.extent();

  std::memcpy(out + static_cast<std::size_t>(s->myrank) * rslot,
              in + static_cast<std::size_t>(s->myrank) * sslot,
              std::min(sslot, rslot));
  // Pairwise exchange: at step i talk to rank+i (send) / rank-i (recv).
  for (int i = 1; i < n; ++i) {
    const int to = (s->myrank + i) % n;
    const int from = (s->myrank - i + n) % n;
    auto rreq = ps.irecv_impl(s, out + static_cast<std::size_t>(from) * rslot,
                              recvcount, rdt, from, tag);
    auto sreq = ps.isend_impl(s, in + static_cast<std::size_t>(to) * sslot,
                              sendcount, sdt, to, tag, false);
    ps.progress_until([&] { return rreq->done() && sreq->done(); });
  }
}

void Communicator::exscan(const void* sendbuf, void* recvbuf, int count,
                          const Datatype& dt, const Op& op) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  const int tag = detail::internal_tag(next_seq(s), 0);
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.extent();

  // Chain: rank r receives the prefix of [0, r), forwards prefix op local.
  std::vector<std::byte> prefix(bytes);
  if (s->myrank > 0) {
    ps.blocking_recv(s, prefix.data(), count, dt, s->myrank - 1, tag);
    std::memcpy(recvbuf, prefix.data(), bytes);
  }
  if (s->myrank + 1 < n) {
    if (s->myrank == 0) {
      ps.blocking_send(s, sendbuf, count, dt, 1, tag, false);
    } else {
      // forward = prefix op local
      op.apply(sendbuf, prefix.data(), count, dt);
      ps.blocking_send(s, prefix.data(), count, dt, s->myrank + 1, tag, false);
    }
  }
}

void Communicator::reduce_scatter_block(const void* sendbuf, void* recvbuf,
                                        int recvcount, const Datatype& dt,
                                        const Op& op) const {
  const auto& s = coll_state(state_);
  const int n = s->size();
  const std::size_t block = static_cast<std::size_t>(recvcount) * dt.extent();
  // Reduce the full vector to rank 0, then scatter the blocks.
  std::vector<std::byte> full(block * static_cast<std::size_t>(n));
  reduce(sendbuf, full.data(), recvcount * n, dt, op, 0);
  scatter(full.data(), recvcount, dt, recvbuf, recvcount, dt, 0);
}

void Communicator::gatherv(const void* sendbuf, int sendcount,
                           const Datatype& sdt, void* recvbuf,
                           const std::vector<int>& recvcounts,
                           const std::vector<int>& displs, const Datatype& rdt,
                           int root) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  if (s->myrank == root &&
      (recvcounts.size() != static_cast<std::size_t>(n) ||
       displs.size() != static_cast<std::size_t>(n))) {
    s->errh.raise(ErrClass::arg, "gatherv counts/displs size mismatch");
  }
  const int tag = detail::internal_tag(next_seq(s), 0);
  if (s->myrank == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    for (int r = 0; r < n; ++r) {
      std::byte* dst = out + static_cast<std::size_t>(
                                 displs[static_cast<std::size_t>(r)]) *
                                 rdt.extent();
      if (r == root) {
        std::memcpy(dst, sendbuf,
                    static_cast<std::size_t>(sendcount) * sdt.extent());
      } else {
        ps.blocking_recv(s, dst, recvcounts[static_cast<std::size_t>(r)], rdt,
                         r, tag);
      }
    }
  } else {
    ps.blocking_send(s, sendbuf, sendcount, sdt, root, tag, false);
  }
}

void Communicator::allgatherv(const void* sendbuf, int sendcount,
                              const Datatype& sdt, void* recvbuf,
                              const std::vector<int>& recvcounts,
                              const std::vector<int>& displs,
                              const Datatype& rdt) const {
  const auto& s = coll_state(state_);
  gatherv(sendbuf, sendcount, sdt, recvbuf, recvcounts, displs, rdt, 0);
  // Broadcast the fully assembled buffer (max extent across blocks).
  std::size_t total_elems = 0;
  for (std::size_t r = 0; r < recvcounts.size(); ++r) {
    total_elems = std::max(
        total_elems, static_cast<std::size_t>(displs[r]) +
                         static_cast<std::size_t>(recvcounts[r]));
  }
  bcast(recvbuf, static_cast<int>(total_elems), rdt, 0);
  (void)s;
}

void Communicator::scan(const void* sendbuf, void* recvbuf, int count,
                        const Datatype& dt, const Op& op) const {
  const auto& s = coll_state(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();
  const int tag = detail::internal_tag(next_seq(s), 0);
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.extent();

  std::memcpy(recvbuf, sendbuf, bytes);
  if (s->myrank > 0) {
    std::vector<std::byte> prefix(bytes);
    ps.blocking_recv(s, prefix.data(), count, dt, s->myrank - 1, tag);
    // recvbuf = prefix op local  (prefix of earlier ranks folds from left)
    std::vector<std::byte> local(bytes);
    std::memcpy(local.data(), recvbuf, bytes);
    std::memcpy(recvbuf, prefix.data(), bytes);
    op.apply(local.data(), recvbuf, count, dt);
  }
  if (s->myrank + 1 < n) {
    ps.blocking_send(s, recvbuf, count, dt, s->myrank + 1, tag, false);
  }
}

}  // namespace sessmpi
