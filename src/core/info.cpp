#include "sessmpi/info.hpp"

namespace sessmpi {

Info::Info() : state_(std::make_shared<State>()) {}

const Info& Info::null() {
  static const Info n{nullptr};
  return n;
}

Info Info::dup() const {
  Info copy;
  if (state_) {
    std::lock_guard lock(state_->mu);
    copy.state_->kv = state_->kv;
  }
  return copy;
}

void Info::set(const std::string& key, const std::string& value) {
  if (!state_) {
    return;
  }
  std::lock_guard lock(state_->mu);
  state_->kv[key] = value;
}

std::optional<std::string> Info::get(const std::string& key) const {
  if (!state_) {
    return std::nullopt;
  }
  std::lock_guard lock(state_->mu);
  auto it = state_->kv.find(key);
  if (it == state_->kv.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool Info::erase(const std::string& key) {
  if (!state_) {
    return false;
  }
  std::lock_guard lock(state_->mu);
  return state_->kv.erase(key) > 0;
}

std::size_t Info::nkeys() const {
  if (!state_) {
    return 0;
  }
  std::lock_guard lock(state_->mu);
  return state_->kv.size();
}

std::optional<std::string> Info::nthkey(std::size_t n) const {
  if (!state_) {
    return std::nullopt;
  }
  std::lock_guard lock(state_->mu);
  if (n >= state_->kv.size()) {
    return std::nullopt;
  }
  auto it = state_->kv.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(n));
  return it->first;
}

std::vector<std::string> Info::keys() const {
  std::vector<std::string> out;
  if (!state_) {
    return out;
  }
  std::lock_guard lock(state_->mu);
  out.reserve(state_->kv.size());
  for (const auto& [k, v] : state_->kv) {
    out.push_back(k);
  }
  return out;
}

}  // namespace sessmpi
