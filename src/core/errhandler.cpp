#include "sessmpi/errhandler.hpp"

#include <cstdlib>
#include <iostream>

namespace sessmpi {

Errhandler::Errhandler(Kind kind, HandlerFn fn)
    : kind_(kind), state_(std::make_shared<State>()) {
  state_->fn = std::move(fn);
}

Errhandler Errhandler::create(HandlerFn fn) {
  return Errhandler{Kind::custom, std::move(fn)};
}

const Errhandler& Errhandler::errors_are_fatal() {
  static const Errhandler h{Kind::fatal, nullptr};
  return h;
}

const Errhandler& Errhandler::errors_return() {
  static const Errhandler h{Kind::ret, nullptr};
  return h;
}

int Errhandler::invocations() const noexcept {
  return state_->count->load(std::memory_order_relaxed);
}

void Errhandler::raise(ErrClass cls, const std::string& msg) const {
  state_->count->fetch_add(1, std::memory_order_relaxed);
  switch (kind_) {
    case Kind::fatal:
      std::cerr << "sessmpi: fatal error " << err_class_name(cls) << ": " << msg
                << '\n';
      std::abort();
    case Kind::custom:
      if (state_->fn) {
        state_->fn(cls, msg);
      }
      [[fallthrough]];
    case Kind::ret:
      throw Error(cls, msg);
  }
  throw Error(cls, msg);  // unreachable; keeps [[noreturn]] honest
}

}  // namespace sessmpi
