#include "sessmpi/group.hpp"

#include <algorithm>
#include <set>

namespace sessmpi {

const Group& Group::empty() {
  static const Group g{std::make_shared<const std::vector<base::Rank>>()};
  return g;
}

Group::Group(std::shared_ptr<const std::vector<base::Rank>> m)
    : members_(std::move(m)) {
  const std::vector<base::Rank>& v = *members_;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] <= v[i - 1]) {
      sorted_ = contig_ = false;
      break;
    }
    if (v[i] != v[i - 1] + 1) {
      contig_ = false;
    }
  }
}

Group Group::of(std::vector<base::Rank> members) {
  // Strictly increasing input (world, pset snapshots, shrink survivors) is
  // duplicate-free by construction; only unordered input pays the set-based
  // dedupe check.
  bool increasing = true;
  for (std::size_t i = 1; i < members.size(); ++i) {
    if (members[i] <= members[i - 1]) {
      increasing = false;
      break;
    }
  }
  if (!increasing) {
    std::set<base::Rank> unique(members.begin(), members.end());
    if (unique.size() != members.size()) {
      throw Error(ErrClass::group, "duplicate ranks in group");
    }
  }
  return Group{std::make_shared<const std::vector<base::Rank>>(std::move(members))};
}

Group Group::of_shared(
    std::shared_ptr<const std::vector<base::Rank>> members) {
  if (!members) {
    throw Error(ErrClass::group, "null member vector");
  }
  Group g{std::move(members)};
  if (!g.sorted_) {
    std::set<base::Rank> unique(g.members_->begin(), g.members_->end());
    if (unique.size() != g.members_->size()) {
      throw Error(ErrClass::group, "duplicate ranks in group");
    }
  }
  return g;
}

int Group::size() const noexcept { return static_cast<int>(members_->size()); }

int Group::rank_of(base::Rank global) const noexcept {
  const std::vector<base::Rank>& v = *members_;
  if (v.empty()) {
    return -1;
  }
  if (contig_) {
    const base::Rank off = global - v.front();
    return off >= 0 && off < static_cast<base::Rank>(v.size())
               ? static_cast<int>(off)
               : -1;
  }
  if (sorted_) {
    auto it = std::lower_bound(v.begin(), v.end(), global);
    return it != v.end() && *it == global
               ? static_cast<int>(std::distance(v.begin(), it))
               : -1;
  }
  auto it = std::find(v.begin(), v.end(), global);
  return it == v.end() ? -1 : static_cast<int>(std::distance(v.begin(), it));
}

base::Rank Group::global_of(int r) const {
  if (r < 0 || r >= size()) {
    throw Error(ErrClass::rank, "group rank out of range");
  }
  return (*members_)[static_cast<std::size_t>(r)];
}

const std::vector<base::Rank>& Group::members() const noexcept {
  return *members_;
}

bool Group::contains(base::Rank global) const noexcept {
  return rank_of(global) >= 0;
}

Group Group::set_union(const Group& other) const {
  std::vector<base::Rank> out = *members_;
  for (base::Rank r : *other.members_) {
    if (!contains(r)) {
      out.push_back(r);
    }
  }
  return Group::of(std::move(out));
}

Group Group::set_intersection(const Group& other) const {
  std::vector<base::Rank> out;
  for (base::Rank r : *members_) {
    if (other.contains(r)) {
      out.push_back(r);
    }
  }
  return Group::of(std::move(out));
}

Group Group::set_difference(const Group& other) const {
  std::vector<base::Rank> out;
  for (base::Rank r : *members_) {
    if (!other.contains(r)) {
      out.push_back(r);
    }
  }
  return Group::of(std::move(out));
}

Group Group::incl(const std::vector<int>& ranks) const {
  std::vector<base::Rank> out;
  out.reserve(ranks.size());
  for (int r : ranks) {
    out.push_back(global_of(r));  // throws on range error
  }
  return Group::of(std::move(out));  // throws on duplicates
}

Group Group::excl(const std::vector<int>& ranks) const {
  std::set<int> drop;
  for (int r : ranks) {
    global_of(r);  // validate
    if (!drop.insert(r).second) {
      throw Error(ErrClass::rank, "duplicate rank in excl");
    }
  }
  std::vector<base::Rank> out;
  for (int r = 0; r < size(); ++r) {
    if (!drop.contains(r)) {
      out.push_back(global_of(r));
    }
  }
  return Group::of(std::move(out));
}

std::vector<int> Group::translate(const std::vector<int>& ranks,
                                  const Group& other) const {
  std::vector<int> out;
  out.reserve(ranks.size());
  for (int r : ranks) {
    out.push_back(other.rank_of(global_of(r)));
  }
  return out;
}

Group::Compare Group::compare(const Group& other) const {
  if (*members_ == *other.members_) {
    return Compare::ident;
  }
  if (members_->size() != other.members_->size()) {
    return Compare::unequal;
  }
  std::vector<base::Rank> a = *members_;
  std::vector<base::Rank> b = *other.members_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b ? Compare::similar : Compare::unequal;
}

}  // namespace sessmpi
