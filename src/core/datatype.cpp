#include "sessmpi/datatype.hpp"

#include <cstring>

namespace sessmpi {

struct Datatype::Impl {
  Kind kind = Kind::derived_k;
  std::string name;
  std::size_t size = 0;    // packed bytes per element
  std::size_t extent = 0;  // memory bytes per element
  // Derived-type structure: for contiguous, stride == blocklength.
  std::shared_ptr<const Impl> base;  // null for primitives
  int count = 1;                     // blocks
  int blocklength = 1;               // base elements per block
  int stride = 1;                    // base elements between block starts
};

namespace {

Datatype::Impl make_primitive(Datatype::Kind kind, std::string name,
                              std::size_t size) {
  Datatype::Impl impl;
  impl.kind = kind;
  impl.name = std::move(name);
  impl.size = size;
  impl.extent = size;
  return impl;
}

/// Pack one element of a (possibly nested) type into contiguous wire form.
void pack_element(const Datatype::Impl& impl, const std::byte* mem,
                  std::byte* wire) {
  if (!impl.base) {
    std::memcpy(wire, mem, impl.size);
    return;
  }
  const Datatype::Impl& b = *impl.base;
  std::size_t wire_off = 0;
  for (int blk = 0; blk < impl.count; ++blk) {
    const std::size_t mem_off =
        static_cast<std::size_t>(blk) * static_cast<std::size_t>(impl.stride) *
        b.extent;
    for (int e = 0; e < impl.blocklength; ++e) {
      pack_element(b, mem + mem_off + static_cast<std::size_t>(e) * b.extent,
                   wire + wire_off);
      wire_off += b.size;
    }
  }
}

/// Inverse of pack_element.
void unpack_element(const Datatype::Impl& impl, const std::byte* wire,
                    std::byte* mem) {
  if (!impl.base) {
    std::memcpy(mem, wire, impl.size);
    return;
  }
  const Datatype::Impl& b = *impl.base;
  std::size_t wire_off = 0;
  for (int blk = 0; blk < impl.count; ++blk) {
    const std::size_t mem_off =
        static_cast<std::size_t>(blk) * static_cast<std::size_t>(impl.stride) *
        b.extent;
    for (int e = 0; e < impl.blocklength; ++e) {
      unpack_element(b, wire + wire_off,
                     mem + mem_off + static_cast<std::size_t>(e) * b.extent);
      wire_off += b.size;
    }
  }
}

}  // namespace

#define SESSMPI_PRIMITIVE(fn, kind_tag, cpp_name, bytes)                 \
  const Datatype& Datatype::fn() {                                       \
    static const Datatype t{std::make_shared<const Impl>(                \
        make_primitive(Kind::kind_tag, cpp_name, bytes))};               \
    return t;                                                            \
  }

SESSMPI_PRIMITIVE(byte, byte_k, "byte", 1)
SESSMPI_PRIMITIVE(int32, int32_k, "int32", 4)
SESSMPI_PRIMITIVE(int64, int64_k, "int64", 8)
SESSMPI_PRIMITIVE(uint64, uint64_k, "uint64", 8)
SESSMPI_PRIMITIVE(float32, float32_k, "float32", 4)
SESSMPI_PRIMITIVE(float64, float64_k, "float64", 8)
SESSMPI_PRIMITIVE(char8, char_k, "char", 1)
#undef SESSMPI_PRIMITIVE

Datatype Datatype::contiguous(int count, const Datatype& base) {
  if (count < 0) {
    throw Error(ErrClass::count, "negative count in Type_contiguous");
  }
  auto impl = std::make_shared<Impl>();
  impl->kind = Kind::derived_k;
  impl->name = "contiguous(" + std::to_string(count) + "," + base.name() + ")";
  impl->base = base.impl_;
  impl->count = count;
  impl->blocklength = 1;
  impl->stride = 1;
  impl->size = static_cast<std::size_t>(count) * base.size();
  impl->extent = static_cast<std::size_t>(count) * base.extent();
  return Datatype{impl};
}

Datatype Datatype::vector(int count, int blocklength, int stride,
                          const Datatype& base) {
  if (count < 0 || blocklength < 0) {
    throw Error(ErrClass::count, "negative count in Type_vector");
  }
  if (count > 0 && stride < blocklength) {
    throw Error(ErrClass::arg, "Type_vector stride smaller than blocklength");
  }
  auto impl = std::make_shared<Impl>();
  impl->kind = Kind::derived_k;
  impl->name = "vector(" + std::to_string(count) + "," +
               std::to_string(blocklength) + "," + std::to_string(stride) +
               "," + base.name() + ")";
  impl->base = base.impl_;
  impl->count = count;
  impl->blocklength = blocklength;
  impl->stride = stride;
  impl->size = static_cast<std::size_t>(count) *
               static_cast<std::size_t>(blocklength) * base.size();
  impl->extent =
      count == 0
          ? 0
          : (static_cast<std::size_t>(count - 1) *
                 static_cast<std::size_t>(stride) +
             static_cast<std::size_t>(blocklength)) *
                base.extent();
  return Datatype{impl};
}

std::size_t Datatype::size() const noexcept { return impl_->size; }
std::size_t Datatype::extent() const noexcept { return impl_->extent; }
const std::string& Datatype::name() const noexcept { return impl_->name; }
bool Datatype::is_primitive() const noexcept { return impl_->base == nullptr; }
Datatype::Kind Datatype::kind() const noexcept { return impl_->kind; }

void Datatype::pack(const void* src, int count, std::byte* dst) const {
  const auto* mem = static_cast<const std::byte*>(src);
  for (int i = 0; i < count; ++i) {
    pack_element(*impl_, mem + static_cast<std::size_t>(i) * impl_->extent,
                 dst + static_cast<std::size_t>(i) * impl_->size);
  }
}

void Datatype::unpack(const std::byte* src, int count, void* dst) const {
  auto* mem = static_cast<std::byte*>(dst);
  for (int i = 0; i < count; ++i) {
    unpack_element(*impl_, src + static_cast<std::size_t>(i) * impl_->size,
                   mem + static_cast<std::size_t>(i) * impl_->extent);
  }
}

template <> const Datatype& datatype_of<std::byte>() { return Datatype::byte(); }
template <> const Datatype& datatype_of<char>() { return Datatype::char8(); }
template <> const Datatype& datatype_of<std::int32_t>() { return Datatype::int32(); }
template <> const Datatype& datatype_of<std::int64_t>() { return Datatype::int64(); }
template <> const Datatype& datatype_of<std::uint64_t>() { return Datatype::uint64(); }
template <> const Datatype& datatype_of<float>() { return Datatype::float32(); }
template <> const Datatype& datatype_of<double>() { return Datatype::float64(); }

}  // namespace sessmpi
