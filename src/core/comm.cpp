#include "sessmpi/comm.hpp"

#include <algorithm>

#include "detail/cid.hpp"
#include "detail/state.hpp"
#include "sessmpi/obs/trace.hpp"

namespace sessmpi {

using detail::CommState;
using detail::ProcState;

Communicator detail_wrap(std::shared_ptr<detail::CommState> state) {
  return Communicator{std::move(state)};
}

const std::shared_ptr<detail::CommState>& detail_unwrap(
    const Communicator& comm) {
  return comm.state_;
}

namespace {

/// Validated access to the underlying state.
const std::shared_ptr<CommState>& checked(
    const std::shared_ptr<CommState>& s) {
  if (!s) {
    throw Error(ErrClass::comm, "null communicator handle");
  }
  if (s->freed) {
    throw Error(ErrClass::comm, "operation on freed communicator");
  }
  return s;
}

std::vector<int> all_ranks(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = i;
  }
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Communicator Communicator::create_from_group(const Group& group,
                                             const std::string& tag,
                                             const Info& /*info*/,
                                             const Errhandler& errh) {
  ProcState& ps = ProcState::current();
  {
    std::lock_guard lock(ps.mu);
    if (ps.live_sessions == 0) {
      errh.raise(ErrClass::session,
                 "Comm_create_from_group before any initialization");
    }
  }
  if (!group.contains(ps.proc.rank())) {
    errh.raise(ErrClass::group, "calling process not in group");
  }
  OBS_SPAN_ARG("comm.create_from_group", "core", group.size());
  // Fig. 1 path: the runtime (PMIx) provides a fresh PGCID; the exCID is
  // derived locally from it. The string tag keeps concurrent creations from
  // overlapping groups apart.
  auto pgcid = ps.pmix().acquire_pgcid(group.members(), "cfg:" + tag);
  if (!pgcid.ok()) {
    errh.raise(ErrClass::other, "PGCID acquisition failed: " +
                                    std::string(err_class_name(pgcid.error())));
  }
  {
    std::lock_guard lock(ps.mu);
    ++ps.pgcids;
  }
  // Eager modex on the sessions path: the PGCID collective completing
  // proves every member has initialized (and therefore published), so the
  // full-group prefetch is safe here. Lazy mode defers to first contact.
  if (pmix::modex_mode() == pmix::ModexMode::eager) {
    ps.pmix().prefetch_peer_info(group.members(), "pml.endpoint");
  }
  auto comm = [&] {
    OBS_SPAN("cid.excid_alloc", "core");
    return ps.register_comm(group, ExCidSpace::fresh(pgcid.value()),
                            /*uses_excid=*/true, std::nullopt);
  }();
  comm->errh = errh;
  comm->comm_name = "from_group:" + tag;
  return Communicator{std::move(comm)};
}

// ---------------------------------------------------------------------------
// Inquiry
// ---------------------------------------------------------------------------

int Communicator::rank() const { return checked(state_)->myrank; }
int Communicator::size() const { return checked(state_)->grp.size(); }
Group Communicator::group() const { return checked(state_)->grp; }

std::string Communicator::name() const { return checked(state_)->comm_name; }
void Communicator::set_name(const std::string& name) {
  checked(state_)->comm_name = name;
}

std::uint16_t Communicator::cid() const { return checked(state_)->cid; }
ExCid Communicator::excid() const { return checked(state_)->excid_space.id(); }
bool Communicator::uses_excid() const { return checked(state_)->uses_excid; }

int Communicator::handshaked_peers() const {
  const auto& s = checked(state_);
  std::lock_guard lock(s->ps->mu);
  int n = 0;
  for (const auto& [rank, p] : s->peers) {
    if (p.remote_cid >= 0) {
      ++n;
    }
  }
  return n;
}

const Errhandler& Communicator::errhandler() const {
  return checked(state_)->errh;
}
void Communicator::set_errhandler(const Errhandler& eh) {
  checked(state_)->errh = eh;
}
AttributeStore& Communicator::attributes() const {
  return checked(state_)->attrs;
}

int Communicator::on_revoke(std::function<void()> fn) const {
  const auto& s = checked(state_);
  std::lock_guard lock(s->ps->mu);
  if (s->revoked) {
    // Already revoked: never let an observer miss the event.
    fn();
    return -1;
  }
  const int id = s->next_revoke_observer++;
  s->revoke_observers.emplace(id, std::move(fn));
  return id;
}

void Communicator::remove_on_revoke(int id) const {
  const auto& s = checked(state_);
  std::lock_guard lock(s->ps->mu);
  s->revoke_observers.erase(id);
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

void Communicator::send(const void* buf, int count, const Datatype& dt,
                        int dst, int tag) const {
  const auto& s = checked(state_);
  if (tag < 0) {
    s->errh.raise(ErrClass::tag, "application tags must be >= 0");
  }
  s->ps->blocking_send(s, buf, count, dt, dst, tag, /*sync=*/false);
}

void Communicator::ssend(const void* buf, int count, const Datatype& dt,
                         int dst, int tag) const {
  const auto& s = checked(state_);
  if (tag < 0) {
    s->errh.raise(ErrClass::tag, "application tags must be >= 0");
  }
  s->ps->blocking_send(s, buf, count, dt, dst, tag, /*sync=*/true);
}

Status Communicator::recv(void* buf, int count, const Datatype& dt, int src,
                          int tag) const {
  const auto& s = checked(state_);
  if (tag < 0 && tag != any_tag) {
    s->errh.raise(ErrClass::tag, "application tags must be >= 0");
  }
  Status st = s->ps->blocking_recv(s, buf, count, dt, src, tag);
  if (st.error != ErrClass::success) {
    s->errh.raise(st.error, "receive completed with error");
  }
  return st;
}

Request Communicator::isend(const void* buf, int count, const Datatype& dt,
                            int dst, int tag) const {
  const auto& s = checked(state_);
  if (tag < 0) {
    s->errh.raise(ErrClass::tag, "application tags must be >= 0");
  }
  return Request{s->ps->isend_impl(s, buf, count, dt, dst, tag, false)};
}

Request Communicator::irecv(void* buf, int count, const Datatype& dt, int src,
                            int tag) const {
  const auto& s = checked(state_);
  if (tag < 0 && tag != any_tag) {
    s->errh.raise(ErrClass::tag, "application tags must be >= 0");
  }
  return Request{s->ps->irecv_impl(s, buf, count, dt, src, tag)};
}

Status Communicator::sendrecv(const void* sendbuf, int sendcount,
                              const Datatype& sdt, int dst, int sendtag,
                              void* recvbuf, int recvcount, const Datatype& rdt,
                              int src, int recvtag) const {
  const auto& s = checked(state_);
  auto recv_req = s->ps->irecv_impl(s, recvbuf, recvcount, rdt, src, recvtag);
  auto send_req = s->ps->isend_impl(s, sendbuf, sendcount, sdt, dst, sendtag,
                                    /*sync=*/false);
  s->ps->progress_until(
      [&] { return recv_req->done() && send_req->done(); });
  return recv_req->status;
}

Status Communicator::probe(int src, int tag) const {
  const auto& s = checked(state_);
  ProcState& ps = *s->ps;
  Status st;
  bool found = false;
  ps.progress_until([&] {
    std::lock_guard lock(ps.mu);
    const fabric::Packet* pkt = s->unexpected.peek_match(src, tag);
    if (pkt == nullptr) {
      return false;
    }
    st.source = pkt->match.src;
    st.tag = pkt->match.tag;
    st.count_bytes = pkt->kind == fabric::PacketKind::rndv_rts ||
                             pkt->kind == fabric::PacketKind::rndv_rts_ext
                         ? pkt->advertised_size
                         : pkt->payload.size();
    found = true;
    return true;
  });
  (void)found;
  return st;
}

bool Communicator::iprobe(int src, int tag, Status* status) const {
  const auto& s = checked(state_);
  ProcState& ps = *s->ps;
  ps.progress_pass(/*block=*/false);
  std::lock_guard lock(ps.mu);
  const fabric::Packet* pkt = s->unexpected.peek_match(src, tag);
  if (pkt == nullptr) {
    return false;
  }
  if (status != nullptr) {
    status->source = pkt->match.src;
    status->tag = pkt->match.tag;
    status->count_bytes = pkt->kind == fabric::PacketKind::rndv_rts ||
                                  pkt->kind == fabric::PacketKind::rndv_rts_ext
                              ? pkt->advertised_size
                              : pkt->payload.size();
  }
  return true;
}

// ---------------------------------------------------------------------------
// Derived constructors
// ---------------------------------------------------------------------------

Communicator Communicator::dup() const {
  const auto& s = checked(state_);
  ProcState& ps = *s->ps;

  std::uint32_t seq;
  {
    std::lock_guard lock(ps.mu);
    seq = s->coll_seq++;
  }

  std::shared_ptr<CommState> child;
  if (!s->uses_excid && ps.method == CidMethod::consensus) {
    // Original Open MPI algorithm: agree on a common free array index by
    // repeated allreduce rounds over the parent (paper §III-B2).
    const std::uint16_t cid =
        detail::consensus_cid(ps, s, all_ranks(s->size()),
                              detail::internal_tag(seq, 0));
    child = ps.register_comm(s->grp, ExCidSpace::builtin(0),
                             /*uses_excid=*/false, cid, /*already_claimed=*/true);
  } else {
    // exCID generator path (§III-B3).
    std::optional<ExCidSpace> derived;
    {
      std::lock_guard lock(ps.mu);
      if (ps.excid_derive) {
        derived = s->excid_space.derive();
      }
    }
    if (derived) {
      // Local derivation; one verification allreduce keeps the operation
      // collective and confirms every member derived the same exCID.
      const auto lo = static_cast<std::int64_t>(derived->id().lo);
      auto agreed = detail::subset_allreduce_max2(
          ps, s, all_ranks(s->size()), {lo, -lo}, detail::internal_tag(seq, 0));
      if (agreed[0] != -agreed[1] || agreed[0] != lo) {
        s->errh.raise(ErrClass::intern, "exCID derivation divergence");
      }
      child = ps.register_comm(s->grp, *derived, /*uses_excid=*/true,
                               std::nullopt);
    } else {
      // Subfield space exhausted (or derivation disabled, as in the
      // prototype's measured Fig. 4 path): acquire a fresh PGCID.
      auto pgcid = ps.pmix().acquire_pgcid(
          s->grp.members(),
          "dup:" + s->excid_space.id().str() + ":" + std::to_string(seq));
      if (!pgcid.ok()) {
        s->errh.raise(ErrClass::other, "PGCID acquisition failed in dup");
      }
      {
        std::lock_guard lock(ps.mu);
        ++ps.pgcids;
      }
      child = ps.register_comm(s->grp, ExCidSpace::fresh(pgcid.value()),
                               /*uses_excid=*/true, std::nullopt);
    }
  }
  child->errh = s->errh;
  child->comm_name = s->comm_name + "(dup)";
  s->attrs.copy_to(child->attrs);
  return Communicator{std::move(child)};
}

Communicator Communicator::split(int color, int key) const {
  const auto& s = checked(state_);
  ProcState& ps = *s->ps;
  const int n = s->size();

  // Exchange (color, key) triples.
  std::vector<std::int64_t> mine{color, key, s->myrank};
  std::vector<std::int64_t> all(static_cast<std::size_t>(3 * n));
  allgather(mine.data(), 3, Datatype::int64(), all.data(), 3,
            Datatype::int64());

  // My subgroup, ordered by (key, parent rank).
  struct Entry {
    std::int64_t key;
    std::int64_t rank;
  };
  std::vector<Entry> members;
  for (int i = 0; i < n; ++i) {
    if (all[static_cast<std::size_t>(3 * i)] == color && color >= 0) {
      members.push_back({all[static_cast<std::size_t>(3 * i + 1)],
                         all[static_cast<std::size_t>(3 * i + 2)]});
    }
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.rank < b.rank;
  });

  std::uint32_t seq;
  {
    std::lock_guard lock(ps.mu);
    seq = s->coll_seq++;
  }

  if (!s->uses_excid && ps.method == CidMethod::consensus) {
    // Everyone (including color<0 processes) joins the consensus over the
    // parent so a single common index is agreed; undefined-color processes
    // release their claim immediately.
    const std::uint16_t cid =
        detail::consensus_cid(ps, s, all_ranks(n), detail::internal_tag(seq, 1));
    if (color < 0) {
      std::lock_guard lock(ps.mu);
      ps.cid_alloc.release(cid);
      return Communicator{};
    }
    std::vector<base::Rank> globals;
    globals.reserve(members.size());
    for (const Entry& e : members) {
      globals.push_back(s->global_of(static_cast<int>(e.rank)));
    }
    auto child = ps.register_comm(Group::of(std::move(globals)),
                                  ExCidSpace::builtin(0), /*uses_excid=*/false,
                                  cid, /*already_claimed=*/true);
    child->errh = s->errh;
    child->comm_name = s->comm_name + "(split:" + std::to_string(color) + ")";
    return Communicator{std::move(child)};
  }

  if (color < 0) {
    return Communicator{};
  }
  std::vector<base::Rank> globals;
  globals.reserve(members.size());
  for (const Entry& e : members) {
    globals.push_back(s->global_of(static_cast<int>(e.rank)));
  }
  Group subgroup = Group::of(globals);
  auto pgcid = ps.pmix().acquire_pgcid(
      subgroup.members(),
      "split:" + std::to_string(color) + ":" + std::to_string(seq));
  if (!pgcid.ok()) {
    s->errh.raise(ErrClass::other, "PGCID acquisition failed in split");
  }
  {
    std::lock_guard lock(ps.mu);
    ++ps.pgcids;
  }
  auto child = ps.register_comm(subgroup, ExCidSpace::fresh(pgcid.value()),
                                /*uses_excid=*/true, std::nullopt);
  child->errh = s->errh;
  child->comm_name = s->comm_name + "(split:" + std::to_string(color) + ")";
  return Communicator{std::move(child)};
}

Communicator Communicator::create_group(const Group& subgroup, int tag) const {
  const auto& s = checked(state_);
  ProcState& ps = *s->ps;
  if (!subgroup.contains(ps.proc.rank())) {
    s->errh.raise(ErrClass::group, "caller not in subgroup");
  }
  // Paper §III-B3: when not all processes participate, a new PGCID is
  // acquired (the consensus fallback would need the full parent).
  auto pgcid = ps.pmix().acquire_pgcid(subgroup.members(),
                                       "ccg:" + std::to_string(tag));
  if (!pgcid.ok()) {
    s->errh.raise(ErrClass::other, "PGCID acquisition failed in create_group");
  }
  {
    std::lock_guard lock(ps.mu);
    ++ps.pgcids;
  }
  auto child = ps.register_comm(subgroup, ExCidSpace::fresh(pgcid.value()),
                                /*uses_excid=*/true, std::nullopt);
  child->errh = s->errh;
  child->comm_name = s->comm_name + "(create_group)";
  return Communicator{std::move(child)};
}

void Communicator::free() {
  if (!state_) {
    throw Error(ErrClass::comm, "free of null communicator");
  }
  state_->ps->unregister_comm(*state_);
  state_.reset();
}

}  // namespace sessmpi
