#include "sessmpi/excid.hpp"

#include <iomanip>
#include <sstream>

namespace sessmpi {

std::string ExCid::str() const {
  std::ostringstream oss;
  oss << std::hex << std::setfill('0') << std::setw(16) << hi << ":"
      << std::setw(16) << lo;
  return oss.str();
}

std::optional<ExCidSpace> ExCidSpace::derive() noexcept {
  // Paper §III-B3: "If the active subfield of the parent communicator is 0,
  // or the active subfield value is 255, ... a new PGCID is acquired".
  if (active_ <= 0 || counter_ == 255) {
    return std::nullopt;
  }
  ++counter_;
  ExCidSpace child{id_.with_subfield(active_, counter_), active_ - 1};
  return child;
}

}  // namespace sessmpi
