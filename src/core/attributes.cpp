#include "sessmpi/attributes.hpp"

#include <atomic>
#include <vector>

namespace sessmpi {

namespace {

/// Process-global keyval registry: callbacks looked up by keyval id.
struct KeyvalEntry {
  Keyval::CopyFn copy;
  Keyval::DeleteFn del;
};

std::mutex g_keyvals_mu;
std::map<int, KeyvalEntry>& keyvals() {
  static std::map<int, KeyvalEntry> m;
  return m;
}
std::atomic<int> g_next_keyval{1};

KeyvalEntry lookup_entry(int id) {
  std::lock_guard lock(g_keyvals_mu);
  auto it = keyvals().find(id);
  return it == keyvals().end() ? KeyvalEntry{} : it->second;
}

}  // namespace

Keyval Keyval::create(CopyFn copy, DeleteFn del) {
  const int id = g_next_keyval.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(g_keyvals_mu);
  keyvals()[id] = {std::move(copy), std::move(del)};
  return Keyval{id};
}

AttributeStore::~AttributeStore() { clear(); }

void AttributeStore::set(const Keyval& kv, AttrValue value) {
  std::lock_guard lock(mu_);
  attrs_[kv.id()] = value;
}

std::optional<AttrValue> AttributeStore::get(const Keyval& kv) const {
  std::lock_guard lock(mu_);
  auto it = attrs_.find(kv.id());
  if (it == attrs_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool AttributeStore::erase(const Keyval& kv) {
  AttrValue value{};
  {
    std::lock_guard lock(mu_);
    auto it = attrs_.find(kv.id());
    if (it == attrs_.end()) {
      return false;
    }
    value = it->second;
    attrs_.erase(it);
  }
  if (auto entry = lookup_entry(kv.id()); entry.del) {
    entry.del(value);
  }
  return true;
}

std::size_t AttributeStore::size() const {
  std::lock_guard lock(mu_);
  return attrs_.size();
}

void AttributeStore::copy_to(AttributeStore& dst) const {
  std::vector<std::pair<int, AttrValue>> snapshot;
  {
    std::lock_guard lock(mu_);
    snapshot.assign(attrs_.begin(), attrs_.end());
  }
  for (const auto& [id, value] : snapshot) {
    const KeyvalEntry entry = lookup_entry(id);
    if (entry.copy) {
      if (auto copied = entry.copy(value)) {
        std::lock_guard lock(dst.mu_);
        dst.attrs_[id] = *copied;
      }
    } else {
      // Default: copy verbatim (MPI_COMM_DUP_FN behaviour).
      std::lock_guard lock(dst.mu_);
      dst.attrs_[id] = value;
    }
  }
}

void AttributeStore::clear() {
  std::map<int, AttrValue> snapshot;
  {
    std::lock_guard lock(mu_);
    snapshot.swap(attrs_);
  }
  for (const auto& [id, value] : snapshot) {
    if (auto entry = lookup_entry(id); entry.del) {
      entry.del(value);
    }
  }
}

}  // namespace sessmpi
