#include "sessmpi/op.hpp"

#include <algorithm>
#include <cstdint>

namespace sessmpi {

struct Op::Impl {
  std::string name;
  bool commutative = true;
  UserFn fn;         // set for user ops
  int builtin = -1;  // index into the builtin dispatch below
};

namespace {

enum BuiltinIx { kSum, kProd, kMax, kMin, kLand, kLor, kBand, kBor };

template <typename T>
void apply_builtin_typed(int which, const T* in, T* inout, int count) {
  switch (which) {
    case kSum:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(inout[i] + in[i]);
      return;
    case kProd:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(inout[i] * in[i]);
      return;
    case kMax:
      for (int i = 0; i < count; ++i) inout[i] = std::max(inout[i], in[i]);
      return;
    case kMin:
      for (int i = 0; i < count; ++i) inout[i] = std::min(inout[i], in[i]);
      return;
    default:
      break;
  }
  if constexpr (std::is_integral_v<T>) {
    switch (which) {
      case kLand:
        for (int i = 0; i < count; ++i)
          inout[i] = static_cast<T>((inout[i] != 0) && (in[i] != 0));
        return;
      case kLor:
        for (int i = 0; i < count; ++i)
          inout[i] = static_cast<T>((inout[i] != 0) || (in[i] != 0));
        return;
      case kBand:
        for (int i = 0; i < count; ++i)
          inout[i] = static_cast<T>(inout[i] & in[i]);
        return;
      case kBor:
        for (int i = 0; i < count; ++i)
          inout[i] = static_cast<T>(inout[i] | in[i]);
        return;
      default:
        break;
    }
  }
  throw Error(ErrClass::op, "operation not defined for this datatype");
}

void apply_builtin(int which, const void* in, void* inout, int count,
                   const Datatype& dt) {
  switch (dt.kind()) {
    case Datatype::Kind::byte_k:
    case Datatype::Kind::char_k:
      apply_builtin_typed(which, static_cast<const std::uint8_t*>(in),
                          static_cast<std::uint8_t*>(inout), count);
      return;
    case Datatype::Kind::int32_k:
      apply_builtin_typed(which, static_cast<const std::int32_t*>(in),
                          static_cast<std::int32_t*>(inout), count);
      return;
    case Datatype::Kind::int64_k:
      apply_builtin_typed(which, static_cast<const std::int64_t*>(in),
                          static_cast<std::int64_t*>(inout), count);
      return;
    case Datatype::Kind::uint64_k:
      apply_builtin_typed(which, static_cast<const std::uint64_t*>(in),
                          static_cast<std::uint64_t*>(inout), count);
      return;
    case Datatype::Kind::float32_k:
      apply_builtin_typed(which, static_cast<const float*>(in),
                          static_cast<float*>(inout), count);
      return;
    case Datatype::Kind::float64_k:
      apply_builtin_typed(which, static_cast<const double*>(in),
                          static_cast<double*>(inout), count);
      return;
    case Datatype::Kind::derived_k:
      throw Error(ErrClass::op, "builtin op on derived datatype");
  }
  throw Error(ErrClass::op, "unknown datatype kind");
}

}  // namespace

Op Op::builtin(int which, const char* name) {
  auto impl = std::make_shared<Impl>();
  impl->name = name;
  impl->builtin = which;
  return Op{impl};
}

#define SESSMPI_BUILTIN_OP(fn, which)              \
  const Op& Op::fn() {                             \
    static const Op op = Op::builtin(which, #fn);  \
    return op;                                     \
  }
SESSMPI_BUILTIN_OP(sum, kSum)
SESSMPI_BUILTIN_OP(prod, kProd)
SESSMPI_BUILTIN_OP(max, kMax)
SESSMPI_BUILTIN_OP(min, kMin)
SESSMPI_BUILTIN_OP(land, kLand)
SESSMPI_BUILTIN_OP(lor, kLor)
SESSMPI_BUILTIN_OP(band, kBand)
SESSMPI_BUILTIN_OP(bor, kBor)
#undef SESSMPI_BUILTIN_OP

Op Op::create(UserFn fn, bool commute, std::string name) {
  auto impl = std::make_shared<Impl>();
  impl->name = std::move(name);
  impl->commutative = commute;
  impl->fn = std::move(fn);
  return Op{impl};
}

void Op::apply(const void* in, void* inout, int count, const Datatype& dt) const {
  if (impl_->fn) {
    impl_->fn(in, inout, count, dt);
    return;
  }
  apply_builtin(impl_->builtin, in, inout, count, dt);
}

const std::string& Op::name() const noexcept { return impl_->name; }
bool Op::commutative() const noexcept { return impl_->commutative; }

}  // namespace sessmpi
