#include "sessmpi/file.hpp"

#include <vector>

#include "detail/state.hpp"
#include "sessmpi/base/clock.hpp"

namespace sessmpi {

struct File::State {
  Communicator comm;  ///< private dup
  std::string path;
  bool read_only = false;
  prte::SimFs* fs = nullptr;
  base::CostModel cost;
};

namespace {
File::State& checked(const std::shared_ptr<File::State>& s) {
  if (!s) {
    throw Error(ErrClass::other, "null file handle");
  }
  return *s;
}

/// Metadata RPC + data-transfer cost for `bytes` of file I/O.
void charge_io(const File::State& s, std::size_t bytes) {
  base::precise_delay(
      s.cost.srv_rpc_ns +
      static_cast<std::int64_t>(static_cast<double>(bytes) /
                                s.cost.net_bw_bytes_per_ns));
}
}  // namespace

File File::open(const Communicator& comm, const std::string& path, Mode mode) {
  auto state = std::make_shared<State>();
  state->comm = comm.dup();
  state->path = path;
  state->read_only = mode.read_only;
  detail::ProcState& ps = detail::ProcState::current();
  state->fs = &ps.proc.cluster().dvm().fs();
  state->cost = ps.cost;

  // Rank 0 performs the metadata operations; everyone synchronizes.
  if (state->comm.rank() == 0) {
    if (!state->fs->exists(path)) {
      if (!mode.create) {
        state->comm.barrier();  // release peers before raising
        throw Error(ErrClass::arg, "file does not exist: " + path);
      }
      state->fs->create(path);
    }
    if (mode.truncate) {
      if (mode.read_only) {
        throw Error(ErrClass::arg, "truncate of a read-only open");
      }
      state->fs->set_size(path, 0);
    }
  }
  state->comm.barrier();
  if (!state->fs->exists(path)) {
    throw Error(ErrClass::arg, "file does not exist: " + path);
  }
  return File{std::move(state)};
}

File File::open_from_group(const Group& group, const std::string& tag,
                           const std::string& path, Mode mode) {
  // Paper §III-B6: intermediate communicator, MPI-3 creation, free.
  Communicator intermediate =
      Communicator::create_from_group(group, "file:" + tag);
  File f = open(intermediate, path, mode);
  intermediate.free();
  return f;
}

int File::rank() const { return checked(state_).comm.rank(); }
int File::size() const { return checked(state_).comm.size(); }
const std::string& File::path() const { return checked(state_).path; }

void File::write_at(std::size_t offset, const void* buf, int count,
                    const Datatype& dt) const {
  State& s = checked(state_);
  if (s.read_only) {
    throw Error(ErrClass::arg, "write on a read-only file");
  }
  const std::size_t bytes = static_cast<std::size_t>(count) * dt.size();
  std::vector<std::byte> packed(bytes);
  if (bytes > 0) {
    dt.pack(buf, count, packed.data());
  }
  charge_io(s, bytes);
  s.fs->write(s.path, offset, packed.data(), bytes);
}

int File::read_at(std::size_t offset, void* buf, int count,
                  const Datatype& dt) const {
  State& s = checked(state_);
  const std::size_t want = static_cast<std::size_t>(count) * dt.size();
  std::vector<std::byte> packed(want);
  charge_io(s, want);
  const std::size_t got = s.fs->read(s.path, offset, packed.data(), want);
  const int elements = dt.size() == 0 ? 0 : static_cast<int>(got / dt.size());
  if (elements > 0) {
    dt.unpack(packed.data(), elements, buf);
  }
  return elements;
}

void File::write_at_all(std::size_t offset, const void* buf, int count,
                        const Datatype& dt) const {
  State& s = checked(state_);
  write_at(offset, buf, count, dt);
  s.comm.barrier();
}

int File::read_at_all(std::size_t offset, void* buf, int count,
                      const Datatype& dt) const {
  State& s = checked(state_);
  s.comm.barrier();  // all writes from the preceding epoch are visible
  return read_at(offset, buf, count, dt);
}

std::size_t File::file_size() const {
  State& s = checked(state_);
  return s.fs->size(s.path).value_or(0);
}

void File::set_size(std::size_t size) const {
  State& s = checked(state_);
  if (s.read_only) {
    throw Error(ErrClass::arg, "set_size on a read-only file");
  }
  if (s.comm.rank() == 0) {
    s.fs->set_size(s.path, size);
  }
  s.comm.barrier();
}

void File::close() {
  if (!state_) {
    throw Error(ErrClass::other, "close of null file");
  }
  state_->comm.barrier();
  state_->comm.free();
  state_.reset();
}

}  // namespace sessmpi
