#pragma once

// MPI_File over the simulated shared filesystem. Like windows, files can be
// created from a Sessions group: the prototype builds an intermediate
// communicator, calls the MPI-3 creation function, and frees the
// intermediate (paper §III-B6) — File::open_from_group follows that path.

#include <memory>
#include <string>

#include "sessmpi/comm.hpp"

namespace sessmpi {

class File {
 public:
  /// Open flags (subset of MPI_MODE_*).
  struct Mode {
    bool create = true;
    bool truncate = false;
    bool read_only = false;
  };

  File() = default;

  /// MPI_File_open (collective over `comm`).
  static File open(const Communicator& comm, const std::string& path,
                   Mode mode);
  static File open(const Communicator& comm, const std::string& path) {
    return open(comm, path, Mode{});
  }

  /// Sessions path: intermediate communicator from `group`, MPI-3 open,
  /// intermediate freed.
  static File open_from_group(const Group& group, const std::string& tag,
                              const std::string& path, Mode mode);
  static File open_from_group(const Group& group, const std::string& tag,
                              const std::string& path) {
    return open_from_group(group, tag, path, Mode{});
  }

  [[nodiscard]] bool is_null() const noexcept { return state_ == nullptr; }
  [[nodiscard]] int rank() const;
  [[nodiscard]] int size() const;
  [[nodiscard]] const std::string& path() const;

  /// MPI_File_write_at: independent write of `count` elements at a byte
  /// offset.
  void write_at(std::size_t offset, const void* buf, int count,
                const Datatype& dt) const;
  /// MPI_File_read_at: returns the number of whole elements read.
  int read_at(std::size_t offset, void* buf, int count,
              const Datatype& dt) const;

  /// MPI_File_write_at_all / read_at_all: collective variants (barrier
  /// semantics around the independent operation).
  void write_at_all(std::size_t offset, const void* buf, int count,
                    const Datatype& dt) const;
  int read_at_all(std::size_t offset, void* buf, int count,
                  const Datatype& dt) const;

  /// MPI_File_get_size / MPI_File_set_size (set is collective).
  [[nodiscard]] std::size_t file_size() const;
  void set_size(std::size_t size) const;

  /// MPI_File_close (collective).
  void close();

  /// Internal representation (public declaration for the implementation).
  struct State;

 private:
  explicit File(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

}  // namespace sessmpi
