#pragma once

// MPI_Info-like key/value object. Per the Sessions proposal (paper §III-B5),
// Info objects must be fully usable *before* any MPI initialization and from
// multiple threads, so the internal lock is always enabled; none of these
// code paths sit on the communication critical path.

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace sessmpi {

class Info {
 public:
  /// Create an empty info object (MPI_Info_create). Requires no MPI init.
  Info();

  /// Deep copy (MPI_Info_dup).
  [[nodiscard]] Info dup() const;

  void set(const std::string& key, const std::string& value);
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  /// Returns true if the key existed (MPI_Info_delete).
  bool erase(const std::string& key);

  [[nodiscard]] std::size_t nkeys() const;
  /// N-th key in sorted order (MPI_Info_get_nthkey); nullopt out of range.
  [[nodiscard]] std::optional<std::string> nthkey(std::size_t n) const;
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Null info (MPI_INFO_NULL): shares no state, always empty, set() ignored.
  static const Info& null();
  [[nodiscard]] bool is_null() const noexcept { return state_ == nullptr; }

 private:
  struct State {
    mutable std::mutex mu;
    std::map<std::string, std::string> kv;
  };
  explicit Info(std::nullptr_t) {}
  std::shared_ptr<State> state_;
};

}  // namespace sessmpi
