#pragma once

// Nonblocking-operation handle (MPI_Request). Requests are value handles
// sharing state with the progress engine; waiting drives progress on the
// calling thread, as in single-threaded MPI implementations.

#include <memory>
#include <vector>

#include "sessmpi/status.hpp"

namespace sessmpi::detail {
struct RequestImpl;
}  // namespace sessmpi::detail

namespace sessmpi {

class Request {
 public:
  /// A null (inactive) request; wait() on it returns immediately.
  Request() = default;

  /// Block until complete, driving progress; returns the Status (receives
  /// carry source/tag/count, sends a default Status).
  Status wait();

  /// Nonblocking completion check; drives one progress pass.
  bool test();

  [[nodiscard]] bool completed() const noexcept;
  [[nodiscard]] bool is_null() const noexcept { return impl_ == nullptr; }

  /// MPI_Waitall over a set of requests.
  static std::vector<Status> wait_all(std::vector<Request>& reqs);
  /// MPI_Testall: true when every request is complete.
  static bool test_all(std::vector<Request>& reqs);
  /// MPI_Waitany: block until some request completes; returns its index
  /// (and nulls it), or -1 when every request is already null.
  static int wait_any(std::vector<Request>& reqs, Status* status = nullptr);

 private:
  friend class Communicator;
  friend struct detail::RequestImpl;
  explicit Request(std::shared_ptr<detail::RequestImpl> impl)
      : impl_(std::move(impl)) {}
  std::shared_ptr<detail::RequestImpl> impl_;
};

}  // namespace sessmpi
