#pragma once

// Library-wide MPI constants and configuration knobs.

#include <cstdint>

namespace sessmpi {

/// Wildcard source for receives (MPI_ANY_SOURCE).
inline constexpr int any_source = -1;
/// Wildcard tag for receives (MPI_ANY_TAG). Wildcard tag matching applies
/// only to application messages (tag >= 0); the collective engine uses the
/// negative tag space below kInternalTagBase as private context.
inline constexpr int any_tag = -2;

/// Base of the internal (collective) tag space; all internal tags are
/// <= this value, application tags must be >= 0.
inline constexpr int kInternalTagBase = -1000;

/// Highest tag value applications may use (MPI_TAG_UB).
inline constexpr int tag_ub = (1 << 30);

/// Thread support levels (MPI_THREAD_*).
enum class ThreadLevel : int {
  single = 0,
  funneled = 1,
  serialized = 2,
  multiple = 3,
};

/// Communicator-identifier generation method (paper §III-B3): the prototype
/// can use either the original consensus algorithm (requires a parent
/// communicator) or the new exCID generator backed by PMIx PGCIDs.
enum class CidMethod {
  consensus,  ///< multi-round lowest-common-free-slot agreement
  excid,      ///< 128-bit extended CID from PGCID + derivation subfields
};

namespace detail {
/// Storage whose address is the MPI_IN_PLACE sentinel. Never dereferenced.
inline constexpr char in_place_sentinel = 0;
}  // namespace detail

/// MPI_IN_PLACE analogue: pass as the send buffer of reduce/allreduce (any
/// rank) or gather at the root, or as the receive buffer of scatter at the
/// root, to use the output buffer's contents as that rank's contribution.
inline const void* const in_place =
    static_cast<const void*>(&detail::in_place_sentinel);

/// Messages with packed size <= this are sent eagerly; larger payloads use
/// the rendezvous protocol (RTS/CTS/DATA).
inline constexpr std::size_t kEagerLimit = 4096;

/// Capacity of the per-process communicator array (16-bit CIDs, as in ob1).
inline constexpr std::uint32_t kCidSpace = 1u << 16;

}  // namespace sessmpi
