#pragma once

// MPI_Errhandler-like object. Usable before any initialization and from any
// thread (paper §III-B5). Semantics:
//  * errors_are_fatal: report and abort the program (MPI_ERRORS_ARE_FATAL);
//  * errors_return:    throw sessmpi::Error to the caller (the C++ analogue
//                      of MPI_ERRORS_RETURN);
//  * custom handlers:  invoked with (class, message); if the handler
//                      returns, the Error is then thrown.

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "sessmpi/base/error.hpp"

namespace sessmpi {

class Errhandler {
 public:
  using HandlerFn = std::function<void(ErrClass, const std::string&)>;

  /// Create a custom error handler (MPI_Session_create_errhandler et al.).
  static Errhandler create(HandlerFn fn);
  static const Errhandler& errors_are_fatal();
  static const Errhandler& errors_return();

  /// Dispatch an error through this handler. Never returns normally:
  /// either aborts (fatal) or throws Error (return/custom).
  [[noreturn]] void raise(ErrClass cls, const std::string& msg) const;

  [[nodiscard]] bool is_fatal() const noexcept { return kind_ == Kind::fatal; }

  /// Number of times this handler object was invoked (tests/diagnostics).
  [[nodiscard]] int invocations() const noexcept;

 private:
  enum class Kind { fatal, ret, custom };
  struct State {
    HandlerFn fn;
    std::shared_ptr<std::atomic_int> count = std::make_shared<std::atomic_int>(0);
  };
  Errhandler(Kind kind, HandlerFn fn);
  Kind kind_;
  std::shared_ptr<State> state_;
};

}  // namespace sessmpi
