#pragma once

// C-style binding of the MPI Sessions proposal, mirroring the function
// names and calling conventions the prototype implemented (paper §III-B6:
// "the complete set of C interfaces that are defined in the MPI Sessions
// proposal"). Handles are opaque pointers; every function returns an MPI
// error code; exceptions never cross this boundary.
//
// This is the surface a C application (like the modified OSU/HPCC
// benchmarks) would program against; the C++ classes remain the primary
// API underneath.

#include <cstddef>

namespace sessmpi::capi {

// --- handle types -----------------------------------------------------------
struct SessionHandle;
struct GroupHandle;
struct CommHandle;
struct InfoHandle;
struct ErrhandlerHandle;
struct RequestHandle;

using MPI_Session = SessionHandle*;
using MPI_Group = GroupHandle*;
using MPI_Comm = CommHandle*;
using MPI_Info = InfoHandle*;
using MPI_Errhandler = ErrhandlerHandle*;
using MPI_Request = RequestHandle*;

inline constexpr MPI_Session MPI_SESSION_NULL = nullptr;
inline constexpr MPI_Group MPI_GROUP_NULL = nullptr;
inline constexpr MPI_Comm MPI_COMM_NULL = nullptr;
inline constexpr MPI_Info MPI_INFO_NULL = nullptr;
inline constexpr MPI_Errhandler MPI_ERRHANDLER_NULL = nullptr;
inline constexpr MPI_Request MPI_REQUEST_NULL = nullptr;

/// Predefined error handlers (usable before initialization).
MPI_Errhandler mpi_errors_are_fatal();
MPI_Errhandler mpi_errors_return();

// --- error codes -------------------------------------------------------------
inline constexpr int MPI_SUCCESS = 0;
inline constexpr int MPI_ERR_ARG = 13;
inline constexpr int MPI_MAX_PSET_NAME_LEN = 256;
/// Extension codes (identity mapping of base::ErrClass, like everything
/// returned through this boundary): a ULFM-revoked communicator, and the
/// runtime's process-failure class. ckpt::Checkpointer::save surfaces
/// SESSMPI_ERR_COMM_REVOKED when a revocation invalidates an in-flight save.
inline constexpr int SESSMPI_ERR_COMM_REVOKED = 26;
inline constexpr int SESSMPI_ERR_PROC_FAILED = 42;

/// Map a sessmpi ErrClass value to the returned code (identity mapping of
/// the underlying enum; MPI_SUCCESS == ErrClass::success).
int mpi_error_class(int code, int* errclass);

// --- datatypes (subset) -----------------------------------------------------
enum MPI_Datatype : int {
  MPI_BYTE = 0,
  MPI_CHAR,
  MPI_INT32_T,
  MPI_INT64_T,
  MPI_UINT64_T,
  MPI_FLOAT,
  MPI_DOUBLE,
};

enum MPI_Op : int {
  MPI_SUM = 0,
  MPI_PROD,
  MPI_MAX,
  MPI_MIN,
  MPI_LAND,
  MPI_LOR,
  MPI_BAND,
  MPI_BOR,
};

struct MPI_Status {
  int MPI_SOURCE = -1;
  int MPI_TAG = -1;
  int MPI_ERROR = 0;
  std::size_t count_bytes = 0;
};
inline MPI_Status* const MPI_STATUS_IGNORE = nullptr;

inline constexpr int MPI_ANY_SOURCE = -1;
inline constexpr int MPI_ANY_TAG = -2;

// --- info / errhandler (usable pre-init, §III-B5) ---------------------------
int MPI_Info_create(MPI_Info* info);
int MPI_Info_set(MPI_Info info, const char* key, const char* value);
int MPI_Info_get(MPI_Info info, const char* key, int valuelen, char* value,
                 int* flag);
int MPI_Info_get_nkeys(MPI_Info info, int* nkeys);
int MPI_Info_free(MPI_Info* info);

// --- sessions ----------------------------------------------------------------
int MPI_Session_init(MPI_Info info, MPI_Errhandler errhandler,
                     MPI_Session* session);
int MPI_Session_finalize(MPI_Session* session);
int MPI_Session_get_num_psets(MPI_Session session, MPI_Info info,
                              int* npset_names);
int MPI_Session_get_nth_pset(MPI_Session session, MPI_Info info, int n,
                             int* pset_len, char* pset_name);
int MPI_Session_get_pset_info(MPI_Session session, const char* pset_name,
                              MPI_Info* info);

// --- groups -------------------------------------------------------------------
int MPI_Group_from_session_pset(MPI_Session session, const char* pset_name,
                                MPI_Group* newgroup);
int MPI_Group_size(MPI_Group group, int* size);
int MPI_Group_rank(MPI_Group group, int* rank);
int MPI_Group_free(MPI_Group* group);

// --- communicators -------------------------------------------------------------
int MPI_Comm_create_from_group(MPI_Group group, const char* stringtag,
                               MPI_Info info, MPI_Errhandler errhandler,
                               MPI_Comm* newcomm);
int MPI_Comm_rank(MPI_Comm comm, int* rank);
int MPI_Comm_size(MPI_Comm comm, int* size);
int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm);
int MPI_Comm_free(MPI_Comm* comm);

// --- point-to-point / collectives (subset used by the benchmarks) ------------
int MPI_Send(const void* buf, int count, MPI_Datatype dt, int dest, int tag,
             MPI_Comm comm);
int MPI_Recv(void* buf, int count, MPI_Datatype dt, int source, int tag,
             MPI_Comm comm, MPI_Status* status);
int MPI_Isend(const void* buf, int count, MPI_Datatype dt, int dest, int tag,
              MPI_Comm comm, MPI_Request* request);
int MPI_Irecv(void* buf, int count, MPI_Datatype dt, int source, int tag,
              MPI_Comm comm, MPI_Request* request);
int MPI_Wait(MPI_Request* request, MPI_Status* status);
int MPI_Barrier(MPI_Comm comm);
int MPI_Ibarrier(MPI_Comm comm, MPI_Request* request);
int MPI_Test(MPI_Request* request, int* flag, MPI_Status* status);
int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count,
                  MPI_Datatype dt, MPI_Op op, MPI_Comm comm);
int MPI_Bcast(void* buf, int count, MPI_Datatype dt, int root, MPI_Comm comm);

// --- MPI_T-style introspection (obs pvars/cvars) ------------------------------
// Performance variables: every base::Counters counter plus every obs
// histogram and registered gauge, enumerated by index (sorted by name;
// indices are stable only until a new variable is created). Reading a
// histogram pvar by value yields its sample count; percentiles go through
// _read_percentile. Gauges are computed on read; resetting one is a no-op.
inline constexpr int SESSMPI_T_PVAR_CLASS_COUNTER = 0;
inline constexpr int SESSMPI_T_PVAR_CLASS_HISTOGRAM = 1;
inline constexpr int SESSMPI_T_PVAR_CLASS_GAUGE = 2;

int SESSMPI_T_pvar_get_num(int* num);
int SESSMPI_T_pvar_get_info(int index, char* name, int name_len,
                            int* var_class);
int SESSMPI_T_pvar_read(const char* name, unsigned long long* value);
int SESSMPI_T_pvar_read_percentile(const char* name, double q, double* value);
int SESSMPI_T_pvar_reset(const char* name);
int SESSMPI_T_pvar_reset_all(void);

// Control variables: string-typed knobs (obs.trace.enabled,
// obs.trace.ring_events, ...). Values round-trip as strings.
int SESSMPI_T_cvar_get_num(int* num);
int SESSMPI_T_cvar_get_info(int index, char* name, int name_len);
int SESSMPI_T_cvar_read(const char* name, char* value, int value_len);
int SESSMPI_T_cvar_write(const char* name, const char* value);

}  // namespace sessmpi::capi
