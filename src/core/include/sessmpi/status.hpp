#pragma once

// MPI_Status analogue: source/tag/error of a completed receive plus the
// received byte count.

#include <cstddef>

#include "sessmpi/base/error.hpp"
#include "sessmpi/datatype.hpp"

namespace sessmpi {

struct Status {
  int source = -1;  ///< comm rank of the sender
  int tag = -1;
  ErrClass error = ErrClass::success;
  std::size_t count_bytes = 0;  ///< received payload bytes

  /// MPI_Get_count: number of `dt` elements received. Throws
  /// Error(truncate) when the byte count is not a whole element multiple.
  [[nodiscard]] int count(const Datatype& dt) const {
    if (dt.size() == 0) {
      return 0;
    }
    if (count_bytes % dt.size() != 0) {
      throw Error(ErrClass::truncate, "partial element in Get_count");
    }
    return static_cast<int>(count_bytes / dt.size());
  }
};

}  // namespace sessmpi
