#pragma once

// MPI attribute caching (keyvals + per-object attribute stores). The
// Sessions proposal requires session-attribute functions to work before
// initialization and to be thread-safe (paper §III-B5), so the keyval
// registry is a process-global, always-locked structure with no dependency
// on MPI init state.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>

namespace sessmpi {

/// Attribute values are 64-bit integers (the address-sized value MPI caches).
using AttrValue = std::int64_t;

class Keyval {
 public:
  using CopyFn = std::function<std::optional<AttrValue>(AttrValue)>;
  using DeleteFn = std::function<void(AttrValue)>;

  /// Create a keyval (MPI_*_create_keyval). `copy` decides what a duplicated
  /// object inherits (nullopt = do not copy; default copies verbatim);
  /// `del` runs when an attribute is deleted or its object is freed.
  static Keyval create(CopyFn copy = nullptr, DeleteFn del = nullptr);

  [[nodiscard]] int id() const noexcept { return id_; }
  friend bool operator==(const Keyval&, const Keyval&) = default;

 private:
  friend class AttributeStore;
  explicit Keyval(int id) : id_(id) {}
  int id_;
};

/// Per-object attribute cache (sessions and communicators each own one).
class AttributeStore {
 public:
  AttributeStore() = default;
  ~AttributeStore();

  AttributeStore(const AttributeStore&) = delete;
  AttributeStore& operator=(const AttributeStore&) = delete;

  void set(const Keyval& kv, AttrValue value);
  [[nodiscard]] std::optional<AttrValue> get(const Keyval& kv) const;
  /// Returns true if the attribute existed; runs its delete callback.
  bool erase(const Keyval& kv);
  [[nodiscard]] std::size_t size() const;

  /// Copy attributes into `dst` honoring each keyval's copy callback
  /// (object duplication).
  void copy_to(AttributeStore& dst) const;

  /// Delete everything, running delete callbacks (object free).
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<int, AttrValue> attrs_;
};

}  // namespace sessmpi
