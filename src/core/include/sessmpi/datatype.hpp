#pragma once

// MPI datatypes, reduced to what the paper's workloads exercise: the common
// primitives plus contiguous and (strided) vector derived types. A datatype
// knows how to pack host memory into a contiguous wire buffer and unpack it
// back — the simulator always ships contiguous payloads.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sessmpi/base/error.hpp"

namespace sessmpi {

class Datatype {
 public:
  // --- predefined primitives ------------------------------------------------
  static const Datatype& byte();
  static const Datatype& int32();
  static const Datatype& int64();
  static const Datatype& uint64();
  static const Datatype& float32();
  static const Datatype& float64();
  static const Datatype& char8();

  /// `count` consecutive elements of `base` (MPI_Type_contiguous).
  static Datatype contiguous(int count, const Datatype& base);

  /// `count` blocks of `blocklength` elements spaced `stride` elements apart
  /// (MPI_Type_vector). Extent spans the full stride pattern.
  static Datatype vector(int count, int blocklength, int stride,
                         const Datatype& base);

  /// Packed (wire) size of one element of this type, in bytes.
  [[nodiscard]] std::size_t size() const noexcept;
  /// Memory span of one element, in bytes (>= size for strided types).
  [[nodiscard]] std::size_t extent() const noexcept;
  [[nodiscard]] const std::string& name() const noexcept;
  [[nodiscard]] bool is_primitive() const noexcept;

  /// Pack `count` elements starting at `src` into `dst` (contiguous wire
  /// format). `dst` must hold count*size() bytes.
  void pack(const void* src, int count, std::byte* dst) const;
  /// Inverse of pack.
  void unpack(const std::byte* src, int count, void* dst) const;

  /// Identity (handle) comparison: same underlying type object.
  [[nodiscard]] bool same_as(const Datatype& other) const noexcept {
    return impl_ == other.impl_;
  }

  /// For reductions: primitive kind tag.
  enum class Kind : std::uint8_t {
    byte_k,
    int32_k,
    int64_k,
    uint64_k,
    float32_k,
    float64_k,
    char_k,
    derived_k,
  };
  [[nodiscard]] Kind kind() const noexcept;

  /// Internal representation (public declaration so the implementation can
  /// define it at namespace scope; not part of the stable API).
  struct Impl;

 private:
  explicit Datatype(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<const Impl> impl_;
};

/// Map a C++ arithmetic type to its predefined Datatype.
template <typename T>
const Datatype& datatype_of() = delete;
template <> const Datatype& datatype_of<std::byte>();
template <> const Datatype& datatype_of<char>();
template <> const Datatype& datatype_of<std::int32_t>();
template <> const Datatype& datatype_of<std::int64_t>();
template <> const Datatype& datatype_of<std::uint64_t>();
template <> const Datatype& datatype_of<float>();
template <> const Datatype& datatype_of<double>();

}  // namespace sessmpi
