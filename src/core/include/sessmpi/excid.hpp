#pragma once

// The 128-bit extended communicator identifier (exCID) and its derivation
// scheme, exactly as the paper specifies (§III-B3):
//
//  * the high 64 bits hold the PGCID obtained from PMIx (non-zero; 0 is
//    reserved for World-model built-in communicators);
//  * the low 64 bits are eight 8-bit subfields used to derive children
//    without a runtime round-trip;
//  * each communicator tracks its *active subfield*, initialized to 7 for a
//    fresh PGCID. Deriving a child increments the parent's value in the
//    active subfield (up to 2^8 times) and assigns the child the next lower
//    active subfield. When the parent's active subfield is 0, or the value
//    would exceed 255, a fresh PGCID must be acquired instead.
//
// All members of a communicator derive in lockstep (constructors are
// collective), so the values agree without communication.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace sessmpi {

struct ExCid {
  std::uint64_t hi = 0;  ///< PGCID; 0 for World-model built-ins
  std::uint64_t lo = 0;  ///< eight 8-bit derivation subfields

  friend bool operator==(const ExCid&, const ExCid&) = default;

  [[nodiscard]] std::uint8_t subfield(int i) const noexcept {
    return static_cast<std::uint8_t>(lo >> (8 * i));
  }
  [[nodiscard]] ExCid with_subfield(int i, std::uint8_t v) const noexcept {
    ExCid out = *this;
    out.lo &= ~(std::uint64_t{0xff} << (8 * i));
    out.lo |= std::uint64_t{v} << (8 * i);
    return out;
  }
  [[nodiscard]] std::string str() const;
};

struct ExCidHash {
  std::size_t operator()(const ExCid& c) const noexcept {
    return std::hash<std::uint64_t>{}(c.hi) ^
           (std::hash<std::uint64_t>{}(c.lo) * 1099511628211ull);
  }
};

/// Per-communicator exCID derivation state.
class ExCidSpace {
 public:
  /// Fresh space from a newly acquired PGCID: active subfield 7, counter 0.
  static ExCidSpace fresh(std::uint64_t pgcid) noexcept {
    return ExCidSpace{ExCid{pgcid, 0}, 7};
  }
  /// Space of a World-model built-in (no derivation possible without PMIx,
  /// but the id itself is representable: hi == 0).
  static ExCidSpace builtin(std::uint8_t which) noexcept {
    return ExCidSpace{ExCid{0, which}, -1};
  }

  [[nodiscard]] const ExCid& id() const noexcept { return id_; }
  [[nodiscard]] int active_subfield() const noexcept { return active_; }
  [[nodiscard]] std::uint8_t derivations() const noexcept { return counter_; }

  /// How many more children can be derived before a fresh PGCID is needed.
  [[nodiscard]] int remaining() const noexcept {
    return active_ <= 0 ? 0 : 255 - counter_;
  }

  /// Derive a child space, or nullopt when a fresh PGCID is required (the
  /// conditions the paper lists: active subfield exhausted or value 255).
  std::optional<ExCidSpace> derive() noexcept;

 private:
  ExCidSpace(ExCid id, int active) noexcept : id_(id), active_(active) {}
  ExCid id_;
  int active_;                 ///< -1 when derivation is impossible
  std::uint8_t counter_ = 0;   ///< last value written into the active subfield
};

}  // namespace sessmpi
