#pragma once

// MPI RMA window (active-target, fence-synchronized).
//
// The Sessions proposal creates windows (and files) from groups; the paper's
// prototype implements MPI_Win_*_from_group by first building an
// *intermediate communicator* from the group, calling the MPI-3 creation
// function on it, and freeing the intermediate (§III-B6) — exactly what
// Win::create_from_group does here. The window keeps a private dup of the
// communicator, as MPI-3 implementations do.
//
// Communication is emulated over the PML (as Open MPI's pt2pt OSC
// component does): puts/accumulates ship as messages applied during the
// target's fence; gets are request/reply pairs completing at the origin's
// fence. Visibility follows active-target semantics: remote stores become
// visible only after the closing fence.

#include <cstddef>
#include <memory>
#include <string>

#include "sessmpi/comm.hpp"

namespace sessmpi {

class Win {
 public:
  Win() = default;

  /// MPI_Win_create: expose `size` bytes at `base` across `comm`.
  /// Collective; sizes may differ per process.
  static Win create(void* base, std::size_t size, const Communicator& comm);

  /// MPI_Win_create_from_group (Sessions path): intermediate communicator
  /// from `group` (tagged), MPI-3 creation, intermediate freed.
  static Win create_from_group(const Group& group, const std::string& tag,
                               void* base, std::size_t size);

  [[nodiscard]] int rank() const;
  [[nodiscard]] int size() const;
  [[nodiscard]] bool is_null() const noexcept { return state_ == nullptr; }
  /// Exposed byte size of `target_rank`'s window.
  [[nodiscard]] std::size_t size_of(int target_rank) const;

  /// MPI_Put: visible at the target after the next fence.
  void put(const void* origin, int count, const Datatype& dt, int target_rank,
           std::size_t target_disp) const;
  /// MPI_Get: `origin` is filled by the closing fence.
  void get(void* origin, int count, const Datatype& dt, int target_rank,
           std::size_t target_disp) const;
  /// MPI_Accumulate with a predefined op (element-wise at the target).
  void accumulate(const void* origin, int count, const Datatype& dt,
                  const Op& op, int target_rank,
                  std::size_t target_disp) const;

  /// MPI_Win_fence: closes the current access/exposure epoch (collective).
  /// All puts/accumulates issued by anyone are applied, all gets complete.
  void fence() const;

  /// MPI_Win_free (collective: fences, then releases).
  void free();

  /// Internal representation (public declaration for the implementation).
  struct State;

 private:
  explicit Win(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

}  // namespace sessmpi
