#pragma once

// Umbrella header plus the World Process Model API (MPI_Init-style).
//
// The legacy initialization path is implemented exactly as the prototype
// restructured it (paper §III-B5): init() creates an *internal* session and
// additionally builds the World-model objects (COMM_WORLD / COMM_SELF);
// finalize() releases them; the process-wide teardown runs when no session
// reference remains, allowing init() -> finalize() -> init() cycles.

#include "sessmpi/attributes.hpp"
#include "sessmpi/comm.hpp"
#include "sessmpi/constants.hpp"
#include "sessmpi/datatype.hpp"
#include "sessmpi/errhandler.hpp"
#include "sessmpi/excid.hpp"
#include "sessmpi/file.hpp"
#include "sessmpi/group.hpp"
#include "sessmpi/info.hpp"
#include "sessmpi/op.hpp"
#include "sessmpi/request.hpp"
#include "sessmpi/session.hpp"
#include "sessmpi/status.hpp"
#include "sessmpi/win.hpp"

namespace sessmpi {

/// MPI_Init / MPI_Init_thread for the calling simulated process. Unlike
/// classic MPI — and matching the restructured prototype — repeated
/// init/finalize cycles are supported.
void init(ThreadLevel level = ThreadLevel::single);

/// MPI_Finalize.
void finalize();

/// MPI_Initialized (for the calling process).
[[nodiscard]] bool initialized();

/// COMM_WORLD / COMM_SELF handles; throw Error(session) before init().
[[nodiscard]] Communicator comm_world();
[[nodiscard]] Communicator comm_self();

/// Select the CID generation method for communicators subsequently created
/// by the calling process (paper: the prototype supports both). Default:
/// CidMethod::excid when available, as in the prototype.
void set_cid_method(CidMethod method);
[[nodiscard]] CidMethod cid_method();

/// Enable/disable exCID subfield derivation for derived communicators
/// (MPI_Comm_dup). Disabled reproduces the measured prototype behaviour of
/// Fig. 4 (a PGCID acquisition per dup); enabled shows the design's
/// amortized path (§III-B3 / §IV-C2 discussion). Default: enabled.
void set_excid_derivation(bool enabled);
[[nodiscard]] bool excid_derivation();

/// Number of PGCIDs this process acquired from PMIx so far (diagnostics).
[[nodiscard]] std::uint64_t pgcids_acquired();

}  // namespace sessmpi
