#pragma once

// Communicator: the central MPI communication object. Obtainable through the
// World Process Model (comm_world()/comm_self() after init()) or the
// Sessions Process Model (Communicator::create_from_group on a Group taken
// from a session pset) — Figure 1 of the paper.
//
// Point-to-point messaging follows the ob1 design: a 14-byte match header on
// the fast path; sessions-derived communicators prepend the exCID extended
// header until the per-peer CID handshake completes (§III-B4).

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sessmpi/constants.hpp"
#include "sessmpi/datatype.hpp"
#include "sessmpi/errhandler.hpp"
#include "sessmpi/excid.hpp"
#include "sessmpi/group.hpp"
#include "sessmpi/info.hpp"
#include "sessmpi/op.hpp"
#include "sessmpi/request.hpp"
#include "sessmpi/status.hpp"

namespace sessmpi::detail {
struct CommState;
}  // namespace sessmpi::detail

namespace sessmpi {

class AttributeStore;
class Keyval;

class Communicator {
 public:
  /// Null handle; all operations throw Error(comm).
  Communicator() = default;

  /// MPI_Comm_create_from_group (collective over the group's processes):
  /// builds a communicator with no parent, deriving its exCID from a fresh
  /// PMIx PGCID. `tag` disambiguates concurrent creations from overlapping
  /// groups, as in the proposal.
  static Communicator create_from_group(
      const Group& group, const std::string& tag = "",
      const Info& info = Info::null(),
      const Errhandler& errh = Errhandler::errors_are_fatal());

  // --- inquiry ---------------------------------------------------------------
  [[nodiscard]] int rank() const;
  [[nodiscard]] int size() const;
  [[nodiscard]] Group group() const;
  [[nodiscard]] std::string name() const;
  void set_name(const std::string& name);
  [[nodiscard]] bool is_null() const noexcept { return state_ == nullptr; }

  /// Local 16-bit CID (array index) — may differ between processes on
  /// sessions-derived communicators (paper §III-B3).
  [[nodiscard]] std::uint16_t cid() const;
  /// 128-bit extended CID; hi == 0 for World-model built-ins.
  [[nodiscard]] ExCid excid() const;
  /// True when this communicator uses the exCID handshake wire protocol.
  [[nodiscard]] bool uses_excid() const;
  /// Peers (comm ranks) whose local CID we already learned via ACK.
  [[nodiscard]] int handshaked_peers() const;

  // --- error handling / attributes -------------------------------------------
  [[nodiscard]] const Errhandler& errhandler() const;
  void set_errhandler(const Errhandler& eh);
  [[nodiscard]] AttributeStore& attributes() const;

  // --- point-to-point -------------------------------------------------------
  void send(const void* buf, int count, const Datatype& dt, int dst, int tag) const;
  /// Synchronous send: completes only after the receiver matched (MPI_Ssend).
  void ssend(const void* buf, int count, const Datatype& dt, int dst, int tag) const;
  Status recv(void* buf, int count, const Datatype& dt, int src, int tag) const;
  Request isend(const void* buf, int count, const Datatype& dt, int dst,
                int tag) const;
  Request irecv(void* buf, int count, const Datatype& dt, int src, int tag) const;
  Status sendrecv(const void* sendbuf, int sendcount, const Datatype& sdt,
                  int dst, int sendtag, void* recvbuf, int recvcount,
                  const Datatype& rdt, int src, int recvtag) const;
  /// MPI_Probe: block until a matching message is available; do not receive.
  Status probe(int src, int tag) const;
  /// MPI_Iprobe.
  [[nodiscard]] bool iprobe(int src, int tag, Status* status = nullptr) const;

  // Typed conveniences.
  template <typename T>
  void send(std::span<const T> data, int dst, int tag) const {
    send(data.data(), static_cast<int>(data.size()), datatype_of<T>(), dst, tag);
  }
  template <typename T>
  Status recv(std::span<T> data, int src, int tag) const {
    return recv(data.data(), static_cast<int>(data.size()), datatype_of<T>(),
                src, tag);
  }

  // --- collectives ------------------------------------------------------------
  void barrier() const;
  Request ibarrier() const;
  void bcast(void* buf, int count, const Datatype& dt, int root) const;
  /// MPI_Ibcast: schedule-driven (topology-aware tree over pt2pt edges),
  /// advanced by the progress engine.
  Request ibcast(void* buf, int count, const Datatype& dt, int root) const;
  /// MPI_Iallreduce. Non-commutative ops use a rank-ordered chain so the
  /// reduction order matches the blocking path exactly.
  Request iallreduce(const void* sendbuf, void* recvbuf, int count,
                     const Datatype& dt, const Op& op) const;
  void reduce(const void* sendbuf, void* recvbuf, int count, const Datatype& dt,
              const Op& op, int root) const;
  void allreduce(const void* sendbuf, void* recvbuf, int count,
                 const Datatype& dt, const Op& op) const;
  void gather(const void* sendbuf, int sendcount, const Datatype& sdt,
              void* recvbuf, int recvcount, const Datatype& rdt, int root) const;
  void scatter(const void* sendbuf, int sendcount, const Datatype& sdt,
               void* recvbuf, int recvcount, const Datatype& rdt, int root) const;
  void allgather(const void* sendbuf, int sendcount, const Datatype& sdt,
                 void* recvbuf, int recvcount, const Datatype& rdt) const;
  void alltoall(const void* sendbuf, int sendcount, const Datatype& sdt,
                void* recvbuf, int recvcount, const Datatype& rdt) const;
  void scan(const void* sendbuf, void* recvbuf, int count, const Datatype& dt,
            const Op& op) const;
  /// Exclusive scan: rank r receives the fold of ranks [0, r). recvbuf of
  /// rank 0 is left untouched (MPI_Exscan semantics).
  void exscan(const void* sendbuf, void* recvbuf, int count, const Datatype& dt,
              const Op& op) const;
  /// MPI_Reduce_scatter_block: element-wise reduce of size()*recvcount
  /// elements, block r scattered to rank r.
  void reduce_scatter_block(const void* sendbuf, void* recvbuf, int recvcount,
                            const Datatype& dt, const Op& op) const;
  /// MPI_Gatherv: per-rank receive counts/displacements (in elements).
  void gatherv(const void* sendbuf, int sendcount, const Datatype& sdt,
               void* recvbuf, const std::vector<int>& recvcounts,
               const std::vector<int>& displs, const Datatype& rdt,
               int root) const;
  /// MPI_Allgatherv.
  void allgatherv(const void* sendbuf, int sendcount, const Datatype& sdt,
                  void* recvbuf, const std::vector<int>& recvcounts,
                  const std::vector<int>& displs, const Datatype& rdt) const;

  // --- constructors from this communicator -----------------------------------
  /// MPI_Comm_dup (collective). Under CidMethod::excid the child id derives
  /// from the parent's subfields when possible; under consensus the child's
  /// CID is agreed by repeated allreduce rounds.
  [[nodiscard]] Communicator dup() const;
  /// MPI_Comm_split (collective): same `color` -> same child comm, ranked by
  /// (key, parent rank). Negative color -> no child (returns null handle).
  [[nodiscard]] Communicator split(int color, int key) const;
  /// MPI_Comm_create_group (collective over `subgroup` only).
  [[nodiscard]] Communicator create_group(const Group& subgroup, int tag) const;

  // --- fault tolerance (ULFM-style; implemented by the src/ft library) -------
  /// Comm ranks currently known to have failed (fabric ground truth plus
  /// PMIx failure events delivered to this process). Monotonic.
  [[nodiscard]] std::vector<int> get_failed() const;
  /// Acknowledge every currently-known failed member (MPI_Comm_failure_ack):
  /// acknowledged deaths no longer count as "new" failures for agree().
  /// Returns the comm ranks newly acknowledged by this call.
  std::vector<int> ack_failed() const;
  /// MPIX_Comm_revoke: flood a revocation through the fabric. Every pending
  /// and future non-recovery operation on this communicator — on every
  /// member — completes with ErrClass::comm_revoked. Irreversible.
  void revoke() const;
  /// True once a revocation (local or remote) has been observed.
  [[nodiscard]] bool is_revoked() const;
  /// MPIX_Comm_agree: fault-tolerant agreement. Returns the bitwise AND of
  /// the contributions of the participating live members; all survivors
  /// return the same value even if ranks (including the coordinator) die
  /// mid-agreement. Works on a revoked communicator.
  [[nodiscard]] std::uint64_t agree(std::uint64_t contribution) const;
  /// MPIX_Comm_shrink: collectively build a new communicator over the
  /// surviving members (agree on the survivor set, then drive the regular
  /// exCID construction path over it). Works on a revoked communicator.
  [[nodiscard]] Communicator shrink() const;

  /// Attach a revocation observer: `fn` runs exactly once when this
  /// communicator is revoked (locally or by a remote flood), after pending
  /// operations were poisoned — or immediately if it is already revoked.
  /// Observers run on the thread that observes the revocation, under the
  /// process lock: they must not block or issue MPI calls. Returns an id
  /// for remove_on_revoke. Used by src/ckpt to invalidate in-flight saves.
  int on_revoke(std::function<void()> fn) const;
  /// Detach an observer before it fired; no-op for unknown/fired ids.
  void remove_on_revoke(int id) const;

  /// MPI_Comm_free: release local resources (attribute delete callbacks run).
  void free();

  friend bool operator==(const Communicator& a, const Communicator& b) {
    return a.state_ == b.state_;
  }

 private:
  friend class Session;
  friend struct detail::CommState;
  friend Communicator detail_wrap(std::shared_ptr<detail::CommState>);
  friend const std::shared_ptr<detail::CommState>& detail_unwrap(
      const Communicator& comm);
  explicit Communicator(std::shared_ptr<detail::CommState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::CommState> state_;
};

/// Internal: wrap a CommState in a public handle (used by the core impl).
Communicator detail_wrap(std::shared_ptr<detail::CommState> state);
/// Internal: access the CommState of a handle (used by Win/File internals
/// that communicate on reserved negative tags).
const std::shared_ptr<detail::CommState>& detail_unwrap(
    const Communicator& comm);

}  // namespace sessmpi
