#pragma once

// MPI Session: the Sessions Process Model entry point (paper Fig. 1).
//
//   Session s = Session::init(info, errhandler);   // local, light-weight
//   auto psets = s.pset_names();                   // query the runtime
//   Group g = s.group_from_pset("mpi://world");    // local
//   Communicator c = Communicator::create_from_group(g, "mylib");
//
// Session::init is thread-safe and may be called any number of times within
// one process lifetime, including after every prior session finalized: the
// per-process subsystem registry re-initializes MPI resources on demand and
// tears them down via the cleanup-callback framework when the last session
// (or the World model) finalizes (§III-B5).

#include <memory>
#include <string>
#include <vector>

#include "sessmpi/attributes.hpp"
#include "sessmpi/constants.hpp"
#include "sessmpi/errhandler.hpp"
#include "sessmpi/group.hpp"
#include "sessmpi/info.hpp"

namespace sessmpi::detail {
struct SessionState;
}  // namespace sessmpi::detail

namespace sessmpi {

class Session {
 public:
  /// Null handle.
  Session() = default;

  /// MPI_Session_init. `info` may carry "thread_level" =
  /// single|funneled|serialized|multiple (default multiple, which the
  /// implementation always provides).
  static Session init(const Info& info = Info::null(),
                      const Errhandler& errh = Errhandler::errors_return());

  /// MPI_Session_finalize: releases resources associated with this session;
  /// MPI tears down fully when the last session/world reference drops.
  /// Idempotent on the same handle is an error (throws via errhandler).
  void finalize();

  [[nodiscard]] bool is_null() const noexcept { return state_ == nullptr; }
  [[nodiscard]] bool finalized() const;

  // --- runtime queries (MPI_Session_get_num_psets etc.) ---------------------
  [[nodiscard]] int num_psets() const;
  [[nodiscard]] std::string nth_pset(int n) const;
  [[nodiscard]] std::vector<std::string> pset_names() const;
  /// Info for one pset: keys "mpi_size" and "pset_name".
  [[nodiscard]] Info pset_info(const std::string& name) const;

  /// MPI_Group_from_session_pset — local operation.
  [[nodiscard]] Group group_from_pset(const std::string& name) const;

  // --- session properties ------------------------------------------------------
  [[nodiscard]] ThreadLevel thread_level() const;
  [[nodiscard]] const Errhandler& errhandler() const;
  [[nodiscard]] Info info() const;
  [[nodiscard]] AttributeStore& attributes() const;
  /// Monotonic per-process id of this session (diagnostics).
  [[nodiscard]] int id() const;

  friend bool operator==(const Session& a, const Session& b) {
    return a.state_ == b.state_;
  }

 private:
  explicit Session(std::shared_ptr<detail::SessionState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::SessionState> state_;
};

}  // namespace sessmpi
