#pragma once

// MPI_Group: an ordered set of processes, held as global ranks within the
// allocation. Groups are immutable values; set operations return new groups.
// A group obtained from a session pset is equivalent to one obtained from
// the corresponding World-model communicator (paper §III-B6).

#include <memory>
#include <vector>

#include "sessmpi/base/error.hpp"
#include "sessmpi/base/topology.hpp"

namespace sessmpi {

class Group {
 public:
  /// The empty group (MPI_GROUP_EMPTY).
  static const Group& empty();

  /// Build a group from global ranks (runtime-internal; applications obtain
  /// groups from sessions or communicators).
  static Group of(std::vector<base::Rank> members);

  /// Adopt an existing shared member vector without copying. This is the
  /// 10k-rank path: every rank resolving the same pset shares ONE runtime
  /// snapshot vector instead of holding a private n-entry copy (n ranks x
  /// n members would be O(n^2) memory host-wide). Duplicate members throw,
  /// exactly as in of().
  static Group of_shared(std::shared_ptr<const std::vector<base::Rank>> members);

  [[nodiscard]] int size() const noexcept;
  /// This process's rank within the group, or -1 if not a member
  /// (MPI_UNDEFINED analogue). `global` is the caller's global rank.
  [[nodiscard]] int rank_of(base::Rank global) const noexcept;
  /// Global rank of group-rank `r`. Throws Error(rank) if out of range.
  [[nodiscard]] base::Rank global_of(int r) const;
  [[nodiscard]] const std::vector<base::Rank>& members() const noexcept;
  [[nodiscard]] bool contains(base::Rank global) const noexcept;

  // --- set operations (MPI_Group_union etc.) -------------------------------
  /// Union: members of *this, then members of other not in *this.
  [[nodiscard]] Group set_union(const Group& other) const;
  /// Intersection, ordered as in *this.
  [[nodiscard]] Group set_intersection(const Group& other) const;
  /// Difference: members of *this not in other.
  [[nodiscard]] Group set_difference(const Group& other) const;
  /// Subset by group ranks (MPI_Group_incl). Throws Error(rank) on bad index
  /// or duplicate.
  [[nodiscard]] Group incl(const std::vector<int>& ranks) const;
  /// Complement subset (MPI_Group_excl).
  [[nodiscard]] Group excl(const std::vector<int>& ranks) const;

  /// MPI_Group_translate_ranks: for each group rank in `ranks` (of *this*),
  /// the corresponding rank in `other`, or -1 when absent.
  [[nodiscard]] std::vector<int> translate(const std::vector<int>& ranks,
                                           const Group& other) const;

  /// MPI_Group_compare: identical (same members, same order), similar (same
  /// members, different order), or unequal.
  enum class Compare { ident, similar, unequal };
  [[nodiscard]] Compare compare(const Group& other) const;

 private:
  explicit Group(std::shared_ptr<const std::vector<base::Rank>> m);
  std::shared_ptr<const std::vector<base::Rank>> members_;
  // Shape flags (computed once at construction) feed rank_of fast paths:
  // contiguous groups (world, pset snapshots) answer in O(1), sorted ones
  // in O(log n); only arbitrarily-ordered groups pay the linear scan.
  bool sorted_ = true;  ///< members strictly increasing
  bool contig_ = true;  ///< members[i] == members[0] + i
};

}  // namespace sessmpi
