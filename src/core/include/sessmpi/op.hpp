#pragma once

// Reduction operations (MPI_Op). Predefined arithmetic/logical ops work on
// the primitive datatypes; user-defined ops receive raw buffers plus the
// datatype, mirroring MPI_User_function.

#include <functional>
#include <memory>
#include <string>

#include "sessmpi/datatype.hpp"

namespace sessmpi {

class Op {
 public:
  static const Op& sum();
  static const Op& prod();
  static const Op& max();
  static const Op& min();
  static const Op& land();  ///< logical and
  static const Op& lor();   ///< logical or
  static const Op& band();  ///< bitwise and
  static const Op& bor();   ///< bitwise or

  using UserFn =
      std::function<void(const void* in, void* inout, int count,
                         const Datatype& dt)>;
  /// User-defined reduction (MPI_Op_create). `commute` is informational.
  static Op create(UserFn fn, bool commute = true, std::string name = "user");

  /// Apply: inout[i] = op(in[i], inout[i]) for i in [0, count).
  /// Predefined ops throw Error(op) for derived or unsupported datatypes.
  void apply(const void* in, void* inout, int count, const Datatype& dt) const;

  [[nodiscard]] const std::string& name() const noexcept;
  [[nodiscard]] bool commutative() const noexcept;

 private:
  struct Impl;
  explicit Op(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}
  static Op builtin(int which, const char* name);
  std::shared_ptr<const Impl> impl_;
};

}  // namespace sessmpi
