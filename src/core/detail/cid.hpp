#pragma once

// CID generation internals: the original Open MPI consensus algorithm
// (paper §III-B2) and its building block, a small binomial allreduce over a
// subset of a parent communicator's ranks.

#include <array>
#include <cstdint>
#include <vector>

#include "detail/state.hpp"

namespace sessmpi::detail {

/// Element-wise max-allreduce of a pair of int64 values across
/// `participants` (comm ranks of `parent`, ascending, must contain the
/// caller). `base_tag` must come from the internal tag space and be agreed
/// by all participants.
std::array<std::int64_t, 2> subset_allreduce_max2(
    ProcState& ps, const std::shared_ptr<CommState>& parent,
    const std::vector<int>& participants, std::array<std::int64_t, 2> value,
    int base_tag);

/// Run the consensus algorithm over `participants` of `parent`: repeated
/// rounds of propose-lowest-free + allreduce until every participant
/// proposes the same free slot. Claims and returns the agreed CID.
std::uint16_t consensus_cid(ProcState& ps,
                            const std::shared_ptr<CommState>& parent,
                            const std::vector<int>& participants, int base_tag,
                            int* rounds_out = nullptr);

}  // namespace sessmpi::detail
