#include "detail/state.hpp"

#include <ostream>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/log.hpp"

namespace sessmpi::detail {

namespace {

/// Flight-recorder section body: this rank's communicator table plus the
/// in-flight request maps, as one line of JSON. Runs on the dumping thread
/// while rank threads may still be inside the PML, so it must not block:
/// try_lock succeeds immediately when the dumping thread itself holds
/// ps.mu (recursive — the revoke trigger fires under it) and degrades to a
/// "busy" marker when another thread owns the state.
void dump_proc_state(ProcState& ps, std::ostream& os) {
  std::unique_lock lk(ps.mu, std::try_to_lock);
  if (!lk.owns_lock()) {
    os << "{\"rank\":" << ps.proc.rank() << ",\"skipped\":\"busy\"}";
    return;
  }
  os << "{\"rank\":" << ps.proc.rank() << ",\"comms\":[";
  bool first = true;
  for (const auto& c : ps.comm_by_cid) {
    if (!c || c->freed) continue;
    os << (first ? "" : ",") << "{\"cid\":" << c->cid
       << ",\"size\":" << c->size() << ",\"myrank\":" << c->myrank
       << ",\"revoked\":" << (c->revoked ? "true" : "false")
       << ",\"posted\":" << c->posted.size()
       << ",\"unexpected\":" << c->unexpected.size() << "}";
    first = false;
  }
  os << "],\"send_tokens\":" << ps.send_tokens.size()
     << ",\"recv_tokens\":" << ps.recv_tokens.size()
     << ",\"nbc_live\":" << ps.nbc_live.size()
     << ",\"orphans\":" << ps.orphans.size()
     << ",\"failure_notices\":" << ps.failure_notices.size() << "}";
}

}  // namespace

ProcState::ProcState(sim::Process& p)
    : proc(p), cost(p.cluster().dvm().cost()) {
  ensure_subsystems_defined();
  pm_section = obs::PostmortemSection(
      "core.rank" + std::to_string(p.rank()),
      [this](std::ostream& os) { dump_proc_state(*this, os); });
}

ProcState& ProcState::of(sim::Process& p) {
  // Several threads may act as this rank concurrently (ProcessAdopter), so
  // creation must be synchronized.
  std::lock_guard lock(p.mpi_state_mu);
  if (!p.mpi_state) {
    p.mpi_state = std::make_shared<ProcState>(p);
  }
  return *std::static_pointer_cast<ProcState>(p.mpi_state);
}

ProcState& ProcState::current() { return of(sim::Cluster::current()); }

pmix::PmixClient& ProcState::pmix() {
  if (!proc.pmix_client) {
    throw Error(ErrClass::session, "PMIx not initialized (no live session)");
  }
  return *proc.pmix_client;
}

void ProcState::ensure_subsystems_defined() {
  auto& reg = proc.subsystems();
  // Idempotence: ProcState is constructed once per process, and these
  // definitions survive init/finalize cycles; guard anyway for re-entry.
  try {
    reg.define("mca",
               [this] {
                 // Component (MCA) load: first process on the node pays the
                 // NFS cost, node-mates block on the same load (§IV-C1).
                 proc.cluster().dvm().load_components(proc.node());
               },
               nullptr);
  } catch (const Error&) {
    return;  // already defined
  }
  reg.define("pmix",
             [this] {
               proc.pmix_client = std::make_unique<pmix::PmixClient>(
                   proc.cluster().dvm().pmix(), proc.rank());
               // Failure-awareness bridge: record runtime failure events so
               // Communicator::get_failed() reports what the runtime told
               // this process (delivered on our own thread during polls).
               proc.pmix_client->register_event_handler(
                   [this](const pmix::Event& ev) {
                     if (ev.kind == pmix::EventKind::proc_failed) {
                       std::lock_guard lock(mu);
                       failure_notices.insert(ev.about);
                     }
                   });
               // Publish our endpoint blob the moment the client exists:
               // lazy-modex peers resolve it on first contact without any
               // fence, so Session_init stays local (DESIGN.md §15).
               proc.pmix_client->put(
                   "pml.endpoint", static_cast<std::uint64_t>(proc.rank()));
               proc.pmix_client->commit();
             },
             [this] { proc.pmix_client.reset(); }, {"mca"});
  reg.define("pml",
             nullptr,
             [this] {
               // Final teardown: all communicators are invalid after the
               // last session finalizes; clear the PML tables so a new init
               // cycle starts clean.
               std::lock_guard lock(mu);
               for (auto& c : comm_by_cid) {
                 if (c) {
                   c->freed = true;
                 }
               }
               comm_by_cid.clear();
               comm_by_excid.clear();
               orphans.clear();
               send_tokens.clear();
               recv_tokens.clear();
               nbc_live.clear();
               cid_alloc = base::SlotAllocator{kCidSpace};
             },
             {"mca"});
  reg.define("instance",
             [this] {
               // MPI resource initialization associated with the first
               // session handle (paper: ~30% of sessions startup at 28 ppn).
               base::precise_delay(cost.session_resource_init_ns);
             },
             nullptr, {"mca", "pmix", "pml"});
  reg.define("world", [this] { init_world_objects(*this); },
             [this] { teardown_world_objects(*this); }, {"instance"});
}

void ProcState::acquire_instance() {
  proc.subsystems().acquire("instance");
  {
    std::lock_guard lock(mu);
    ++live_sessions;
  }
}

void ProcState::release_instance() {
  {
    std::lock_guard lock(mu);
    --live_sessions;
  }
  proc.subsystems().release("instance");
}

std::shared_ptr<CommState> ProcState::register_comm(
    const Group& grp, ExCidSpace space, bool uses_excid,
    std::optional<std::uint16_t> fixed_cid, bool already_claimed) {
  std::lock_guard lock(mu);
  std::uint32_t cid;
  if (fixed_cid) {
    cid = *fixed_cid;
    if (!already_claimed && !cid_alloc.claim(cid)) {
      throw Error(ErrClass::intern, "CID slot already in use");
    }
  } else {
    auto lowest = cid_alloc.lowest_free();
    if (!lowest) {
      throw Error(ErrClass::other, "communicator CID space exhausted");
    }
    cid = *lowest;
    cid_alloc.claim(cid);
  }

  auto comm = std::make_shared<CommState>();
  comm->ps = this;
  comm->grp = grp;
  comm->myrank = grp.rank_of(proc.rank());
  comm->cid = static_cast<std::uint16_t>(cid);
  comm->excid_space = space;
  comm->uses_excid = uses_excid;
  comm->method = method;
  // peers/acked are sparse (populated on contact / acknowledgement), so a
  // 16k-member comm costs nothing per rank until traffic actually flows.

  if (comm_by_cid.size() <= cid) {
    comm_by_cid.resize(cid + 1);
  }
  comm_by_cid[cid] = comm;
  if (uses_excid) {
    comm_by_excid[comm->excid_space.id()] = comm;
    // Re-deliver any early arrivals that referenced this exCID before the
    // local communicator existed (peers can finish construction first).
    std::vector<fabric::Packet> replay;
    for (auto it = orphans.begin(); it != orphans.end();) {
      if (it->ext.excid_hi == comm->excid_space.id().hi &&
          it->ext.excid_lo == comm->excid_space.id().lo) {
        replay.push_back(std::move(*it));
        it = orphans.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& pkt : replay) {
      dispatch(std::move(pkt));
    }
  }
  return comm;
}

void ProcState::unregister_comm(CommState& comm) {
  std::lock_guard lock(mu);
  if (comm.freed) {
    return;
  }
  comm.freed = true;
  comm.coll_plan.reset();
  comm.attrs.clear();
  cid_alloc.release(comm.cid);
  if (comm.cid < comm_by_cid.size()) {
    comm_by_cid[comm.cid] = nullptr;
  }
  if (comm.uses_excid) {
    comm_by_excid.erase(comm.excid_space.id());
  }
}

}  // namespace sessmpi::detail
