#include <algorithm>
#include <limits>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/obs/hist.hpp"
#include "sessmpi/obs/postmortem.hpp"
#include "sessmpi/obs/trace.hpp"
#include "detail/state.hpp"

namespace sessmpi::detail {

namespace {

/// Packed byte size of `count` elements.
std::size_t packed_bytes(int count, const Datatype& dt) {
  return static_cast<std::size_t>(count) * dt.size();
}

constexpr std::uint64_t kNoStamp = std::numeric_limits<std::uint64_t>::max();

}  // namespace

// ---------------------------------------------------------------------------
// Match queues (structures in state.hpp; ordering proof in DESIGN.md §12)
// ---------------------------------------------------------------------------

void PostedQueues::insert(const RequestPtr& req) {
  Bin& bin = req->src == any_source ? wildcard_ : bins_[req->src];
  if (req->tag == any_tag) {
    bin.any_tag.push_back(req);
  } else {
    bin.by_tag[req->tag].push_back(req);
  }
  ++size_;
}

RequestPtr PostedQueues::take_match(int src, int tag) {
  static const auto bin_hits = base::counter("pml.match_bin_hits");
  static const auto wildcard_scans = base::counter("pml.wildcard_scans");
  if (size_ == 0) {
    return nullptr;
  }

  // Up to four candidate queues can hold a matching request; each is
  // stamp-sorted, so the earliest post overall is the min over their heads.
  std::deque<RequestPtr>* best = nullptr;
  std::uint64_t best_stamp = kNoStamp;
  bool best_in_bins = false;
  std::uint64_t wild_heads = 0;

  const auto consider = [&](std::deque<RequestPtr>* q, bool in_bins) {
    if (q == nullptr || q->empty()) {
      return;
    }
    if (!in_bins) {
      ++wild_heads;
    }
    const std::uint64_t stamp = q->front()->post_stamp;
    if (stamp < best_stamp) {
      best_stamp = stamp;
      best = q;
      best_in_bins = in_bins;
    }
  };

  const auto queues_of = [&](Bin& bin) {
    auto tit = bin.by_tag.find(tag);
    std::deque<RequestPtr>* exact =
        tit == bin.by_tag.end() ? nullptr : &tit->second;
    // ANY_TAG posts never match internal (negative) tags.
    std::deque<RequestPtr>* anytag = tag >= 0 ? &bin.any_tag : nullptr;
    return std::pair{exact, anytag};
  };

  auto bit = bins_.find(src);
  if (bit != bins_.end()) {
    auto [exact, anytag] = queues_of(bit->second);
    consider(exact, /*in_bins=*/true);
    consider(anytag, /*in_bins=*/true);
  }
  {
    auto [exact, anytag] = queues_of(wildcard_);
    consider(exact, /*in_bins=*/false);
    consider(anytag, /*in_bins=*/false);
  }
  if (wild_heads > 0) {
    wildcard_scans.add(wild_heads);
  }
  if (best == nullptr) {
    return nullptr;
  }

  RequestPtr req = std::move(best->front());
  best->pop_front();
  --size_;
  if (best_in_bins) {
    bin_hits.add();
  }
  // Drop emptied exact-tag queues so per-tag map entries don't accumulate.
  Bin& owner = best_in_bins ? bit->second : wildcard_;
  if (best != &owner.any_tag && best->empty()) {
    owner.by_tag.erase(req->tag);
  }
  if (best_in_bins && bit->second.empty()) {
    bins_.erase(bit);
  }
  return req;
}

void UnexpectedQueues::insert(fabric::Packet&& pkt, std::uint64_t stamp) {
  auto& dq = bins_[pkt.match.src].by_tag[pkt.match.tag];
  dq.push_back(Stamped{std::move(pkt), stamp});
  ++size_;
}

std::optional<UnexpectedQueues::Loc> UnexpectedQueues::locate_match(int src,
                                                                    int tag) {
  static const auto wildcard_scans = base::counter("pml.wildcard_scans");
  if (size_ == 0) {
    return std::nullopt;
  }

  std::optional<Loc> best;
  std::uint64_t best_stamp = kNoStamp;
  std::uint64_t scanned = 0;

  const auto consider = [&](BinMap::iterator bin, auto tq) {
    if (tq == bin->second.by_tag.end() || tq->second.empty()) {
      return;
    }
    const std::uint64_t stamp = tq->second.front().stamp;
    if (stamp < best_stamp) {
      best_stamp = stamp;
      best = Loc{bin, tq};
    }
  };

  if (src != any_source && tag != any_tag) {
    // Fully directed: one deque holds every candidate. O(1).
    auto bit = bins_.find(src);
    if (bit != bins_.end()) {
      consider(bit, bit->second.by_tag.find(tag));
    }
    return best;
  }

  // Wildcard receives arbitrate over queue heads: per candidate source,
  // per stored tag for ANY_TAG (negative tags excluded — internal traffic
  // never matches a wildcard).
  const auto consider_bin = [&](BinMap::iterator bit) {
    if (tag != any_tag) {
      ++scanned;
      consider(bit, bit->second.by_tag.find(tag));
      return;
    }
    for (auto tit = bit->second.by_tag.begin(); tit != bit->second.by_tag.end();
         ++tit) {
      if (tit->first < 0) {
        continue;
      }
      ++scanned;
      consider(bit, tit);
    }
  };

  if (src != any_source) {
    auto bit = bins_.find(src);
    if (bit != bins_.end()) {
      consider_bin(bit);
    }
  } else {
    for (auto bit = bins_.begin(); bit != bins_.end(); ++bit) {
      consider_bin(bit);
    }
  }
  if (scanned > 0) {
    wildcard_scans.add(scanned);
  }
  return best;
}

std::optional<fabric::Packet> UnexpectedQueues::take_match(int src, int tag) {
  auto loc = locate_match(src, tag);
  if (!loc) {
    return std::nullopt;
  }
  auto& dq = loc->tq->second;
  fabric::Packet pkt = std::move(dq.front().pkt);
  dq.pop_front();
  --size_;
  if (dq.empty()) {
    loc->bin->second.by_tag.erase(loc->tq);
    if (loc->bin->second.by_tag.empty()) {
      bins_.erase(loc->bin);
    }
  }
  return pkt;
}

const fabric::Packet* UnexpectedQueues::peek_match(int src, int tag) const {
  // locate_match only mutates counters; the structure is untouched.
  auto loc = const_cast<UnexpectedQueues*>(this)->locate_match(src, tag);
  return loc ? &loc->tq->second.front().pkt : nullptr;
}

// ---------------------------------------------------------------------------
// Matching
// ---------------------------------------------------------------------------

RequestPtr ProcState::match_posted(CommState& comm, const fabric::Packet& pkt) {
  return comm.posted.take_match(pkt.match.src, pkt.match.tag);
}

bool ProcState::match_against_unexpected(CommState& comm,
                                         const RequestPtr& req) {
  auto pkt = comm.unexpected.take_match(req->src, req->tag);
  if (!pkt) {
    return false;
  }
  deliver(comm, req, std::move(*pkt));
  return true;
}

void ProcState::handle_incoming(const std::shared_ptr<CommState>& comm,
                                fabric::Packet&& pkt) {
  OBS_SPAN("pml.match", "core");
  // Causal edge in: closes the flow the sender opened in isend_impl, so the
  // merged view draws a send->match arrow across rank tracks. The fabric
  // delivers exactly once (retransmits dedup at the flow layer), so each
  // context yields exactly one flow_end.
  if (pkt.match.trace_ctx != 0) {
    OBS_FLOW_END("pml.msg", "core", pkt.match.trace_ctx);
  }
  // Exactly-once cross-check of the fabric's reliable-delivery guarantee:
  // sends stamp MatchHeader::seq per (comm,peer), so a duplicate or
  // overtaking arrival would show up here as a non-+1 step.
  static const auto seq_anomalies = base::counter("pml.seq_anomalies");
  if (pkt.match.seq != 0) {
    if (pkt.match.src >= 0 && pkt.match.src < comm->size()) {
      auto& peer = comm->peer_at(pkt.match.src);
      if (pkt.match.seq != peer.recv_seq + 1) {
        seq_anomalies.add();
      }
      peer.recv_seq = std::max(peer.recv_seq, pkt.match.seq);
    } else {
      // A source outside the communicator's rank range is corruption, not
      // something to silently skip — it is exactly the kind of anomaly this
      // check exists to surface.
      seq_anomalies.add();
    }
  }
  if (RequestPtr req = match_posted(*comm, pkt)) {
    deliver(*comm, req, std::move(pkt));
  } else {
    comm->unexpected.insert(std::move(pkt), comm->next_match_stamp++);
  }
}

void ProcState::deliver(CommState& comm, const RequestPtr& req,
                        fabric::Packet&& pkt) {
  (void)comm;  // kept in the signature for symmetry / future stats
  Status st;
  st.source = pkt.match.src;
  st.tag = pkt.match.tag;

  if (pkt.kind == fabric::PacketKind::rndv_rts ||
      pkt.kind == fabric::PacketKind::rndv_rts_ext) {
    // Rendezvous: remember the request under (sender, token) and clear the
    // sender to ship the data.
    req->rndv_source = pkt.match.src;
    req->rndv_tag = pkt.match.tag;
    recv_tokens[{pkt.src_rank, pkt.token}] = req;
    fabric::Packet cts;
    cts.kind = fabric::PacketKind::rndv_cts;
    cts.src_rank = proc.rank();
    cts.dst_rank = pkt.src_rank;
    cts.token = pkt.token;
    proc.cluster().fabric().send(std::move(cts));
    return;  // completion happens on rndv_data
  }

  // Eager payload: unpack with truncation handling.
  const std::size_t cap =
      req->dt ? packed_bytes(req->capacity, *req->dt) : 0;
  std::size_t bytes = pkt.payload.size();
  if (bytes > cap) {
    st.error = ErrClass::truncate;
    bytes = cap;
  }
  if (req->dt && bytes > 0) {
    const int elements = static_cast<int>(bytes / req->dt->size());
    req->dt->unpack(pkt.payload.data(), elements, req->buf);
  }
  st.count_bytes = bytes;

  if (pkt.token != 0) {
    // Synchronous send: acknowledge the match.
    fabric::Packet ack;
    ack.kind = fabric::PacketKind::sync_ack;
    ack.src_rank = proc.rank();
    ack.dst_rank = pkt.src_rank;
    ack.token = pkt.token;
    proc.cluster().fabric().send(std::move(ack));
  }
  req->finish(st);
}

// ---------------------------------------------------------------------------
// Dispatch (mu held by caller)
// ---------------------------------------------------------------------------

void ProcState::dispatch(fabric::Packet&& pkt) {
  using fabric::PacketKind;
  switch (pkt.kind) {
    case PacketKind::eager:
    case PacketKind::rndv_rts: {
      // Fast path: constant-time lookup in the local communicator array.
      base::precise_delay(cost.match_fast_path_ns);
      std::shared_ptr<CommState> comm =
          pkt.match.cid < comm_by_cid.size() ? comm_by_cid[pkt.match.cid]
                                             : nullptr;
      if (comm && !comm->freed) {
        handle_incoming(comm, std::move(pkt));
      }
      return;
    }
    case PacketKind::eager_ext:
    case PacketKind::rndv_rts_ext: {
      // Extended path: hash the exCID, learn the sender's CID, and ACK with
      // ours (paper §III-B4).
      base::precise_delay(cost.match_ext_lookup_ns);
      const ExCid id{pkt.ext.excid_hi, pkt.ext.excid_lo};
      auto it = comm_by_excid.find(id);
      if (it == comm_by_excid.end()) {
        // Peer finished communicator construction before us: park it.
        orphans.push_back(std::move(pkt));
        return;
      }
      std::shared_ptr<CommState> comm = it->second;
      auto& peer = comm->peer_at(pkt.match.src);
      peer.remote_cid = pkt.ext.sender_cid;
      if (!peer.ack_sent) {
        peer.ack_sent = true;
        fabric::Packet ack;
        ack.kind = PacketKind::cid_ack;
        ack.src_rank = proc.rank();
        ack.dst_rank = pkt.src_rank;
        ack.match.src = comm->myrank;
        ack.ext.excid_hi = id.hi;
        ack.ext.excid_lo = id.lo;
        ack.ext.sender_cid = comm->cid;
        proc.cluster().fabric().send(std::move(ack));
      }
      handle_incoming(comm, std::move(pkt));
      return;
    }
    case PacketKind::cid_ack: {
      OBS_INSTANT("pml.cid_ack", "core");
      const ExCid id{pkt.ext.excid_hi, pkt.ext.excid_lo};
      auto it = comm_by_excid.find(id);
      if (it != comm_by_excid.end()) {
        it->second->peer_at(pkt.match.src).remote_cid = pkt.ext.sender_cid;
      }
      return;
    }
    case PacketKind::rndv_cts: {
      auto it = send_tokens.find(pkt.token);
      if (it == send_tokens.end()) {
        return;
      }
      RequestPtr req = it->second;
      send_tokens.erase(it);
      fabric::Packet data;
      data.kind = PacketKind::rndv_data;
      data.src_rank = proc.rank();
      data.dst_rank = pkt.src_rank;
      data.token = pkt.token;
      data.payload = std::move(req->staged);
      proc.cluster().fabric().send(std::move(data));
      req->finish(Status{});
      return;
    }
    case PacketKind::rndv_data: {
      auto it = recv_tokens.find({pkt.src_rank, pkt.token});
      if (it == recv_tokens.end()) {
        return;
      }
      RequestPtr req = it->second;
      recv_tokens.erase(it);
      Status st;
      st.source = req->status.source;  // set at match time? recompute below
      const std::size_t cap = req->dt ? packed_bytes(req->capacity, *req->dt) : 0;
      std::size_t bytes = pkt.payload.size();
      if (bytes > cap) {
        st.error = ErrClass::truncate;
        bytes = cap;
      }
      if (req->dt && bytes > 0) {
        const int elements = static_cast<int>(bytes / req->dt->size());
        req->dt->unpack(pkt.payload.data(), elements, req->buf);
      }
      st.count_bytes = bytes;
      st.source = req->rndv_source;
      st.tag = req->rndv_tag;
      req->finish(st);
      return;
    }
    case PacketKind::sync_ack: {
      auto it = send_tokens.find(pkt.token);
      if (it != send_tokens.end()) {
        RequestPtr req = it->second;
        send_tokens.erase(it);
        req->finish(Status{});
      }
      return;
    }
    case PacketKind::comm_revoke: {
      // token==1 marks an exCID-addressed revocation (sessions-derived
      // communicator); otherwise the CID is global-by-construction (world
      // builtins, consensus children) and addresses the comm directly.
      std::shared_ptr<CommState> comm;
      if (pkt.token != 0) {
        const ExCid id{pkt.ext.excid_hi, pkt.ext.excid_lo};
        auto it = comm_by_excid.find(id);
        if (it == comm_by_excid.end()) {
          // Revocation can outrun communicator construction: park it; the
          // replay in register_comm delivers it once the comm exists.
          orphans.push_back(std::move(pkt));
          return;
        }
        comm = it->second;
      } else if (pkt.match.cid < comm_by_cid.size()) {
        comm = comm_by_cid[pkt.match.cid];
      }
      if (comm && !comm->freed) {
        revoke_comm_locked(comm, /*flood=*/true, pkt.match.trace_ctx);
      }
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Revocation (ULFM)
// ---------------------------------------------------------------------------

void ProcState::revoke_comm_locked(const std::shared_ptr<CommState>& comm,
                                   bool flood, std::uint64_t trace_ctx) {
  if (comm->revoked) {
    return;  // idempotent: also terminates the re-flood recursion
  }
  comm->revoked = true;
  // Membership is about to change (shrink/respawn): drop the cached
  // collective plan + shared region so a survivor cannot rendezvous with a
  // dead member's slot. The post-shrink comm rebuilds lazily.
  comm->coll_plan.reset();
  base::counters().add("ft.comms_revoked");
  OBS_INSTANT_ARG("ft.revoked", "ft", flood ? 1 : 0);
  obs::trigger_postmortem("comm_revoked");
  // One distributed trace per revoke wave: the initiator opens the flow,
  // every hop that re-floods adds a step with the same id, and the flood
  // below stamps that id on each outgoing packet.
  if (obs::Tracer::instance().enabled()) {
    if (trace_ctx != 0) {
      OBS_FLOW_STEP("ft.revoke", "ft", trace_ctx);
    } else {
      trace_ctx = obs::Tracer::next_span_id();
      OBS_FLOW_START("ft.revoke", "ft", trace_ctx, 0);
    }
  }

  const auto poison = [](const RequestPtr& r, int source, int tag) {
    Status st;
    st.source = source;
    st.tag = tag;
    st.error = ErrClass::comm_revoked;
    r->finish(st);
  };

  // In-flight nonblocking collectives on this comm abort first so their
  // sub-receives leave the posted queue as part of the op, not one by one.
  for (auto it = nbc_live.begin(); it != nbc_live.end();) {
    RequestImpl& req = **it;
    if (req.comm != comm.get()) {
      ++it;
      continue;
    }
    NbcOp& op = *req.nbc;
    comm->posted.erase_if([&](const RequestPtr& posted) {
      if (posted == op.parent_recv) {
        return true;
      }
      for (const RequestPtr& r : op.child_recvs) {
        if (posted == r) {
          return true;
        }
      }
      return false;
    });
    Status st;
    st.error = ErrClass::comm_revoked;
    req.finish(st);
    it = nbc_live.erase(it);
  }

  // Pending receives; FT-protocol operations keep working (agreement and
  // shrink must be able to communicate over the revoked communicator).
  comm->posted.erase_if([&](const RequestPtr& req) {
    if (is_ft_tag(req->tag)) {
      return false;
    }
    poison(req, req->src, req->tag);
    return true;
  });
  // Unmatched arrivals: any receive that could match them would be poisoned
  // anyway, so drop them before they can satisfy a post-revoke FT wildcard.
  comm->unexpected.erase_if([](const fabric::Packet& p) {
    return !is_ft_tag(p.match.tag);
  });
  // Rendezvous / synchronous sends parked on a CTS or ACK from a peer that
  // will never answer on this comm again.
  for (auto it = send_tokens.begin(); it != send_tokens.end();) {
    const RequestPtr& req = it->second;
    if (req->comm == comm.get() && !is_ft_tag(req->tag)) {
      poison(req, req->dst, req->tag);
      it = send_tokens.erase(it);
    } else {
      ++it;
    }
  }
  // Matched rendezvous receives whose bulk data is no longer coming.
  for (auto it = recv_tokens.begin(); it != recv_tokens.end();) {
    const RequestPtr& req = it->second;
    if (req->comm == comm.get() && !is_ft_tag(req->rndv_tag)) {
      poison(req, req->rndv_source, req->rndv_tag);
      it = recv_tokens.erase(it);
    } else {
      ++it;
    }
  }

  // Fire the revocation observers exactly once, after poisoning, so an
  // observer (e.g. an in-flight checkpoint save) that inspects its pending
  // requests sees them already completed with comm_revoked. Observers run
  // under ps.mu (recursive), so they may query the communicator but must
  // not block.
  if (!comm->revoke_observers.empty()) {
    auto observers = std::move(comm->revoke_observers);
    comm->revoke_observers.clear();
    for (auto& [id, fn] : observers) {
      fn();
    }
  }

  if (!flood) {
    return;
  }
  // Reliable broadcast: every rank that observes the revocation re-floods it
  // to all live peers, so the wave completes even if the initiator dies
  // mid-broadcast. Receivers are idempotent (guard above).
  fabric::Fabric& fab = proc.cluster().fabric();
  for (int p = 0; p < comm->size(); ++p) {
    if (p == comm->myrank) {
      continue;
    }
    const base::Rank global = comm->global_of(p);
    if (fab.is_failed(global)) {
      continue;
    }
    fabric::Packet pkt;
    pkt.kind = fabric::PacketKind::comm_revoke;
    pkt.src_rank = proc.rank();
    pkt.dst_rank = global;
    pkt.match.src = comm->myrank;
    if (comm->uses_excid) {
      pkt.token = 1;
      pkt.ext.excid_hi = comm->excid_space.id().hi;
      pkt.ext.excid_lo = comm->excid_space.id().lo;
      pkt.ext.sender_cid = comm->cid;
    } else {
      pkt.match.cid = comm->cid;
    }
    pkt.match.trace_ctx = trace_ctx;
    fab.send(std::move(pkt));
  }
}

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

namespace {

/// Pipelined wire model (DESIGN.md §12): the sender only charges occupancy
/// (gap + serialization); the one-way latency elapses in flight. The receiver
/// honors it here — a popped packet is not dispatched before its arrival
/// deadline, but packets queued behind it have been overlapping their flight
/// time with ours, which is what lets the windowed message rate approach 1/gap
/// instead of 1/RTT.
void wait_for_arrival(const fabric::Packet& pkt) {
  if (pkt.arrival_ns > 0) {
    base::precise_delay(pkt.arrival_ns - base::now_ns());
  }
}

}  // namespace

void ProcState::progress_pass(bool block) {
  bool any = false;
  for (;;) {
    auto pkt = proc.endpoint().inbox().try_pop();
    if (!pkt) {
      break;
    }
    any = true;
    wait_for_arrival(*pkt);
    std::lock_guard lock(mu);
    dispatch(std::move(*pkt));
  }
  if (!any && block) {
    // Arrivals wake the pop immediately (notify-driven); the timeout only
    // bounds abort/failure-detection latency, so keep it long enough that
    // idle waiters do not generate wake-up storms at high rank counts.
    auto pkt = proc.endpoint().inbox().pop_wait(std::chrono::milliseconds(5));
    if (pkt) {
      wait_for_arrival(*pkt);
      std::lock_guard lock(mu);
      dispatch(std::move(*pkt));
    } else {
      // Idle: check whether anything we wait for is pinned on a dead peer.
      std::lock_guard lock(mu);
      sweep_failed_peers_locked();
    }
  }
  std::lock_guard lock(mu);
  advance_nbc_locked();
}

void ProcState::sweep_failed_peers_locked() {
  fabric::Fabric& fab = proc.cluster().fabric();
  const auto failed_status = [](int source, int tag) {
    Status st;
    st.source = source;
    st.tag = tag;
    st.error = ErrClass::rte_proc_failed;
    return st;
  };
  // Posted receives from a specific, now-dead source.
  for (auto& comm : comm_by_cid) {
    if (!comm || comm->freed) {
      continue;
    }
    comm->posted.erase_if([&](const RequestPtr& req) {
      if (req->src == any_source || !fab.is_failed(comm->global_of(req->src))) {
        return false;
      }
      req->finish(failed_status(req->src, req->tag));
      return true;
    });
  }
  // Rendezvous / synchronous sends waiting on a dead peer's CTS or ACK.
  for (auto it = send_tokens.begin(); it != send_tokens.end();) {
    RequestPtr& req = it->second;
    if (req->comm != nullptr && req->dst >= 0 &&
        fab.is_failed(req->comm->global_of(req->dst))) {
      req->finish(failed_status(req->dst, req->tag));
      it = send_tokens.erase(it);
    } else {
      ++it;
    }
  }
  // Rendezvous receives whose matched sender died before shipping the data.
  for (auto it = recv_tokens.begin(); it != recv_tokens.end();) {
    if (fab.is_failed(it->first.first)) {
      it->second->finish(
          failed_status(it->second->rndv_source, it->second->rndv_tag));
      it = recv_tokens.erase(it);
    } else {
      ++it;
    }
  }
}

void ProcState::progress_until(const std::function<bool()>& done) {
  fabric::Fabric& fab = proc.cluster().fabric();
  for (;;) {
    if (done()) {
      return;
    }
    if (proc.cluster().aborted()) {
      throw Error(ErrClass::proc_aborted,
                  "cluster run aborting (a rank threw)");
    }
    // Self-failure unwind: a node kill (Cluster::fail_node) marks this
    // process failed while its thread may be blocked here, mid-operation.
    // Survivors stop talking to a failed rank (the fabric drops packets to
    // it), so without this check the victim would wait forever and hang the
    // join. Throwing lets the rank body observe Process::failed() and stop
    // issuing MPI calls — the cooperative-death contract of the chaos layer.
    if (fab.is_failed(proc.rank())) {
      throw Error(ErrClass::rte_proc_failed,
                  "this process was marked failed while blocked");
    }
    progress_pass(/*block=*/true);
  }
}

// ---------------------------------------------------------------------------
// Point-to-point primitives
// ---------------------------------------------------------------------------

void ProcState::resolve_endpoint(const std::shared_ptr<CommState>& comm,
                                 int dst) {
  {
    std::lock_guard lock(mu);
    if (comm->peer_at(dst).endpoint_resolved) {
      return;
    }
  }
  const base::Rank global = comm->global_of(dst);
  if (global != proc.rank()) {
    auto v = pmix().peer_info(global, "pml.endpoint");
    if (!v.ok()) {
      if (v.error() == ErrClass::rte_proc_failed) {
        // Negative cache: the peer died before it ever published. Escalate
        // instead of letting the first send block forever on a void peer.
        throw Error(ErrClass::rte_proc_failed,
                    "peer failed before first contact (modex)");
      }
      throw Error(v.error(), "peer endpoint resolution failed");
    }
  }
  std::lock_guard lock(mu);
  comm->peer_at(dst).endpoint_resolved = true;
}

RequestPtr ProcState::isend_impl(const std::shared_ptr<CommState>& comm,
                                 const void* buf, int count, const Datatype& dt,
                                 int dst, int tag, bool sync) {
  if (dst < 0 || dst >= comm->size()) {
    throw Error(ErrClass::rank, "send destination out of range");
  }
  // Lazy modex: first contact with this peer fetches its endpoint blob
  // (cache hit ever after; eager mode pre-populated the cache at init).
  resolve_endpoint(comm, dst);
  RequestPtr req = make_request();
  req->ps = this;
  req->comm = comm.get();
  req->dst = dst;

  const std::size_t bytes = packed_bytes(count, dt);
  OBS_SPAN_ARG("pml.send", "core", bytes);
  // Pack straight into a pooled, refcounted buffer: the fabric's retransmit
  // window and any local delivery then share these bytes instead of copying.
  fabric::Payload payload(bytes);
  if (bytes > 0) {
    dt.pack(buf, count, payload.data());
  }

  fabric::Packet pkt;
  pkt.src_rank = proc.rank();
  pkt.dst_rank = comm->global_of(dst);
  pkt.match.tag = tag;
  pkt.match.src = comm->myrank;

  bool eager = bytes <= kEagerLimit;
  {
    std::lock_guard lock(mu);
    if (comm->revoked && !is_ft_tag(tag)) {
      throw Error(ErrClass::comm_revoked, "communicator has been revoked");
    }
    auto& peer = comm->peer_at(dst);
    pkt.match.seq = ++peer.send_seq;
    if (obs::Tracer::instance().enabled()) {
      // Causal trace context (DESIGN.md §16): inside a collective the
      // engine pins one shared id per op (ScopedFlowContext) so every
      // constituent message joins the op's distributed trace; otherwise
      // each message gets its own span id and opens its own flow here.
      // With tracing off this branch never runs, trace_ctx stays 0, and
      // the packet's modeled wire size is unchanged.
      const std::uint64_t shared = obs::Tracer::flow_context();
      pkt.match.trace_ctx =
          shared != 0 ? shared : obs::Tracer::next_span_id();
      if (shared == 0) {
        OBS_FLOW_START("pml.msg", "core", pkt.match.trace_ctx, bytes);
      }
    }
    const bool need_ext = comm->uses_excid && peer.remote_cid < 0;
    if (need_ext) {
      // First messages on a sessions-derived communicator: prepend the
      // exCID header with our local CID; keep doing so until the ACK lands.
      pkt.kind = eager ? fabric::PacketKind::eager_ext
                       : fabric::PacketKind::rndv_rts_ext;
      pkt.match.cid = comm->cid;
      pkt.ext.excid_hi = comm->excid_space.id().hi;
      pkt.ext.excid_lo = comm->excid_space.id().lo;
      pkt.ext.sender_cid = comm->cid;
      ++comm->ext_headers_sent;
      OBS_INSTANT_ARG("pml.ext_header", "core", comm->ext_headers_sent);
      base::precise_delay(cost.ext_send_overhead_ns);
    } else {
      pkt.kind = eager ? fabric::PacketKind::eager : fabric::PacketKind::rndv_rts;
      pkt.match.cid = comm->uses_excid
                          ? static_cast<std::uint16_t>(peer.remote_cid)
                          : comm->cid;
      ++comm->fast_headers_sent;
    }
    if (eager) {
      pkt.payload = std::move(payload);
      if (sync) {
        req->kind = RequestImpl::Kind::send_sync;
        req->token = new_token_locked();
        pkt.token = req->token;
        send_tokens[req->token] = req;
      } else {
        req->kind = RequestImpl::Kind::send_eager;
      }
    } else {
      req->kind = RequestImpl::Kind::send_rndv;
      req->staged = std::move(payload);
      req->token = new_token_locked();
      pkt.token = req->token;
      pkt.advertised_size = bytes;
      send_tokens[req->token] = req;
    }
  }

  proc.cluster().fabric().send(std::move(pkt));
  if (req->kind == RequestImpl::Kind::send_eager) {
    req->finish(Status{});  // buffered: locally complete once on the wire
  }
  return req;
}

RequestPtr ProcState::irecv_impl(const std::shared_ptr<CommState>& comm,
                                 void* buf, int count, const Datatype& dt,
                                 int src, int tag) {
  if (src != any_source && (src < 0 || src >= comm->size())) {
    throw Error(ErrClass::rank, "receive source out of range");
  }
  RequestPtr req = make_request();
  req->ps = this;
  req->comm = comm.get();
  req->kind = RequestImpl::Kind::recv;
  req->buf = buf;
  req->capacity = count;
  req->dt = dt;
  req->src = src;
  req->tag = tag;

  OBS_SPAN("pml.recv.post", "core");
  std::lock_guard lock(mu);
  if (comm->revoked && !is_ft_tag(tag)) {
    throw Error(ErrClass::comm_revoked, "communicator has been revoked");
  }
  if (!match_against_unexpected(*comm, req)) {
    req->post_stamp = comm->next_match_stamp++;
    comm->posted.insert(req);
  }
  return req;
}

Status ProcState::blocking_recv(const std::shared_ptr<CommState>& comm,
                                void* buf, int count, const Datatype& dt,
                                int src, int tag) {
  const std::int64_t t0 = base::now_ns();
  RequestPtr req = irecv_impl(comm, buf, count, dt, src, tag);
  progress_until([&] { return req->done(); });
  if (tag >= 0) {
    // User-tag traffic only: the internal tag bands (collectives, ft,
    // ckpt) would swamp the pt2pt latency distribution.
    static obs::Histogram& hist = obs::histogram("pt2pt.recv_ns");
    hist.record(static_cast<std::uint64_t>(base::now_ns() - t0));
  }
  if (req->status.error == ErrClass::rte_proc_failed) {
    // Failure must surface even on internal (collective) receives so a dead
    // rank cannot hang survivors inside a collective.
    throw Error(ErrClass::rte_proc_failed,
                "peer process failed during receive");
  }
  if (req->status.error == ErrClass::comm_revoked) {
    throw Error(ErrClass::comm_revoked, "communicator revoked during receive");
  }
  return req->status;
}

void ProcState::blocking_send(const std::shared_ptr<CommState>& comm,
                              const void* buf, int count, const Datatype& dt,
                              int dst, int tag, bool sync) {
  const std::int64_t t0 = base::now_ns();
  RequestPtr req = isend_impl(comm, buf, count, dt, dst, tag, sync);
  progress_until([&] { return req->done(); });
  if (tag >= 0) {
    static obs::Histogram& hist = obs::histogram("pt2pt.send_ns");
    hist.record(static_cast<std::uint64_t>(base::now_ns() - t0));
  }
  if (req->status.error == ErrClass::rte_proc_failed) {
    throw Error(ErrClass::rte_proc_failed, "peer process failed during send");
  }
  if (req->status.error == ErrClass::comm_revoked) {
    throw Error(ErrClass::comm_revoked, "communicator revoked during send");
  }
}

}  // namespace sessmpi::detail
