// Nonblocking collectives: a binomial-tree Ibarrier advanced by the
// progress engine. QUO's low-perturbation quiescence loops over
// Ibarrier-test/nanosleep, exactly as the paper's prototype emulated
// MPI_Barrier() for 2MESH (§IV-E).

#include "detail/state.hpp"

namespace sessmpi::detail {

namespace {

/// Binomial-tree neighbors of `rank` in a tree of `size` rooted at 0.
void tree_neighbors(int rank, int size, int* parent, std::vector<int>* children) {
  *parent = -1;
  int mask = 1;
  while (mask < size) {
    if ((rank & mask) != 0) {
      *parent = rank & ~mask;
      break;
    }
    const int child = rank | mask;
    if (child < size) {
      children->push_back(child);
    }
    mask <<= 1;
  }
}

}  // namespace

RequestPtr make_ibarrier(ProcState& ps, const std::shared_ptr<CommState>& comm) {
  RequestPtr req = ps.make_request();
  req->ps = &ps;
  req->comm = comm.get();
  req->kind = RequestImpl::Kind::nbc;
  auto nbc = std::make_unique<NbcOp>();
  nbc->comm = comm;

  int tag;
  {
    std::lock_guard lock(ps.mu);
    tag = internal_tag(comm->coll_seq++, 0);
  }
  nbc->tag = tag;
  tree_neighbors(comm->myrank, comm->size(), &nbc->parent, &nbc->children);
  nbc->scratch.resize(nbc->children.size() + 1);

  // Post fan-in receives from every child (empty messages; one byte of
  // capacity so a poison marker is not truncated away).
  for (std::size_t i = 0; i < nbc->children.size(); ++i) {
    nbc->child_recvs.push_back(ps.irecv_impl(comm, &nbc->scratch[i], 1,
                                             Datatype::byte(),
                                             nbc->children[i], tag));
  }
  req->nbc = std::move(nbc);

  {
    std::lock_guard lock(ps.mu);
    ps.nbc_live.push_back(req);
    ps.advance_nbc_locked();  // a leaf can fire its fan-in send immediately
  }
  return req;
}

namespace {

/// A barrier message with a payload is a poison marker: a peer observed a
/// failure and is aborting the operation tree-wide.
bool is_poisoned(const RequestPtr& r) {
  return r && r->done() &&
         (r->status.error == ErrClass::rte_proc_failed ||
          r->status.count_bytes > 0);
}

}  // namespace

void ProcState::advance_nbc_locked() {
  for (auto it = nbc_live.begin(); it != nbc_live.end();) {
    RequestImpl& req = **it;
    NbcOp& op = *req.nbc;
    bool finished = false;

    // Schedule-driven NBC (src/coll): the closure owns the whole state
    // machine, including failure handling.
    if (op.advance) {
      if (op.advance(*this, req)) {
        it = nbc_live.erase(it);
      } else {
        ++it;
      }
      continue;
    }

    // A failed peer completes sub-requests with rte_proc_failed (sweep) or
    // a poison marker (tree propagation); either way the barrier aborts at
    // this rank and the abort floods the remaining tree edges so no
    // survivor keeps waiting on a live-but-aborted neighbor.
    bool failed = false;
    std::vector<bool> child_poisoned(op.child_recvs.size(), false);
    for (std::size_t c = 0; c < op.child_recvs.size(); ++c) {
      child_poisoned[c] = is_poisoned(op.child_recvs[c]);
      failed = failed || child_poisoned[c];
    }
    const bool parent_poisoned = is_poisoned(op.parent_recv);
    failed = failed || parent_poisoned;
    if (failed) {
      // Flood the abort down the remaining tree edges — but never back the
      // edge the poison arrived on: that rank already aborted and freed its
      // receives, so a reply would become a stale packet able to cross-match
      // a recycled CID later.
      static const std::byte kPoison{1};
      fabric::Fabric& fab = proc.cluster().fabric();
      if (op.parent >= 0 && !parent_poisoned &&
          !fab.is_failed(op.comm->global_of(op.parent))) {
        isend_impl(op.comm, &kPoison, 1, Datatype::byte(), op.parent, op.tag,
                   false);
      }
      for (std::size_t c = 0; c < op.children.size(); ++c) {
        const int child = op.children[c];
        const bool skip =
            (c < child_poisoned.size() && child_poisoned[c]) ||
            fab.is_failed(op.comm->global_of(child));
        if (!skip) {
          isend_impl(op.comm, &kPoison, 1, Datatype::byte(), child, op.tag,
                     false);
        }
      }
      // Retire our still-posted sub-receives so stray tree messages for
      // this operation cannot match them later.
      op.comm->posted.erase_if([&](const RequestPtr& posted) {
        if (posted == op.parent_recv) {
          return true;
        }
        for (const RequestPtr& r : op.child_recvs) {
          if (posted == r) {
            return true;
          }
        }
        return false;
      });
      Status st;
      st.error = ErrClass::rte_proc_failed;
      req.finish(st);
      it = nbc_live.erase(it);
      continue;
    }

    if (op.phase == NbcOp::Phase::fanin) {
      bool children_done = true;
      for (const RequestPtr& r : op.child_recvs) {
        if (!r->done()) {
          children_done = false;
          break;
        }
      }
      if (children_done) {
        if (op.parent >= 0) {
          // Notify parent, then wait for the release wave.
          isend_impl(op.comm, nullptr, 0, Datatype::byte(), op.parent, op.tag,
                     /*sync=*/false);
          op.parent_recv =
              irecv_impl(op.comm, &op.scratch[op.children.size()], 1,
                         Datatype::byte(), op.parent, op.tag);
          op.phase = NbcOp::Phase::waiting_parent;
        } else {
          // Root: start the release wave.
          for (int child : op.children) {
            isend_impl(op.comm, nullptr, 0, Datatype::byte(), child, op.tag,
                       /*sync=*/false);
          }
          op.phase = NbcOp::Phase::done;
          finished = true;
        }
      }
    }
    if (op.phase == NbcOp::Phase::waiting_parent && op.parent_recv->done()) {
      for (int child : op.children) {
        isend_impl(op.comm, nullptr, 0, Datatype::byte(), child, op.tag,
                   /*sync=*/false);
      }
      op.phase = NbcOp::Phase::done;
      finished = true;
    }

    if (finished) {
      req.finish(Status{});
      it = nbc_live.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sessmpi::detail
