#pragma once

// Internal per-process MPI state. One ProcState hangs off each simulated
// process; it owns the ob1-style PML tables (local-CID communicator array,
// exCID hash, rendezvous token maps, matching queues), the session/world
// bookkeeping, and the progress engine.
//
// Thread-safety: a process may run several sessions from several threads
// (the Sessions motivation), so all table mutations and matching happen
// under a per-process recursive mutex. Blocking waits release the mutex
// while parked on the endpoint inbox.

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "sessmpi/base/slot_allocator.hpp"
#include "sessmpi/comm.hpp"
#include "sessmpi/constants.hpp"
#include "sessmpi/excid.hpp"
#include "sessmpi/fabric/fabric.hpp"
#include "sessmpi/obs/postmortem.hpp"
#include "sessmpi/session.hpp"
#include "sessmpi/sim/cluster.hpp"

namespace sessmpi::detail {

struct CommState;
struct ProcState;
struct NbcOp;

struct RequestImpl {
  enum class Kind : std::uint8_t { send_eager, send_sync, send_rndv, recv, nbc };

  Kind kind = Kind::send_eager;
  ProcState* ps = nullptr;
  CommState* comm = nullptr;
  std::atomic<bool> complete{false};
  Status status{};

  // Receive bookkeeping.
  void* buf = nullptr;
  int capacity = 0;  ///< max elements
  std::optional<Datatype> dt;
  int src = any_source;
  int tag = any_tag;

  // Send bookkeeping (rendezvous payload staged until CTS; sync token).
  fabric::Payload staged;
  std::uint64_t token = 0;
  int dst = -1;

  /// Monotonic posting order within the owning comm (CommState stamp
  /// counter); bin-vs-wildcard match arbitration compares these.
  std::uint64_t post_stamp = 0;

  // Matched rendezvous source/tag (set when the RTS matches; the Status is
  // finalized when the bulk data arrives).
  int rndv_source = -1;
  int rndv_tag = -1;

  // Nonblocking-collective state machine (Ibarrier).
  std::unique_ptr<NbcOp> nbc;

  void finish(Status st) {
    status = st;
    complete.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool done() const noexcept {
    return complete.load(std::memory_order_acquire);
  }
};

using RequestPtr = std::shared_ptr<RequestImpl>;

/// Nonblocking binomial-tree barrier: fan-in to rank 0, fan-out. Advanced
/// from the progress engine; used by QUO's low-perturbation quiescence.
struct NbcOp {
  enum class Phase : std::uint8_t { fanin, waiting_parent, done };
  Phase phase = Phase::fanin;
  int tag = 0;
  std::shared_ptr<CommState> comm;
  std::vector<RequestPtr> child_recvs;  // fan-in messages expected
  RequestPtr parent_recv;               // fan-out release from parent
  std::vector<int> children;            // comm ranks
  int parent = -1;
  /// One byte of receive capacity per tree edge: normal tree messages are
  /// empty; a 1-byte payload is the failure poison marker.
  std::vector<std::byte> scratch;

  /// Generic schedule hook (src/coll NBC schedules: ibcast, iallreduce).
  /// When set, advance_nbc_locked calls this instead of the barrier state
  /// machine (mu held); return true once the request was finished.
  std::function<bool(ProcState&, RequestImpl&)> advance;
};

/// Start a nonblocking binomial barrier on `comm` (MPI_Ibarrier).
RequestPtr make_ibarrier(ProcState& ps, const std::shared_ptr<CommState>& comm);

// ---------------------------------------------------------------------------
// O(1) matching structures (DESIGN.md §12)
// ---------------------------------------------------------------------------
//
// Both queues replace the historical single posting-ordered deque with
// per-source bins: a deque per exact tag plus (posted side) a per-source
// any-tag deque, and a structurally identical wildcard bin for ANY_SOURCE
// posts. Entries carry a monotonic stamp (CommState::next_match_stamp)
// assigned in posting/arrival order; matching takes the minimum stamp
// across the (at most four) candidate queue heads, which is equivalent to
// scanning one posting-ordered list — every matching entry lives in
// exactly one candidate queue and each queue is stamp-sorted, so the min
// over heads is the global earliest match. Expected-depth matching drops
// from O(posted) to O(1) amortized; wildcard arbitration touches only
// queue *heads*, never every entry. take_match/peek_match live in pml.cpp
// so they can feed the pml.match_bin_hits / pml.wildcard_scans counters.

/// Posted receives, binned by source rank and tag.
class PostedQueues {
 public:
  /// `req->post_stamp` must be assigned (monotonic per comm) beforehand.
  void insert(const RequestPtr& req);

  /// Remove and return the earliest-posted request matching an arrival from
  /// comm rank `src` with tag `tag`, or nullptr. O(1): compares the stamps
  /// of up to four candidate queue heads (exact/any-tag x binned/wildcard).
  RequestPtr take_match(int src, int tag);

  /// Remove every request satisfying `pred` (relative order preserved).
  template <class Pred>
  void erase_if(Pred&& pred) {
    for (auto bit = bins_.begin(); bit != bins_.end();) {
      prune_bin(bit->second, pred);
      bit = bit->second.empty() ? bins_.erase(bit) : std::next(bit);
    }
    prune_bin(wildcard_, pred);
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  struct Bin {
    std::unordered_map<int, std::deque<RequestPtr>> by_tag;  ///< exact tag
    std::deque<RequestPtr> any_tag;                          ///< ANY_TAG posts
    [[nodiscard]] bool empty() const noexcept {
      return by_tag.empty() && any_tag.empty();
    }
  };

  template <class Pred>
  void prune_bin(Bin& bin, Pred& pred) {
    for (auto tit = bin.by_tag.begin(); tit != bin.by_tag.end();) {
      size_ -= std::erase_if(tit->second, pred);
      tit = tit->second.empty() ? bin.by_tag.erase(tit) : std::next(tit);
    }
    size_ -= std::erase_if(bin.any_tag, pred);
  }

  std::unordered_map<int, Bin> bins_;  ///< keyed by source comm rank
  Bin wildcard_;                       ///< ANY_SOURCE posts
  std::size_t size_ = 0;
};

/// Unmatched arrivals, binned by source rank and (exact) tag.
class UnexpectedQueues {
 public:
  struct Stamped {
    fabric::Packet pkt;
    std::uint64_t stamp = 0;  ///< arrival order within the comm
  };

  void insert(fabric::Packet&& pkt, std::uint64_t stamp);

  /// Remove and return the earliest-arrived packet a receive posted as
  /// (src, tag) would match; nullopt if none.
  std::optional<fabric::Packet> take_match(int src, int tag);

  /// Earliest-arrived matching packet without removing it (probe/iprobe).
  [[nodiscard]] const fabric::Packet* peek_match(int src, int tag) const;

  /// Remove every packet satisfying `pred` (relative order preserved).
  template <class Pred>
  void erase_if(Pred&& pred) {
    for (auto bit = bins_.begin(); bit != bins_.end();) {
      Bin& bin = bit->second;
      for (auto tit = bin.by_tag.begin(); tit != bin.by_tag.end();) {
        size_ -= std::erase_if(
            tit->second, [&](const Stamped& s) { return pred(s.pkt); });
        tit = tit->second.empty() ? bin.by_tag.erase(tit) : std::next(tit);
      }
      bit = bin.by_tag.empty() ? bins_.erase(bit) : std::next(bit);
    }
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  struct Bin {
    std::unordered_map<int, std::deque<Stamped>> by_tag;
  };
  using BinMap = std::unordered_map<int, Bin>;

  /// The queue whose head is the earliest-stamped match for (src, tag);
  /// feeds both take (erasing) and peek (const) paths.
  struct Loc {
    BinMap::iterator bin;
    std::unordered_map<int, std::deque<Stamped>>::iterator tq;
  };
  std::optional<Loc> locate_match(int src, int tag);

  BinMap bins_;  ///< keyed by source comm rank
  std::size_t size_ = 0;
};

struct CommState {
  ProcState* ps = nullptr;
  Group grp = Group::empty();
  int myrank = -1;            ///< my rank within grp
  std::uint16_t cid = 0;      ///< local 16-bit array index
  ExCidSpace excid_space = ExCidSpace::builtin(0);
  bool uses_excid = false;    ///< sessions wire protocol (ext header + ACK)
  CidMethod method = CidMethod::excid;
  std::string comm_name;
  Errhandler errh = Errhandler::errors_are_fatal();
  mutable AttributeStore attrs;
  std::uint32_t coll_seq = 0;  ///< collective ordinal (tags derive from it)
  bool freed = false;

  // --- fault tolerance (ULFM-style) ---------------------------------------
  bool revoked = false;         ///< revoke() observed: non-FT ops poisoned
  std::uint32_t ft_seq = 0;     ///< FT collective ordinal (agree/shrink tags)
  std::uint32_t ckpt_seq = 0;   ///< checkpoint collective ordinal (src/ckpt)
  std::set<int> acked;          ///< comm ranks whose failure was acknowledged

  /// Revocation observers: hooks attached to this communicator that fire
  /// exactly once, on the thread that first observes the revocation (local
  /// revoke() call or remote revoke flood), after pending operations were
  /// poisoned. src/ckpt attaches one per in-flight save so a revoked comm
  /// invalidates the staged epoch instead of committing over it.
  std::map<int, std::function<void()>> revoke_observers;
  int next_revoke_observer = 0;

  struct Peer {
    int remote_cid = -1;   ///< peer's local CID once learned (ACK/ext header)
    bool ack_sent = false; ///< we already told this peer our CID
    bool endpoint_resolved = false;  ///< lazy-modex first-contact fetch done
    /// Per-(comm,peer) wire sequence numbers (MatchHeader::seq). The fabric's
    /// reliability sublayer guarantees exactly-once in-order delivery per
    /// (src,dst) flow; the matching engine cross-checks that guarantee by
    /// asserting recv_seq advances by exactly 1 per matched-path arrival
    /// (counter "pml.seq_anomalies" on violation).
    std::uint32_t send_seq = 0;
    std::uint32_t recv_seq = 0;
  };
  /// Sparse peer table keyed by comm rank, populated on first contact. A
  /// 16k-member communicator whose rank only ever talks to a few neighbors
  /// holds a handful of entries — the dense n-entry vector per rank was
  /// O(n^2) memory host-wide, the other half of the eager-modex problem.
  std::unordered_map<int, Peer> peers;
  Peer& peer_at(int r) { return peers[r]; }
  [[nodiscard]] const Peer* peer_if(int r) const {
    auto it = peers.find(r);
    return it == peers.end() ? nullptr : &it->second;
  }

  /// Monotonic stamp shared by posted receives and unexpected arrivals
  /// (each structure only ever compares stamps internally).
  std::uint64_t next_match_stamp = 1;
  PostedQueues posted;        ///< posted receives, binned
  UnexpectedQueues unexpected;  ///< unmatched arrivals, binned

  // Wire statistics (Fig. 5 benchmarks read these).
  std::uint64_t ext_headers_sent = 0;
  std::uint64_t fast_headers_sent = 0;

  // --- collective engine (src/coll) ----------------------------------------
  /// Cached topology plan + on-node shared region, both opaque here so core
  /// has no compile-time dependency on coll. Built lazily on the first
  /// collective, dropped on revoke (membership change invalidation) — a
  /// post-shrink communicator is a new CommState and rebuilds from scratch.
  std::shared_ptr<void> coll_plan;

  [[nodiscard]] base::Rank global_of(int commrank) const {
    return grp.global_of(commrank);
  }
  [[nodiscard]] int size() const noexcept { return grp.size(); }
};

struct SessionState {
  ProcState* ps = nullptr;
  int id = 0;
  bool finalized = false;
  ThreadLevel level = ThreadLevel::multiple;
  Info info_obj;  // snapshot of the init info
  Errhandler errh = Errhandler::errors_return();
  mutable AttributeStore attrs;
};

/// Freelist of uniform-size raw blocks recycled across RequestImpl
/// shared_ptr control blocks. std::allocate_shared fuses object + control
/// block into one allocation of a fixed size, so a simple single-size pool
/// removes the per-message make_shared heap churn on the pt2pt path. Held
/// by shared_ptr from both the ProcState and every live Request's deleter,
/// so user-held requests may safely outlive the process they came from.
struct RequestPool {
  static constexpr std::size_t kMaxCached = 4096;
  std::mutex mu;
  std::size_t block_size = 0;  ///< fixed on first allocation
  std::vector<void*> blocks;
  ~RequestPool() {
    for (void* b : blocks) {
      ::operator delete(b);
    }
  }
};

template <class T>
class RequestPoolAlloc {
 public:
  using value_type = T;

  explicit RequestPoolAlloc(std::shared_ptr<RequestPool> pool)
      : pool_(std::move(pool)) {}
  template <class U>
  RequestPoolAlloc(const RequestPoolAlloc<U>& other) : pool_(other.pool_) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    {
      std::lock_guard lock(pool_->mu);
      if (pool_->block_size == 0) {
        pool_->block_size = bytes;
      }
      if (bytes == pool_->block_size && !pool_->blocks.empty()) {
        void* b = pool_->blocks.back();
        pool_->blocks.pop_back();
        return static_cast<T*>(b);
      }
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
    {
      std::lock_guard lock(pool_->mu);
      if (bytes == pool_->block_size &&
          pool_->blocks.size() < RequestPool::kMaxCached) {
        pool_->blocks.push_back(p);
        return;
      }
    }
    ::operator delete(p);
  }

  template <class U>
  [[nodiscard]] bool operator==(const RequestPoolAlloc<U>& other) const noexcept {
    return pool_ == other.pool_;
  }

 private:
  template <class U>
  friend class RequestPoolAlloc;

  std::shared_ptr<RequestPool> pool_;
};

struct ProcState {
  explicit ProcState(sim::Process& p);

  sim::Process& proc;
  base::CostModel cost;
  std::recursive_mutex mu;

  // Configuration.
  CidMethod method = CidMethod::excid;
  bool excid_derive = true;

  // --- PML (ob1) tables ---------------------------------------------------
  base::SlotAllocator cid_alloc{kCidSpace};
  std::vector<std::shared_ptr<CommState>> comm_by_cid;  // grows on demand
  std::unordered_map<ExCid, std::shared_ptr<CommState>, ExCidHash> comm_by_excid;
  std::vector<fabric::Packet> orphans;  ///< ext packets for not-yet-known exCIDs
  std::unordered_map<std::uint64_t, RequestPtr> send_tokens;
  std::map<std::pair<base::Rank, std::uint64_t>, RequestPtr> recv_tokens;
  std::uint64_t next_token = 1;
  std::vector<RequestPtr> nbc_live;
  std::shared_ptr<RequestPool> req_pool = std::make_shared<RequestPool>();

  /// Pool-backed replacement for make_shared<RequestImpl>().
  RequestPtr make_request() {
    return std::allocate_shared<RequestImpl>(RequestPoolAlloc<RequestImpl>(req_pool));
  }

  // --- session / world bookkeeping ----------------------------------------
  bool world_init = false;
  std::shared_ptr<CommState> world;
  std::shared_ptr<CommState> self;
  int next_session_id = 1;
  int live_sessions = 0;
  std::uint64_t pgcids = 0;  ///< PGCIDs acquired by this process

  // --- fault tolerance ------------------------------------------------------
  /// Global ranks whose failure was announced through PMIx events (the
  /// fabric's failed flags are the ground truth; this records that the
  /// runtime told *us*, which is what get_failed() reports).
  std::set<base::Rank> failure_notices;

  /// Memoized pset->group resolution (DESIGN.md §15), keyed by the runtime
  /// failure epoch at resolution time: a re-query after a failure rebuilds
  /// (fault-aware membership), steady-state repeats are O(1) and every rank
  /// shares the runtime's single snapshot vector via Group::of_shared.
  std::map<std::string, std::pair<std::uint64_t, Group>> pset_groups;

  // --- observability --------------------------------------------------------
  /// Flight-recorder hook (DESIGN.md §16): dumps this rank's communicator
  /// and in-flight request tables into a postmortem bundle. Registered in
  /// the constructor; the RAII member unregisters at teardown.
  obs::PostmortemSection pm_section;

  // --- access ----------------------------------------------------------------
  /// ProcState of a simulated process (created on demand).
  static ProcState& of(sim::Process& p);
  /// ProcState of the calling rank thread.
  static ProcState& current();
  /// PMIx client (valid while the pmix subsystem is held).
  pmix::PmixClient& pmix();

  // --- lifecycle -----------------------------------------------------------
  void ensure_subsystems_defined();
  /// Acquire the MPI instance (mca -> pmix -> pml -> instance chain).
  void acquire_instance();
  void release_instance();

  // --- progress engine -------------------------------------------------------
  /// One pass: drain the inbox (optionally blocking briefly) and advance
  /// nonblocking collectives. Idle passes also sweep for operations pinned
  /// on failed peers and complete them with rte_proc_failed (§II-C: a
  /// failure must not hang survivors).
  void progress_pass(bool block);
  /// Drive progress until `done()` returns true; aborts with
  /// Error(proc_aborted) if the cluster run is aborting.
  void progress_until(const std::function<bool()>& done);
  void dispatch(fabric::Packet&& pkt);

  // --- pt2pt primitives (comm ranks; callers hold no lock) -----------------
  /// Lazy modex (DESIGN.md §15): make sure dst's endpoint blob has been
  /// fetched and cached; first contact pays one dmodex get, repeats are
  /// free. Throws Error(rte_proc_failed) if the peer died before it ever
  /// published (negative cache) so a send cannot hang on a void peer.
  void resolve_endpoint(const std::shared_ptr<CommState>& comm, int dst);
  RequestPtr isend_impl(const std::shared_ptr<CommState>& comm, const void* buf,
                        int count, const Datatype& dt, int dst, int tag,
                        bool sync);
  RequestPtr irecv_impl(const std::shared_ptr<CommState>& comm, void* buf,
                        int count, const Datatype& dt, int src, int tag);
  Status blocking_recv(const std::shared_ptr<CommState>& comm, void* buf,
                       int count, const Datatype& dt, int src, int tag);
  void blocking_send(const std::shared_ptr<CommState>& comm, const void* buf,
                     int count, const Datatype& dt, int dst, int tag,
                     bool sync);

  // --- communicator registration --------------------------------------------
  /// Create and register a CommState. `fixed_cid` pins the local CID (world
  /// builtins, consensus results); otherwise the lowest free slot is used.
  /// `already_claimed` marks a fixed CID the caller reserved beforehand
  /// (the consensus algorithm claims during agreement).
  std::shared_ptr<CommState> register_comm(const Group& grp,
                                           ExCidSpace space, bool uses_excid,
                                           std::optional<std::uint16_t> fixed_cid,
                                           bool already_claimed = false);
  void unregister_comm(CommState& comm);

  std::uint64_t new_token_locked() { return next_token++; }

  /// Advance all live nonblocking collectives (mu held by caller).
  void advance_nbc_locked();

  /// Revoke `comm` (mu held): mark it, complete every pending non-FT
  /// operation with comm_revoked, and — when `flood` — reliably broadcast
  /// the revocation to all live peers (each receiver re-floods once, so the
  /// wave survives the initiator dying mid-broadcast). `trace_ctx` is the
  /// causal trace context of the incoming revoke packet (0 when we are the
  /// initiator); the re-flood carries the same id so the whole wave renders
  /// as one distributed trace.
  void revoke_comm_locked(const std::shared_ptr<CommState>& comm, bool flood,
                          std::uint64_t trace_ctx = 0);

 private:
  // Matching internals; all called with mu held.
  /// Complete requests whose specific peer has failed (mu held).
  void sweep_failed_peers_locked();

  RequestPtr match_posted(CommState& comm, const fabric::Packet& pkt);
  bool match_against_unexpected(CommState& comm, const RequestPtr& req);
  void handle_incoming(const std::shared_ptr<CommState>& comm,
                       fabric::Packet&& pkt);
  void deliver(CommState& comm, const RequestPtr& req, fabric::Packet&& pkt);
};

/// World Process Model object construction/teardown (defined in world.cpp;
/// wired into the "world" subsystem).
void init_world_objects(ProcState& ps);
void teardown_world_objects(ProcState& ps);

/// Tag used for round `round` of internal collective number `seq`.
inline int internal_tag(std::uint32_t seq, int round) {
  return kInternalTagBase - static_cast<int>((seq % (1u << 20)) * 32u) - round;
}

/// Checkpoint-protocol tags (src/ckpt partner exchange) live between the
/// internal collective range (bottoms out around -33.6M) and the FT range
/// (-268M): isolated from application and collective traffic, but — unlike
/// FT tags — *not* exempt from revoke poisoning: a checkpoint save caught by
/// a revocation must abort, exactly like application traffic.
inline constexpr int kCkptTagBase = -(1 << 27);

/// Tag for sub-step `sub` of checkpoint collective number `seq`. 1024
/// sub-tags per save: sub 0 = size exchange, sub 1 = partner blob, and
/// sub 2 + stripe*set_size + chunk for the erasure-set chunk traffic
/// (which caps redundancy sets at k + m <= 31 members). The offset tops
/// out at 2^26 - 1, keeping the whole band above kFtTagBase (-2^28).
inline int ckpt_tag(std::uint32_t seq, int sub) {
  return kCkptTagBase - static_cast<int>((seq % (1u << 16)) * 1024u) - sub;
}

/// FT-protocol tags live far below the internal collective tag range
/// (internal_tag bottoms out around -33.6M; this base is -268M), so
/// agreement/shrink traffic can never cross-match application or internal
/// collective messages. Operations tagged at or below kFtTagBase keep
/// working on a revoked communicator — that is how recovery talks over the
/// wreck, exactly ULFM's carve-out for MPI_Comm_agree/shrink.
inline constexpr int kFtTagBase = -(1 << 28);

/// Tag for sub-step `sub` of FT collective number `seq` on a communicator.
inline int ft_tag(std::uint32_t seq, int sub) {
  return kFtTagBase - static_cast<int>((seq % (1u << 20)) * 64u) - sub;
}

/// True for tags in the FT-protocol space (exempt from revoke poisoning).
inline bool is_ft_tag(int tag) { return tag <= kFtTagBase; }

/// True when `posted_tag`/`posted_src` accept a packet with (src, tag).
inline bool tags_match(int posted_src, int posted_tag, int src, int tag) {
  const bool src_ok = posted_src == any_source || posted_src == src;
  // Wildcard tags never match internal (negative) collective-context tags.
  const bool tag_ok = posted_tag == tag || (posted_tag == any_tag && tag >= 0);
  return src_ok && tag_ok;
}

}  // namespace sessmpi::detail
