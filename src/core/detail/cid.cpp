#include "detail/cid.hpp"

#include <algorithm>

#include "sessmpi/obs/trace.hpp"

namespace sessmpi::detail {

namespace {

int position_of(const std::vector<int>& participants, int commrank) {
  auto it = std::find(participants.begin(), participants.end(), commrank);
  if (it == participants.end()) {
    throw Error(ErrClass::intern, "caller not in consensus participant list");
  }
  return static_cast<int>(std::distance(participants.begin(), it));
}

}  // namespace

std::array<std::int64_t, 2> subset_allreduce_max2(
    ProcState& ps, const std::shared_ptr<CommState>& parent,
    const std::vector<int>& participants, std::array<std::int64_t, 2> value,
    int base_tag) {
  const int n = static_cast<int>(participants.size());
  const int me = position_of(participants, parent->myrank);
  const Datatype& dt = Datatype::int64();

  // Binomial fan-in to position 0 with element-wise max.
  int mask = 1;
  while (mask < n) {
    if ((me & mask) != 0) {
      const int dst_pos = me & ~mask;
      ps.blocking_send(parent, value.data(), 2, dt,
                       participants[static_cast<std::size_t>(dst_pos)],
                       base_tag, /*sync=*/false);
      break;
    }
    const int src_pos = me | mask;
    if (src_pos < n) {
      std::array<std::int64_t, 2> incoming{};
      ps.blocking_recv(parent, incoming.data(), 2, dt,
                       participants[static_cast<std::size_t>(src_pos)],
                       base_tag);
      value[0] = std::max(value[0], incoming[0]);
      value[1] = std::max(value[1], incoming[1]);
    }
    mask <<= 1;
  }

  // Binomial fan-out of the result from position 0.
  if (me != 0) {
    int parent_mask = 1;
    while ((me & parent_mask) == 0) {
      parent_mask <<= 1;
    }
    ps.blocking_recv(parent, value.data(), 2, dt,
                     participants[static_cast<std::size_t>(me & ~parent_mask)],
                     base_tag - 1);
    mask = parent_mask;  // forward only to sub-tree below our join level
  } else {
    mask = 1;
    while (mask < n) {
      mask <<= 1;
    }
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    const int child = me | m;
    if (child < n && child != me) {
      ps.blocking_send(parent, value.data(), 2, dt,
                       participants[static_cast<std::size_t>(child)],
                       base_tag - 1, /*sync=*/false);
    }
  }
  return value;
}

std::uint16_t consensus_cid(ProcState& ps,
                            const std::shared_ptr<CommState>& parent,
                            const std::vector<int>& participants, int base_tag,
                            int* rounds_out) {
  OBS_SPAN("cid.consensus", "core");
  std::uint32_t start = 0;
  int round = 0;
  for (;;) {
    // Reserve the proposal before agreeing on it: unanimity then means the
    // slot is already ours, so no thread of this process can race us between
    // the allreduce and the claim (which would desynchronize participants).
    std::uint32_t proposal;
    {
      std::lock_guard lock(ps.mu);
      auto lowest = ps.cid_alloc.lowest_free(start);
      if (!lowest) {
        throw Error(ErrClass::other, "CID space exhausted during consensus");
      }
      proposal = *lowest;
      ps.cid_alloc.claim(proposal);
    }
    const auto agreed = subset_allreduce_max2(
        ps, parent, participants,
        {static_cast<std::int64_t>(proposal),
         -static_cast<std::int64_t>(proposal)},
        base_tag - 2 * round);
    ++round;
    const auto max_prop = static_cast<std::uint32_t>(agreed[0]);
    const bool unanimous = agreed[0] == -agreed[1];
    if (unanimous) {
      if (rounds_out != nullptr) {
        *rounds_out = round;
      }
      return static_cast<std::uint16_t>(max_prop);
    }
    {
      std::lock_guard lock(ps.mu);
      ps.cid_alloc.release(proposal);
    }
    start = max_prop;
  }
}

}  // namespace sessmpi::detail
