// World Process Model: MPI_Init-style initialization built on top of the
// restructured session machinery (paper §III-B5). init() acquires the
// "world" subsystem, which pulls the full instance chain (MCA component
// load -> PMIx client -> PML) and then constructs the built-in COMM_WORLD /
// COMM_SELF objects with their reserved CIDs.

#include "detail/state.hpp"
#include "sessmpi/base/clock.hpp"
#include "sessmpi/mpi.hpp"

namespace sessmpi {

using detail::ProcState;

namespace detail {

void init_world_objects(ProcState& ps) {
  // Endpoint discovery: our blob was published when the pmix subsystem came
  // up (add_procs is local-only in modern Open MPI (§III-B1); the fence is
  // what remains globally synchronizing). Under eager modex the fence
  // collects data and every peer blob is prefetched behind it — the classic
  // full modex, O(n) per rank. Under lazy modex (the default) the fence is
  // a pure barrier and blobs are fetched on first contact (DESIGN.md §15).
  pmix::PmixClient& client = ps.pmix();
  const bool eager = pmix::modex_mode() == pmix::ModexMode::eager;
  const auto& topo = ps.proc.cluster().topology();
  std::vector<pmix::ProcId> world_procs(static_cast<std::size_t>(topo.size()));
  for (int i = 0; i < topo.size(); ++i) {
    world_procs[static_cast<std::size_t>(i)] = i;
  }
  auto st = client.fence(world_procs, /*collect_data=*/eager);
  if (!st.ok()) {
    throw Error(st.cls, "world modex fence failed");
  }
  if (eager) {
    client.prefetch_peer_info(world_procs, "pml.endpoint");
  }

  std::vector<base::Rank> everyone = world_procs;
  base::precise_delay(ps.cost.world_objects_init_ns);
  ps.world = ps.register_comm(Group::of(everyone), ExCidSpace::builtin(0),
                              /*uses_excid=*/false, std::uint16_t{0});
  ps.world->comm_name = "MPI_COMM_WORLD";
  ps.self = ps.register_comm(Group::of({ps.proc.rank()}),
                             ExCidSpace::builtin(1),
                             /*uses_excid=*/false, std::uint16_t{1});
  ps.self->comm_name = "MPI_COMM_SELF";
  ps.world_init = true;
}

void teardown_world_objects(ProcState& ps) {
  if (ps.world) {
    ps.unregister_comm(*ps.world);
    ps.world.reset();
  }
  if (ps.self) {
    ps.unregister_comm(*ps.self);
    ps.self.reset();
  }
  ps.world_init = false;
}

}  // namespace detail

void init(ThreadLevel /*level*/) {
  ProcState& ps = ProcState::current();
  {
    std::lock_guard lock(ps.mu);
    if (ps.world_init) {
      throw Error(ErrClass::other, "MPI already initialized (world model)");
    }
  }
  ps.proc.subsystems().acquire("world");
  {
    std::lock_guard lock(ps.mu);
    ++ps.live_sessions;  // the internal session backing the world model
  }
}

void finalize() {
  ProcState& ps = ProcState::current();
  {
    std::lock_guard lock(ps.mu);
    if (!ps.world_init) {
      throw Error(ErrClass::other, "MPI not initialized (world model)");
    }
    --ps.live_sessions;
  }
  ps.proc.subsystems().release("world");
}

bool initialized() {
  ProcState& ps = ProcState::current();
  std::lock_guard lock(ps.mu);
  return ps.world_init;
}

Communicator comm_world() {
  ProcState& ps = ProcState::current();
  std::lock_guard lock(ps.mu);
  if (!ps.world) {
    throw Error(ErrClass::session, "comm_world before init()");
  }
  return detail_wrap(ps.world);
}

Communicator comm_self() {
  ProcState& ps = ProcState::current();
  std::lock_guard lock(ps.mu);
  if (!ps.self) {
    throw Error(ErrClass::session, "comm_self before init()");
  }
  return detail_wrap(ps.self);
}

void set_cid_method(CidMethod method) {
  ProcState& ps = ProcState::current();
  std::lock_guard lock(ps.mu);
  ps.method = method;
}

CidMethod cid_method() {
  ProcState& ps = ProcState::current();
  std::lock_guard lock(ps.mu);
  return ps.method;
}

void set_excid_derivation(bool enabled) {
  ProcState& ps = ProcState::current();
  std::lock_guard lock(ps.mu);
  ps.excid_derive = enabled;
}

bool excid_derivation() {
  ProcState& ps = ProcState::current();
  std::lock_guard lock(ps.mu);
  return ps.excid_derive;
}

std::uint64_t pgcids_acquired() {
  ProcState& ps = ProcState::current();
  std::lock_guard lock(ps.mu);
  return ps.pgcids;
}

}  // namespace sessmpi
