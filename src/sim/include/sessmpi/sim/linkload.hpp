#pragma once

// Modeled link-occupancy tracker for ECN marking (DESIGN.md §17).
//
// The cost model charges wire time on sender threads but keeps no shared
// picture of how busy a link is; LinkLoad adds that picture. Every
// transmitted packet charges its serialization time against the modeled
// link it crosses — keyed (src_node, dst_node, rail), since rails are
// distinct physical paths — by advancing a per-link busy-until horizon.
// The charge returns the backlog the packet found queued ahead of it; when
// that exceeds the configured threshold the fabric sets the CE bit in the
// packet's flow header, the receiver echoes ECE in its next flow_ack, and
// the sender's congestion window does a multiplicative decrease without
// waiting for an actual loss.
//
// Intra-node traffic is never marked: shared-memory "links" have no switch
// queue to fill.

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "sessmpi/base/topology.hpp"
#include "sessmpi/fabric/fabric.hpp"

namespace sessmpi::sim {

class LinkLoad {
 public:
  /// Charge `serialization_ns` of wire time to the (src_node,dst_node,rail)
  /// link at time `now_ns`. Returns the backlog (ns of queued traffic) the
  /// packet found when it arrived at the link.
  std::int64_t charge(int src_node, int dst_node, std::uint8_t rail,
                      std::int64_t now_ns, std::int64_t serialization_ns);

 private:
  mutable std::mutex mu_;
  /// busy-until horizon per link key; links materialize on first use.
  std::unordered_map<std::uint64_t, std::int64_t> busy_until_;
};

/// A Fabric CE marker (set_ce_marker) backed by `load`: charges each
/// sequenced packet's serialization against its modeled link and answers
/// whether the backlog crossed `threshold_ns`. `load` must outlive the
/// fabric the marker is installed on. threshold_ns <= 0 disables marking
/// (returns a null filter).
fabric::Fabric::PacketFilter make_ce_marker(LinkLoad& load,
                                            const base::Topology& topo,
                                            const base::CostModel& cost,
                                            std::int64_t threshold_ns);

}  // namespace sessmpi::sim
