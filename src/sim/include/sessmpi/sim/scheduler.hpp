#pragma once

// Cooperative task-pool scheduler for simulated ranks (DESIGN.md §15).
//
// Thread mode (the default) spawns one OS thread per rank, which caps a
// single host near a few thousand ranks: each thread costs a full kernel
// stack, a scheduler entity, and — far worse — every modeled delay parks a
// core in sleep_for. Fiber mode multiplexes all rank bodies onto a small
// pool of worker threads as stackful ucontext fibers. Every blocking point
// in the stack (modeled delays, inbox waits, PMIx rendezvous, shm spins,
// NFS component loads) reaches the scheduler through the thread-local
// base::try_yield() hook a worker installs before resuming a fiber, so a
// parked rank costs one context switch instead of one blocked core.
//
// Fibers are PINNED to the worker that first runs them (no migration):
// rank TLS (sim::Process binding, tracer track) is restored on every
// resume via the task hooks, per-fiber state never crosses threads
// mid-flight, and the TSan/ASan fiber annotations stay simple.
//
// Yield-safety contract (see DESIGN.md §15 for the full inventory): code
// must never yield while holding a lock another rank's fiber can block on.
// Per-rank locks (ProcState::mu, the PMIx client cache) are safe; every
// cross-rank lock formerly held across a modeled delay (PmixServer RPC
// serialization, the per-node NFS component load) was restructured into a
// lock-free reservation or state machine in this refactor.

#include <cstddef>
#include <functional>
#include <vector>

namespace sessmpi::sim {

enum class SchedulerMode { threads, fibers };

/// Current mode from the `sim.scheduler` cvar ("threads" | "fibers").
/// Registers the cvar on first use; default is threads until fiber parity
/// is proven at every scale.
[[nodiscard]] SchedulerMode scheduler_mode();

/// Idempotent registration of the `sim.scheduler` cvar (MPI_T namespace).
void register_scheduler_cvar();

/// One cooperative task (a simulated rank's body plus its TLS lifecycle).
struct FiberTask {
  /// The rank body. Runs to completion across any number of yields; must
  /// not leak exceptions (the cluster body already catches everything, and
  /// the trampoline swallows strays as a last resort).
  std::function<void()> body;
  /// Called on the worker thread immediately before every resume of this
  /// task (install rank TLS: process binding, tracer track).
  std::function<void()> on_resume;
  /// Called on the worker thread immediately after every suspend.
  std::function<void()> on_suspend;
};

/// Stackful fiber pool. `run` blocks until every task completed.
class FiberPool {
 public:
  struct Options {
    /// Worker OS threads; 0 = hardware_concurrency - 1 (leave a core for
    /// the fabric pump), at least 1.
    int workers = 0;
    /// Per-fiber stack. Virtual (MAP_NORESERVE) with a PROT_NONE guard
    /// page below, so 16k fibers cost ~4 GiB of address space but only the
    /// touched pages of RSS.
    std::size_t stack_bytes = 256 * 1024;
  };

  /// Run all tasks to completion on a pool of pinned workers. The number
  /// of fiber-to-scheduler switches performed is added to the
  /// `sim.fiber_switches` counter (exposed as an MPI_T pvar).
  static void run(std::vector<FiberTask> tasks, Options opts);
  static void run(std::vector<FiberTask> tasks) {
    run(std::move(tasks), Options{});
  }
};

}  // namespace sessmpi::sim
