#pragma once

// Chaos injection: a deterministic fault schedule derived from a seed, so a
// failing chaos run replays bit-identically from its (seed, policy, topo)
// triple. Rank threads call ChaosMonkey::step(proc, n) at their step
// boundaries; a rank scheduled to die at step n fails itself (cooperative
// death — the sim's moral equivalent of a process crash) and is told to
// stop issuing MPI calls.
//
// The schedule is precomputed at construction: victim selection for the
// periodic kill policy draws from a SplitMix64 stream, so it depends only
// on the policy and topology, never on thread interleaving.

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "sessmpi/base/topology.hpp"
#include "sessmpi/sim/cluster.hpp"

namespace sessmpi::sim {

struct ChaosPolicy {
  std::uint64_t seed = 0xC4A05;

  /// Kill one seed-chosen live rank every N step boundaries (0 = off).
  int kill_every_steps = 0;
  /// Cap on periodic kills (0 = no cap beyond min_survivors).
  int max_kills = 0;
  /// Periodic killing never reduces the live count below this.
  int min_survivors = 1;
  /// Rank exempt from periodic killing (e.g. the rank driving the test).
  std::optional<Rank> never_kill;

  /// Explicit kills: (step, rank) / (step, node).
  std::vector<std::pair<int, Rank>> kill_rank_at;
  std::vector<std::pair<int, int>> kill_node_at;

  /// Fraction of fabric packets dropped on the wire (lossy-network model).
  /// The fabric's reliability sublayer (DESIGN.md §9) retransmits dropped
  /// packets, so full MPI runs — pt2pt, collectives, ft recovery — survive
  /// any fraction below 1; the drop filter exercises the retransmit path.
  double drop_fraction = 0.0;

  /// Fraction of fabric packets held back one pump tick so later traffic
  /// overtakes them (reordering injection); the fabric's receive-side
  /// reorder buffer restores per-flow order before delivery.
  double reorder_fraction = 0.0;

  /// Fraction of fault-aware SimFs writes (SimFs::try_write — the
  /// checkpoint drain pipeline) that fail with a transient I/O error,
  /// seeded like the packet filters. The drainer's retry/backoff absorbs
  /// any fraction below 1.
  double fs_fault_fraction = 0.0;
};

/// The precomputed (step -> victims) map.
class ChaosSchedule {
 public:
  ChaosSchedule(const ChaosPolicy& policy, const base::Topology& topo);

  [[nodiscard]] std::vector<Rank> rank_kills_at(int step) const;
  [[nodiscard]] std::vector<int> node_kills_at(int step) const;
  /// Every rank that dies over the whole schedule, in death order.
  [[nodiscard]] const std::vector<Rank>& victims() const noexcept {
    return victims_;
  }

 private:
  std::map<int, std::vector<Rank>> rank_kills_;
  std::map<int, std::vector<int>> node_kills_;
  std::vector<Rank> victims_;
};

/// Runtime driver: owns the schedule, executes kills, wires the packet-drop
/// filter into the fabric. One monkey per cluster run.
class ChaosMonkey {
 public:
  ChaosMonkey(Cluster& cluster, ChaosPolicy policy);
  /// Clears the SimFs fault hook it installed (the fabric filters die with
  /// the cluster, but the fs outlives chaos experiments that share one).
  ~ChaosMonkey();

  /// Rank-side step boundary. Returns true if `proc` survives step `step`;
  /// returns false — after executing the scheduled death — when the rank is
  /// (or already was) dead and must stop issuing MPI calls.
  bool step(Process& proc, int step);

  /// Re-seedable mid-run lossiness: installs (frac > 0) or clears (frac ==
  /// 0) the fabric drop filter while traffic is in flight — the fabric
  /// swaps filters atomically, so a chaos schedule can make a single phase
  /// lossy. The seeded packet counter persists across swaps, keeping the
  /// whole run's drop pattern a deterministic function of (seed, sends).
  void set_drop_fraction(double frac);

  [[nodiscard]] const ChaosSchedule& schedule() const noexcept {
    return schedule_;
  }
  /// Deaths executed so far (counter "sim.chaos.kills" mirrors this).
  [[nodiscard]] std::uint64_t kills() const noexcept {
    return kills_.load(std::memory_order_relaxed);
  }

 private:
  Cluster& cluster_;
  ChaosPolicy policy_;
  ChaosSchedule schedule_;
  std::atomic<std::uint64_t> kills_{0};
  /// Packet counters feeding the seeded drop/reorder decisions; shared with
  /// the installed filters so swapping never rewinds the streams.
  std::shared_ptr<std::atomic<std::uint64_t>> drop_stream_;
  std::shared_ptr<std::atomic<std::uint64_t>> reorder_stream_;
  std::shared_ptr<std::atomic<std::uint64_t>> fs_fault_stream_;
};

}  // namespace sessmpi::sim
