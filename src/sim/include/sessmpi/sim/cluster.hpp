#pragma once

// The simulated cluster. One `Process` (an OS thread) per MPI rank; nodes
// are groups of procs_per_node consecutive ranks. The cluster owns the
// PRRTE runtime (and through it PMIx) plus the fabric, launches rank
// threads, and provides the thread-local "current process" that the MPI
// layer binds to — the moral equivalent of a rank's address space.
//
// Substitution note (DESIGN.md §2): the paper runs separate OS processes on
// Cray XC nodes; everything under test here is protocol-level, so threads
// with isolated per-Process state preserve the relevant behaviour.

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sessmpi/base/subsystem.hpp"
#include "sessmpi/base/topology.hpp"
#include "sessmpi/fabric/fabric.hpp"
#include "sessmpi/pmix/client.hpp"
#include "sessmpi/prte/dvm.hpp"
#include "sessmpi/sim/linkload.hpp"

namespace sessmpi::sim {

using base::Rank;

class Cluster;

/// Per-rank state: identity, endpoint, the per-process subsystem registry
/// (each MPI process has its own init/teardown lifecycle), and an opaque
/// slot where the MPI core attaches its per-process state.
class Process {
 public:
  Process(Cluster& cluster, Rank rank);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] Rank rank() const noexcept { return rank_; }
  [[nodiscard]] int node() const noexcept { return node_; }
  [[nodiscard]] int local_rank() const noexcept { return local_rank_; }
  [[nodiscard]] Cluster& cluster() noexcept { return cluster_; }
  [[nodiscard]] fabric::Endpoint& endpoint() noexcept { return endpoint_; }
  [[nodiscard]] base::SubsystemRegistry& subsystems() noexcept {
    return subsystems_;
  }

  /// PMIx client, created by the MPI layer's pmix subsystem on first init
  /// and destroyed on final teardown (so a re-init pays PMIx_Init again).
  std::unique_ptr<pmix::PmixClient> pmix_client;

  /// Opaque per-process MPI-core state (set/read via typed helpers in core).
  /// Guard creation with mpi_state_mu: several threads may adopt one rank.
  std::shared_ptr<void> mpi_state;
  std::mutex mpi_state_mu;

  /// Failure injection: marks this process dead in the fabric and PMIx.
  void fail();
  [[nodiscard]] bool failed() const;

 private:
  Cluster& cluster_;
  Rank rank_;
  int node_;
  int local_rank_;
  fabric::Endpoint& endpoint_;
  base::SubsystemRegistry subsystems_;
};

class Cluster {
 public:
  struct Options {
    base::Topology topo;
    base::CostModel cost = base::CostModel::calibrated();
    /// Fabric reliable-delivery policy (RTO, backoff, retry cap). Tests
    /// shorten the timescales; the defaults fit the calibrated cost model.
    /// `reliability.cc` additionally selects the congestion-control engine
    /// and striping policy (nullopt = snapshot the fabric.* cvars).
    fabric::ReliabilityConfig reliability;
    /// ECN marking threshold override: modeled inter-node link backlog (ns)
    /// above which packets get the CE bit. nullopt = the
    /// fabric.ecn_threshold_ns cvar; 0 disables marking.
    std::optional<std::int64_t> ecn_threshold_ns;
    std::vector<std::pair<std::string, std::vector<pmix::ProcId>>> extra_psets;
    /// Per-rank simulated clock skew (ns), index = rank; shorter vectors
    /// leave the remaining ranks unskewed. Applied to trace timestamps at
    /// emission (obs::Tracer::set_track_skew_ns), so per-rank trace files
    /// model unsynchronized node clocks; write_rank_traces records the
    /// compensating clock_ns_offset and tools/trace_merge realigns. Every
    /// Cluster construction resets all skews first, so collect + write
    /// traces from a skewed run before constructing the next cluster.
    std::vector<std::int64_t> clock_skew_ns;
  };

  explicit Cluster(Options opts);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] prte::Dvm& dvm() noexcept { return dvm_; }
  [[nodiscard]] fabric::Fabric& fabric() noexcept { return fabric_; }
  /// Shared simulated filesystem (the DVM's SimFs) — the spill target for
  /// src/ckpt filesystem-level checkpoints.
  [[nodiscard]] prte::SimFs& fs() noexcept { return dvm_.fs(); }
  [[nodiscard]] const base::Topology& topology() const noexcept {
    return dvm_.topology();
  }
  [[nodiscard]] int size() const noexcept { return topology().size(); }

  [[nodiscard]] Process& process(Rank r);

  /// Launch `rank_main` on every rank (one thread each), join them all, and
  /// rethrow the first rank exception (after marking that rank failed so
  /// survivors' runtime collectives abort instead of deadlocking).
  void run(const std::function<void(Process&)>& rank_main);

  /// Launch on a subset of ranks (the others stay idle). Used by tests.
  void run_on(const std::vector<Rank>& ranks,
              const std::function<void(Process&)>& rank_main);

  /// Failure injection from outside rank threads.
  void fail_rank(Rank r);

  /// Node-failure injection: every rank hosted on `node` dies at once (the
  /// fabric flags flip before the runtime announcement, so survivors never
  /// see a PMIx death notice contradicting a live fabric flag).
  void fail_node(int node);

  /// Set when any rank threw; progress loops poll this to avoid deadlock.
  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

  /// The calling thread's Process. Throws Error(intern) when the caller is
  /// not a rank thread.
  static Process& current();
  [[nodiscard]] static Process* current_ptr() noexcept;

  /// Opaque cluster-wide slot for the collective engine's on-node shared
  /// region registry (the sim analogue of a per-node shm segment namespace).
  /// Created on demand by src/coll under coll_arena_mu; dies with the
  /// cluster, exactly like real shm segments die with the node.
  std::shared_ptr<void> coll_arena;
  std::mutex coll_arena_mu;

  friend class ProcessAdopter;

 private:
  prte::Dvm dvm_;
  /// Shared link-occupancy model backing the fabric's CE marker (ECN).
  /// Declared before fabric_ so it destructs after the pump thread joins —
  /// the marker closure dereferences it until the fabric dies.
  std::unique_ptr<LinkLoad> link_load_;
  fabric::Fabric fabric_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::atomic<bool> aborted_{false};
};

/// RAII adoption of a process identity by a helper thread: within the
/// guard's scope, MPI calls on this thread act as `proc`. This is how an
/// application thread (e.g. an OpenMP worker inside an MPI rank) issues MPI
/// calls — the per-session thread-support levels of the Sessions proposal
/// exist exactly for this pattern.
class ProcessAdopter {
 public:
  explicit ProcessAdopter(Process& proc);
  ~ProcessAdopter();
  ProcessAdopter(const ProcessAdopter&) = delete;
  ProcessAdopter& operator=(const ProcessAdopter&) = delete;

 private:
  Process* previous_;
  std::int32_t previous_track_ = -1;
};

}  // namespace sessmpi::sim
