#include "sessmpi/sim/chaos.hpp"

#include <algorithm>
#include <memory>

#include "sessmpi/base/error.hpp"
#include "sessmpi/base/stats.hpp"

namespace sessmpi::sim {

namespace {

/// SplitMix64: tiny, seedable, and stable across platforms — exactly what a
/// replayable schedule needs (std::mt19937 would also do, but its state is
/// heavyweight for drawing a handful of victims).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ChaosSchedule::ChaosSchedule(const ChaosPolicy& policy,
                             const base::Topology& topo) {
  const int n = topo.size();
  std::vector<char> dead(static_cast<std::size_t>(n), 0);
  int live = n;

  const auto kill_rank = [&](int step, Rank r) {
    if (!topo.valid_rank(r) || dead[static_cast<std::size_t>(r)]) {
      return;
    }
    dead[static_cast<std::size_t>(r)] = 1;
    --live;
    rank_kills_[step].push_back(r);
    victims_.push_back(r);
  };

  // Merge explicit and periodic events in step order so victim selection
  // sees the live set as it will exist at that step.
  struct Ev {
    int step;
    int kind;  // 0 = explicit rank, 1 = explicit node, 2 = periodic
    int arg;
  };
  std::vector<Ev> events;
  for (const auto& [step, r] : policy.kill_rank_at) {
    events.push_back({step, 0, r});
  }
  for (const auto& [step, node] : policy.kill_node_at) {
    events.push_back({step, 1, node});
  }
  if (policy.kill_every_steps > 0) {
    const int cap = policy.max_kills > 0 ? policy.max_kills : n;
    for (int k = 1; k <= cap; ++k) {
      events.push_back({k * policy.kill_every_steps, 2, 0});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Ev& a, const Ev& b) { return a.step < b.step; });

  std::uint64_t rng = policy.seed;
  for (const Ev& ev : events) {
    switch (ev.kind) {
      case 0:
        kill_rank(ev.step, ev.arg);
        break;
      case 1: {
        if (ev.arg < 0 || ev.arg >= topo.num_nodes) {
          break;
        }
        node_kills_[ev.step].push_back(ev.arg);
        for (Rank r = 0; r < n; ++r) {
          if (topo.node_of(r) == ev.arg) {
            kill_rank(ev.step, r);
          }
        }
        break;
      }
      case 2: {
        if (live <= policy.min_survivors) {
          break;
        }
        std::vector<Rank> eligible;
        eligible.reserve(static_cast<std::size_t>(live));
        for (Rank r = 0; r < n; ++r) {
          if (!dead[static_cast<std::size_t>(r)] &&
              (!policy.never_kill || *policy.never_kill != r)) {
            eligible.push_back(r);
          }
        }
        if (!eligible.empty()) {
          kill_rank(ev.step,
                    eligible[splitmix64(rng) % eligible.size()]);
        }
        break;
      }
      default:
        break;
    }
  }
}

std::vector<Rank> ChaosSchedule::rank_kills_at(int step) const {
  auto it = rank_kills_.find(step);
  return it == rank_kills_.end() ? std::vector<Rank>{} : it->second;
}

std::vector<int> ChaosSchedule::node_kills_at(int step) const {
  auto it = node_kills_.find(step);
  return it == node_kills_.end() ? std::vector<int>{} : it->second;
}

namespace {

/// Seeded Bernoulli filter, deterministic in the number of packets examined
/// (not in which packet of a racing pair is hit — good enough for a
/// lossy-fabric model). The counter lives outside the closure so swapping
/// the filter mid-run never rewinds the stream.
fabric::Fabric::PacketFilter seeded_fraction_filter(
    std::shared_ptr<std::atomic<std::uint64_t>> counter, std::uint64_t seed,
    double frac) {
  return [counter = std::move(counter), seed, frac](const fabric::Packet&) {
    std::uint64_t state =
        seed ^ (counter->fetch_add(1, std::memory_order_relaxed) *
                0x9e3779b97f4a7c15ull);
    const std::uint64_t z = splitmix64(state);
    return static_cast<double>(z >> 11) * 0x1.0p-53 < frac;
  };
}

}  // namespace

ChaosMonkey::ChaosMonkey(Cluster& cluster, ChaosPolicy policy)
    : cluster_(cluster),
      policy_(policy),
      schedule_(policy, cluster.topology()),
      drop_stream_(std::make_shared<std::atomic<std::uint64_t>>(0)),
      reorder_stream_(std::make_shared<std::atomic<std::uint64_t>>(0)),
      fs_fault_stream_(std::make_shared<std::atomic<std::uint64_t>>(0)) {
  if (policy_.reorder_fraction < 0.0 || policy_.reorder_fraction > 1.0) {
    throw base::Error(base::ErrClass::arg, "reorder_fraction outside [0, 1]");
  }
  if (policy_.fs_fault_fraction < 0.0 || policy_.fs_fault_fraction > 1.0) {
    throw base::Error(base::ErrClass::arg, "fs_fault_fraction outside [0, 1]");
  }
  set_drop_fraction(policy_.drop_fraction);
  if (policy_.reorder_fraction > 0.0) {
    // Distinct seed stream so drop and reorder decisions are independent.
    cluster_.fabric().set_reorder_filter(seeded_fraction_filter(
        reorder_stream_, policy_.seed ^ 0x5eedca11u,
        policy_.reorder_fraction));
  }
  if (policy_.fs_fault_fraction > 0.0) {
    cluster_.fs().set_fault_fn(
        [counter = fs_fault_stream_, seed = policy_.seed ^ 0xf5fa017ull,
         frac = policy_.fs_fault_fraction](const std::string&, std::size_t,
                                           std::size_t) {
          std::uint64_t state =
              seed ^ (counter->fetch_add(1, std::memory_order_relaxed) *
                      0x9e3779b97f4a7c15ull);
          const std::uint64_t z = splitmix64(state);
          if (static_cast<double>(z >> 11) * 0x1.0p-53 < frac) {
            base::counters().add("sim.chaos.fs_faults");
            return true;
          }
          return false;
        });
  }
}

ChaosMonkey::~ChaosMonkey() {
  if (policy_.fs_fault_fraction > 0.0) {
    cluster_.fs().set_fault_fn(nullptr);
  }
}

void ChaosMonkey::set_drop_fraction(double frac) {
  if (frac < 0.0 || frac > 1.0) {
    throw base::Error(base::ErrClass::arg, "drop_fraction outside [0, 1]");
  }
  if (frac > 0.0) {
    cluster_.fabric().set_drop_filter(
        seeded_fraction_filter(drop_stream_, policy_.seed, frac));
  } else {
    cluster_.fabric().set_drop_filter(nullptr);
  }
}

bool ChaosMonkey::step(Process& proc, int step) {
  if (proc.failed()) {
    return false;
  }
  bool die = false;
  for (Rank r : schedule_.rank_kills_at(step)) {
    if (r == proc.rank()) {
      die = true;
    }
  }
  bool node_die = false;
  for (int nd : schedule_.node_kills_at(step)) {
    if (nd == proc.node()) {
      die = node_die = true;
    }
  }
  if (!die) {
    return true;
  }
  if (node_die) {
    // The whole node goes down at once, including any rank on it that is
    // not running a thread right now (fail_node is idempotent per rank).
    cluster_.fail_node(proc.node());
  } else {
    proc.fail();
  }
  kills_.fetch_add(1, std::memory_order_relaxed);
  base::counters().add("sim.chaos.kills");
  return false;
}

}  // namespace sessmpi::sim
