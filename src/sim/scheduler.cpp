#include "sessmpi/sim/scheduler.hpp"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "sessmpi/base/error.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/base/yield.hpp"
#include "sessmpi/obs/tvar.hpp"

// Sanitizer fiber support: TSan must be told about every stack switch or
// it reports false races across fibers sharing a worker; ASan tracks fake
// stacks per fiber for use-after-return detection.
#if defined(__SANITIZE_THREAD__)
#define SESSMPI_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SESSMPI_TSAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define SESSMPI_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SESSMPI_ASAN 1
#endif
#endif

#if defined(SESSMPI_TSAN)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif
#if defined(SESSMPI_ASAN)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
}
#endif

namespace sessmpi::sim {

namespace {

std::atomic<int>& mode_flag() {
  static std::atomic<int> mode{0};  // 0 = threads, 1 = fibers
  return mode;
}

struct Worker;

/// One stackful fiber: context, guarded stack, task, sanitizer handles.
struct Fiber {
  ucontext_t ctx{};
  void* map_base = nullptr;     ///< mmap base (guard page + stack)
  std::size_t map_bytes = 0;
  void* stack_lo = nullptr;     ///< usable stack bottom (above the guard)
  std::size_t stack_bytes = 0;
  FiberTask task;
  bool started = false;
  bool done = false;
  Worker* owner = nullptr;
#if defined(SESSMPI_TSAN)
  void* tsan = nullptr;
#endif
#if defined(SESSMPI_ASAN)
  void* fake_stack = nullptr;   ///< this fiber's saved ASan fake stack
#endif
};

struct Worker {
  std::deque<Fiber*> runq;
  ucontext_t main_ctx{};
  Fiber* current = nullptr;
#if defined(SESSMPI_TSAN)
  void* main_tsan = nullptr;
#endif
#if defined(SESSMPI_ASAN)
  void* main_fake_stack = nullptr;
#endif
};

thread_local Worker* tls_worker = nullptr;

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

void alloc_stack(Fiber& f, std::size_t stack_bytes) {
  const std::size_t ps = page_size();
  const std::size_t usable = (stack_bytes + ps - 1) / ps * ps;
  const std::size_t total = usable + ps;  // + guard page below the stack
  void* mem = mmap(nullptr, total, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_STACK,
                   -1, 0);
  if (mem == MAP_FAILED) {
    throw base::Error(base::ErrClass::intern, "fiber stack mmap failed");
  }
  if (mprotect(mem, ps, PROT_NONE) != 0) {
    munmap(mem, total);
    throw base::Error(base::ErrClass::intern, "fiber guard mprotect failed");
  }
  f.map_base = mem;
  f.map_bytes = total;
  f.stack_lo = static_cast<char*>(mem) + ps;
  f.stack_bytes = usable;
}

void free_stack(Fiber& f) {
  if (f.map_base != nullptr) {
    munmap(f.map_base, f.map_bytes);
    f.map_base = nullptr;
  }
}

base::Counters::Handle& switch_counter() {
  static auto handle = base::counter("sim.fiber_switches");
  return handle;
}

/// Switch worker -> fiber. Runs on the worker's main context.
void switch_in(Worker& w, Fiber& f) {
  w.current = &f;
#if defined(SESSMPI_TSAN)
  __tsan_switch_to_fiber(f.tsan, 0);
#endif
#if defined(SESSMPI_ASAN)
  __sanitizer_start_switch_fiber(&w.main_fake_stack, f.stack_lo, f.stack_bytes);
#endif
  swapcontext(&w.main_ctx, &f.ctx);
  // Back on the worker context: the fiber yielded or completed.
#if defined(SESSMPI_ASAN)
  __sanitizer_finish_switch_fiber(w.main_fake_stack, nullptr, nullptr);
#endif
  w.current = nullptr;
}

/// Switch fiber -> worker. Runs on the fiber's context. `final` marks the
/// fiber's last switch-out (its fake stack is released, never resumed).
void switch_out(Worker& w, Fiber& f, bool final_switch) {
  switch_counter().add();
#if defined(SESSMPI_TSAN)
  __tsan_switch_to_fiber(w.main_tsan, 0);
#endif
#if defined(SESSMPI_ASAN)
  __sanitizer_start_switch_fiber(final_switch ? nullptr : &f.fake_stack,
                                 nullptr, 0);
#endif
  if (final_switch) {
    // Never returns: the worker observes done and reclaims the fiber.
    swapcontext(&f.ctx, &w.main_ctx);
  } else {
    swapcontext(&f.ctx, &w.main_ctx);
    // Resumed.
#if defined(SESSMPI_ASAN)
    __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
#endif
  }
}

/// The base::try_yield() hook while a fiber runs: suspend it back to the
/// scheduler; the worker calls on_suspend/on_resume around the gap.
void yield_hook(void* ctx) {
  auto* w = static_cast<Worker*>(ctx);
  Fiber* f = w->current;
  if (f == nullptr) {
    return;  // called from worker scheduling code: nothing to suspend
  }
  switch_out(*w, *f, /*final_switch=*/false);
}

/// Fiber entry point. makecontext can only pass ints, so the fiber to run
/// is picked up from the worker's `current` slot (set by switch_in on the
/// same thread just before the swap).
void trampoline() {
  Worker& w = *tls_worker;
  Fiber& f = *w.current;
#if defined(SESSMPI_ASAN)
  __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
#endif
  try {
    f.task.body();
  } catch (...) {
    // Rank bodies catch their own failures (Cluster::run_on records them);
    // an exception escaping across a context switch is UB, so strays stop
    // here.
  }
  f.done = true;
  switch_out(w, f, /*final_switch=*/true);
  // Unreachable: a completed fiber is never resumed.
  std::terminate();
}

void worker_main(Worker& w) {
  tls_worker = &w;
#if defined(SESSMPI_TSAN)
  w.main_tsan = __tsan_get_current_fiber();
#endif
  base::set_yield_hook(&yield_hook, &w);
  while (!w.runq.empty()) {
    Fiber* f = w.runq.front();
    w.runq.pop_front();
    if (!f->started) {
      f->started = true;
      getcontext(&f->ctx);
      f->ctx.uc_stack.ss_sp = f->stack_lo;
      f->ctx.uc_stack.ss_size = f->stack_bytes;
      f->ctx.uc_link = nullptr;  // completion swaps back explicitly
      makecontext(&f->ctx, &trampoline, 0);
    }
    if (f->task.on_resume) {
      f->task.on_resume();
    }
    switch_in(w, *f);
    if (f->task.on_suspend) {
      f->task.on_suspend();
    }
    if (f->done) {
#if defined(SESSMPI_TSAN)
      __tsan_destroy_fiber(f->tsan);
      f->tsan = nullptr;
#endif
      free_stack(*f);
    } else {
      w.runq.push_back(f);
    }
  }
  base::clear_yield_hook();
  tls_worker = nullptr;
}

}  // namespace

void register_scheduler_cvar() {
  static std::once_flag once;
  std::call_once(once, [] {
    obs::register_cvar(
        "sim.scheduler",
        "rank scheduling: \"threads\" (one OS thread per rank, default) or "
        "\"fibers\" (cooperative task pool; O(10k) ranks on one host)",
        [] {
          return mode_flag().load(std::memory_order_acquire) == 1
                     ? std::string("fibers")
                     : std::string("threads");
        },
        [](const std::string& v) {
          if (v == "threads") {
            mode_flag().store(0, std::memory_order_release);
            return true;
          }
          if (v == "fibers") {
            mode_flag().store(1, std::memory_order_release);
            return true;
          }
          return false;
        });
  });
}

SchedulerMode scheduler_mode() {
  register_scheduler_cvar();
  return mode_flag().load(std::memory_order_acquire) == 1
             ? SchedulerMode::fibers
             : SchedulerMode::threads;
}

void FiberPool::run(std::vector<FiberTask> tasks, Options opts) {
  if (tasks.empty()) {
    return;
  }
  int workers = opts.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency()) - 1;
  }
  if (workers < 1) {
    workers = 1;
  }
  if (static_cast<std::size_t>(workers) > tasks.size()) {
    workers = static_cast<int>(tasks.size());
  }

  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(tasks.size());
  std::vector<Worker> pool(static_cast<std::size_t>(workers));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto f = std::make_unique<Fiber>();
    f->task = std::move(tasks[i]);
    alloc_stack(*f, opts.stack_bytes);
#if defined(SESSMPI_TSAN)
    f->tsan = __tsan_create_fiber(0);
#endif
    // Round-robin pinning: fiber i lives on worker i % workers forever.
    Worker& w = pool[i % static_cast<std::size_t>(workers)];
    f->owner = &w;
    w.runq.push_back(f.get());
    fibers.push_back(std::move(f));
  }

  std::vector<std::thread> threads;
  threads.reserve(pool.size());
  for (Worker& w : pool) {
    threads.emplace_back([&w] { worker_main(w); });
  }
  for (auto& t : threads) {
    t.join();
  }
}

}  // namespace sessmpi::sim
