#include "sessmpi/sim/linkload.hpp"

#include <algorithm>

#include "sessmpi/base/clock.hpp"
#include "sessmpi/base/cost_model.hpp"

namespace sessmpi::sim {

namespace {
inline std::uint64_t link_key(int src_node, int dst_node,
                              std::uint8_t rail) noexcept {
  return (static_cast<std::uint64_t>(rail) << 60) |
         ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_node)) &
           0x3FFFFFFFu)
          << 30) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst_node)) &
          0x3FFFFFFFu);
}
}  // namespace

std::int64_t LinkLoad::charge(int src_node, int dst_node, std::uint8_t rail,
                              std::int64_t now_ns,
                              std::int64_t serialization_ns) {
  const std::uint64_t key = link_key(src_node, dst_node, rail);
  std::lock_guard lock(mu_);
  std::int64_t& busy = busy_until_[key];
  const std::int64_t backlog = std::max<std::int64_t>(0, busy - now_ns);
  busy = std::max(busy, now_ns) + serialization_ns;
  return backlog;
}

fabric::Fabric::PacketFilter make_ce_marker(LinkLoad& load,
                                            const base::Topology& topo,
                                            const base::CostModel& cost,
                                            std::int64_t threshold_ns) {
  if (threshold_ns <= 0) {
    return nullptr;
  }
  return [&load, topo, cost, threshold_ns](const fabric::Packet& pkt) {
    if (topo.same_node(pkt.src_rank, pkt.dst_rank)) {
      return false;  // shared memory has no switch queue to mark
    }
    const std::int64_t serialization = cost.wire_occupancy(
        /*same_node=*/false, pkt.payload.size(), pkt.header_bytes());
    const std::int64_t backlog =
        load.charge(topo.node_of(pkt.src_rank), topo.node_of(pkt.dst_rank),
                    pkt.flow.rail, base::now_ns(), serialization);
    return backlog > threshold_ns;
  };
}

}  // namespace sessmpi::sim
