#include "sessmpi/sim/cluster.hpp"

#include <thread>

#include "sessmpi/base/error.hpp"
#include "sessmpi/base/log.hpp"
#include "sessmpi/obs/trace.hpp"
#include "sessmpi/sim/scheduler.hpp"

namespace sessmpi::sim {

namespace {
thread_local Process* tls_current = nullptr;
}

Process::Process(Cluster& cluster, Rank rank)
    : cluster_(cluster),
      rank_(rank),
      node_(cluster.topology().node_of(rank)),
      local_rank_(cluster.topology().local_rank_of(rank)),
      endpoint_(cluster.fabric().endpoint(rank)) {}

void Process::fail() {
  cluster_.fabric().mark_failed(rank_);
  cluster_.dvm().pmix().notify_proc_failed(rank_);
}

bool Process::failed() const {
  return cluster_.fabric().is_failed(rank_);
}

Cluster::Cluster(Options opts)
    : dvm_(prte::JobSpec{opts.topo, opts.cost, std::move(opts.extra_psets)}),
      fabric_(opts.topo, opts.cost, opts.reliability) {
  procs_.reserve(static_cast<std::size_t>(opts.topo.size()));
  for (Rank r = 0; r < opts.topo.size(); ++r) {
    procs_.push_back(std::make_unique<Process>(*this, r));
  }
  // Clock skew is a property of the cluster being simulated: start from
  // aligned clocks, then inject the configured per-rank offsets.
  obs::Tracer::reset_track_skews();
  for (std::size_t r = 0;
       r < opts.clock_skew_ns.size() &&
       r < static_cast<std::size_t>(opts.topo.size());
       ++r) {
    obs::Tracer::set_track_skew_ns(static_cast<std::int32_t>(r),
                                   opts.clock_skew_ns[r]);
  }
  // Retry exhaustion in the fabric is a failure detection: surface it
  // through the same PMIx proc_failed announcement as any other death so
  // fault-aware layers (Communicator::get_failed, src/ft) hear about it.
  fabric_.set_unreachable_callback(
      [this](Rank r) { dvm_.pmix().notify_proc_failed(r); });
  // ECN: charge every sequenced inter-node packet against a modeled link
  // and mark CE once the backlog crosses the threshold (DESIGN.md §17).
  const std::int64_t ecn_threshold =
      opts.ecn_threshold_ns ? *opts.ecn_threshold_ns
                            : fabric::ecn_threshold_ns_from_cvars();
  if (ecn_threshold > 0 && opts.topo.num_nodes > 1) {
    link_load_ = std::make_unique<LinkLoad>();
    fabric_.set_ce_marker(
        make_ce_marker(*link_load_, opts.topo, opts.cost, ecn_threshold));
  }
}

Cluster::~Cluster() = default;

Process& Cluster::process(Rank r) {
  if (!topology().valid_rank(r)) {
    throw base::Error(base::ErrClass::rte_bad_param, "invalid rank");
  }
  return *procs_[static_cast<std::size_t>(r)];
}

void Cluster::fail_rank(Rank r) { process(r).fail(); }

void Cluster::fail_node(int node) {
  if (node < 0 || node >= topology().num_nodes) {
    throw base::Error(base::ErrClass::rte_bad_param, "invalid node");
  }
  for (Rank r = 0; r < size(); ++r) {
    if (topology().node_of(r) == node) {
      fabric_.mark_failed(r);
    }
  }
  dvm_.notify_node_failed(node);
}

void Cluster::run(const std::function<void(Process&)>& rank_main) {
  std::vector<Rank> all(static_cast<std::size_t>(size()));
  for (int i = 0; i < size(); ++i) {
    all[static_cast<std::size_t>(i)] = i;
  }
  run_on(all, rank_main);
}

void Cluster::run_on(const std::vector<Rank>& ranks,
                     const std::function<void(Process&)>& rank_main) {
  struct Outcome {
    std::exception_ptr error;
  };
  std::vector<Outcome> outcomes(ranks.size());

  // The rank body is identical in both scheduling modes; only the carrier
  // differs (dedicated OS thread vs pinned fiber).
  const auto body_of = [this, &outcomes, &rank_main](std::size_t i, Rank r) {
    return [this, r, i, &outcomes, &rank_main] {
      Process& proc = *procs_[static_cast<std::size_t>(r)];
      try {
        dvm_.attach_process(r);
        rank_main(proc);
      } catch (...) {
        outcomes[i].error = std::current_exception();
        // Mark the rank dead so peers blocked in runtime collectives abort
        // (rte_proc_failed) instead of deadlocking the whole run, and flip
        // the cluster-wide abort flag so message-progress loops bail too.
        aborted_.store(true, std::memory_order_release);
        proc.fail();
      }
    };
  };

  if (scheduler_mode() == SchedulerMode::fibers) {
    std::vector<FiberTask> tasks(ranks.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      const Rank r = ranks[i];
      Process* proc = &process(r);  // validate before scheduling
      tasks[i].body = body_of(i, r);
      // Rank TLS travels with the fiber: every resume rebinds the worker
      // thread to this rank (Cluster::current(), merged-trace track);
      // every suspend unbinds so scheduler code never impersonates a rank.
      tasks[i].on_resume = [proc, r] {
        tls_current = proc;
        obs::Tracer::set_thread_track(r);
      };
      tasks[i].on_suspend = [] {
        obs::Tracer::set_thread_track(-1);
        tls_current = nullptr;
      };
    }
    FiberPool::run(std::move(tasks));
  } else {
    std::vector<std::thread> threads;
    threads.reserve(ranks.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      const Rank r = ranks[i];
      (void)process(r);  // validate before spawning
      threads.emplace_back([this, r, body = body_of(i, r)] {
        tls_current = procs_[static_cast<std::size_t>(r)].get();
        // Rank threads own their merged-trace track: every probe this
        // thread fires lands on rank r's timeline.
        obs::Tracer::set_thread_track(r);
        body();
        obs::Tracer::set_thread_track(-1);
        tls_current = nullptr;
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  }
  for (auto& o : outcomes) {
    if (o.error) {
      std::rethrow_exception(o.error);
    }
  }
}

Process& Cluster::current() {
  if (tls_current == nullptr) {
    throw base::Error(base::ErrClass::intern,
                      "not called from a simulated rank thread");
  }
  return *tls_current;
}

Process* Cluster::current_ptr() noexcept { return tls_current; }

ProcessAdopter::ProcessAdopter(Process& proc) : previous_(tls_current) {
  tls_current = &proc;
  previous_track_ = obs::Tracer::thread_track();
  obs::Tracer::set_thread_track(proc.rank());
}

ProcessAdopter::~ProcessAdopter() {
  obs::Tracer::set_thread_track(previous_track_);
  tls_current = previous_;
}

}  // namespace sessmpi::sim
