// Fault-tolerance subsystem tests: failure acknowledgment, revocation,
// agreement, shrink, and chaos-driven shrink-and-continue.

#include "sessmpi/ft/ft.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <thread>

#include "../core/harness.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/sim/chaos.hpp"

namespace sessmpi {
namespace {

using namespace std::chrono_literals;
using testing::mpi_run;
using testing::world_run;

TEST(Ft, GetFailedAndAckFailed) {
  world_run(1, 3, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 2) {
      p.fail();
      return;
    }
    std::vector<int> failed;
    while ((failed = world.get_failed()).empty()) {
      std::this_thread::sleep_for(1ms);
    }
    EXPECT_EQ(failed, std::vector<int>{2});
    // First ack reports the newly acknowledged rank, the second nothing.
    EXPECT_EQ(world.ack_failed(), std::vector<int>{2});
    EXPECT_TRUE(world.ack_failed().empty());
    EXPECT_EQ(world.get_failed(), std::vector<int>{2});  // still failed
  });
}

TEST(Ft, RevokePoisonsPendingAndFutureOps) {
  world_run(1, 3, [](sim::Process& p) {
    Communicator comm = comm_world().dup();
    if (p.rank() == 2) {
      std::this_thread::sleep_for(30ms);
      comm.revoke();
      EXPECT_TRUE(comm.is_revoked());
    } else {
      // Pending receive poisoned by the remote revocation...
      std::int32_t v = 0;
      Request r = comm.irecv(&v, 1, Datatype::int32(), 2, 11);
      EXPECT_EQ(r.wait().error, ErrClass::comm_revoked);
      EXPECT_TRUE(comm.is_revoked());
      // ...and every future operation refuses immediately.
      const std::int32_t x = 1;
      EXPECT_THROW(comm.send(&x, 1, Datatype::int32(), 2, 0), Error);
      EXPECT_THROW(comm.irecv(&v, 1, Datatype::int32(), 2, 12), Error);
    }
    // The revocation is scoped to `comm`: its parent still works.
    comm_world().barrier();
    comm.free();
  });
}

TEST(Ft, AgreeReturnsAndOfContributionsUniformly) {
  std::array<std::uint64_t, 4> result{};
  world_run(1, 4, [&](sim::Process& p) {
    const std::array<std::uint64_t, 4> contrib = {0xFFu, 0xFEu, 0xFBu, 0xF7u};
    result[static_cast<std::size_t>(p.rank())] =
        comm_world().agree(contrib[static_cast<std::size_t>(p.rank())]);
  });
  for (const std::uint64_t r : result) {
    EXPECT_EQ(r, 0xF2u);
  }
}

TEST(Ft, AgreeSurvivesCoordinatorDeath) {
  // Rank 0 — the initial coordinator — dies while everyone waits on it; the
  // survivors must converge on rank 1 and still all decide the same value.
  std::array<std::uint64_t, 4> result{};
  const std::uint64_t deaths_before =
      base::counters().value("ft.agree_coordinator_deaths");
  world_run(1, 4, [&](sim::Process& p) {
    if (p.rank() == 0) {
      std::this_thread::sleep_for(30ms);
      p.fail();
      return;
    }
    const std::array<std::uint64_t, 4> contrib = {0, 0b111u, 0b110u, 0b011u};
    result[static_cast<std::size_t>(p.rank())] =
        comm_world().agree(contrib[static_cast<std::size_t>(p.rank())]);
  });
  EXPECT_EQ(result[1], 0b010u);
  EXPECT_EQ(result[2], 0b010u);
  EXPECT_EQ(result[3], 0b010u);
  EXPECT_GT(base::counters().value("ft.agree_coordinator_deaths"),
            deaths_before);
}

TEST(Ft, AgreeWithRankDyingBetweenRounds) {
  std::array<std::uint64_t, 3> round1{};
  std::array<std::uint64_t, 3> round2{};
  std::atomic<bool> dead{false};
  world_run(1, 3, [&](sim::Process& p) {
    Communicator world = comm_world();
    const auto me = static_cast<std::size_t>(p.rank());
    const std::array<std::uint64_t, 3> a = {0xFFu, 0xFEu, 0xFDu};
    round1[me] = world.agree(a[me]);
    if (p.rank() == 2) {
      p.fail();
      dead.store(true);
      return;
    }
    while (!dead.load()) {
      std::this_thread::sleep_for(1ms);
    }
    const std::array<std::uint64_t, 3> b = {0x3Fu, 0x3Eu, 0};
    round2[me] = world.agree(b[me]);
  });
  EXPECT_EQ(round1[0], 0xFCu);
  EXPECT_EQ(round1[1], 0xFCu);
  EXPECT_EQ(round1[2], 0xFCu);
  // Round 2 excludes the dead rank: AND over the survivors only.
  EXPECT_EQ(round2[0], 0x3Eu);
  EXPECT_EQ(round2[1], 0x3Eu);
}

TEST(Ft, ShrinkAfterMidCollectiveFailure) {
  mpi_run(1, 4, [](sim::Process& p) {
    Session s = Session::init(Info::null(), Errhandler::errors_return());
    Communicator comm = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "ft-shrink", Info::null(),
        Errhandler::errors_return());
    if (p.rank() == 3) {
      std::this_thread::sleep_for(20ms);
      p.fail();
      return;  // crashed: no finalize
    }
    // The death breaks the in-flight barrier for every survivor.
    EXPECT_THROW(comm.barrier(), Error);
    // ULFM recipe: revoke so no survivor is left blocked in a later op on
    // the broken communicator, then shrink.
    if (p.rank() == 0) {
      comm.revoke();
    } else {
      std::int32_t v = 0;
      Request r = comm.irecv(&v, 1, Datatype::int32(), 0, 99);
      EXPECT_EQ(r.wait().error, ErrClass::comm_revoked);
    }
    EXPECT_TRUE(comm.is_revoked());

    Communicator small = comm.shrink();
    EXPECT_EQ(small.size(), 3);
    EXPECT_EQ(small.rank(), p.rank());  // survivors keep their order
    EXPECT_FALSE(small.is_revoked());

    std::int64_t one = 1;
    std::int64_t sum = 0;
    small.allreduce(&one, &sum, 1, Datatype::int64(), Op::sum());
    EXPECT_EQ(sum, 3);

    small.free();
    comm.free();
    s.finalize();
  });
}

TEST(Ft, SessionPsetReQueryReflectsFailures) {
  std::atomic<int> saw_full_pset{0};
  mpi_run(1, 3, [&](sim::Process& p) {
    Session s = Session::init(Info::null(), Errhandler::errors_return());
    if (p.rank() == 2) {
      // Hold the failure until both survivors have sampled the full pset:
      // without this the first EXPECT below races the death (the TSan
      // job's scheduling surfaces it).
      while (saw_full_pset.load() < 2) {
        std::this_thread::sleep_for(1ms);
      }
      p.fail();
      return;
    }
    EXPECT_EQ(s.group_from_pset("mpi://world").size(), 3);
    saw_full_pset.fetch_add(1);
    while (!p.cluster().fabric().is_failed(2)) {
      std::this_thread::sleep_for(1ms);
    }
    // The Sessions recovery path: re-query the pset, get the shrunken set,
    // and rebuild from it.
    Group rest = s.group_from_pset("mpi://world");
    EXPECT_EQ(rest.size(), 2);
    Communicator comm = Communicator::create_from_group(rest, "rebuilt");
    std::int64_t one = 1;
    std::int64_t sum = 0;
    comm.allreduce(&one, &sum, 1, Datatype::int64(), Op::sum());
    EXPECT_EQ(sum, 2);
    comm.free();
    s.finalize();
  });
}

TEST(Chaos, ScheduleIsDeterministicAndRespectsExemptions) {
  sim::ChaosPolicy pol;
  pol.seed = 42;
  pol.kill_every_steps = 2;
  pol.max_kills = 3;
  pol.min_survivors = 2;
  pol.never_kill = 0;
  const base::Topology topo{2, 4};

  const sim::ChaosSchedule a{pol, topo};
  const sim::ChaosSchedule b{pol, topo};
  EXPECT_EQ(a.victims(), b.victims());
  EXPECT_EQ(a.victims().size(), 3u);
  for (const sim::Rank v : a.victims()) {
    EXPECT_NE(v, 0);
  }

  // Unlimited periodic killing stops at min_survivors.
  sim::ChaosPolicy greedy = pol;
  greedy.kill_every_steps = 1;
  greedy.max_kills = 0;
  const sim::ChaosSchedule c{greedy, topo};
  EXPECT_EQ(c.victims().size(), 6u);  // 8 ranks, floor of 2 survivors

  // Explicit rank and node kills land at their steps.
  sim::ChaosPolicy manual;
  manual.kill_rank_at = {{3, 5}};
  manual.kill_node_at = {{7, 1}};
  const sim::ChaosSchedule d{manual, topo};
  EXPECT_EQ(d.rank_kills_at(3), std::vector<sim::Rank>{5});
  EXPECT_EQ(d.node_kills_at(7), std::vector<int>{1});
  // Node 1 hosts ranks 4..7; 5 is already dead by then.
  EXPECT_EQ(d.rank_kills_at(7), (std::vector<sim::Rank>{4, 6, 7}));
}

TEST(Chaos, DropFilterExercisesRetransmitPath) {
  // Dropped packets are no longer silently lost: the fabric's reliability
  // sublayer retransmits them, so every packet is delivered exactly once
  // even at 50% loss. Shrink the timers so convergence is fast, and raise
  // the retry cap: at this loss rate a data+ack round trip succeeds with
  // probability ~0.25, so the default cap of 10 would spuriously escalate.
  sim::Cluster::Options opts = testing::zero_opts(1, 2);
  opts.reliability.tick_ns = 200'000;
  opts.reliability.rto_base_ns = 1'000'000;
  opts.reliability.rto_cap_ns = 4'000'000;
  opts.reliability.max_retries = 50;
  sim::Cluster cluster{opts};
  sim::ChaosPolicy pol;
  pol.seed = 7;
  pol.drop_fraction = 0.5;
  sim::ChaosMonkey monkey{cluster, pol};

  fabric::Fabric& f = cluster.fabric();
  constexpr int kPackets = 1000;
  for (int i = 0; i < kPackets; ++i) {
    fabric::Packet pkt;
    pkt.src_rank = 0;
    pkt.dst_rank = 1;
    pkt.match.src = 0;
    pkt.match.tag = i;
    f.send(std::move(pkt));
  }
  ASSERT_TRUE(f.quiesce(std::chrono::seconds(60)));
  // Exactly once: no packet lost, no duplicate reaches the inbox.
  EXPECT_EQ(f.endpoint(1).inbox().size(), static_cast<std::size_t>(kPackets));
  // The filter saw roughly half of a much larger transmission stream
  // (originals + retransmits + acks), so well over 350 drops.
  EXPECT_GT(f.chaos_dropped(), 350u);
  EXPECT_GT(f.retransmits(), 0u);
  EXPECT_LE(f.dup_suppressed(), f.retransmits());
  EXPECT_EQ(f.rto_escalations(), 0u);
}

TEST(Chaos, KillEveryNStepsSurvivorsShrinkAndContinue) {
  constexpr int kRanks = 8;
  constexpr int kSteps = 12;
  sim::Cluster cluster{testing::zero_opts(2, 4)};
  sim::ChaosPolicy pol;
  pol.seed = 2026;
  pol.kill_every_steps = 4;  // deaths at steps 4, 8, 12
  pol.max_kills = 3;
  pol.min_survivors = 4;
  sim::ChaosMonkey monkey{cluster, pol};

  std::array<std::int64_t, kRanks> final_sum{};
  final_sum.fill(-1);
  std::array<int, kRanks> final_size{};

  cluster.run([&](sim::Process& p) {
    Session s = Session::init(Info::null(), Errhandler::errors_return());
    Communicator comm = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "chaos", Info::null(),
        Errhandler::errors_return());
    for (int step = 1; step <= kSteps;) {
      if (!monkey.step(p, step)) {
        return;  // this rank just died
      }
      bool ok = true;
      try {
        const int n = comm.size();
        const int me = comm.rank();
        if (n > 1) {
          // Ring exchange, then a full allreduce — both must ride out every
          // failure via recovery.
          std::int32_t out = me;
          std::int32_t in = -1;
          comm.sendrecv(&out, 1, Datatype::int32(), (me + 1) % n, 5, &in, 1,
                        Datatype::int32(), (me + n - 1) % n, 5);
        }
        std::int64_t one = 1;
        std::int64_t sum = 0;
        comm.allreduce(&one, &sum, 1, Datatype::int64(), Op::sum());
      } catch (const Error&) {
        ok = false;
      }
      if (ok) {
        ++step;
        continue;
      }
      // ULFM recovery: revoke (pull stragglers out of the wreck), shrink,
      // then agree on a common resume step — survivors may have observed
      // the failure one step apart.
      comm.revoke();
      Communicator next = comm.shrink();
      comm.free();
      comm = next;
      const std::uint64_t common =
          comm.agree(~static_cast<std::uint64_t>(step));
      step = static_cast<int>(~common) + 1;
    }
    std::int64_t one = 1;
    std::int64_t sum = 0;
    comm.allreduce(&one, &sum, 1, Datatype::int64(), Op::sum());
    final_sum[static_cast<std::size_t>(p.rank())] = sum;
    final_size[static_cast<std::size_t>(p.rank())] = comm.size();
    comm.free();
    s.finalize();
  });

  EXPECT_GE(monkey.kills(), 1u);
  const auto survivors = static_cast<std::int64_t>(kRanks - monkey.kills());
  for (sim::Rank r = 0; r < kRanks; ++r) {
    if (cluster.fabric().is_failed(r)) {
      continue;
    }
    EXPECT_EQ(final_sum[static_cast<std::size_t>(r)], survivors);
    EXPECT_EQ(final_size[static_cast<std::size_t>(r)], survivors);
  }
}

}  // namespace
}  // namespace sessmpi
