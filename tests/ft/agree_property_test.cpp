// Property-style tests for the fault-tolerant agreement protocol: inject a
// process failure at *every* instrumented protocol step (ft::AgreeStep) and
// assert the ULFM agreement contract each time — all survivors decide the
// same value, and that value is the AND of a contribution subset that
// contains every survivor's contribution.
//
// The failure is injected through ft::testing::set_agree_hook: when the
// victim rank reaches the target step it marks itself failed in the fabric
// (exactly what a crash at that instant looks like to the survivors) and
// unwinds out of agree() via a test-local exception.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>

#include "../core/harness.hpp"
#include "sessmpi/ft/ft.hpp"

namespace sessmpi {
namespace {

using testing::world_run;

constexpr int kRanks = 4;
constexpr std::array<std::uint64_t, kRanks> kContrib = {0xFFFFu, 0xFFFEu,
                                                        0xFFFDu, 0xFFFBu};

/// Thrown by the hook to unwind the victim out of agree() post-mortem.
struct KilledByHook {};

/// RAII: never leak the global hook into other tests, even on failure.
struct HookGuard {
  explicit HookGuard(ft::testing::AgreeHook h) {
    ft::testing::set_agree_hook(std::move(h));
  }
  ~HookGuard() { ft::testing::set_agree_hook(nullptr); }
};

const char* step_name(ft::AgreeStep s) {
  switch (s) {
    case ft::AgreeStep::enter: return "enter";
    case ft::AgreeStep::follower_pre_push: return "follower_pre_push";
    case ft::AgreeStep::follower_post_push: return "follower_post_push";
    case ft::AgreeStep::coordinator_gathered: return "coordinator_gathered";
    case ft::AgreeStep::pre_flood: return "pre_flood";
    case ft::AgreeStep::mid_flood: return "mid_flood";
    case ft::AgreeStep::post_flood: return "post_flood";
    default: return "?";
  }
}

/// Run one agreement on kRanks ranks with `victim` dying at `step`; assert
/// survivor uniformity and contribution-subset soundness.
void check_agree_with_death_at(ft::AgreeStep step, int victim) {
  SCOPED_TRACE(std::string("step=") + step_name(step) +
               " victim=" + std::to_string(victim));

  std::array<std::uint64_t, kRanks> decided{};
  std::array<bool, kRanks> survived{};
  std::atomic<bool> killed{false};
  HookGuard guard{[&](ft::AgreeStep s, int me) {
    if (s == step && me == victim && !killed.exchange(true)) {
      sim::Cluster::current().fail();
      throw KilledByHook{};
    }
  }};

  world_run(1, kRanks, [&](sim::Process& p) {
    const auto me = static_cast<std::size_t>(p.rank());
    try {
      decided[me] = comm_world().agree(kContrib[me]);
      survived[me] = true;
    } catch (const KilledByHook&) {
      // Crashed at the injected step; world_run's finalize is local-only.
    }
  });

  // The victim may or may not have reached the step (a kill at, say,
  // coordinator_gathered never fires on a follower-only run) — but with a
  // single failure there must be at least kRanks - 1 survivors.
  int survivors = 0;
  std::uint64_t and_survivors = ~0ull;
  std::uint64_t and_all = ~0ull;
  for (std::size_t r = 0; r < kRanks; ++r) {
    and_all &= kContrib[r];
    if (survived[r]) {
      ++survivors;
      and_survivors &= kContrib[r];
    }
  }
  ASSERT_GE(survivors, kRanks - 1);

  // Uniformity: every survivor decided the same value.
  std::uint64_t value = 0;
  bool first = true;
  for (std::size_t r = 0; r < kRanks; ++r) {
    if (!survived[r]) {
      continue;
    }
    if (first) {
      value = decided[r];
      first = false;
    }
    EXPECT_EQ(decided[r], value) << "rank " << r << " decided differently";
  }

  // Soundness: the decision is the AND of some subset S of contributions
  // with survivors ⊆ S ⊆ all ranks — so it can only clear bits relative to
  // the survivor AND, and only down to the all-ranks AND.
  EXPECT_EQ(value & and_survivors, value);
  EXPECT_EQ(value & and_all, and_all);
}

TEST(AgreeProperty, UniformUnderCoordinatorDeathAtEveryStep) {
  // Rank 0 is the initial coordinator; these are the steps it reaches.
  for (const ft::AgreeStep step :
       {ft::AgreeStep::enter, ft::AgreeStep::coordinator_gathered,
        ft::AgreeStep::pre_flood, ft::AgreeStep::mid_flood,
        ft::AgreeStep::post_flood}) {
    check_agree_with_death_at(step, /*victim=*/0);
  }
}

TEST(AgreeProperty, UniformUnderFollowerDeathAtEveryStep) {
  for (const ft::AgreeStep step :
       {ft::AgreeStep::enter, ft::AgreeStep::follower_pre_push,
        ft::AgreeStep::follower_post_push, ft::AgreeStep::pre_flood,
        ft::AgreeStep::mid_flood, ft::AgreeStep::post_flood}) {
    check_agree_with_death_at(step, /*victim=*/2);
  }
}

}  // namespace
}  // namespace sessmpi
