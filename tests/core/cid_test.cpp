#include <gtest/gtest.h>

#include <set>

#include "harness.hpp"

namespace sessmpi {
namespace {

using testing::mpi_run;
using testing::world_run;

TEST(ExCidWire, FirstMessageUsesExtendedHeaderThenSwitches) {
  // Paper §III-B4: the first message on a sessions-derived comm carries the
  // exCID extended header; after the receiver's ACK the sender switches to
  // the 14-byte fast path.
  mpi_run(1, 2, [](sim::Process& p) {
    Session s = Session::init();
    Communicator c = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "wire");
    EXPECT_TRUE(c.uses_excid());
    EXPECT_EQ(c.handshaked_peers(), 0);

    const int other = 1 - p.rank();
    // Ping-pong a few times; the first exchange performs the handshake.
    for (int i = 0; i < 5; ++i) {
      std::int32_t v = i;
      if (p.rank() == 0) {
        c.send(&v, 1, Datatype::int32(), other, 1);
        c.recv(&v, 1, Datatype::int32(), other, 2);
      } else {
        c.recv(&v, 1, Datatype::int32(), other, 1);
        c.send(&v, 1, Datatype::int32(), other, 2);
      }
    }
    // Both processes learned the peer's local CID.
    EXPECT_GE(c.handshaked_peers(), 1);
    c.free();
    s.finalize();
  });
}

TEST(ExCidWire, LocalCidsMayDifferAcrossProcesses) {
  // One process burns extra CID slots before the collective creation, so
  // the local array indices diverge — exactly the constraint the exCID
  // design removes (paper §III-B3). Communication must still work.
  mpi_run(1, 2, [](sim::Process& p) {
    Session s = Session::init();
    std::vector<Communicator> burners;
    if (p.rank() == 0) {
      // Self-only comms to shift rank 0's CID allocator.
      for (int i = 0; i < 3; ++i) {
        burners.push_back(Communicator::create_from_group(
            s.group_from_pset("mpi://self"), "burn" + std::to_string(i)));
      }
    }
    Communicator c = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "diverged");

    // exCID identical everywhere; local CIDs exchanged out-of-band to check
    // they differ.
    std::uint64_t ex_hi = c.excid().hi;
    std::uint64_t max_hi = 0, min_hi = 0;
    c.allreduce(&ex_hi, &max_hi, 1, Datatype::uint64(), Op::max());
    c.allreduce(&ex_hi, &min_hi, 1, Datatype::uint64(), Op::min());
    EXPECT_EQ(max_hi, min_hi);

    std::int64_t cid = c.cid();
    std::int64_t cid_max = 0, cid_min = 0;
    c.allreduce(&cid, &cid_max, 1, Datatype::int64(), Op::max());
    c.allreduce(&cid, &cid_min, 1, Datatype::int64(), Op::min());
    EXPECT_NE(cid_max, cid_min) << "local CIDs should have diverged";

    for (auto& b : burners) {
      b.free();
    }
    c.free();
    s.finalize();
  });
}

TEST(ConsensusCid, DupAgreesOnCommonIndex) {
  world_run(1, 4, [](sim::Process&) {
    set_cid_method(CidMethod::consensus);
    Communicator world = comm_world();
    Communicator dup = world.dup();
    EXPECT_FALSE(dup.uses_excid());
    // Same array index on every process.
    std::int64_t cid = dup.cid();
    std::int64_t mx = 0, mn = 0;
    world.allreduce(&cid, &mx, 1, Datatype::int64(), Op::max());
    world.allreduce(&cid, &mn, 1, Datatype::int64(), Op::min());
    EXPECT_EQ(mx, mn);
    // And it works for traffic.
    std::int64_t me = dup.rank(), sum = 0;
    dup.allreduce(&me, &sum, 1, Datatype::int64(), Op::sum());
    EXPECT_EQ(sum, 6);
    dup.free();
  });
}

TEST(ConsensusCid, FragmentationForcesExtraRounds) {
  // Different processes free different slots; the next consensus has to
  // iterate past locally-free-but-globally-taken indices (§IV-C2).
  world_run(1, 2, [](sim::Process& p) {
    set_cid_method(CidMethod::consensus);
    Communicator world = comm_world();
    std::vector<Communicator> held;
    for (int i = 0; i < 4; ++i) {
      held.push_back(world.dup());
    }
    // Rank 0 frees an early comm, rank 1 a late one -> divergent holes.
    if (p.rank() == 0) {
      held[0].free();
    } else {
      held[3].free();
    }
    Communicator fresh = world.dup();  // must converge despite fragmentation
    std::int64_t me = fresh.rank(), sum = 0;
    fresh.allreduce(&me, &sum, 1, Datatype::int64(), Op::sum());
    EXPECT_EQ(sum, 1);
    fresh.free();
    for (int i = 0; i < 4; ++i) {
      if ((p.rank() == 0 && i != 0) || (p.rank() == 1 && i != 3)) {
        held[static_cast<std::size_t>(i)].free();
      }
    }
  });
}

TEST(ExCidDup, DerivationAvoidsPgcidAcquisition) {
  mpi_run(1, 2, [](sim::Process&) {
    Session s = Session::init();
    set_excid_derivation(true);
    Communicator parent = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "parent");
    const auto pgcids_before = pgcids_acquired();
    Communicator child = parent.dup();
    EXPECT_EQ(pgcids_acquired(), pgcids_before)
        << "derived dup must not acquire a PGCID";
    // Child shares the PGCID half, differs in the subfields.
    EXPECT_EQ(child.excid().hi, parent.excid().hi);
    EXPECT_NE(child.excid().lo, parent.excid().lo);
    std::int64_t one = 1, sum = 0;
    child.allreduce(&one, &sum, 1, Datatype::int64(), Op::sum());
    EXPECT_EQ(sum, 2);
    child.free();
    parent.free();
    s.finalize();
  });
}

TEST(ExCidDup, PrototypeModeAcquiresPgcidPerDup) {
  // Fig. 4 measured behaviour: each dup pays a PGCID acquisition.
  mpi_run(1, 2, [](sim::Process&) {
    Session s = Session::init();
    set_excid_derivation(false);
    Communicator parent = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "parent");
    const auto before = pgcids_acquired();
    Communicator child = parent.dup();
    EXPECT_EQ(pgcids_acquired(), before + 1);
    EXPECT_NE(child.excid().hi, parent.excid().hi);
    child.free();
    parent.free();
    set_excid_derivation(true);
    s.finalize();
  });
}

TEST(ExCidDup, ChainedDerivationsStayUnique) {
  mpi_run(1, 2, [](sim::Process&) {
    Session s = Session::init();
    set_excid_derivation(true);
    Communicator root = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "chain");
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    seen.insert({root.excid().hi, root.excid().lo});

    // Children of one parent and a chain of grandchildren.
    std::vector<Communicator> comms{root};
    Communicator cursor = root;
    for (int depth = 0; depth < 6; ++depth) {
      Communicator child = cursor.dup();
      EXPECT_TRUE(seen.insert({child.excid().hi, child.excid().lo}).second)
          << "exCID collision at depth " << depth;
      comms.push_back(child);
      cursor = child;
    }
    for (int i = 0; i < 4; ++i) {
      Communicator sibling = root.dup();
      EXPECT_TRUE(seen.insert({sibling.excid().hi, sibling.excid().lo}).second);
      comms.push_back(sibling);
    }
    for (auto& c : comms) {
      c.free();
    }
    s.finalize();
  });
}

TEST(ExCidDup, DeepChainFallsBackToFreshPgcid) {
  // Depth > 7 exhausts the subfields (fresh space starts at subfield 7 and
  // each child moves one lower); the 8th derivation needs a new PGCID.
  mpi_run(1, 1, [](sim::Process&) {
    Session s = Session::init();
    set_excid_derivation(true);
    Communicator cursor = Communicator::create_from_group(
        s.group_from_pset("mpi://self"), "deep");
    const std::uint64_t root_hi = cursor.excid().hi;
    std::vector<Communicator> chain{cursor};
    bool saw_fresh_pgcid = false;
    for (int depth = 0; depth < 9; ++depth) {
      Communicator child = cursor.dup();
      if (child.excid().hi != root_hi) {
        saw_fresh_pgcid = true;
      }
      chain.push_back(child);
      cursor = child;
    }
    EXPECT_TRUE(saw_fresh_pgcid);
    for (auto& c : chain) {
      c.free();
    }
    s.finalize();
  });
}

TEST(CommSplit, SplitsByColorAndOrdersByKey) {
  mpi_run(1, 4, [](sim::Process& p) {
    Session s = Session::init();
    Communicator c = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "split");
    // Even/odd split with reversed key ordering.
    Communicator half = c.split(p.rank() % 2, -p.rank());
    EXPECT_EQ(half.size(), 2);
    // Key is -rank, so the higher parent rank comes first.
    const int expect_rank = p.rank() < 2 ? 1 : 0;
    EXPECT_EQ(half.rank(), expect_rank);
    std::int64_t me = p.rank(), sum = 0;
    half.allreduce(&me, &sum, 1, Datatype::int64(), Op::sum());
    EXPECT_EQ(sum, p.rank() % 2 == 0 ? 2 : 4);
    half.free();
    c.free();
    s.finalize();
  });
}

TEST(CommSplit, UndefinedColorGetsNullComm) {
  world_run(1, 3, [](sim::Process& p) {
    Communicator world = comm_world();
    Communicator part = world.split(p.rank() == 0 ? -1 : 0, 0);
    if (p.rank() == 0) {
      EXPECT_TRUE(part.is_null());
    } else {
      EXPECT_EQ(part.size(), 2);
      part.free();
    }
  });
}

TEST(CommCreateGroup, SubsetOnlyCollective) {
  world_run(1, 4, [](sim::Process& p) {
    Communicator world = comm_world();
    Group sub = world.group().incl({1, 2});
    if (p.rank() == 1 || p.rank() == 2) {
      Communicator c = world.create_group(sub, 17);
      EXPECT_EQ(c.size(), 2);
      EXPECT_TRUE(c.uses_excid());
      std::int64_t one = 1, n = 0;
      c.allreduce(&one, &n, 1, Datatype::int64(), Op::sum());
      EXPECT_EQ(n, 2);
      c.free();
    }
    world.barrier();
  });
}

TEST(CommDup, AttributesFollowKeyvalCopySemantics) {
  world_run(1, 2, [](sim::Process&) {
    Communicator world = comm_world();
    Keyval copied = Keyval::create();
    Keyval dropped = Keyval::create(
        [](AttrValue) { return std::nullopt; });  // never copied
    world.attributes().set(copied, 7);
    world.attributes().set(dropped, 8);
    Communicator dup = world.dup();
    EXPECT_EQ(dup.attributes().get(copied), 7);
    EXPECT_FALSE(dup.attributes().get(dropped).has_value());
    dup.free();
    world.attributes().erase(copied);
    world.attributes().erase(dropped);
  });
}

TEST(CommFree, FreedCidIsReused) {
  mpi_run(1, 1, [](sim::Process&) {
    Session s = Session::init();
    Communicator a = Communicator::create_from_group(
        s.group_from_pset("mpi://self"), "a");
    const auto cid_a = a.cid();
    a.free();
    Communicator b = Communicator::create_from_group(
        s.group_from_pset("mpi://self"), "b");
    EXPECT_EQ(b.cid(), cid_a) << "lowest-free allocation should reuse slot";
    b.free();
    s.finalize();
  });
}

TEST(CommFree, UseAfterFreeRaises) {
  world_run(1, 1, [](sim::Process&) {
    Communicator dup = comm_world().dup();
    Communicator alias = dup;
    dup.free();
    EXPECT_THROW((void)alias.rank(), Error);
    EXPECT_THROW(alias.barrier(), Error);
  });
}

}  // namespace
}  // namespace sessmpi
