#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "harness.hpp"
#include "sessmpi/base/clock.hpp"

namespace sessmpi {
namespace {

using testing::world_run;

struct ShapeParam {
  int nodes;
  int ppn;
};

class CollectiveShapes : public ::testing::TestWithParam<ShapeParam> {
 protected:
  [[nodiscard]] int nodes() const { return GetParam().nodes; }
  [[nodiscard]] int ppn() const { return GetParam().ppn; }
};

TEST_P(CollectiveShapes, BarrierSynchronizes) {
  world_run(nodes(), ppn(), [](sim::Process&) {
    Communicator world = comm_world();
    for (int i = 0; i < 3; ++i) {
      world.barrier();
    }
  });
}

TEST_P(CollectiveShapes, BcastFromEveryRoot) {
  world_run(nodes(), ppn(), [](sim::Process&) {
    Communicator world = comm_world();
    for (int root = 0; root < world.size(); ++root) {
      std::int64_t v = world.rank() == root ? 1000 + root : -1;
      world.bcast(&v, 1, Datatype::int64(), root);
      EXPECT_EQ(v, 1000 + root);
    }
  });
}

TEST_P(CollectiveShapes, AllreduceSumAndMax) {
  world_run(nodes(), ppn(), [](sim::Process&) {
    Communicator world = comm_world();
    const int n = world.size();
    const std::int64_t me = world.rank();
    std::int64_t sum = 0;
    world.allreduce(&me, &sum, 1, Datatype::int64(), Op::sum());
    EXPECT_EQ(sum, static_cast<std::int64_t>(n) * (n - 1) / 2);
    std::int64_t mx = 0;
    world.allreduce(&me, &mx, 1, Datatype::int64(), Op::max());
    EXPECT_EQ(mx, n - 1);
  });
}

TEST_P(CollectiveShapes, ReduceToEveryRoot) {
  world_run(nodes(), ppn(), [](sim::Process&) {
    Communicator world = comm_world();
    const int n = world.size();
    for (int root = 0; root < n; ++root) {
      const double mine = 1.5;
      double total = 0;
      world.reduce(&mine, &total, 1, Datatype::float64(), Op::sum(), root);
      if (world.rank() == root) {
        EXPECT_DOUBLE_EQ(total, 1.5 * n);
      }
    }
  });
}

TEST_P(CollectiveShapes, GatherCollectsInRankOrder) {
  world_run(nodes(), ppn(), [](sim::Process&) {
    Communicator world = comm_world();
    const int n = world.size();
    const std::int32_t mine = world.rank() * 3;
    std::vector<std::int32_t> all(static_cast<std::size_t>(n), -1);
    world.gather(&mine, 1, Datatype::int32(), all.data(), 1, Datatype::int32(),
                 0);
    if (world.rank() == 0) {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(i)], i * 3);
      }
    }
  });
}

TEST_P(CollectiveShapes, ScatterDistributesInRankOrder) {
  world_run(nodes(), ppn(), [](sim::Process&) {
    Communicator world = comm_world();
    const int n = world.size();
    std::vector<std::int32_t> all;
    if (world.rank() == 0) {
      all.resize(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        all[static_cast<std::size_t>(i)] = 7 * i;
      }
    }
    std::int32_t mine = -1;
    world.scatter(all.data(), 1, Datatype::int32(), &mine, 1,
                  Datatype::int32(), 0);
    EXPECT_EQ(mine, 7 * world.rank());
  });
}

TEST_P(CollectiveShapes, AllgatherEveryoneSeesEverything) {
  world_run(nodes(), ppn(), [](sim::Process&) {
    Communicator world = comm_world();
    const int n = world.size();
    const std::int32_t mine = 100 + world.rank();
    std::vector<std::int32_t> all(static_cast<std::size_t>(n), -1);
    world.allgather(&mine, 1, Datatype::int32(), all.data(), 1,
                    Datatype::int32());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)], 100 + i);
    }
  });
}

TEST_P(CollectiveShapes, AlltoallTransposes) {
  world_run(nodes(), ppn(), [](sim::Process&) {
    Communicator world = comm_world();
    const int n = world.size();
    std::vector<std::int32_t> out(static_cast<std::size_t>(n));
    std::vector<std::int32_t> in(static_cast<std::size_t>(n), -1);
    for (int i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] = world.rank() * 1000 + i;
    }
    world.alltoall(out.data(), 1, Datatype::int32(), in.data(), 1,
                   Datatype::int32());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(in[static_cast<std::size_t>(i)], i * 1000 + world.rank());
    }
  });
}

TEST_P(CollectiveShapes, InclusiveScan) {
  world_run(nodes(), ppn(), [](sim::Process&) {
    Communicator world = comm_world();
    const std::int64_t mine = world.rank() + 1;
    std::int64_t prefix = 0;
    world.scan(&mine, &prefix, 1, Datatype::int64(), Op::sum());
    const std::int64_t r = world.rank() + 1;
    EXPECT_EQ(prefix, r * (r + 1) / 2);
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, CollectiveShapes,
                         ::testing::Values(ShapeParam{1, 1}, ShapeParam{1, 2},
                                           ShapeParam{1, 5}, ShapeParam{2, 2},
                                           ShapeParam{2, 4}, ShapeParam{3, 3},
                                           ShapeParam{4, 2}));

TEST(Collectives, AllreduceVectorPayload) {
  world_run(2, 2, [](sim::Process&) {
    Communicator world = comm_world();
    constexpr int kN = 1000;
    std::vector<double> mine(kN), total(kN);
    for (int i = 0; i < kN; ++i) {
      mine[static_cast<std::size_t>(i)] = world.rank() + i * 0.001;
    }
    world.allreduce(mine.data(), total.data(), kN, Datatype::float64(),
                    Op::sum());
    const int n = world.size();
    EXPECT_NEAR(total[0], n * (n - 1) / 2.0, 1e-9);
    EXPECT_NEAR(total[kN - 1], n * (n - 1) / 2.0 + n * (kN - 1) * 0.001, 1e-9);
  });
}

TEST(Collectives, NonCommutativeOpFoldsInRankOrder) {
  world_run(1, 4, [](sim::Process&) {
    Communicator world = comm_world();
    // f(a,b) = 10*a + b is non-commutative; rank-ordered fold of 1,2,3,4
    // gives ((1*10+2)*10+3)*10+4 = 1234.
    Op chained = Op::create(
        [](const void* in, void* inout, int count, const Datatype&) {
          const auto* a = static_cast<const std::int64_t*>(in);
          auto* b = static_cast<std::int64_t*>(inout);
          for (int i = 0; i < count; ++i) {
            b[i] = b[i] * 10 + a[i];
          }
        },
        /*commute=*/false, "chain");
    const std::int64_t mine = world.rank() + 1;
    std::int64_t result = 0;
    world.reduce(&mine, &result, 1, Datatype::int64(), chained, 0);
    if (world.rank() == 0) {
      EXPECT_EQ(result, 1234);
    }
  });
}

TEST(Collectives, IbarrierOverlapsComputation) {
  world_run(1, 4, [](sim::Process& p) {
    Communicator world = comm_world();
    Request req = world.ibarrier();
    if (p.rank() == 0) {
      // Rank 0 delays; others' test() must not complete the barrier early.
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    req.wait();
  });
}

TEST(Collectives, IbarrierTestLoopEventuallyCompletes) {
  world_run(1, 3, [](sim::Process&) {
    Communicator world = comm_world();
    Request req = world.ibarrier();
    int polls = 0;
    while (!req.test()) {
      ++polls;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ASSERT_LT(polls, 1000000) << "ibarrier never completed";
    }
  });
}

TEST(Collectives, ConsecutiveIbarriersDoNotCrossTalk) {
  world_run(1, 4, [](sim::Process&) {
    Communicator world = comm_world();
    for (int i = 0; i < 10; ++i) {
      world.ibarrier().wait();
    }
  });
}

TEST(Collectives, BarrierActuallyWaitsForSlowest) {
  world_run(1, 3, [](sim::Process& p) {
    Communicator world = comm_world();
    base::Stopwatch sw;
    if (p.rank() == 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    world.barrier();
    if (p.rank() != 2) {
      EXPECT_GT(sw.elapsed_ms(), 30.0);
    }
  });
}

}  // namespace
}  // namespace sessmpi
