#include "sessmpi/info.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace sessmpi {
namespace {

TEST(Info, WorksBeforeAnyInitialization) {
  // Paper §III-B5: Info objects must be fully usable pre-init. This test
  // runs with no cluster and no init of any kind.
  Info info;
  info.set("mpi_thread_support_level", "multiple");
  EXPECT_EQ(info.get("mpi_thread_support_level"), "multiple");
}

TEST(Info, SetGetEraseRoundTrip) {
  Info info;
  EXPECT_FALSE(info.get("k").has_value());
  info.set("k", "v1");
  info.set("k", "v2");  // overwrite
  EXPECT_EQ(info.get("k"), "v2");
  EXPECT_TRUE(info.erase("k"));
  EXPECT_FALSE(info.erase("k"));
  EXPECT_FALSE(info.get("k").has_value());
}

TEST(Info, NkeysAndNthKeySorted) {
  Info info;
  info.set("zeta", "1");
  info.set("alpha", "2");
  info.set("mid", "3");
  EXPECT_EQ(info.nkeys(), 3u);
  EXPECT_EQ(info.nthkey(0), "alpha");
  EXPECT_EQ(info.nthkey(1), "mid");
  EXPECT_EQ(info.nthkey(2), "zeta");
  EXPECT_FALSE(info.nthkey(3).has_value());
  EXPECT_EQ(info.keys(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(Info, DupIsDeepCopy) {
  Info a;
  a.set("k", "original");
  Info b = a.dup();
  b.set("k", "changed");
  b.set("extra", "1");
  EXPECT_EQ(a.get("k"), "original");
  EXPECT_EQ(a.nkeys(), 1u);
  EXPECT_EQ(b.nkeys(), 2u);
}

TEST(Info, HandleCopySharesState) {
  Info a;
  Info b = a;  // MPI handles: copies refer to the same object
  a.set("k", "v");
  EXPECT_EQ(b.get("k"), "v");
}

TEST(Info, NullInfoIsInertAndEmpty) {
  const Info& null = Info::null();
  EXPECT_TRUE(null.is_null());
  EXPECT_EQ(null.nkeys(), 0u);
  EXPECT_FALSE(null.get("k").has_value());
  EXPECT_FALSE(null.dup().is_null());  // dup of null yields a real object
}

TEST(Info, ConcurrentMutationIsSafe) {
  // Locks are always enabled (thread safety required pre-init).
  Info info;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&info, t] {
      for (int i = 0; i < 200; ++i) {
        info.set("key" + std::to_string(t), std::to_string(i));
        (void)info.get("key" + std::to_string((t + 1) % 8));
        (void)info.nkeys();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(info.nkeys(), 8u);
}

}  // namespace
}  // namespace sessmpi
