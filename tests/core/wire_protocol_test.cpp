// Tests pinning the exCID wire protocol details of paper §III-B4: which
// messages carry extended headers, when the ACK switches a peer to the
// fast path, and what happens to early arrivals for unknown exCIDs.

#include <gtest/gtest.h>

#include <thread>

#include "harness.hpp"

namespace sessmpi {
namespace {

using testing::mpi_run;
using testing::world_run;

TEST(WireProtocol, WorldModelNeverSendsExtendedHeaders) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    const int other = 1 - p.rank();
    for (int i = 0; i < 10; ++i) {
      std::int32_t v = i;
      if (p.rank() == 0) {
        world.send(&v, 1, Datatype::int32(), other, 1);
      } else {
        world.recv(&v, 1, Datatype::int32(), other, 1);
      }
    }
    EXPECT_FALSE(world.uses_excid());
  });
}

TEST(WireProtocol, BackToBackSendsAllCarryExtHeadersUntilProgress) {
  // The Fig. 5c mechanism: a sender that does not progress between sends
  // keeps attaching extended headers because the receiver's ACK has not
  // been processed yet.
  mpi_run(1, 2, [](sim::Process& p) {
    Session s = Session::init();
    Communicator c = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "burst");
    constexpr int kBurst = 10;
    if (p.rank() == 0) {
      std::vector<Request> reqs;
      std::int32_t v = 7;
      for (int i = 0; i < kBurst; ++i) {
        reqs.push_back(c.isend(&v, 1, Datatype::int32(), 1, 2));
      }
      // No progress happened between the isends: every one went out with
      // the extended header.
      // (ext_headers_sent is tracked per communicator.)
      Request::wait_all(reqs);
      // Handshake: receive the ACK-carrying reply path by ping-ponging.
      std::int32_t r = 0;
      c.recv(&r, 1, Datatype::int32(), 1, 3);
      // Now the fast path is available.
      c.send(&v, 1, Datatype::int32(), 1, 4);
      EXPECT_GE(c.handshaked_peers(), 1);
    } else {
      std::int32_t v = 0;
      for (int i = 0; i < kBurst; ++i) {
        c.recv(&v, 1, Datatype::int32(), 0, 2);
      }
      c.send(&v, 1, Datatype::int32(), 0, 3);
      c.recv(&v, 1, Datatype::int32(), 0, 4);
    }
    c.free();
    s.finalize();
  });
}

TEST(WireProtocol, SendrecvPresyncSwitchesToFastPath) {
  // The paper's fix for osu_mbw_mr: one Sendrecv fully handshakes a pair.
  mpi_run(1, 2, [](sim::Process& p) {
    Session s = Session::init();
    Communicator c = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "presync");
    const int other = 1 - p.rank();
    std::byte tok{};
    c.sendrecv(&tok, 1, Datatype::byte(), other, 9, &tok, 1, Datatype::byte(),
               other, 9);
    // Drive one more progress round so the final ACK lands everywhere.
    c.barrier();
    EXPECT_EQ(c.handshaked_peers(), 1);
    c.free();
    s.finalize();
  });
}

TEST(WireProtocol, EarlyArrivalsForUnknownExCidArePreserved) {
  // One rank races ahead: it finishes communicator construction and fires
  // a message while the peer has not registered the exCID locally yet. The
  // orphan queue must hold and replay it.
  mpi_run(1, 2, [](sim::Process& p) {
    Session s = Session::init();
    Communicator c = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "race");
    if (p.rank() == 0) {
      std::int32_t v = 31337;
      c.send(&v, 1, Datatype::int32(), 1, 0);
    } else {
      // Delay a bit so the message likely arrives before we even post.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      std::int32_t v = 0;
      c.recv(&v, 1, Datatype::int32(), 0, 0);
      EXPECT_EQ(v, 31337);
    }
    c.free();
    s.finalize();
  });
}

TEST(WireProtocol, RendezvousProbeSeesAdvertisedSize) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    const int n = static_cast<int>(kEagerLimit) * 2;
    if (p.rank() == 0) {
      std::vector<std::byte> big(static_cast<std::size_t>(n), std::byte{1});
      world.send(big.data(), n, Datatype::byte(), 1, 8);
    } else {
      Status st = world.probe(0, 8);
      EXPECT_EQ(st.count(Datatype::byte()), n)
          << "probe must report the advertised rendezvous size";
      std::vector<std::byte> buf(static_cast<std::size_t>(n));
      world.recv(buf.data(), n, Datatype::byte(), 0, 8);
    }
  });
}

TEST(WireProtocol, WildcardTagNeverMatchesInternalTraffic) {
  // Collectives use the negative tag space; a user ANY_TAG receive posted
  // concurrently must not swallow their packets.
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    const int other = 1 - p.rank();
    std::int32_t v = 0;
    Request r = world.irecv(&v, 1, Datatype::int32(), other, any_tag);
    for (int i = 0; i < 3; ++i) {
      world.barrier();  // internal messages fly while the wildcard is open
    }
    const std::int32_t out = 5;
    world.send(&out, 1, Datatype::int32(), other, 1234);
    Status st = r.wait();
    EXPECT_EQ(st.tag, 1234);
    EXPECT_EQ(v, 5);
  });
}

TEST(WireProtocol, ExtHeaderCountsAreTracked) {
  mpi_run(1, 2, [](sim::Process& p) {
    Session s = Session::init();
    Communicator c = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "stats");
    const int other = 1 - p.rank();
    // First exchange: ext headers both ways; then ping-pong on fast path.
    std::int32_t v = 0;
    if (p.rank() == 0) {
      c.send(&v, 1, Datatype::int32(), other, 1);
      c.recv(&v, 1, Datatype::int32(), other, 1);
      for (int i = 0; i < 5; ++i) {
        c.send(&v, 1, Datatype::int32(), other, 2);
        c.recv(&v, 1, Datatype::int32(), other, 2);
      }
    } else {
      c.recv(&v, 1, Datatype::int32(), other, 1);
      c.send(&v, 1, Datatype::int32(), other, 1);
      for (int i = 0; i < 5; ++i) {
        c.recv(&v, 1, Datatype::int32(), other, 2);
        c.send(&v, 1, Datatype::int32(), other, 2);
      }
    }
    c.free();
    s.finalize();
  });
}

}  // namespace
}  // namespace sessmpi
