#include "sessmpi/win.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "harness.hpp"

namespace sessmpi {
namespace {

using testing::mpi_run;
using testing::world_run;

TEST(Win, PutVisibleAfterFence) {
  world_run(1, 2, [](sim::Process& p) {
    std::vector<std::int64_t> window(4, 0);
    Win win = Win::create(window.data(), window.size() * 8, comm_world());
    if (p.rank() == 0) {
      const std::int64_t v[2] = {11, 22};
      win.put(v, 2, Datatype::int64(), 1, 8);  // into slots 1..2 of rank 1
    }
    win.fence();
    if (p.rank() == 1) {
      EXPECT_EQ(window[0], 0);
      EXPECT_EQ(window[1], 11);
      EXPECT_EQ(window[2], 22);
    }
    win.free();
  });
}

TEST(Win, GetCompletesAtFence) {
  world_run(1, 2, [](sim::Process& p) {
    std::vector<double> window(3, 0);
    if (p.rank() == 1) {
      window = {1.5, 2.5, 3.5};
    }
    Win win = Win::create(window.data(), window.size() * 8, comm_world());
    double got[3] = {0, 0, 0};
    if (p.rank() == 0) {
      win.get(got, 3, Datatype::float64(), 1, 0);
    }
    win.fence();
    if (p.rank() == 0) {
      EXPECT_DOUBLE_EQ(got[0], 1.5);
      EXPECT_DOUBLE_EQ(got[2], 3.5);
    }
    win.free();
  });
}

TEST(Win, AccumulateSumsContributions) {
  world_run(1, 4, [](sim::Process& p) {
    std::int64_t cell = 0;
    Win win = Win::create(&cell, 8, comm_world());
    // Everyone accumulates its rank+1 into rank 0's cell.
    const std::int64_t mine = p.rank() + 1;
    win.accumulate(&mine, 1, Datatype::int64(), Op::sum(), 0, 0);
    win.fence();
    if (p.rank() == 0) {
      EXPECT_EQ(cell, 1 + 2 + 3 + 4);
    }
    win.free();
  });
}

TEST(Win, MultipleEpochsAreOrdered) {
  world_run(1, 2, [](sim::Process& p) {
    std::int64_t cell = 0;
    Win win = Win::create(&cell, 8, comm_world());
    for (std::int64_t epoch = 1; epoch <= 3; ++epoch) {
      if (p.rank() == 0) {
        win.put(&epoch, 1, Datatype::int64(), 1, 0);
      }
      win.fence();
      if (p.rank() == 1) {
        EXPECT_EQ(cell, epoch);
      }
      win.fence();  // exposure epoch for the check above
    }
    win.free();
  });
}

TEST(Win, CreateFromGroupViaIntermediateComm) {
  // The paper's §III-B6 path: sessions group -> intermediate communicator
  // -> MPI-3 creation -> intermediate freed. The window must stay usable.
  mpi_run(2, 2, [](sim::Process& p) {
    Session s = Session::init();
    std::vector<std::int32_t> window(8, -1);
    Win win = Win::create_from_group(s.group_from_pset("mpi://world"),
                                     "wintest", window.data(),
                                     window.size() * 4);
    EXPECT_EQ(win.size(), 4);
    EXPECT_EQ(win.rank(), p.rank());
    // Ring of puts: rank r writes its rank into slot r of its right
    // neighbor's window.
    const std::int32_t me = win.rank();
    win.put(&me, 1, Datatype::int32(), (me + 1) % 4,
            static_cast<std::size_t>(me) * 4);
    win.fence();
    const int left = (me + 3) % 4;
    EXPECT_EQ(window[static_cast<std::size_t>(left)], left);
    win.free();
    s.finalize();
  });
}

TEST(Win, WindowSizesMayDifferPerRank) {
  world_run(1, 2, [](sim::Process& p) {
    std::vector<std::byte> window(p.rank() == 0 ? 16 : 64);
    Win win = Win::create(window.data(), window.size(), comm_world());
    EXPECT_EQ(win.size_of(0), 16u);
    EXPECT_EQ(win.size_of(1), 64u);
    win.fence();
    win.free();
  });
}

TEST(Win, OutOfBoundsAccessThrows) {
  world_run(1, 2, [](sim::Process&) {
    std::vector<std::byte> window(16);
    Win win = Win::create(window.data(), window.size(), comm_world());
    std::int64_t v = 0;
    EXPECT_THROW(win.put(&v, 1, Datatype::int64(), 1, 9), Error);
    EXPECT_THROW(win.get(&v, 1, Datatype::int64(), 1, 16), Error);
    EXPECT_THROW(win.size_of(5), Error);
    win.fence();
    win.free();
  });
}

TEST(Win, AccumulateRejectsUserOpsAndDerivedTypes) {
  world_run(1, 1, [](sim::Process&) {
    std::int64_t cell = 0;
    Win win = Win::create(&cell, 8, comm_self());
    const std::int64_t v = 1;
    Op user = Op::create([](const void*, void*, int, const Datatype&) {});
    EXPECT_THROW(win.accumulate(&v, 1, Datatype::int64(), user, 0, 0), Error);
    Datatype derived = Datatype::contiguous(1, Datatype::int64());
    EXPECT_THROW(win.accumulate(&v, 1, derived, Op::sum(), 0, 0), Error);
    win.fence();
    win.free();
  });
}

TEST(Win, LargeRendezvousPut) {
  world_run(1, 2, [](sim::Process& p) {
    const std::size_t n = kEagerLimit * 3;
    std::vector<std::byte> window(n, std::byte{0});
    Win win = Win::create(window.data(), window.size(), comm_world());
    if (p.rank() == 0) {
      std::vector<std::byte> data(n, std::byte{0x5A});
      win.put(data.data(), static_cast<int>(n), Datatype::byte(), 1, 0);
    }
    win.fence();
    if (p.rank() == 1) {
      EXPECT_EQ(window[n - 1], std::byte{0x5A});
    }
    win.free();
  });
}

}  // namespace
}  // namespace sessmpi
