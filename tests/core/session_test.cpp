#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "harness.hpp"

namespace sessmpi {
namespace {

using testing::mpi_run;

TEST(Session, Figure1Flow) {
  // The full sequence from the paper's Figure 1: session handle -> pset
  // query -> group -> communicator -> use it.
  mpi_run(2, 2, [](sim::Process& p) {
    Session s = Session::init();
    auto psets = s.pset_names();
    EXPECT_NE(std::find(psets.begin(), psets.end(), "mpi://world"),
              psets.end());
    Group g = s.group_from_pset("mpi://world");
    EXPECT_EQ(g.size(), 4);
    Communicator comm = Communicator::create_from_group(g, "fig1");
    EXPECT_EQ(comm.size(), 4);
    EXPECT_EQ(comm.rank(), p.rank());
    std::int64_t me = comm.rank(), sum = 0;
    comm.allreduce(&me, &sum, 1, Datatype::int64(), Op::sum());
    EXPECT_EQ(sum, 6);
    comm.free();
    s.finalize();
  });
}

TEST(Session, PredefinedPsetsPresent) {
  mpi_run(2, 2, [](sim::Process& p) {
    Session s = Session::init();
    auto names = s.pset_names();
    for (const char* required : {"mpi://world", "mpi://self", "mpi://shared"}) {
      EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
          << required;
    }
    EXPECT_EQ(s.num_psets(), static_cast<int>(names.size()));
    EXPECT_EQ(s.nth_pset(0), names[0]);

    EXPECT_EQ(s.group_from_pset("mpi://self").size(), 1);
    EXPECT_TRUE(s.group_from_pset("mpi://self").contains(p.rank()));
    Group shared = s.group_from_pset("mpi://shared");
    EXPECT_EQ(shared.size(), 2);  // 2 procs per node
    s.finalize();
  });
}

TEST(Session, PsetInfoReportsSize) {
  mpi_run(1, 3, [](sim::Process&) {
    Session s = Session::init();
    Info info = s.pset_info("mpi://world");
    EXPECT_EQ(info.get("mpi_size"), "3");
    EXPECT_EQ(info.get("pset_name"), "mpi://world");
    s.finalize();
  });
}

TEST(Session, SiteSpecificPsets) {
  sim::Cluster::Options opts = testing::zero_opts(1, 4);
  opts.extra_psets.emplace_back("app://ocean", std::vector<pmix::ProcId>{0, 1});
  opts.extra_psets.emplace_back("app://ice", std::vector<pmix::ProcId>{2, 3});
  sim::Cluster cluster{opts};
  cluster.run([](sim::Process& p) {
    Session s = Session::init();
    const char* mine = p.rank() < 2 ? "app://ocean" : "app://ice";
    Group g = s.group_from_pset(mine);
    EXPECT_EQ(g.size(), 2);
    Communicator comm = Communicator::create_from_group(g, mine);
    std::int64_t one = 1, n = 0;
    comm.allreduce(&one, &n, 1, Datatype::int64(), Op::sum());
    EXPECT_EQ(n, 2);
    comm.free();
    s.finalize();
  });
}

TEST(Session, UnknownPsetRaises) {
  mpi_run(1, 1, [](sim::Process&) {
    Session s = Session::init();
    EXPECT_THROW((void)s.group_from_pset("mpi://nonexistent"), Error);
    s.finalize();
  });
}

TEST(Session, RepeatedInitFinalizeCycles) {
  // §II-A: init and re-init MPI multiple times within one execution.
  mpi_run(1, 2, [](sim::Process& p) {
    for (int cycle = 0; cycle < 3; ++cycle) {
      Session s = Session::init();
      Group g = s.group_from_pset("mpi://world");
      Communicator c =
          Communicator::create_from_group(g, "cycle" + std::to_string(cycle));
      std::int64_t v = p.rank(), sum = 0;
      c.allreduce(&v, &sum, 1, Datatype::int64(), Op::sum());
      EXPECT_EQ(sum, 1);
      c.free();
      s.finalize();
      // After the last finalize, MPI resources are fully torn down.
      EXPECT_FALSE(p.subsystems().is_initialized("instance"));
    }
    EXPECT_EQ(p.subsystems().completed_cycles(), 3);
  });
}

TEST(Session, OverlappingSessionsShareSubsystems) {
  mpi_run(1, 1, [](sim::Process& p) {
    Session a = Session::init();
    Session b = Session::init();
    EXPECT_NE(a.id(), b.id());
    EXPECT_TRUE(p.subsystems().is_initialized("instance"));
    a.finalize();
    // b still holds the instance: no teardown yet.
    EXPECT_TRUE(p.subsystems().is_initialized("instance"));
    b.finalize();
    EXPECT_FALSE(p.subsystems().is_initialized("instance"));
  });
}

TEST(Session, DoubleFinalizeRaises) {
  mpi_run(1, 1, [](sim::Process&) {
    Session s = Session::init();
    s.finalize();
    EXPECT_THROW(s.finalize(), Error);
    EXPECT_TRUE(s.finalized());
  });
}

TEST(Session, OperationsOnFinalizedSessionRaise) {
  mpi_run(1, 1, [](sim::Process&) {
    Session s = Session::init();
    s.finalize();
    EXPECT_THROW((void)s.pset_names(), Error);
    EXPECT_THROW((void)s.group_from_pset("mpi://world"), Error);
  });
}

TEST(Session, ThreadLevelFromInfo) {
  mpi_run(1, 1, [](sim::Process&) {
    Info info;
    info.set("thread_level", "funneled");
    Session s = Session::init(info);
    EXPECT_EQ(s.thread_level(), ThreadLevel::funneled);
    EXPECT_EQ(s.info().get("thread_level"), "funneled");
    s.finalize();

    Session d = Session::init();
    EXPECT_EQ(d.thread_level(), ThreadLevel::multiple);
    d.finalize();

    Info bad;
    bad.set("thread_level", "bogus");
    EXPECT_THROW(Session::init(bad), Error);
  });
}

TEST(Session, ConcurrentInitFromMultipleThreadsOfOneRank) {
  // MPI_Session_init must be thread-safe (paper §I): several application
  // threads of the same rank initialize and finalize sessions concurrently.
  mpi_run(1, 1, [](sim::Process& p) {
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::atomic<int> ok{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&p, &ok] {
        sim::ProcessAdopter adopt{p};
        Session s = Session::init();
        EXPECT_FALSE(s.finalized());
        s.finalize();
        ++ok;
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    EXPECT_EQ(ok.load(), kThreads);
    EXPECT_FALSE(p.subsystems().is_initialized("instance"));
  });
}

TEST(Session, SessionAttributesWork) {
  mpi_run(1, 1, [](sim::Process&) {
    Session s = Session::init();
    Keyval kv = Keyval::create();
    s.attributes().set(kv, 1234);
    EXPECT_EQ(s.attributes().get(kv), 1234);
    EXPECT_TRUE(s.attributes().erase(kv));
    EXPECT_FALSE(s.attributes().get(kv).has_value());
    s.finalize();
  });
}

TEST(Session, IsolatedSessionsGetDistinctCommunicators) {
  // §II-B: concurrent sessions produce isolated comms; messages do not leak
  // between them even with identical groups and tags.
  mpi_run(1, 2, [](sim::Process& p) {
    Session s1 = Session::init();
    Session s2 = Session::init();
    Communicator c1 = Communicator::create_from_group(
        s1.group_from_pset("mpi://world"), "iso1");
    Communicator c2 = Communicator::create_from_group(
        s2.group_from_pset("mpi://world"), "iso2");
    EXPECT_NE(c1.excid().hi, c2.excid().hi);

    // Same (dst, tag) on both comms; payloads must stay separated.
    const int other = 1 - p.rank();
    std::int32_t out1 = 10 + p.rank(), out2 = 20 + p.rank();
    std::int32_t in1 = -1, in2 = -1;
    Request r2 = c2.irecv(&in2, 1, Datatype::int32(), other, 5);
    Request r1 = c1.irecv(&in1, 1, Datatype::int32(), other, 5);
    c2.send(&out2, 1, Datatype::int32(), other, 5);
    c1.send(&out1, 1, Datatype::int32(), other, 5);
    r1.wait();
    r2.wait();
    EXPECT_EQ(in1, 10 + other);
    EXPECT_EQ(in2, 20 + other);

    c1.free();
    c2.free();
    s1.finalize();
    s2.finalize();
  });
}

}  // namespace
}  // namespace sessmpi
