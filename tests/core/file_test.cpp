#include "sessmpi/file.hpp"

#include <gtest/gtest.h>

#include "harness.hpp"

namespace sessmpi {
namespace {

using testing::mpi_run;
using testing::world_run;

TEST(File, WriteReadRoundTrip) {
  world_run(1, 2, [](sim::Process& p) {
    File f = File::open(comm_world(), "sim:/data.bin");
    if (p.rank() == 0) {
      const std::int64_t v[3] = {10, 20, 30};
      f.write_at_all(0, v, 3, Datatype::int64());
    } else {
      f.write_at_all(0, nullptr, 0, Datatype::int64());
    }
    std::int64_t in[3] = {0, 0, 0};
    EXPECT_EQ(f.read_at_all(0, in, 3, Datatype::int64()), 3);
    EXPECT_EQ(in[0], 10);
    EXPECT_EQ(in[2], 30);
    EXPECT_EQ(f.file_size(), 24u);
    f.close();
  });
}

TEST(File, RanksWriteDisjointRegions) {
  world_run(2, 2, [](sim::Process& p) {
    File f = File::open(comm_world(), "sim:/striped.bin");
    const std::int32_t mine = 100 + p.rank();
    f.write_at_all(static_cast<std::size_t>(p.rank()) * 4, &mine, 1,
                   Datatype::int32());
    std::int32_t all[4];
    EXPECT_EQ(f.read_at_all(0, all, 4, Datatype::int32()), 4);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(all[r], 100 + r);
    }
    f.close();
  });
}

TEST(File, ReadPastEofReturnsPartial) {
  world_run(1, 1, [](sim::Process&) {
    File f = File::open(comm_self(), "sim:/short.bin");
    const std::int32_t v[2] = {1, 2};
    f.write_at(0, v, 2, Datatype::int32());
    std::int32_t in[5] = {0, 0, 0, 0, 0};
    EXPECT_EQ(f.read_at(0, in, 5, Datatype::int32()), 2);
    EXPECT_EQ(f.read_at(100, in, 5, Datatype::int32()), 0);
    f.close();
  });
}

TEST(File, TruncateAndSetSize) {
  world_run(1, 2, [](sim::Process&) {
    {
      File f = File::open(comm_world(), "sim:/trunc.bin");
      const std::int64_t v = 7;
      f.write_at_all(0, &v, 1, Datatype::int64());
      f.close();
    }
    {
      File::Mode mode;
      mode.truncate = true;
      File f = File::open(comm_world(), "sim:/trunc.bin", mode);
      EXPECT_EQ(f.file_size(), 0u);
      comm_world().barrier();  // everyone observes the truncated size first
      f.set_size(128);
      EXPECT_EQ(f.file_size(), 128u);
      f.close();
    }
  });
}

TEST(File, MissingFileWithoutCreateRaises) {
  world_run(1, 1, [](sim::Process&) {
    File::Mode mode;
    mode.create = false;
    EXPECT_THROW(File::open(comm_self(), "sim:/absent.bin", mode), Error);
  });
}

TEST(File, ReadOnlyRejectsWrites) {
  world_run(1, 1, [](sim::Process&) {
    {
      File f = File::open(comm_self(), "sim:/ro.bin");
      const std::int32_t v = 1;
      f.write_at(0, &v, 1, Datatype::int32());
      f.close();
    }
    File::Mode mode;
    mode.create = false;
    mode.read_only = true;
    File f = File::open(comm_self(), "sim:/ro.bin", mode);
    const std::int32_t v = 2;
    EXPECT_THROW(f.write_at(0, &v, 1, Datatype::int32()), Error);
    EXPECT_THROW(f.set_size(10), Error);
    std::int32_t in = 0;
    EXPECT_EQ(f.read_at(0, &in, 1, Datatype::int32()), 1);
    EXPECT_EQ(in, 1);
    f.close();
  });
}

TEST(File, OpenFromGroupViaIntermediateComm) {
  // §III-B6: files from sessions groups via an intermediate communicator.
  mpi_run(1, 4, [](sim::Process& p) {
    Session s = Session::init();
    // Only the even ranks open the file.
    if (p.rank() % 2 == 0) {
      Group evens = Group::of({0, 2});
      File f = File::open_from_group(evens, "ftest", "sim:/evens.bin");
      EXPECT_EQ(f.size(), 2);
      const std::int32_t v = p.rank();
      f.write_at_all(static_cast<std::size_t>(f.rank()) * 4, &v, 1,
                     Datatype::int32());
      std::int32_t both[2];
      EXPECT_EQ(f.read_at_all(0, both, 2, Datatype::int32()), 2);
      EXPECT_EQ(both[0], 0);
      EXPECT_EQ(both[1], 2);
      f.close();
    }
    s.finalize();
  });
}

TEST(File, FilesPersistAcrossInitCycles) {
  // The checkpoint/roll-forward pattern of §II-C: data written before a
  // full MPI teardown is readable after re-initialization.
  mpi_run(1, 2, [](sim::Process& p) {
    {
      Session s = Session::init();
      Communicator c = Communicator::create_from_group(
          s.group_from_pset("mpi://world"), "ckpt1");
      File f = File::open(c, "sim:/checkpoint.bin");
      const std::int64_t state = 4242 + p.rank();
      f.write_at_all(static_cast<std::size_t>(p.rank()) * 8, &state, 1,
                     Datatype::int64());
      f.close();
      c.free();
      s.finalize();
    }
    {
      Session s = Session::init();
      Communicator c = Communicator::create_from_group(
          s.group_from_pset("mpi://world"), "ckpt2");
      File::Mode mode;
      mode.create = false;
      File f = File::open(c, "sim:/checkpoint.bin", mode);
      std::int64_t state = 0;
      EXPECT_EQ(f.read_at(static_cast<std::size_t>(p.rank()) * 8, &state, 1,
                          Datatype::int64()),
                1);
      EXPECT_EQ(state, 4242 + p.rank());
      f.close();
      c.free();
      s.finalize();
    }
  });
}

}  // namespace
}  // namespace sessmpi
