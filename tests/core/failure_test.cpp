// Failure-containment tests (§II-C): operations pinned on a dead peer must
// complete with rte_proc_failed instead of hanging survivors.

#include <gtest/gtest.h>

#include <thread>

#include "harness.hpp"

namespace sessmpi {
namespace {

using testing::world_run;

TEST(Failure, BlockingRecvFromDeadRankAborts) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    world.set_errhandler(Errhandler::errors_return());
    if (p.rank() == 1) {
      p.fail();
      return;
    }
    std::int32_t v = 0;
    EXPECT_THROW(world.recv(&v, 1, Datatype::int32(), 1, 0), Error);
  });
}

TEST(Failure, PendingIrecvCompletesWithError) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 0) {
      std::int32_t v = 0;
      Request r = world.irecv(&v, 1, Datatype::int32(), 1, 0);
      Status st = r.wait();
      EXPECT_EQ(st.error, ErrClass::rte_proc_failed);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      p.fail();
    }
  });
}

TEST(Failure, BarrierWithDeadRankAborts) {
  world_run(1, 3, [](sim::Process& p) {
    Communicator world = comm_world();
    world.set_errhandler(Errhandler::errors_return());
    if (p.rank() == 2) {
      p.fail();
      return;
    }
    EXPECT_THROW(world.barrier(), Error);
  });
}

TEST(Failure, SsendToDeadRankAborts) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    world.set_errhandler(Errhandler::errors_return());
    if (p.rank() == 1) {
      p.fail();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const std::int32_t v = 5;
    EXPECT_THROW(world.ssend(&v, 1, Datatype::int32(), 1, 0), Error);
  });
}

TEST(Failure, RendezvousSendToDeadRankAborts) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    world.set_errhandler(Errhandler::errors_return());
    if (p.rank() == 1) {
      p.fail();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::vector<std::byte> big(kEagerLimit * 2, std::byte{1});
    EXPECT_THROW(world.send(big.data(), static_cast<int>(big.size()),
                            Datatype::byte(), 1, 0),
                 Error);
  });
}

TEST(Failure, AnySourceRecvKeepsWaitingForLiveSenders) {
  // A wildcard receive must not abort just because *some* rank died — a
  // live sender can still match it.
  world_run(1, 3, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 2) {
      p.fail();
      return;
    }
    if (p.rank() == 0) {
      std::int32_t v = 0;
      Status st = world.recv(&v, 1, Datatype::int32(), any_source, 7);
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(v, 99);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      const std::int32_t v = 99;
      world.send(&v, 1, Datatype::int32(), 0, 7);
    }
  });
}

TEST(Failure, SurvivorsReinitializeAndContinue) {
  // The checkpoint_restart example pattern as a test: survivors tear down
  // and rebuild over a reduced pset.
  sim::Cluster::Options opts = testing::zero_opts(1, 3);
  opts.extra_psets.emplace_back("app://rest", std::vector<pmix::ProcId>{0, 1});
  sim::Cluster cluster{opts};
  cluster.run([](sim::Process& p) {
    Session s1 = Session::init(Info::null(), Errhandler::errors_return());
    Communicator c1 = Communicator::create_from_group(
        s1.group_from_pset("mpi://world"), "before", Info::null(),
        Errhandler::errors_return());
    if (p.rank() == 2) {
      p.fail();
      return;
    }
    // The dead rank breaks the full-world barrier.
    EXPECT_THROW(c1.barrier(), Error);
    c1.free();
    s1.finalize();

    Session s2 = Session::init(Info::null(), Errhandler::errors_return());
    Communicator c2 = Communicator::create_from_group(
        s2.group_from_pset("app://rest"), "after");
    std::int64_t one = 1, sum = 0;
    c2.allreduce(&one, &sum, 1, Datatype::int64(), Op::sum());
    EXPECT_EQ(sum, 2);
    c2.free();
    s2.finalize();
  });
}

}  // namespace
}  // namespace sessmpi
