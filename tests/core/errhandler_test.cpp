#include "sessmpi/errhandler.hpp"

#include <gtest/gtest.h>

namespace sessmpi {
namespace {

TEST(Errhandler, ErrorsReturnThrowsToCaller) {
  const Errhandler& h = Errhandler::errors_return();
  EXPECT_THROW(h.raise(ErrClass::comm, "bad comm"), Error);
  try {
    h.raise(ErrClass::tag, "bad tag");
  } catch (const Error& e) {
    EXPECT_EQ(e.error_class(), ErrClass::tag);
    EXPECT_NE(std::string(e.what()).find("SESSMPI_ERR_TAG"),
              std::string::npos);
  }
}

TEST(Errhandler, CustomHandlerRunsBeforeThrow) {
  // Creatable before any initialization (paper §III-B5).
  ErrClass seen = ErrClass::success;
  std::string msg;
  Errhandler h = Errhandler::create([&](ErrClass c, const std::string& m) {
    seen = c;
    msg = m;
  });
  EXPECT_THROW(h.raise(ErrClass::group, "group trouble"), Error);
  EXPECT_EQ(seen, ErrClass::group);
  EXPECT_EQ(msg, "group trouble");
  EXPECT_EQ(h.invocations(), 1);
}

TEST(Errhandler, InvocationCountAccumulates) {
  Errhandler h = Errhandler::create([](ErrClass, const std::string&) {});
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(h.raise(ErrClass::other, "x"), Error);
  }
  EXPECT_EQ(h.invocations(), 3);
}

TEST(Errhandler, FatalnessIsIntrospectable) {
  EXPECT_TRUE(Errhandler::errors_are_fatal().is_fatal());
  EXPECT_FALSE(Errhandler::errors_return().is_fatal());
  EXPECT_FALSE(
      Errhandler::create([](ErrClass, const std::string&) {}).is_fatal());
}

TEST(ErrhandlerDeath, FatalAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(Errhandler::errors_are_fatal().raise(ErrClass::intern, "boom"),
               "fatal error");
}

TEST(ErrClassNames, AllStable) {
  EXPECT_EQ(err_class_name(ErrClass::success), "SESSMPI_SUCCESS");
  EXPECT_EQ(err_class_name(ErrClass::session), "SESSMPI_ERR_SESSION");
  EXPECT_EQ(err_class_name(ErrClass::rte_timeout), "SESSMPI_RTE_ERR_TIMEOUT");
  EXPECT_EQ(err_class_name(static_cast<ErrClass>(9999)),
            "SESSMPI_ERR_INVALID_CLASS");
}

}  // namespace
}  // namespace sessmpi
