// White-box tests of core internals (compiled with the core's private
// include directory): the consensus CID algorithm's round behaviour, the
// subset allreduce building block, and the tag-space helpers.

#include <gtest/gtest.h>

#include "detail/cid.hpp"
#include "detail/state.hpp"
#include "harness.hpp"

namespace sessmpi::detail {
namespace {

using sessmpi::testing::world_run;

TEST(InternalTags, AllBelowInternalBaseAndDistinct) {
  // Collective tags must never collide with application tags (>= 0) or the
  // wildcard sentinels.
  std::set<int> seen;
  for (std::uint32_t seq = 0; seq < 200; ++seq) {
    for (int round = 0; round < 4; ++round) {
      const int tag = internal_tag(seq, round);
      EXPECT_LE(tag, kInternalTagBase);
      EXPECT_NE(tag, any_tag);
      EXPECT_TRUE(seen.insert(tag).second)
          << "tag collision at seq=" << seq << " round=" << round;
    }
  }
}

TEST(TagsMatch, WildcardRules) {
  // Exact matches.
  EXPECT_TRUE(tags_match(3, 7, 3, 7));
  EXPECT_FALSE(tags_match(3, 7, 2, 7));
  EXPECT_FALSE(tags_match(3, 7, 3, 8));
  // Source wildcard.
  EXPECT_TRUE(tags_match(any_source, 7, 99, 7));
  // Tag wildcard matches application tags only.
  EXPECT_TRUE(tags_match(3, any_tag, 3, 0));
  EXPECT_TRUE(tags_match(3, any_tag, 3, 12345));
  EXPECT_FALSE(tags_match(3, any_tag, 3, kInternalTagBase));
  EXPECT_FALSE(tags_match(3, any_tag, 3, -5000));
  // Internal tags match exactly even though negative.
  EXPECT_TRUE(tags_match(3, kInternalTagBase - 8, 3, kInternalTagBase - 8));
}

TEST(SubsetAllreduce, MaxPairOverAllRanks) {
  world_run(1, 4, [](sim::Process& p) {
    ProcState& ps = ProcState::current();
    auto comm = detail_unwrap(comm_world());
    std::vector<int> everyone{0, 1, 2, 3};
    const auto r = subset_allreduce_max2(
        ps, comm, everyone,
        {static_cast<std::int64_t>(p.rank()),
         -static_cast<std::int64_t>(p.rank())},
        internal_tag(1000, 0));
    EXPECT_EQ(r[0], 3);   // max rank
    EXPECT_EQ(r[1], 0);   // max(-rank) = -min(rank)
  });
}

TEST(SubsetAllreduce, SubsetOnlyTouchesParticipants) {
  world_run(1, 4, [](sim::Process& p) {
    ProcState& ps = ProcState::current();
    auto comm = detail_unwrap(comm_world());
    if (p.rank() == 1 || p.rank() == 3) {
      const auto r = subset_allreduce_max2(
          ps, comm, {1, 3},
          {static_cast<std::int64_t>(10 * p.rank()), 0},
          internal_tag(2000, 0));
      EXPECT_EQ(r[0], 30);
    }
    comm_world().barrier();
  });
}

TEST(ConsensusCid, SingleRoundWhenUnfragmented) {
  world_run(1, 4, [](sim::Process&) {
    ProcState& ps = ProcState::current();
    auto comm = detail_unwrap(comm_world());
    int rounds = 0;
    const auto cid = consensus_cid(ps, comm, {0, 1, 2, 3},
                                   internal_tag(3000, 0), &rounds);
    EXPECT_EQ(rounds, 1) << "aligned free slots must agree immediately";
    // Slot claimed on every process.
    std::lock_guard lock(ps.mu);
    EXPECT_TRUE(ps.cid_alloc.is_used(cid));
  });
}

TEST(ConsensusCid, DivergentFragmentationNeedsExtraRounds) {
  world_run(1, 2, [](sim::Process& p) {
    ProcState& ps = ProcState::current();
    auto comm = detail_unwrap(comm_world());
    // Rank 0 pre-claims slots 2..5, rank 1 claims nothing: proposals
    // diverge (rank0 proposes 6, rank1 proposes 2) and need a second round.
    if (p.rank() == 0) {
      std::lock_guard lock(ps.mu);
      for (std::uint32_t i = 2; i <= 5; ++i) {
        ASSERT_TRUE(ps.cid_alloc.claim(i));
      }
    }
    int rounds = 0;
    const auto cid = consensus_cid(ps, comm, {0, 1}, internal_tag(4000, 0),
                                   &rounds);
    EXPECT_EQ(cid, 6);  // lowest index free on BOTH processes
    if (p.rank() == 1) {
      EXPECT_GE(rounds, 2);
    }
    std::lock_guard lock(ps.mu);
    EXPECT_TRUE(ps.cid_alloc.is_used(6));
    // Rank 1's transient claims from failed rounds were released.
    if (p.rank() == 1) {
      EXPECT_FALSE(ps.cid_alloc.is_used(2));
    }
  });
}

TEST(ConsensusCid, ManySequentialAgreementsStayAligned) {
  world_run(1, 3, [](sim::Process&) {
    ProcState& ps = ProcState::current();
    auto comm = detail_unwrap(comm_world());
    std::vector<std::uint16_t> got;
    for (int i = 0; i < 10; ++i) {
      got.push_back(consensus_cid(ps, comm, {0, 1, 2},
                                  internal_tag(5000 + i, 0)));
    }
    // All agreed IDs are distinct and ascending (lowest-free allocation).
    for (std::size_t i = 1; i < got.size(); ++i) {
      EXPECT_GT(got[i], got[i - 1]);
    }
    // Cross-rank agreement: allreduce of each value must equal the value.
    for (std::uint16_t v : got) {
      std::int64_t mine = v, mx = 0, mn = 0;
      comm_world().allreduce(&mine, &mx, 1, Datatype::int64(), Op::max());
      comm_world().allreduce(&mine, &mn, 1, Datatype::int64(), Op::min());
      EXPECT_EQ(mx, mn);
    }
  });
}

TEST(ProcStateInternals, CommRegistrationTables) {
  world_run(1, 1, [](sim::Process&) {
    ProcState& ps = ProcState::current();
    auto world = detail_unwrap(comm_world());
    std::lock_guard lock(ps.mu);
    // COMM_WORLD occupies slot 0, COMM_SELF slot 1.
    ASSERT_GE(ps.comm_by_cid.size(), 2u);
    EXPECT_EQ(ps.comm_by_cid[0].get(), world.get());
    EXPECT_TRUE(ps.cid_alloc.is_used(0));
    EXPECT_TRUE(ps.cid_alloc.is_used(1));
    // World-model comms are not in the exCID table.
    EXPECT_EQ(ps.comm_by_excid.count(world->excid_space.id()), 0u);
  });
}

}  // namespace
}  // namespace sessmpi::detail
