#pragma once

// Shared helpers for core-layer tests: spin up a zero-cost simulated
// cluster and run an MPI program on every rank.

#include <functional>

#include "sessmpi/mpi.hpp"
#include "sessmpi/sim/cluster.hpp"

namespace sessmpi::testing {

inline sim::Cluster::Options zero_opts(int nodes, int ppn) {
  sim::Cluster::Options o;
  o.topo = {nodes, ppn};
  o.cost = base::CostModel::zero();
  return o;
}

/// Run `body` on every rank of a fresh zero-cost cluster.
inline void mpi_run(int nodes, int ppn,
                    const std::function<void(sim::Process&)>& body) {
  sim::Cluster cluster{zero_opts(nodes, ppn)};
  cluster.run(body);
}

/// Run `body` on every rank between world-model init() and finalize().
inline void world_run(int nodes, int ppn,
                      const std::function<void(sim::Process&)>& body) {
  mpi_run(nodes, ppn, [&](sim::Process& p) {
    init();
    body(p);
    finalize();
  });
}

}  // namespace sessmpi::testing
