#include "sessmpi/group.hpp"

#include <gtest/gtest.h>

namespace sessmpi {
namespace {

TEST(Group, EmptyGroup) {
  const Group& e = Group::empty();
  EXPECT_EQ(e.size(), 0);
  EXPECT_EQ(e.rank_of(0), -1);
  EXPECT_FALSE(e.contains(0));
}

TEST(Group, OfPreservesOrder) {
  Group g = Group::of({5, 2, 9});
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.global_of(0), 5);
  EXPECT_EQ(g.global_of(1), 2);
  EXPECT_EQ(g.global_of(2), 9);
  EXPECT_EQ(g.rank_of(9), 2);
  EXPECT_EQ(g.rank_of(7), -1);
  EXPECT_THROW((void)g.global_of(3), Error);
  EXPECT_THROW((void)g.global_of(-1), Error);
}

TEST(Group, DuplicateMembersRejected) {
  EXPECT_THROW(Group::of({1, 2, 1}), Error);
}

TEST(Group, UnionKeepsLeftOrderThenNew) {
  Group a = Group::of({1, 3});
  Group b = Group::of({3, 2});
  Group u = a.set_union(b);
  EXPECT_EQ(u.members(), (std::vector<base::Rank>{1, 3, 2}));
}

TEST(Group, IntersectionOrderedByLeft) {
  Group a = Group::of({4, 1, 3});
  Group b = Group::of({3, 4});
  EXPECT_EQ(a.set_intersection(b).members(), (std::vector<base::Rank>{4, 3}));
}

TEST(Group, Difference) {
  Group a = Group::of({1, 2, 3, 4});
  Group b = Group::of({2, 4});
  EXPECT_EQ(a.set_difference(b).members(), (std::vector<base::Rank>{1, 3}));
}

TEST(Group, InclExclBySubsetRanks) {
  Group g = Group::of({10, 20, 30, 40});
  EXPECT_EQ(g.incl({3, 0}).members(), (std::vector<base::Rank>{40, 10}));
  EXPECT_EQ(g.excl({1, 2}).members(), (std::vector<base::Rank>{10, 40}));
  EXPECT_THROW((void)g.incl({4}), Error);
  EXPECT_THROW((void)g.incl({0, 0}), Error);
  EXPECT_THROW((void)g.excl({1, 1}), Error);
}

TEST(Group, TranslateRanks) {
  Group a = Group::of({10, 20, 30});
  Group b = Group::of({30, 10});
  auto t = a.translate({0, 1, 2}, b);
  EXPECT_EQ(t, (std::vector<int>{1, -1, 0}));
}

TEST(Group, CompareSemantics) {
  Group a = Group::of({1, 2, 3});
  Group ident = Group::of({1, 2, 3});
  Group similar = Group::of({3, 1, 2});
  Group unequal = Group::of({1, 2});
  EXPECT_EQ(a.compare(ident), Group::Compare::ident);
  EXPECT_EQ(a.compare(similar), Group::Compare::similar);
  EXPECT_EQ(a.compare(unequal), Group::Compare::unequal);
}

}  // namespace
}  // namespace sessmpi
