// Matching-semantics tests for the O(1) bin-based engine (DESIGN.md §12).
// These pin the MPI ordering guarantees the per-source bins + wildcard-bin
// arbitration must preserve against the old linear scan: non-overtaking per
// (source, tag), post-order arbitration between directed and ANY_SOURCE
// receives, exactly-once consumption of unexpected packets, and the rule
// that ANY_TAG never matches internal (negative-tag) traffic. The
// concurrency case is the TSan witness for bin access under ps.mu.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "detail/state.hpp"
#include "harness.hpp"
#include "sessmpi/base/stats.hpp"

namespace sessmpi::detail {
namespace {

using sessmpi::testing::world_run;

constexpr int kTag = 17;

TEST(Matching, NonOvertakingWhenPosted) {
  // Receives posted before the sends: bin order must replay send order.
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    constexpr int kMsgs = 64;
    if (p.rank() == 1) {
      std::vector<int> got(kMsgs, -1);
      std::vector<Request> reqs;
      reqs.reserve(kMsgs);
      for (int i = 0; i < kMsgs; ++i) {
        reqs.push_back(world.irecv(&got[static_cast<std::size_t>(i)], 1,
                                   Datatype::int32(), 0, kTag));
      }
      world.barrier();
      Request::wait_all(reqs);
      for (int i = 0; i < kMsgs; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i) << "overtaken at " << i;
      }
    } else {
      world.barrier();
      for (int i = 0; i < kMsgs; ++i) {
        world.send(&i, 1, Datatype::int32(), 1, kTag);
      }
    }
    world.barrier();
  });
}

TEST(Matching, NonOvertakingWhenUnexpected) {
  // Sends land in the unexpected queue first: stamp order must replay send
  // order when the receives are posted afterwards.
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    constexpr int kMsgs = 64;
    if (p.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        world.send(&i, 1, Datatype::int32(), 1, kTag);
      }
      world.barrier();
    } else {
      world.barrier();  // all sends are already buffered unexpected
      for (int i = 0; i < kMsgs; ++i) {
        int v = -1;
        world.recv(&v, 1, Datatype::int32(), 0, kTag);
        EXPECT_EQ(v, i) << "overtaken at " << i;
      }
    }
    world.barrier();
  });
}

TEST(Matching, WildcardBeforeDirectedWinsFirstMessage) {
  // Both posted receives match the incoming message; the earlier post (the
  // ANY_SOURCE one) must win the arbitration, regardless of living in the
  // wildcard bin rather than the source bin.
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 1) {
      int wild_v = -1;
      int dir_v = -1;
      Request wild =
          world.irecv(&wild_v, 1, Datatype::int32(), any_source, kTag);
      Request dir = world.irecv(&dir_v, 1, Datatype::int32(), 0, kTag);
      world.barrier();
      Status wild_st = wild.wait();
      dir.wait();
      EXPECT_EQ(wild_v, 100);
      EXPECT_EQ(dir_v, 200);
      EXPECT_EQ(wild_st.source, 0);
    } else {
      world.barrier();
      int first = 100;
      int second = 200;
      world.send(&first, 1, Datatype::int32(), 1, kTag);
      world.send(&second, 1, Datatype::int32(), 1, kTag);
    }
    world.barrier();
  });
}

TEST(Matching, DirectedBeforeWildcardWinsFirstMessage) {
  // Reversed post order: now the directed receive is older and must win.
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 1) {
      int wild_v = -1;
      int dir_v = -1;
      Request dir = world.irecv(&dir_v, 1, Datatype::int32(), 0, kTag);
      Request wild =
          world.irecv(&wild_v, 1, Datatype::int32(), any_source, kTag);
      world.barrier();
      dir.wait();
      wild.wait();
      EXPECT_EQ(dir_v, 100);
      EXPECT_EQ(wild_v, 200);
    } else {
      world.barrier();
      int first = 100;
      int second = 200;
      world.send(&first, 1, Datatype::int32(), 1, kTag);
      world.send(&second, 1, Datatype::int32(), 1, kTag);
    }
    world.barrier();
  });
}

TEST(Matching, WildcardRacesDirectedForUnexpectedExactlyOnce) {
  // One packet already buffered unexpected, two receives that both match
  // it: exactly one may consume it (the earlier post), and the loser must
  // stay pending until a second message arrives.
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 1) {
      while (!world.iprobe(0, kTag, nullptr)) {
      }
      int wild_v = -1;
      int dir_v = -1;
      Request wild =
          world.irecv(&wild_v, 1, Datatype::int32(), any_source, kTag);
      Request dir = world.irecv(&dir_v, 1, Datatype::int32(), 0, kTag);
      wild.wait();
      EXPECT_EQ(wild_v, 100);   // buffered packet went to the earlier post
      EXPECT_FALSE(dir.test());
      world.barrier();          // releases the second send
      dir.wait();
      EXPECT_EQ(dir_v, 200);
    } else {
      int first = 100;
      world.send(&first, 1, Datatype::int32(), 1, kTag);
      world.barrier();
      int second = 200;
      world.send(&second, 1, Datatype::int32(), 1, kTag);
    }
    world.barrier();
  });
}

TEST(Matching, AnySourceDrainsAcrossSourceBins) {
  // ANY_SOURCE receives must see candidates buffered under *different*
  // source bins and consume each exactly once.
  world_run(1, 3, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 0) {
      world.barrier();  // both sends are buffered unexpected
      std::set<int> sources;
      for (int i = 0; i < 2; ++i) {
        int v = -1;
        Status st = world.recv(&v, 1, Datatype::int32(), any_source, kTag);
        EXPECT_EQ(v, 10 * st.source);
        EXPECT_TRUE(sources.insert(st.source).second)
            << "source " << st.source << " matched twice";
      }
      EXPECT_EQ(sources, (std::set<int>{1, 2}));
    } else {
      const int v = 10 * p.rank();
      world.send(&v, 1, Datatype::int32(), 0, kTag);
      world.barrier();
    }
    world.barrier();
  });
}

TEST(Matching, AnyTagNeverMatchesInternalTraffic) {
  // A fully wild receive (ANY_SOURCE + ANY_TAG) is outstanding while a
  // barrier runs. Barrier traffic uses internal (negative) tags; if the
  // wildcard could steal it, the barrier would hang or the receive would
  // complete with an internal tag.
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 1) {
      int v = -1;
      Request wild = world.irecv(&v, 1, Datatype::int32(), any_source, any_tag);
      world.barrier();
      world.barrier();
      Status st = wild.wait();
      EXPECT_EQ(st.tag, kTag);
      EXPECT_EQ(v, 7);
    } else {
      world.barrier();
      world.barrier();
      int v = 7;
      world.send(&v, 1, Datatype::int32(), 1, kTag);
    }
    world.barrier();
  });
}

TEST(Matching, SeqAnomalyCountedForOutOfRangeSource) {
  // A packet whose match.src is outside the communicator's rank range is
  // wire corruption; the sequence cross-check must count it, not skip it.
  world_run(1, 1, [](sim::Process&) {
    ProcState& ps = ProcState::current();
    const auto before = base::counters().value("pml.seq_anomalies");
    fabric::Packet pkt;
    pkt.kind = fabric::PacketKind::eager;
    pkt.src_rank = 0;
    pkt.dst_rank = 0;
    pkt.match.cid = 0;  // COMM_WORLD's slot
    pkt.match.src = 99;
    pkt.match.tag = kTag;
    pkt.match.seq = 7;
    {
      std::lock_guard lock(ps.mu);
      ps.dispatch(std::move(pkt));
    }
    EXPECT_EQ(base::counters().value("pml.seq_anomalies"), before + 1);
  });
}

TEST(MatchingConcurrency, ConcurrentBinAccessAcrossThreads) {
  // TSan witness: several adopted threads post into and match out of the
  // same communicator's bins concurrently while the sender interleaves
  // across their tag lanes. Per-lane ordering must still hold.
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    constexpr int kThreads = 3;
    constexpr int kMsgs = 16;
    if (p.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        for (int t = 0; t < kThreads; ++t) {
          const int v = 1000 * t + i;
          world.send(&v, 1, Datatype::int32(), 1, 100 + t);
        }
      }
    } else {
      std::vector<std::thread> workers;
      workers.reserve(kThreads);
      for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&p, &world, t] {
          sim::ProcessAdopter adopt(p.cluster().process(1));
          for (int i = 0; i < kMsgs; ++i) {
            int v = -1;
            world.recv(&v, 1, Datatype::int32(), 0, 100 + t);
            EXPECT_EQ(v, 1000 * t + i);
          }
        });
      }
      for (auto& w : workers) {
        w.join();
      }
    }
    world.barrier();
  });
}

}  // namespace
}  // namespace sessmpi::detail
