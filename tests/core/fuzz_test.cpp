// Randomized property tests: many ranks exchanging randomized traffic with
// deterministic seeds. Every payload is self-describing (seeded by src, dst,
// tag, and sequence) so any misrouting, cross-communicator leak, or
// out-of-order delivery is detected by content verification.

#include <gtest/gtest.h>

#include <random>

#include "harness.hpp"

namespace sessmpi {
namespace {

using testing::mpi_run;
using testing::world_run;

std::int64_t expected_value(int src, int dst, int tag, int seq) {
  return (static_cast<std::int64_t>(src) << 40) ^
         (static_cast<std::int64_t>(dst) << 24) ^
         (static_cast<std::int64_t>(tag) << 8) ^ seq;
}

TEST(Fuzz, RandomPairwiseTrafficAllDelivered) {
  // Every rank sends kMsgs messages to random destinations with random
  // tags; receivers collect with wildcard receives and verify content
  // against the embedded (src, tag) metadata.
  constexpr int kMsgs = 40;
  world_run(2, 3, [](sim::Process& p) {
    Communicator world = comm_world();
    const int n = world.size();
    const int me = world.rank();
    std::mt19937 rng(1234u + static_cast<unsigned>(me));
    std::uniform_int_distribution<int> pick_dst(0, n - 1);
    std::uniform_int_distribution<int> pick_tag(0, 7);

    // Plan: decide destinations, then allreduce the per-destination counts
    // so everyone knows how many messages to expect.
    std::vector<std::int64_t> sent_to(static_cast<std::size_t>(n), 0);
    std::vector<std::pair<int, int>> plan;  // (dst, tag)
    for (int i = 0; i < kMsgs; ++i) {
      const int dst = pick_dst(rng);
      plan.emplace_back(dst, pick_tag(rng));
      ++sent_to[static_cast<std::size_t>(dst)];
    }
    std::vector<std::int64_t> expect_in(static_cast<std::size_t>(n), 0);
    world.allreduce(sent_to.data(), expect_in.data(), n, Datatype::int64(),
                    Op::sum());
    const std::int64_t my_expected = expect_in[static_cast<std::size_t>(me)];

    // Fire all sends, then drain with wildcard receives.
    std::vector<std::int64_t> payloads;
    payloads.reserve(plan.size());
    std::vector<Request> sends;
    int seq = 0;
    for (const auto& [dst, tag] : plan) {
      payloads.push_back(expected_value(me, dst, tag, seq++));
      sends.push_back(world.isend(&payloads.back(), 1, Datatype::int64(),
                                  dst, tag));
    }
    for (std::int64_t i = 0; i < my_expected; ++i) {
      std::int64_t v = 0;
      Status st = world.recv(&v, 1, Datatype::int64(), any_source, any_tag);
      // Verify the payload's embedded src/tag matches the envelope.
      bool matched = false;
      for (int s = 0; s < kMsgs && !matched; ++s) {
        matched = v == expected_value(st.source, me, st.tag, s);
      }
      EXPECT_TRUE(matched) << "corrupted or misrouted payload";
    }
    Request::wait_all(sends);
    world.barrier();
  });
}

TEST(Fuzz, MixedEagerAndRendezvousSizes) {
  // Random sizes straddling the eager limit; contents checked byte-wise.
  world_run(1, 4, [](sim::Process& p) {
    Communicator world = comm_world();
    const int me = world.rank();
    const int n = world.size();
    std::mt19937 rng(99u + static_cast<unsigned>(me));
    std::uniform_int_distribution<int> pick_size(
        1, static_cast<int>(kEagerLimit) * 3);
    constexpr int kRounds = 10;

    for (int round = 0; round < kRounds; ++round) {
      const int partner = (me + 1 + round % (n - 1)) % n;
      // Everyone sends to its partner and receives from whoever picked it;
      // use a round-scoped tag and exchange sizes first.
      const int from = [&] {
        for (int r = 0; r < n; ++r) {
          if ((r + 1 + round % (n - 1)) % n == me) {
            return r;
          }
        }
        return -1;
      }();
      const int size = pick_size(rng);
      std::int64_t size64 = size, in_size = 0;
      world.sendrecv(&size64, 1, Datatype::int64(), partner, 100 + round,
                     &in_size, 1, Datatype::int64(), from, 100 + round);

      std::vector<std::byte> out(static_cast<std::size_t>(size));
      for (int i = 0; i < size; ++i) {
        out[static_cast<std::size_t>(i)] =
            static_cast<std::byte>((me * 31 + round * 7 + i) & 0xff);
      }
      std::vector<std::byte> in(static_cast<std::size_t>(in_size));
      Request r = world.irecv(in.data(), static_cast<int>(in_size),
                              Datatype::byte(), from, 200 + round);
      world.send(out.data(), size, Datatype::byte(), partner, 200 + round);
      Status st = r.wait();
      EXPECT_EQ(st.count_bytes, static_cast<std::size_t>(in_size));
      for (int i = 0; i < static_cast<int>(in_size); ++i) {
        ASSERT_EQ(in[static_cast<std::size_t>(i)],
                  static_cast<std::byte>((from * 31 + round * 7 + i) & 0xff))
            << "round " << round << " byte " << i;
      }
    }
  });
}

TEST(Fuzz, ConcurrentSessionsRandomizedIsolation) {
  // Three sessions' communicators carry interleaved traffic with identical
  // tags; content verification proves no cross-session leakage.
  constexpr int kComms = 3;
  constexpr int kRounds = 12;
  mpi_run(1, 2, [](sim::Process& p) {
    std::vector<Session> sessions;
    std::vector<Communicator> comms;
    for (int i = 0; i < kComms; ++i) {
      sessions.push_back(Session::init());
      comms.push_back(Communicator::create_from_group(
          sessions.back().group_from_pset("mpi://world"),
          "fuzz" + std::to_string(i)));
    }
    const int other = 1 - p.rank();
    std::mt19937 rng(7u);  // same schedule on both ranks
    std::uniform_int_distribution<int> pick(0, kComms - 1);

    for (int round = 0; round < kRounds; ++round) {
      const int c = pick(rng);
      std::int64_t out = expected_value(p.rank(), other, c, round);
      std::int64_t in = 0;
      comms[static_cast<std::size_t>(c)].sendrecv(
          &out, 1, Datatype::int64(), other, 5, &in, 1, Datatype::int64(),
          other, 5);
      EXPECT_EQ(in, expected_value(other, p.rank(), c, round));
    }
    for (auto& c : comms) {
      c.free();
    }
    for (auto& s : sessions) {
      s.finalize();
    }
  });
}

class FuzzSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzSeeds, CollectiveResultsMatchSerialReference) {
  // Randomized allreduce/bcast/scatter sequences checked against a serial
  // recomputation.
  const unsigned seed = GetParam();
  world_run(2, 2, [seed](sim::Process&) {
    Communicator world = comm_world();
    const int n = world.size();
    std::mt19937 rng(seed);  // identical schedule everywhere
    std::uniform_int_distribution<int> pick_op(0, 2);
    std::uniform_int_distribution<int> pick_root(0, n - 1);
    std::uniform_int_distribution<std::int64_t> pick_val(-1000, 1000);

    for (int round = 0; round < 15; ++round) {
      const int what = pick_op(rng);
      const int root = pick_root(rng);
      // Deterministic per-rank contribution derived from the shared rng.
      std::vector<std::int64_t> contrib(static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        contrib[static_cast<std::size_t>(r)] = pick_val(rng);
      }
      const std::int64_t mine = contrib[static_cast<std::size_t>(world.rank())];
      if (what == 0) {
        std::int64_t got = 0, want = 0;
        world.allreduce(&mine, &got, 1, Datatype::int64(), Op::sum());
        for (std::int64_t v : contrib) {
          want += v;
        }
        ASSERT_EQ(got, want) << "round " << round;
      } else if (what == 1) {
        std::int64_t v = world.rank() == root ? mine : 0;
        world.bcast(&v, 1, Datatype::int64(), root);
        ASSERT_EQ(v, contrib[static_cast<std::size_t>(root)]);
      } else {
        std::int64_t got = 0, want = 0;
        world.allreduce(&mine, &got, 1, Datatype::int64(), Op::max());
        want = *std::max_element(contrib.begin(), contrib.end());
        ASSERT_EQ(got, want);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1, 42, 777, 31337));

}  // namespace
}  // namespace sessmpi
