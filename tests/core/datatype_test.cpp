#include "sessmpi/datatype.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace sessmpi {
namespace {

TEST(Datatype, PrimitiveSizes) {
  EXPECT_EQ(Datatype::byte().size(), 1u);
  EXPECT_EQ(Datatype::char8().size(), 1u);
  EXPECT_EQ(Datatype::int32().size(), 4u);
  EXPECT_EQ(Datatype::int64().size(), 8u);
  EXPECT_EQ(Datatype::uint64().size(), 8u);
  EXPECT_EQ(Datatype::float32().size(), 4u);
  EXPECT_EQ(Datatype::float64().size(), 8u);
  EXPECT_TRUE(Datatype::int32().is_primitive());
  EXPECT_EQ(Datatype::int32().extent(), Datatype::int32().size());
}

TEST(Datatype, PredefinedAreSingletons) {
  EXPECT_TRUE(Datatype::int32().same_as(Datatype::int32()));
  EXPECT_FALSE(Datatype::int32().same_as(Datatype::int64()));
  EXPECT_TRUE(datatype_of<double>().same_as(Datatype::float64()));
  EXPECT_TRUE(datatype_of<std::int32_t>().same_as(Datatype::int32()));
}

TEST(Datatype, ContiguousSizeAndExtent) {
  Datatype c = Datatype::contiguous(5, Datatype::int32());
  EXPECT_EQ(c.size(), 20u);
  EXPECT_EQ(c.extent(), 20u);
  EXPECT_FALSE(c.is_primitive());
  EXPECT_EQ(c.kind(), Datatype::Kind::derived_k);
}

TEST(Datatype, ContiguousPackUnpackRoundTrip) {
  Datatype c = Datatype::contiguous(4, Datatype::int32());
  std::vector<std::int32_t> src{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::byte> wire(c.size() * 2);
  c.pack(src.data(), 2, wire.data());
  std::vector<std::int32_t> dst(8, 0);
  c.unpack(wire.data(), 2, dst.data());
  EXPECT_EQ(src, dst);
}

TEST(Datatype, VectorSizeAndExtent) {
  // 3 blocks of 2 int32s, stride 4 elements: packed 24B, memory span
  // ((3-1)*4+2)*4 = 40B.
  Datatype v = Datatype::vector(3, 2, 4, Datatype::int32());
  EXPECT_EQ(v.size(), 24u);
  EXPECT_EQ(v.extent(), 40u);
}

TEST(Datatype, VectorPacksStridedColumns) {
  // A 4x4 row-major matrix; vector(4,1,4) picks one column.
  Datatype col = Datatype::vector(4, 1, 4, Datatype::int32());
  std::int32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = i;
  }
  std::vector<std::byte> wire(col.size());
  col.pack(m, 1, wire.data());
  std::int32_t unpacked[4];
  Datatype::contiguous(4, Datatype::int32()).unpack(wire.data(), 1, unpacked);
  EXPECT_EQ(unpacked[0], 0);
  EXPECT_EQ(unpacked[1], 4);
  EXPECT_EQ(unpacked[2], 8);
  EXPECT_EQ(unpacked[3], 12);
}

TEST(Datatype, VectorUnpackScattersBack) {
  Datatype col = Datatype::vector(4, 1, 4, Datatype::int32());
  std::int32_t m[16] = {0};
  std::int32_t colvals[4] = {100, 101, 102, 103};
  std::vector<std::byte> wire(col.size());
  Datatype::contiguous(4, Datatype::int32()).pack(colvals, 1, wire.data());
  col.unpack(wire.data(), 1, m);
  EXPECT_EQ(m[0], 100);
  EXPECT_EQ(m[4], 101);
  EXPECT_EQ(m[8], 102);
  EXPECT_EQ(m[12], 103);
  EXPECT_EQ(m[1], 0);  // gaps untouched
}

TEST(Datatype, NestedDerivedTypes) {
  Datatype inner = Datatype::contiguous(2, Datatype::int32());
  Datatype outer = Datatype::vector(2, 1, 2, inner);
  EXPECT_EQ(outer.size(), 16u);
  std::int32_t data[8];
  for (int i = 0; i < 8; ++i) {
    data[i] = i;
  }
  std::vector<std::byte> wire(outer.size());
  outer.pack(data, 1, wire.data());
  std::int32_t out[4];
  Datatype::contiguous(4, Datatype::int32()).unpack(wire.data(), 1, out);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[2], 4);
  EXPECT_EQ(out[3], 5);
}

TEST(Datatype, InvalidConstructionThrows) {
  EXPECT_THROW(Datatype::contiguous(-1, Datatype::int32()), Error);
  EXPECT_THROW(Datatype::vector(-1, 1, 1, Datatype::int32()), Error);
  EXPECT_THROW(Datatype::vector(2, 3, 2, Datatype::int32()), Error);
}

TEST(Datatype, ZeroCountTypesAreEmpty) {
  Datatype z = Datatype::contiguous(0, Datatype::float64());
  EXPECT_EQ(z.size(), 0u);
  Datatype zv = Datatype::vector(0, 1, 1, Datatype::int32());
  EXPECT_EQ(zv.size(), 0u);
  EXPECT_EQ(zv.extent(), 0u);
}

TEST(Datatype, NamesAreDescriptive) {
  EXPECT_EQ(Datatype::int32().name(), "int32");
  Datatype c = Datatype::contiguous(3, Datatype::int64());
  EXPECT_EQ(c.name(), "contiguous(3,int64)");
}

}  // namespace
}  // namespace sessmpi
