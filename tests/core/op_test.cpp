#include "sessmpi/op.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace sessmpi {
namespace {

TEST(Op, SumOnInt64) {
  std::int64_t in[3] = {1, 2, 3};
  std::int64_t acc[3] = {10, 20, 30};
  Op::sum().apply(in, acc, 3, Datatype::int64());
  EXPECT_EQ(acc[0], 11);
  EXPECT_EQ(acc[1], 22);
  EXPECT_EQ(acc[2], 33);
}

TEST(Op, ProdMaxMinOnDouble) {
  double in[2] = {3.0, -1.0};
  double acc[2] = {2.0, 5.0};
  Op::prod().apply(in, acc, 2, Datatype::float64());
  EXPECT_DOUBLE_EQ(acc[0], 6.0);
  EXPECT_DOUBLE_EQ(acc[1], -5.0);
  double mx[2] = {1.0, 9.0};
  Op::max().apply(in, mx, 2, Datatype::float64());
  EXPECT_DOUBLE_EQ(mx[0], 3.0);
  EXPECT_DOUBLE_EQ(mx[1], 9.0);
  double mn[2] = {1.0, 9.0};
  Op::min().apply(in, mn, 2, Datatype::float64());
  EXPECT_DOUBLE_EQ(mn[0], 1.0);
  EXPECT_DOUBLE_EQ(mn[1], -1.0);
}

TEST(Op, LogicalOpsOnInt32) {
  std::int32_t in[4] = {0, 1, 0, 5};
  std::int32_t acc[4] = {1, 1, 0, 0};
  Op::land().apply(in, acc, 4, Datatype::int32());
  EXPECT_EQ(acc[0], 0);
  EXPECT_EQ(acc[1], 1);
  EXPECT_EQ(acc[2], 0);
  EXPECT_EQ(acc[3], 0);
  std::int32_t acc2[4] = {1, 0, 0, 0};
  Op::lor().apply(in, acc2, 4, Datatype::int32());
  EXPECT_EQ(acc2[0], 1);
  EXPECT_EQ(acc2[1], 1);
  EXPECT_EQ(acc2[2], 0);
  EXPECT_EQ(acc2[3], 1);
}

TEST(Op, BitwiseOpsOnUint64) {
  std::uint64_t in[1] = {0b1100};
  std::uint64_t band[1] = {0b1010};
  Op::band().apply(in, band, 1, Datatype::uint64());
  EXPECT_EQ(band[0], 0b1000u);
  std::uint64_t bor[1] = {0b1010};
  Op::bor().apply(in, bor, 1, Datatype::uint64());
  EXPECT_EQ(bor[0], 0b1110u);
}

TEST(Op, LogicalOpsRejectFloat) {
  double in[1] = {1.0};
  double acc[1] = {1.0};
  EXPECT_THROW(Op::land().apply(in, acc, 1, Datatype::float64()), Error);
  EXPECT_THROW(Op::band().apply(in, acc, 1, Datatype::float64()), Error);
}

TEST(Op, BuiltinsRejectDerivedTypes) {
  Datatype derived = Datatype::contiguous(2, Datatype::int32());
  std::int32_t in[2] = {1, 2};
  std::int32_t acc[2] = {3, 4};
  EXPECT_THROW(Op::sum().apply(in, acc, 1, derived), Error);
}

TEST(Op, UserDefinedFunctionReceivesCountAndType) {
  int seen_count = 0;
  Op user = Op::create(
      [&](const void* in, void* inout, int count, const Datatype& dt) {
        seen_count = count;
        EXPECT_TRUE(dt.same_as(Datatype::int32()));
        const auto* a = static_cast<const std::int32_t*>(in);
        auto* b = static_cast<std::int32_t*>(inout);
        for (int i = 0; i < count; ++i) {
          b[i] = a[i] - b[i];
        }
      },
      true, "diff");
  std::int32_t in[2] = {10, 20};
  std::int32_t acc[2] = {1, 2};
  user.apply(in, acc, 2, Datatype::int32());
  EXPECT_EQ(seen_count, 2);
  EXPECT_EQ(acc[0], 9);
  EXPECT_EQ(acc[1], 18);
}

TEST(Op, MetadataAccessors) {
  EXPECT_EQ(Op::sum().name(), "sum");
  EXPECT_TRUE(Op::sum().commutative());
  Op nc = Op::create([](const void*, void*, int, const Datatype&) {}, false,
                     "custom");
  EXPECT_FALSE(nc.commutative());
  EXPECT_EQ(nc.name(), "custom");
}

TEST(Op, ByteTypeSupported) {
  std::uint8_t raw_in[2] = {200, 1};
  std::uint8_t raw_acc[2] = {100, 2};
  Op::max().apply(raw_in, raw_acc, 2, Datatype::byte());
  EXPECT_EQ(raw_acc[0], 200);
  EXPECT_EQ(raw_acc[1], 2);
}

}  // namespace
}  // namespace sessmpi
