#include "sessmpi/excid.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sessmpi {
namespace {

TEST(ExCid, SubfieldAccessors) {
  ExCid c{42, 0};
  c = c.with_subfield(0, 0xAA);
  c = c.with_subfield(7, 0xBB);
  EXPECT_EQ(c.subfield(0), 0xAA);
  EXPECT_EQ(c.subfield(7), 0xBB);
  EXPECT_EQ(c.subfield(3), 0);
  EXPECT_EQ(c.hi, 42u);
  // Overwrite replaces, not ORs.
  c = c.with_subfield(0, 0x01);
  EXPECT_EQ(c.subfield(0), 0x01);
}

TEST(ExCid, EqualityAndHash) {
  ExCid a{1, 2};
  ExCid b{1, 2};
  ExCid c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(ExCidHash{}(a), ExCidHash{}(b));
}

TEST(ExCid, StrFormatsHex) {
  ExCid c{0xABC, 0x1};
  EXPECT_EQ(c.str(), "0000000000000abc:0000000000000001");
}

TEST(ExCidSpace, FreshStartsAtSubfield7) {
  ExCidSpace s = ExCidSpace::fresh(99);
  EXPECT_EQ(s.id().hi, 99u);
  EXPECT_EQ(s.id().lo, 0u);
  EXPECT_EQ(s.active_subfield(), 7);
  EXPECT_EQ(s.remaining(), 255);
}

TEST(ExCidSpace, DeriveIncrementsParentSubfieldAndDecrementsChildActive) {
  ExCidSpace parent = ExCidSpace::fresh(7);
  auto child1 = parent.derive();
  ASSERT_TRUE(child1.has_value());
  EXPECT_EQ(child1->id().hi, 7u);
  EXPECT_EQ(child1->id().subfield(7), 1);
  EXPECT_EQ(child1->active_subfield(), 6);

  auto child2 = parent.derive();
  ASSERT_TRUE(child2.has_value());
  EXPECT_EQ(child2->id().subfield(7), 2);
  EXPECT_NE(child1->id(), child2->id());
}

TEST(ExCidSpace, BuiltinCannotDerive) {
  ExCidSpace world = ExCidSpace::builtin(0);
  EXPECT_EQ(world.id().hi, 0u);
  EXPECT_EQ(world.remaining(), 0);
  EXPECT_FALSE(world.derive().has_value());
}

TEST(ExCidSpace, Exhausts255DerivationsThenRequiresPgcid) {
  ExCidSpace parent = ExCidSpace::fresh(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 255; ++i) {
    auto child = parent.derive();
    ASSERT_TRUE(child.has_value()) << "derivation " << i;
    EXPECT_TRUE(seen.insert(child->id().lo).second) << "collision at " << i;
  }
  EXPECT_EQ(parent.remaining(), 0);
  EXPECT_FALSE(parent.derive().has_value());
}

TEST(ExCidSpace, ActiveSubfieldZeroRequiresPgcid) {
  // Chain of derivations walks the active subfield down from 7; a parent at
  // subfield 0 must acquire a new PGCID (paper §III-B3).
  ExCidSpace cursor = ExCidSpace::fresh(1);
  for (int depth = 0; depth < 7; ++depth) {
    auto child = cursor.derive();
    ASSERT_TRUE(child.has_value()) << "depth " << depth;
    cursor = *child;
  }
  EXPECT_EQ(cursor.active_subfield(), 0);
  EXPECT_FALSE(cursor.derive().has_value());
}

TEST(ExCidSpace, FullTreeOfDerivationsIsCollisionFree) {
  // Property sweep: derive a branching tree (breadth 4, depth 4) and check
  // global uniqueness of every exCID.
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::vector<ExCidSpace> frontier{ExCidSpace::fresh(123)};
  seen.insert({frontier[0].id().hi, frontier[0].id().lo});
  for (int depth = 0; depth < 4; ++depth) {
    std::vector<ExCidSpace> next;
    for (auto& node : frontier) {
      for (int b = 0; b < 4; ++b) {
        auto child = node.derive();
        if (!child) {
          break;
        }
        EXPECT_TRUE(seen.insert({child->id().hi, child->id().lo}).second)
            << "collision at depth " << depth;
        next.push_back(*child);
      }
    }
    frontier = std::move(next);
  }
  // 1 + 4 + 16 + 64 + 256 nodes — all unique.
  EXPECT_EQ(seen.size(), 341u);
}

class ExCidPgcidSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExCidPgcidSweep, DistinctPgcidsNeverCollide) {
  ExCidSpace a = ExCidSpace::fresh(GetParam());
  ExCidSpace b = ExCidSpace::fresh(GetParam() + 1);
  auto ca = a.derive();
  auto cb = b.derive();
  ASSERT_TRUE(ca && cb);
  EXPECT_NE(ca->id(), cb->id());
  EXPECT_EQ(ca->id().lo, cb->id().lo);  // same derivation pattern
  EXPECT_NE(ca->id().hi, cb->id().hi);  // separated by the PGCID half
}

INSTANTIATE_TEST_SUITE_P(Pgcids, ExCidPgcidSweep,
                         ::testing::Values(1, 2, 1000, 1u << 20, 1ull << 40));

}  // namespace
}  // namespace sessmpi
