#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "harness.hpp"
#include "sessmpi/base/clock.hpp"

namespace sessmpi {
namespace {

using testing::world_run;

TEST(Pt2Pt, BasicSendRecv) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 0) {
      const std::int32_t v = 42;
      world.send(&v, 1, Datatype::int32(), 1, 7);
    } else {
      std::int32_t v = 0;
      Status st = world.recv(&v, 1, Datatype::int32(), 0, 7);
      EXPECT_EQ(v, 42);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count(Datatype::int32()), 1);
    }
  });
}

TEST(Pt2Pt, InterNodeSendRecv) {
  world_run(2, 1, [](sim::Process& p) {
    Communicator world = comm_world();
    std::vector<double> data(100);
    if (p.rank() == 0) {
      std::iota(data.begin(), data.end(), 0.5);
      world.send(data.data(), 100, Datatype::float64(), 1, 0);
    } else {
      world.recv(data.data(), 100, Datatype::float64(), 0, 0);
      EXPECT_DOUBLE_EQ(data[0], 0.5);
      EXPECT_DOUBLE_EQ(data[99], 99.5);
    }
  });
}

TEST(Pt2Pt, MessageOrderingPreservedPerPair) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    constexpr int kN = 200;
    if (p.rank() == 0) {
      for (std::int32_t i = 0; i < kN; ++i) {
        world.send(&i, 1, Datatype::int32(), 1, 3);
      }
    } else {
      for (std::int32_t i = 0; i < kN; ++i) {
        std::int32_t v = -1;
        world.recv(&v, 1, Datatype::int32(), 0, 3);
        EXPECT_EQ(v, i) << "non-overtaking violated";
      }
    }
  });
}

TEST(Pt2Pt, TagSelectivity) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 0) {
      const std::int32_t a = 1, b = 2;
      world.send(&a, 1, Datatype::int32(), 1, 10);
      world.send(&b, 1, Datatype::int32(), 1, 20);
    } else {
      std::int32_t v = 0;
      // Receive the later-tagged message first.
      world.recv(&v, 1, Datatype::int32(), 0, 20);
      EXPECT_EQ(v, 2);
      world.recv(&v, 1, Datatype::int32(), 0, 10);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(Pt2Pt, AnySourceAndAnyTag) {
  world_run(1, 4, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() != 0) {
      const std::int32_t v = p.rank();
      world.send(&v, 1, Datatype::int32(), 0, p.rank() * 100);
    } else {
      int sum = 0;
      for (int i = 0; i < 3; ++i) {
        std::int32_t v = 0;
        Status st = world.recv(&v, 1, Datatype::int32(), any_source, any_tag);
        EXPECT_EQ(st.source, v);
        EXPECT_EQ(st.tag, v * 100);
        sum += v;
      }
      EXPECT_EQ(sum, 1 + 2 + 3);
    }
  });
}

TEST(Pt2Pt, LargeMessageUsesRendezvous) {
  world_run(2, 1, [](sim::Process& p) {
    Communicator world = comm_world();
    const int n = static_cast<int>(kEagerLimit) * 4;  // well past eager limit
    std::vector<std::byte> data(static_cast<std::size_t>(n));
    if (p.rank() == 0) {
      for (int i = 0; i < n; ++i) {
        data[static_cast<std::size_t>(i)] = static_cast<std::byte>(i & 0xff);
      }
      world.send(data.data(), n, Datatype::byte(), 1, 0);
    } else {
      Status st = world.recv(data.data(), n, Datatype::byte(), 0, 0);
      EXPECT_EQ(st.count_bytes, static_cast<std::size_t>(n));
      EXPECT_EQ(data[12345], static_cast<std::byte>(12345 & 0xff));
    }
  });
}

TEST(Pt2Pt, RendezvousUnexpectedThenPosted) {
  // RTS arrives before the receive is posted; matching must still work.
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    const int n = static_cast<int>(kEagerLimit) * 2;
    if (p.rank() == 0) {
      std::vector<std::byte> data(static_cast<std::size_t>(n),
                                  std::byte{0xAB});
      world.send(data.data(), n, Datatype::byte(), 1, 0);
    } else {
      // Give the RTS time to land in the unexpected queue.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      std::vector<std::byte> data(static_cast<std::size_t>(n));
      world.recv(data.data(), n, Datatype::byte(), 0, 0);
      EXPECT_EQ(data[100], std::byte{0xAB});
    }
  });
}

TEST(Pt2Pt, SsendCompletesOnlyAfterMatch) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 0) {
      const std::int32_t v = 5;
      base::Stopwatch sw;
      world.ssend(&v, 1, Datatype::int32(), 1, 0);
      // Receiver posts after 50ms, so the synchronous send must block at
      // least roughly that long.
      EXPECT_GT(sw.elapsed_ms(), 30.0);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      std::int32_t v = 0;
      world.recv(&v, 1, Datatype::int32(), 0, 0);
      EXPECT_EQ(v, 5);
    }
  });
}

TEST(Pt2Pt, IsendIrecvWaitall) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    constexpr int kN = 16;
    std::vector<std::int32_t> out(kN), in(kN);
    std::vector<Request> reqs;
    if (p.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        out[static_cast<std::size_t>(i)] = i * i;
        reqs.push_back(world.isend(&out[static_cast<std::size_t>(i)], 1,
                                   Datatype::int32(), 1, i));
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(world.irecv(&in[static_cast<std::size_t>(i)], 1,
                                   Datatype::int32(), 0, i));
      }
    }
    Request::wait_all(reqs);
    if (p.rank() == 1) {
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(in[static_cast<std::size_t>(i)], i * i);
      }
    }
  });
}

TEST(Pt2Pt, SendrecvExchanges) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    const std::int32_t mine = p.rank() * 10;
    std::int32_t theirs = -1;
    const int other = 1 - p.rank();
    world.sendrecv(&mine, 1, Datatype::int32(), other, 0, &theirs, 1,
                   Datatype::int32(), other, 0);
    EXPECT_EQ(theirs, other * 10);
  });
}

TEST(Pt2Pt, TruncationReportsError) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    world.set_errhandler(Errhandler::errors_return());
    if (p.rank() == 0) {
      std::int32_t big[4] = {1, 2, 3, 4};
      world.send(big, 4, Datatype::int32(), 1, 0);
    } else {
      std::int32_t small[2] = {0, 0};
      EXPECT_THROW(world.recv(small, 2, Datatype::int32(), 0, 0), Error);
      EXPECT_EQ(small[0], 1);  // what fit was delivered
      EXPECT_EQ(small[1], 2);
    }
  });
}

TEST(Pt2Pt, ProbeSeesPendingMessage) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 0) {
      std::int32_t v[3] = {7, 8, 9};
      world.send(v, 3, Datatype::int32(), 1, 42);
    } else {
      Status st = world.probe(any_source, any_tag);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 42);
      EXPECT_EQ(st.count(Datatype::int32()), 3);
      std::int32_t v[3];
      world.recv(v, st.count(Datatype::int32()), Datatype::int32(), st.source,
                 st.tag);
      EXPECT_EQ(v[2], 9);
    }
  });
}

TEST(Pt2Pt, IprobeNonBlocking) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 0) {
      EXPECT_FALSE(world.iprobe(1, 0));  // nothing sent to us
      world.barrier();
      const std::int32_t v = 1;
      world.send(&v, 1, Datatype::int32(), 1, 0);
    } else {
      world.barrier();
      Status st;
      while (!world.iprobe(0, 0, &st)) {
      }
      EXPECT_EQ(st.source, 0);
      std::int32_t v = 0;
      world.recv(&v, 1, Datatype::int32(), 0, 0);
    }
  });
}

TEST(Pt2Pt, NegativeUserTagRejected) {
  world_run(1, 1, [](sim::Process&) {
    Communicator self = comm_self();
    self.set_errhandler(Errhandler::errors_return());
    const std::int32_t v = 0;
    EXPECT_THROW(self.send(&v, 1, Datatype::int32(), 0, -5), Error);
  });
}

TEST(Pt2Pt, SelfCommunication) {
  world_run(1, 1, [](sim::Process&) {
    Communicator self = comm_self();
    const std::int32_t out = 99;
    std::int32_t in = 0;
    Request r = self.irecv(&in, 1, Datatype::int32(), 0, 0);
    self.send(&out, 1, Datatype::int32(), 0, 0);
    r.wait();
    EXPECT_EQ(in, 99);
  });
}

struct ShapeParam {
  int nodes;
  int ppn;
};

class Pt2PtShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(Pt2PtShapes, RingPassesTokenAroundWorld) {
  const auto [nodes, ppn] = GetParam();
  world_run(nodes, ppn, [](sim::Process& p) {
    Communicator world = comm_world();
    const int n = world.size();
    const int me = world.rank();
    std::int64_t token = 0;
    if (me == 0) {
      token = 1;
      world.send(&token, 1, Datatype::int64(), 1 % n, 0);
      world.recv(&token, 1, Datatype::int64(), (n - 1) % n, 0);
      EXPECT_EQ(token, n);
    } else {
      world.recv(&token, 1, Datatype::int64(), me - 1, 0);
      ++token;
      world.send(&token, 1, Datatype::int64(), (me + 1) % n, 0);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, Pt2PtShapes,
                         ::testing::Values(ShapeParam{1, 2}, ShapeParam{1, 8},
                                           ShapeParam{2, 2}, ShapeParam{4, 1},
                                           ShapeParam{2, 6}));

}  // namespace
}  // namespace sessmpi
