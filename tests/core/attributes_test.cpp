#include "sessmpi/attributes.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace sessmpi {
namespace {

TEST(Attributes, SetGetErase) {
  AttributeStore store;
  Keyval kv = Keyval::create();
  EXPECT_FALSE(store.get(kv).has_value());
  store.set(kv, 42);
  EXPECT_EQ(store.get(kv), 42);
  store.set(kv, 43);  // overwrite
  EXPECT_EQ(store.get(kv), 43);
  EXPECT_TRUE(store.erase(kv));
  EXPECT_FALSE(store.erase(kv));
  EXPECT_EQ(store.size(), 0u);
}

TEST(Attributes, KeyvalsAreDistinct) {
  AttributeStore store;
  Keyval a = Keyval::create();
  Keyval b = Keyval::create();
  EXPECT_NE(a.id(), b.id());
  store.set(a, 1);
  store.set(b, 2);
  EXPECT_EQ(store.get(a), 1);
  EXPECT_EQ(store.get(b), 2);
}

TEST(Attributes, DeleteCallbackRunsOnErase) {
  std::vector<AttrValue> deleted;
  Keyval kv = Keyval::create(nullptr, [&](AttrValue v) { deleted.push_back(v); });
  AttributeStore store;
  store.set(kv, 77);
  store.erase(kv);
  EXPECT_EQ(deleted, std::vector<AttrValue>{77});
}

TEST(Attributes, DeleteCallbackRunsOnClearAndDestruction) {
  int deletions = 0;
  Keyval kv = Keyval::create(nullptr, [&](AttrValue) { ++deletions; });
  {
    AttributeStore store;
    store.set(kv, 1);
    store.clear();
    EXPECT_EQ(deletions, 1);
    store.set(kv, 2);
  }  // destructor clears
  EXPECT_EQ(deletions, 2);
}

TEST(Attributes, DefaultCopySemanticsCopiesVerbatim) {
  Keyval kv = Keyval::create();
  AttributeStore src, dst;
  src.set(kv, 5);
  src.copy_to(dst);
  EXPECT_EQ(dst.get(kv), 5);
}

TEST(Attributes, CopyCallbackControlsPropagation) {
  Keyval doubled = Keyval::create([](AttrValue v) { return v * 2; });
  Keyval blocked = Keyval::create([](AttrValue) { return std::nullopt; });
  AttributeStore src, dst;
  src.set(doubled, 10);
  src.set(blocked, 11);
  src.copy_to(dst);
  EXPECT_EQ(dst.get(doubled), 20);
  EXPECT_FALSE(dst.get(blocked).has_value());
}

TEST(Attributes, ThreadSafeConcurrentAccess) {
  // Session attribute functions must be thread-safe pre-init (§III-B5).
  AttributeStore store;
  Keyval kv = Keyval::create();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, &kv, t] {
      for (int i = 0; i < 500; ++i) {
        store.set(kv, t * 1000 + i);
        (void)store.get(kv);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_TRUE(store.get(kv).has_value());
}

}  // namespace
}  // namespace sessmpi
