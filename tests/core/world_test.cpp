#include <gtest/gtest.h>

#include "harness.hpp"

namespace sessmpi {
namespace {

using testing::mpi_run;

TEST(World, InitProvidesWorldAndSelf) {
  mpi_run(2, 2, [](sim::Process& p) {
    EXPECT_FALSE(initialized());
    init();
    EXPECT_TRUE(initialized());
    Communicator world = comm_world();
    EXPECT_EQ(world.size(), 4);
    EXPECT_EQ(world.rank(), p.rank());
    EXPECT_EQ(world.cid(), 0);
    EXPECT_FALSE(world.uses_excid());
    EXPECT_EQ(world.name(), "MPI_COMM_WORLD");
    Communicator self = comm_self();
    EXPECT_EQ(self.size(), 1);
    EXPECT_EQ(self.cid(), 1);
    finalize();
    EXPECT_FALSE(initialized());
  });
}

TEST(World, CommWorldBeforeInitThrows) {
  mpi_run(1, 1, [](sim::Process&) {
    EXPECT_THROW((void)comm_world(), Error);
    EXPECT_THROW(finalize(), Error);
  });
}

TEST(World, DoubleInitThrows) {
  mpi_run(1, 1, [](sim::Process&) {
    init();
    EXPECT_THROW(init(), Error);
    finalize();
  });
}

TEST(World, ReInitAfterFinalize) {
  // The restructured prototype supports init() -> finalize() -> init()
  // (§III-B5) — impossible in classic MPI.
  mpi_run(1, 2, [](sim::Process&) {
    for (int cycle = 0; cycle < 3; ++cycle) {
      init();
      Communicator world = comm_world();
      std::int64_t one = 1, sum = 0;
      world.allreduce(&one, &sum, 1, Datatype::int64(), Op::sum());
      EXPECT_EQ(sum, 2);
      finalize();
    }
  });
}

TEST(World, WorldModelAndSessionsCoexist) {
  // §III-B5: the World Process Model runs alongside the Sessions model; the
  // world objects are backed by an internal session.
  mpi_run(1, 2, [](sim::Process& p) {
    init();
    Session s = Session::init();
    Communicator sess_comm = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "coexist");
    Communicator world = comm_world();

    // Traffic on both, interleaved.
    const int other = 1 - p.rank();
    std::int32_t w_in = -1, s_in = -1;
    Request rw = world.irecv(&w_in, 1, Datatype::int32(), other, 1);
    Request rs = sess_comm.irecv(&s_in, 1, Datatype::int32(), other, 1);
    const std::int32_t w_out = 10 + p.rank(), s_out = 20 + p.rank();
    world.send(&w_out, 1, Datatype::int32(), other, 1);
    sess_comm.send(&s_out, 1, Datatype::int32(), other, 1);
    rw.wait();
    rs.wait();
    EXPECT_EQ(w_in, 10 + other);
    EXPECT_EQ(s_in, 20 + other);

    sess_comm.free();
    // Finalize world first: the session must keep MPI alive.
    finalize();
    EXPECT_TRUE(p.subsystems().is_initialized("instance"));
    std::int64_t one = 1, sum = 0;
    Communicator again = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "after-world");
    again.allreduce(&one, &sum, 1, Datatype::int64(), Op::sum());
    EXPECT_EQ(sum, 2);
    again.free();
    s.finalize();
    EXPECT_FALSE(p.subsystems().is_initialized("instance"));
  });
}

TEST(World, SessionInitAvoidsWorldObjects) {
  // Sessions-only processes never build COMM_WORLD — the global-state
  // single-point-of-failure the proposal removes (§II-C).
  mpi_run(1, 2, [](sim::Process& p) {
    Session s = Session::init();
    EXPECT_THROW((void)comm_world(), Error);
    EXPECT_FALSE(p.subsystems().is_initialized("world"));
    s.finalize();
  });
}

TEST(World, GroupFromWorldMatchesSessionPsetGroup) {
  // §III-B6: the group for mpi://world equals MPI_Comm_group(COMM_WORLD).
  mpi_run(2, 2, [](sim::Process&) {
    init();
    Session s = Session::init();
    Group from_world = comm_world().group();
    Group from_pset = s.group_from_pset("mpi://world");
    EXPECT_EQ(from_world.compare(from_pset), Group::Compare::ident);
    s.finalize();
    finalize();
  });
}

}  // namespace
}  // namespace sessmpi
