// Tests for the extended collectives (exscan, reduce_scatter_block,
// gatherv/allgatherv) and request-set operations (wait_any).

#include <gtest/gtest.h>

#include "harness.hpp"

namespace sessmpi {
namespace {

using testing::world_run;

struct ShapeParam {
  int nodes;
  int ppn;
};

class Coll2Shapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(Coll2Shapes, ExscanFoldsStrictPrefix) {
  world_run(GetParam().nodes, GetParam().ppn, [](sim::Process&) {
    Communicator world = comm_world();
    const std::int64_t mine = world.rank() + 1;
    std::int64_t prefix = -777;  // sentinel: rank 0 must stay untouched
    world.exscan(&mine, &prefix, 1, Datatype::int64(), Op::sum());
    if (world.rank() == 0) {
      EXPECT_EQ(prefix, -777);
    } else {
      const std::int64_t r = world.rank();
      EXPECT_EQ(prefix, r * (r + 1) / 2);
    }
  });
}

TEST_P(Coll2Shapes, ReduceScatterBlock) {
  world_run(GetParam().nodes, GetParam().ppn, [](sim::Process&) {
    Communicator world = comm_world();
    const int n = world.size();
    constexpr int kPerBlock = 3;
    // Everyone contributes v[i] = i; the reduced vector element i is n*i;
    // rank r receives block r.
    std::vector<std::int64_t> contrib(static_cast<std::size_t>(n * kPerBlock));
    for (std::size_t i = 0; i < contrib.size(); ++i) {
      contrib[i] = static_cast<std::int64_t>(i);
    }
    std::vector<std::int64_t> mine(kPerBlock, -1);
    world.reduce_scatter_block(contrib.data(), mine.data(), kPerBlock,
                               Datatype::int64(), Op::sum());
    for (int i = 0; i < kPerBlock; ++i) {
      const std::int64_t global_ix = world.rank() * kPerBlock + i;
      EXPECT_EQ(mine[static_cast<std::size_t>(i)], global_ix * n);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, Coll2Shapes,
                         ::testing::Values(ShapeParam{1, 1}, ShapeParam{1, 4},
                                           ShapeParam{2, 3}, ShapeParam{2, 2}));

TEST(Gatherv, VariableCountsWithDisplacements) {
  world_run(1, 3, [](sim::Process&) {
    Communicator world = comm_world();
    // Rank r contributes r+1 values of (r*10 + k).
    const int mine_count = world.rank() + 1;
    std::vector<std::int32_t> mine(static_cast<std::size_t>(mine_count));
    for (int k = 0; k < mine_count; ++k) {
      mine[static_cast<std::size_t>(k)] = world.rank() * 10 + k;
    }
    const std::vector<int> counts{1, 2, 3};
    const std::vector<int> displs{0, 2, 5};  // with a hole at index 1
    std::vector<std::int32_t> out(8, -1);
    world.gatherv(mine.data(), mine_count, Datatype::int32(), out.data(),
                  counts, displs, Datatype::int32(), 0);
    if (world.rank() == 0) {
      EXPECT_EQ(out[0], 0);
      EXPECT_EQ(out[1], -1);  // hole untouched
      EXPECT_EQ(out[2], 10);
      EXPECT_EQ(out[3], 11);
      EXPECT_EQ(out[5], 20);
      EXPECT_EQ(out[7], 22);
    }
  });
}

TEST(Allgatherv, EveryoneAssemblesTheVector) {
  world_run(2, 2, [](sim::Process&) {
    Communicator world = comm_world();
    const int mine_count = world.rank() % 2 + 1;  // 1,2,1,2
    std::vector<std::int32_t> mine(static_cast<std::size_t>(mine_count),
                                   world.rank());
    const std::vector<int> counts{1, 2, 1, 2};
    const std::vector<int> displs{0, 1, 3, 4};
    std::vector<std::int32_t> out(6, -1);
    world.allgatherv(mine.data(), mine_count, Datatype::int32(), out.data(),
                     counts, displs, Datatype::int32());
    EXPECT_EQ(out, (std::vector<std::int32_t>{0, 1, 1, 2, 3, 3}));
  });
}

TEST(WaitAny, ReturnsFirstCompletion) {
  world_run(1, 2, [](sim::Process& p) {
    Communicator world = comm_world();
    if (p.rank() == 0) {
      // Post two receives; the peer satisfies the second tag first.
      std::int32_t a = 0, b = 0;
      std::vector<Request> reqs;
      reqs.push_back(world.irecv(&a, 1, Datatype::int32(), 1, 1));
      reqs.push_back(world.irecv(&b, 1, Datatype::int32(), 1, 2));
      Status st;
      const int first = Request::wait_any(reqs, &st);
      EXPECT_EQ(first, 1);
      EXPECT_EQ(st.tag, 2);
      EXPECT_EQ(b, 22);
      EXPECT_TRUE(reqs[1].is_null());
      const int second = Request::wait_any(reqs, &st);
      EXPECT_EQ(second, 0);
      EXPECT_EQ(a, 11);
      EXPECT_EQ(Request::wait_any(reqs, &st), -1);  // all null now
    } else {
      const std::int32_t b = 22, a = 11;
      world.send(&b, 1, Datatype::int32(), 0, 2);
      // Give tag-2 time to complete first.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      world.send(&a, 1, Datatype::int32(), 0, 1);
    }
  });
}

TEST(Exscan, NonCommutativeOrderPreserved) {
  world_run(1, 3, [](sim::Process&) {
    Communicator world = comm_world();
    Op chain = Op::create(
        [](const void* in, void* inout, int count, const Datatype&) {
          const auto* a = static_cast<const std::int64_t*>(in);
          auto* b = static_cast<std::int64_t*>(inout);
          for (int i = 0; i < count; ++i) {
            b[i] = b[i] * 10 + a[i];
          }
        },
        /*commute=*/false, "chain");
    const std::int64_t mine = world.rank() + 1;
    std::int64_t prefix = 0;
    world.exscan(&mine, &prefix, 1, Datatype::int64(), chain);
    if (world.rank() == 1) {
      EXPECT_EQ(prefix, 1);
    }
    if (world.rank() == 2) {
      EXPECT_EQ(prefix, 12);  // 1 chained with 2
    }
  });
}

}  // namespace
}  // namespace sessmpi
