// Tests for the C-style binding (the interface surface the paper's modified
// OSU/HPCC benchmarks program against).

#include "sessmpi/capi.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "harness.hpp"

namespace sessmpi::capi {
namespace {

using sessmpi::testing::mpi_run;

TEST(CApi, InfoPreInitLifecycle) {
  // No cluster, no init: Info must work standalone (§III-B5).
  MPI_Info info = MPI_INFO_NULL;
  ASSERT_EQ(MPI_Info_create(&info), MPI_SUCCESS);
  ASSERT_EQ(MPI_Info_set(info, "thread_level", "multiple"), MPI_SUCCESS);
  char value[64];
  int flag = 0;
  ASSERT_EQ(MPI_Info_get(info, "thread_level", 64, value, &flag), MPI_SUCCESS);
  EXPECT_EQ(flag, 1);
  EXPECT_STREQ(value, "multiple");
  ASSERT_EQ(MPI_Info_get(info, "missing", 64, value, &flag), MPI_SUCCESS);
  EXPECT_EQ(flag, 0);
  int nkeys = 0;
  ASSERT_EQ(MPI_Info_get_nkeys(info, &nkeys), MPI_SUCCESS);
  EXPECT_EQ(nkeys, 1);
  ASSERT_EQ(MPI_Info_free(&info), MPI_SUCCESS);
  EXPECT_EQ(info, MPI_INFO_NULL);
}

TEST(CApi, NullArgumentsReturnErrorCodes) {
  EXPECT_NE(MPI_Info_create(nullptr), MPI_SUCCESS);
  EXPECT_NE(MPI_Session_init(MPI_INFO_NULL, MPI_ERRHANDLER_NULL, nullptr),
            MPI_SUCCESS);
  int rank = 0;
  EXPECT_NE(MPI_Comm_rank(MPI_COMM_NULL, &rank), MPI_SUCCESS);
}

TEST(CApi, Figure1FlowThroughCInterface) {
  // The paper's Figure 1, written exactly as a C application would.
  mpi_run(2, 2, [](sim::Process& p) {
    MPI_Session session = MPI_SESSION_NULL;
    ASSERT_EQ(MPI_Session_init(MPI_INFO_NULL, mpi_errors_return(), &session),
              MPI_SUCCESS);

    int npsets = 0;
    ASSERT_EQ(MPI_Session_get_num_psets(session, MPI_INFO_NULL, &npsets),
              MPI_SUCCESS);
    EXPECT_GE(npsets, 3);  // world, self, shared

    // Find mpi://world among the psets via the length-query protocol.
    bool found_world = false;
    for (int n = 0; n < npsets; ++n) {
      int len = 0;
      ASSERT_EQ(MPI_Session_get_nth_pset(session, MPI_INFO_NULL, n, &len,
                                         nullptr),
                MPI_SUCCESS);
      std::vector<char> name(static_cast<std::size_t>(len));
      ASSERT_EQ(MPI_Session_get_nth_pset(session, MPI_INFO_NULL, n, &len,
                                         name.data()),
                MPI_SUCCESS);
      if (std::strcmp(name.data(), "mpi://world") == 0) {
        found_world = true;
      }
    }
    EXPECT_TRUE(found_world);

    MPI_Info pinfo = MPI_INFO_NULL;
    ASSERT_EQ(MPI_Session_get_pset_info(session, "mpi://world", &pinfo),
              MPI_SUCCESS);
    char size_str[16];
    int flag = 0;
    ASSERT_EQ(MPI_Info_get(pinfo, "mpi_size", 16, size_str, &flag),
              MPI_SUCCESS);
    EXPECT_STREQ(size_str, "4");
    MPI_Info_free(&pinfo);

    MPI_Group group = MPI_GROUP_NULL;
    ASSERT_EQ(MPI_Group_from_session_pset(session, "mpi://world", &group),
              MPI_SUCCESS);
    int gsize = 0, grank = -1;
    MPI_Group_size(group, &gsize);
    MPI_Group_rank(group, &grank);
    EXPECT_EQ(gsize, 4);
    EXPECT_EQ(grank, p.rank());

    MPI_Comm comm = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Comm_create_from_group(group, "capi-fig1", MPI_INFO_NULL,
                                         mpi_errors_return(), &comm),
              MPI_SUCCESS);
    int crank = -1, csize = 0;
    MPI_Comm_rank(comm, &crank);
    MPI_Comm_size(comm, &csize);
    EXPECT_EQ(crank, p.rank());
    EXPECT_EQ(csize, 4);

    long long mine = crank, sum = 0;
    ASSERT_EQ(MPI_Allreduce(&mine, &sum, 1, MPI_INT64_T, MPI_SUM, comm),
              MPI_SUCCESS);
    EXPECT_EQ(sum, 6);
    ASSERT_EQ(MPI_Barrier(comm), MPI_SUCCESS);

    MPI_Group_free(&group);
    MPI_Comm_free(&comm);
    ASSERT_EQ(MPI_Session_finalize(&session), MPI_SUCCESS);
    EXPECT_EQ(session, MPI_SESSION_NULL);
  });
}

TEST(CApi, SendRecvAndNonblocking) {
  mpi_run(1, 2, [](sim::Process& p) {
    MPI_Session session = MPI_SESSION_NULL;
    ASSERT_EQ(MPI_Session_init(MPI_INFO_NULL, mpi_errors_return(), &session),
              MPI_SUCCESS);
    MPI_Group group = MPI_GROUP_NULL;
    MPI_Group_from_session_pset(session, "mpi://world", &group);
    MPI_Comm comm = MPI_COMM_NULL;
    MPI_Comm_create_from_group(group, "capi-p2p", MPI_INFO_NULL,
                               mpi_errors_return(), &comm);

    if (p.rank() == 0) {
      double v = 2.75;
      ASSERT_EQ(MPI_Send(&v, 1, MPI_DOUBLE, 1, 42, comm), MPI_SUCCESS);
      MPI_Request req = MPI_REQUEST_NULL;
      double in = 0;
      ASSERT_EQ(MPI_Irecv(&in, 1, MPI_DOUBLE, 1, 43, comm, &req), MPI_SUCCESS);
      MPI_Status st;
      ASSERT_EQ(MPI_Wait(&req, &st), MPI_SUCCESS);
      EXPECT_EQ(req, MPI_REQUEST_NULL);
      EXPECT_EQ(st.MPI_SOURCE, 1);
      EXPECT_EQ(st.MPI_TAG, 43);
      EXPECT_DOUBLE_EQ(in, 5.5);
    } else {
      double in = 0;
      MPI_Status st;
      ASSERT_EQ(MPI_Recv(&in, 1, MPI_DOUBLE, 0, 42, comm, &st), MPI_SUCCESS);
      EXPECT_DOUBLE_EQ(in, 2.75);
      const double out = in * 2;
      MPI_Request req = MPI_REQUEST_NULL;
      ASSERT_EQ(MPI_Isend(&out, 1, MPI_DOUBLE, 0, 43, comm, &req), MPI_SUCCESS);
      ASSERT_EQ(MPI_Wait(&req, MPI_STATUS_IGNORE), MPI_SUCCESS);
    }

    // Ibarrier + Test polling loop (the QUO quiescence idiom, §IV-E).
    MPI_Request bar = MPI_REQUEST_NULL;
    ASSERT_EQ(MPI_Ibarrier(comm, &bar), MPI_SUCCESS);
    int flag = 0;
    while (flag == 0) {
      ASSERT_EQ(MPI_Test(&bar, &flag, MPI_STATUS_IGNORE), MPI_SUCCESS);
    }

    MPI_Group_free(&group);
    MPI_Comm_free(&comm);
    MPI_Session_finalize(&session);
  });
}

TEST(CApi, CommDupAndBcast) {
  mpi_run(1, 3, [](sim::Process&) {
    MPI_Session session = MPI_SESSION_NULL;
    MPI_Session_init(MPI_INFO_NULL, mpi_errors_return(), &session);
    MPI_Group group = MPI_GROUP_NULL;
    MPI_Group_from_session_pset(session, "mpi://world", &group);
    MPI_Comm comm = MPI_COMM_NULL;
    MPI_Comm_create_from_group(group, "capi-dup", MPI_INFO_NULL,
                               mpi_errors_return(), &comm);
    MPI_Comm dup = MPI_COMM_NULL;
    ASSERT_EQ(MPI_Comm_dup(comm, &dup), MPI_SUCCESS);
    int rank = -1;
    MPI_Comm_rank(dup, &rank);
    std::int32_t v = rank == 1 ? 1234 : 0;
    ASSERT_EQ(MPI_Bcast(&v, 1, MPI_INT32_T, 1, dup), MPI_SUCCESS);
    EXPECT_EQ(v, 1234);
    MPI_Comm_free(&dup);
    MPI_Comm_free(&comm);
    MPI_Group_free(&group);
    MPI_Session_finalize(&session);
  });
}

TEST(CApi, ErrorsSurfaceAsCodes) {
  mpi_run(1, 1, [](sim::Process&) {
    MPI_Session session = MPI_SESSION_NULL;
    MPI_Session_init(MPI_INFO_NULL, mpi_errors_return(), &session);
    MPI_Group group = MPI_GROUP_NULL;
    const int rc =
        MPI_Group_from_session_pset(session, "mpi://bogus", &group);
    EXPECT_NE(rc, MPI_SUCCESS);
    int cls = 0;
    EXPECT_EQ(mpi_error_class(rc, &cls), MPI_SUCCESS);
    EXPECT_EQ(cls, static_cast<int>(ErrClass::arg));
    MPI_Session_finalize(&session);
    // Finalized handle is gone; double finalize reports an error.
    EXPECT_NE(MPI_Session_finalize(&session), MPI_SUCCESS);
  });
}

}  // namespace
}  // namespace sessmpi::capi
