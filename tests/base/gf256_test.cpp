// GF(2^8) field arithmetic backing the checkpoint erasure codecs: field
// axioms over exhaustive element pairs, inverse round-trips, and the
// Cauchy-submatrix invertibility the MDS recovery guarantee rests on.

#include "sessmpi/base/gf256.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sessmpi::base::gf256 {
namespace {

TEST(Gf256, MultiplicationIsCommutativeWithZeroAndOneLaws) {
  for (int a = 0; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(ua, 0), 0);
    EXPECT_EQ(mul(0, ua), 0);
    EXPECT_EQ(mul(ua, 1), ua);
    EXPECT_EQ(mul(1, ua), ua);
    for (int b = 0; b < 256; ++b) {
      const auto ub = static_cast<std::uint8_t>(b);
      ASSERT_EQ(mul(ua, ub), mul(ub, ua));
    }
  }
}

TEST(Gf256, MultiplicationAssociatesAndDistributesOverXor) {
  // Exhaustive triples would be 2^24 products; coprime strides still visit
  // every element in each position while keeping the test instant.
  for (int a = 1; a < 256; a += 3) {
    for (int b = 1; b < 256; b += 5) {
      for (int c = 1; c < 256; c += 7) {
        const auto ua = static_cast<std::uint8_t>(a);
        const auto ub = static_cast<std::uint8_t>(b);
        const auto uc = static_cast<std::uint8_t>(c);
        ASSERT_EQ(mul(mul(ua, ub), uc), mul(ua, mul(ub, uc)));
        ASSERT_EQ(mul(ua, static_cast<std::uint8_t>(ub ^ uc)),
                  static_cast<std::uint8_t>(mul(ua, ub) ^ mul(ua, uc)));
      }
    }
  }
}

TEST(Gf256, EveryNonzeroElementHasAnInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    const std::uint8_t ia = inv(ua);
    EXPECT_NE(ia, 0);
    EXPECT_EQ(mul(ua, ia), 1) << "a=" << a;
    EXPECT_EQ(div(ua, ua), 1);
  }
  EXPECT_EQ(inv(0), 0);  // documented sentinel, never hit by the codec
}

TEST(Gf256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      ASSERT_EQ(div(mul(ua, ub), ub), ua);
    }
  }
}

/// Determinant over GF(2^8) by Gaussian elimination (char 2: row swaps do
/// not flip the sign).
std::uint8_t det(std::vector<std::vector<std::uint8_t>> a) {
  const std::size_t n = a.size();
  std::uint8_t d = 1;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    while (piv < n && a[piv][col] == 0) {
      ++piv;
    }
    if (piv == n) {
      return 0;
    }
    std::swap(a[piv], a[col]);
    d = mul(d, a[col][col]);
    const std::uint8_t pivinv = inv(a[col][col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      if (a[r][col] == 0) {
        continue;
      }
      const std::uint8_t f = mul(a[r][col], pivinv);
      for (std::size_t c = col; c < n; ++c) {
        a[r][c] = static_cast<std::uint8_t>(a[r][c] ^ mul(f, a[col][c]));
      }
    }
  }
  return d;
}

TEST(Gf256, EverySquareCauchySubmatrixIsInvertible) {
  // The MDS property in matrix form: recovering e lost data chunks inverts
  // an e x e submatrix of the Cauchy parity matrix, so every such submatrix
  // must be nonsingular. Check all of them (up to 3x3) for the set shapes
  // the checkpoint layer configures.
  for (const auto& [k, m] :
       std::vector<std::pair<int, int>>{{4, 2}, {8, 2}, {4, 3}}) {
    for (int i0 = 0; i0 < m; ++i0) {
      for (int j0 = 0; j0 < k; ++j0) {
        EXPECT_NE(cauchy(k, i0, j0), 0);
        for (int i1 = i0 + 1; i1 < m; ++i1) {
          for (int j1 = j0 + 1; j1 < k; ++j1) {
            EXPECT_NE(det({{cauchy(k, i0, j0), cauchy(k, i0, j1)},
                           {cauchy(k, i1, j0), cauchy(k, i1, j1)}}),
                      0);
          }
        }
      }
    }
    if (m >= 3) {
      for (int j0 = 0; j0 < k; ++j0) {
        for (int j1 = j0 + 1; j1 < k; ++j1) {
          for (int j2 = j1 + 1; j2 < k; ++j2) {
            std::vector<std::vector<std::uint8_t>> a(
                3, std::vector<std::uint8_t>(3));
            for (int i = 0; i < 3; ++i) {
              a[static_cast<std::size_t>(i)] = {cauchy(k, i, j0),
                                                cauchy(k, i, j1),
                                                cauchy(k, i, j2)};
            }
            EXPECT_NE(det(a), 0);
          }
        }
      }
    }
  }
}

TEST(Gf256, MulAddMatchesScalarReference) {
  std::array<std::byte, 64> src{};
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(37 * i + 11);
  }
  for (const int coef : {0, 1, 2, 0x53, 0xff}) {
    std::array<std::byte, 64> dst{};
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] = static_cast<std::byte>(5 * i + 3);
    }
    auto want = dst;
    for (std::size_t i = 0; i < want.size(); ++i) {
      want[i] ^= static_cast<std::byte>(mul(static_cast<std::uint8_t>(coef),
                                            static_cast<std::uint8_t>(src[i])));
    }
    mul_add(dst.data(), src.data(), dst.size(),
            static_cast<std::uint8_t>(coef));
    EXPECT_EQ(dst, want) << "coef=" << coef;
  }
}

}  // namespace
}  // namespace sessmpi::base::gf256
