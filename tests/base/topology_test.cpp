#include "sessmpi/base/topology.hpp"

#include <gtest/gtest.h>

namespace sessmpi::base {
namespace {

TEST(Topology, SizeIsNodesTimesPpn) {
  const Topology t{4, 28};
  EXPECT_EQ(t.size(), 112);
}

TEST(Topology, NodeMajorLayout) {
  const Topology t{2, 4};
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(3), 0);
  EXPECT_EQ(t.node_of(4), 1);
  EXPECT_EQ(t.node_of(7), 1);
  EXPECT_EQ(t.local_rank_of(5), 1);
}

TEST(Topology, SameNode) {
  const Topology t{2, 4};
  EXPECT_TRUE(t.same_node(0, 3));
  EXPECT_FALSE(t.same_node(3, 4));
  EXPECT_TRUE(t.same_node(4, 7));
}

TEST(Topology, ValidRankBounds) {
  const Topology t{2, 4};
  EXPECT_FALSE(t.valid_rank(-1));
  EXPECT_TRUE(t.valid_rank(0));
  EXPECT_TRUE(t.valid_rank(7));
  EXPECT_FALSE(t.valid_rank(8));
}

struct TopoParam {
  int nodes;
  int ppn;
};

class TopologySweep : public ::testing::TestWithParam<TopoParam> {};

TEST_P(TopologySweep, EveryRankRoundTrips) {
  const Topology t{GetParam().nodes, GetParam().ppn};
  for (int r = 0; r < t.size(); ++r) {
    EXPECT_EQ(t.node_of(r) * t.procs_per_node + t.local_rank_of(r), r);
    EXPECT_LT(t.node_of(r), t.num_nodes);
    EXPECT_LT(t.local_rank_of(r), t.procs_per_node);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopologySweep,
                         ::testing::Values(TopoParam{1, 1}, TopoParam{1, 28},
                                           TopoParam{8, 1}, TopoParam{4, 7},
                                           TopoParam{16, 28}));

}  // namespace
}  // namespace sessmpi::base
