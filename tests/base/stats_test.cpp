#include "sessmpi/base/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sessmpi::base {
namespace {

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleSample) {
  const Summary s = summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 42.0);
  EXPECT_EQ(s.max, 42.0);
  EXPECT_EQ(s.mean, 42.0);
  EXPECT_EQ(s.median, 42.0);
}

TEST(Summarize, BasicStatistics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Summarize, UnsortedInputHandled) {
  const Summary s = summarize({5.0, 1.0, 3.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"nodes", "time"});
  t.add_row({"1", "2.50"});
  t.add_row({"16", "12.00"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("nodes"), std::string::npos);
  EXPECT_NE(out.find("12.00"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream oss;
  t.print(oss);
  SUCCEED();  // must not crash; visual padding checked above
}

TEST(Table, FmtFixedPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt(0.5, 3), "0.500");
}

}  // namespace
}  // namespace sessmpi::base
