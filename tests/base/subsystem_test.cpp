#include "sessmpi/base/subsystem.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sessmpi::base {
namespace {

TEST(SubsystemRegistry, InitRunsOnceOnFirstAcquire) {
  SubsystemRegistry reg;
  int inits = 0;
  reg.define("a", [&] { ++inits; }, nullptr);
  reg.acquire("a");
  reg.acquire("a");
  EXPECT_EQ(inits, 1);
  EXPECT_TRUE(reg.is_initialized("a"));
  EXPECT_EQ(reg.ref_count("a"), 2);
}

TEST(SubsystemRegistry, TeardownDeferredUntilLastRelease) {
  SubsystemRegistry reg;
  int cleanups = 0;
  reg.define("a", nullptr, [&] { ++cleanups; });
  reg.acquire("a");
  reg.acquire("a");
  EXPECT_FALSE(reg.release("a"));
  EXPECT_EQ(cleanups, 0);
  EXPECT_TRUE(reg.is_initialized("a"));
  EXPECT_TRUE(reg.release("a"));
  EXPECT_EQ(cleanups, 1);
  EXPECT_FALSE(reg.is_initialized("a"));
}

TEST(SubsystemRegistry, ReinitializationAfterFullTeardown) {
  // Paper §III-B5: sessions can be initialized and finalized repeatedly
  // within a single application execution.
  SubsystemRegistry reg;
  int inits = 0;
  int cleanups = 0;
  reg.define("mpi", [&] { ++inits; }, [&] { ++cleanups; });
  for (int cycle = 0; cycle < 3; ++cycle) {
    reg.acquire("mpi");
    reg.release("mpi");
  }
  EXPECT_EQ(inits, 3);
  EXPECT_EQ(cleanups, 3);
  EXPECT_EQ(reg.completed_cycles(), 3);
}

TEST(SubsystemRegistry, DependenciesInitializeFirstAndCleanupLast) {
  SubsystemRegistry reg;
  std::vector<std::string> order;
  reg.define("base", [&] { order.push_back("init:base"); },
             [&] { order.push_back("clean:base"); });
  reg.define("pml", [&] { order.push_back("init:pml"); },
             [&] { order.push_back("clean:pml"); }, {"base"});
  reg.acquire("pml");
  reg.release("pml");
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "init:base");
  EXPECT_EQ(order[1], "init:pml");
  EXPECT_EQ(order[2], "clean:pml");
  EXPECT_EQ(order[3], "clean:base");
}

TEST(SubsystemRegistry, DependencyKeptAliveByDependent) {
  SubsystemRegistry reg;
  int base_cleanups = 0;
  reg.define("base", nullptr, [&] { ++base_cleanups; });
  reg.define("pml", nullptr, nullptr, {"base"});
  reg.acquire("base");
  reg.acquire("pml");
  reg.release("base");
  EXPECT_EQ(base_cleanups, 0);  // pml still holds base
  reg.release("pml");
  EXPECT_EQ(base_cleanups, 1);
}

TEST(SubsystemRegistry, DuplicateDefineThrows) {
  SubsystemRegistry reg;
  reg.define("a", nullptr, nullptr);
  EXPECT_THROW(reg.define("a", nullptr, nullptr), Error);
}

TEST(SubsystemRegistry, UnknownNamesThrow) {
  SubsystemRegistry reg;
  EXPECT_THROW(reg.acquire("missing"), Error);
  EXPECT_THROW(reg.release("missing"), Error);
  EXPECT_THROW(reg.define("x", nullptr, nullptr, {"missing"}), Error);
}

TEST(SubsystemRegistry, OverReleaseThrows) {
  SubsystemRegistry reg;
  reg.define("a", nullptr, nullptr);
  reg.acquire("a");
  reg.release("a");
  EXPECT_THROW(reg.release("a"), Error);
}

TEST(SubsystemRegistry, ConcurrentAcquireIsThreadSafe) {
  // MPI_Session_init must be thread-safe; the registry is what backs it.
  SubsystemRegistry reg;
  std::atomic<int> inits{0};
  reg.define("mpi", [&] { ++inits; }, nullptr);
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] { reg.acquire("mpi"); });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(inits.load(), 1);
  EXPECT_EQ(reg.ref_count("mpi"), kThreads);
}

TEST(SubsystemRegistry, DiamondDependencyInitializesOnce) {
  SubsystemRegistry reg;
  int inits = 0;
  reg.define("opal", [&] { ++inits; }, nullptr);
  reg.define("pml", nullptr, nullptr, {"opal"});
  reg.define("coll", nullptr, nullptr, {"opal"});
  reg.acquire("pml");
  reg.acquire("coll");
  EXPECT_EQ(inits, 1);
  EXPECT_EQ(reg.ref_count("opal"), 2);
}

}  // namespace
}  // namespace sessmpi::base
