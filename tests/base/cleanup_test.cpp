#include "sessmpi/base/cleanup.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sessmpi::base {
namespace {

TEST(CleanupRegistry, RunsInReverseRegistrationOrder) {
  CleanupRegistry reg;
  std::vector<int> order;
  reg.register_cleanup("first", [&] { order.push_back(1); });
  reg.register_cleanup("second", [&] { order.push_back(2); });
  reg.register_cleanup("third", [&] { order.push_back(3); });
  EXPECT_EQ(reg.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(CleanupRegistry, ClearsAfterRun) {
  CleanupRegistry reg;
  int calls = 0;
  reg.register_cleanup("cb", [&] { ++calls; });
  EXPECT_EQ(reg.size(), 1u);
  reg.run_all();
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.run_all(), 0u);
  EXPECT_EQ(calls, 1);
}

TEST(CleanupRegistry, SupportsReRegistrationAfterRun) {
  CleanupRegistry reg;
  int calls = 0;
  reg.register_cleanup("cb", [&] { ++calls; });
  reg.run_all();
  reg.register_cleanup("cb", [&] { ++calls; });
  reg.run_all();
  EXPECT_EQ(calls, 2);
}

TEST(CleanupRegistry, NamesPreserveRegistrationOrder) {
  CleanupRegistry reg;
  reg.register_cleanup("a", [] {});
  reg.register_cleanup("b", [] {});
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"a", "b"}));
}

TEST(CleanupRegistry, NullCallbackIsTolerated) {
  CleanupRegistry reg;
  reg.register_cleanup("null", nullptr);
  EXPECT_EQ(reg.run_all(), 1u);
}

TEST(CleanupRegistry, ConcurrentRegistrationIsSafe) {
  CleanupRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPer = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPer; ++i) {
        reg.register_cleanup("cb", [] {});
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(reg.size(), static_cast<std::size_t>(kThreads * kPer));
  EXPECT_EQ(reg.run_all(), static_cast<std::size_t>(kThreads * kPer));
}

}  // namespace
}  // namespace sessmpi::base
