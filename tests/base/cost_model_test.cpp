#include "sessmpi/base/cost_model.hpp"

#include <gtest/gtest.h>

namespace sessmpi::base {
namespace {

TEST(CostModel, ZeroPresetInjectsNothing) {
  const CostModel m = CostModel::zero();
  EXPECT_EQ(m.wire_cost(true, 1 << 20, 64), 0);
  EXPECT_EQ(m.wire_cost(false, 1 << 20, 64), 0);
  EXPECT_EQ(m.nfs_load_cost(64), 0);
  EXPECT_EQ(m.fence_exchange_cost(64), 0);
  EXPECT_EQ(m.group_exchange_cost(64), 0);
}

TEST(CostModel, IntraNodeCheaperThanInterNode) {
  const CostModel m = CostModel::calibrated();
  for (std::size_t size : {0u, 8u, 1024u, 65536u}) {
    EXPECT_LT(m.wire_cost(true, size, 14), m.wire_cost(false, size, 14))
        << "size=" << size;
  }
}

TEST(CostModel, WireCostMonotonicInPayload) {
  const CostModel m = CostModel::calibrated();
  std::int64_t prev = -1;
  for (std::size_t size = 0; size <= 1 << 20; size = size ? size * 4 : 64) {
    const auto c = m.wire_cost(false, size, 14);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(CostModel, ExtendedHeaderCostsMoreThanFastPath) {
  // The exCID extended header adds 18 bytes; the model must charge for it,
  // since that is one of the effects Figure 5 quantifies.
  const CostModel m = CostModel::calibrated();
  EXPECT_GT(m.wire_cost(true, 8, 14 + 18), m.wire_cost(true, 8, 14));
}

TEST(CostModel, GroupConstructDearerThanFence) {
  const CostModel m = CostModel::calibrated();
  for (int nodes : {1, 2, 4, 8, 16}) {
    EXPECT_GT(m.group_exchange_cost(nodes), m.fence_exchange_cost(nodes))
        << "nodes=" << nodes;
  }
}

TEST(CostModel, ExchangeCostsGrowWithNodeCount) {
  const CostModel m = CostModel::calibrated();
  EXPECT_LT(m.fence_exchange_cost(2), m.fence_exchange_cost(16));
  EXPECT_LT(m.group_exchange_cost(2), m.group_exchange_cost(16));
  EXPECT_LT(m.nfs_load_cost(1), m.nfs_load_cost(16));
}

TEST(CostModel, Log2CeilMatchesDefinition) {
  EXPECT_EQ(CostModel::log2_ceil(1), 0);
  EXPECT_EQ(CostModel::log2_ceil(2), 1);
  EXPECT_EQ(CostModel::log2_ceil(3), 2);
  EXPECT_EQ(CostModel::log2_ceil(4), 2);
  EXPECT_EQ(CostModel::log2_ceil(5), 3);
  EXPECT_EQ(CostModel::log2_ceil(1024), 10);
}

class WireCostSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WireCostSweep, HeaderBytesAreCharged) {
  const CostModel m = CostModel::calibrated();
  const std::size_t payload = GetParam();
  EXPECT_EQ(m.wire_cost(true, payload, 32) - m.wire_cost(true, payload, 14),
            m.per_header_byte_ns * 18);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, WireCostSweep,
                         ::testing::Values(0, 1, 8, 256, 4096, 65536, 1048576));

}  // namespace
}  // namespace sessmpi::base
