#include "sessmpi/base/slot_allocator.hpp"

#include <gtest/gtest.h>

namespace sessmpi::base {
namespace {

TEST(SlotAllocator, LowestFreeStartsAtZero) {
  SlotAllocator a(16);
  ASSERT_TRUE(a.lowest_free().has_value());
  EXPECT_EQ(*a.lowest_free(), 0u);
}

TEST(SlotAllocator, ClaimAdvancesLowestFree) {
  SlotAllocator a(16);
  EXPECT_TRUE(a.claim(0));
  EXPECT_TRUE(a.claim(1));
  EXPECT_EQ(*a.lowest_free(), 2u);
}

TEST(SlotAllocator, DoubleClaimFails) {
  SlotAllocator a(16);
  EXPECT_TRUE(a.claim(5));
  EXPECT_FALSE(a.claim(5));
}

TEST(SlotAllocator, ReleaseMakesSlotAvailableAgain) {
  SlotAllocator a(16);
  EXPECT_TRUE(a.claim(0));
  EXPECT_TRUE(a.claim(1));
  EXPECT_TRUE(a.release(0));
  EXPECT_EQ(*a.lowest_free(), 0u);
  EXPECT_FALSE(a.release(0));  // double release
}

TEST(SlotAllocator, LowestFreeFromSkipsBelow) {
  SlotAllocator a(16);
  EXPECT_TRUE(a.claim(3));
  EXPECT_EQ(*a.lowest_free(2), 2u);
  EXPECT_EQ(*a.lowest_free(3), 4u);
}

TEST(SlotAllocator, ExhaustionYieldsNullopt) {
  SlotAllocator a(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(a.claim(i));
  }
  EXPECT_FALSE(a.lowest_free().has_value());
  EXPECT_FALSE(a.claim(4));  // out of range
  EXPECT_EQ(a.in_use(), 4u);
}

TEST(SlotAllocator, FragmentationIsVisibleToLowestFree) {
  // Mirrors the CID-space fragmentation the paper discusses (§IV-C2): with
  // holes in the space, the lowest free slot differs between processes that
  // freed different slots — the consensus algorithm then needs extra rounds.
  SlotAllocator a(16);
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(a.claim(i));
  }
  a.release(2);
  a.release(5);
  EXPECT_EQ(*a.lowest_free(), 2u);
  ASSERT_TRUE(a.claim(2));
  EXPECT_EQ(*a.lowest_free(), 5u);
}

class SlotSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SlotSweep, ClaimReleaseRoundTripPreservesCapacity) {
  const std::uint32_t cap = GetParam();
  SlotAllocator a(cap);
  for (std::uint32_t i = 0; i < cap; ++i) {
    ASSERT_TRUE(a.claim(i));
  }
  EXPECT_EQ(a.in_use(), cap);
  for (std::uint32_t i = 0; i < cap; ++i) {
    ASSERT_TRUE(a.release(i));
  }
  EXPECT_EQ(a.in_use(), 0u);
  EXPECT_EQ(*a.lowest_free(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, SlotSweep,
                         ::testing::Values(1, 2, 16, 256, 1024));

}  // namespace
}  // namespace sessmpi::base
