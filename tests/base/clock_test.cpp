#include "sessmpi/base/clock.hpp"

#include <gtest/gtest.h>

namespace sessmpi::base {
namespace {

TEST(Clock, NowIsMonotonic) {
  const auto a = now_ns();
  const auto b = now_ns();
  EXPECT_LE(a, b);
}

TEST(PreciseDelay, ZeroAndNegativeAreNoops) {
  Stopwatch sw;
  precise_delay(0);
  precise_delay(-100);
  EXPECT_LT(sw.elapsed_ns(), 1'000'000);  // well under 1ms
}

TEST(PreciseDelay, SpinPathIsAccurate) {
  // Below the spin threshold the delay is busy-waited, so it should land
  // close to the request (allow generous slack for CI noise).
  constexpr std::int64_t kReq = 10'000;  // 10us
  Stopwatch sw;
  precise_delay(kReq);
  const auto elapsed = sw.elapsed_ns();
  EXPECT_GE(elapsed, kReq);
  EXPECT_LT(elapsed, kReq * 50);
}

TEST(PreciseDelay, SleepPathReachesAtLeastRequested) {
  constexpr std::int64_t kReq = 2'000'000;  // 2ms, above spin threshold
  Stopwatch sw;
  precise_delay(kReq);
  EXPECT_GE(sw.elapsed_ns(), kReq);
}

TEST(Stopwatch, ResetRestartsMeasurement) {
  Stopwatch sw;
  precise_delay(200'000);
  sw.reset();
  const auto after_reset = sw.elapsed_ns();
  EXPECT_LT(after_reset, 200'000);
}

TEST(Stopwatch, UnitConversionsAgree) {
  Stopwatch sw;
  precise_delay(1'000'000);
  const auto ns = sw.elapsed_ns();
  const auto ms = sw.elapsed_ms();
  EXPECT_NEAR(ms, static_cast<double>(ns) / 1e6, 1.0);
}

}  // namespace
}  // namespace sessmpi::base
