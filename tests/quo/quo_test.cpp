#include "sessmpi/quo/quo.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "../core/harness.hpp"
#include "sessmpi/base/clock.hpp"

namespace sessmpi::quo {
namespace {

using sessmpi::testing::world_run;

TEST(Quo, CreateGroupsByNode) {
  world_run(2, 3, [](sim::Process& p) {
    QuoContext q = QuoContext::create(comm_world());
    EXPECT_EQ(q.nqids(), 3);
    EXPECT_EQ(q.rank(), p.local_rank());
    EXPECT_EQ(q.is_node_leader(), p.local_rank() == 0);
    q.barrier();
    q.free();
  });
}

TEST(Quo, BaselineBarrierSynchronizesNodeLocals) {
  world_run(1, 4, [](sim::Process& p) {
    QuoContext q = QuoContext::create(comm_world());
    base::Stopwatch sw;
    if (p.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
    q.barrier();
    if (p.rank() != 0) {
      EXPECT_GT(sw.elapsed_ms(), 20.0);
    }
    EXPECT_EQ(q.barriers_done(), 1u);
    q.free();
  });
}

TEST(Quo, SessionsBarrierSynchronizes) {
  world_run(1, 4, [](sim::Process& p) {
    QuoContext::Options opts;
    opts.barrier = BarrierKind::sessions;
    QuoContext q = QuoContext::create(comm_world(), opts);
    EXPECT_EQ(q.kind(), BarrierKind::sessions);
    base::Stopwatch sw;
    if (p.rank() == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
    q.barrier();
    if (p.rank() != 1) {
      EXPECT_GT(sw.elapsed_ms(), 20.0);
    }
    q.free();
  });
}

TEST(Quo, RepeatedBarriersBothKinds) {
  for (BarrierKind kind : {BarrierKind::baseline, BarrierKind::sessions}) {
    world_run(1, 3, [kind](sim::Process&) {
      QuoContext::Options opts;
      opts.barrier = kind;
      QuoContext q = QuoContext::create(comm_world(), opts);
      for (int i = 0; i < 20; ++i) {
        q.barrier();
      }
      EXPECT_EQ(q.barriers_done(), 20u);
      q.free();
    });
  }
}

TEST(Quo, SessionsFlavourDoesNotDisturbHostApp) {
  // The paper integrated the prototype through QUO so 2MESH itself needed
  // no changes: the host's COMM_WORLD traffic must be unaffected.
  world_run(1, 2, [](sim::Process& p) {
    QuoContext::Options opts;
    opts.barrier = BarrierKind::sessions;
    QuoContext q = QuoContext::create(comm_world(), opts);
    Communicator world = comm_world();
    const int other = 1 - p.rank();
    std::int32_t in = -1;
    Request r = world.irecv(&in, 1, Datatype::int32(), other, 9);
    const std::int32_t out = 5 + p.rank();
    world.send(&out, 1, Datatype::int32(), other, 9);
    q.barrier();
    r.wait();
    EXPECT_EQ(in, 5 + other);
    q.free();
  });
}

TEST(Quo, BindStackPushPop) {
  world_run(1, 2, [](sim::Process&) {
    QuoContext q = QuoContext::create(comm_world());
    EXPECT_EQ(q.bind_depth(), 1u);
    EXPECT_EQ(q.current_policy(), BindPolicy::process);
    q.bind_push(BindPolicy::node);
    EXPECT_EQ(q.current_policy(), BindPolicy::node);
    q.bind_push(BindPolicy::socket);
    EXPECT_EQ(q.bind_depth(), 3u);
    q.bind_pop();
    EXPECT_EQ(q.current_policy(), BindPolicy::node);
    q.bind_pop();
    EXPECT_THROW(q.bind_pop(), base::Error);  // base layout cannot pop
    q.free();
  });
}

TEST(Quo, MultipleContextsCoexist) {
  world_run(1, 2, [](sim::Process&) {
    QuoContext a = QuoContext::create(comm_world());
    QuoContext b = QuoContext::create(comm_world());
    a.barrier();
    b.barrier();
    a.barrier();
    a.free();
    b.barrier();
    b.free();
  });
}

TEST(Quo, PhasePatternLikeTwoMesh) {
  // L0 (MPI everywhere) interleaved with L1 (threaded phase entered by the
  // node leader while the other ranks quiesce) — the 2MESH structure.
  world_run(1, 4, [](sim::Process&) {
    QuoContext::Options opts;
    opts.barrier = BarrierKind::sessions;
    QuoContext q = QuoContext::create(comm_world(), opts);
    Communicator world = comm_world();
    std::atomic<int>* counter = nullptr;
    static std::atomic<int> work{0};
    counter = &work;
    for (int phase = 0; phase < 3; ++phase) {
      // L0: everyone computes + allreduce.
      std::int64_t one = 1, total = 0;
      world.allreduce(&one, &total, 1, Datatype::int64(), Op::sum());
      EXPECT_EQ(total, 4);
      // L1: leader runs "threads"; others quiesce in the barrier.
      if (q.is_node_leader()) {
        q.bind_push(BindPolicy::node);
        counter->fetch_add(10);
        q.bind_pop();
      }
      q.barrier();
    }
    q.free();
  });
}

}  // namespace
}  // namespace sessmpi::quo
