// Tests for the hierarchical collective engine (src/coll): flat/hier
// result equivalence, non-commutative determinism across algorithm
// variants, MPI_IN_PLACE and zero-count edge cases, single-copy on-node
// accounting, plan-cache reuse and revoke/shrink invalidation, and
// concurrent collectives on disjoint communicators (the TSan witness for
// the shared-region release protocol).
//
// The "coll.algorithm" cvar is process-global, so tests that compare
// algorithms run one cluster per setting instead of flipping the knob
// while ranks are mid-collective (selection must branch identically on
// every rank of one operation).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "detail/state.hpp"
#include "harness.hpp"
#include "sessmpi/coll/plan.hpp"
#include "sessmpi/base/stats.hpp"
#include "sessmpi/obs/tvar.hpp"

namespace sessmpi {
namespace {

using namespace std::chrono_literals;
using testing::mpi_run;
using testing::world_run;

/// RAII force of the global algorithm knob; restores "auto" on scope exit.
struct AlgoGuard {
  explicit AlgoGuard(const char* algo) {
    EXPECT_TRUE(obs::cvar_write("coll.algorithm", algo));
  }
  ~AlgoGuard() { obs::cvar_write("coll.algorithm", "auto"); }
};

/// Digit-concatenation fold: inout = inout * 10 + in. Deliberately
/// non-associative-looking under reordering: any regrouping or rank
/// permutation of the fold changes the value, so a strict rank-ordered
/// reduction over ranks contributing (rank + 1) must yield 123...n.
Op digits_op() {
  return Op::create(
      [](const void* in, void* inout, int count, const Datatype&) {
        const auto* a = static_cast<const std::int64_t*>(in);
        auto* b = static_cast<std::int64_t*>(inout);
        for (int i = 0; i < count; ++i) {
          b[i] = b[i] * 10 + a[i];
        }
      },
      /*commute=*/false, "digits");
}

std::int64_t digits_expected(int n) {
  std::int64_t v = 0;
  for (int r = 0; r < n; ++r) {
    v = v * 10 + (r + 1);
  }
  return v;
}

struct ShapeParam {
  int nodes;
  int ppn;
};

class CollShapes : public ::testing::TestWithParam<ShapeParam> {
 protected:
  [[nodiscard]] int nodes() const { return GetParam().nodes; }
  [[nodiscard]] int ppn() const { return GetParam().ppn; }
};

// ---------------------------------------------------------------------------
// Flat and hierarchical paths must agree bit-for-bit on every collective.

struct SweepResult {
  std::vector<std::int64_t> bcast, reduce, allreduce, gather, scatter,
      allgather, alltoall, scan, exscan;
};

SweepResult run_sweep(int nodes, int ppn) {
  SweepResult out;
  std::mutex mu;
  world_run(nodes, ppn, [&](sim::Process&) {
    Communicator w = comm_world();
    const int n = w.size();
    const int me = w.rank();

    std::vector<std::int64_t> b(64, me == 1 % n ? 7 : -1);
    if (me == 1 % n) {
      std::iota(b.begin(), b.end(), 100);
    }
    w.bcast(b.data(), 64, Datatype::int64(), 1 % n);

    std::int64_t mine = me + 1;
    std::int64_t red = -1;
    w.reduce(&mine, &red, 1, Datatype::int64(), digits_op(), n - 1);

    std::int64_t ar = 0;
    w.allreduce(&mine, &ar, 1, Datatype::int64(), digits_op());

    std::vector<std::int64_t> g(static_cast<std::size_t>(n) * 2, -1);
    const std::int64_t gsrc[2] = {me * 2, me * 2 + 1};
    w.gather(gsrc, 2, Datatype::int64(), g.data(), 2, Datatype::int64(), 0);

    std::vector<std::int64_t> sc;
    if (me == 0) {
      sc.resize(static_cast<std::size_t>(n) * 2);
      std::iota(sc.begin(), sc.end(), 1000);
    }
    std::int64_t srecv[2] = {-1, -1};
    w.scatter(sc.data(), 2, Datatype::int64(), srecv, 2, Datatype::int64(),
              0);

    std::vector<std::int64_t> ag(static_cast<std::size_t>(n), -1);
    w.allgather(&mine, 1, Datatype::int64(), ag.data(), 1, Datatype::int64());

    std::vector<std::int64_t> a2asrc(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      a2asrc[static_cast<std::size_t>(i)] = me * 100 + i;
    }
    std::vector<std::int64_t> a2a(static_cast<std::size_t>(n), -1);
    w.alltoall(a2asrc.data(), 1, Datatype::int64(), a2a.data(), 1,
               Datatype::int64());

    std::int64_t scn = -1;
    w.scan(&mine, &scn, 1, Datatype::int64(), digits_op());
    std::int64_t exs = -1;
    w.exscan(&mine, &exs, 1, Datatype::int64(), digits_op());

    std::lock_guard lock(mu);
    auto append = [](std::vector<std::int64_t>& dst, const std::int64_t* src,
                     std::size_t cnt) { dst.insert(dst.end(), src, src + cnt); };
    // Every rank contributes in rank order so the two runs line up.
    static_cast<void>(append);
    out.bcast.insert(out.bcast.end(), b.begin(), b.end());
    out.reduce.push_back(red);
    out.allreduce.push_back(ar);
    out.gather.insert(out.gather.end(), g.begin(), g.end());
    out.scatter.push_back(srecv[0]);
    out.scatter.push_back(srecv[1]);
    out.allgather.insert(out.allgather.end(), ag.begin(), ag.end());
    out.alltoall.insert(out.alltoall.end(), a2a.begin(), a2a.end());
    out.scan.push_back(scn);
    out.exscan.push_back(me == 0 ? 0 : exs);
  });
  // Rank completion order is nondeterministic; canonicalize.
  auto sort_all = [](SweepResult& r) {
    for (auto* v : {&r.bcast, &r.reduce, &r.allreduce, &r.gather, &r.scatter,
                    &r.allgather, &r.alltoall, &r.scan, &r.exscan}) {
      std::sort(v->begin(), v->end());
    }
  };
  sort_all(out);
  return out;
}

TEST_P(CollShapes, HierMatchesFlatBitForBit) {
  SweepResult flat, hier;
  {
    AlgoGuard g{"flat"};
    flat = run_sweep(nodes(), ppn());
  }
  {
    AlgoGuard g{"hier"};
    hier = run_sweep(nodes(), ppn());
  }
  EXPECT_EQ(flat.bcast, hier.bcast);
  EXPECT_EQ(flat.reduce, hier.reduce);
  EXPECT_EQ(flat.allreduce, hier.allreduce);
  EXPECT_EQ(flat.gather, hier.gather);
  EXPECT_EQ(flat.scatter, hier.scatter);
  EXPECT_EQ(flat.allgather, hier.allgather);
  EXPECT_EQ(flat.alltoall, hier.alltoall);
  EXPECT_EQ(flat.scan, hier.scan);
  EXPECT_EQ(flat.exscan, hier.exscan);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CollShapes,
                         ::testing::Values(ShapeParam{1, 1}, ShapeParam{1, 6},
                                           ShapeParam{6, 1}, ShapeParam{2, 4},
                                           ShapeParam{3, 3}),
                         [](const auto& info) {
                           return std::to_string(info.param.nodes) + "x" +
                                  std::to_string(info.param.ppn);
                         });

// ---------------------------------------------------------------------------
// Non-commutative reductions must fold in strict rank order on every
// algorithm variant, including the nonblocking chain schedule.

TEST(CollEngine, NonCommutativeDeterministicAcrossVariants) {
  for (const char* algo : {"flat", "hier", "auto"}) {
    AlgoGuard g{algo};
    for (ShapeParam sh : {ShapeParam{1, 4}, ShapeParam{2, 4}, ShapeParam{4, 2}}) {
      world_run(sh.nodes, sh.ppn, [&](sim::Process&) {
        Communicator w = comm_world();
        const int n = w.size();
        const std::int64_t expect = digits_expected(n);
        const std::int64_t mine = w.rank() + 1;

        std::int64_t ar = -1;
        w.allreduce(&mine, &ar, 1, Datatype::int64(), digits_op());
        EXPECT_EQ(ar, expect) << "allreduce algo=" << algo;

        for (int root = 0; root < n; ++root) {
          std::int64_t red = -1;
          w.reduce(&mine, &red, 1, Datatype::int64(), digits_op(), root);
          if (w.rank() == root) {
            EXPECT_EQ(red, expect) << "reduce algo=" << algo;
          }
        }

        std::int64_t iar = -1;
        w.iallreduce(&mine, &iar, 1, Datatype::int64(), digits_op()).wait();
        EXPECT_EQ(iar, expect) << "iallreduce algo=" << algo;
      });
    }
  }
}

// ---------------------------------------------------------------------------
// Zero counts and MPI_IN_PLACE behave identically on both paths.

TEST(CollEngine, ZeroCountAndInPlaceUnderBothAlgorithms) {
  for (const char* algo : {"flat", "hier"}) {
    AlgoGuard g{algo};
    world_run(2, 4, [&](sim::Process&) {
      Communicator w = comm_world();
      const int n = w.size();
      const int me = w.rank();

      // Zero-count collectives complete and touch nothing.
      std::int64_t sentinel = 0x5151;
      w.bcast(&sentinel, 0, Datatype::int64(), 0);
      w.gather(nullptr, 0, Datatype::int64(), nullptr, 0, Datatype::int64(),
               0);
      w.scatter(nullptr, 0, Datatype::int64(), nullptr, 0, Datatype::int64(),
                0);
      std::int64_t z0 = 0;
      w.allreduce(&z0, &z0, 0, Datatype::int64(), Op::sum());
      EXPECT_EQ(sentinel, 0x5151);

      // IN_PLACE gather: root's contribution already sits in its slot of
      // recvbuf and must survive untouched.
      std::vector<std::int64_t> g(static_cast<std::size_t>(n), -1);
      const std::int64_t mine = 40 + me;
      if (me == 0) {
        g[0] = 40;
        w.gather(in_place, 1, Datatype::int64(), g.data(), 1,
                 Datatype::int64(), 0);
        for (int i = 0; i < n; ++i) {
          EXPECT_EQ(g[static_cast<std::size_t>(i)], 40 + i) << "algo=" << algo;
        }
      } else {
        w.gather(&mine, 1, Datatype::int64(), nullptr, 0, Datatype::int64(),
                 0);
      }

      // IN_PLACE scatter: root's slice stays in sendbuf.
      std::vector<std::int64_t> sc;
      if (me == 0) {
        sc.resize(static_cast<std::size_t>(n));
        std::iota(sc.begin(), sc.end(), 900);
      }
      std::int64_t got = me == 0 ? -1 : 0;
      if (me == 0) {
        w.scatter(sc.data(), 1, Datatype::int64(), const_cast<void*>(in_place),
                  1, Datatype::int64(), 0);
        EXPECT_EQ(sc[0], 900);
      } else {
        w.scatter(nullptr, 0, Datatype::int64(), &got, 1, Datatype::int64(),
                  0);
        EXPECT_EQ(got, 900 + me) << "algo=" << algo;
      }

      // IN_PLACE allreduce and allgather.
      std::int64_t acc = me + 1;
      w.allreduce(in_place, &acc, 1, Datatype::int64(), digits_op());
      EXPECT_EQ(acc, digits_expected(n)) << "algo=" << algo;

      std::vector<std::int64_t> ag(static_cast<std::size_t>(n), -1);
      ag[static_cast<std::size_t>(me)] = 70 + me;
      w.allgather(in_place, 1, Datatype::int64(), ag.data(), 1,
                  Datatype::int64());
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(ag[static_cast<std::size_t>(i)], 70 + i) << "algo=" << algo;
      }
    });
  }
}

TEST(CollEngine, InPlaceOnNonRootRaisesBufferError) {
  mpi_run(1, 2, [](sim::Process& p) {
    Session s = Session::init(Info::null(), Errhandler::errors_return());
    Communicator comm = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "coll-inplace", Info::null(),
        Errhandler::errors_return());
    std::int64_t buf[2] = {0, 0};
    if (p.rank() == 1) {
      try {
        comm.gather(in_place, 1, Datatype::int64(), nullptr, 0,
                    Datatype::int64(), 0);
        ADD_FAILURE() << "IN_PLACE gather on non-root must raise";
      } catch (const Error& e) {
        EXPECT_EQ(e.error_class(), ErrClass::buffer);
      }
      // Participate normally so the root's gather completes.
      const std::int64_t one = 1;
      comm.gather(&one, 1, Datatype::int64(), nullptr, 0, Datatype::int64(),
                  0);
    } else {
      comm.gather(in_place, 1, Datatype::int64(), buf, 1, Datatype::int64(),
                  0);
    }
    comm.free();
    s.finalize();
  });
}

// ---------------------------------------------------------------------------
// Single-copy witness: on one node, hierarchical bcast/allreduce above the
// eager threshold must move payload exclusively through the shared region
// (coll.payload_copies counts same-node fabric sends with payload).

TEST(CollEngine, OnNodeHierarchicalCollectivesAreSingleCopy) {
  base::counters().reset();
  world_run(1, 8, [](sim::Process&) {
    Communicator w = comm_world();
    std::vector<std::int64_t> buf(1024);  // 8 KiB >= the 4 KiB floor
    if (w.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0);
    }
    w.bcast(buf.data(), 1024, Datatype::int64(), 0);
    EXPECT_EQ(buf[1023], 1023);

    std::vector<std::int64_t> acc(1024, 0);
    w.allreduce(buf.data(), acc.data(), 1024, Datatype::int64(), Op::sum());
    EXPECT_EQ(acc[1], 8);
  });
  // A counter that was never bumped is also never registered, so an absent
  // pvar and a zero-valued one both mean "no copies happened".
  EXPECT_EQ(obs::pvar_read_counter("coll.payload_copies").value_or(0), 0u);
  EXPECT_GT(obs::pvar_read_counter("coll.shm_publishes").value_or(0), 0u);
  EXPECT_GT(obs::pvar_read_counter("coll.shm_bytes").value_or(0), 8u * 1024u);
  EXPECT_EQ(obs::pvar_read_counter("coll.wire_sends").value_or(0), 0u);
}

// ---------------------------------------------------------------------------
// Plan cache: built once per rank per communicator, reused across
// operations, dropped on revoke, rebuilt for the shrunk membership.

TEST(CollEngine, PlanCacheReuseAndShrinkInvalidation) {
  mpi_run(1, 4, [](sim::Process& p) {
    Session s = Session::init(Info::null(), Errhandler::errors_return());
    Communicator comm = Communicator::create_from_group(
        s.group_from_pset("mpi://world"), "coll-shrink", Info::null(),
        Errhandler::errors_return());
    const auto& cs = detail_unwrap(comm);

    comm.barrier();
    EXPECT_NE(cs->coll_plan, nullptr);
    const void* first_plan = cs->coll_plan.get();
    comm.barrier();
    EXPECT_EQ(cs->coll_plan.get(), first_plan) << "plan must be reused";

    if (p.rank() == 3) {
      std::this_thread::sleep_for(20ms);
      p.fail();
      return;  // crashed: no finalize
    }
    EXPECT_THROW(comm.barrier(), Error);
    comm.revoke();
    EXPECT_TRUE(comm.is_revoked());
    // Revocation is the invalidation point: the cached plan is gone.
    EXPECT_EQ(cs->coll_plan, nullptr);

    Communicator small = comm.shrink();
    EXPECT_EQ(small.size(), 3);
    std::int64_t one = 1;
    std::int64_t sum = 0;
    small.allreduce(&one, &sum, 1, Datatype::int64(), Op::sum());
    EXPECT_EQ(sum, 3);
    // The shrunk communicator built its own plan over the survivors only.
    // (Pointer identity against the old plan would be an ABA check — the
    // revoked plan's storage can be recycled — so witness the membership.)
    const auto splan =
        std::static_pointer_cast<const coll::Plan>(detail_unwrap(small)->coll_plan);
    ASSERT_NE(splan, nullptr);
    EXPECT_EQ(splan->nranks, 3);

    small.free();
    comm.free();
    s.finalize();
  });
}

// ---------------------------------------------------------------------------
// Disjoint communicators run collectives concurrently: the even and odd
// halves of the world hammer their own comm in lockstep. Run under TSan in
// CI, this is the data-race witness for the shared-region protocol (two
// regions, interleaved publishes from sibling threads on one node).

TEST(CollEngine, ConcurrentCollectivesOnDisjointComms) {
  world_run(2, 4, [](sim::Process&) {
    Communicator w = comm_world();
    Communicator half = w.split(w.rank() % 2, w.rank());
    const int n = half.size();
    const std::int64_t base = w.rank() % 2 ? 1000 : 1;
    for (int iter = 0; iter < 25; ++iter) {
      std::int64_t mine = base + iter;
      std::int64_t sum = 0;
      half.allreduce(&mine, &sum, 1, Datatype::int64(), Op::sum());
      EXPECT_EQ(sum, (base + iter) * n);
      std::vector<std::int64_t> buf(512, half.rank() == 0 ? base + iter : -1);
      half.bcast(buf.data(), 512, Datatype::int64(), 0);
      EXPECT_EQ(buf[511], base + iter);
    }
    half.barrier();
    half.free();
  });
}

// ---------------------------------------------------------------------------
// Nonblocking collectives: correctness across shapes, overlapping ops.

TEST(CollEngine, IbcastAndIallreduceAcrossShapes) {
  for (ShapeParam sh : {ShapeParam{1, 4}, ShapeParam{2, 4}, ShapeParam{4, 1}}) {
    world_run(sh.nodes, sh.ppn, [](sim::Process&) {
      Communicator w = comm_world();
      const int n = w.size();
      for (int root = 0; root < n; ++root) {
        std::vector<std::int32_t> buf(128, w.rank() == root ? root : -1);
        Request r = w.ibcast(buf.data(), 128, Datatype::int32(), root);
        EXPECT_EQ(r.wait().error, ErrClass::success);
        EXPECT_EQ(buf[0], root);
        EXPECT_EQ(buf[127], root);
      }
      // Two overlapping nonblocking collectives on one communicator:
      // sequence-keyed tags keep their wire traffic apart.
      const std::int64_t mine = w.rank() + 1;
      std::int64_t sum = 0;
      std::vector<std::int32_t> bb(64, w.rank() == 0 ? 42 : -1);
      Request ra = w.iallreduce(&mine, &sum, 1, Datatype::int64(), Op::sum());
      Request rb = w.ibcast(bb.data(), 64, Datatype::int32(), 0);
      EXPECT_EQ(rb.wait().error, ErrClass::success);
      EXPECT_EQ(ra.wait().error, ErrClass::success);
      EXPECT_EQ(sum, static_cast<std::int64_t>(n) * (n + 1) / 2);
      EXPECT_EQ(bb[63], 42);
    });
  }
}

}  // namespace
}  // namespace sessmpi
