#include "sessmpi/pmix/datastore.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace sessmpi::pmix {
namespace {

using namespace std::chrono_literals;

TEST(Datastore, PutIsInvisibleUntilCommit) {
  Datastore ds;
  ds.put(0, "k", std::string("v"));
  EXPECT_FALSE(ds.get_immediate(0, "k").has_value());
  EXPECT_EQ(ds.commit(0), 1u);
  auto v = ds.get_immediate(0, "k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::get<std::string>(*v), "v");
}

TEST(Datastore, CommitReturnsPublishedCount) {
  Datastore ds;
  ds.put(3, "a", std::int64_t{1});
  ds.put(3, "b", std::int64_t{2});
  EXPECT_EQ(ds.commit(3), 2u);
  EXPECT_EQ(ds.commit(3), 0u);  // staging drained
  EXPECT_EQ(ds.published_count(), 2u);
}

TEST(Datastore, LaterPutOverwritesAfterCommit) {
  Datastore ds;
  ds.put(0, "k", std::string("v1"));
  ds.commit(0);
  ds.put(0, "k", std::string("v2"));
  ds.commit(0);
  EXPECT_EQ(std::get<std::string>(*ds.get_immediate(0, "k")), "v2");
}

TEST(Datastore, KeysAreScopedPerProcess) {
  Datastore ds;
  ds.put(0, "k", std::string("zero"));
  ds.put(1, "k", std::string("one"));
  ds.commit(0);
  ds.commit(1);
  EXPECT_EQ(std::get<std::string>(*ds.get_immediate(0, "k")), "zero");
  EXPECT_EQ(std::get<std::string>(*ds.get_immediate(1, "k")), "one");
}

TEST(Datastore, BlockingGetTimesOut) {
  Datastore ds;
  EXPECT_FALSE(ds.get(0, "never", std::chrono::milliseconds(20)).has_value());
}

TEST(Datastore, BlockingGetWakesOnCommit) {
  // Direct-modex semantics: a get for a peer's key parks until published.
  Datastore ds;
  std::thread publisher([&ds] {
    std::this_thread::sleep_for(20ms);
    ds.put(7, "addr", std::uint64_t{0xabcd});
    ds.commit(7);
  });
  auto v = ds.get(7, "addr", std::chrono::seconds(5));
  publisher.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::get<std::uint64_t>(*v), 0xabcdu);
}

TEST(Datastore, PurgeRemovesAllProcessData) {
  Datastore ds;
  ds.put(0, "staged", std::string("s"));
  ds.put(0, "pub", std::string("p"));
  ds.commit(0);
  ds.put(0, "staged2", std::string("s2"));
  ds.purge(0);
  EXPECT_FALSE(ds.get_immediate(0, "pub").has_value());
  EXPECT_EQ(ds.commit(0), 0u);
  EXPECT_EQ(ds.published_count(), 0u);
}

TEST(Datastore, StoresProcListsAndBlobs) {
  Datastore ds;
  ds.put(0, "procs", std::vector<ProcId>{1, 2, 3});
  ds.put(0, "blob", std::vector<std::byte>{std::byte{1}, std::byte{2}});
  ds.commit(0);
  EXPECT_EQ(std::get<std::vector<ProcId>>(*ds.get_immediate(0, "procs")).size(),
            3u);
  EXPECT_EQ(
      std::get<std::vector<std::byte>>(*ds.get_immediate(0, "blob")).size(),
      2u);
}

}  // namespace
}  // namespace sessmpi::pmix
