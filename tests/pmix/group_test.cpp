#include "sessmpi/pmix/group.hpp"

#include <gtest/gtest.h>

namespace sessmpi::pmix {
namespace {

GroupRecord make_rec(const std::string& name, std::uint64_t pgcid,
                     std::vector<ProcId> members) {
  GroupRecord r;
  r.name = name;
  r.pgcid = pgcid;
  r.leader = members.empty() ? -1 : members.front();
  r.members = std::move(members);
  return r;
}

TEST(GroupRegistry, AddAndLookup) {
  GroupRegistry reg;
  EXPECT_TRUE(reg.add(make_rec("g", 42, {0, 1, 2})));
  auto rec = reg.lookup("g");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->pgcid, 42u);
  EXPECT_EQ(rec->members.size(), 3u);
  EXPECT_EQ(reg.count(), 1u);
}

TEST(GroupRegistry, DuplicateNameRejected) {
  GroupRegistry reg;
  EXPECT_TRUE(reg.add(make_rec("g", 1, {0})));
  EXPECT_FALSE(reg.add(make_rec("g", 2, {1})));
  EXPECT_EQ(reg.lookup("g")->pgcid, 1u);
}

TEST(GroupRegistry, RemoveReturnsRecordAndInvalidatesName) {
  GroupRegistry reg;
  reg.add(make_rec("g", 7, {0, 1}));
  auto removed = reg.remove("g");
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->pgcid, 7u);
  EXPECT_FALSE(reg.lookup("g").has_value());
  EXPECT_FALSE(reg.remove("g").has_value());
}

TEST(GroupRegistry, LookupByPgcid) {
  GroupRegistry reg;
  reg.add(make_rec("a", 10, {0}));
  reg.add(make_rec("b", 20, {1}));
  auto rec = reg.lookup_by_pgcid(20);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->name, "b");
  EXPECT_FALSE(reg.lookup_by_pgcid(99).has_value());
}

TEST(GroupRegistry, LeaveRemovesMemberAndReportsRemaining) {
  GroupRegistry reg;
  reg.add(make_rec("g", 1, {0, 1, 2}));
  auto remaining = reg.leave("g", 1);
  ASSERT_TRUE(remaining.has_value());
  EXPECT_EQ(*remaining, (std::vector<ProcId>{0, 2}));
  EXPECT_FALSE(reg.leave("missing", 0).has_value());
}

TEST(GroupRegistry, GroupsOfFindsAllMemberships) {
  GroupRegistry reg;
  reg.add(make_rec("a", 1, {0, 1}));
  reg.add(make_rec("b", 2, {1, 2}));
  reg.add(make_rec("c", 3, {2, 3}));
  auto groups = reg.groups_of(1);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(reg.groups_of(9).size(), 0u);
}

TEST(GroupRegistry, NamesSorted) {
  GroupRegistry reg;
  reg.add(make_rec("zeta", 1, {0}));
  reg.add(make_rec("alpha", 2, {0}));
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace sessmpi::pmix
