// Lazy modex properties (DESIGN.md §15): get-on-first-message endpoint
// resolution must be exactly-once per (process, peer) regardless of the
// first-contact order, all later lookups must come from the per-rank cache,
// and a peer that died before publishing must resolve to rte_proc_failed
// promptly (negative cache) — never hang. The orderings are seeded random
// permutations, so every run sweeps a different contact schedule.

#include "sessmpi/pmix/client.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "../core/harness.hpp"
#include "sessmpi/base/stats.hpp"

namespace sessmpi::pmix {
namespace {

/// Runtime + one client per proc, each driven on its own thread — the same
/// shape as the client_test harness, reused here for modex-order sweeps.
class ModexHarness {
 public:
  explicit ModexHarness(base::Topology topo)
      : topo_(topo), runtime_(topo, base::CostModel::zero()) {
    std::vector<ProcId> world(static_cast<std::size_t>(topo.size()));
    for (int i = 0; i < topo.size(); ++i) {
      world[static_cast<std::size_t>(i)] = i;
    }
    runtime_.psets().define(kPsetWorld, std::move(world));
    for (int r = 0; r < topo.size(); ++r) {
      clients_.push_back(std::make_unique<PmixClient>(runtime_, r));
    }
  }

  [[nodiscard]] int size() const { return topo_.size(); }
  PmixRuntime& runtime() { return runtime_; }
  PmixClient& client(ProcId p) {
    return *clients_[static_cast<std::size_t>(p)];
  }

  void run_all(const std::function<void(PmixClient&, ProcId)>& fn) {
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    for (int r = 0; r < topo_.size(); ++r) {
      threads.emplace_back([&, r] {
        try {
          fn(client(r), r);
        } catch (...) {
          failed.store(true);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    ASSERT_FALSE(failed.load());
  }

  /// Every proc publishes its endpoint blob (no fence — lazy modex must
  /// work from commit alone).
  void publish_all() {
    run_all([](PmixClient& c, ProcId me) {
      c.put("pml.endpoint", static_cast<std::uint64_t>(me));
      c.commit();
    });
  }

 private:
  base::Topology topo_;
  PmixRuntime runtime_;
  std::vector<std::unique_ptr<PmixClient>> clients_;
};

/// Peers of `me` in a seeded random order — a different first-contact
/// schedule per (seed, rank).
std::vector<ProcId> shuffled_peers(int n, ProcId me, std::uint64_t seed) {
  std::vector<ProcId> peers;
  for (int p = 0; p < n; ++p) {
    if (p != me) {
      peers.push_back(p);
    }
  }
  std::mt19937_64 rng(seed ^ (0x9e3779b97f4a7c15ull *
                              static_cast<std::uint64_t>(me + 1)));
  std::shuffle(peers.begin(), peers.end(), rng);
  return peers;
}

std::uint64_t fetches() {
  return base::counters().value("pmix.modex_lazy_fetches");
}
std::uint64_t hits() {
  return base::counters().value("pmix.modex_cache_hits");
}

TEST(ModexLazy, RandomFirstContactOrderFetchesExactlyOnce) {
  ModexHarness h{{2, 4}};
  h.publish_all();
  const int n = h.size();
  const auto pairs = static_cast<std::uint64_t>(n) * (n - 1);

  // Round 1: every (rank, peer) pair resolves exactly once, whatever the
  // contact order.
  const std::uint64_t f0 = fetches(), h0 = hits();
  h.run_all([n](PmixClient& c, ProcId me) {
    for (ProcId p : shuffled_peers(n, me, 101)) {
      auto v = c.peer_info(p, "pml.endpoint");
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(std::get<std::uint64_t>(v.value()), static_cast<std::uint64_t>(p));
    }
  });
  EXPECT_EQ(fetches() - f0, pairs);
  EXPECT_EQ(hits() - h0, 0u);

  // Rounds 2..4 under different orders: pure cache hits, zero new fetches.
  for (const std::uint64_t seed : {202, 303, 404}) {
    const std::uint64_t f1 = fetches(), h1 = hits();
    h.run_all([n, seed](PmixClient& c, ProcId me) {
      for (ProcId p : shuffled_peers(n, me, seed)) {
        auto v = c.peer_info(p, "pml.endpoint");
        ASSERT_TRUE(v.ok());
        EXPECT_EQ(std::get<std::uint64_t>(v.value()),
                  static_cast<std::uint64_t>(p));
      }
    });
    EXPECT_EQ(fetches() - f1, 0u) << "seed " << seed;
    EXPECT_EQ(hits() - h1, pairs) << "seed " << seed;
  }
}

TEST(ModexLazy, StressSixteenRanksStaysLinearInPairs) {
  // Stress tier: 16 ranks, three full sweeps each under a different seeded
  // order, all clients concurrent. Total fetches must equal the pair count
  // exactly (n^2 - n, not n^2 scaled by rounds) — the all-pairs worst case
  // is still one fetch per pair, and everything after is cache traffic.
  ModexHarness h{{4, 4}};
  h.publish_all();
  const int n = h.size();
  const auto pairs = static_cast<std::uint64_t>(n) * (n - 1);
  const std::uint64_t f0 = fetches(), h0 = hits();
  h.run_all([n](PmixClient& c, ProcId me) {
    for (const std::uint64_t seed : {7, 8, 9}) {
      for (ProcId p : shuffled_peers(n, me, seed)) {
        auto v = c.peer_info(p, "pml.endpoint");
        ASSERT_TRUE(v.ok());
        EXPECT_EQ(std::get<std::uint64_t>(v.value()),
                  static_cast<std::uint64_t>(p));
      }
    }
  });
  EXPECT_EQ(fetches() - f0, pairs);
  EXPECT_EQ(hits() - h0, 2 * pairs);
}

TEST(ModexLazy, PeerDeadBeforePublishFailsFastAndNegativeCaches) {
  ModexHarness h{{1, 4}};
  constexpr ProcId kDead = 3;
  // Procs 0..2 publish; proc 3 dies without ever publishing.
  h.run_all([](PmixClient& c, ProcId me) {
    if (me != kDead) {
      c.put("pml.endpoint", static_cast<std::uint64_t>(me));
      c.commit();
    }
  });
  h.runtime().notify_proc_failed(kDead);

  const std::uint64_t f0 = fetches(), h0 = hits();
  h.run_all([](PmixClient& c, ProcId me) {
    if (me == kDead) {
      return;
    }
    // First lookup: must resolve to rte_proc_failed well inside the 2 s
    // dmodex timeout — the failure check breaks the wait loop, it does not
    // ride it out.
    const auto t0 = std::chrono::steady_clock::now();
    auto v = c.peer_info(kDead, "pml.endpoint");
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.error(), base::ErrClass::rte_proc_failed);
    EXPECT_LT(elapsed, std::chrono::milliseconds(500));

    // Second lookup: negative cache, same answer, no new fetch.
    auto again = c.peer_info(kDead, "pml.endpoint");
    ASSERT_FALSE(again.ok());
    EXPECT_EQ(again.error(), base::ErrClass::rte_proc_failed);
  });
  EXPECT_EQ(fetches() - f0, 3u);  // one dmodex attempt per survivor
  EXPECT_EQ(hits() - h0, 3u);     // one negative-cache hit per survivor
}

TEST(ModexLazy, ContactedThenDiedStillResolvesFromCache) {
  // Drop semantics predate lazy modex: a peer contacted before it died
  // keeps resolving from the per-rank cache (its messages are simply
  // dropped downstream), even though the runtime purges the dead proc's
  // datastore blobs on the failure notice. Only a *never-contacted* dead
  // peer surfaces as rte_proc_failed.
  ModexHarness h{{1, 3}};
  h.publish_all();
  h.run_all([](PmixClient& c, ProcId me) {
    if (me == 2) {
      return;
    }
    auto v = c.peer_info(2, "pml.endpoint");  // first contact, pre-death
    ASSERT_TRUE(v.ok());
  });
  h.runtime().notify_proc_failed(2);  // purges proc 2's datastore blobs
  const std::uint64_t f0 = fetches();
  h.run_all([](PmixClient& c, ProcId me) {
    if (me == 2) {
      return;
    }
    auto v = c.peer_info(2, "pml.endpoint");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(std::get<std::uint64_t>(v.value()), 2u);
  });
  EXPECT_EQ(fetches(), f0);  // cache, not a re-fetch of purged data
}

TEST(ModexLazy, UnpublishedLivePeerTimesOutInsteadOfHanging)  {
  // A live peer that never publishes is a lost dmodex: the wait must end at
  // the caller's deadline with rte_timeout, not block forever.
  ModexHarness h{{1, 2}};
  h.client(0).put("pml.endpoint", std::uint64_t{0});
  h.client(0).commit();
  auto v = h.client(0).peer_info(1, "pml.endpoint",
                                 std::chrono::milliseconds(50));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.error(), base::ErrClass::rte_timeout);
}

// --- Through the MPI path: per-comm resolution reuses the per-rank cache --

TEST(ModexLazy, SecondCommunicatorReusesPerRankCache) {
  const std::uint64_t f0 = fetches();
  std::atomic<std::uint64_t> after_first{0};
  sessmpi::testing::mpi_run(1, 4, [&](sim::Process& p) {
    Session s = Session::init();
    Group g = s.group_from_pset("mpi://world");
    const auto ring = [&](Communicator& c, int tag) {
      const int n = c.size(), me = c.rank();
      std::int64_t in = -1, out = me;
      c.sendrecv(&out, 1, Datatype::int64(), (me + 1) % n, tag, &in, 1,
                 Datatype::int64(), (me + n - 1) % n, tag);
      EXPECT_EQ(in, (me + n - 1) % n);
    };
    Communicator a = Communicator::create_from_group(g, "modex_a");
    ring(a, 1);
    a.barrier();
    a.free();
    after_first.store(fetches());
    // A second communicator re-resolves endpoints, but from the per-rank
    // cache: the fetch counter must not move again.
    Communicator b = Communicator::create_from_group(g, "modex_b");
    ring(b, 2);
    b.barrier();
    b.free();
    s.finalize();
  });
  EXPECT_GT(after_first.load(), f0);      // first contact did fetch
  EXPECT_EQ(fetches(), after_first.load());  // second comm: cache only
}

}  // namespace
}  // namespace sessmpi::pmix
