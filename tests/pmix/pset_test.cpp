#include "sessmpi/pmix/pset.hpp"

#include <gtest/gtest.h>

namespace sessmpi::pmix {
namespace {

TEST(PsetRegistry, DefineAndLookup) {
  PsetRegistry reg;
  reg.define("app://solvers", {0, 1, 2, 3});
  auto members = reg.lookup("app://solvers");
  ASSERT_TRUE(members.has_value());
  EXPECT_EQ(members->size(), 4u);
  EXPECT_TRUE(reg.contains("app://solvers"));
  EXPECT_FALSE(reg.contains("app://missing"));
}

TEST(PsetRegistry, LookupUnknownReturnsNullopt) {
  PsetRegistry reg;
  EXPECT_FALSE(reg.lookup("nope").has_value());
}

TEST(PsetRegistry, RedefineReplacesMembers) {
  PsetRegistry reg;
  reg.define("s", {0});
  reg.define("s", {1, 2});
  EXPECT_EQ(reg.lookup("s")->size(), 2u);
  EXPECT_EQ(reg.count(), 1u);
}

TEST(PsetRegistry, NamesSortedAndComplete) {
  PsetRegistry reg;
  reg.define("mpi://world", {0, 1, 2, 3});
  reg.define("app://io", {0});
  EXPECT_EQ(reg.names(),
            (std::vector<std::string>{"app://io", "mpi://world"}));
}

TEST(PsetRegistry, NamesFilteredByMember) {
  // PMIX_QUERY_PSET_NAMES answers per-process: only psets containing the
  // asking process are reported.
  PsetRegistry reg;
  reg.define("mpi://world", {0, 1, 2, 3});
  reg.define("app://even", {0, 2});
  reg.define("app://odd", {1, 3});
  EXPECT_EQ(reg.names(0),
            (std::vector<std::string>{"app://even", "mpi://world"}));
  EXPECT_EQ(reg.names(3),
            (std::vector<std::string>{"app://odd", "mpi://world"}));
}

TEST(PsetRegistry, WellKnownNameConstants) {
  EXPECT_STREQ(kPsetWorld, "mpi://world");
  EXPECT_STREQ(kPsetSelf, "mpi://self");
  EXPECT_STREQ(kPsetShared, "mpi://shared");
}

}  // namespace
}  // namespace sessmpi::pmix
